package ssrq

import (
	"math"
	"math/rand"
	"testing"
)

func mkSocialEngine(t *testing.T, n int) (*Engine, *Dataset) {
	t.Helper()
	ds, err := Synthesize("gowalla", n, 5) // all presets locate most users
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	return eng, ds
}

// TestAddFriendRawWeightRoundTrip: raw weights normalize on the way in and
// de-normalize consistently — the spliced super-strong friendship must
// surface as the top social neighbor with its normalized proximity.
func TestAddFriendRawWeightRoundTrip(t *testing.T) {
	e, ds := mkSocialEngine(t, 300)
	defer e.Close()
	const q, far = UserID(0), UserID(250)
	raw := ds.Norms().Social * 1e-7 // tiny normalized weight
	if err := e.AddFriend(q, far, raw); err != nil {
		t.Fatal(err)
	}
	knn := e.SocialKNN(q, 1)
	if len(knn) != 1 || knn[0].ID != int32(far) {
		t.Fatalf("SocialKNN after AddFriend = %+v, want user %d first", knn, far)
	}
	if math.Abs(knn[0].P-1e-7) > 1e-12 {
		t.Fatalf("normalized proximity %v, want 1e-7", knn[0].P)
	}
	// Reweight up, then remove: the neighbor must drop back out of first place.
	if err := e.AddFriend(q, far, ds.Norms().Social*10); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveFriend(q, far); err != nil {
		t.Fatal(err)
	}
	knn = e.SocialKNN(q, 1)
	if len(knn) == 1 && knn[0].ID == int32(far) && knn[0].P > 5 {
		t.Fatalf("removed friendship still ranked first: %+v", knn)
	}
	st := e.SocialStats()
	if st.EdgeAdds != 1 || st.EdgeReweights != 1 || st.EdgeRemoves != 1 {
		t.Fatalf("social stats %+v", st)
	}
}

// TestAsyncFriendOpsAndFlush drives the async edge pipeline through the
// root API: Flush is the read-your-writes barrier for both dimensions, and
// live stats reflect the mutated graph.
func TestAsyncFriendOpsAndFlush(t *testing.T) {
	e, _ := mkSocialEngine(t, 250)
	defer e.Close()
	before := e.DatasetStats()
	rng := rand.New(rand.NewSource(7))
	want := before.NumEdges
	for i := 0; i < 50; i++ {
		u, v := UserID(rng.Intn(250)), UserID(rng.Intn(250))
		if u == v {
			continue
		}
		if _, ok := edgeExists(e, u, v); ok {
			if err := e.RemoveFriendAsync(u, v); err != nil {
				t.Fatal(err)
			}
			want--
		} else {
			if err := e.AddFriendAsync(u, v, 1000+rng.Float64()*1000); err != nil {
				t.Fatal(err)
			}
			want++
		}
		// Interleave a move so mixed batches hit the pipeline.
		if i%5 == 0 {
			if err := e.MoveUserAsync(u, Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}); err != nil {
				t.Fatal(err)
			}
		}
		e.Flush() // flush per op: edgeExists must observe prior writes
	}
	after := e.DatasetStats()
	if after.NumEdges != want {
		t.Fatalf("live NumEdges = %d, want %d (was %d)", after.NumEdges, want, before.NumEdges)
	}
	us := e.UpdateStats()
	if us.SocialEpoch == 0 {
		t.Fatal("social epoch never advanced")
	}
	// Post-churn: AIS still agrees with brute force exactly.
	var q UserID = -1
	for id := 0; id < 250; id++ {
		if _, ok := e.UserLocation(UserID(id)); ok {
			q = UserID(id)
			break
		}
	}
	if q < 0 {
		t.Fatal("no located user")
	}
	res, err := e.TopKWith(AIS, q, 10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := e.TopKWith(BruteForce, q, 10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Entries {
		if math.Abs(res.Entries[i].F-wantRes.Entries[i].F) > 1e-9 {
			t.Fatalf("rank %d: AIS %v vs brute %v", i, res.Entries[i].F, wantRes.Entries[i].F)
		}
	}
}

// edgeExists probes the live social graph through SocialKNN-free plumbing:
// the engine's latest published graph.
func edgeExists(e *Engine, u, v UserID) (float64, bool) {
	return e.eng.LiveSocialGraph().EdgeWeight(u, v)
}

// TestApplyEdgeUpdatesBulk: one epoch for the whole batch; validation
// failures apply nothing.
func TestApplyEdgeUpdatesBulk(t *testing.T) {
	e, _ := mkSocialEngine(t, 200)
	defer e.Close()
	epoch0 := e.UpdateStats().SocialEpoch
	ups := []EdgeUpdate{
		{U: 1, V: 180, Weight: 500},
		{U: 2, V: 181, Weight: 700},
		{U: 3, V: 182, Remove: true},
	}
	if err := e.ApplyEdgeUpdates(ups); err != nil {
		t.Fatal(err)
	}
	if got := e.UpdateStats().SocialEpoch; got != epoch0+1 {
		t.Fatalf("social epoch %d, want %d (one epoch per batch)", got, epoch0+1)
	}
	// A batch with one bad item must reject atomically.
	bad := []EdgeUpdate{{U: 5, V: 183, Weight: 500}, {U: 9, V: 9, Weight: 1}}
	if err := e.ApplyEdgeUpdates(bad); err == nil {
		t.Fatal("self-loop batch accepted")
	}
	if _, ok := edgeExists(e, 5, 183); ok {
		t.Fatal("rejected batch partially applied")
	}
	if err := e.AddFriend(0, 1, -5); err == nil {
		t.Fatal("negative raw weight accepted")
	}
	if err := e.AddFriend(0, 1, math.NaN()); err == nil {
		t.Fatal("NaN raw weight accepted")
	}
}
