package ssrq

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Kill-9 differential test: a child process (this test binary re-exec'd)
// drives synchronous churn against a durable engine, printing each op as it
// is acknowledged; the parent SIGKILLs it mid-stream, recovers from the WAL
// directory, and requires (a) nothing acknowledged was lost and (b) the
// recovered world exactly matches a twin that applied the recovered prefix.
// Unlike the in-process seam (durability_test.go), this loses the real
// thing: whatever a dead process never handed to the kernel.

const (
	crashChildEnv    = "SSRQ_CRASH_CHILD"
	crashDirEnv      = "SSRQ_CRASH_DIR"
	crashShardsEnv   = "SSRQ_CRASH_SHARDS"
	crashKillUsers   = 400
	crashKillDSSeed  = 42
	crashKillOpsSeed = 77
	crashKillTotal   = 200000 // far more than the parent lets run
)

func TestCrashKill9Differential(t *testing.T) {
	if os.Getenv(crashChildEnv) == "1" {
		runCrashKillChild(t)
		return
	}
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	for _, tc := range []struct {
		name   string
		shards int
	}{{"monolith", 0}, {"sharded", 4}} {
		t.Run(tc.name, func(t *testing.T) { runCrashKillParent(t, tc.shards) })
	}
}

// runCrashKillChild is the victim: build the durable engine, churn forever,
// report progress. It never exits on its own within the parent's patience.
func runCrashKillChild(t *testing.T) {
	dir := os.Getenv(crashDirEnv)
	shards, _ := strconv.Atoi(os.Getenv(crashShardsEnv)) // errok
	ds, err := Synthesize("gowalla", crashKillUsers, crashKillDSSeed)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds, &Options{
		Shards:     shards,
		Durability: &DurabilityOptions{Dir: dir, Fsync: "batch"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	fmt.Println("ready")
	for i, op := range genCrashOps(ds, crashKillTotal, crashKillOpsSeed) {
		if err := op.apply(eng); err != nil {
			t.Fatal(err)
		}
		// The op returned: with the "batch" policy its record is fsynced.
		fmt.Println("acked", i+1)
	}
}

func runCrashKillParent(t *testing.T, shards int) {
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashKill9Differential$")
	cmd.Env = append(os.Environ(),
		crashChildEnv+"=1",
		crashDirEnv+"="+dir,
		crashShardsEnv+"="+strconv.Itoa(shards),
	)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Track acknowledgements; once enough churn has landed, kill -9.
	const killAfter = 500
	lastAcked := 0
	sc := bufio.NewScanner(out)
	deadline := time.Now().Add(2 * time.Minute)
	for sc.Scan() {
		line := sc.Text()
		if n, ok := strings.CutPrefix(line, "acked "); ok {
			if v, err := strconv.Atoi(strings.TrimSpace(n)); err == nil {
				lastAcked = v
			}
		}
		if lastAcked >= killAfter || time.Now().After(deadline) {
			break
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	_ = cmd.Wait() // errok: the child was killed; a non-zero exit is the point
	if lastAcked < killAfter {
		t.Fatalf("child only acked %d ops before dying on its own", lastAcked)
	}

	// Recover. Every acknowledged op was fsynced before its ack line was
	// printed, so the journal must hold at least lastAcked records.
	ds, err := Synthesize("gowalla", crashKillUsers, crashKillDSSeed)
	if err != nil {
		t.Fatal(err)
	}
	opts := &Options{Shards: shards, Durability: &DurabilityOptions{Dir: dir, Fsync: "off"}}
	rec, info, err := OpenOrRecover(ds, opts)
	if err != nil {
		t.Fatalf("recovery after kill -9: %v", err)
	}
	defer rec.Close()
	applied := int(info.LastSeq)
	if applied < lastAcked {
		t.Fatalf("lost acknowledged writes: recovered %d ops, child acked %d", applied, lastAcked)
	}
	if applied > crashKillTotal {
		t.Fatalf("recovered %d ops, child only drives %d", applied, crashKillTotal)
	}
	t.Logf("killed at ack %d, recovered %d ops (truncated %d torn bytes)",
		lastAcked, applied, info.TruncatedBytes)

	// Twin: the child's ops are synchronous (one record each), so the
	// recovered position IS the driver prefix length.
	twin, err := NewEngine(ds, &Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	for _, op := range genCrashOps(ds, applied, crashKillOpsSeed) {
		if err := op.apply(twin); err != nil {
			t.Fatal(err)
		}
	}
	requireSameWorld(t, rec, twin)
	requireSameResults(t, rec, twin, 31)
}
