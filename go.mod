module ssrq

go 1.24
