package ssrq

import (
	"math"
	"path/filepath"
	"testing"
	"time"
)

func TestNewDatasetExplicitWeights(t *testing.T) {
	edges := []Edge{{0, 1, 0.5}, {1, 2, 0.25}, {2, 3, 0.75}}
	locs := map[UserID]Point{0: {X: 0, Y: 0}, 1: {X: 10, Y: 0}, 2: {X: 0, Y: 10}, 3: {X: 10, Y: 10}}
	ds, err := NewDataset("tiny", 4, edges, locs)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers() != 4 {
		t.Fatalf("NumUsers = %d", ds.NumUsers())
	}
	st := ds.Stats()
	if st.NumEdges != 3 || st.NumLocated != 4 {
		t.Fatalf("stats %+v", st)
	}
	if p, ok := ds.Location(1); !ok || math.Abs(p.X-10) > 1e-9 {
		t.Fatalf("Location(1) = %v, %v", p, ok)
	}
}

func TestNewDatasetDegreeProductWeights(t *testing.T) {
	// All-zero weights trigger the paper's degree-product rule.
	edges := []Edge{{0, 1, 0}, {0, 2, 0}, {1, 2, 0}}
	ds, err := NewDataset("auto", 3, edges, map[UserID]Point{0: {}, 1: {X: 1}, 2: {Y: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Stats().NumEdges != 3 {
		t.Fatal("edges lost")
	}
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset("x", 0, nil, nil); err == nil {
		t.Fatal("zero users accepted")
	}
	if _, err := NewDataset("x", 2, []Edge{{0, 5, 1}}, nil); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := NewDataset("x", 2, []Edge{{0, 1, -1}}, nil); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewDataset("x", 2, nil, map[UserID]Point{5: {}}); err == nil {
		t.Fatal("out-of-range location accepted")
	}
}

func TestSynthesizePresets(t *testing.T) {
	for _, preset := range []string{"gowalla", "foursquare", "twitter"} {
		ds, err := Synthesize(preset, 400, 7)
		if err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
		if ds.NumUsers() != 400 {
			t.Fatalf("%s: %d users", preset, ds.NumUsers())
		}
	}
	if _, err := Synthesize("myspace", 400, 7); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestEngineTopKAgainstBruteForce(t *testing.T) {
	ds, err := Synthesize("gowalla", 500, 11)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	var q UserID = -1
	for v := 0; v < ds.NumUsers(); v++ {
		if ds.Located(UserID(v)) {
			q = UserID(v)
			break
		}
	}
	res, err := eng.TopK(q, 10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.TopKWith(BruteForce, q, 10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != len(want.Entries) {
		t.Fatalf("sizes differ: %d vs %d", len(res.Entries), len(want.Entries))
	}
	for i := range res.Entries {
		if math.Abs(res.Entries[i].F-want.Entries[i].F) > 1e-9 {
			t.Fatalf("rank %d: f %v vs %v", i, res.Entries[i].F, want.Entries[i].F)
		}
	}
}

func TestEngineNilDataset(t *testing.T) {
	if _, err := NewEngine(nil, nil); err == nil {
		t.Fatal("nil dataset accepted")
	}
}

func TestEngineOptionsRespected(t *testing.T) {
	ds, _ := Synthesize("gowalla", 300, 3)
	eng, err := NewEngine(ds, &Options{GridS: 5, GridLevels: 1, NumLandmarks: 3, BuildCH: true})
	if err != nil {
		t.Fatal(err)
	}
	var q UserID
	for v := 0; v < ds.NumUsers(); v++ {
		if ds.Located(UserID(v)) {
			q = UserID(v)
			break
		}
	}
	if _, err := eng.TopKWith(SFACH, q, 5, 0.5); err != nil {
		t.Fatalf("CH variant should work with BuildCH: %v", err)
	}
}

func TestMoveUserRawCoordinates(t *testing.T) {
	ds, _ := Synthesize("twitter", 300, 5) // all located
	eng, _ := NewEngine(ds, nil)
	q := UserID(0)
	target, _ := ds.Location(q)
	// Teleport user 42 onto the query user and verify it becomes the
	// nearest spatial neighbor. A rejected move would silently leave user
	// 42 where it was, so the error must be checked.
	if err := eng.MoveUser(42, target); err != nil {
		t.Fatal(err)
	}
	nbrs, err := eng.SpatialKNN(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 1 || nbrs[0].ID != 42 {
		t.Fatalf("nearest after move = %+v", nbrs)
	}
	if err := eng.RemoveUserLocation(42); err != nil {
		t.Fatal(err)
	}
	nbrs, _ = eng.SpatialKNN(q, 1)
	if len(nbrs) == 1 && nbrs[0].ID == 42 {
		t.Fatal("removed user still indexed")
	}
}

func TestKNNHelpers(t *testing.T) {
	ds, _ := Synthesize("twitter", 300, 9)
	eng, _ := NewEngine(ds, nil)
	q := UserID(1)
	sp, err := eng.SpatialKNN(q, 5)
	if err != nil || len(sp) != 5 {
		t.Fatalf("SpatialKNN: %v, %d", err, len(sp))
	}
	for i := 1; i < len(sp); i++ {
		if sp[i].D < sp[i-1].D {
			t.Fatal("spatial kNN unsorted")
		}
	}
	so := eng.SocialKNN(q, 5)
	if len(so) != 5 {
		t.Fatalf("SocialKNN returned %d", len(so))
	}
	for i := 1; i < len(so); i++ {
		if so[i].P < so[i-1].P {
			t.Fatal("social kNN unsorted")
		}
	}
}

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	ds, _ := Synthesize("gowalla", 200, 13)
	path := filepath.Join(t.TempDir(), "ds.gob")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	ds2, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.NumUsers() != 200 || ds2.Stats().NumEdges != ds.Stats().NumEdges {
		t.Fatal("round trip lost data")
	}
	// Same query must yield the same ranking on both copies.
	e1, _ := NewEngine(ds, nil)
	e2, _ := NewEngine(ds2, nil)
	var q UserID = -1
	for v := 0; v < ds.NumUsers(); v++ {
		if ds.Located(UserID(v)) {
			q = UserID(v)
			break
		}
	}
	r1, err := e1.TopK(q, 5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.TopK(q, 5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Entries {
		if math.Abs(r1.Entries[i].F-r2.Entries[i].F) > 1e-9 {
			t.Fatalf("rank %d drifted after round trip", i)
		}
	}
}

func TestPrecomputeThenAISCache(t *testing.T) {
	ds, _ := Synthesize("gowalla", 400, 17)
	eng, _ := NewEngine(ds, &Options{CacheT: 50})
	var users []UserID
	for v := 0; v < ds.NumUsers() && len(users) < 5; v++ {
		if ds.Located(UserID(v)) {
			users = append(users, UserID(v))
		}
	}
	eng.Precompute(users)
	for _, q := range users {
		res, err := eng.TopKWith(AISCache, q, 5, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := eng.TopKWith(BruteForce, q, 5, 0.3)
		if len(res.Entries) != len(want.Entries) {
			t.Fatal("AISCache size mismatch")
		}
	}
}

func TestAsyncMovesAndFlush(t *testing.T) {
	ds, _ := Synthesize("twitter", 300, 5) // all located
	eng, _ := NewEngine(ds, nil)
	defer eng.Close()
	q := UserID(0)
	target, _ := ds.Location(q)
	if err := eng.MoveUserAsync(42, target); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	if p, ok := eng.UserLocation(42); !ok || math.Abs(p.X-target.X) > 1e-9 || math.Abs(p.Y-target.Y) > 1e-9 {
		t.Fatalf("flushed async move invisible: %v %v", p, ok)
	}
	nbrs, err := eng.SpatialKNN(q, 1)
	if err != nil || len(nbrs) != 1 || nbrs[0].ID != 42 {
		t.Fatalf("nearest after async move = %+v, %v", nbrs, err)
	}
	st := eng.UpdateStats()
	if st.Epoch == 0 || st.AppliedUpdates == 0 || st.PendingUpdates != 0 {
		t.Fatalf("update stats after flush: %+v", st)
	}
	if err := eng.RemoveUserLocationAsync(42); err != nil {
		t.Fatal(err)
	}
	eng.Flush()
	if _, ok := eng.UserLocation(42); ok {
		t.Fatal("async removal invisible after flush")
	}
}

func TestApplyUpdatesBulk(t *testing.T) {
	ds, _ := Synthesize("twitter", 200, 5)
	eng, _ := NewEngine(ds, nil)
	defer eng.Close()
	target, _ := ds.Location(0)
	before := eng.UpdateStats().Epoch
	ups := []Update{
		{ID: 10, To: target},
		{ID: 11, To: Point{X: target.X + 1, Y: target.Y}},
		{ID: 12, Remove: true},
	}
	if err := eng.ApplyUpdates(ups); err != nil {
		t.Fatal(err)
	}
	if got := eng.UpdateStats().Epoch; got != before+1 {
		t.Fatalf("bulk apply advanced epoch by %d, want 1", got-before)
	}
	if p, ok := eng.UserLocation(10); !ok || math.Abs(p.X-target.X) > 1e-9 {
		t.Fatalf("bulk move lost: %v %v", p, ok)
	}
	if _, ok := eng.UserLocation(12); ok {
		t.Fatal("bulk removal lost")
	}
	if eng.DatasetStats().NumLocated != ds.Stats().NumLocated-1 {
		t.Fatal("DatasetStats does not track the live epoch")
	}
}

func TestMoveUserRejectsNonFinite(t *testing.T) {
	ds, _ := Synthesize("twitter", 100, 5)
	eng, _ := NewEngine(ds, nil)
	defer eng.Close()
	for _, p := range []Point{
		{X: math.NaN(), Y: 0},
		{X: 0, Y: math.NaN()},
		{X: math.Inf(1), Y: 0},
		{X: 0, Y: math.Inf(-1)},
	} {
		if err := eng.MoveUser(3, p); err == nil {
			t.Fatalf("MoveUser accepted %v", p)
		}
		if err := eng.MoveUserAsync(3, p); err == nil {
			t.Fatalf("MoveUserAsync accepted %v", p)
		}
		if err := eng.ApplyUpdates([]Update{{ID: 3, To: p}}); err == nil {
			t.Fatalf("ApplyUpdates accepted %v", p)
		}
	}
	if err := eng.MoveUser(-1, Point{}); err == nil {
		t.Fatal("negative id accepted")
	}
	if err := eng.MoveUser(100, Point{}); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	// The user's position must be untouched by the rejected updates.
	want, _ := ds.Location(3)
	if got, ok := eng.UserLocation(3); !ok || got != want {
		t.Fatalf("rejected updates moved the user: %v, want %v", got, want)
	}
}

// TestShardedEngineRootAPI: Options.Shards selects the partitioned engine
// behind the same root API — identical results, working update routing, and
// the shard introspection surface.
func TestShardedEngineRootAPI(t *testing.T) {
	ds, err := Synthesize("gowalla", 500, 5)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := NewEngine(ds, &Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer mono.Close()
	sharded, err := NewEngine(ds, &Options{Seed: 5, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	if mono.NumShards() != 1 || mono.ShardStats() != nil {
		t.Fatalf("monolith reports shards: %d %v", mono.NumShards(), mono.ShardStats())
	}
	if sharded.NumShards() != 4 || len(sharded.ShardStats()) != 4 {
		t.Fatalf("sharded engine reports %d shards, %d stats", sharded.NumShards(), len(sharded.ShardStats()))
	}

	var q UserID = -1
	for id := 0; id < ds.NumUsers(); id++ {
		if ds.Located(UserID(id)) {
			q = UserID(id)
			break
		}
	}
	want, err := mono.TopK(q, 10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.TopK(q, 10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(want.Entries) {
		t.Fatalf("sharded %d entries, mono %d", len(got.Entries), len(want.Entries))
	}
	for i := range got.Entries {
		if got.Entries[i].ID != want.Entries[i].ID {
			t.Fatalf("rank %d: sharded id=%d, mono id=%d", i, got.Entries[i].ID, want.Entries[i].ID)
		}
	}
	if fs := sharded.FanoutStats(); fs.Queries == 0 {
		t.Fatalf("fan-out counters dead: %+v", fs)
	}

	// Raw-coordinate updates route through the sharded engine identically.
	if p, ok := sharded.UserLocation(q); !ok {
		t.Fatal("query user unlocated")
	} else if err := sharded.MoveUser(q, Point{X: p.X + 10, Y: p.Y + 10}); err != nil {
		t.Fatal(err)
	}
	if err := sharded.AddFriend(q, q+1, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := sharded.TopK(q, 5, 0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := sharded.SpatialKNN(q, 5); err != nil {
		t.Fatal(err)
	}
	if got := sharded.SocialKNN(q, 3); len(got) == 0 {
		t.Fatal("SocialKNN empty")
	}
	st := sharded.DatasetStats()
	if st.NumLocated == 0 || st.NumEdges == 0 {
		t.Fatalf("live stats dead: %+v", st)
	}
}

func TestSubscribeRootAPI(t *testing.T) {
	ds, err := Synthesize("twitter", 300, 7) // all located
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts *Options
	}{
		{"monolithic", nil},
		{"sharded", &Options{Shards: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := NewEngine(ds, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()

			if _, err := eng.Subscribe(-1, 5, 0.3); err == nil {
				t.Fatal("negative user accepted")
			}
			if _, err := eng.Subscribe(0, 5, 1.5); err == nil {
				t.Fatal("alpha out of (0,1) accepted")
			}

			const q, k = 0, 5
			sb, err := eng.Subscribe(q, k, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			defer sb.Close()
			want, err := eng.TopK(q, k, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			got := sb.Result()
			if len(got) != len(want.Entries) {
				t.Fatalf("initial result %d entries, want %d", len(got), len(want.Entries))
			}
			for i := range got {
				if got[i].ID != want.Entries[i].ID || got[i].F != want.Entries[i].F {
					t.Fatalf("rank %d: subscription %+v, query %+v", i, got[i], want.Entries[i])
				}
			}

			// Raw-coordinate async moves must flow through to the standing
			// query after the subscription barrier.
			far, ok := eng.UserLocation(want.Entries[k-1].ID)
			if !ok {
				t.Fatal("ranked user unlocated")
			}
			if err := eng.MoveUserAsync(q, Point{X: far.X + 5, Y: far.Y + 5}); err != nil {
				t.Fatal(err)
			}
			eng.SyncSubscriptions()
			want, err = eng.TopK(q, k, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			got = sb.Result()
			if len(got) != len(want.Entries) {
				t.Fatalf("post-move result %d entries, want %d", len(got), len(want.Entries))
			}
			for i := range got {
				if got[i].ID != want.Entries[i].ID {
					t.Fatalf("post-move rank %d: subscription id=%d, query id=%d", i, got[i].ID, want.Entries[i].ID)
				}
			}
			if st := eng.SubscriptionStats(); st.Active != 1 || st.Evals == 0 {
				t.Fatalf("subscription stats dead: %+v", st)
			}
		})
	}
}

func TestSubscribeAfterCloseRejected(t *testing.T) {
	ds, err := Synthesize("twitter", 200, 8)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := eng.Subscribe(0, 5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	// Close must have terminated the subscription's notify stream (a
	// buffered change signal may still be pending ahead of the close).
	timeout := time.After(5 * time.Second)
	for {
		select {
		case _, open := <-sb.Notify():
			if !open {
				return
			}
		case <-timeout:
			t.Fatal("notify channel still open after engine Close")
		}
	}
}
