// Benchmarks mirroring every table and figure of the paper's evaluation
// (§6), plus ablations for the design choices called out in DESIGN.md.
// These run at a small fixed scale so `go test -bench=.` stays minutes-
// bounded; cmd/ssrq-bench runs the full parameter sweeps at configurable
// scales and prints paper-style tables.
package ssrq_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"ssrq/internal/core"
	"ssrq/internal/dataset"
	"ssrq/internal/exp"
	"ssrq/internal/gen"
	"ssrq/internal/graph"
	"ssrq/internal/landmark"
	"ssrq/internal/spatial"
	"ssrq/internal/shard"
)

const (
	benchSeed     = 42
	benchQueryCnt = 16
)

var benchSizes = map[string]int{"gowalla": 2500, "foursquare": 4000, "twitter": 2000}

type benchEngine struct {
	eng   *core.Engine
	ds    *dataset.Dataset
	users []graph.VertexID
}

var (
	benchMu    sync.Mutex
	benchCache = map[string]*benchEngine{}
)

// getEngine builds (once) an engine for the preset with the given options.
func getEngine(b *testing.B, preset string, mutate func(*core.Options)) *benchEngine {
	b.Helper()
	key := preset
	opts := exp.EngineOptions(exp.DefaultS, false, 200, benchSeed)
	if mutate != nil {
		mutate(&opts)
		key = fmt.Sprintf("%s/%+v", preset, opts)
	}
	benchMu.Lock()
	defer benchMu.Unlock()
	if be, ok := benchCache[key]; ok {
		return be
	}
	var p gen.Preset
	switch preset {
	case "gowalla":
		p = gen.GowallaPreset
	case "foursquare":
		p = gen.FoursquarePreset
	case "twitter":
		p = gen.TwitterPreset
	default:
		b.Fatalf("unknown preset %s", preset)
	}
	ds, err := p.Dataset(benchSizes[preset], benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(ds, opts)
	if err != nil {
		b.Fatal(err)
	}
	be := &benchEngine{eng: eng, ds: ds, users: exp.QueryUsers(ds, benchQueryCnt, benchSeed)}
	benchCache[key] = be
	return be
}

// benchQueries runs the query workload round-robin for b.N iterations.
func benchQueries(b *testing.B, be *benchEngine, algo core.Algorithm, k int, alpha float64) {
	b.Helper()
	prm := core.Params{K: k, Alpha: alpha}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := be.users[i%len(be.users)]
		if _, err := be.eng.Query(algo, q, prm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Stats regenerates the Table 2 dataset statistics.
func BenchmarkTable2Stats(b *testing.B) {
	for _, preset := range []string{"gowalla", "foursquare", "twitter"} {
		be := getEngine(b, preset, nil)
		b.Run(preset, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := be.ds.Stats()
				if st.NumVertices == 0 {
					b.Fatal("empty stats")
				}
			}
		})
	}
}

// BenchmarkFig7aHops measures the hop-statistics study (furthest result
// member per query).
func BenchmarkFig7aHops(b *testing.B) {
	be := getEngine(b, "gowalla", nil)
	prm := core.Params{K: exp.DefaultK, Alpha: exp.DefaultAlpha}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := be.users[i%len(be.users)]
		res, err := be.eng.Query(core.AIS, q, prm)
		if err != nil {
			b.Fatal(err)
		}
		pending := res.IDSet()
		it := graph.NewDijkstraIterator(be.ds.G, q)
		worst := int32(0)
		for len(pending) > 0 {
			v, _, ok := it.Next()
			if !ok {
				break
			}
			if pending[v] {
				delete(pending, v)
				if h := it.HopsOf(v); h > worst {
					worst = h
				}
			}
		}
	}
}

// BenchmarkFig7bJaccard measures the SSRQ-vs-single-domain similarity study.
func BenchmarkFig7bJaccard(b *testing.B) {
	be := getEngine(b, "foursquare", nil)
	prm := core.Params{K: exp.DefaultK, Alpha: exp.DefaultAlpha}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := be.users[i%len(be.users)]
		res, err := be.eng.Query(core.AIS, q, prm)
		if err != nil {
			b.Fatal(err)
		}
		ssrqSet := res.IDSet()
		knn := be.eng.Grid().KNN(be.ds.Pts[q], prm.K, func(id int32) bool { return id == int32(q) })
		inter := 0
		for _, nb := range knn {
			if ssrqSet[nb.ID] {
				inter++
			}
		}
	}
}

// BenchmarkFig8RuntimeVsK is the main comparison: every algorithm across k,
// on the Gowalla and Foursquare substitutes (run-time chart; the pop-ratio
// chart shares the same executions and is reported by cmd/ssrq-bench).
func BenchmarkFig8RuntimeVsK(b *testing.B) {
	for _, preset := range []string{"gowalla", "foursquare"} {
		be := getEngine(b, preset, nil)
		for _, algo := range []core.Algorithm{core.SFA, core.SPA, core.TSA, core.TSAQC, core.AIS} {
			for _, k := range []int{10, 30, 50} {
				b.Run(fmt.Sprintf("%s/%v/k=%d", preset, algo, k), func(b *testing.B) {
					benchQueries(b, be, algo, k, exp.DefaultAlpha)
				})
			}
		}
	}
}

// BenchmarkFig8CHVariants adds the contraction-hierarchy comparison curves.
func BenchmarkFig8CHVariants(b *testing.B) {
	be := getEngine(b, "gowalla", func(o *core.Options) { o.BuildCH = true })
	for _, algo := range []core.Algorithm{core.SFACH, core.SPACH, core.TSACH} {
		b.Run(algo.String(), func(b *testing.B) {
			benchQueries(b, be, algo, exp.DefaultK, exp.DefaultAlpha)
		})
	}
}

// BenchmarkFig9RuntimeVsAlpha sweeps the preference parameter.
func BenchmarkFig9RuntimeVsAlpha(b *testing.B) {
	be := getEngine(b, "gowalla", nil)
	for _, algo := range []core.Algorithm{core.SFA, core.SPA, core.TSA, core.TSAQC, core.AIS} {
		for _, alpha := range []float64{0.1, 0.5, 0.9} {
			b.Run(fmt.Sprintf("%v/alpha=%.1f", algo, alpha), func(b *testing.B) {
				benchQueries(b, be, algo, exp.DefaultK, alpha)
			})
		}
	}
}

// BenchmarkFig10AISVersions compares AIS-BID / AIS⁻ / AIS.
func BenchmarkFig10AISVersions(b *testing.B) {
	for _, preset := range []string{"gowalla", "foursquare"} {
		be := getEngine(b, preset, nil)
		for _, algo := range []core.Algorithm{core.AISBID, core.AISMinus, core.AIS} {
			b.Run(fmt.Sprintf("%s/%v", preset, algo), func(b *testing.B) {
				benchQueries(b, be, algo, exp.DefaultK, exp.DefaultAlpha)
			})
		}
	}
}

// BenchmarkFig11Precomputation sweeps the §5.4 cached-list length t.
func BenchmarkFig11Precomputation(b *testing.B) {
	be := getEngine(b, "gowalla", nil)
	for _, t := range []int{50, 200, 800} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			be.eng.ResetCache(t)
			be.eng.Precompute(be.users)
			benchQueries(b, be, core.AISCache, exp.DefaultK, exp.DefaultAlpha)
		})
	}
	b.Run("AIS-baseline", func(b *testing.B) {
		benchQueries(b, be, core.AIS, exp.DefaultK, exp.DefaultAlpha)
	})
}

// BenchmarkFig12Granularity sweeps the grid granularity s.
func BenchmarkFig12Granularity(b *testing.B) {
	for _, s := range []int{5, 10, 25} {
		s := s
		be := getEngine(b, "gowalla", func(o *core.Options) { o.GridS = s })
		for _, algo := range []core.Algorithm{core.SPA, core.AIS} {
			b.Run(fmt.Sprintf("s=%d/%v", s, algo), func(b *testing.B) {
				benchQueries(b, be, algo, exp.DefaultK, exp.DefaultAlpha)
			})
		}
	}
}

// BenchmarkFig13Twitter runs the high-degree dataset.
func BenchmarkFig13Twitter(b *testing.B) {
	be := getEngine(b, "twitter", nil)
	for _, algo := range []core.Algorithm{core.SFA, core.SPA, core.TSA, core.TSAQC, core.AIS} {
		b.Run(algo.String(), func(b *testing.B) {
			benchQueries(b, be, algo, exp.DefaultK, exp.DefaultAlpha)
		})
	}
}

// BenchmarkFig14aCorrelation compares positive / independent / negative
// social↔spatial correlation (locations re-synthesized around the query).
func BenchmarkFig14aCorrelation(b *testing.B) {
	base := getEngine(b, "foursquare", nil)
	for _, sign := range []gen.CorrelationSign{gen.PositiveCorrelation, gen.IndependentCorrelation, gen.NegativeCorrelation} {
		q := base.users[0]
		ds, err := gen.CorrelatedDataset(base.ds, q, sign, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := core.NewEngine(ds, exp.EngineOptions(exp.DefaultS, false, 1, benchSeed))
		if err != nil {
			b.Fatal(err)
		}
		be := &benchEngine{eng: eng, ds: ds, users: []graph.VertexID{q}}
		b.Run(sign.String(), func(b *testing.B) {
			benchQueries(b, be, core.AIS, exp.DefaultK, exp.DefaultAlpha)
		})
	}
}

// BenchmarkFig14bScalability sweeps the data size via forest-fire samples.
func BenchmarkFig14bScalability(b *testing.B) {
	base := getEngine(b, "foursquare", nil)
	for _, size := range []int{1000, 2000, 4000} {
		var ds *dataset.Dataset
		var err error
		if size >= base.ds.NumUsers() {
			ds = base.ds
		} else if ds, err = gen.SampledDataset(base.ds, size, benchSeed); err != nil {
			b.Fatal(err)
		}
		eng, err := core.NewEngine(ds, exp.EngineOptions(exp.DefaultS, false, 1, benchSeed))
		if err != nil {
			b.Fatal(err)
		}
		be := &benchEngine{eng: eng, ds: ds, users: exp.QueryUsers(ds, benchQueryCnt, benchSeed)}
		for _, algo := range []core.Algorithm{core.SFA, core.AIS} {
			b.Run(fmt.Sprintf("n=%d/%v", size, algo), func(b *testing.B) {
				benchQueries(b, be, algo, exp.DefaultK, exp.DefaultAlpha)
			})
		}
	}
}

// --- Ablations (design choices from DESIGN.md §4) ---

// BenchmarkAblationFwdEvery varies GraphDist's forward/reverse balance
// (Algorithm 3 alternates 1:1; larger values starve the shared forward
// search — see the delayed-evaluation discussion in EXPERIMENTS.md).
func BenchmarkAblationFwdEvery(b *testing.B) {
	for _, fe := range []int{1, 2, 4} {
		fe := fe
		be := getEngine(b, "gowalla", func(o *core.Options) { o.FwdEvery = fe })
		b.Run(fmt.Sprintf("fwdEvery=%d", fe), func(b *testing.B) {
			benchQueries(b, be, core.AIS, exp.DefaultK, exp.DefaultAlpha)
		})
	}
}

// BenchmarkAblationLandmarkCount varies M (the paper fine-tuned M=8).
func BenchmarkAblationLandmarkCount(b *testing.B) {
	for _, m := range []int{4, 8, 16} {
		m := m
		be := getEngine(b, "gowalla", func(o *core.Options) { o.NumLandmarks = m })
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			benchQueries(b, be, core.AIS, exp.DefaultK, exp.DefaultAlpha)
		})
	}
}

// BenchmarkAblationLandmarkStrategy compares selection strategies.
func BenchmarkAblationLandmarkStrategy(b *testing.B) {
	for _, st := range []landmark.Strategy{landmark.Farthest, landmark.HighestDegree, landmark.Random} {
		st := st
		be := getEngine(b, "gowalla", func(o *core.Options) { o.LandmarkStrategy = st })
		b.Run(st.String(), func(b *testing.B) {
			benchQueries(b, be, core.AIS, exp.DefaultK, exp.DefaultAlpha)
		})
	}
}

// BenchmarkAblationGridLevels varies the number of stored grid levels (the
// paper keeps the lowest two of a three-level hierarchy).
func BenchmarkAblationGridLevels(b *testing.B) {
	for _, l := range []int{1, 2, 3} {
		l := l
		be := getEngine(b, "gowalla", func(o *core.Options) { o.GridLevels = l; o.GridS = 6 })
		b.Run(fmt.Sprintf("levels=%d", l), func(b *testing.B) {
			benchQueries(b, be, core.AIS, exp.DefaultK, exp.DefaultAlpha)
		})
	}
}

// --- Concurrent serving (the batched/parallel query path) ---

// BenchmarkBatchThroughput measures queries/sec through Engine.QueryBatch
// at 1 worker versus GOMAXPROCS workers. On a multi-core host the second
// series demonstrates the parallel speedup of the batched serving path; on
// a single core the two coincide.
func BenchmarkBatchThroughput(b *testing.B) {
	be := getEngine(b, "gowalla", nil)
	prm := core.Params{K: exp.DefaultK, Alpha: exp.DefaultAlpha}
	const batchSize = 64
	batch := make([]core.BatchQuery, batchSize)
	for i := range batch {
		batch[i] = core.BatchQuery{Algo: core.AIS, Q: be.users[i%len(be.users)], Params: prm}
	}
	workerCounts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		workerCounts = append(workerCounts, p)
	}
	for _, workers := range workerCounts {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				outs := be.eng.QueryBatch(batch, workers)
				for j := range outs {
					if outs[j].Err != nil {
						b.Fatal(outs[j].Err)
					}
				}
			}
			b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkQueriesUnderConcurrentMovers measures query throughput while
// background goroutines continuously relocate users through the batching
// update pipeline — the live-updates workload the epoch/snapshot design
// exists for. Queries are lock-free against published epochs, so on
// multi-core hosts the movers= series stay close to movers=0 instead of
// serializing behind the writers.
func BenchmarkQueriesUnderConcurrentMovers(b *testing.B) {
	be := getEngine(b, "twitter", nil) // all users located
	prm := core.Params{K: exp.DefaultK, Alpha: exp.DefaultAlpha}
	n := be.ds.NumUsers()
	for _, movers := range []int{0, 1, 2} {
		movers := movers
		b.Run(fmt.Sprintf("movers=%d", movers), func(b *testing.B) {
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for m := 0; m < movers; m++ {
				wg.Add(1)
				go func(m int) {
					defer wg.Done()
					i := m
					for {
						select {
						case <-stop:
							return
						default:
							id := int32(i % n)
							p := be.ds.Pts[id] // construction-time coords; stable under moves
							if err := be.eng.MoveUserAsync(id, spatial.Point{X: 1 - p.X, Y: 1 - p.Y}); err != nil {
								return
							}
							i += movers
						}
					}
				}(m)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := be.users[i%len(be.users)]
				if _, err := be.eng.Query(core.AIS, q, prm); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			be.eng.Flush()
		})
	}
}

// BenchmarkShardedQuery measures the partitioned engine's fan-out query path
// at several shard counts. The home shard runs first and seeds the shared
// fan-out threshold; remote shards are pruned when their Lemma-2 admission
// bound cannot beat it, and the survivors tighten the same threshold
// concurrently. S=1 is the monolith baseline the fan-out overhead is read
// against.
func BenchmarkShardedQuery(b *testing.B) {
	ds, err := gen.GowallaPreset.Dataset(benchSizes["gowalla"], benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	users := exp.QueryUsers(ds, benchQueryCnt, benchSeed)
	prm := core.Params{K: exp.DefaultK, Alpha: exp.DefaultAlpha}
	for _, S := range []int{1, 2, 4} {
		se, err := shard.New(ds, S, exp.EngineOptions(exp.DefaultS, false, 1, benchSeed))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("S=%d", S), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := users[i%len(users)]
				if _, err := se.Query(core.AIS, q, prm); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			fs := se.FanoutStats()
			if fs.Fanouts > 0 {
				b.ReportMetric(float64(fs.ShardsPruned)/float64(fs.Fanouts), "pruned/fanout")
			}
		})
		se.Close()
	}
}

// BenchmarkIndexBuild measures full engine construction (landmark tables,
// grid, social summaries).
func BenchmarkIndexBuild(b *testing.B) {
	ds, err := gen.GowallaPreset.Dataset(benchSizes["gowalla"], benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewEngine(ds, exp.EngineOptions(exp.DefaultS, false, 1, benchSeed)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocationUpdate measures §5.1 index maintenance under movement on
// the synchronous path: every move is its own published epoch, so this is
// the worst case for the copy-on-write design (the whole COW cost lands on
// one move). BenchmarkLocationUpdateBatched shows the amortized cost the
// update pipeline actually pays.
func BenchmarkLocationUpdate(b *testing.B) {
	be := getEngine(b, "twitter", nil) // all users located
	pts := be.ds.Pts
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := int32(i % be.ds.NumUsers())
		p := pts[id]
		if err := be.eng.MoveUser(id, spatial.Point{X: 1 - p.X, Y: 1 - p.Y}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocationUpdateBatched measures the same maintenance through
// ApplyUpdates at the updater's default batch size: one COW epoch per
// batch, amortized across its moves (reported per move).
func BenchmarkLocationUpdateBatched(b *testing.B) {
	be := getEngine(b, "twitter", nil)
	pts := be.ds.Pts
	n := be.ds.NumUsers()
	const batch = 256
	ops := make([]core.Update, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ops {
			id := int32((i*batch + j) % n)
			p := pts[id]
			ops[j] = core.Update{ID: id, To: spatial.Point{X: 1 - p.X, Y: 1 - p.Y}}
		}
		if err := be.eng.ApplyUpdates(ops); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/move")
}

// BenchmarkEdgeUpdateSingle measures one edge upsert+publish per epoch —
// graph overlay row rebuild, incremental landmark repair (bounded
// re-relaxation), affected-cell summary recompute and snapshot publication
// all land on a single op.
func BenchmarkEdgeUpdateSingle(b *testing.B) {
	be := getEngine(b, "twitter", func(o *core.Options) { o.LandmarkRepairBudget = 1 << 30 })
	n := int32(be.ds.NumUsers())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := int32(i) % n
		v := (u + 1 + int32(i)%97) % n
		if u == v {
			continue
		}
		var err error
		if i%2 == 0 {
			err = be.eng.AddFriend(u, v, 0.1)
		} else {
			err = be.eng.RemoveFriend(u, v)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEdgeUpdateBatched measures the same maintenance through
// ApplyUpdates at the updater's default batch size: one epoch per batch
// (reported per edge op).
func BenchmarkEdgeUpdateBatched(b *testing.B) {
	be := getEngine(b, "twitter", func(o *core.Options) {
		o.LandmarkRepairBudget = 1 << 30
		o.Seed = 1 // distinct cache key from the single-op bench
	})
	n := int32(be.ds.NumUsers())
	const batch = 256
	ops := make([]core.Update, 0, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops = ops[:0]
		for j := 0; len(ops) < batch; j++ {
			u := int32(i*batch+j) % n
			v := (u + 1 + int32(j)%89) % n
			if u == v {
				continue
			}
			if j%2 == 0 {
				ops = append(ops, core.Update{Kind: core.OpEdgeUpsert, U: u, V: v, W: 0.1})
			} else {
				ops = append(ops, core.Update{Kind: core.OpEdgeRemove, U: u, V: v})
			}
		}
		if err := be.eng.ApplyUpdates(ops); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/edgeop")
}

// BenchmarkQueriesUnderEdgeChurn measures AIS latency while a background
// goroutine churns friendships through the async pipeline — the query path
// must stay lock-free regardless of social write pressure.
func BenchmarkQueriesUnderEdgeChurn(b *testing.B) {
	be := getEngine(b, "gowalla", func(o *core.Options) { o.Seed = 2 })
	n := int32(be.ds.NumUsers())
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			u := int32(i) % n
			v := (u + 1 + int32(i)%83) % n
			if u != v {
				if i%3 == 0 {
					_ = be.eng.RemoveFriendAsync(u, v)
				} else {
					_ = be.eng.AddFriendAsync(u, v, 0.1)
				}
			}
			i++
		}
	}()
	prm := core.Params{K: 10, Alpha: 0.3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := be.users[i%len(be.users)]
		if _, err := be.eng.Query(core.AIS, q, prm); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	be.eng.Flush()
}
