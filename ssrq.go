// Package ssrq is a Go implementation of the Social and Spatial Ranking
// Query from Mouratidis, Li, Tang and Mamoulis, "Joint Search by Social and
// Spatial Proximity" (IEEE TKDE 27(3), 2015).
//
// Given a query user, SSRQ returns the k users minimizing
//
//	f(u_q, u) = α·p(v_q, v) + (1−α)·d(u_q, u)
//
// where p is normalized shortest-path distance in the weighted social graph
// and d is normalized Euclidean distance between current locations. The
// package bundles every processing algorithm from the paper — the SFA/SPA
// baselines, the twofold search TSA (round-robin and Quick-Combine), and the
// flagship Aggregate Index Search with social summaries, computation sharing
// and delayed evaluation — plus the substrates they need (multi-level grid,
// landmark/ALT machinery, contraction hierarchies) and synthetic geo-social
// dataset generators standing in for the paper's Gowalla/Foursquare/Twitter
// snapshots.
//
// Quick start:
//
//	ds, _ := ssrq.Synthesize("gowalla", 10000, 42)
//	eng, _ := ssrq.NewEngine(ds, nil)
//	res, _ := eng.TopK(queryUser, 10, 0.3)
//	for _, e := range res.Entries {
//	    fmt.Println(e.ID, e.F)
//	}
package ssrq

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ssrq/internal/aggindex"
	"ssrq/internal/core"
	"ssrq/internal/dataset"
	"ssrq/internal/gen"
	"ssrq/internal/graph"
	"ssrq/internal/landmark"
	"ssrq/internal/shard"
	"ssrq/internal/spatial"
	"ssrq/internal/sub"
	"ssrq/internal/wal"
)

// UserID identifies a user; users are dense integers in [0, NumUsers).
type UserID = int32

// Point is a location in 2-D Euclidean space.
type Point = spatial.Point

// Edge is an undirected friendship. Weight is the connection strength —
// smaller means stronger (§3 of the paper); it must be positive, or zero to
// request the paper's degree-product weighting for the whole graph.
type Edge struct {
	U, V   UserID
	Weight float64
}

// Algorithm selects the query processing method.
type Algorithm = core.Algorithm

// The full algorithm suite. AIS is the paper's best method and the default.
const (
	SFA           = core.SFA
	SPA           = core.SPA
	TSA           = core.TSA
	TSAQC         = core.TSAQC
	TSANoLandmark = core.TSANoLandmark
	AISBID        = core.AISBID
	AISMinus      = core.AISMinus
	AIS           = core.AIS
	AISCache      = core.AISCache
	SFACH         = core.SFACH
	SPACH         = core.SPACH
	TSACH         = core.TSACH
	BruteForce    = core.BruteForce
)

// Result is a completed query: entries sorted by ascending ranking value,
// plus execution statistics (pop counts per search structure).
type Result = core.Result

// Entry is one recommended user: the ranking value F and its normalized
// social (P) and spatial (D) components.
type Entry = core.Entry

// Stats instruments one query execution.
type Stats = core.Stats

// DatasetStats summarizes a dataset (the paper's Table 2).
type DatasetStats = dataset.Stats

// Norms are the per-domain normalization constants; raw distance =
// normalized distance × constant.
type Norms = dataset.Norms

// Dataset is a geo-social dataset: a weighted social graph plus current
// user locations (possibly unknown for some users).
type Dataset struct {
	ds *dataset.Dataset
}

// NewDataset builds a dataset from raw parts. locations maps users to raw
// coordinates; users absent from the map are treated as "infinitely far
// away" exactly as the paper prescribes. If every edge carries Weight 0 the
// paper's §6 degree-product weights are derived automatically.
func NewDataset(name string, numUsers int, edges []Edge, locations map[UserID]Point) (*Dataset, error) {
	if numUsers <= 0 {
		return nil, fmt.Errorf("ssrq: numUsers must be positive")
	}
	allZero := true
	for _, e := range edges {
		if e.Weight != 0 {
			allZero = false
			break
		}
	}
	b := graph.NewBuilder(numUsers)
	if allZero && len(edges) > 0 {
		deg := make([]int, numUsers)
		maxDeg := 1
		for _, e := range edges {
			if e.U < 0 || int(e.U) >= numUsers || e.V < 0 || int(e.V) >= numUsers {
				return nil, fmt.Errorf("ssrq: edge (%d,%d) out of range", e.U, e.V)
			}
			deg[e.U]++
			deg[e.V]++
		}
		for _, d := range deg {
			if d > maxDeg {
				maxDeg = d
			}
		}
		denom := float64(maxDeg) * float64(maxDeg)
		for _, e := range edges {
			w := float64(deg[e.U]) * float64(deg[e.V]) / denom
			if w <= 0 {
				w = 1e-9
			}
			if err := b.AddEdge(e.U, e.V, w); err != nil {
				return nil, fmt.Errorf("ssrq: %w", err)
			}
		}
	} else {
		for _, e := range edges {
			if err := b.AddEdge(e.U, e.V, e.Weight); err != nil {
				return nil, fmt.Errorf("ssrq: %w", err)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("ssrq: %w", err)
	}
	pts := make([]spatial.Point, numUsers)
	located := make([]bool, numUsers)
	for id, p := range locations {
		if id < 0 || int(id) >= numUsers {
			return nil, fmt.Errorf("ssrq: located user %d out of range", id)
		}
		pts[id] = p
		located[id] = true
	}
	ds, err := dataset.New(name, g, pts, located)
	if err != nil {
		return nil, fmt.Errorf("ssrq: %w", err)
	}
	return &Dataset{ds: ds}, nil
}

// Synthesize generates a paper-substitute dataset: preset is "gowalla",
// "foursquare" or "twitter" (matching Table 2's degree and located-fraction
// profiles; see DESIGN.md for the substitution rationale), or one of the
// literature-derived workload presets "urban" (distance-dependent edge
// probability after Herrera-Yagüe et al.) and "homophily" (hierarchical
// attribute homophily after Watts et al.), both of which also attach
// spatially-clustered user labels for filtered queries.
func Synthesize(preset string, n int, seed int64) (*Dataset, error) {
	var p gen.Preset
	switch preset {
	case "gowalla":
		p = gen.GowallaPreset
	case "foursquare":
		p = gen.FoursquarePreset
	case "twitter":
		p = gen.TwitterPreset
	case "urban":
		p = gen.UrbanPreset
	case "homophily":
		p = gen.HomophilyPreset
	default:
		return nil, fmt.Errorf("ssrq: unknown preset %q (gowalla|foursquare|twitter|urban|homophily)", preset)
	}
	ds, err := p.Dataset(n, seed)
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds}, nil
}

// LoadDataset reads a dataset saved with Save.
func LoadDataset(path string) (*Dataset, error) {
	ds, err := dataset.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds}, nil
}

// Save writes the dataset to path (gob encoding, raw coordinates).
func (d *Dataset) Save(path string) error { return d.ds.SaveFile(path) }

// NumUsers returns the number of users.
func (d *Dataset) NumUsers() int { return d.ds.NumUsers() }

// Located reports whether the user's location is known.
func (d *Dataset) Located(id UserID) bool { return d.ds.Located[id] }

// Location returns the user's raw coordinates as of dataset construction;
// ok is false when unknown. Moves applied through an Engine do not write
// back to the dataset — use Engine.UserLocation for the live position.
func (d *Dataset) Location(id UserID) (Point, bool) {
	if !d.ds.Located[id] {
		return Point{}, false
	}
	p := d.ds.Pts[id]
	return Point{X: p.X * d.ds.Norms.Spatial, Y: p.Y * d.ds.Norms.Spatial}, true
}

// SetLabels attaches a per-user label bitmask (bit i set = user carries
// label i, up to 64 labels) used by filtered queries. Labels are a fixed
// attribute of the dataset: set them before building an engine. Pass nil to
// clear. len(labels) must equal NumUsers.
func (d *Dataset) SetLabels(labels []uint64) error { return d.ds.SetLabels(labels) }

// Labels returns the user's label bitmask (0 when unlabeled).
func (d *Dataset) Labels(id UserID) uint64 { return d.ds.LabelsOf(id) }

// LabelMask builds a filter bitmask from label indices in [0, 64). Use with
// Params.Filter: a filtered query reports only users carrying at least one
// of the requested labels.
func LabelMask(indices ...int) (uint64, error) {
	var m uint64
	for _, i := range indices {
		if i < 0 || i > 63 {
			return 0, fmt.Errorf("ssrq: label index %d out of [0,64)", i)
		}
		m |= 1 << uint(i)
	}
	return m, nil
}

// Stats returns Table 2-style statistics.
func (d *Dataset) Stats() DatasetStats { return d.ds.Stats() }

// Norms returns the normalization constants.
func (d *Dataset) Norms() Norms { return d.ds.Norms }

// Options configure an Engine (the paper's system parameters, Table 3).
// The zero value of every field selects the paper's default.
type Options struct {
	// GridS is the grid partitioning granularity s (default 10).
	GridS int
	// GridLevels is the number of stored grid levels (default 2).
	GridLevels int
	// NumLandmarks is M (default 8).
	NumLandmarks int
	// LandmarkStrategy: 0 = farthest (paper), 1 = highest-degree, 2 = random.
	LandmarkStrategy int
	// Seed drives randomized preprocessing.
	Seed int64
	// BuildCH additionally builds a contraction hierarchy, enabling the
	// SFACH/SPACH/TSACH comparison variants. Expensive on large graphs.
	BuildCH bool
	// CacheT is the §5.4 pre-computed list length for AISCache (default 1000).
	CacheT int
	// UpdateQueueCap bounds the MoveUserAsync queue; a full queue applies
	// backpressure (default 4096).
	UpdateQueueCap int
	// UpdateMaxBatch caps how many queued updates the asynchronous updater
	// coalesces into one published epoch (default 256).
	UpdateMaxBatch int
	// LandmarkRepairBudget caps the per-landmark per-edge-update incremental
	// table repair before the landmark is disabled and rebuilt in the
	// background (default 256). Larger values repair more churn in place;
	// smaller values shed work to the asynchronous rebuild sooner.
	LandmarkRepairBudget int
	// OverlayCompactThreshold is the edge-overlay delta size (vertices with
	// modified adjacency) that triggers compaction back into a flat CSR
	// (default max(1024, n/8)).
	OverlayCompactThreshold int
	// CHRepairBudget caps how many vertices one in-place contraction-
	// hierarchy repair may re-contract after a batch of friendship
	// insertions/strengthenings before deferring to the background full
	// rebuild (default 512). The budget bounds the witness-search work; each
	// repair also pays a linear replay pass (~one landmark Dijkstra) under
	// the writer lock, so very large deployments may prefer a negative value
	// (disables in-place repair, every churn epoch rebuilds in the
	// background). Only meaningful with BuildCH.
	CHRepairBudget int
	// ForcedInstallInterval rate-limits the install-under-writer-lock
	// fallback that bounds landmark/CH rebuild starvation under sustained
	// churn (default 2s; negative disables forced installs).
	ForcedInstallInterval time.Duration
	// Shards spatially partitions the engine: users are split across this
	// many spatially-contiguous shards (space-filling-curve assignment of
	// grid regions), each owning its own complete index and update pipeline.
	// Queries fan out in parallel with bound-based shard pruning and a k-way
	// merge; results are exactly the unsharded engine's. 0 or 1 selects the
	// single monolithic index. The social graph is replicated per shard
	// (edge updates broadcast), so sharding scales the spatial dimension and
	// query parallelism, at a memory/edge-churn cost linear in Shards.
	Shards int
	// Durability, when non-nil, journals every world mutation to a
	// write-ahead log in Durability.Dir and recovers state from it on
	// startup (newest checkpoint + tail replay). See DurabilityOptions
	// and OpenOrRecover in durability.go.
	Durability *DurabilityOptions
}

// engineAPI is the query/update surface shared by the monolithic
// core.Engine and the spatially-partitioned shard.Engine; the root Engine
// programs exclusively against it, so the two are interchangeable behind
// Options.Shards.
type engineAPI interface {
	Query(algo core.Algorithm, q graph.VertexID, prm core.Params) (*core.Result, error)
	QueryBatch(queries []core.BatchQuery, workers int) []core.BatchResult
	ApplyUpdates(ops []core.Update) error
	MoveUserAsync(id int32, to spatial.Point) error
	RemoveUserLocationAsync(id int32) error
	RemoveUserLocation(id int32) error
	AddFriend(u, v int32, w float64) error
	RemoveFriend(u, v int32) error
	AddFriendAsync(u, v int32, w float64) error
	RemoveFriendAsync(u, v int32) error
	Flush()
	Close()
	SocialStats() core.SocialStats
	SupportsEdgeChurn() bool
	RebuildLandmarks() int
	RebuildCH() bool
	Precompute(users []graph.VertexID)
	UpdateStats() core.UpdateStats
	UserLocation(id int32) (spatial.Point, bool)
	NumLocated() int
	LiveSocialGraph() *graph.Graph
	SpatialKNN(q int32, k int) ([]spatial.Neighbor, error)
	OnEpoch(fn func(aggindex.EpochDelta))
	SetOpLog(fn func(ops []core.Update))
	MutationBarrier()
	ExportDiff() []core.Update
}

// Engine answers SSRQ queries over one dataset. The engine is safe for
// concurrent use and queries are lock-free: each query atomically loads the
// current index epoch (grid membership, coordinates and AIS summaries
// published together as one immutable snapshot) and runs entirely against
// it, so location updates never block queries and queries never block
// updates. Updates are either synchronous (MoveUser/ApplyUpdates publish a
// new epoch before returning) or asynchronous (MoveUserAsync feeds a
// batching pipeline; Flush is the read-your-writes barrier).
//
// With Options.Shards ≥ 2 the engine is spatially partitioned: each shard
// owns a complete index over its region's users, queries fan out in
// parallel with bound-based shard pruning, and updates route to the owning
// shard — same API, same results, S-way write and query scaling.
type Engine struct {
	eng engineAPI
	d   *Dataset

	// subs is the continuous-subscription layer, created lazily on the
	// first Subscribe call so query-only engines pay nothing for it.
	subMu sync.Mutex
	subs  *sub.Engine

	// Durability state (see durability.go); all zero for a non-durable
	// engine. log outlives eng.Close so the final drain is journaled.
	log         *wal.Log
	recovered   *RecoveryInfo
	ckptEvery   int64
	ckptBusy    atomic.Bool
	opsSince    atomic.Int64
	walWG       sync.WaitGroup
	walClosed   atomic.Bool
	walCloseErr atomic.Pointer[error]
}

// NewEngine builds all indexes (grid, social summaries, landmark tables,
// optionally a contraction hierarchy). opts may be nil for paper defaults.
func NewEngine(d *Dataset, opts *Options) (*Engine, error) {
	if d == nil {
		return nil, fmt.Errorf("ssrq: nil dataset")
	}
	var o Options
	if opts != nil {
		o = *opts
	}
	copts := core.Options{
		GridS:                   o.GridS,
		GridLevels:              o.GridLevels,
		NumLandmarks:            o.NumLandmarks,
		LandmarkStrategy:        landmark.Strategy(o.LandmarkStrategy),
		Seed:                    o.Seed,
		BuildCH:                 o.BuildCH,
		CacheT:                  o.CacheT,
		UpdateQueueCap:          o.UpdateQueueCap,
		UpdateMaxBatch:          o.UpdateMaxBatch,
		LandmarkRepairBudget:    o.LandmarkRepairBudget,
		OverlayCompactThreshold: o.OverlayCompactThreshold,
		CHRepairBudget:          o.CHRepairBudget,
		ForcedInstallInterval:   o.ForcedInstallInterval,
	}
	var (
		eng engineAPI
		err error
	)
	if o.Shards >= 2 {
		eng, err = shard.New(d.ds, o.Shards, copts)
	} else {
		eng, err = core.NewEngine(d.ds, copts)
	}
	if err != nil {
		return nil, err
	}
	e := &Engine{eng: eng, d: d}
	if o.Durability != nil {
		if err := e.attachDurability(*o.Durability); err != nil {
			e.eng.Close()
			return nil, err
		}
	}
	return e, nil
}

// NumShards returns the number of spatial shards (1 for the monolithic
// engine).
func (e *Engine) NumShards() int {
	if se, ok := e.eng.(*shard.Engine); ok {
		return se.NumShards()
	}
	return 1
}

// ShardStat is one shard's live state (see ShardStats).
type ShardStat = shard.ShardStat

// FanoutStats counts the sharded engine's fan-out pruning behaviour.
type FanoutStats = shard.FanoutStats

// ShardStats returns a point-in-time view of every shard, nil for the
// monolithic engine.
func (e *Engine) ShardStats() []ShardStat {
	if se, ok := e.eng.(*shard.Engine); ok {
		return se.ShardStats()
	}
	return nil
}

// FanoutStats returns the sharded engine's accumulated fan-out counters
// (zero value for the monolithic engine).
func (e *Engine) FanoutStats() FanoutStats {
	if se, ok := e.eng.(*shard.Engine); ok {
		return se.FanoutStats()
	}
	return FanoutStats{}
}

// RebalanceStats counts the sharded engine's elastic re-cuts.
type RebalanceStats = shard.RebalanceStats

// RebalanceStats returns the sharded engine's rebalance counters (zero value
// for the monolithic engine, whose single partition never moves).
func (e *Engine) RebalanceStats() RebalanceStats {
	if se, ok := e.eng.(*shard.Engine); ok {
		return se.RebalanceStats()
	}
	return RebalanceStats{}
}

// Imbalance reports the sharded engine's current occupancy imbalance
// (max/mean located users per shard; 1 for the monolithic engine).
func (e *Engine) Imbalance() float64 {
	if se, ok := e.eng.(*shard.Engine); ok {
		return se.Imbalance()
	}
	return 1
}

// Dataset returns the engine's dataset.
func (e *Engine) Dataset() *Dataset { return e.d }

// TopK answers an SSRQ with the paper's best algorithm (AIS): the k users
// minimizing f = α·p + (1−α)·d. alpha must lie strictly in (0, 1).
func (e *Engine) TopK(q UserID, k int, alpha float64) (*Result, error) {
	return e.eng.Query(core.AIS, q, core.Params{K: k, Alpha: alpha})
}

// TopKWith answers an SSRQ with a specific algorithm.
func (e *Engine) TopKWith(algo Algorithm, q UserID, k int, alpha float64) (*Result, error) {
	return e.eng.Query(algo, q, core.Params{K: k, Alpha: alpha})
}

// Query answers an SSRQ with explicit parameters — the way to run a
// label-filtered query (set Params.Filter, e.g. via LabelMask). With a
// nonzero filter only users carrying at least one requested label are
// reported; the engines prune whole index subtrees (and, sharded, whole
// shards) whose aggregated label masks miss the filter.
func (e *Engine) Query(algo Algorithm, q UserID, prm Params) (*Result, error) {
	return e.eng.Query(algo, q, prm)
}

// BatchQuery is one query of a batch (see TopKBatch / QueryBatch).
type BatchQuery = core.BatchQuery

// BatchResult pairs one batch query's result with its error.
type BatchResult = core.BatchResult

// Params are the ranking parameters of one query.
type Params = core.Params

// TopKBatch answers many SSRQs with the same algorithm and parameters on a
// pool of workers (workers <= 0 selects GOMAXPROCS), returning outcomes in
// input order. Batches run concurrently with each other and with location
// updates.
func (e *Engine) TopKBatch(algo Algorithm, qs []UserID, k int, alpha float64, workers int) []BatchResult {
	batch := make([]BatchQuery, len(qs))
	for i, q := range qs {
		batch[i] = BatchQuery{Algo: algo, Q: q, Params: core.Params{K: k, Alpha: alpha}}
	}
	return e.eng.QueryBatch(batch, workers)
}

// QueryBatch answers a heterogeneous batch (per-item algorithm and
// parameters) on a pool of workers.
func (e *Engine) QueryBatch(queries []BatchQuery, workers int) []BatchResult {
	return e.eng.QueryBatch(queries, workers)
}

// UserLocation returns a user's current raw coordinates as of the latest
// published epoch, so it is safe concurrently with movers (unlike reading
// the Dataset directly). ok is false when the location is unknown.
func (e *Engine) UserLocation(id UserID) (Point, bool) {
	p, ok := e.eng.UserLocation(id)
	if !ok {
		return Point{}, false
	}
	norm := e.d.ds.Norms.Spatial
	return Point{X: p.X * norm, Y: p.Y * norm}, true
}

// DatasetStats returns Table 2-style statistics; NumLocated and NumEdges
// reflect the latest published epoch (they vary as movers and edge churners
// run).
func (e *Engine) DatasetStats() DatasetStats {
	st := e.d.ds.Stats()
	st.NumLocated = e.eng.NumLocated()
	if g := e.eng.LiveSocialGraph(); g != nil {
		st.NumEdges = g.NumEdges()
		st.AvgDegree = g.AvgDegree()
	}
	return st
}

// UpdateStats reports the state of the epoch/update pipeline: published
// epoch number, snapshot age, and pending/applied/coalesced counts of the
// asynchronous updater.
type UpdateStats = core.UpdateStats

// UpdateStats returns a point-in-time view of the update pipeline.
func (e *Engine) UpdateStats() UpdateStats { return e.eng.UpdateStats() }

// Update is one bulk location update in raw coordinates: a move (Remove
// false) or a location removal (Remove true, To ignored).
type Update struct {
	ID     UserID
	To     Point
	Remove bool
}

// normalize converts a raw-coordinate update to the engine's internal form.
func (e *Engine) normalize(u Update) core.Update {
	norm := e.d.ds.Norms.Spatial
	return core.Update{ID: u.ID, To: Point{X: u.To.X / norm, Y: u.To.Y / norm}, Remove: u.Remove}
}

// MoveUser updates a user's current location (raw coordinates), maintaining
// the spatial grid and the AIS social summaries incrementally (§5.1) and
// publishing the change as one epoch before returning. Safe concurrently
// with queries and other updates; never blocks queries. Rejects out-of-range
// users and NaN/±Inf coordinates.
func (e *Engine) MoveUser(id UserID, to Point) error {
	return e.eng.ApplyUpdates([]core.Update{e.normalize(Update{ID: id, To: to})})
}

// MoveUserAsync enqueues a relocation (raw coordinates) on the engine's
// batching update pipeline and returns without waiting for it to be
// published; the pipeline coalesces redundant moves per user and applies
// queued updates in amortized batches. Call Flush for a read-your-writes
// barrier. Rejects out-of-range users and NaN/±Inf coordinates immediately.
func (e *Engine) MoveUserAsync(id UserID, to Point) error {
	u := e.normalize(Update{ID: id, To: to})
	return e.eng.MoveUserAsync(u.ID, u.To)
}

// RemoveUserLocationAsync enqueues a location removal on the update
// pipeline.
func (e *Engine) RemoveUserLocationAsync(id UserID) error {
	return e.eng.RemoveUserLocationAsync(id)
}

// ApplyUpdates validates and applies a batch of raw-coordinate updates as a
// single published epoch — the cheapest way to ingest bulk location data.
// On a validation error nothing is applied.
func (e *Engine) ApplyUpdates(ups []Update) error {
	ops := make([]core.Update, len(ups))
	for i, u := range ups {
		ops[i] = e.normalize(u)
	}
	return e.eng.ApplyUpdates(ops)
}

// Flush blocks until every update enqueued with MoveUserAsync /
// RemoveUserLocationAsync before the call has been applied and published.
func (e *Engine) Flush() { e.eng.Flush() }

// Close drains the asynchronous update pipeline and stops it, after first
// tearing down the subscription layer — every live Subscription's notify
// channel is closed (terminating SSE streams and other consumers) and the
// in-flight evaluation round is waited out before the underlying engine
// shuts down. Idempotent; queries keep working after Close, only the push
// and async update paths shut down.
func (e *Engine) Close() {
	e.subMu.Lock()
	subs := e.subs
	e.subs = nil
	e.subMu.Unlock()
	if subs != nil {
		subs.Close()
	}
	// Stop accepting auto-checkpoints and wait out an in-flight one before
	// the engine drains; the WAL stays open through eng.Close so the ops
	// the drain applies are journaled, then seals last.
	e.walClosed.Store(true)
	e.walWG.Wait()
	e.eng.Close()
	if e.log != nil {
		if err := e.log.Close(); err != nil {
			// The engine is already down; surface the seal failure in
			// stats (Close has no error to return, matching the APIs
			// below it).
			e.walCloseErr.Store(&err)
		}
	}
}

// Subscription is a standing top-k query (see Subscribe).
type Subscription = sub.Subscription

// SubscriptionDelta is the change between two consecutive reads of a
// subscription's result (see Subscription.Delta).
type SubscriptionDelta = sub.Delta

// SubscriptionStats are the subscription layer's counters; the skip rate
// is Skips / (Skips + Evals).
type SubscriptionStats = sub.Stats

// Subscribe registers a standing top-k query for user q: instead of
// re-running TopK, the engine watches every published epoch, proves via
// the batch's touched-user set and Lemma-2 lower bounds when q's result
// cannot have changed (the overwhelmingly common case, skipped silently),
// and re-evaluates only otherwise. Consumers wait on the subscription's
// Notify channel and drain changes with Delta (entries carry normalized
// scores, exactly like TopK results), or poll Result. Close the
// subscription to stop; Engine.Close tears down all of them. Blocks until
// the initial result is evaluated.
func (e *Engine) Subscribe(q UserID, k int, alpha float64) (*Subscription, error) {
	return e.SubscribeParams(q, Params{K: k, Alpha: alpha})
}

// SubscribeParams is Subscribe with explicit parameters — the way to
// register a label-filtered standing query (set Params.Filter).
func (e *Engine) SubscribeParams(q UserID, prm Params) (*Subscription, error) {
	if q < 0 || int(q) >= e.d.NumUsers() {
		return nil, fmt.Errorf("ssrq: subscribe user %d out of range [0,%d)", q, e.d.NumUsers())
	}
	e.subMu.Lock()
	if e.subs == nil {
		e.subs = sub.New(e.eng)
	}
	subs := e.subs
	e.subMu.Unlock()
	return subs.SubscribeParams(q, prm)
}

// SyncSubscriptions is the subscription read-your-writes barrier: it
// flushes the async update pipeline and then blocks until every epoch
// published before the call has been through a subscription evaluation
// round, so every subscription's Result reflects all prior updates.
func (e *Engine) SyncSubscriptions() {
	e.eng.Flush()
	e.subMu.Lock()
	subs := e.subs
	e.subMu.Unlock()
	if subs != nil {
		subs.Sync()
	}
}

// SubscriptionStats returns the subscription layer's counters (zero value
// when nothing ever subscribed).
func (e *Engine) SubscriptionStats() SubscriptionStats {
	e.subMu.Lock()
	subs := e.subs
	e.subMu.Unlock()
	if subs == nil {
		return SubscriptionStats{}
	}
	return subs.Stats()
}

// RemoveUserLocation marks the user's whereabouts unknown; he/she becomes
// "infinitely far away" and leaves all spatial structures.
func (e *Engine) RemoveUserLocation(id UserID) error { return e.eng.RemoveUserLocation(id) }

// EdgeUpdate is one bulk friendship update in raw weight units: an upsert
// (Remove false — insert the edge or change its weight) or a deletion
// (Remove true, Weight ignored).
type EdgeUpdate struct {
	U, V   UserID
	Weight float64
	Remove bool
}

// normalizeEdge converts a raw-weight edge update to the engine's internal
// normalized form.
func (e *Engine) normalizeEdge(u EdgeUpdate) core.Update {
	op := core.Update{U: u.U, V: u.V}
	if u.Remove {
		op.Kind = core.OpEdgeRemove
	} else {
		op.Kind = core.OpEdgeUpsert
		op.W = u.Weight / e.d.ds.Norms.Social
	}
	return op
}

// AddFriend inserts the undirected friendship (u, v) with raw weight w
// (smaller = stronger, must be positive and finite), or changes its weight
// when the edge already exists. The social graph, the landmark tables and
// the AIS summaries move together as one published epoch, so queries never
// observe a half-applied edge. Never blocks queries.
func (e *Engine) AddFriend(u, v UserID, w float64) error {
	return e.eng.AddFriend(u, v, w/e.d.ds.Norms.Social)
}

// RemoveFriend deletes the undirected friendship (u, v); a no-op when the
// edge is absent. Never blocks queries.
func (e *Engine) RemoveFriend(u, v UserID) error { return e.eng.RemoveFriend(u, v) }

// AddFriendAsync enqueues a friendship upsert (raw weight) on the engine's
// batching update pipeline — the same pipeline as MoveUserAsync, so one
// Flush is the read-your-writes barrier for both dimensions. Redundant
// updates for the same pair coalesce to the newest.
func (e *Engine) AddFriendAsync(u, v UserID, w float64) error {
	return e.eng.AddFriendAsync(u, v, w/e.d.ds.Norms.Social)
}

// RemoveFriendAsync enqueues a friendship removal on the update pipeline.
func (e *Engine) RemoveFriendAsync(u, v UserID) error { return e.eng.RemoveFriendAsync(u, v) }

// ApplyEdgeUpdates validates and applies a batch of raw-weight edge updates
// as a single published epoch. On a validation error nothing is applied.
func (e *Engine) ApplyEdgeUpdates(ups []EdgeUpdate) error {
	ops := make([]core.Update, len(ups))
	for i, u := range ups {
		ops[i] = e.normalizeEdge(u)
	}
	return e.eng.ApplyUpdates(ops)
}

// SocialStats is a point-in-time view of the dynamic social graph: edge
// counts, overlay/compaction state and landmark maintenance health
// (incremental repairs, disabled landmarks awaiting rebuild, completed
// rebuilds).
type SocialStats = core.SocialStats

// SocialStats reports the social dimension's counters.
func (e *Engine) SocialStats() SocialStats { return e.eng.SocialStats() }

// SupportsEdgeChurn reports whether this engine accepts friendship updates.
// False only when Options.NumLandmarks exceeds the dynamic-maintenance cap
// of 64 — a permanent property of the engine's configuration.
func (e *Engine) SupportsEdgeChurn() bool { return e.eng.SupportsEdgeChurn() }

// RebuildLandmarks synchronously restores any landmark tables that edge
// churn disabled (the background rebuilder normally handles this). Returns
// how many landmarks were rebuilt.
func (e *Engine) RebuildLandmarks() int { return e.eng.RebuildLandmarks() }

// RebuildCH synchronously re-contracts the current social graph so the
// SFACH/SPACH/TSACH variants serve again immediately after churn (the
// background rebuilder normally handles this; friendship insertions and
// strengthenings are even repaired in place with no refusal window at all).
// Reports whether a rebuild was needed and ran; always false on engines
// built without Options.BuildCH.
func (e *Engine) RebuildCH() bool { return e.eng.RebuildCH() }

// Precompute materializes §5.4 social-distance lists for the given query
// users so AISCache answers without a cold build.
func (e *Engine) Precompute(users []UserID) { e.eng.Precompute(users) }

// SpatialKNN returns the k spatially-nearest located users to q (a pure
// one-domain query, for comparison with SSRQ — cf. Fig. 7b). Lock-free and
// safe concurrently with location updates: the search runs against one
// snapshot epoch per shard.
func (e *Engine) SpatialKNN(q UserID, k int) ([]Entry, error) {
	nbrs, err := e.eng.SpatialKNN(q, k)
	if err != nil {
		return nil, fmt.Errorf("ssrq: user %d has no known location", q)
	}
	out := make([]Entry, len(nbrs))
	for i, nb := range nbrs {
		out[i] = Entry{ID: nb.ID, F: nb.Dist, D: nb.Dist}
	}
	return out, nil
}

// SocialKNN returns the k socially-closest users to q (pure one-domain).
// Lock-free and safe concurrently with edge churn: the expansion runs
// against the latest published social epoch.
func (e *Engine) SocialKNN(q UserID, k int) []Entry {
	it := graph.NewDijkstraIterator(e.eng.LiveSocialGraph(), q)
	var out []Entry
	for len(out) < k {
		v, p, ok := it.Next()
		if !ok {
			break
		}
		if v != q {
			out = append(out, Entry{ID: v, F: p, P: p})
		}
	}
	return out
}
