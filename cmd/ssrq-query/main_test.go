package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-preset", "twitter", "-n", "300", "-k", "5", "-algo", "TSA"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"dataset", "rank", "stats:", "algorithm TSA"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunBadArgs(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-algo", "QUANTUM", "-preset", "twitter", "-n", "200"}, &out, &errOut); code != 1 {
		t.Fatalf("unknown algo run = %d", code)
	}
	if !strings.Contains(errOut.String(), "unknown algorithm") {
		t.Fatalf("stderr: %s", errOut.String())
	}
	if code := run([]string{"-nosuchflag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag run = %d", code)
	}
	if code := run([]string{"-preset", "nope", "-n", "100"}, &out, &errOut); code != 1 {
		t.Fatalf("bad preset run = %d", code)
	}
}
