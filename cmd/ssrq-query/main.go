// Command ssrq-query answers individual SSRQ queries over a saved dataset
// (or a freshly synthesized one) and prints the ranked result with its
// social/spatial decomposition and execution statistics.
//
// Usage:
//
//	ssrq-query -data gowalla.gob -q 123 -k 10 -alpha 0.3
//	ssrq-query -preset twitter -n 5000 -q 7 -algo TSA
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ssrq"
)

var algoByName = map[string]ssrq.Algorithm{
	"SFA": ssrq.SFA, "SPA": ssrq.SPA, "TSA": ssrq.TSA, "TSA-QC": ssrq.TSAQC,
	"AIS-BID": ssrq.AISBID, "AIS-": ssrq.AISMinus, "AIS": ssrq.AIS,
	"AIS-CACHE": ssrq.AISCache, "BRUTE": ssrq.BruteForce,
}

func main() {
	var (
		data   = flag.String("data", "", "dataset file written by ssrq-datagen")
		preset = flag.String("preset", "gowalla", "synthesize this preset when -data is not given")
		n      = flag.Int("n", 5000, "synthetic dataset size when -data is not given")
		seed   = flag.Int64("seed", 42, "seed for synthesis and preprocessing")
		q      = flag.Int("q", -1, "query user (default: first located user)")
		k      = flag.Int("k", 10, "result size")
		alpha  = flag.Float64("alpha", 0.3, "social/spatial preference in (0,1)")
		algo   = flag.String("algo", "AIS", "algorithm: "+strings.Join(algoNames(), "|"))
	)
	flag.Parse()

	var (
		ds  *ssrq.Dataset
		err error
	)
	if *data != "" {
		ds, err = ssrq.LoadDataset(*data)
	} else {
		ds, err = ssrq.Synthesize(*preset, *n, *seed)
	}
	if err != nil {
		fatal(err)
	}

	a, ok := algoByName[strings.ToUpper(*algo)]
	if !ok {
		fatal(fmt.Errorf("unknown algorithm %q (%s)", *algo, strings.Join(algoNames(), "|")))
	}

	eng, err := ssrq.NewEngine(ds, &ssrq.Options{Seed: *seed})
	if err != nil {
		fatal(err)
	}

	query := ssrq.UserID(*q)
	if *q < 0 {
		for v := 0; v < ds.NumUsers(); v++ {
			if ds.Located(ssrq.UserID(v)) {
				query = ssrq.UserID(v)
				break
			}
		}
	}

	res, err := eng.TopKWith(a, query, *k, *alpha)
	if err != nil {
		fatal(err)
	}

	st := ds.Stats()
	fmt.Printf("dataset %s: %d users, %d edges, %d located\n", st.Name, st.NumVertices, st.NumEdges, st.NumLocated)
	fmt.Printf("query user %d, k=%d, alpha=%.2f, algorithm %v\n\n", query, *k, *alpha, a)
	fmt.Printf("%4s  %8s  %10s  %10s  %10s\n", "rank", "user", "f", "social p", "spatial d")
	for i, e := range res.Entries {
		fmt.Printf("%4d  %8d  %10.6f  %10.6f  %10.6f\n", i+1, e.ID, e.F, e.P, e.D)
	}
	s := res.Stats
	fmt.Printf("\nstats: social pops=%d (reverse=%d) spatial pops=%d index pops=%d/%d "+
		"dist calls=%d reinserts=%d pop ratio=%.4f\n",
		s.SocialPops, s.ReversePops, s.SpatialPops, s.IndexUserPops, s.IndexCellPops,
		s.GraphDistCalls, s.Reinserts, s.PopRatio(ds.NumUsers()))
}

func algoNames() []string {
	names := make([]string, 0, len(algoByName))
	for n := range algoByName {
		names = append(names, n)
	}
	return names
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssrq-query:", err)
	os.Exit(1)
}
