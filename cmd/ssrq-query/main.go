// Command ssrq-query answers individual SSRQ queries over a saved dataset
// (or a freshly synthesized one) and prints the ranked result with its
// social/spatial decomposition and execution statistics.
//
// Usage:
//
//	ssrq-query -data gowalla.gob -q 123 -k 10 -alpha 0.3
//	ssrq-query -preset twitter -n 5000 -q 7 -algo TSA
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ssrq"
)

var algoByName = map[string]ssrq.Algorithm{
	"SFA": ssrq.SFA, "SPA": ssrq.SPA, "TSA": ssrq.TSA, "TSA-QC": ssrq.TSAQC,
	"AIS-BID": ssrq.AISBID, "AIS-": ssrq.AISMinus, "AIS": ssrq.AIS,
	"AIS-CACHE": ssrq.AISCache, "BRUTE": ssrq.BruteForce,
}

// run is the whole program minus process concerns: it parses args, answers
// the query, writes the report to stdout and returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ssrq-query", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		data   = fs.String("data", "", "dataset file written by ssrq-datagen")
		preset = fs.String("preset", "gowalla", "synthesize this preset when -data is not given")
		n      = fs.Int("n", 5000, "synthetic dataset size when -data is not given")
		seed   = fs.Int64("seed", 42, "seed for synthesis and preprocessing")
		q      = fs.Int("q", -1, "query user (default: first located user)")
		k      = fs.Int("k", 10, "result size")
		alpha  = fs.Float64("alpha", 0.3, "social/spatial preference in (0,1)")
		algo   = fs.String("algo", "AIS", "algorithm: "+strings.Join(algoNames(), "|"))
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var (
		ds  *ssrq.Dataset
		err error
	)
	if *data != "" {
		ds, err = ssrq.LoadDataset(*data)
	} else {
		ds, err = ssrq.Synthesize(*preset, *n, *seed)
	}
	if err != nil {
		return fail(stderr, err)
	}

	a, ok := algoByName[strings.ToUpper(*algo)]
	if !ok {
		return fail(stderr, fmt.Errorf("unknown algorithm %q (%s)", *algo, strings.Join(algoNames(), "|")))
	}

	eng, err := ssrq.NewEngine(ds, &ssrq.Options{Seed: *seed})
	if err != nil {
		return fail(stderr, err)
	}

	query := ssrq.UserID(*q)
	if *q < 0 {
		for v := 0; v < ds.NumUsers(); v++ {
			if ds.Located(ssrq.UserID(v)) {
				query = ssrq.UserID(v)
				break
			}
		}
	}

	res, err := eng.TopKWith(a, query, *k, *alpha)
	if err != nil {
		return fail(stderr, err)
	}

	st := ds.Stats()
	fmt.Fprintf(stdout, "dataset %s: %d users, %d edges, %d located\n", st.Name, st.NumVertices, st.NumEdges, st.NumLocated)
	fmt.Fprintf(stdout, "query user %d, k=%d, alpha=%.2f, algorithm %v\n\n", query, *k, *alpha, a)
	fmt.Fprintf(stdout, "%4s  %8s  %10s  %10s  %10s\n", "rank", "user", "f", "social p", "spatial d")
	for i, e := range res.Entries {
		fmt.Fprintf(stdout, "%4d  %8d  %10.6f  %10.6f  %10.6f\n", i+1, e.ID, e.F, e.P, e.D)
	}
	s := res.Stats
	fmt.Fprintf(stdout, "\nstats: social pops=%d (reverse=%d) spatial pops=%d index pops=%d/%d "+
		"dist calls=%d reinserts=%d pop ratio=%.4f\n",
		s.SocialPops, s.ReversePops, s.SpatialPops, s.IndexUserPops, s.IndexCellPops,
		s.GraphDistCalls, s.Reinserts, s.PopRatio(ds.NumUsers()))
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func algoNames() []string {
	names := make([]string, 0, len(algoByName))
	for n := range algoByName {
		names = append(names, n)
	}
	return names
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "ssrq-query:", err)
	return 1
}
