// Command ssrq-bench regenerates every table and figure of the paper's
// evaluation section (§6) on synthetic paper-substitute datasets and prints
// the same rows/series the paper reports. It also measures the batched
// serving path (-exp throughput).
//
// Usage:
//
//	ssrq-bench -exp all -scale medium          # everything, default sizes
//	ssrq-bench -exp fig8 -scale small -ch      # one figure, with CH variants
//	ssrq-bench -exp throughput -parallel 8     # batched queries/sec, 8 workers
//
// Experiments: table2 fig7a fig7b fig8 fig9 fig10 fig11 fig12 fig13 fig14a
// fig14b throughput all. Scales: small | medium | large (see internal/exp).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ssrq/internal/exp"
)

// run is the whole program minus process concerns; it returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ssrq-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expID    = fs.String("exp", "all", "experiment id (table2, fig7a..fig14b, throughput, all)")
		scale    = fs.String("scale", "medium", "dataset scale: small|medium|large")
		seed     = fs.Int64("seed", 42, "generator seed")
		withCH   = fs.Bool("ch", false, "include the SFA-CH/SPA-CH/TSA-CH variants in fig8 (slow preprocessing)")
		queries  = fs.Int("queries", 0, "override the number of queries per measurement")
		parallel = fs.Int("parallel", 0, "worker count for -exp throughput (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	sc, err := exp.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *queries > 0 {
		sc.NumQueries = *queries
	}

	fmt.Fprintf(stdout, "ssrq-bench: exp=%s scale=%s seed=%d queries=%d ch=%v\n",
		*expID, sc.Name, *seed, sc.NumQueries, *withCH)
	fmt.Fprintf(stdout, "defaults (Table 3): k=%d alpha=%.1f s=%d M=%d levels=%d\n",
		exp.DefaultK, exp.DefaultAlpha, exp.DefaultS, exp.DefaultM, exp.DefaultLevels)

	suite := exp.NewSuite(sc, *seed, stdout)
	suite.Parallel = *parallel
	start := time.Now()
	if err := suite.Run(*expID, *withCH); err != nil {
		fmt.Fprintln(stderr, "ssrq-bench:", err)
		return 1
	}
	fmt.Fprintf(stdout, "\ncompleted in %v (%d measurements)\n", time.Since(start).Round(time.Millisecond), len(suite.Measurements))
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
