// Command ssrq-bench regenerates every table and figure of the paper's
// evaluation section (§6) on synthetic paper-substitute datasets and prints
// the same rows/series the paper reports. It also measures the concurrent
// serving layer: batched queries (-exp throughput) and query latency under
// sustained location churn (-exp churn), both reporting p50/p95/p99.
//
// Usage:
//
//	ssrq-bench -exp all -scale medium            # everything, default sizes
//	ssrq-bench -exp fig8 -scale small -ch        # one figure, with CH variants
//	ssrq-bench -exp throughput -parallel 8       # batched queries/sec, 8 workers
//	ssrq-bench -exp churn -movers 0,2,8          # latency vs mover count
//	ssrq-bench -exp churn -mrate 500             # throttle movers to 500 moves/s each
//	ssrq-bench -exp socialchurn -erate 0,500,5000 # latency vs edge-update rate
//	ssrq-bench -exp shard -shards 1,4,16          # sharded fan-out latency + pruning
//	ssrq-bench -exp shard -skew -shards 16        # skewed migration + online rebalance
//	ssrq-bench -exp subscribe -subs 2000          # standing top-k subscriptions: delta latency + skip rate
//	ssrq-bench -exp recover                       # WAL churn cost, crash recovery speed, follower tail (self-checking)
//	ssrq-bench -exp throughput -json out.json     # also emit a machine-readable report
//
// Experiments: table2 fig7a fig7b fig8 fig9 fig10 fig11 fig12 fig13 fig14a
// fig14b throughput churn socialchurn shard subscribe recover all. Scales: small |
// medium | large (see internal/exp).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"ssrq/internal/exp"
)

// parseMovers parses a comma-separated list of mover counts.
func parseMovers(raw string) ([]int, error) {
	if raw == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(raw, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad -movers entry %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseRates parses a comma-separated list of edge-update rates (ops/sec;
// 0 = off, negative = unthrottled).
func parseRates(raw string) ([]float64, error) {
	if raw == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(raw, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -erate entry %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseShards parses a comma-separated list of shard counts.
func parseShards(raw string) ([]int, error) {
	if raw == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(raw, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -shards entry %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// run is the whole program minus process concerns; it returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ssrq-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expID    = fs.String("exp", "all", "experiment id (table2, fig7a..fig14b, throughput, filter, recover, all)")
		scale    = fs.String("scale", "medium", "dataset scale: small|medium|large")
		seed     = fs.Int64("seed", 42, "generator seed")
		withCH   = fs.Bool("ch", false, "include the SFA-CH/SPA-CH/TSA-CH variants in fig8 (slow preprocessing)")
		queries  = fs.Int("queries", 0, "override the number of queries per measurement")
		parallel = fs.Int("parallel", 0, "worker count for -exp throughput (0 = GOMAXPROCS)")
		movers   = fs.String("movers", "", "comma-separated mover counts for -exp churn (default 0,1,4)")
		mrate    = fs.Float64("mrate", 0, "moves/sec per mover for -exp churn (0 = unthrottled)")
		erate    = fs.String("erate", "", "comma-separated edge-update rates/sec for -exp socialchurn (0 = off, negative = unthrottled; default 0,200,2000)")
		shards   = fs.String("shards", "", "comma-separated shard counts for -exp shard (default 1,2,4,8; 16 with -skew)")
		skew     = fs.Bool("skew", false, "run -exp shard as the skewed-migration cell: hotspot drift + automatic online rebalance")
		subs     = fs.Int("subs", 0, "standing-subscription count for -exp subscribe (default 1000, capped by the located population)")
		jsonPath = fs.String("json", "", "also write every measurement as a JSON report to this path (- for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	sc, err := exp.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *queries > 0 {
		sc.NumQueries = *queries
	}
	moverCounts, err := parseMovers(*movers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	edgeRates, err := parseRates(*erate)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	shardCounts, err := parseShards(*shards)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	fmt.Fprintf(stdout, "ssrq-bench: exp=%s scale=%s seed=%d queries=%d ch=%v\n",
		*expID, sc.Name, *seed, sc.NumQueries, *withCH)
	fmt.Fprintf(stdout, "defaults (Table 3): k=%d alpha=%.1f s=%d M=%d levels=%d\n",
		exp.DefaultK, exp.DefaultAlpha, exp.DefaultS, exp.DefaultM, exp.DefaultLevels)

	suite := exp.NewSuite(sc, *seed, stdout)
	suite.Parallel = *parallel
	suite.ChurnMovers = moverCounts
	suite.ChurnRate = *mrate
	suite.EdgeRates = edgeRates
	suite.ShardCounts = shardCounts
	suite.Skew = *skew
	suite.Subscribers = *subs
	start := time.Now()
	if err := suite.Run(*expID, *withCH); err != nil {
		fmt.Fprintln(stderr, "ssrq-bench:", err)
		return 1
	}
	elapsed := time.Since(start)
	fmt.Fprintf(stdout, "\ncompleted in %v (%d measurements)\n", elapsed.Round(time.Millisecond), len(suite.Measurements))
	if *jsonPath != "" {
		report := suite.Report(*expID, *withCH, elapsed)
		if *jsonPath == "-" {
			if err := report.WriteJSON(stdout); err != nil {
				fmt.Fprintln(stderr, "ssrq-bench:", err)
				return 1
			}
		} else {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintln(stderr, "ssrq-bench:", err)
				return 1
			}
			if err := report.WriteJSON(f); err != nil {
				f.Close()
				fmt.Fprintln(stderr, "ssrq-bench:", err)
				return 1
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "ssrq-bench:", err)
				return 1
			}
			fmt.Fprintf(stdout, "json report written to %s\n", *jsonPath)
		}
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
