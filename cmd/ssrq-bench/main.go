// Command ssrq-bench regenerates every table and figure of the paper's
// evaluation section (§6) on synthetic paper-substitute datasets and prints
// the same rows/series the paper reports.
//
// Usage:
//
//	ssrq-bench -exp all -scale medium          # everything, default sizes
//	ssrq-bench -exp fig8 -scale small -ch      # one figure, with CH variants
//
// Experiments: table2 fig7a fig7b fig8 fig9 fig10 fig11 fig12 fig13 fig14a
// fig14b all. Scales: small | medium | large (see internal/exp).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ssrq/internal/exp"
)

func main() {
	var (
		expID   = flag.String("exp", "all", "experiment id (table2, fig7a..fig14b, all)")
		scale   = flag.String("scale", "medium", "dataset scale: small|medium|large")
		seed    = flag.Int64("seed", 42, "generator seed")
		withCH  = flag.Bool("ch", false, "include the SFA-CH/SPA-CH/TSA-CH variants in fig8 (slow preprocessing)")
		queries = flag.Int("queries", 0, "override the number of queries per measurement")
	)
	flag.Parse()

	sc, err := exp.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *queries > 0 {
		sc.NumQueries = *queries
	}

	fmt.Printf("ssrq-bench: exp=%s scale=%s seed=%d queries=%d ch=%v\n",
		*expID, sc.Name, *seed, sc.NumQueries, *withCH)
	fmt.Printf("defaults (Table 3): k=%d alpha=%.1f s=%d M=%d levels=%d\n",
		exp.DefaultK, exp.DefaultAlpha, exp.DefaultS, exp.DefaultM, exp.DefaultLevels)

	suite := exp.NewSuite(sc, *seed, os.Stdout)
	start := time.Now()
	if err := suite.Run(*expID, *withCH); err != nil {
		fmt.Fprintln(os.Stderr, "ssrq-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("\ncompleted in %v (%d measurements)\n", time.Since(start).Round(time.Millisecond), len(suite.Measurements))
}
