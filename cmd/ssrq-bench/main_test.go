package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunThroughputSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "throughput", "-scale", "small", "-queries", "4", "-parallel", "2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	got := stdout.String()
	for _, want := range []string{"Batched throughput", "queries/sec", "completed in"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scale", "galactic"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad scale run = %d", code)
	}
	if code := run([]string{"-exp", "fig99", "-scale", "small"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unknown experiment run = %d", code)
	}
	if code := run([]string{"-badflag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag run = %d", code)
	}
}
