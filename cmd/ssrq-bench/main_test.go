package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssrq/internal/exp"
)

func TestRunThroughputSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "throughput", "-scale", "small", "-queries", "4", "-parallel", "2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	got := stdout.String()
	for _, want := range []string{"Batched throughput", "queries/sec", "completed in"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunJSONReport: -json must write a parseable report whose points carry
// the serving-layer fields the CI bench gate reads (latency percentiles and
// the queries/sec counter).
func TestRunJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "throughput", "-scale", "small", "-queries", "4", "-parallel", "2", "-json", path}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep exp.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, raw)
	}
	if rep.Exp != "throughput" || rep.Scale != "small" {
		t.Fatalf("report metadata = %q/%q", rep.Exp, rep.Scale)
	}
	if len(rep.Points) == 0 {
		t.Fatal("report has no points")
	}
	for _, p := range rep.Points {
		if p.Exp != "throughput" || p.Algo != "AIS" {
			t.Fatalf("point tagged %q/%q", p.Exp, p.Algo)
		}
		if p.P50US <= 0 || p.P99US < p.P50US {
			t.Fatalf("implausible percentiles in %+v", p)
		}
		if p.Extra["queries_per_sec"] <= 0 {
			t.Fatalf("missing queries_per_sec in %+v", p)
		}
	}
	// stdout mode renders the same report.
	stdout.Reset()
	if code := run([]string{"-exp", "throughput", "-scale", "small", "-queries", "4", "-parallel", "2", "-json", "-"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run -json - = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), `"queries_per_sec"`) {
		t.Error("stdout JSON mode missing measurement payload")
	}
}

func TestRunValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scale", "galactic"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad scale run = %d", code)
	}
	if code := run([]string{"-exp", "fig99", "-scale", "small"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unknown experiment run = %d", code)
	}
	if code := run([]string{"-badflag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag run = %d", code)
	}
}
