package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-preset", "twitter", "-n", "500", "-parallel", "4", "-addr", ":0"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.preset != "twitter" || cfg.n != 500 || cfg.parallel != 4 || cfg.addr != ":0" {
		t.Fatalf("cfg = %+v", cfg)
	}
	if _, err := parseFlags([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestBuildServerAndServe(t *testing.T) {
	cfg, err := parseFlags([]string{"-preset", "twitter", "-n", "400", "-parallel", "2"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	srv, ds, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers() != 400 {
		t.Fatalf("users = %d", ds.NumUsers())
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/query?q=0&k=3")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %v %v", err, resp)
	}
	resp.Body.Close()

	body := bytes.NewBufferString(`{"algo":"AIS","k":3,"alpha":0.3,"queries":[0,1,2]}`)
	resp, err = http.Post(ts.URL+"/batch", "application/json", body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %v %v", err, resp)
	}
	var batch struct {
		Results []struct {
			Query   int32  `json:"query"`
			Error   string `json:"error"`
			Entries []struct {
				ID int32   `json:"id"`
				F  float64 `json:"f"`
			} `json:"entries"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(batch.Results) != 3 {
		t.Fatalf("batch results = %d", len(batch.Results))
	}
	for i, r := range batch.Results {
		if r.Error != "" {
			t.Fatalf("batch item %d: %s", i, r.Error)
		}
		if len(r.Entries) != 3 {
			t.Fatalf("batch item %d entries = %d", i, len(r.Entries))
		}
	}
}

// TestBuildShardedServer: -shards builds the partitioned engine end to end
// and /stats exposes the per-shard section.
func TestBuildShardedServer(t *testing.T) {
	cfg, err := parseFlags([]string{"-preset", "gowalla", "-n", "400", "-shards", "4"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.shards != 4 {
		t.Fatalf("shards = %d", cfg.shards)
	}
	srv, _, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/query?q=0&k=3")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %v %v", err, resp)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %v %v", err, resp)
	}
	var st struct {
		NumShards int `json:"num_shards"`
		Shards    []struct {
			Cells      int `json:"cells"`
			NumLocated int `json:"num_located"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.NumShards != 4 || len(st.Shards) != 4 {
		t.Fatalf("stats shards = %d (%d entries), want 4", st.NumShards, len(st.Shards))
	}

	// An invalid shard count must fail construction, not limp along.
	bad, err := parseFlags([]string{"-preset", "gowalla", "-n", "400", "-shards", "100000"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := buildServer(bad); err == nil {
		t.Fatal("absurd shard count accepted")
	}
}

func TestBuildServerBadDataset(t *testing.T) {
	cfg, err := parseFlags([]string{"-data", "/nonexistent/path.gob"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := buildServer(cfg); err == nil {
		t.Fatal("missing dataset file accepted")
	}
}
