package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-preset", "twitter", "-n", "500", "-parallel", "4", "-addr", ":0"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.preset != "twitter" || cfg.n != 500 || cfg.parallel != 4 || cfg.addr != ":0" {
		t.Fatalf("cfg = %+v", cfg)
	}
	if _, err := parseFlags([]string{"-bogus"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestBuildServerAndServe(t *testing.T) {
	cfg, err := parseFlags([]string{"-preset", "twitter", "-n", "400", "-parallel", "2"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	srv, ds, cleanup, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	if ds.NumUsers() != 400 {
		t.Fatalf("users = %d", ds.NumUsers())
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/query?q=0&k=3")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %v %v", err, resp)
	}
	resp.Body.Close()

	body := bytes.NewBufferString(`{"algo":"AIS","k":3,"alpha":0.3,"queries":[0,1,2]}`)
	resp, err = http.Post(ts.URL+"/batch", "application/json", body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %v %v", err, resp)
	}
	var batch struct {
		Results []struct {
			Query   int32  `json:"query"`
			Error   string `json:"error"`
			Entries []struct {
				ID int32   `json:"id"`
				F  float64 `json:"f"`
			} `json:"entries"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(batch.Results) != 3 {
		t.Fatalf("batch results = %d", len(batch.Results))
	}
	for i, r := range batch.Results {
		if r.Error != "" {
			t.Fatalf("batch item %d: %s", i, r.Error)
		}
		if len(r.Entries) != 3 {
			t.Fatalf("batch item %d entries = %d", i, len(r.Entries))
		}
	}
}

// TestBuildShardedServer: -shards builds the partitioned engine end to end
// and /stats exposes the per-shard section.
func TestBuildShardedServer(t *testing.T) {
	cfg, err := parseFlags([]string{"-preset", "gowalla", "-n", "400", "-shards", "4"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.shards != 4 {
		t.Fatalf("shards = %d", cfg.shards)
	}
	srv, _, cleanup, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/query?q=0&k=3")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %v %v", err, resp)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %v %v", err, resp)
	}
	var st struct {
		NumShards int `json:"num_shards"`
		Shards    []struct {
			Cells      int `json:"cells"`
			NumLocated int `json:"num_located"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.NumShards != 4 || len(st.Shards) != 4 {
		t.Fatalf("stats shards = %d (%d entries), want 4", st.NumShards, len(st.Shards))
	}

	// An invalid shard count must fail construction, not limp along.
	bad, err := parseFlags([]string{"-preset", "gowalla", "-n", "400", "-shards", "100000"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := buildServer(bad); err == nil {
		t.Fatal("absurd shard count accepted")
	}
}

func TestBuildServerBadDataset(t *testing.T) {
	cfg, err := parseFlags([]string{"-data", "/nonexistent/path.gob"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := buildServer(cfg); err == nil {
		t.Fatal("missing dataset file accepted")
	}
}

// TestDurableLeaderAndFollowerServers drives the new roles end to end:
// a -wal-dir leader journals a write and recovers it on restart; a
// -follower-of replica tails the leader, reports its replication position
// in /stats, and refuses writes.
func TestDurableLeaderAndFollowerServers(t *testing.T) {
	walDir := t.TempDir()
	cfg, err := parseFlags([]string{"-preset", "gowalla", "-n", "300", "-wal-dir", walDir, "-fsync", "off"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	srv, _, cleanup, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)

	body := bytes.NewBufferString(`{"id":7,"x":0.125,"y":0.25}`)
	resp, err := http.Post(ts.URL+"/move", "application/json", body)
	if err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("move: %v %v", err, resp)
	}
	resp.Body.Close()
	ts.Close()
	cleanup()

	// Restart over the same WAL directory: the move must survive.
	srv, _, cleanup, err = buildServer(cfg)
	if err != nil {
		t.Fatalf("restart with WAL: %v", err)
	}
	defer cleanup()
	ts = httptest.NewServer(srv)
	defer ts.Close()

	resp, err = http.Get(ts.URL + "/user/7")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("user: %v %v", err, resp)
	}
	var user struct {
		X float64 `json:"x"`
		Y float64 `json:"y"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&user); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if user.X != 0.125 || user.Y != 0.25 {
		t.Fatalf("recovered location (%v,%v), want (0.125,0.25)", user.X, user.Y)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Durability struct {
			LastSeq uint64 `json:"last_seq"`
		} `json:"durability"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Durability.LastSeq == 0 {
		t.Fatal("durable leader /stats has no journal position")
	}

	// Follower of the recovered leader.
	fcfg, err := parseFlags([]string{"-preset", "gowalla", "-n", "300", "-follower-of", ts.URL, "-poll-interval", "1ms"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	fsrv, _, fcleanup, err := buildServer(fcfg)
	if err != nil {
		t.Fatalf("follower build: %v", err)
	}
	defer fcleanup()
	fts := httptest.NewServer(fsrv)
	defer fts.Close()

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(fts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var fst struct {
			Role    string  `json:"role"`
			Applied uint64  `json:"replication_applied_seq"`
			Lag     *uint64 `json:"replication_lag_ops"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&fst); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if fst.Role != "follower" || fst.Lag == nil {
			t.Fatalf("follower /stats missing replication section: %+v", fst)
		}
		if fst.Applied >= st.Durability.LastSeq && *fst.Lag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v", fst)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err = http.Get(fts.URL + "/user/7")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("follower user: %v %v", err, resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&user); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if user.X != 0.125 || user.Y != 0.25 {
		t.Fatalf("follower location (%v,%v), want (0.125,0.25)", user.X, user.Y)
	}

	body = bytes.NewBufferString(`{"id":7,"x":0.5,"y":0.5}`)
	resp, err = http.Post(fts.URL+"/move", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower accepted a write: %d", resp.StatusCode)
	}

	// -wal-dir and -follower-of together must be rejected.
	if _, err := parseFlags([]string{"-wal-dir", walDir, "-follower-of", ts.URL}, io.Discard); err == nil {
		t.Fatal("conflicting roles accepted")
	}
}
