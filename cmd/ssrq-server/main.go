// Command ssrq-server exposes SSRQ over HTTP: a minimal location-based
// social search service backed by the AIS index, with live location updates
// (the workload the paper's index maintenance targets, §5.1).
//
// Endpoints:
//
//	GET  /query?q=<user>&k=<int>&alpha=<float>[&algo=AIS]   ranked result
//	GET  /user/<id>                                          location + degree
//	POST /move   {"id":123,"x":1.5,"y":2.5}                  update location
//	POST /unlocate {"id":123}                                drop location
//	GET  /stats                                              dataset statistics
//	GET  /healthz                                            liveness
//
// Start with a saved dataset or a synthesized one:
//
//	ssrq-server -data fsq.gob -addr :8080
//	ssrq-server -preset gowalla -n 20000
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"ssrq"
	"ssrq/internal/httpapi"
)

func main() {
	var (
		data   = flag.String("data", "", "dataset file written by ssrq-datagen")
		preset = flag.String("preset", "gowalla", "synthesize this preset when -data is not given")
		n      = flag.Int("n", 10000, "synthetic dataset size when -data is not given")
		seed   = flag.Int64("seed", 42, "seed for synthesis and preprocessing")
		addr   = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()

	var (
		ds  *ssrq.Dataset
		err error
	)
	if *data != "" {
		ds, err = ssrq.LoadDataset(*data)
	} else {
		ds, err = ssrq.Synthesize(*preset, *n, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssrq-server:", err)
		os.Exit(1)
	}
	eng, err := ssrq.NewEngine(ds, &ssrq.Options{Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssrq-server:", err)
		os.Exit(1)
	}

	srv := httpapi.New(eng)
	st := ds.Stats()
	log.Printf("ssrq-server: %s (%d users, %d edges) listening on %s", st.Name, st.NumVertices, st.NumEdges, *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatal(err)
	}
}
