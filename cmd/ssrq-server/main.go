// Command ssrq-server exposes SSRQ over HTTP: a minimal location-based
// social search service backed by the AIS index, with live location updates
// (the workload the paper's index maintenance targets, §5.1). Queries are
// lock-free against published epoch snapshots, so queries, batches and
// moves interleave freely without blocking each other.
//
// Endpoints:
//
//	GET  /query?q=<user>&k=<int>&alpha=<float>[&algo=AIS]   ranked result
//	POST /batch  {"algo":"AIS","k":10,"alpha":0.3,"queries":[1,2,3]}
//	GET  /user/<id>                                          location + degree
//	POST /move   {"id":123,"x":1.5,"y":2.5}                  one update (sync epoch)
//	POST /moves  {"moves":[...],"flush":false}               bulk updates (batching pipeline)
//	POST /unlocate {"id":123}                                drop location
//	GET  /stats                                              dataset + epoch/update stats
//	GET  /healthz                                            liveness
//
// Start with a saved dataset or a synthesized one:
//
//	ssrq-server -data fsq.gob -addr :8080
//	ssrq-server -preset gowalla -n 20000 -parallel 8
//	ssrq-server -preset gowalla -n 100000 -shards 8   # spatially partitioned
//
// With -shards N the engine is spatially partitioned: queries fan out in
// parallel across per-region indexes with bound-based shard pruning, updates
// route to the owning shard, and /stats gains per-shard counters.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"

	"ssrq"
	"ssrq/internal/httpapi"
)

// serverConfig is the parsed command line.
type serverConfig struct {
	data     string
	preset   string
	n        int
	seed     int64
	addr     string
	parallel int
	buildCH  bool
	shards   int
}

// parseFlags parses the command line; separated from main so tests can
// exercise flag handling without exiting the process.
func parseFlags(args []string, stderr io.Writer) (*serverConfig, error) {
	fs := flag.NewFlagSet("ssrq-server", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &serverConfig{}
	fs.StringVar(&cfg.data, "data", "", "dataset file written by ssrq-datagen")
	fs.StringVar(&cfg.preset, "preset", "gowalla", "synthesize this preset when -data is not given")
	fs.IntVar(&cfg.n, "n", 10000, "synthetic dataset size when -data is not given")
	fs.Int64Var(&cfg.seed, "seed", 42, "seed for synthesis and preprocessing")
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.parallel, "parallel", 0, "default worker count for POST /batch (0 = GOMAXPROCS)")
	fs.BoolVar(&cfg.buildCH, "ch", false, "build a contraction hierarchy so the SFA-CH/SPA-CH/TSA-CH variants serve (survives edge churn: in-place repair for insertions, background rebuild otherwise)")
	fs.IntVar(&cfg.shards, "shards", 1, "spatially partition the engine across this many shards (parallel fan-out queries, per-shard update pipelines, per-shard /stats; 1 = monolithic)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return cfg, nil
}

// buildServer loads or synthesizes the dataset, builds the engine and wraps
// it in the HTTP handler; separated from main so tests can drive the full
// stack through httptest.
func buildServer(cfg *serverConfig) (*httpapi.Server, *ssrq.Dataset, error) {
	var (
		ds  *ssrq.Dataset
		err error
	)
	if cfg.data != "" {
		ds, err = ssrq.LoadDataset(cfg.data)
	} else {
		ds, err = ssrq.Synthesize(cfg.preset, cfg.n, cfg.seed)
	}
	if err != nil {
		return nil, nil, err
	}
	eng, err := ssrq.NewEngine(ds, &ssrq.Options{Seed: cfg.seed, BuildCH: cfg.buildCH, Shards: cfg.shards})
	if err != nil {
		return nil, nil, err
	}
	srv := httpapi.New(eng)
	srv.SetParallel(cfg.parallel)
	return srv, ds, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	srv, ds, err := buildServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssrq-server:", err)
		os.Exit(1)
	}
	st := ds.Stats()
	log.Printf("ssrq-server: %s (%d users, %d edges) listening on %s (batch parallelism %d, %d shard(s))",
		st.Name, st.NumVertices, st.NumEdges, cfg.addr, cfg.parallel, cfg.shards)
	if err := http.ListenAndServe(cfg.addr, srv); err != nil {
		log.Fatal(err)
	}
}
