// Command ssrq-server exposes SSRQ over HTTP: a minimal location-based
// social search service backed by the AIS index, with live location updates
// (the workload the paper's index maintenance targets, §5.1). Queries are
// lock-free against published epoch snapshots, so queries, batches and
// moves interleave freely without blocking each other.
//
// Endpoints:
//
//	GET  /query?q=<user>&k=<int>&alpha=<float>[&algo=AIS]   ranked result
//	POST /batch  {"algo":"AIS","k":10,"alpha":0.3,"queries":[1,2,3]}
//	GET  /user/<id>                                          location + degree
//	POST /move   {"id":123,"x":1.5,"y":2.5}                  one update (sync epoch)
//	POST /moves  {"moves":[...],"flush":false}               bulk updates (batching pipeline)
//	POST /unlocate {"id":123}                                drop location
//	GET  /stats                                              dataset + epoch/update stats
//	GET  /wal/bootstrap, /wal/stream                         journal replication feed
//	GET  /healthz                                            liveness
//
// Start with a saved dataset or a synthesized one:
//
//	ssrq-server -data fsq.gob -addr :8080
//	ssrq-server -preset gowalla -n 20000 -parallel 8
//	ssrq-server -preset gowalla -n 100000 -shards 8   # spatially partitioned
//
// With -shards N the engine is spatially partitioned: queries fan out in
// parallel across per-region indexes with bound-based shard pruning, updates
// route to the owning shard, and /stats gains per-shard counters.
//
// With -wal-dir the engine is durable: every mutation is journaled to a
// write-ahead log before it applies, a restart recovers the journaled state
// (newest checkpoint + tail replay), and the /wal endpoints serve the
// journal to followers:
//
//	ssrq-server -preset gowalla -n 20000 -wal-dir /var/lib/ssrq/wal
//
// With -follower-of the server is a read-only replica instead: it
// bootstraps from the named leader's newest checkpoint, tails its journal,
// answers queries at bounded replication lag (reported in /stats), and
// returns 403 for writes:
//
//	ssrq-server -preset gowalla -n 20000 -follower-of http://leader:8080
//
// The replica must be started over the leader's construction dataset (same
// -data file, or same -preset/-n/-seed).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"ssrq"
	"ssrq/internal/follower"
	"ssrq/internal/httpapi"
)

// serverConfig is the parsed command line.
type serverConfig struct {
	data     string
	preset   string
	n        int
	seed     int64
	addr     string
	parallel int
	buildCH  bool
	shards   int

	walDir     string
	fsync      string
	ckptEvery  int64
	keepSegs   bool
	followerOf string
	pollEvery  time.Duration
}

// parseFlags parses the command line; separated from main so tests can
// exercise flag handling without exiting the process.
func parseFlags(args []string, stderr io.Writer) (*serverConfig, error) {
	fs := flag.NewFlagSet("ssrq-server", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := &serverConfig{}
	fs.StringVar(&cfg.data, "data", "", "dataset file written by ssrq-datagen")
	fs.StringVar(&cfg.preset, "preset", "gowalla", "synthesize this preset when -data is not given")
	fs.IntVar(&cfg.n, "n", 10000, "synthetic dataset size when -data is not given")
	fs.Int64Var(&cfg.seed, "seed", 42, "seed for synthesis and preprocessing")
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.parallel, "parallel", 0, "default worker count for POST /batch (0 = GOMAXPROCS)")
	fs.BoolVar(&cfg.buildCH, "ch", false, "build a contraction hierarchy so the SFA-CH/SPA-CH/TSA-CH variants serve (survives edge churn: in-place repair for insertions, background rebuild otherwise)")
	fs.IntVar(&cfg.shards, "shards", 1, "spatially partition the engine across this many shards (parallel fan-out queries, per-shard update pipelines, per-shard /stats; 1 = monolithic)")
	fs.StringVar(&cfg.walDir, "wal-dir", "", "journal every mutation to a write-ahead log in this directory and recover from it on start (empty = not durable)")
	fs.StringVar(&cfg.fsync, "fsync", "batch", "WAL commit policy: batch (group-committed fsync before a write returns), interval, or off")
	fs.Int64Var(&cfg.ckptEvery, "checkpoint-every", 100000, "write a background WAL checkpoint after this many journaled ops (0 = never)")
	fs.BoolVar(&cfg.keepSegs, "wal-keep", false, "retain checkpointed-away WAL segments (keeps the full history replayable for file-tailing followers)")
	fs.StringVar(&cfg.followerOf, "follower-of", "", "run as a read-only replica of the leader server at this base URL (e.g. http://leader:8080)")
	fs.DurationVar(&cfg.pollEvery, "poll-interval", 20*time.Millisecond, "replica tail poll interval (with -follower-of)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if cfg.walDir != "" && cfg.followerOf != "" {
		return nil, fmt.Errorf("-wal-dir and -follower-of are mutually exclusive: a replica consumes a journal, it does not write one")
	}
	return cfg, nil
}

// loadDataset loads or synthesizes the configured dataset.
func loadDataset(cfg *serverConfig) (*ssrq.Dataset, error) {
	if cfg.data != "" {
		return ssrq.LoadDataset(cfg.data)
	}
	return ssrq.Synthesize(cfg.preset, cfg.n, cfg.seed)
}

// buildServer loads or synthesizes the dataset and builds the HTTP handler
// in the configured role — standalone, durable leader, or read-only
// follower; separated from main so tests can drive the full stack through
// httptest. The cleanup func releases the engine (and follower tail loop).
func buildServer(cfg *serverConfig) (*httpapi.Server, *ssrq.Dataset, func(), error) {
	ds, err := loadDataset(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	opts := &ssrq.Options{Seed: cfg.seed, BuildCH: cfg.buildCH, Shards: cfg.shards}

	if cfg.followerOf != "" {
		f, err := follower.New(ds, follower.HTTPSource{BaseURL: cfg.followerOf}, &follower.Options{
			Engine:       opts,
			PollInterval: cfg.pollEvery,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		srv := httpapi.New(f.Engine())
		srv.SetParallel(cfg.parallel)
		srv.SetFollower(func() (uint64, uint64) {
			st := f.Stats()
			return st.AppliedSeq, st.LeaderSeq
		})
		return srv, ds, f.Close, nil
	}

	if cfg.walDir != "" {
		opts.Durability = &ssrq.DurabilityOptions{
			Dir:                cfg.walDir,
			Fsync:              cfg.fsync,
			CheckpointEveryOps: cfg.ckptEvery,
			KeepSegments:       cfg.keepSegs,
		}
		eng, rec, err := ssrq.OpenOrRecover(ds, opts)
		if err != nil {
			return nil, nil, nil, err
		}
		log.Printf("ssrq-server: recovered to seq %d (checkpoint@%d: %d ops, tail: %d ops, %d torn bytes dropped) in %v",
			rec.LastSeq, rec.CheckpointSeq, rec.CheckpointOps, rec.ReplayedOps, rec.TruncatedBytes, rec.Elapsed)
		srv := httpapi.New(eng)
		srv.SetParallel(cfg.parallel)
		return srv, ds, eng.Close, nil
	}

	eng, err := ssrq.NewEngine(ds, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	srv := httpapi.New(eng)
	srv.SetParallel(cfg.parallel)
	return srv, ds, eng.Close, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	srv, ds, cleanup, err := buildServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssrq-server:", err)
		os.Exit(1)
	}
	defer cleanup()
	st := ds.Stats()
	role := "standalone"
	switch {
	case cfg.followerOf != "":
		role = "follower of " + cfg.followerOf
	case cfg.walDir != "":
		role = "durable leader (wal: " + cfg.walDir + ", fsync: " + cfg.fsync + ")"
	}
	log.Printf("ssrq-server: %s (%d users, %d edges) listening on %s (batch parallelism %d, %d shard(s), %s)",
		st.Name, st.NumVertices, st.NumEdges, cfg.addr, cfg.parallel, cfg.shards, role)
	if err := http.ListenAndServe(cfg.addr, srv); err != nil {
		log.Fatal(err)
	}
}
