// Command ssrq-datagen synthesizes a paper-substitute geo-social dataset
// and writes it to a file loadable with ssrq.LoadDataset / ssrq-query.
//
// Usage:
//
//	ssrq-datagen -preset gowalla -n 50000 -seed 42 -out gowalla.gob
package main

import (
	"flag"
	"fmt"
	"os"

	"ssrq"
)

func main() {
	var (
		preset = flag.String("preset", "gowalla", "dataset preset: gowalla|foursquare|twitter")
		n      = flag.Int("n", 10000, "number of users")
		seed   = flag.Int64("seed", 42, "generator seed")
		out    = flag.String("out", "", "output path (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "ssrq-datagen: -out is required")
		os.Exit(2)
	}
	ds, err := ssrq.Synthesize(*preset, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssrq-datagen:", err)
		os.Exit(1)
	}
	if err := ds.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "ssrq-datagen:", err)
		os.Exit(1)
	}
	st := ds.Stats()
	fmt.Printf("wrote %s: %d users, %d edges, %d located (avg degree %.1f)\n",
		*out, st.NumVertices, st.NumEdges, st.NumLocated, st.AvgDegree)
}
