// Command ssrq-datagen synthesizes a paper-substitute geo-social dataset
// and writes it to a file loadable with ssrq.LoadDataset / ssrq-query.
//
// Usage:
//
//	ssrq-datagen -preset gowalla -n 50000 -seed 42 -out gowalla.gob
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ssrq"
)

// run is the whole program minus process concerns; it returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ssrq-datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		preset = fs.String("preset", "gowalla", "dataset preset: gowalla|foursquare|twitter|urban|homophily")
		n      = fs.Int("n", 10000, "number of users")
		seed   = fs.Int64("seed", 42, "generator seed")
		out    = fs.String("out", "", "output path (required)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" {
		fmt.Fprintln(stderr, "ssrq-datagen: -out is required")
		return 2
	}
	ds, err := ssrq.Synthesize(*preset, *n, *seed)
	if err != nil {
		fmt.Fprintln(stderr, "ssrq-datagen:", err)
		return 1
	}
	if err := ds.Save(*out); err != nil {
		fmt.Fprintln(stderr, "ssrq-datagen:", err)
		return 1
	}
	st := ds.Stats()
	fmt.Fprintf(stdout, "wrote %s: %d users, %d edges, %d located (avg degree %.1f)\n",
		*out, st.NumVertices, st.NumEdges, st.NumLocated, st.AvgDegree)
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
