package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"ssrq"
)

func TestRunWritesLoadableDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "tiny.gob")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-preset", "twitter", "-n", "250", "-out", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "wrote") {
		t.Fatalf("stdout: %s", stdout.String())
	}
	ds, err := ssrq.LoadDataset(out)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers() != 250 {
		t.Fatalf("loaded users = %d", ds.NumUsers())
	}
}

func TestRunValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("missing -out run = %d", code)
	}
	if code := run([]string{"-preset", "nope", "-out", filepath.Join(t.TempDir(), "x.gob")}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad preset run = %d", code)
	}
	if code := run([]string{"-badflag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag run = %d", code)
	}
}
