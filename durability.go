package ssrq

// Durability and crash recovery. With Options.Durability set, every world
// mutation — synchronous or asynchronous moves/removals and edge ops, in
// both the monolithic and sharded engines — is journaled as a canonical
// oplog.Record at the layer where its application order is authoritative
// (the aggregate index / social substrate writer locks for the monolith,
// the routing stripes for the sharded engine), before it mutates state.
// Records hold normalized values, so replay bypasses the root API's
// raw→normalized conversion and feeds the internal ApplyUpdates directly —
// the exact path live traffic trusts.
//
// Checkpoints piggyback on the epoch design: published snapshots are
// immutable, so serializing one costs queries nothing. A checkpoint is the
// state DIFF against the construction dataset, expressed as ordinary
// records, applied through the same path on recovery. The protocol is
//
//	S := log.LastSeq()     // note the position first
//	engine.Flush()         // drain async pipelines: all ops ≤ S applied
//	diff := ExportDiff()   // capture published state (≥ S)
//	WriteCheckpoint(S, diff)
//
// and is correct with traffic still flowing because records are absolute
// writes: state captured past S is re-asserted by the tail replayed after
// S, converging instead of corrupting.

import (
	"fmt"
	"time"

	"ssrq/internal/core"
	"ssrq/internal/oplog"
	"ssrq/internal/wal"
)

// DurabilityOptions configures the write-ahead log.
type DurabilityOptions struct {
	// Dir is the WAL directory (segments + checkpoints). Required.
	Dir string
	// Fsync is the commit policy: "batch" (default; group-committed fsync
	// before a mutation returns), "interval" (background fsync every
	// FsyncInterval), or "off" (no fsync; survives process death via the
	// page cache, not power loss).
	Fsync string
	// FsyncInterval is the "interval" policy period (default 50ms).
	FsyncInterval time.Duration
	// CheckpointEveryOps writes a background checkpoint after this many
	// journaled ops (0 = manual Checkpoint calls only).
	CheckpointEveryOps int64
	// SegmentMaxBytes rotates WAL segments past this size (default 8 MiB).
	SegmentMaxBytes int64
	// KeepSegments retains pruned-away segments, keeping the full history
	// replayable from sequence 1 (file-tailing followers, differential
	// tests). Checkpoints still accelerate recovery.
	KeepSegments bool
}

// RecoveryInfo reports what OpenOrRecover replayed.
type RecoveryInfo struct {
	// CheckpointSeq is the log position of the checkpoint the engine
	// restarted from (0 = none found, full replay).
	CheckpointSeq uint64
	// CheckpointOps / ReplayedOps count the state-diff records applied
	// from the checkpoint and the tail records replayed after it.
	CheckpointOps int
	ReplayedOps   int
	// LastSeq is the log position after recovery; new mutations continue
	// at LastSeq+1.
	LastSeq uint64
	// TruncatedBytes is how much torn/corrupt tail the recovery scan cut
	// from the final segment.
	TruncatedBytes int64
	// Elapsed is the wall time spent applying checkpoint + tail.
	Elapsed time.Duration
}

// OpenOrRecover builds an engine over d and brings it to the durable state
// in opts.Durability.Dir (which must be set): newest valid checkpoint, then
// WAL tail replay, through the same update path live traffic uses. A fresh
// directory yields an engine at construction state with an empty log.
// Equivalent to NewEngine with Options.Durability set, plus the recovery
// report.
func OpenOrRecover(d *Dataset, opts *Options) (*Engine, *RecoveryInfo, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.Durability == nil || o.Durability.Dir == "" {
		return nil, nil, fmt.Errorf("ssrq: OpenOrRecover requires Options.Durability.Dir")
	}
	e, err := NewEngine(d, &o)
	if err != nil {
		return nil, nil, err
	}
	return e, e.recovered, nil
}

// replayChunk bounds one replay batch: large enough to amortize per-epoch
// publish costs, small enough to keep peak memory and epoch latency flat.
const replayChunk = 4096

// attachDurability opens (and recovers from) the WAL, replays it into the
// freshly built engine, and installs the write-ahead hook. Called from
// NewEngine before the engine is visible to anyone.
func (e *Engine) attachDurability(d DurabilityOptions) error {
	if d.Dir == "" {
		return fmt.Errorf("ssrq: Durability.Dir is required")
	}
	policy, err := wal.ParseFsyncPolicy(d.Fsync)
	if err != nil {
		return err
	}
	log, rec, err := wal.Open(d.Dir, wal.Options{
		Fsync:           policy,
		FsyncInterval:   d.FsyncInterval,
		SegmentMaxBytes: d.SegmentMaxBytes,
		KeepSegments:    d.KeepSegments,
	})
	if err != nil {
		return err
	}
	start := time.Now()
	if err := e.applyRecords(rec.CheckpointRecords); err != nil {
		return e.recoverFailed(log, fmt.Errorf("ssrq: apply checkpoint: %w", err))
	}
	if err := e.applyRecords(rec.TailRecords); err != nil {
		return e.recoverFailed(log, fmt.Errorf("ssrq: replay tail: %w", err))
	}
	e.log = log
	e.ckptEvery = d.CheckpointEveryOps
	e.recovered = &RecoveryInfo{
		CheckpointSeq:  rec.CheckpointSeq,
		CheckpointOps:  len(rec.CheckpointRecords),
		ReplayedOps:    len(rec.TailRecords),
		LastSeq:        rec.LastSeq,
		TruncatedBytes: rec.TruncatedBytes,
		Elapsed:        time.Since(start),
	}
	// Replay is applied; from here on every mutation is journaled first.
	e.eng.SetOpLog(e.logWrite)
	return nil
}

func (e *Engine) recoverFailed(log *wal.Log, err error) error {
	if cerr := log.Close(); cerr != nil {
		return fmt.Errorf("%w (and closing WAL: %v)", err, cerr)
	}
	return err
}

// applyRecords replays records through the engine's internal (normalized)
// update path in bounded chunks, preserving order.
func (e *Engine) applyRecords(recs []oplog.Record) error {
	for len(recs) > 0 {
		n := min(replayChunk, len(recs))
		if err := e.eng.ApplyUpdates(oplog.Ops(recs[:n])); err != nil {
			return err
		}
		recs = recs[n:]
	}
	return nil
}

// logWrite is the installed write-ahead hook: it runs under the mutation
// layer's ordering lock, so append order is exactly application order.
// Append failures are counted in the WAL's stats (the mutation itself has
// already been accepted; refusing it here would desynchronize the layers).
func (e *Engine) logWrite(ops []core.Update) {
	if _, _, err := e.log.Append(oplog.FromOps(ops)); err != nil {
		return // counted by the log; surfaces via DurabilityStats
	}
	if e.ckptEvery <= 0 || e.walClosed.Load() {
		return
	}
	if e.opsSince.Add(int64(len(ops))) < e.ckptEvery {
		return
	}
	if !e.ckptBusy.CompareAndSwap(false, true) {
		return // one background checkpoint at a time
	}
	e.opsSince.Store(0)
	e.walWG.Add(1)
	go func() {
		defer e.walWG.Done()
		defer e.ckptBusy.Store(false)
		if e.walClosed.Load() {
			return
		}
		if err := e.Checkpoint(); err != nil {
			return // counted/visible via DurabilityStats (checkpoints stalls)
		}
	}()
}

// Checkpoint serializes the current published state as a state-diff
// checkpoint at the current log position and prunes the WAL history it
// supersedes (unless KeepSegments). Queries are unaffected — the state
// read is an immutable epoch snapshot. Safe concurrently with traffic.
//
// Correctness of the cut: recovery applies the checkpoint then replays the
// tail from s+1, so the export MUST reflect every op with seq ≤ s (ops > s
// leaking into the export are harmless — records are absolute writes and
// the tail re-asserts them). Seqs are assigned by the write-ahead hook
// under the mutation layer's ordering locks, but the hook fires BEFORE the
// op is applied and published — reading LastSeq alone could name an op
// still mid-application whose effect the export would then miss, silently
// losing it on recovery. MutationBarrier cycles those ordering locks, so
// every op journaled at or before s has, on return, finished applying
// (monolith) or at least been enqueued on its shard pipelines (sharded);
// Flush then drains the async pipelines through to publication, and the
// export snapshot covers everything ≤ s. No-op error when the engine is
// not durable.
func (e *Engine) Checkpoint() error {
	if e.log == nil {
		return fmt.Errorf("ssrq: engine has no durability configured")
	}
	s := e.log.LastSeq()
	e.eng.MutationBarrier()
	e.eng.Flush()
	diff := e.eng.ExportDiff()
	return e.log.WriteCheckpoint(s, oplog.FromOps(diff))
}

// DurabilityStats is the durable engine's log state (see /stats).
type DurabilityStats struct {
	wal.Stats
	// ReplayedOps / RecoveryMillis echo the last recovery (0 on a fresh
	// directory).
	ReplayedOps    int   `json:"replayed_ops"`
	RecoveryMillis int64 `json:"recovery_millis"`
	// CloseError reports a failure sealing the log at Engine.Close.
	CloseError string `json:"close_error,omitempty"`
}

// DurabilityStats returns the WAL counters, or nil for a non-durable
// engine.
func (e *Engine) DurabilityStats() *DurabilityStats {
	if e.log == nil {
		return nil
	}
	st := &DurabilityStats{Stats: e.log.Stats()}
	if e.recovered != nil {
		st.ReplayedOps = e.recovered.CheckpointOps + e.recovered.ReplayedOps
		st.RecoveryMillis = e.recovered.Elapsed.Milliseconds()
	}
	if p := e.walCloseErr.Load(); p != nil {
		st.CloseError = (*p).Error()
	}
	return st
}

// WALRecords returns up to max journaled records with sequence ≥ from plus
// the newest journaled sequence — the pull surface followers and the
// /wal/stream endpoint serve from. Returns wal.ErrCompacted when from
// predates the retained history (re-bootstrap via WALBootstrap).
func (e *Engine) WALRecords(from uint64, max int) ([]oplog.Record, uint64, error) {
	if e.log == nil {
		return nil, 0, fmt.Errorf("ssrq: engine has no durability configured")
	}
	return e.log.ReadFrom(from, max)
}

// WALBootstrap returns the record sequence a fresh replica applies to reach
// this engine's newest checkpoint state, plus the log position that state
// represents (0 with no checkpoint: replay from sequence 1 instead).
func (e *Engine) WALBootstrap() ([]oplog.Record, uint64, error) {
	if e.log == nil {
		return nil, 0, fmt.Errorf("ssrq: engine has no durability configured")
	}
	return e.log.Bootstrap()
}

// ApplyWALRecords applies already-normalized journal records through the
// internal update path, in order — how a follower (or a differential-test
// twin) consumes another engine's WAL. Valid on any engine; a durable
// engine journals the applied records into its own log like any mutation.
func (e *Engine) ApplyWALRecords(recs []oplog.Record) error {
	return e.applyRecords(recs)
}

// WALLastSeq returns the newest journaled sequence (0 when non-durable).
func (e *Engine) WALLastSeq() uint64 {
	if e.log == nil {
		return 0
	}
	return e.log.LastSeq()
}

// WALDurableSeq returns the newest sequence durable under the fsync policy
// (0 when non-durable).
func (e *Engine) WALDurableSeq() uint64 {
	if e.log == nil {
		return 0
	}
	return e.log.DurableSeq()
}

// TestingWAL exposes the underlying log to crash tests (nil when
// non-durable).
func (e *Engine) TestingWAL() *wal.Log { return e.log }
