package graph

import (
	"math"
	"math/rand"
	"testing"
)

// buildRandom returns a connected-ish random graph for overlay tests.
func buildRandom(rng *rand.Rand, n, extra int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(VertexID(rng.Intn(v)), VertexID(v), 0.1+rng.Float64()*4.9)
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			_ = b.AddEdge(VertexID(u), VertexID(v), 0.1+rng.Float64()*4.9)
		}
	}
	return b.MustBuild()
}

// edgeModel is the map-based reference the overlay is checked against.
type edgeModel map[[2]VertexID]float64

func pairKey(u, v VertexID) [2]VertexID {
	if u > v {
		u, v = v, u
	}
	return [2]VertexID{u, v}
}

func modelOf(g *Graph) edgeModel {
	m := edgeModel{}
	for v := 0; v < g.NumVertices(); v++ {
		nbrs, ws := g.Neighbors(VertexID(v))
		for i, u := range nbrs {
			m[pairKey(VertexID(v), u)] = ws[i]
		}
	}
	return m
}

// checkAgainstModel verifies a merged graph view agrees with the model on
// edge count, symmetry, sortedness, weights and degrees.
func checkAgainstModel(t testing.TB, g *Graph, model edgeModel) {
	t.Helper()
	if g.NumEdges() != len(model) {
		t.Fatalf("NumEdges = %d, model has %d", g.NumEdges(), len(model))
	}
	degrees := make(map[VertexID]int)
	for k := range model {
		degrees[k[0]]++
		degrees[k[1]]++
	}
	total := 0
	for v := 0; v < g.NumVertices(); v++ {
		id := VertexID(v)
		nbrs, ws := g.Neighbors(id)
		if len(nbrs) != len(ws) {
			t.Fatalf("vertex %d: %d targets but %d weights", v, len(nbrs), len(ws))
		}
		if g.Degree(id) != len(nbrs) {
			t.Fatalf("vertex %d: Degree %d != row length %d", v, g.Degree(id), len(nbrs))
		}
		if len(nbrs) != degrees[id] {
			t.Fatalf("vertex %d: degree %d, model %d", v, len(nbrs), degrees[id])
		}
		total += len(nbrs)
		for i, u := range nbrs {
			if i > 0 && nbrs[i-1] >= u {
				t.Fatalf("vertex %d: adjacency unsorted or duplicated at %d", v, i)
			}
			if u == id {
				t.Fatalf("vertex %d: self-loop", v)
			}
			w, ok := model[pairKey(id, u)]
			if !ok {
				t.Fatalf("edge (%d,%d) not in model", v, u)
			}
			if w != ws[i] {
				t.Fatalf("edge (%d,%d) weight %v, model %v", v, u, ws[i], w)
			}
			if !(ws[i] > 0) || math.IsInf(ws[i], 1) || math.IsNaN(ws[i]) {
				t.Fatalf("edge (%d,%d) weight %v not positive finite", v, u, ws[i])
			}
			// Symmetry: the reverse direction must exist with equal weight.
			if rw, ok := g.EdgeWeight(u, id); !ok || rw != ws[i] {
				t.Fatalf("edge (%d,%d) asymmetric: %v/%v ok=%v", v, u, ws[i], rw, ok)
			}
		}
	}
	if total != 2*len(model) {
		t.Fatalf("total directed degree %d, want %d", total, 2*len(model))
	}
}

func TestOverlayBasicOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := buildRandom(rng, 40, 60)
	o := NewOverlay(g)
	model := modelOf(g)

	// Insert a brand-new edge.
	var u, v VertexID
	for {
		u, v = VertexID(rng.Intn(40)), VertexID(rng.Intn(40))
		if u != v {
			if _, ok := model[pairKey(u, v)]; !ok {
				break
			}
		}
	}
	created, err := o.SetEdge(u, v, 1.5)
	if err != nil || !created {
		t.Fatalf("SetEdge new: created=%v err=%v", created, err)
	}
	model[pairKey(u, v)] = 1.5
	checkAgainstModel(t, o.Freeze(), model)

	// Reweight it.
	created, err = o.SetEdge(v, u, 2.25)
	if err != nil || created {
		t.Fatalf("SetEdge reweight: created=%v err=%v", created, err)
	}
	model[pairKey(u, v)] = 2.25
	checkAgainstModel(t, o.Freeze(), model)

	// Remove it.
	existed, err := o.RemoveEdge(u, v)
	if err != nil || !existed {
		t.Fatalf("RemoveEdge: existed=%v err=%v", existed, err)
	}
	delete(model, pairKey(u, v))
	checkAgainstModel(t, o.Freeze(), model)

	// Removing again is a recorded no-op.
	existed, err = o.RemoveEdge(u, v)
	if err != nil || existed {
		t.Fatalf("double RemoveEdge: existed=%v err=%v", existed, err)
	}
}

func TestOverlayValidation(t *testing.T) {
	o := NewOverlay(buildRandom(rand.New(rand.NewSource(2)), 10, 5))
	cases := []struct {
		u, v VertexID
		w    float64
	}{
		{-1, 2, 1}, {0, 10, 1}, {3, 3, 1},
		{0, 1, 0}, {0, 1, -2}, {0, 1, math.NaN()}, {0, 1, math.Inf(1)},
	}
	for _, c := range cases {
		if _, err := o.SetEdge(c.u, c.v, c.w); err == nil {
			t.Fatalf("SetEdge(%d,%d,%v) accepted", c.u, c.v, c.w)
		}
	}
	if _, err := o.RemoveEdge(-1, 0); err == nil {
		t.Fatal("RemoveEdge out of range accepted")
	}
	if _, err := o.RemoveEdge(4, 4); err == nil {
		t.Fatal("RemoveEdge self-loop accepted")
	}
}

// TestOverlayFrozenGraphsAreImmutable is the epoch-isolation proof at the
// graph layer: a frozen graph must stay bit-identical while the overlay
// keeps mutating and compacting.
func TestOverlayFrozenGraphsAreImmutable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := buildRandom(rng, 60, 80)
	o := NewOverlay(g)

	type frozenEdge struct {
		u, v VertexID
		w    float64
	}
	capture := func(g *Graph) []frozenEdge {
		var out []frozenEdge
		for v := 0; v < g.NumVertices(); v++ {
			nbrs, ws := g.Neighbors(VertexID(v))
			for i, u := range nbrs {
				out = append(out, frozenEdge{VertexID(v), u, ws[i]})
			}
		}
		return out
	}

	var frozen []*Graph
	var want [][]frozenEdge
	for round := 0; round < 30; round++ {
		u, v := VertexID(rng.Intn(60)), VertexID(rng.Intn(60))
		if u == v {
			continue
		}
		if rng.Intn(3) == 0 {
			_, _ = o.RemoveEdge(u, v)
		} else {
			_, _ = o.SetEdge(u, v, 0.1+rng.Float64())
		}
		fg := o.Freeze()
		frozen = append(frozen, fg)
		want = append(want, capture(fg))
		if round == 15 {
			o.Compact()
			if o.PatchedCount() != 0 {
				t.Fatal("compact left patches")
			}
		}
	}
	o.Compact()
	for i, fg := range frozen {
		got := capture(fg)
		if len(got) != len(want[i]) {
			t.Fatalf("epoch %d changed size after later mutations", i)
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("epoch %d edge %d changed: %+v -> %+v", i, j, want[i][j], got[j])
			}
		}
	}
}

// TestOverlayRandomOpsMatchRebuild drives a long random op sequence and
// cross-checks the frozen view against a from-scratch CSR build of the model
// after every compaction boundary.
func TestOverlayRandomOpsMatchRebuild(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		n := 20 + rng.Intn(60)
		g := buildRandom(rng, n, n)
		o := NewOverlay(g)
		model := modelOf(g)
		for op := 0; op < 300; op++ {
			u, v := VertexID(rng.Intn(n)), VertexID(rng.Intn(n))
			if u == v {
				continue
			}
			if rng.Intn(4) == 0 {
				existed, err := o.RemoveEdge(u, v)
				if err != nil {
					t.Fatal(err)
				}
				_, inModel := model[pairKey(u, v)]
				if existed != inModel {
					t.Fatalf("RemoveEdge existed=%v, model=%v", existed, inModel)
				}
				delete(model, pairKey(u, v))
			} else {
				w := 0.1 + rng.Float64()*2
				created, err := o.SetEdge(u, v, w)
				if err != nil {
					t.Fatal(err)
				}
				_, inModel := model[pairKey(u, v)]
				if created == inModel {
					t.Fatalf("SetEdge created=%v, model had=%v", created, inModel)
				}
				model[pairKey(u, v)] = w
			}
			if op%97 == 0 {
				o.Compact()
			}
		}
		checkAgainstModel(t, o.Freeze(), model)
		checkAgainstModel(t, o.Working(), model)
	}
}

// TestEdgeWeightBinarySearch pins the EdgeWeight contract on both CSR and
// patched rows: exact hits everywhere, misses nowhere, including first/last
// neighbors (the boundaries a broken binary search gets wrong).
func TestEdgeWeightBinarySearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := buildRandom(rng, 50, 200)
	o := NewOverlay(g)
	for i := 0; i < 40; i++ {
		u, v := VertexID(rng.Intn(50)), VertexID(rng.Intn(50))
		if u != v {
			_, _ = o.SetEdge(u, v, 0.5+rng.Float64())
		}
	}
	merged := o.Freeze()
	for _, gr := range []*Graph{g, merged} {
		model := modelOf(gr)
		for v := 0; v < gr.NumVertices(); v++ {
			id := VertexID(v)
			nbrs, ws := gr.Neighbors(id)
			for i, u := range nbrs {
				if w, ok := gr.EdgeWeight(id, u); !ok || w != ws[i] {
					t.Fatalf("EdgeWeight(%d,%d) = %v,%v want %v,true", v, u, w, ok, ws[i])
				}
			}
			for probe := 0; probe < 20; probe++ {
				u := VertexID(rng.Intn(50))
				_, inModel := model[pairKey(id, u)]
				if id == u {
					inModel = false
				}
				if _, ok := gr.EdgeWeight(id, u); ok != inModel {
					t.Fatalf("EdgeWeight(%d,%d) ok=%v, model=%v", v, u, ok, inModel)
				}
			}
		}
	}
}

// BenchmarkEdgeWeight measures the sorted-adjacency binary search on a
// high-degree hub — the shape where a linear scan would hurt in hot loops
// (landmark repair support checks, CH witness searches).
func BenchmarkEdgeWeight(b *testing.B) {
	const n = 20000
	gb := NewBuilder(n)
	// Hub vertex 0 with ~n/2 neighbors.
	for v := 2; v < n; v += 2 {
		_ = gb.AddEdge(0, VertexID(v), 1)
	}
	g := gb.MustBuild()
	b.Run("csr-hub", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Mix of hits and misses across the full range.
			g.EdgeWeight(0, VertexID(i%n))
		}
	})
	o := NewOverlay(g)
	_, _ = o.SetEdge(0, 1, 2) // patch the hub row
	merged := o.Freeze()
	b.Run("patched-hub", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			merged.EdgeWeight(0, VertexID(i%n))
		}
	})
}

// BenchmarkOverlayChurn measures sustained edge mutation throughput with
// periodic freeze (one publication per 64 ops, the updater's batching
// shape).
func BenchmarkOverlayChurn(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	g := buildRandom(rng, 10000, 30000)
	o := NewOverlay(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := VertexID(rng.Intn(10000)), VertexID(rng.Intn(10000))
		if u == v {
			continue
		}
		if i%3 == 0 {
			_, _ = o.RemoveEdge(u, v)
		} else {
			_, _ = o.SetEdge(u, v, 1)
		}
		if i%64 == 0 {
			o.Freeze()
		}
		if o.PatchedCount() > 2000 {
			o.Compact()
		}
	}
}
