package graph

import (
	"fmt"
	"math"
	"sort"
)

// Overlay is the mutable edge layer of the dynamic social graph: a delta of
// replacement adjacency rows over an immutable CSR base. It is the
// single-writer side of the social epoch machinery — mutations edit the
// working row map (always installing freshly-built rows, never editing a row
// slice in place), Freeze publishes the current state as an immutable Graph
// sharing the base arrays and row slices, and Compact periodically folds the
// accumulated delta back into a pure CSR so the patch map stays small and
// reads stay cache-friendly.
//
// Concurrency contract: all Overlay methods are writer-side and must be
// externally serialized (the aggregate index owns the single writer). Graphs
// returned by Freeze are immutable and safe for unlimited concurrent readers
// even while the overlay keeps mutating.
type Overlay struct {
	base    *Graph              // pure CSR (no patch layer)
	rows    map[VertexID]adjRow // working replacement rows, keyed by vertex
	numEdge int

	dirty  bool   // rows changed since the last Freeze
	frozen *Graph // memoized publication; valid when !dirty

	adds, removes, reweights int64 // op counters since construction
	compactions              int64
}

// NewOverlay starts an overlay over base. A patched base (itself produced by
// an earlier Freeze) is compacted into a pure CSR first, so the overlay's
// own delta always starts empty.
func NewOverlay(base *Graph) *Overlay {
	o := &Overlay{
		base:    base,
		rows:    make(map[VertexID]adjRow),
		numEdge: base.NumEdges(),
		frozen:  base,
	}
	if base.patched != nil {
		for v, row := range base.patched {
			o.rows[v] = row
		}
		o.Compact()
	}
	return o
}

// NumVertices returns the vertex count (fixed at construction).
func (o *Overlay) NumVertices() int { return o.base.NumVertices() }

// NumEdges returns the current number of undirected edges.
func (o *Overlay) NumEdges() int { return o.numEdge }

// PatchedCount returns how many vertices currently carry a replacement row —
// the delta size that compaction folds away.
func (o *Overlay) PatchedCount() int { return len(o.rows) }

// Stats returns the op counters (adds, removes, reweights, compactions).
func (o *Overlay) Stats() (adds, removes, reweights, compactions int64) {
	return o.adds, o.removes, o.reweights, o.compactions
}

// Working returns a live merged view over the current writer state. It
// shares the mutable row map, so it must only be read by the (serialized)
// writer between its own mutations — publish with Freeze for readers.
func (o *Overlay) Working() *Graph {
	return &Graph{
		offsets: o.base.offsets,
		targets: o.base.targets,
		weights: o.base.weights,
		numEdge: o.numEdge,
		patched: o.rows,
	}
}

// Freeze publishes the current state as an immutable Graph. The row map is
// copied (O(delta)); row slices and base arrays are shared. Repeated calls
// without intervening mutations return the same Graph.
func (o *Overlay) Freeze() *Graph {
	if !o.dirty {
		return o.frozen
	}
	patched := make(map[VertexID]adjRow, len(o.rows))
	for v, row := range o.rows {
		patched[v] = row
	}
	o.frozen = &Graph{
		offsets: o.base.offsets,
		targets: o.base.targets,
		weights: o.base.weights,
		numEdge: o.numEdge,
		patched: patched,
	}
	o.dirty = false
	return o.frozen
}

// row returns the current adjacency of v (delta row or base CSR slice).
func (o *Overlay) row(v VertexID) ([]VertexID, []float64) {
	if r, ok := o.rows[v]; ok {
		return r.targets, r.weights
	}
	lo, hi := o.base.offsets[v], o.base.offsets[v+1]
	return o.base.targets[lo:hi], o.base.weights[lo:hi]
}

// EdgeWeight returns the weight of edge (u,v) in the working state.
func (o *Overlay) EdgeWeight(u, v VertexID) (float64, bool) {
	ts, ws := o.row(u)
	return searchRow(ts, ws, v)
}

// validate rejects malformed edge endpoints/weights before they can reach
// the working state. withWeight is false for removals (weight unchecked).
func (o *Overlay) validate(u, v VertexID, w float64, withWeight bool) error {
	n := o.NumVertices()
	if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	}
	if withWeight && (!(w > 0) || math.IsInf(w, 1) || math.IsNaN(w)) {
		return fmt.Errorf("graph: edge (%d,%d) weight %v must be positive and finite", u, v, w)
	}
	return nil
}

// SetEdge inserts the undirected edge (u,v) with weight w, or updates its
// weight when it already exists (upsert — the semantics that make queued
// edge ops coalescible per pair). Reports whether the edge was created.
func (o *Overlay) SetEdge(u, v VertexID, w float64) (created bool, err error) {
	if err := o.validate(u, v, w, true); err != nil {
		return false, err
	}
	_, had := o.EdgeWeight(u, v)
	ut, uw := o.row(u)
	o.rows[u] = upsertInRow(ut, uw, v, w)
	vt, vw := o.row(v)
	o.rows[v] = upsertInRow(vt, vw, u, w)
	if !had {
		o.numEdge++
		o.adds++
	} else {
		o.reweights++
	}
	o.dirty = true
	return !had, nil
}

// RemoveEdge deletes the undirected edge (u,v); reports whether it existed.
func (o *Overlay) RemoveEdge(u, v VertexID) (existed bool, err error) {
	if err := o.validate(u, v, 0, false); err != nil {
		return false, err
	}
	if _, had := o.EdgeWeight(u, v); !had {
		return false, nil
	}
	ut, uw := o.row(u)
	o.rows[u] = removeFromRow(ut, uw, v)
	vt, vw := o.row(v)
	o.rows[v] = removeFromRow(vt, vw, u)
	o.numEdge--
	o.removes++
	o.dirty = true
	return true, nil
}

// upsertInRow builds a fresh sorted row with (v,w) inserted or replaced.
func upsertInRow(ts []VertexID, ws []float64, v VertexID, w float64) adjRow {
	i := sort.Search(len(ts), func(i int) bool { return ts[i] >= v })
	if i < len(ts) && ts[i] == v {
		nt := append([]VertexID(nil), ts...)
		nw := append([]float64(nil), ws...)
		nw[i] = w
		return adjRow{nt, nw}
	}
	nt := make([]VertexID, len(ts)+1)
	nw := make([]float64, len(ws)+1)
	copy(nt, ts[:i])
	copy(nw, ws[:i])
	nt[i], nw[i] = v, w
	copy(nt[i+1:], ts[i:])
	copy(nw[i+1:], ws[i:])
	return adjRow{nt, nw}
}

// removeFromRow builds a fresh sorted row with v deleted (v must exist).
func removeFromRow(ts []VertexID, ws []float64, v VertexID) adjRow {
	i := sort.Search(len(ts), func(i int) bool { return ts[i] >= v })
	nt := make([]VertexID, 0, len(ts)-1)
	nw := make([]float64, 0, len(ws)-1)
	nt = append(append(nt, ts[:i]...), ts[i+1:]...)
	nw = append(append(nw, ws[:i]...), ws[i+1:]...)
	return adjRow{nt, nw}
}

// Compact folds the delta back into a pure CSR base and clears the patch
// map. Published graphs keep referencing the old arrays (they are immutable);
// the next Freeze returns the compacted CSR directly. O(n + m).
func (o *Overlay) Compact() {
	n := o.NumVertices()
	g := &Graph{
		offsets: make([]int32, n+1),
		numEdge: o.numEdge,
	}
	total := 0
	for v := 0; v < n; v++ {
		ts, _ := o.row(VertexID(v))
		total += len(ts)
		g.offsets[v+1] = g.offsets[v] + int32(len(ts))
	}
	g.targets = make([]VertexID, total)
	g.weights = make([]float64, total)
	for v := 0; v < n; v++ {
		ts, ws := o.row(VertexID(v))
		copy(g.targets[g.offsets[v]:], ts)
		copy(g.weights[g.offsets[v]:], ws)
	}
	o.base = g
	o.rows = make(map[VertexID]adjRow)
	o.frozen = g
	o.dirty = false
	o.compactions++
}
