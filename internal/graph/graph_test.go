package graph

import (
	"math"
	"math/rand"
	"testing"
)

// randomGraph builds a random connected-ish undirected graph for testing.
func randomGraph(rng *rand.Rand, n int, extraEdges int) *Graph {
	b := NewBuilder(n)
	// Random spanning structure to keep most of the graph connected.
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		w := 0.1 + rng.Float64()*9.9
		if err := b.AddEdge(VertexID(u), VertexID(v), w); err != nil {
			panic(err)
		}
	}
	for i := 0; i < extraEdges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		w := 0.1 + rng.Float64()*9.9
		if err := b.AddEdge(VertexID(u), VertexID(v), w); err != nil {
			panic(err)
		}
	}
	return b.MustBuild()
}

// floydWarshall is the brute-force all-pairs reference.
func floydWarshall(g *Graph) [][]float64 {
	n := g.NumVertices()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for v := 0; v < n; v++ {
		nbrs, ws := g.Neighbors(VertexID(v))
		for i, u := range nbrs {
			if ws[i] < d[v][u] {
				d[v][u] = ws[i]
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if d[i][k] == math.Inf(1) {
				continue
			}
			for j := 0; j < n; j++ {
				if nd := d[i][k] + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}

func almostEq(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	cases := []struct {
		u, v VertexID
		w    float64
	}{
		{0, 0, 1},           // self loop
		{0, 3, 1},           // out of range
		{-1, 1, 1},          // negative id
		{0, 1, 0},           // zero weight
		{0, 1, -2},          // negative weight
		{0, 1, math.Inf(1)}, // infinite weight
		{0, 1, math.NaN()},  // NaN weight
	}
	for _, c := range cases {
		if err := b.AddEdge(c.u, c.v, c.w); err == nil {
			t.Errorf("AddEdge(%d,%d,%v) accepted", c.u, c.v, c.w)
		}
	}
}

func TestBuilderDedupKeepsMinWeight(t *testing.T) {
	b := NewBuilder(2)
	_ = b.AddEdge(0, 1, 5)
	_ = b.AddEdge(1, 0, 2) // same undirected edge, lighter
	_ = b.AddEdge(0, 1, 7)
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	w, ok := g.EdgeWeight(0, 1)
	if !ok || w != 2 {
		t.Fatalf("EdgeWeight = %v,%v; want 2,true", w, ok)
	}
	if w2, _ := g.EdgeWeight(1, 0); w2 != 2 {
		t.Fatalf("reverse EdgeWeight = %v, want 2", w2)
	}
}

func TestBuilderBuildTwiceFails(t *testing.T) {
	b := NewBuilder(2)
	_ = b.AddEdge(0, 1, 1)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("second Build succeeded")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(4).MustBuild()
	if g.NumVertices() != 4 || g.NumEdges() != 0 {
		t.Fatalf("got %d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	sp := g.Dijkstra(0)
	for v := 1; v < 4; v++ {
		if sp.Dist[v] != Infinity {
			t.Fatalf("vertex %d reachable in empty graph", v)
		}
	}
	if sp.Dist[0] != 0 || sp.Hops[0] != 0 {
		t.Fatal("source distance wrong")
	}
}

func TestDegreeStats(t *testing.T) {
	b := NewBuilder(4)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(0, 2, 1)
	_ = b.AddEdge(0, 3, 1)
	g := b.MustBuild()
	if g.Degree(0) != 3 || g.Degree(1) != 1 {
		t.Fatalf("degrees: %d %d", g.Degree(0), g.Degree(1))
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 1.5 {
		t.Fatalf("AvgDegree = %v, want 1.5", got)
	}
}

func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(3*n))
		want := floydWarshall(g)
		src := VertexID(rng.Intn(n))
		sp := g.Dijkstra(src)
		for v := 0; v < n; v++ {
			if !almostEq(sp.Dist[v], want[src][v]) {
				t.Fatalf("trial %d: dist(%d,%d) = %v, want %v", trial, src, v, sp.Dist[v], want[src][v])
			}
		}
	}
}

func TestDijkstraToMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 60, 120)
	sp := g.Dijkstra(3)
	for v := 0; v < 60; v += 7 {
		if got := g.DijkstraTo(3, VertexID(v)); !almostEq(got, sp.Dist[v]) {
			t.Fatalf("DijkstraTo(3,%d) = %v, want %v", v, got, sp.Dist[v])
		}
	}
	if got := g.DijkstraTo(5, 5); got != 0 {
		t.Fatalf("self distance = %v", got)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	b := NewBuilder(4)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	if d := g.DijkstraTo(0, 3); d != Infinity {
		t.Fatalf("cross-component distance = %v, want +Inf", d)
	}
}

func TestPathToIsValidShortestPath(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomGraph(rng, 50, 100)
	sp := g.Dijkstra(0)
	for v := 0; v < 50; v += 5 {
		path := sp.PathTo(VertexID(v))
		if sp.Dist[v] == Infinity {
			if path != nil {
				t.Fatalf("unreachable vertex %d has a path", v)
			}
			continue
		}
		if path[0] != 0 || path[len(path)-1] != VertexID(v) {
			t.Fatalf("path endpoints wrong: %v", path)
		}
		total := 0.0
		for i := 0; i+1 < len(path); i++ {
			w, ok := g.EdgeWeight(path[i], path[i+1])
			if !ok {
				t.Fatalf("path uses nonexistent edge (%d,%d)", path[i], path[i+1])
			}
			total += w
		}
		if !almostEq(total, sp.Dist[v]) {
			t.Fatalf("path length %v != dist %v", total, sp.Dist[v])
		}
		if int32(len(path)-1) != sp.Hops[v] {
			t.Fatalf("hops %d != path edges %d", sp.Hops[v], len(path)-1)
		}
	}
}

func TestIteratorMonotoneAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomGraph(rng, 80, 200)
	sp := g.Dijkstra(4)
	it := NewDijkstraIterator(g, 4)
	prev := -1.0
	seen := map[VertexID]bool{}
	for {
		v, d, ok := it.Next()
		if !ok {
			break
		}
		if d < prev {
			t.Fatalf("iterator distances decreased: %v after %v", d, prev)
		}
		prev = d
		if seen[v] {
			t.Fatalf("vertex %d settled twice", v)
		}
		seen[v] = true
		if !almostEq(d, sp.Dist[v]) {
			t.Fatalf("iterator dist(%d) = %v, want %v", v, d, sp.Dist[v])
		}
		if got, ok := it.SettledDist(v); !ok || !almostEq(got, d) {
			t.Fatalf("SettledDist(%d) = %v,%v", v, got, ok)
		}
		if it.HopsOf(v) != sp.Hops[v] {
			t.Fatalf("hops(%d) = %d, want %d", v, it.HopsOf(v), sp.Hops[v])
		}
	}
	for v := 0; v < 80; v++ {
		if (sp.Dist[v] != Infinity) != seen[VertexID(v)] {
			t.Fatalf("vertex %d reachability mismatch", v)
		}
	}
	if !it.Exhausted() {
		t.Fatal("iterator not exhausted after draining")
	}
	if it.Pops() != len(seen) {
		t.Fatalf("Pops = %d, want %d", it.Pops(), len(seen))
	}
}

func TestIteratorLastKeyLowerBoundsUnsettled(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := randomGraph(rng, 60, 150)
	sp := g.Dijkstra(0)
	it := NewDijkstraIterator(g, 0)
	for i := 0; i < 25; i++ {
		if _, _, ok := it.Next(); !ok {
			break
		}
	}
	beta := it.LastKey()
	for v := 0; v < 60; v++ {
		if !it.Settled(VertexID(v)) && sp.Dist[v] != Infinity && sp.Dist[v] < beta-1e-12 {
			t.Fatalf("unsettled vertex %d has dist %v < LastKey %v", v, sp.Dist[v], beta)
		}
	}
}

func TestAStarZeroHeuristicMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(rng, 70, 180)
	sp := g.Dijkstra(2)
	pool := NewAStarPool(g.NumVertices())
	s := pool.NewSearch(g, 2, ZeroHeuristic)
	for {
		v, d, ok := s.Next()
		if !ok {
			break
		}
		if !almostEq(d, sp.Dist[v]) {
			t.Fatalf("A* dist(%d) = %v, want %v", v, d, sp.Dist[v])
		}
	}
}

func TestAStarConsistentHeuristicExact(t *testing.T) {
	// Heuristic derived from a real distance table (a "landmark" at vertex
	// 0): h(v) = |dist0[v] - dist0[target]| is consistent, so settled
	// distances must be exact.
	rng := rand.New(rand.NewSource(29))
	g := randomGraph(rng, 70, 180)
	dist0 := g.DistancesFrom(0)
	target := VertexID(55)
	h := func(v VertexID) float64 {
		d := dist0[v] - dist0[target]
		if d < 0 {
			d = -d
		}
		return d
	}
	want := g.DijkstraTo(10, target)
	pool := NewAStarPool(g.NumVertices())
	s := pool.NewSearch(g, 10, h)
	for {
		v, d, ok := s.Next()
		if !ok {
			t.Fatal("A* exhausted before target")
		}
		if v == target {
			if !almostEq(d, want) {
				t.Fatalf("A* target dist = %v, want %v", d, want)
			}
			break
		}
	}
}

func TestAStarPoolReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomGraph(rng, 50, 120)
	pool := NewAStarPool(g.NumVertices())
	for trial := 0; trial < 20; trial++ {
		src := VertexID(rng.Intn(50))
		sp := g.Dijkstra(src)
		s := pool.NewSearch(g, src, ZeroHeuristic)
		for {
			v, d, ok := s.Next()
			if !ok {
				break
			}
			if !almostEq(d, sp.Dist[v]) {
				t.Fatalf("trial %d: pooled A* dist(%d) = %v, want %v", trial, v, d, sp.Dist[v])
			}
		}
		// A previous search's state must not leak.
		if s.Pops() == 0 {
			t.Fatal("search settled nothing")
		}
	}
}

func TestBidirectionalMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(60)
		g := randomGraph(rng, n, rng.Intn(2*n))
		s := VertexID(rng.Intn(n))
		sp := g.Dijkstra(s)
		for probe := 0; probe < 10; probe++ {
			tgt := VertexID(rng.Intn(n))
			res := BidirectionalDijkstra(g, s, tgt, ZeroHeuristic, ZeroHeuristic, nil, nil)
			if !almostEq(res.Dist, sp.Dist[tgt]) {
				t.Fatalf("trial %d: bidi dist(%d,%d) = %v, want %v", trial, s, tgt, res.Dist, sp.Dist[tgt])
			}
		}
	}
}

func TestBidirectionalWithLandmarkHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := randomGraph(rng, 80, 200)
	dist0 := g.DistancesFrom(0)
	distL := g.DistancesFrom(40)
	bound := func(table []float64, anchor VertexID) Heuristic {
		return func(v VertexID) float64 {
			b1 := math.Abs(table[v] - table[anchor])
			return b1
		}
	}
	fwdPool := NewAStarPool(g.NumVertices())
	revPool := NewAStarPool(g.NumVertices())
	for trial := 0; trial < 30; trial++ {
		s := VertexID(rng.Intn(80))
		tgt := VertexID(rng.Intn(80))
		want := g.DijkstraTo(s, tgt)
		hF := bound(dist0, tgt)
		hR := bound(distL, s)
		res := BidirectionalDijkstra(g, s, tgt, hF, hR, fwdPool, revPool)
		if !almostEq(res.Dist, want) {
			t.Fatalf("trial %d: ALT bidi dist(%d,%d) = %v, want %v", trial, s, tgt, res.Dist, want)
		}
	}
}

func TestBidirectionalUnreachable(t *testing.T) {
	b := NewBuilder(4)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	res := BidirectionalDijkstra(g, 0, 3, ZeroHeuristic, ZeroHeuristic, nil, nil)
	if res.Dist != Infinity {
		t.Fatalf("dist = %v, want +Inf", res.Dist)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(7)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 2, 1)
	_ = b.AddEdge(3, 4, 1)
	g := b.MustBuild() // {0,1,2} {3,4} {5} {6}
	labels, count := g.ConnectedComponents()
	if count != 4 {
		t.Fatalf("component count = %d, want 4", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("component {0,1,2} split")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Fatal("component {3,4} wrong")
	}
	if labels[5] == labels[6] {
		t.Fatal("singletons merged")
	}
	big := g.LargestComponent()
	if len(big) != 3 || big[0] != 0 || big[2] != 2 {
		t.Fatalf("LargestComponent = %v", big)
	}
}

func TestEstimateDiameterPathGraph(t *testing.T) {
	// Path 0-1-2-3-4 with unit weights: diameter 4, double sweep finds it
	// exactly on a path.
	b := NewBuilder(5)
	for v := 0; v < 4; v++ {
		_ = b.AddEdge(VertexID(v), VertexID(v+1), 1)
	}
	g := b.MustBuild()
	if d := g.EstimateDiameter(2); d != 4 {
		t.Fatalf("EstimateDiameter = %v, want 4", d)
	}
}

func TestEstimateDiameterLowerBoundsTrueDiameter(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(30)
		g := randomGraph(rng, n, rng.Intn(n))
		all := floydWarshall(g)
		trueDiam := 0.0
		for i := range all {
			for j := range all[i] {
				if all[i][j] != math.Inf(1) && all[i][j] > trueDiam {
					trueDiam = all[i][j]
				}
			}
		}
		est := g.EstimateDiameter(0)
		if est > trueDiam+1e-9 {
			t.Fatalf("estimate %v exceeds true diameter %v", est, trueDiam)
		}
		if est <= 0 && trueDiam > 0 {
			t.Fatalf("estimate %v degenerate (true %v)", est, trueDiam)
		}
	}
}
