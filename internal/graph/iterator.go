package graph

import "ssrq/internal/pqueue"

// DijkstraIterator is a pausable Dijkstra expansion from a fixed source.
// Each Next call settles and returns the next-closest vertex, which makes the
// iterator the "sorted access" stream over the social domain that SFA, TSA
// and the forward search of AIS's GraphDist submodule rely on (paper §4, §5.2).
//
// The iterator retains its heap and settled state between calls — this *is*
// the paper's forward-heap caching when the iterator is shared across
// multiple target evaluations.
type DijkstraIterator struct {
	g       *Graph
	heap    *pqueue.IndexedHeap
	dist    []float64
	settled []bool
	parent  []VertexID
	hops    []int32
	lastKey float64 // distance of the most recently settled vertex (β in §5.3)
	pops    int
	done    bool
}

// NewDijkstraIterator starts an expansion at source. The source itself is the
// first vertex returned by Next (with distance 0).
func NewDijkstraIterator(g *Graph, source VertexID) *DijkstraIterator {
	it := &DijkstraIterator{}
	it.Reset(g, source)
	return it
}

// Reset re-arms the iterator in place for a fresh expansion from source over
// g, reusing the heap and label storage whenever the vertex count allows.
// Query-serving paths pool iterators across queries (an iterator's arrays are
// the dominant per-query allocation otherwise); g may differ from the graph
// of the previous run — each epoch publishes a new *Graph over the same
// vertex universe.
func (it *DijkstraIterator) Reset(g *Graph, source VertexID) {
	n := g.NumVertices()
	if cap(it.dist) < n || it.heap == nil {
		it.heap = pqueue.NewIndexedHeap(n)
		it.dist = make([]float64, n)
		it.settled = make([]bool, n)
		it.parent = make([]VertexID, n)
		it.hops = make([]int32, n)
	} else {
		it.heap.Reset()
		it.dist = it.dist[:n]
		it.settled = it.settled[:n]
		it.parent = it.parent[:n]
		it.hops = it.hops[:n]
		clear(it.settled)
	}
	for i := range it.dist {
		it.dist[i] = Infinity
		it.parent[i] = -1
		it.hops[i] = -1
	}
	it.g = g
	it.lastKey = 0
	it.pops = 0
	it.done = false
	it.dist[source] = 0
	it.hops[source] = 0
	it.heap.PushOrDecrease(source, 0)
}

// Next settles the next-closest unsettled vertex and relaxes its edges.
// ok is false once the connected component of the source is exhausted.
func (it *DijkstraIterator) Next() (v VertexID, dist float64, ok bool) {
	if it.done {
		return 0, 0, false
	}
	v, dist, ok = it.heap.PopMin()
	if !ok {
		it.done = true
		return 0, 0, false
	}
	it.settled[v] = true
	it.lastKey = dist
	it.pops++
	nbrs, ws := it.g.Neighbors(v)
	for i, u := range nbrs {
		if it.settled[u] {
			continue
		}
		if nd := dist + ws[i]; nd < it.dist[u] {
			it.dist[u] = nd
			it.parent[u] = v
			it.hops[u] = it.hops[v] + 1
			it.heap.PushOrDecrease(u, nd)
		}
	}
	return v, dist, true
}

// Exhausted reports whether the expansion has settled its entire component.
func (it *DijkstraIterator) Exhausted() bool { return it.done }

// Settled reports whether v has been settled (popped); once settled,
// SettledDist(v) is the exact shortest-path distance.
func (it *DijkstraIterator) Settled(v VertexID) bool { return it.settled[v] }

// SettledDist returns the exact distance to v if it is settled.
func (it *DijkstraIterator) SettledDist(v VertexID) (float64, bool) {
	if !it.settled[v] {
		return Infinity, false
	}
	return it.dist[v], true
}

// TentativeDist returns the current (possibly not final) label of v;
// Infinity if undiscovered.
func (it *DijkstraIterator) TentativeDist(v VertexID) float64 { return it.dist[v] }

// LastKey returns the distance of the most recently settled vertex. It lower
// bounds the distance of every vertex not yet settled (the β of §5.3); it is
// 0 before the first Next call.
func (it *DijkstraIterator) LastKey() float64 { return it.lastKey }

// HeadKey returns the tentative distance of the next vertex to be settled —
// a (tighter than LastKey) lower bound on every unsettled vertex. ok is
// false when the frontier is exhausted.
func (it *DijkstraIterator) HeadKey() (float64, bool) {
	_, key, ok := it.heap.PeekMin()
	return key, ok
}

// HopsOf returns the number of edges on the shortest path to a settled
// vertex, or -1 if v is not settled.
func (it *DijkstraIterator) HopsOf(v VertexID) int32 {
	if !it.settled[v] {
		return -1
	}
	return it.hops[v]
}

// ParentOf returns the shortest-path-tree parent of a discovered vertex
// (-1 for the source or undiscovered vertices).
func (it *DijkstraIterator) ParentOf(v VertexID) VertexID { return it.parent[v] }

// Pops returns the number of vertices settled so far (instrumentation for
// the paper's pop-ratio metric).
func (it *DijkstraIterator) Pops() int { return it.pops }
