package graph

import (
	"testing"
)

// FuzzOverlayInvariants feeds arbitrary add/remove/reweight byte programs to
// an Overlay and checks the merged graph against a map-based model after
// every frozen epoch: adjacency symmetric and sorted, weights positive,
// degrees and edge count consistent. Each op consumes 4 bytes:
// [kind, u, v, w] over a 32-vertex graph; a compaction is forced mid-stream
// so the CSR fold is always exercised.
func FuzzOverlayInvariants(f *testing.F) {
	f.Add([]byte{0, 1, 2, 10})
	f.Add([]byte{0, 1, 2, 10, 1, 2, 1, 0, 0, 3, 4, 200, 2, 3, 4, 7})
	f.Add([]byte{0, 0, 31, 1, 0, 31, 0, 2, 1, 0, 31, 0, 0, 5, 5, 9})
	f.Fuzz(func(t *testing.T, program []byte) {
		const n = 32
		base := NewBuilder(n)
		_ = base.AddEdge(0, 1, 1)
		_ = base.AddEdge(1, 2, 0.5)
		g := base.MustBuild()
		o := NewOverlay(g)
		model := modelOf(g)

		for i := 0; i+3 < len(program); i += 4 {
			kind := program[i] % 3
			u := VertexID(program[i+1] % n)
			v := VertexID(program[i+2] % n)
			w := float64(program[i+3])/16 + 0.01
			switch kind {
			case 0, 2: // upsert (reweight is the same call on an existing pair)
				created, err := o.SetEdge(u, v, w)
				if u == v {
					if err == nil {
						t.Fatal("self-loop accepted")
					}
					continue
				}
				if err != nil {
					t.Fatalf("SetEdge(%d,%d,%v): %v", u, v, w, err)
				}
				_, had := model[pairKey(u, v)]
				if created == had {
					t.Fatalf("SetEdge created=%v but model had=%v", created, had)
				}
				model[pairKey(u, v)] = w
			case 1:
				existed, err := o.RemoveEdge(u, v)
				if u == v {
					if err == nil {
						t.Fatal("self-loop removal accepted")
					}
					continue
				}
				if err != nil {
					t.Fatalf("RemoveEdge(%d,%d): %v", u, v, err)
				}
				if _, had := model[pairKey(u, v)]; existed != had {
					t.Fatalf("RemoveEdge existed=%v but model had=%v", existed, had)
				}
				delete(model, pairKey(u, v))
			}
			if i == len(program)/2 {
				o.Compact()
			}
			checkAgainstModel(t, o.Freeze(), model)
		}
		o.Compact()
		checkAgainstModel(t, o.Freeze(), model)
	})
}
