package graph

// ConnectedComponents labels every vertex with a component ID in [0, count)
// using iterative BFS (edge weights ignored).
func (g *Graph) ConnectedComponents() (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []VertexID
	for start := 0; start < n; start++ {
		if labels[start] >= 0 {
			continue
		}
		id := int32(count)
		count++
		labels[start] = id
		queue = append(queue[:0], VertexID(start))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			nbrs, _ := g.Neighbors(v)
			for _, u := range nbrs {
				if labels[u] < 0 {
					labels[u] = id
					queue = append(queue, u)
				}
			}
		}
	}
	return labels, count
}

// LargestComponent returns the vertices of the largest connected component.
func (g *Graph) LargestComponent() []VertexID {
	labels, count := g.ConnectedComponents()
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for i, s := range sizes {
		if s > sizes[best] {
			best = i
		}
	}
	members := make([]VertexID, 0, sizes[best])
	for v, l := range labels {
		if l == int32(best) {
			members = append(members, VertexID(v))
		}
	}
	return members
}

// EstimateDiameter lower-bounds the weighted diameter of the component of
// start with the classic double-sweep: Dijkstra from start to find the
// farthest vertex a, then Dijkstra from a; the largest finite distance seen
// is returned. Used as the social-proximity normalization constant
// (DESIGN.md §4) — an exact diameter is infeasible at social-network scale.
func (g *Graph) EstimateDiameter(start VertexID) float64 {
	farthest := func(src VertexID) (VertexID, float64) {
		dist := g.DistancesFrom(src)
		bestV, bestD := src, 0.0
		for v, d := range dist {
			if d != Infinity && d > bestD {
				bestV, bestD = VertexID(v), d
			}
		}
		return bestV, bestD
	}
	a, _ := farthest(start)
	_, d := farthest(a)
	return d
}
