package graph

// BidirectionalResult reports the outcome of a point-to-point bidirectional
// search.
type BidirectionalResult struct {
	Dist    float64 // Infinity when unreachable
	Meeting VertexID
	Pops    int // vertices settled across both directions
}

// BidirectionalDijkstra computes the s-t distance by alternating a forward
// and a reverse Dijkstra until the best meeting path can no longer be
// improved. With hF/hR == ZeroHeuristic this is the classic algorithm; with
// consistent landmark heuristics it is the bidirectional ALT search of
// Goldberg & Harrelson [25], which AIS-BID issues afresh for every candidate
// evaluation (paper §6, Fig. 10).
//
// hF must lower-bound the remaining distance to t; hR must lower-bound the
// remaining distance to s. Stopping rule: with consistent heuristics, once
// best ≤ the head key of either frontier, no undiscovered path can beat
// best (see DESIGN.md §4 and Algorithm 3 of the paper, which stops on the
// reverse head key alone).
func BidirectionalDijkstra(g *Graph, s, t VertexID, hF, hR Heuristic, fwdPool, revPool *AStarPool) BidirectionalResult {
	if s == t {
		return BidirectionalResult{Dist: 0, Meeting: s}
	}
	if fwdPool == nil {
		fwdPool = NewAStarPool(g.NumVertices())
	}
	if revPool == nil {
		revPool = NewAStarPool(g.NumVertices())
	}
	fwd := fwdPool.NewSearch(g, s, hF)
	rev := revPool.NewSearch(g, t, hR)

	best := Infinity
	meet := VertexID(-1)
	consider := func(v VertexID, total float64) {
		if total < best {
			best = total
			meet = v
		}
	}

	for {
		fKey, fOK := fwd.HeadKey()
		rKey, rOK := rev.HeadKey()
		if !fOK && !rOK {
			break
		}
		// Either frontier's head key certifies optimality once reached.
		if (fOK && best <= fKey) || (rOK && best <= rKey) {
			break
		}
		if fOK {
			v, dv, _ := fwd.Pop()
			if dr, ok := rev.SettledDist(v); ok {
				consider(v, dv+dr)
			}
			fwd.Expand(v)
		}
		if rOK {
			v, dv, _ := rev.Pop()
			if df, ok := fwd.SettledDist(v); ok {
				consider(v, df+dv)
				// Matching Algorithm 3 line 18: a vertex already settled by
				// the opposite search need not be expanded.
			} else {
				rev.Expand(v)
			}
		}
	}
	return BidirectionalResult{Dist: best, Meeting: meet, Pops: fwd.Pops() + rev.Pops()}
}

// PointToPointDist is BidirectionalDijkstra with zero heuristics and fresh
// pools; a convenience for tests and one-off distance queries.
func PointToPointDist(g *Graph, s, t VertexID) float64 {
	return BidirectionalDijkstra(g, s, t, ZeroHeuristic, ZeroHeuristic, nil, nil).Dist
}
