package graph

import "ssrq/internal/pqueue"

// ShortestPaths holds a full single-source shortest-path tree.
type ShortestPaths struct {
	Source VertexID
	Dist   []float64 // Infinity for unreachable vertices
	Parent []VertexID
	Hops   []int32 // edge count along the shortest-path tree; -1 if unreachable
}

// Dijkstra computes shortest-path distances from source to every vertex.
func (g *Graph) Dijkstra(source VertexID) *ShortestPaths {
	n := g.NumVertices()
	sp := &ShortestPaths{
		Source: source,
		Dist:   make([]float64, n),
		Parent: make([]VertexID, n),
		Hops:   make([]int32, n),
	}
	for i := range sp.Dist {
		sp.Dist[i] = Infinity
		sp.Parent[i] = -1
		sp.Hops[i] = -1
	}
	h := pqueue.NewIndexedHeap(n)
	sp.Dist[source] = 0
	sp.Hops[source] = 0
	h.PushOrDecrease(source, 0)
	for {
		v, dv, ok := h.PopMin()
		if !ok {
			break
		}
		if dv > sp.Dist[v] { // stale entry (cannot happen with decrease-key, kept defensively)
			continue
		}
		nbrs, ws := g.Neighbors(v)
		for i, u := range nbrs {
			if nd := dv + ws[i]; nd < sp.Dist[u] {
				sp.Dist[u] = nd
				sp.Parent[u] = v
				sp.Hops[u] = sp.Hops[v] + 1
				h.PushOrDecrease(u, nd)
			}
		}
	}
	return sp
}

// DistancesFrom is Dijkstra returning only the distance slice.
func (g *Graph) DistancesFrom(source VertexID) []float64 {
	return g.Dijkstra(source).Dist
}

// DijkstraTo computes the shortest-path distance between two vertices,
// stopping as soon as target is settled. Returns Infinity when unreachable.
func (g *Graph) DijkstraTo(source, target VertexID) float64 {
	if source == target {
		return 0
	}
	it := NewDijkstraIterator(g, source)
	for {
		v, d, ok := it.Next()
		if !ok {
			return Infinity
		}
		if v == target {
			return d
		}
	}
}

// PathTo reconstructs the vertex sequence from the tree source to v, or nil
// if v is unreachable.
func (sp *ShortestPaths) PathTo(v VertexID) []VertexID {
	if sp.Dist[v] == Infinity {
		return nil
	}
	var rev []VertexID
	for x := v; x != -1; x = sp.Parent[x] {
		rev = append(rev, x)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
