package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScaleWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 30, 60)
	s := g.ScaleWeights(0.5)
	if s.NumVertices() != g.NumVertices() || s.NumEdges() != g.NumEdges() {
		t.Fatal("topology changed")
	}
	for v := 0; v < 30; v++ {
		n1, w1 := g.Neighbors(VertexID(v))
		n2, w2 := s.Neighbors(VertexID(v))
		if len(n1) != len(n2) {
			t.Fatal("adjacency changed")
		}
		for i := range n1 {
			if n1[i] != n2[i] || math.Abs(w2[i]-w1[i]*0.5) > 1e-12 {
				t.Fatal("weights scaled wrong")
			}
		}
	}
	// Distances scale linearly.
	d1 := g.DistancesFrom(0)
	d2 := s.DistancesFrom(0)
	for v := range d1 {
		if d1[v] == Infinity {
			if d2[v] != Infinity {
				t.Fatal("reachability changed")
			}
			continue
		}
		if math.Abs(d2[v]-d1[v]*0.5) > 1e-9 {
			t.Fatalf("distance %d not scaled: %v vs %v", v, d2[v], d1[v])
		}
	}
}

func TestIteratorHeadKey(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 50, 100)
	it := NewDijkstraIterator(g, 0)
	sp := g.Dijkstra(0)
	for {
		head, ok := it.HeadKey()
		if !ok {
			break
		}
		v, d, ok2 := it.Next()
		if !ok2 {
			break
		}
		if math.Abs(head-d) > 1e-12 {
			t.Fatalf("HeadKey %v != next settled distance %v", head, d)
		}
		// HeadKey must lower-bound every unsettled vertex.
		for u := 0; u < 50; u++ {
			if !it.Settled(VertexID(u)) && sp.Dist[u] < head-1e-12 {
				t.Fatalf("unsettled %d closer (%v) than head key %v after settling %d", u, sp.Dist[u], head, v)
			}
		}
	}
}

func TestDijkstraQuickProperty(t *testing.T) {
	// testing/quick drives random adjacency structures; Dijkstra must agree
	// with Floyd-Warshall on every generated graph.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(2*n))
		want := floydWarshall(g)
		src := VertexID(rng.Intn(n))
		got := g.DistancesFrom(src)
		for v := 0; v < n; v++ {
			if !almostEq(got[v], want[src][v]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBidirectionalQuickProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(n))
		s, tg := VertexID(rng.Intn(n)), VertexID(rng.Intn(n))
		want := g.DijkstraTo(s, tg)
		got := PointToPointDist(g, s, tg)
		return almostEq(got, want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestAStarPopWithoutExpand(t *testing.T) {
	// Pop/Expand split: not expanding a vertex must keep the search sound
	// for vertices already discovered.
	b := NewBuilder(4)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 2, 1)
	_ = b.AddEdge(0, 3, 5)
	_ = b.AddEdge(3, 2, 1)
	g := b.MustBuild()
	pool := NewAStarPool(4)
	s := pool.NewSearch(g, 0, ZeroHeuristic)
	v, d, _ := s.Pop() // settles 0
	if v != 0 || d != 0 {
		t.Fatalf("first pop = %d,%v", v, d)
	}
	s.Expand(v)
	v, d, _ = s.Pop() // settles 1 at distance 1
	if v != 1 || d != 1 {
		t.Fatalf("second pop = %d,%v", v, d)
	}
	// Do NOT expand 1; next pop must be 3 (dist 5), not 2.
	v, d, _ = s.Pop()
	if v != 3 || d != 5 {
		t.Fatalf("third pop = %d,%v; want 3,5", v, d)
	}
	if s.Settled(2) {
		t.Fatal("vertex 2 settled without a path")
	}
}

func TestEstimateDiameterDisconnected(t *testing.T) {
	b := NewBuilder(5)
	_ = b.AddEdge(0, 1, 3)
	_ = b.AddEdge(2, 3, 7) // separate component, larger internal distance
	g := b.MustBuild()
	// Estimate from component {0,1} only sees that component.
	if d := g.EstimateDiameter(0); d != 3 {
		t.Fatalf("component diameter = %v, want 3", d)
	}
}
