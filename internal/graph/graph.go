// Package graph implements the weighted undirected social-graph substrate of
// the SSRQ reproduction: a compact CSR adjacency representation plus the
// shortest-path machinery every SSRQ algorithm builds on — full and
// incremental (pausable) Dijkstra, A* with pluggable heuristics, and
// bidirectional searches.
//
// Vertices are dense int32 IDs in [0, N). Edge weights are positive float64
// "friendship strengths" (smaller = stronger, per the paper §3). A Graph is
// immutable after Build, which keeps query paths allocation-light and makes
// concurrent read-only use safe. Edge churn is layered on top: an Overlay
// accumulates mutations against a base CSR and freezes merged, equally
// immutable Graph values for publication (see overlay.go), so every search
// in this package runs unchanged on both static and churned graphs.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// VertexID identifies a vertex (== a user) in the social graph.
type VertexID = int32

// Infinity is the distance reported for unreachable vertices.
var Infinity = math.Inf(1)

// adjRow is a replacement adjacency list for one vertex, sorted by target.
// Rows are immutable once installed in a patch map; the overlay replaces
// whole rows instead of editing them in place so published graphs stay
// bit-stable.
type adjRow struct {
	targets []VertexID
	weights []float64
}

// Graph is an immutable weighted undirected graph: a CSR base plus an
// optional sparse patch layer of replacement adjacency rows (the frozen form
// of an Overlay delta). patched is nil for pure CSR graphs, so the static
// fast path pays only a nil check.
type Graph struct {
	offsets []int32 // len n+1; adjacency of v is targets[offsets[v]:offsets[v+1]]
	targets []VertexID
	weights []float64
	numEdge int                 // number of undirected edges
	patched map[VertexID]adjRow // overlay rows overriding the CSR; nil when none
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.numEdge }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v VertexID) int {
	if g.patched != nil {
		if row, ok := g.patched[v]; ok {
			return len(row.targets)
		}
	}
	return int(g.offsets[v+1] - g.offsets[v])
}

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(VertexID(v)); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the average vertex degree.
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return 2 * float64(g.numEdge) / float64(g.NumVertices())
}

// Neighbors returns the adjacency of v as parallel target/weight slices. The
// returned slices alias the graph's internal storage and must not be
// modified.
func (g *Graph) Neighbors(v VertexID) ([]VertexID, []float64) {
	if g.patched != nil {
		if row, ok := g.patched[v]; ok {
			return row.targets, row.weights
		}
	}
	lo, hi := g.offsets[v], g.offsets[v+1]
	return g.targets[lo:hi], g.weights[lo:hi]
}

// EdgeWeight returns the weight of edge (u,v) and whether it exists.
// Adjacency lists — CSR and patched rows alike — are sorted by target, so
// this is a binary search, never an O(degree) scan (hub vertices make the
// difference on hot paths like landmark repair support checks).
func (g *Graph) EdgeWeight(u, v VertexID) (float64, bool) {
	ts, ws := g.Neighbors(u)
	return searchRow(ts, ws, v)
}

// searchRow binary-searches a sorted adjacency row for target v.
func searchRow(ts []VertexID, ws []float64, v VertexID) (float64, bool) {
	i := sort.Search(len(ts), func(i int) bool { return ts[i] >= v })
	if i < len(ts) && ts[i] == v {
		return ws[i], true
	}
	return 0, false
}

// ScaleWeights returns a graph with identical topology and every edge weight
// multiplied by factor (> 0). Adjacency storage is shared except weights.
// Used by dataset normalization.
func (g *Graph) ScaleWeights(factor float64) *Graph {
	scaled := &Graph{
		offsets: g.offsets,
		targets: g.targets,
		weights: make([]float64, len(g.weights)),
		numEdge: g.numEdge,
	}
	for i, w := range g.weights {
		scaled.weights[i] = w * factor
	}
	if g.patched != nil {
		scaled.patched = make(map[VertexID]adjRow, len(g.patched))
		for v, row := range g.patched {
			ws := make([]float64, len(row.weights))
			for i, w := range row.weights {
				ws[i] = w * factor
			}
			scaled.patched[v] = adjRow{targets: row.targets, weights: ws}
		}
	}
	return scaled
}

// Builder accumulates undirected edges and produces an immutable Graph.
// Duplicate edges are merged keeping the minimum weight; self-loops and
// non-positive weights are rejected.
type Builder struct {
	n     int
	us    []VertexID
	vs    []VertexID
	ws    []float64
	built bool
}

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// NumVertices returns the vertex count the builder was created with.
func (b *Builder) NumVertices() int { return b.n }

// AddEdge records the undirected edge (u,v) with weight w.
func (b *Builder) AddEdge(u, v VertexID, w float64) error {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	}
	if !(w > 0) || math.IsInf(w, 1) || math.IsNaN(w) {
		return fmt.Errorf("graph: edge (%d,%d) weight %v must be positive and finite", u, v, w)
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.ws = append(b.ws, w)
	return nil
}

// HasEdges reports whether any edges were added.
func (b *Builder) HasEdges() bool { return len(b.us) > 0 }

// Build finalizes the graph. The builder must not be reused afterwards.
func (b *Builder) Build() (*Graph, error) {
	if b.built {
		return nil, fmt.Errorf("graph: Build called twice")
	}
	b.built = true

	type half struct {
		from, to VertexID
		w        float64
	}
	halves := make([]half, 0, 2*len(b.us))
	for i := range b.us {
		halves = append(halves,
			half{b.us[i], b.vs[i], b.ws[i]},
			half{b.vs[i], b.us[i], b.ws[i]})
	}
	sort.Slice(halves, func(i, j int) bool {
		if halves[i].from != halves[j].from {
			return halves[i].from < halves[j].from
		}
		if halves[i].to != halves[j].to {
			return halves[i].to < halves[j].to
		}
		return halves[i].w < halves[j].w
	})

	// Deduplicate keeping the smallest weight (it sorts first).
	dedup := halves[:0]
	for _, h := range halves {
		if n := len(dedup); n > 0 && dedup[n-1].from == h.from && dedup[n-1].to == h.to {
			continue
		}
		dedup = append(dedup, h)
	}

	g := &Graph{
		offsets: make([]int32, b.n+1),
		targets: make([]VertexID, len(dedup)),
		weights: make([]float64, len(dedup)),
		numEdge: len(dedup) / 2,
	}
	for i, h := range dedup {
		g.offsets[h.from+1]++
		g.targets[i] = h.to
		g.weights[i] = h.w
	}
	for v := 0; v < b.n; v++ {
		g.offsets[v+1] += g.offsets[v]
	}
	return g, nil
}

// MustBuild is Build that panics on error; intended for generators and tests
// that construct edges known to be valid.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
