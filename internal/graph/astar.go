package graph

import "ssrq/internal/pqueue"

// Heuristic estimates a lower bound on the remaining distance from a vertex
// to a fixed (implicit) goal. All heuristics used in this repository are
// landmark-derived and therefore consistent, so A* settles exact distances.
type Heuristic func(VertexID) float64

// ZeroHeuristic makes A* behave exactly like Dijkstra.
func ZeroHeuristic(VertexID) float64 { return 0 }

// AStarPool is reusable storage for repeated A* searches over the same
// graph-size domain. GraphDist-style workloads start hundreds of short
// reverse searches per query; epoch-stamped arrays avoid an O(n)
// allocation+clear per search. One search may be active per pool at a time.
type AStarPool struct {
	heap    *pqueue.IndexedHeap
	dist    []float64 // g-values, valid when mark == epoch
	parent  []VertexID
	mark    []uint32
	settled []uint32 // epoch when settled
	epoch   uint32
	cur     AStarSearch // the (single) active search, reused across NewSearch calls
}

// NewAStarPool returns a pool for graphs with n vertices.
func NewAStarPool(n int) *AStarPool {
	return &AStarPool{
		heap:    pqueue.NewIndexedHeap(n),
		dist:    make([]float64, n),
		parent:  make([]VertexID, n),
		mark:    make([]uint32, n),
		settled: make([]uint32, n),
	}
}

// AStarSearch is a pausable A* expansion bound to a pool. Pop and Expand are
// split so callers (Algorithm 3's reverse search) can decide not to expand a
// settled vertex.
type AStarSearch struct {
	g    *Graph
	p    *AStarPool
	h    Heuristic
	pops int
	done bool
}

// NewSearch begins an A* expansion from source with heuristic h,
// invalidating any previous search on this pool. The returned search is the
// pool's single embedded one (at most one search is active per pool), so
// starting a search allocates nothing.
func (p *AStarPool) NewSearch(g *Graph, source VertexID, h Heuristic) *AStarSearch {
	p.epoch++
	if p.epoch == 0 { // uint32 wrap: flush stale marks
		for i := range p.mark {
			p.mark[i], p.settled[i] = 0, 0
		}
		p.epoch = 1
	}
	p.heap.Reset()
	p.cur = AStarSearch{g: g, p: p, h: h}
	p.dist[source] = 0
	p.parent[source] = -1
	p.mark[source] = p.epoch
	p.heap.PushOrDecrease(source, h(source))
	return &p.cur
}

// Pop settles and returns the vertex with the smallest f = g + h key without
// expanding it. dist is the exact g-value. ok is false when the frontier is
// exhausted.
func (s *AStarSearch) Pop() (v VertexID, dist float64, ok bool) {
	if s.done {
		return 0, 0, false
	}
	v, _, ok = s.p.heap.PopMin()
	if !ok {
		s.done = true
		return 0, 0, false
	}
	s.p.settled[v] = s.p.epoch
	s.pops++
	return v, s.p.dist[v], true
}

// Expand relaxes the edges of a vertex previously returned by Pop.
func (s *AStarSearch) Expand(v VertexID) {
	dv := s.p.dist[v]
	nbrs, ws := s.g.Neighbors(v)
	for i, u := range nbrs {
		if s.p.settled[u] == s.p.epoch {
			continue
		}
		nd := dv + ws[i]
		if s.p.mark[u] != s.p.epoch || nd < s.p.dist[u] {
			s.p.dist[u] = nd
			s.p.parent[u] = v
			s.p.mark[u] = s.p.epoch
			s.p.heap.PushOrDecrease(u, nd+s.h(u))
		}
	}
}

// Next is Pop followed by Expand.
func (s *AStarSearch) Next() (v VertexID, dist float64, ok bool) {
	v, dist, ok = s.Pop()
	if ok {
		s.Expand(v)
	}
	return v, dist, ok
}

// HeadKey returns the smallest f-key currently queued; ok is false when the
// frontier is empty. It lower-bounds the total length of any s-t path not
// yet discovered through this search's frontier.
func (s *AStarSearch) HeadKey() (float64, bool) {
	_, key, ok := s.p.heap.PeekMin()
	return key, ok
}

// Settled reports whether v has been settled by this search.
func (s *AStarSearch) Settled(v VertexID) bool { return s.p.settled[v] == s.p.epoch }

// SettledDist returns the exact distance of a settled vertex.
func (s *AStarSearch) SettledDist(v VertexID) (float64, bool) {
	if !s.Settled(v) {
		return Infinity, false
	}
	return s.p.dist[v], true
}

// Discovered reports whether v has a (possibly tentative) label.
func (s *AStarSearch) Discovered(v VertexID) bool { return s.p.mark[v] == s.p.epoch }

// LabelDist returns the tentative g-value of a discovered vertex.
func (s *AStarSearch) LabelDist(v VertexID) (float64, bool) {
	if !s.Discovered(v) {
		return Infinity, false
	}
	return s.p.dist[v], true
}

// ParentOf returns the search-tree parent of a discovered vertex.
func (s *AStarSearch) ParentOf(v VertexID) VertexID {
	if !s.Discovered(v) {
		return -1
	}
	return s.p.parent[v]
}

// Pops returns how many vertices this search settled (pop-ratio metric).
func (s *AStarSearch) Pops() int { return s.pops }

// Exhausted reports whether the frontier has emptied.
func (s *AStarSearch) Exhausted() bool { return s.done }
