// Package fof implements a friends-of-friends social lower bound: an
// additional cheap admissible bound on graph distance that complements the
// landmark triangle-inequality bound ("Even Partial Knowledge of Friends of
// Friends Speeds Social Search", PAPERS.md — most real top-k members sit
// within 2 hops, exactly where landmark bounds are loosest).
//
// Per query, a pooled Scratch is armed once from the query vertex's rows of
// the snapshot graph: the exact shortest distance over every path of at most
// 2 edges to each reachable vertex (O(deg(q) + Σ deg(neighbor)), budgeted).
// For vertices farther than 2 hops the bound falls back to a weight floor:
// any path of ≥ 3 edges costs at least minw(q) + wmin + minw(u), where
// minw(v) is a floor on v's minimum incident edge weight and wmin a floor on
// the global minimum edge weight.
//
// Churn maintenance is O(1) per edge op and deliberately one-sided: every
// upsert lowers the affected floors (before the epoch publishes), removals
// never raise them. Floors are therefore monotone non-increasing over the
// substrate's lifetime — at most *looser* than the current graph, never
// tighter — so a bound computed from any snapshot plus the current floors is
// admissible for that snapshot, with no per-removal recomputation. The
// 2-hop component is re-derived per query from the snapshot itself and is
// always exact.
package fof

import (
	"math"
	"sync/atomic"

	"ssrq/internal/graph"
)

// Index holds the monotone weight floors. Floors are stored as atomic
// float64 bits: writers lower them under the substrate's writer lock, and
// readers on the query path load them lock-free. Because publishes of
// snapshots happen after the floor writes of the batch that produced them,
// a reader that loaded a snapshot observes floors no higher than that
// snapshot's true minima.
type Index struct {
	minw []atomic.Uint64 // per-vertex floor on the minimum incident edge weight
	wmin atomic.Uint64   // global floor on the minimum edge weight
}

// New scans the construction graph and initializes the floors to its exact
// per-vertex and global minimum incident weights (+Inf for isolated
// vertices / an edgeless graph).
func New(g *graph.Graph) *Index {
	n := g.NumVertices()
	ix := &Index{minw: make([]atomic.Uint64, n)}
	global := math.Inf(1)
	for v := 0; v < n; v++ {
		lo := math.Inf(1)
		_, ws := g.Neighbors(graph.VertexID(v))
		for _, w := range ws {
			if w < lo {
				lo = w
			}
		}
		ix.minw[v].Store(math.Float64bits(lo))
		if lo < global {
			global = lo
		}
	}
	ix.wmin.Store(math.Float64bits(global))
	return ix
}

// ObserveUpsert lowers the floors for an edge (u,v) of weight w. Called
// under the substrate's writer lock before the batch's epoch publishes;
// idempotent, and a no-op when the floors are already at or below w.
func (ix *Index) ObserveUpsert(u, v int32, w float64) {
	lowerFloor(&ix.minw[u], w)
	lowerFloor(&ix.minw[v], w)
	lowerFloor(&ix.wmin, w)
}

func lowerFloor(a *atomic.Uint64, w float64) {
	if math.Float64frombits(a.Load()) > w {
		a.Store(math.Float64bits(w))
	}
}

// MinIncident returns the floor on u's minimum incident edge weight.
func (ix *Index) MinIncident(u int32) float64 {
	return math.Float64frombits(ix.minw[u].Load())
}

// GlobalFloor returns the floor on the global minimum edge weight.
func (ix *Index) GlobalFloor() float64 {
	return math.Float64frombits(ix.wmin.Load())
}

// Scratch is the reusable per-query state: exact ≤2-edge distances from one
// query vertex, lazily stamped so re-arming costs O(work actually done), not
// O(n). Not safe for concurrent use; pool it with the other query scratch.
type Scratch struct {
	best  []float64
	stamp []uint32
	cur   uint32
	q     int32
	// complete reports whether the 2-hop expansion ran to completion; when
	// false best holds exact 1-edge distances only and LowerBound covers
	// ≥2-edge paths with the weight floors.
	complete bool
	minwQ    float64 // floor on q's min incident weight, read at arm time
	wmin     float64 // global floor, read at arm time
	ix       *Index
	armed    bool
}

// DefaultBudget caps the 2-hop expansion (total neighbor-row entries
// scanned). Queries from hubs whose 2-hop neighborhood exceeds it keep the
// exact 1-hop component and fall back to floors beyond — still admissible,
// just looser.
const DefaultBudget = 4096

// Arm prepares the scratch for queries from q against snapshot graph g,
// using ix's floors for the beyond-2-hop fallback. budget ≤ 0 selects
// DefaultBudget.
func (sc *Scratch) Arm(ix *Index, g *graph.Graph, q int32, budget int) {
	if budget <= 0 {
		budget = DefaultBudget
	}
	n := g.NumVertices()
	if len(sc.best) < n {
		sc.best = make([]float64, n)
		sc.stamp = make([]uint32, n)
		sc.cur = 0
	}
	sc.cur++
	if sc.cur == 0 { // stamp wraparound: invalidate everything once
		clear(sc.stamp)
		sc.cur = 1
	}
	sc.ix = ix
	sc.q = q
	sc.armed = true
	sc.minwQ = ix.MinIncident(q)
	sc.wmin = ix.GlobalFloor()

	nbrs, ws := g.Neighbors(q)
	work := 0
	for i, x := range nbrs {
		sc.observe(x, ws[i])
		work += g.Degree(x)
	}
	sc.complete = work <= budget
	if !sc.complete {
		return
	}
	for i, x := range nbrs {
		d1 := ws[i]
		nbrs2, ws2 := g.Neighbors(x)
		for j, y := range nbrs2 {
			if y == q {
				continue
			}
			sc.observe(y, d1+ws2[j])
		}
	}
}

func (sc *Scratch) observe(v int32, d float64) {
	if sc.stamp[v] != sc.cur {
		sc.stamp[v] = sc.cur
		sc.best[v] = d
		return
	}
	if d < sc.best[v] {
		sc.best[v] = d
	}
}

// Armed reports whether the scratch currently holds a query's state.
func (sc *Scratch) Armed() bool { return sc.armed }

// Release marks the scratch idle (arrays are kept for reuse).
func (sc *Scratch) Release() { sc.armed = false }

// LowerBound returns an admissible lower bound on the graph distance from
// the armed query vertex to u in the snapshot the scratch was armed on:
// exact for every path of ≤ 2 edges (≤ 1 edge when the expansion hit its
// budget), a weight-floor bound beyond.
func (sc *Scratch) LowerBound(u int32) float64 {
	if u == sc.q {
		return 0
	}
	d := math.Inf(1)
	if sc.stamp[u] == sc.cur {
		d = sc.best[u]
	}
	var floor float64
	if sc.complete {
		// Unseen paths have ≥ 3 edges: first incident to q, last to u, at
		// least one in between.
		floor = sc.minwQ + sc.wmin + sc.ix.MinIncident(u)
	} else {
		// Unseen paths have ≥ 2 edges: first incident to q, last to u.
		floor = sc.minwQ + sc.ix.MinIncident(u)
	}
	if floor < d {
		d = floor
	}
	return d
}
