package fof

import (
	"math"
	"math/rand"
	"testing"

	"ssrq/internal/graph"
)

type auditEdge struct{ u, v int32 }

func buildFrom(n int, model map[auditEdge]float64) *graph.Graph {
	b := graph.NewBuilder(n)
	for e, w := range model {
		_ = b.AddEdge(e.u, e.v, w)
	}
	return b.MustBuild()
}

func key(u, v int32) auditEdge {
	if u > v {
		u, v = v, u
	}
	return auditEdge{u, v}
}

// TestAdmissibilityUnderChurn audits the core contract: for every query
// vertex and every target, LowerBound never exceeds the true shortest-path
// distance in the snapshot the scratch was armed on — including after edge
// removals (which never touch the floors, leaving them loose but safe) and
// under budgets small enough to force the 1-hop-only fallback.
func TestAdmissibilityUnderChurn(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(41 + trial)))
		const n = 60
		model := make(map[auditEdge]float64)
		// Seed a connected-ish random graph.
		for i := int32(1); i < n; i++ {
			model[key(i, rng.Int31n(i))] = 0.05 + rng.Float64()
		}
		for i := 0; i < 2*n; i++ {
			u, v := rng.Int31n(n), rng.Int31n(n)
			if u != v {
				model[key(u, v)] = 0.05 + rng.Float64()
			}
		}
		ix := New(buildFrom(n, model))
		var sc Scratch

		audit := func(step int, budget int) {
			g := buildFrom(n, model)
			for probe := 0; probe < 4; probe++ {
				q := rng.Int31n(n)
				sc.Arm(ix, g, q, budget)
				truth := g.DistancesFrom(graph.VertexID(q))
				for u := int32(0); u < n; u++ {
					lb := sc.LowerBound(u)
					if u == q {
						if lb != 0 {
							t.Fatalf("trial %d step %d: LowerBound(q)=%v", trial, step, lb)
						}
						continue
					}
					if lb > truth[u]+1e-12 {
						t.Fatalf("trial %d step %d budget %d: bound %v exceeds true distance %v (q=%d u=%d, complete=%v)",
							trial, step, budget, lb, truth[u], q, u, sc.complete)
					}
				}
				sc.Release()
			}
		}

		audit(-1, 0) // pre-churn, default budget
		audit(-1, 1) // pre-churn, budget so small the 2-hop pass never runs

		// Interleaved churn: upserts lower floors, removals leave them alone.
		for step := 0; step < 40; step++ {
			if rng.Intn(3) == 0 && len(model) > n {
				// Remove a random edge (possibly the global-minimum one: the
				// floors must stay admissible without being recomputed).
				for e := range model {
					delete(model, e)
					break
				}
			} else {
				u, v := rng.Int31n(n), rng.Int31n(n)
				if u == v {
					continue
				}
				w := 0.02 + rng.Float64()
				model[key(u, v)] = w
				ix.ObserveUpsert(u, v, w)
			}
			if step%8 == 0 {
				audit(step, 0)
				audit(step, 1)
			}
		}
		audit(40, 0)
		audit(40, 1)
	}
}

// TestExactWithinTwoHops: with an ample budget the bound is not merely
// admissible but exact for every vertex whose shortest path uses ≤ 2 edges —
// the regime the paper's result sets live in.
func TestExactWithinTwoHops(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 40
	model := make(map[auditEdge]float64)
	for i := int32(1); i < n; i++ {
		model[key(i, rng.Int31n(i))] = 0.1 + rng.Float64()
	}
	g := buildFrom(n, model)
	ix := New(g)
	var sc Scratch
	for q := int32(0); q < n; q++ {
		sc.Arm(ix, g, q, 1<<30)
		if !sc.complete {
			t.Fatalf("q=%d: ample budget left the expansion incomplete", q)
		}
		truth := g.DistancesFrom(graph.VertexID(q))
		hops := hopCounts(g, q)
		for u := int32(0); u < n; u++ {
			if u == q || hops[u] > 2 {
				continue
			}
			// A ≤2-hop shortest path is enumerated exactly — unless an even
			// shorter path with more edges exists, in which case the exact
			// enumeration can only be beaten from below by the floor.
			if lb := sc.LowerBound(u); lb > truth[u]+1e-12 {
				t.Fatalf("q=%d u=%d (%d hops): bound %v > true %v", q, u, hops[u], lb, truth[u])
			}
		}
		sc.Release()
	}
}

// hopCounts BFS-counts minimum edge counts (not weights) from q.
func hopCounts(g *graph.Graph, q int32) []int {
	n := g.NumVertices()
	h := make([]int, n)
	for i := range h {
		h[i] = n + 1
	}
	h[q] = 0
	queue := []int32{q}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		nbrs, _ := g.Neighbors(graph.VertexID(v))
		for _, u := range nbrs {
			if h[u] > h[v]+1 {
				h[u] = h[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return h
}

// TestFloorsMonotone: ObserveUpsert only ever lowers MinIncident and the
// global floor, and removals (absence of a call) never raise them.
func TestFloorsMonotone(t *testing.T) {
	b := graph.NewBuilder(4)
	_ = b.AddEdge(0, 1, 0.9)
	_ = b.AddEdge(1, 2, 0.4)
	ix := New(b.MustBuild())
	if got := ix.MinIncident(0); got != 0.9 {
		t.Fatalf("minw[0] = %v", got)
	}
	if got := ix.GlobalFloor(); got != 0.4 {
		t.Fatalf("wmin = %v", got)
	}
	if got := ix.MinIncident(3); !math.IsInf(got, 1) {
		t.Fatalf("isolated vertex floor = %v, want +Inf", got)
	}
	ix.ObserveUpsert(0, 3, 0.2)
	if ix.MinIncident(0) != 0.2 || ix.MinIncident(3) != 0.2 || ix.GlobalFloor() != 0.2 {
		t.Fatalf("floors after upsert: %v %v %v", ix.MinIncident(0), ix.MinIncident(3), ix.GlobalFloor())
	}
	// A heavier upsert on the same vertices is a no-op.
	ix.ObserveUpsert(0, 3, 5)
	if ix.MinIncident(0) != 0.2 || ix.GlobalFloor() != 0.2 {
		t.Fatal("heavier upsert raised a floor")
	}
}
