package exp

import (
	"encoding/json"
	"io"
	"time"
)

// Report is the machine-readable form of a suite run (ssrq-bench -json):
// run metadata plus every recorded measurement. Durations are emitted in
// microseconds so downstream tooling (the CI bench gate, BENCH_*.json
// trajectory files) can compare runs without parsing duration strings.
type Report struct {
	Exp       string        `json:"exp"`
	Scale     string        `json:"scale"`
	Seed      int64         `json:"seed"`
	CH        bool          `json:"ch"`
	Elapsed   float64       `json:"elapsed_sec"`
	Generated time.Time     `json:"generated"`
	Points    []ReportPoint `json:"points"`
}

// ReportPoint is one Measurement, flattened for JSON.
type ReportPoint struct {
	Exp       string             `json:"exp"`
	Dataset   string             `json:"dataset"`
	Algo      string             `json:"algo"`
	X         float64            `json:"x"`
	RuntimeUS float64            `json:"runtime_us"`
	PopRatio  float64            `json:"pop_ratio,omitempty"`
	Queries   int                `json:"queries"`
	P50US     float64            `json:"p50_us,omitempty"`
	P95US     float64            `json:"p95_us,omitempty"`
	P99US     float64            `json:"p99_us,omitempty"`
	Extra     map[string]float64 `json:"extra,omitempty"`
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// Report assembles the machine-readable view of everything the suite
// measured so far.
func (s *Suite) Report(expID string, withCH bool, elapsed time.Duration) Report {
	r := Report{
		Exp:       expID,
		Scale:     s.Scale.Name,
		Seed:      s.Seed,
		CH:        withCH,
		Elapsed:   elapsed.Seconds(),
		Generated: time.Now().UTC().Truncate(time.Second),
		Points:    make([]ReportPoint, 0, len(s.Measurements)),
	}
	for _, m := range s.Measurements {
		r.Points = append(r.Points, ReportPoint{
			Exp:       m.Exp,
			Dataset:   m.Dataset,
			Algo:      m.Algo.String(),
			X:         m.X,
			RuntimeUS: us(m.Runtime),
			PopRatio:  m.PopRatio,
			Queries:   m.Queries,
			P50US:     us(m.P50),
			P95US:     us(m.P95),
			P99US:     us(m.P99),
			Extra:     m.Extra,
		})
	}
	return r
}

// WriteJSON serializes the report, indented, with a trailing newline.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
