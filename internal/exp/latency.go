package exp

import (
	"sort"
	"time"
)

// latencySummary condenses a set of per-query latencies into the tail
// percentiles operators actually provision for. Throughput alone hides the
// exact failure mode the epoch/snapshot engine fixes — a few queries
// stalling for milliseconds behind a writer — so the serving experiments
// report p50/p95/p99, not just queries/sec.
type latencySummary struct {
	N             int
	P50, P95, P99 time.Duration
	Mean          time.Duration
}

// summarizeLatencies sorts the sample in place and extracts the summary.
func summarizeLatencies(lat []time.Duration) latencySummary {
	if len(lat) == 0 {
		return latencySummary{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var total time.Duration
	for _, d := range lat {
		total += d
	}
	return latencySummary{
		N:    len(lat),
		P50:  percentileOf(lat, 0.50),
		P95:  percentileOf(lat, 0.95),
		P99:  percentileOf(lat, 0.99),
		Mean: total / time.Duration(len(lat)),
	}
}

// percentileOf returns the nearest-rank percentile of an ascending sample.
func percentileOf(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
