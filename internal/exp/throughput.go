package exp

import (
	"fmt"
	"runtime"
	"time"

	"ssrq/internal/core"
)

// RunThroughput measures the batched serving path: the same AIS workload
// pushed through Engine.QueryBatch at 1 worker and at s.Parallel workers
// (default GOMAXPROCS), reporting queries/sec, the parallel speedup, and
// per-query latency percentiles (from BatchResult.Elapsed). This is not a
// paper figure — it exercises the concurrent serving layer the paper's
// motivating applications (§1) need.
func (s *Suite) RunThroughput() error {
	workers := s.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e, err := s.Engine("gowalla", DefaultS, false)
	if err != nil {
		return err
	}
	ds, err := s.Dataset("gowalla")
	if err != nil {
		return err
	}
	users := QueryUsers(ds, s.Scale.NumQueries, s.Seed)
	prm := core.Params{K: DefaultK, Alpha: DefaultAlpha}
	// Replicate the query set so the batch is large enough to amortize
	// worker startup and scheduling.
	const replicas = 4
	batch := make([]core.BatchQuery, 0, replicas*len(users))
	for r := 0; r < replicas; r++ {
		for _, q := range users {
			batch = append(batch, core.BatchQuery{Algo: core.AIS, Q: q, Params: prm})
		}
	}

	tbl := &Table{
		Title:   fmt.Sprintf("Batched throughput — AIS, k=%d, α=%.1f, %d queries", prm.K, prm.Alpha, len(batch)),
		Columns: []string{"workers", "total (ms)", "queries/sec", "speedup", "p50 (ms)", "p95 (ms)", "p99 (ms)"},
	}
	var base time.Duration
	for _, w := range []int{1, workers} {
		start := time.Now()
		outs := e.QueryBatch(batch, w)
		elapsed := time.Since(start)
		lat := make([]time.Duration, 0, len(outs))
		for _, out := range outs {
			if out.Err != nil {
				return fmt.Errorf("exp: throughput batch: %w", out.Err)
			}
			lat = append(lat, out.Elapsed)
		}
		sum := summarizeLatencies(lat)
		if w == 1 {
			base = elapsed
		}
		qps := float64(len(batch)) / elapsed.Seconds()
		speedup := float64(base) / float64(elapsed)
		tbl.AddRow(fmt.Sprint(w), ms(elapsed), fmt.Sprintf("%.0f", qps), f2(speedup),
			ms(sum.P50), ms(sum.P95), ms(sum.P99))
		s.record(Measurement{
			Dataset: ds.Name, Algo: core.AIS, X: float64(w),
			Runtime: elapsed / time.Duration(len(batch)), Queries: len(batch),
			P50: sum.P50, P95: sum.P95, P99: sum.P99,
			Extra: map[string]float64{"queries_per_sec": qps, "speedup": speedup},
		})
		if w == 1 && workers == 1 {
			break // avoid printing the same row twice on single-core hosts
		}
	}
	tbl.Fprint(s.Out)
	return nil
}
