package exp

import (
	"bytes"
	"strings"
	"testing"
)

// TestSocialChurnExperiment runs the social churn sweep at micro scale: the
// latency rows must appear for each edge rate, the unthrottled cell must
// actually apply edge ops and advance social epochs, and the built-in
// post-churn brute-force + landmark-admissibility audit must pass.
func TestSocialChurnExperiment(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(microScale, 42, &buf)
	s.EdgeRates = []float64{0, -1} // off + unthrottled
	if err := s.Run("socialchurn", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"social churn", "p99 (ms)", "off", "max", "CH p99 (ms)", "CH refused",
		"post-churn brute-force equivalence (AIS + CH variants, zero refusals) + landmark admissibility: ok",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("socialchurn output missing %q:\n%s", want, out)
		}
	}
	// Two AIS cells plus a TSA-CH series per cell where the hierarchy served.
	if len(s.Measurements) < 3 {
		t.Fatalf("%d measurements, want >= 3 (AIS per cell + served CH cells)", len(s.Measurements))
	}
	// The audit line reports the final social epoch; with an unthrottled
	// churner it must have advanced.
	if strings.Contains(out, "social epoch 0)") {
		t.Fatalf("unthrottled cell never advanced the social epoch:\n%s", out)
	}
}
