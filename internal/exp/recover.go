package exp

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"ssrq"
	"ssrq/internal/follower"
)

// RunRecover measures and verifies the durability pipeline end to end:
// journaling cost under churn, checkpoint + tail recovery speed after a
// simulated hard stop (the WAL write path is severed mid-record, exactly
// the torn state a killed process leaves), and a file-tailing follower
// converging on the recovered state. The cell is self-checking — it fails,
// rather than just reports, when
//
//   - the recovered world diverges from a twin engine that replayed the
//     full journal from sequence 1 (checkpoint recovery must be
//     indistinguishable from full replay), on locations or on sampled
//     top-k results,
//   - recovery lost journaled history (recovered position below the
//     pre-crash durable floor), or
//   - the follower finishes its tail with nonzero lag or a diverged state.
func (s *Suite) RunRecover() error {
	rds, err := ssrq.Synthesize("gowalla", s.Scale.GowallaN, s.Seed)
	if err != nil {
		return err
	}
	walDir, err := os.MkdirTemp("", "ssrq-recover-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir) // errok: best-effort temp cleanup

	nOps := 5 * s.Scale.GowallaN
	if nOps > 50000 {
		nOps = 50000
	}
	dur := &ssrq.DurabilityOptions{Dir: walDir, Fsync: "off", KeepSegments: true}
	eng, err := ssrq.NewEngine(rds, &ssrq.Options{Seed: s.Seed, Durability: dur})
	if err != nil {
		return err
	}

	// Phase 1: churn with the journal attached (measures journaling cost in
	// the mutation path), checkpoint midway so recovery exercises
	// checkpoint + tail rather than pure replay.
	ops := recoverOps(rds, nOps, s.Seed+1)
	churnStart := time.Now()
	for i, op := range ops {
		if err := op.apply(eng); err != nil {
			eng.Close()
			return fmt.Errorf("exp: recover: churn op %d: %w", i, err)
		}
		if i == nOps/2 {
			if err := eng.Checkpoint(); err != nil {
				eng.Close()
				return fmt.Errorf("exp: recover: checkpoint: %w", err)
			}
		}
	}
	churnElapsed := time.Since(churnStart)
	floor := eng.WALDurableSeq()

	// Phase 2: hard stop. Sever the WAL mid-record and push more ops that
	// must NOT survive, then abandon the engine like a dead process would.
	eng.TestingWAL().TestingLimitBytes(777)
	for i, op := range recoverOps(rds, 200, s.Seed+2) {
		if err := op.apply(eng); err != nil {
			eng.Close()
			return fmt.Errorf("exp: recover: post-crash op %d: %w", i, err)
		}
	}
	eng.Close()

	// Phase 3: recover and differentially verify against a full-journal
	// replay twin.
	rec, info, err := ssrq.OpenOrRecover(rds, &ssrq.Options{Seed: s.Seed, Durability: dur})
	if err != nil {
		return fmt.Errorf("exp: recover: OpenOrRecover: %w", err)
	}
	defer rec.Close()
	if info.LastSeq < floor {
		return fmt.Errorf("exp: recover: lost journaled history: recovered to %d, durable floor was %d", info.LastSeq, floor)
	}
	recs, last, err := rec.WALRecords(1, math.MaxInt32)
	if err != nil {
		return fmt.Errorf("exp: recover: read journal: %w", err)
	}
	if last != info.LastSeq {
		return fmt.Errorf("exp: recover: journal ends at %d, recovery claims %d", last, info.LastSeq)
	}
	twin, err := ssrq.NewEngine(rds, &ssrq.Options{Seed: s.Seed})
	if err != nil {
		return err
	}
	defer twin.Close()
	if err := twin.ApplyWALRecords(recs); err != nil {
		return fmt.Errorf("exp: recover: twin replay: %w", err)
	}
	if err := sameWorld(rds, rec, twin); err != nil {
		return fmt.Errorf("exp: recover: recovered state diverges from full replay: %w", err)
	}

	// Phase 4: a follower tails the recovered leader's journal from disk
	// and must converge to the same state with zero final lag.
	f, err := follower.New(rds, follower.FileSource{Dir: walDir}, &follower.Options{
		Engine: &ssrq.Options{Seed: s.Seed},
		Manual: true,
	})
	if err != nil {
		return fmt.Errorf("exp: recover: follower: %w", err)
	}
	defer f.Close()
	followStart := time.Now()
	for f.Stats().AppliedSeq < last {
		if _, err := f.Pull(); err != nil {
			return fmt.Errorf("exp: recover: follower pull: %w", err)
		}
	}
	followElapsed := time.Since(followStart)
	if lag := f.Stats().LagOps; lag != 0 {
		return fmt.Errorf("exp: recover: follower finished with lag %d", lag)
	}
	if err := sameWorld(rds, rec, f.Engine()); err != nil {
		return fmt.Errorf("exp: recover: follower state diverges from leader: %w", err)
	}

	replayed := info.CheckpointOps + info.ReplayedOps
	replayRate := float64(replayed) / info.Elapsed.Seconds()
	fmt.Fprintf(s.Out, "\nDurability & recovery (gowalla, N=%d, %d ops journaled)\n", rds.NumUsers(), last)
	fmt.Fprintf(s.Out, "  churn with journal     %8.0f ops/s\n", float64(len(ops))/churnElapsed.Seconds())
	fmt.Fprintf(s.Out, "  crash recovery         %8s (checkpoint@%d: %d ops + tail %d ops = %.0f ops/s, %d torn bytes dropped)\n",
		info.Elapsed.Round(time.Millisecond), info.CheckpointSeq, info.CheckpointOps, info.ReplayedOps, replayRate, info.TruncatedBytes)
	fmt.Fprintf(s.Out, "  follower full tail     %8s (%d records, final lag 0)\n",
		followElapsed.Round(time.Millisecond), last)
	fmt.Fprintf(s.Out, "  differential check     exact (locations, edges, sampled top-k: recovered == replay twin == follower)\n")
	s.record(Measurement{
		Dataset: "gowalla",
		X:       float64(last),
		Runtime: info.Elapsed,
		Extra: map[string]float64{
			"churn_ops_per_sec":  float64(len(ops)) / churnElapsed.Seconds(),
			"recovered_seq":      float64(info.LastSeq),
			"checkpoint_seq":     float64(info.CheckpointSeq),
			"replayed_ops":       float64(replayed),
			"replay_ops_per_sec": replayRate,
			"truncated_bytes":    float64(info.TruncatedBytes),
			"follower_tail_ms":   float64(followElapsed.Milliseconds()),
		},
	})
	return nil
}

// recoverOp / recoverOps: deterministic mixed churn over the raw API.
type recoverOp struct {
	kind int
	id   int32
	p    ssrq.Point
	u, v int32
	w    float64
}

func (op recoverOp) apply(e *ssrq.Engine) error {
	switch op.kind {
	case 0:
		return e.MoveUser(op.id, op.p)
	case 1:
		return e.RemoveUserLocation(op.id)
	case 2:
		return e.AddFriend(op.u, op.v, op.w)
	default:
		return e.RemoveFriend(op.u, op.v)
	}
}

func recoverOps(d *ssrq.Dataset, n int, seed int64) []recoverOp {
	rnd := rand.New(rand.NewSource(seed))
	norm := d.Norms().Spatial
	users := d.NumUsers()
	edgePop := int32(60)
	if int(edgePop) > users {
		edgePop = int32(users)
	}
	ops := make([]recoverOp, 0, n)
	for i := 0; i < n; i++ {
		switch r := rnd.Float64(); {
		case r < 0.65:
			ops = append(ops, recoverOp{kind: 0, id: int32(rnd.Intn(users)),
				p: ssrq.Point{X: rnd.Float64() * norm, Y: rnd.Float64() * norm}})
		case r < 0.75:
			ops = append(ops, recoverOp{kind: 1, id: int32(rnd.Intn(users))})
		case r < 0.9:
			u, v := rnd.Int31n(edgePop), rnd.Int31n(edgePop)
			if u == v {
				v = (v + 1) % edgePop
			}
			ops = append(ops, recoverOp{kind: 2, u: u, v: v, w: 0.1 + rnd.Float64()})
		default:
			u, v := rnd.Int31n(edgePop), rnd.Int31n(edgePop)
			if u == v {
				v = (v + 1) % edgePop
			}
			ops = append(ops, recoverOp{kind: 3, u: u, v: v})
		}
	}
	return ops
}

// sameWorld compares two engines exactly: every user's location, and
// sampled TSA top-k results (exact F within 1e-12, rank for rank).
func sameWorld(d *ssrq.Dataset, a, b *ssrq.Engine) error {
	n := d.NumUsers()
	for id := 0; id < n; id++ {
		pa, oka := a.UserLocation(int32(id))
		pb, okb := b.UserLocation(int32(id))
		if oka != okb || (oka && pa != pb) {
			return fmt.Errorf("user %d: (%v,%v) vs (%v,%v)", id, pa, oka, pb, okb)
		}
	}
	queried := 0
	for id := 0; id < n && queried < 10; id += 1 + n/37 {
		if _, ok := a.UserLocation(int32(id)); !ok {
			continue
		}
		queried++
		ra, ea := a.TopKWith(ssrq.TSA, int32(id), 10, 0.4)
		rb, eb := b.TopKWith(ssrq.TSA, int32(id), 10, 0.4)
		if ea != nil || eb != nil {
			return fmt.Errorf("query %d: %v / %v", id, ea, eb)
		}
		if len(ra.Entries) != len(rb.Entries) {
			return fmt.Errorf("query %d: %d vs %d entries", id, len(ra.Entries), len(rb.Entries))
		}
		for i := range ra.Entries {
			if math.Abs(ra.Entries[i].F-rb.Entries[i].F) > 1e-12 {
				return fmt.Errorf("query %d rank %d: F %v vs %v", id, i, ra.Entries[i].F, rb.Entries[i].F)
			}
		}
	}
	if queried == 0 {
		return fmt.Errorf("no located users to sample")
	}
	return nil
}
