package exp

import (
	"fmt"
	"io"
	"strings"
	"time"

	"ssrq/internal/core"
	"ssrq/internal/graph"
)

// Measurement is one averaged data point of a figure: an algorithm at one
// swept parameter value.
type Measurement struct {
	// Exp names the experiment that produced the point ("fig8",
	// "throughput", …); record stamps it from the currently-running
	// experiment.
	Exp      string
	Dataset  string
	Algo     core.Algorithm
	X        float64 // swept parameter (k, α, s, t, size…)
	Runtime  time.Duration
	PopRatio float64
	Queries  int
	// P50/P95/P99 are per-query latency percentiles, set by the
	// serving-layer experiments (throughput, churn, shard) that measure a
	// latency distribution rather than a mean; zero elsewhere.
	P50, P95, P99 time.Duration
	// Extra carries experiment-specific counters (queries/sec, shards
	// pruned, …) into the machine-readable -json report.
	Extra map[string]float64
}

// runWorkload runs the query set through one algorithm and averages runtime
// and pop ratio.
func runWorkload(e *core.Engine, algo core.Algorithm, users []graph.VertexID, prm core.Params) (Measurement, error) {
	var total time.Duration
	var popSum float64
	n := e.Dataset().NumUsers()
	for _, q := range users {
		start := time.Now()
		res, err := e.Query(algo, q, prm)
		if err != nil {
			return Measurement{}, fmt.Errorf("%v on user %d: %w", algo, q, err)
		}
		total += time.Since(start)
		popSum += res.Stats.PopRatio(n)
	}
	if len(users) == 0 {
		return Measurement{}, fmt.Errorf("exp: empty query workload")
	}
	return Measurement{
		Dataset:  e.Dataset().Name,
		Algo:     algo,
		Runtime:  total / time.Duration(len(users)),
		PopRatio: popSum / float64(len(users)),
		Queries:  len(users),
	}, nil
}

// Table is a printable result grid.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	var b strings.Builder
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	b.Reset()
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	for _, row := range t.Rows {
		b.Reset()
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

func ms(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000) }
func ratio(r float64) string    { return fmt.Sprintf("%.4f", r) }
func f2(x float64) string       { return fmt.Sprintf("%.2f", x) }
