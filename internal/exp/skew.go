package exp

import (
	"fmt"
	"math/rand"
	"time"

	"ssrq/internal/core"
	"ssrq/internal/gen"
	"ssrq/internal/graph"
	"ssrq/internal/shard"
)

// RunShardSkew measures the elastic resharding layer under a skewed-migration
// workload: a distance-dependent hotspot drift (gen.Migration) concentrates
// the population into one corner of the world, which unbalances any frozen
// Z-order cut, and the engine's automatic rebalancer must re-cut the curve
// online while queries keep serving. For every shard count (default 16) the
// cell reports AIS latency percentiles before / during / after the drift,
// the per-shard occupancy imbalance (max/mean located count over the shards)
// at each stage and at its observed peak, and the rebalance counters.
//
// The cell fails, rather than just reports, when the elastic layer regresses:
// no rebalance triggered, the imbalance did not recover below its peak, any
// query errored mid-drain, or a post-phase AIS answer diverged from the
// engine's own brute-force oracle (exact IDs, not just scores).
func (s *Suite) RunShardSkew() error {
	ds, err := s.Dataset("gowalla")
	if err != nil {
		return err
	}
	counts := s.ShardCounts
	if len(counts) == 0 {
		counts = []int{16}
	}
	users := QueryUsers(ds, s.Scale.NumQueries, s.Seed)
	if len(users) == 0 {
		return fmt.Errorf("exp: shard-skew: no located query users")
	}
	prm := core.Params{K: DefaultK, Alpha: DefaultAlpha}
	// The whole located population drifts — a handful of movers cannot
	// unbalance a cut no matter how far they travel.
	movers := QueryUsers(ds, ds.NumUsers(), s.Seed+1)
	moves := 6 * len(movers)
	if min := s.Scale.NumQueries * 120; moves < min {
		moves = min
	}

	tbl := &Table{
		Title: fmt.Sprintf("Elastic resharding under skewed migration — AIS, k=%d, α=%.1f, %d queries/phase, %d hotspot moves",
			prm.K, prm.Alpha, len(users), moves),
		Columns: []string{"shards", "phase", "p50 (ms)", "p95 (ms)", "p99 (ms)",
			"imbalance", "rebalances", "cells moved", "users moved"},
	}

	for _, S := range counts {
		eng, err := shard.New(ds, S, EngineOptions(DefaultS, false, 1, s.Seed))
		if err != nil {
			return fmt.Errorf("exp: shard-skew: S=%d: %w", S, err)
		}
		if err := s.runSkewCell(eng, S, users, movers, prm, moves, tbl); err != nil {
			eng.Close()
			return err
		}
		eng.Close()
	}
	tbl.Fprint(s.Out)
	fmt.Fprintln(s.Out, "per-phase brute-oracle equivalence + zero query errors during drain: ok")
	return nil
}

// runSkewCell drives one shard count through the three phases.
func (s *Suite) runSkewCell(eng *shard.Engine, S int, users, movers []graph.VertexID, prm core.Params, moves int, tbl *Table) error {
	rng := rand.New(rand.NewSource(s.Seed + 977))
	// The wide jitter keeps the hotspot mass spread over a handful of leaf
	// cells rather than collapsing into one: a single overloaded cell is the
	// one skew no curve re-cut can repair, and is not the regime the elastic
	// layer targets.
	mig, err := gen.NewMigration(eng.Dataset().Bounds(), gen.MigrationConfig{Jitter: 0.06}, rng)
	if err != nil {
		return fmt.Errorf("exp: shard-skew: %w", err)
	}

	// measure runs the query workload and asserts brute-oracle agreement on a
	// probe subset; the engine is flushed first so both sides answer on the
	// same settled world.
	measure := func(phase string) (latencySummary, error) {
		eng.Flush()
		lat := make([]time.Duration, 0, len(users))
		for _, q := range users {
			start := time.Now()
			if _, err := eng.Query(core.AIS, q, prm); err != nil {
				return latencySummary{}, fmt.Errorf("exp: shard-skew: S=%d %s query %d: %w", S, phase, q, err)
			}
			lat = append(lat, time.Since(start))
		}
		for probe := 0; probe < 4 && probe < len(users); probe++ {
			q := users[probe]
			want, err := eng.Query(core.BruteForce, q, prm)
			if err != nil {
				return latencySummary{}, err
			}
			got, err := eng.Query(core.AIS, q, prm)
			if err != nil {
				return latencySummary{}, err
			}
			if err := sameResult(got, want); err != nil {
				return latencySummary{}, fmt.Errorf("exp: shard-skew: S=%d %s AIS vs brute (q=%d): %w", S, phase, q, err)
			}
		}
		return summarizeLatencies(lat), nil
	}
	row := func(phase string, sum latencySummary, imb float64, rs shard.RebalanceStats) {
		tbl.AddRow(fmt.Sprint(S), phase, ms(sum.P50), ms(sum.P95), ms(sum.P99),
			f2(imb), fmt.Sprint(rs.Rebalances), fmt.Sprint(rs.CellsMoved), fmt.Sprint(rs.UsersMoved))
	}

	// Phase 1 — before: the construction-time cut is balanced by design.
	before, err := measure("before")
	if err != nil {
		return err
	}
	imbBefore := eng.Imbalance()
	row("before", before, imbBefore, eng.RebalanceStats())

	// Phase 2 — during: interleave the hotspot drift with query traffic,
	// sampling the occupancy imbalance between chunks to catch its peak
	// (automatic re-cuts keep pulling it back down mid-stream).
	imbPeak := imbBefore
	during := make([]time.Duration, 0, moves/64)
	for sent := 0; sent < moves; {
		chunk := 256
		if rem := moves - sent; rem < chunk {
			chunk = rem
		}
		for i := 0; i < chunk; i++ {
			id := int32(movers[rng.Intn(len(movers))])
			from, ok := eng.UserLocation(id)
			if !ok {
				continue
			}
			if err := eng.MoveUserAsync(id, mig.Next(from)); err != nil {
				return fmt.Errorf("exp: shard-skew: S=%d move: %w", S, err)
			}
		}
		sent += chunk
		for i := 0; i < 4; i++ {
			q := users[rng.Intn(len(users))]
			start := time.Now()
			if _, err := eng.Query(core.AIS, q, prm); err != nil {
				return fmt.Errorf("exp: shard-skew: S=%d query during drain: %w", S, err)
			}
			during = append(during, time.Since(start))
		}
		// Flush per chunk: the automatic trigger samples *applied* occupancy,
		// so without the barrier a fast enqueue loop (or a slow build, e.g.
		// under the race detector) would hide the skew until the drift is
		// already degenerate — and the peak sampling below would lie.
		eng.Flush()
		if imb := eng.Imbalance(); imb > imbPeak {
			imbPeak = imb
		}
	}
	// The automatic trigger samples *applied* occupancy every few hundred
	// routed ops, so when the enqueue loop outruns the shard pipelines (e.g.
	// under the race detector) the skew only becomes observable after the
	// final flush — with no further traffic to sample it. Keep the already-
	// skewed population drifting in flushed rounds until the trigger fires;
	// the rounds also keep the queriers' "during" sample honest, since this
	// is exactly the window where the drain overlaps serving.
	for round := 0; round < 40 && eng.RebalanceStats().Rebalances == 0 && !eng.RebalanceInFlight(); round++ {
		for i := 0; i < 600; i++ {
			id := int32(movers[rng.Intn(len(movers))])
			from, ok := eng.UserLocation(id)
			if !ok {
				continue
			}
			if err := eng.MoveUserAsync(id, mig.Next(from)); err != nil {
				return fmt.Errorf("exp: shard-skew: S=%d move: %w", S, err)
			}
		}
		for i := 0; i < 4; i++ {
			q := users[rng.Intn(len(users))]
			start := time.Now()
			if _, err := eng.Query(core.AIS, q, prm); err != nil {
				return fmt.Errorf("exp: shard-skew: S=%d query during drain: %w", S, err)
			}
			during = append(during, time.Since(start))
		}
		eng.Flush()
		if imb := eng.Imbalance(); imb > imbPeak {
			imbPeak = imb
		}
	}
	row("during", summarizeLatencies(during), imbPeak, eng.RebalanceStats())

	// Let the engine finish whatever drain is in flight and correct any
	// residual skew the sampled trigger has not caught up with yet: the
	// explicit call serializes behind an in-flight re-cut, so only after it
	// returns is the automatic-rebalance count settled. An auto-triggered
	// drain of thousands of cells can outlive the whole loop above (it runs
	// a migration batch at a time to stay off the query path), which is why
	// the count cannot be snapshotted any earlier. Subtracting the forced
	// call's own contribution leaves exactly the trigger-initiated re-cuts.
	forcedMoved := eng.Rebalance()
	autoRebalances := eng.RebalanceStats().Rebalances
	if forcedMoved > 0 {
		autoRebalances--
	}
	after, err := measure("after")
	if err != nil {
		return err
	}
	imbAfter := eng.Imbalance()
	rs := eng.RebalanceStats()
	row("after", after, imbAfter, rs)

	// Self-checks: the drift must have forced at least one automatic re-cut,
	// and the re-cuts must have recovered the balance.
	if autoRebalances == 0 {
		return fmt.Errorf("exp: shard-skew: S=%d: no automatic rebalance despite hotspot drift (peak imbalance %.2f, threshold %.2f)",
			S, imbPeak, rs.Threshold)
	}
	if imbPeak < rs.Threshold {
		return fmt.Errorf("exp: shard-skew: S=%d: drift never crossed the threshold (peak %.2f < %.2f) — workload too weak to prove anything",
			S, imbPeak, rs.Threshold)
	}
	if imbAfter >= imbPeak {
		return fmt.Errorf("exp: shard-skew: S=%d: imbalance did not recover (peak %.2f, after %.2f)", S, imbPeak, imbAfter)
	}

	s.record(Measurement{
		Dataset: eng.Dataset().Name, Algo: core.AIS, X: float64(S),
		Runtime: after.P95, Queries: before.N + len(during) + after.N,
		P50: after.P50, P95: after.P95, P99: after.P99,
		Extra: map[string]float64{
			"imbalance_before": imbBefore,
			"imbalance_peak":   imbPeak,
			"imbalance_after":  imbAfter,
			"rebalances":       float64(rs.Rebalances),
			"auto_rebalances":  float64(autoRebalances),
			"cells_moved":      float64(rs.CellsMoved),
			"users_moved":      float64(rs.UsersMoved),
			"during_p95_ms":    float64(summarizeLatencies(during).P95.Microseconds()) / 1000,
		},
	})
	return nil
}
