package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ssrq/internal/core"
	"ssrq/internal/gen"
)

// microScale keeps the full-suite smoke test fast.
var microScale = Scale{
	Name:        "micro",
	GowallaN:    300,
	FoursquareN: 400,
	TwitterN:    250,
	Fig14bSizes: []int{150, 250},
	TValues:     []int{5, 20},
	NumQueries:  4,
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"small", "medium", "large"} {
		sc, err := ScaleByName(name)
		if err != nil || sc.Name != name {
			t.Fatalf("ScaleByName(%q) = %+v, %v", name, sc, err)
		}
	}
	if _, err := ScaleByName("planet"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestQueryUsers(t *testing.T) {
	ds, err := gen.GowallaPreset.Dataset(400, 1)
	if err != nil {
		t.Fatal(err)
	}
	users := QueryUsers(ds, 50, 2)
	if len(users) != 50 {
		t.Fatalf("got %d users", len(users))
	}
	seen := map[int32]bool{}
	for _, q := range users {
		if !ds.Located[q] {
			t.Fatalf("unlocated query user %d", q)
		}
		if seen[int32(q)] {
			t.Fatalf("duplicate query user %d", q)
		}
		seen[int32(q)] = true
	}
	// Deterministic for a fixed seed.
	again := QueryUsers(ds, 50, 2)
	for i := range users {
		if users[i] != again[i] {
			t.Fatal("QueryUsers not deterministic")
		}
	}
	// Oversized request returns all located users.
	all := QueryUsers(ds, 10_000, 3)
	if len(all) != ds.NumLocated() {
		t.Fatalf("oversized request: %d != %d", len(all), ds.NumLocated())
	}
}

// TestRunShard drives the sharded-engine experiment at micro scale: it is
// self-checking (per-cell brute oracle, cross-S equivalence, pruning > 0 at
// the largest S), so a nil error is the assertion.
func TestRunShard(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(microScale, 42, &buf)
	s.ShardCounts = []int{1, 4}
	if err := s.RunShard(); err != nil {
		t.Fatalf("RunShard: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "Sharded engine") || !strings.Contains(out, "sh pruned") {
		t.Fatalf("missing table:\n%s", out)
	}
	if len(s.Measurements) != 2 {
		t.Fatalf("measurements = %d, want 2", len(s.Measurements))
	}
}

// TestRunShardSkew drives the skewed-migration cell at micro scale. The cell
// is self-checking (≥1 automatic rebalance, imbalance recovery below its
// peak, per-phase brute-oracle agreement, zero query errors), so a nil error
// is the assertion; the test only adds shape checks on the report.
func TestRunShardSkew(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(microScale, 42, &buf)
	s.Skew = true
	s.ShardCounts = []int{8}
	if err := s.Run("shard", false); err != nil {
		t.Fatalf("RunShardSkew: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "skewed migration") || !strings.Contains(out, "rebalances") {
		t.Fatalf("missing table:\n%s", out)
	}
	if len(s.Measurements) != 1 {
		t.Fatalf("measurements = %d, want 1", len(s.Measurements))
	}
	m := s.Measurements[0]
	if m.Extra["rebalances"] < 1 || m.Extra["imbalance_peak"] <= m.Extra["imbalance_after"] {
		t.Fatalf("implausible skew measurement: %+v", m.Extra)
	}
}

func TestJaccard(t *testing.T) {
	a := map[int32]bool{1: true, 2: true, 3: true}
	b := map[int32]bool{2: true, 3: true, 4: true}
	if got := jaccard(a, b); got != 0.5 {
		t.Fatalf("jaccard = %v, want 0.5", got)
	}
	if got := jaccard(a, a); got != 1 {
		t.Fatalf("self jaccard = %v", got)
	}
	if got := jaccard(a, map[int32]bool{}); got != 0 {
		t.Fatalf("disjoint jaccard = %v", got)
	}
	if got := jaccard(map[int32]bool{}, map[int32]bool{}); got != 1 {
		t.Fatalf("empty jaccard = %v", got)
	}
}

func TestTableFormatting(t *testing.T) {
	tab := Table{Title: "demo", Columns: []string{"a", "bbbb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "333") {
		t.Fatalf("table output wrong:\n%s", out)
	}
}

func TestSuiteRunsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite smoke test")
	}
	var buf bytes.Buffer
	s := NewSuite(microScale, 42, &buf)
	if err := s.RunAll(true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 2", "Fig 7a", "Fig 7b", "Fig 8", "Fig 9", "Fig 10",
		"Fig 11", "Fig 12", "Fig 13", "Fig 14a", "Fig 14b",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("suite output missing %q", want)
		}
	}
	if len(s.Measurements) == 0 {
		t.Fatal("no measurements recorded")
	}

	// Shape checks that hold robustly at any scale (see EXPERIMENTS.md for
	// the full shape discussion): SPA exhausts the spatial domain while AIS
	// prunes it, and within the AIS family the paper's Fig. 10 ordering
	// (AIS-BID ≫ AIS⁻ ≥ AIS in pops) must hold.
	avgPop := func(algo core.Algorithm) float64 {
		var sum float64
		cnt := 0
		for _, m := range s.Measurements {
			if m.Algo == algo && m.Queries > 0 && m.X >= 10 && m.X <= 50 {
				sum += m.PopRatio
				cnt++
			}
		}
		if cnt == 0 {
			return -1
		}
		return sum / float64(cnt)
	}
	// At this micro scale (a few hundred users) k is a sizable fraction of
	// the population, so absolute pop ratios degenerate for every method;
	// the ordering within the AIS family is the scale-independent claim.
	ais, aisMinus, aisBid := avgPop(core.AIS), avgPop(core.AISMinus), avgPop(core.AISBID)
	if ais < 0 || aisMinus < 0 || aisBid < 0 {
		t.Fatalf("missing pop measurements: ais=%v ais-=%v aisbid=%v", ais, aisMinus, aisBid)
	}
	if !(aisBid > aisMinus && aisMinus >= ais) {
		t.Fatalf("Fig 10 ordering violated: AIS-BID %v, AIS⁻ %v, AIS %v", aisBid, aisMinus, ais)
	}
}

// TestRunFilter drives the attribute-filtered experiment cell at micro
// scale. The cell is self-checking (per-query brute oracle under the same
// filter, and a hard failure on zero cell-mask prunes), so a nil error
// carries most of the assertion; the measurements are checked for the
// pruning counters the CI gate reads.
func TestRunFilter(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(microScale, 42, &buf)
	if err := s.Run("filter", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Filtered SSRQ") {
		t.Fatal("filter output missing table")
	}
	var aisPrunes float64 = -1
	for _, m := range s.Measurements {
		if m.Exp == "filter" && m.Algo == core.AIS {
			aisPrunes = m.Extra["label_cell_prunes_per_q"]
		}
	}
	if aisPrunes <= 0 {
		t.Fatalf("AIS cell-mask prunes per query = %v, want > 0 on the clustered urban workload", aisPrunes)
	}
}

// TestWorkloadPresetSweepSmoke runs a k and α sweep over the homophily
// preset through the suite plumbing — the new labeled presets must be
// first-class experiment datasets, not just generators.
func TestWorkloadPresetSweepSmoke(t *testing.T) {
	s := NewSuite(microScale, 11, &bytes.Buffer{})
	ds, err := s.Dataset("homophily")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Labels == nil {
		t.Fatal("homophily preset lost its labels through the suite")
	}
	e, err := s.Engine("homophily", DefaultS, false)
	if err != nil {
		t.Fatal(err)
	}
	users := QueryUsers(ds, microScale.NumQueries, 11)
	if len(users) == 0 {
		t.Fatal("no located query users")
	}
	for _, k := range []int{5, 15} {
		for _, alpha := range []float64{0.1, 0.5, 0.9} {
			m, err := runWorkload(e, core.AIS, users, core.Params{K: k, Alpha: alpha})
			if err != nil {
				t.Fatalf("k=%d α=%.1f: %v", k, alpha, err)
			}
			if m.Queries != len(users) || m.Runtime <= 0 {
				t.Fatalf("k=%d α=%.1f: degenerate measurement %+v", k, alpha, m)
			}
		}
	}
}

func TestSuiteRunUnknownExperiment(t *testing.T) {
	s := NewSuite(microScale, 1, &bytes.Buffer{})
	if err := s.Run("fig99", false); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := s.Dataset("myspace"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestSuiteSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(microScale, 7, &buf)
	if err := s.Run("table2", false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gowalla") {
		t.Fatal("table2 output missing dataset")
	}
}

func TestDiagnostics(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(microScale, 7, &buf)
	if err := s.Run("diag", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "tightness") {
		t.Fatalf("diag output missing tightness:\n%s", out)
	}
	// Structured access.
	e, err := s.Engine("gowalla", DefaultS, false)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diagnose(e.Dataset(), e.Landmarks(), QueryUsers(e.Dataset(), 3, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !(d.P10 <= d.P50 && d.P50 <= d.P90) {
		t.Fatalf("percentiles unordered: %+v", d)
	}
	if d.Tightness <= 0 || d.Tightness > 1.000001 {
		t.Fatalf("tightness %v out of (0,1]", d.Tightness)
	}
	if _, err := Diagnose(e.Dataset(), e.Landmarks(), nil); err == nil {
		t.Fatal("empty sources accepted")
	}
}

func TestWriteReport(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(microScale, 7, &buf)
	if err := s.WriteReport(&buf); err == nil {
		t.Fatal("report without measurements accepted")
	}
	if err := s.Run("table2", false); err != nil {
		t.Fatal(err)
	}
	// table2 records no measurements; run a cheap measuring experiment.
	if err := s.Run("fig13", false); err != nil {
		t.Fatal(err)
	}
	var md bytes.Buffer
	if err := s.WriteReport(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| twitter |") {
		t.Fatalf("report missing rows:\n%s", md.String())
	}
}

// TestChurnExperiment runs the churn sweep at micro scale: both engines
// must produce latency rows, the snapshot rows must advance epochs while
// moving, and the built-in brute-force equivalence probe must pass.
func TestChurnExperiment(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(microScale, 42, &buf)
	s.ChurnMovers = []int{0, 1}
	if err := s.Run("churn", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"rwmutex", "snapshot", "p99 (ms)", "post-churn brute-force equivalence: ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("churn output missing %q:\n%s", want, out)
		}
	}
	// One measurement per (mode, movers) cell.
	if len(s.Measurements) != 4 {
		t.Fatalf("measurements = %d, want 4", len(s.Measurements))
	}
}

// TestLatencySummary pins the percentile helper.
func TestLatencySummary(t *testing.T) {
	var lat []time.Duration
	for i := 100; i >= 1; i-- { // 1ms..100ms descending (summarize must sort)
		lat = append(lat, time.Duration(i)*time.Millisecond)
	}
	sum := summarizeLatencies(lat)
	if sum.N != 100 {
		t.Fatalf("N = %d", sum.N)
	}
	if sum.P50 != 50*time.Millisecond || sum.P95 != 95*time.Millisecond || sum.P99 != 99*time.Millisecond {
		t.Fatalf("percentiles = %v/%v/%v", sum.P50, sum.P95, sum.P99)
	}
	if sum.Mean != 50500*time.Microsecond {
		t.Fatalf("mean = %v", sum.Mean)
	}
	if s := summarizeLatencies(nil); s.N != 0 || s.P99 != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}
