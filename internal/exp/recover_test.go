package exp

import (
	"bytes"
	"strings"
	"testing"
)

// TestRecoverExperiment runs the self-checking durability cell at micro
// scale: it must journal, crash, recover, tail, and report — its built-in
// differential checks (recovered == replay twin == follower) fail the run
// on any divergence.
func TestRecoverExperiment(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(microScale, 42, &buf)
	if err := s.Run("recover", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"crash recovery", "follower full tail", "differential check     exact"} {
		if !strings.Contains(out, want) {
			t.Errorf("recover output missing %q:\n%s", want, out)
		}
	}
	if len(s.Measurements) != 1 {
		t.Fatalf("measurements = %d, want 1", len(s.Measurements))
	}
	m := s.Measurements[0]
	if m.Exp != "recover" || m.Extra["recovered_seq"] == 0 || m.Extra["replay_ops_per_sec"] <= 0 {
		t.Fatalf("measurement = %+v", m)
	}
}
