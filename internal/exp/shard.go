package exp

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"ssrq/internal/core"
	"ssrq/internal/graph"
	"ssrq/internal/shard"
	"ssrq/internal/spatial"
)

// RunShard measures the spatially-partitioned engine: for every shard count
// in s.ShardCounts (default 1, 2, 4, 8) it builds a sharded engine over the
// geo-clustered gowalla substitute, measures AIS query latency percentiles,
// then drives a location-churn burst through the per-shard update pipelines
// and reports epoch throughput alongside the fan-out pruning counters
// (shards skipped because their best-possible Lemma-2 score could not beat
// the running kth score).
//
// The cell is self-checking, not just self-reporting: after the churn burst
// every engine must agree exactly with its own brute-force oracle AND with
// the S=1 reference results (the same ops were replayed into every cell), and
// the largest shard count must have pruned at least one shard on this
// clustered workload — a zero there means the bound machinery regressed, so
// it fails the run.
func (s *Suite) RunShard() error {
	ds, err := s.Dataset("gowalla")
	if err != nil {
		return err
	}
	counts := s.ShardCounts
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8}
	}
	users := QueryUsers(ds, s.Scale.NumQueries, s.Seed)
	if len(users) == 0 {
		return fmt.Errorf("exp: shard: no located query users")
	}
	prm := core.Params{K: DefaultK, Alpha: DefaultAlpha}
	moves := s.Scale.NumQueries * 40
	bounds := ds.Bounds()

	tbl := &Table{
		Title: fmt.Sprintf("Sharded engine — AIS, k=%d, α=%.1f, %d queries, %d churn moves per cell",
			prm.K, prm.Alpha, len(users), moves),
		Columns: []string{"shards", "p50 (ms)", "p95 (ms)", "p99 (ms)", "mean (ms)",
			"moves/s", "epochs", "sh queried", "sh pruned", "sh empty"},
	}

	// reference holds the S=1 post-churn results the other cells must match.
	var reference []*core.Result
	var refQueries []graph.VertexID
	for _, S := range counts {
		eng, err := shard.New(ds, S, EngineOptions(DefaultS, false, 1, s.Seed))
		if err != nil {
			return fmt.Errorf("exp: shard: S=%d: %w", S, err)
		}

		// Query latency over the clustered workload.
		lat := make([]time.Duration, 0, len(users))
		for _, q := range users {
			start := time.Now()
			if _, err := eng.Query(core.AIS, q, prm); err != nil {
				eng.Close()
				return fmt.Errorf("exp: shard: S=%d query %d: %w", S, q, err)
			}
			lat = append(lat, time.Since(start))
		}

		// Churn burst through the per-shard pipelines: identical ops per cell
		// (the rng is reseeded), so every cell converges to the same world.
		rng := rand.New(rand.NewSource(s.Seed + 271))
		epoch0 := eng.UpdateStats().Epoch
		wall := time.Now()
		for i := 0; i < moves; i++ {
			id := int32(users[rng.Intn(len(users))])
			to := spatial.Point{
				X: bounds.MinX + rng.Float64()*bounds.Width(),
				Y: bounds.MinY + rng.Float64()*bounds.Height(),
			}
			if err := eng.MoveUserAsync(id, to); err != nil {
				eng.Close()
				return fmt.Errorf("exp: shard: S=%d move: %w", S, err)
			}
		}
		eng.Flush()
		churnSecs := time.Since(wall).Seconds()
		epochs := eng.UpdateStats().Epoch - epoch0

		// Post-churn equivalence: engine vs its own brute oracle, and vs the
		// S=1 reference (every cell replayed the same ops).
		probeRng := rand.New(rand.NewSource(s.Seed + 13))
		var probes []*core.Result
		var probeQs []graph.VertexID
		for probe := 0; probe < 4; probe++ {
			q := users[probeRng.Intn(len(users))]
			want, err := eng.Query(core.BruteForce, q, prm)
			if err != nil {
				eng.Close()
				return err
			}
			got, err := eng.Query(core.AIS, q, prm)
			if err != nil {
				eng.Close()
				return err
			}
			if err := sameResult(got, want); err != nil {
				eng.Close()
				return fmt.Errorf("exp: shard: S=%d AIS vs brute (q=%d): %w", S, q, err)
			}
			probes = append(probes, got)
			probeQs = append(probeQs, q)
		}
		if reference == nil {
			reference, refQueries = probes, probeQs
		} else {
			for i, got := range probes {
				if err := sameResult(got, reference[i]); err != nil {
					eng.Close()
					return fmt.Errorf("exp: shard: S=%d vs S=%d (q=%d): %w", S, counts[0], refQueries[i], err)
				}
			}
		}

		fs := eng.FanoutStats()
		sum := summarizeLatencies(lat)
		tbl.AddRow(fmt.Sprint(S), ms(sum.P50), ms(sum.P95), ms(sum.P99), ms(sum.Mean),
			fmt.Sprintf("%.0f", float64(moves)/churnSecs), fmt.Sprint(epochs),
			fmt.Sprint(fs.ShardsQueried), fmt.Sprint(fs.ShardsPruned), fmt.Sprint(fs.ShardsEmpty))
		s.record(Measurement{
			Dataset: ds.Name, Algo: core.AIS, X: float64(S),
			Runtime: sum.P95, Queries: sum.N,
			P50: sum.P50, P95: sum.P95, P99: sum.P99,
			Extra: map[string]float64{
				"moves_per_sec":  float64(moves) / churnSecs,
				"epochs":         float64(epochs),
				"shards_queried": float64(fs.ShardsQueried),
				"shards_pruned":  float64(fs.ShardsPruned),
				"shards_empty":   float64(fs.ShardsEmpty),
			},
		})

		if S == counts[len(counts)-1] && S > 1 && fs.ShardsPruned == 0 {
			eng.Close()
			return fmt.Errorf("exp: shard: S=%d pruned no shards on a clustered workload (queried %d, empty %d) — bound-based shard pruning regressed",
				S, fs.ShardsQueried, fs.ShardsEmpty)
		}
		eng.Close()
	}
	tbl.Fprint(s.Out)
	fmt.Fprintln(s.Out, "post-churn equivalence (per-cell brute oracle + cross-S): ok")
	return nil
}

// sameResult asserts exact agreement of two results: same length, same IDs
// in the same order, same scores to float tolerance.
func sameResult(got, want *core.Result) error {
	if len(got.Entries) != len(want.Entries) {
		return fmt.Errorf("%d entries, want %d", len(got.Entries), len(want.Entries))
	}
	for i := range got.Entries {
		g, w := got.Entries[i], want.Entries[i]
		if g.ID != w.ID || math.Abs(g.F-w.F) > 1e-12 {
			return fmt.Errorf("rank %d: (id=%d f=%v), want (id=%d f=%v)", i, g.ID, g.F, w.ID, w.F)
		}
	}
	return nil
}
