// Package exp is the experiment harness: one runner per table and figure of
// the paper's evaluation (§6), each printing the same rows/series the paper
// reports and returning structured measurements for programmatic checks.
//
// Absolute numbers differ from the paper (different hardware, language and
// synthetic datasets — see DESIGN.md §2/§3); the harness exists to reproduce
// the *shape*: which method wins, by what rough factor, and how curves move
// with k, α, s, t, correlation and data size.
package exp

import (
	"fmt"
	"math/rand"

	"ssrq/internal/core"
	"ssrq/internal/dataset"
	"ssrq/internal/graph"
)

// Defaults mirror Table 3.
var (
	DefaultK      = 30
	DefaultAlpha  = 0.3
	DefaultS      = 10
	KValues       = []int{10, 20, 30, 40, 50}
	AlphaValues   = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	SValues       = []int{5, 10, 15, 20, 25}
	DefaultM      = 8 // landmarks, the paper's fine-tuned value
	DefaultLevels = 2 // lowest two levels of a three-level hierarchy
)

// Scale sizes the synthetic datasets. The paper runs 196K (Gowalla), 1.88M
// (Foursquare), 124K (Twitter) users and 1000 queries per measurement; the
// scales below keep the same proportions at laptop-friendly sizes.
type Scale struct {
	Name        string
	GowallaN    int
	FoursquareN int
	TwitterN    int
	// Fig14bSizes are the data-size sweep points (paper: 0.6M/1.2M/1.8M).
	Fig14bSizes []int
	// TValues are the Fig. 11 cache sizes (paper: 1K..10K).
	TValues []int
	// NumQueries per measurement (paper: 1000).
	NumQueries int
}

// ScaleSmall is for tests and quick smoke runs.
var ScaleSmall = Scale{
	Name:        "small",
	GowallaN:    1500,
	FoursquareN: 3000,
	TwitterN:    1200,
	Fig14bSizes: []int{1000, 2000, 3000},
	TValues:     []int{25, 50, 100, 200, 400},
	NumQueries:  20,
}

// ScaleMedium is the default for the benchmark harness.
var ScaleMedium = Scale{
	Name:        "medium",
	GowallaN:    12000,
	FoursquareN: 30000,
	TwitterN:    8000,
	Fig14bSizes: []int{10000, 20000, 30000},
	TValues:     []int{100, 200, 400, 800, 1600},
	NumQueries:  100,
}

// ScaleLarge approaches paper proportions (slow; use for overnight runs).
var ScaleLarge = Scale{
	Name:        "large",
	GowallaN:    100000,
	FoursquareN: 250000,
	TwitterN:    62000,
	Fig14bSizes: []int{80000, 160000, 240000},
	TValues:     []int{1000, 2000, 4000, 6000, 8000, 10000},
	NumQueries:  200,
}

// ScaleByName resolves a -scale flag value.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "large":
		return ScaleLarge, nil
	default:
		return Scale{}, fmt.Errorf("exp: unknown scale %q (small|medium|large)", name)
	}
}

// QueryUsers draws n distinct located query users uniformly (the paper's
// "1,000 random SSRQ queries"). Equivalent to QueryUsersFrom with
// rand.NewSource(seed): experiment workloads are fully determined by the
// suite seed.
func QueryUsers(ds *dataset.Dataset, n int, seed int64) []graph.VertexID {
	return QueryUsersFrom(ds, n, rand.NewSource(seed))
}

// QueryUsersFrom is QueryUsers with an explicit randomness source.
func QueryUsersFrom(ds *dataset.Dataset, n int, src rand.Source) []graph.VertexID {
	rng := rand.New(src)
	var located []graph.VertexID
	for v := 0; v < ds.NumUsers(); v++ {
		if ds.Located[v] {
			located = append(located, graph.VertexID(v))
		}
	}
	if len(located) == 0 {
		return nil
	}
	if n >= len(located) {
		return located
	}
	rng.Shuffle(len(located), func(i, j int) { located[i], located[j] = located[j], located[i] })
	return located[:n]
}

// EngineOptions returns the standard engine configuration at granularity s.
func EngineOptions(s int, buildCH bool, cacheT int, seed int64) core.Options {
	return core.Options{
		GridS:        s,
		GridLevels:   DefaultLevels,
		NumLandmarks: DefaultM,
		Seed:         seed,
		BuildCH:      buildCH,
		CacheT:       cacheT,
	}
}
