package exp

import (
	"fmt"
	"time"

	"ssrq/internal/core"
	"ssrq/internal/gen"
	"ssrq/internal/graph"
)

// mainAlgorithms is the line-up of Figs. 8, 9, 13, 14.
var mainAlgorithms = []core.Algorithm{core.SFA, core.SPA, core.TSA, core.TSAQC, core.AIS}

// chAlgorithms are the extra Fig. 8 run-time curves.
var chAlgorithms = []core.Algorithm{core.SFACH, core.SPACH, core.TSACH}

// aisVariants is the Fig. 10 line-up.
var aisVariants = []core.Algorithm{core.AISBID, core.AISMinus, core.AIS}

// bothDatasets are the default evaluation datasets.
var bothDatasets = []string{"gowalla", "foursquare"}

// RunTable2 prints dataset statistics (paper Table 2).
func (s *Suite) RunTable2() error {
	t := Table{
		Title:   "Table 2: Data Statistics (synthetic substitutes, see DESIGN.md)",
		Columns: []string{"Name", "|V|", "|E|", "#locations", "Deg."},
	}
	for _, name := range []string{"gowalla", "foursquare", "twitter"} {
		ds, err := s.Dataset(name)
		if err != nil {
			return err
		}
		st := ds.Stats()
		t.AddRow(st.Name,
			fmt.Sprintf("%d", st.NumVertices),
			fmt.Sprintf("%d", st.NumEdges),
			fmt.Sprintf("%d", st.NumLocated),
			f2(st.AvgDegree))
	}
	t.Fprint(s.Out)
	return nil
}

// HopStats measures how many hops from v_q the furthest member of each SSRQ
// result lies (Fig. 7a).
type HopStats struct {
	Dataset string
	K       int
	Avg     float64
	Max     int
}

// RunFig7a reproduces Fig. 7a: AVG and MAX hop distance of the furthest
// result member across the query workload, per k, on both datasets.
func (s *Suite) RunFig7a() error {
	t := Table{
		Title:   "Fig 7a: hop distance of the furthest SSRQ result (per k)",
		Columns: []string{"dataset", "k", "avg hops", "max hops"},
	}
	for _, name := range bothDatasets {
		e, err := s.Engine(name, DefaultS, false)
		if err != nil {
			return err
		}
		users := QueryUsers(e.Dataset(), s.Scale.NumQueries, s.Seed)
		for _, k := range KValues {
			hs, err := hopStats(e, users, core.Params{K: k, Alpha: DefaultAlpha})
			if err != nil {
				return err
			}
			hs.Dataset = name
			hs.K = k
			t.AddRow(name, fmt.Sprintf("%d", k), f2(hs.Avg), fmt.Sprintf("%d", hs.Max))
			s.record(Measurement{Dataset: name, Algo: core.AIS, X: float64(k), PopRatio: hs.Avg})
		}
	}
	t.Fprint(s.Out)
	return nil
}

func hopStats(e *core.Engine, users []graph.VertexID, prm core.Params) (HopStats, error) {
	var sum float64
	maxHop, counted := 0, 0
	for _, q := range users {
		res, err := e.Query(core.AIS, q, prm)
		if err != nil {
			return HopStats{}, err
		}
		if len(res.Entries) == 0 {
			continue
		}
		// Expand Dijkstra until every result member is settled; its
		// shortest-path-tree depth is the hop count.
		pending := res.IDSet()
		it := graph.NewDijkstraIterator(e.Dataset().G, q)
		worst := 0
		for len(pending) > 0 {
			v, _, ok := it.Next()
			if !ok {
				break // members with p = +Inf cannot be in a finite-f result
			}
			if pending[v] {
				delete(pending, v)
				if h := int(it.HopsOf(v)); h > worst {
					worst = h
				}
			}
		}
		sum += float64(worst)
		counted++
		if worst > maxHop {
			maxHop = worst
		}
	}
	if counted == 0 {
		return HopStats{}, fmt.Errorf("exp: no non-empty results for hop stats")
	}
	return HopStats{Avg: sum / float64(counted), Max: maxHop}, nil
}

// JaccardPoint is one Fig. 7b measurement.
type JaccardPoint struct {
	Alpha     float64
	VsSocial  float64 // Jaccard(SSRQ, social kNN)
	VsSpatial float64 // Jaccard(SSRQ, Euclidean kNN)
}

// RunFig7b reproduces Fig. 7b: similarity between the SSRQ result and the
// pure social / pure spatial top-k, per α, on the Foursquare substitute.
// The paper finds Jaccard below 0.1 everywhere — SSRQ is a genuinely
// different query.
func (s *Suite) RunFig7b() error {
	e, err := s.Engine("foursquare", DefaultS, false)
	if err != nil {
		return err
	}
	users := QueryUsers(e.Dataset(), s.Scale.NumQueries, s.Seed)
	t := Table{
		Title:   "Fig 7b: Jaccard(SSRQ, single-domain kNN) on foursquare",
		Columns: []string{"alpha", "vs social", "vs spatial"},
	}
	for _, alpha := range AlphaValues {
		jp, err := jaccardStudy(e, users, core.Params{K: DefaultK, Alpha: alpha})
		if err != nil {
			return err
		}
		jp.Alpha = alpha
		t.AddRow(fmt.Sprintf("%.1f", alpha), ratio(jp.VsSocial), ratio(jp.VsSpatial))
		s.record(
			Measurement{Dataset: "foursquare", Algo: core.AIS, X: alpha, PopRatio: jp.VsSocial},
			Measurement{Dataset: "foursquare", Algo: core.AIS, X: alpha, PopRatio: jp.VsSpatial},
		)
	}
	t.Fprint(s.Out)
	return nil
}

func jaccardStudy(e *core.Engine, users []graph.VertexID, prm core.Params) (JaccardPoint, error) {
	var vsSoc, vsSpa float64
	counted := 0
	for _, q := range users {
		res, err := e.Query(core.AIS, q, prm)
		if err != nil {
			return JaccardPoint{}, err
		}
		ssrq := res.IDSet()
		if len(ssrq) == 0 {
			continue
		}
		social := socialKNN(e.Dataset().G, q, prm.K)
		spatial := make(map[int32]bool, prm.K)
		for _, nb := range e.Grid().KNN(e.Dataset().Pts[q], prm.K, func(id int32) bool { return id == int32(q) }) {
			spatial[nb.ID] = true
		}
		vsSoc += jaccard(ssrq, social)
		vsSpa += jaccard(ssrq, spatial)
		counted++
	}
	if counted == 0 {
		return JaccardPoint{}, fmt.Errorf("exp: no results for jaccard study")
	}
	return JaccardPoint{VsSocial: vsSoc / float64(counted), VsSpatial: vsSpa / float64(counted)}, nil
}

func socialKNN(g *graph.Graph, q graph.VertexID, k int) map[int32]bool {
	it := graph.NewDijkstraIterator(g, q)
	out := make(map[int32]bool, k)
	for len(out) < k {
		v, _, ok := it.Next()
		if !ok {
			break
		}
		if v != q {
			out[int32(v)] = true
		}
	}
	return out
}

func jaccard(a, b map[int32]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for x := range a {
		if b[x] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// RunFig8 reproduces Fig. 8: run-time and pop ratio vs k on both datasets.
// withCH adds the SFA-CH/SPA-CH/TSA-CH curves of the run-time charts
// (expensive preprocessing on large scales).
func (s *Suite) RunFig8(withCH bool) error {
	algos := mainAlgorithms
	if withCH {
		algos = append(append([]core.Algorithm{}, mainAlgorithms...), chAlgorithms...)
	}
	for _, name := range bothDatasets {
		e, err := s.Engine(name, DefaultS, withCH)
		if err != nil {
			return err
		}
		users := QueryUsers(e.Dataset(), s.Scale.NumQueries, s.Seed)
		rt := Table{Title: fmt.Sprintf("Fig 8 run-time(ms) vs k — %s", name), Columns: []string{"k"}}
		pr := Table{Title: fmt.Sprintf("Fig 8 pop ratio vs k — %s", name), Columns: []string{"k"}}
		for _, a := range algos {
			rt.Columns = append(rt.Columns, a.String())
		}
		for _, a := range mainAlgorithms {
			pr.Columns = append(pr.Columns, a.String())
		}
		for _, k := range KValues {
			prm := core.Params{K: k, Alpha: DefaultAlpha}
			rtRow := []string{fmt.Sprintf("%d", k)}
			prRow := []string{fmt.Sprintf("%d", k)}
			for _, a := range algos {
				m, err := runWorkload(e, a, users, prm)
				if err != nil {
					return err
				}
				m.X = float64(k)
				s.record(m)
				rtRow = append(rtRow, ms(m.Runtime))
				if !isCH(a) {
					prRow = append(prRow, ratio(m.PopRatio))
				}
			}
			rt.AddRow(rtRow...)
			pr.AddRow(prRow...)
		}
		rt.Fprint(s.Out)
		pr.Fprint(s.Out)
	}
	return nil
}

func isCH(a core.Algorithm) bool {
	return a == core.SFACH || a == core.SPACH || a == core.TSACH
}

// RunFig9 reproduces Fig. 9: run-time vs α on both datasets.
func (s *Suite) RunFig9() error {
	for _, name := range bothDatasets {
		e, err := s.Engine(name, DefaultS, false)
		if err != nil {
			return err
		}
		users := QueryUsers(e.Dataset(), s.Scale.NumQueries, s.Seed)
		t := Table{Title: fmt.Sprintf("Fig 9 run-time(ms) vs alpha — %s", name), Columns: []string{"alpha"}}
		for _, a := range mainAlgorithms {
			t.Columns = append(t.Columns, a.String())
		}
		for _, alpha := range AlphaValues {
			row := []string{fmt.Sprintf("%.1f", alpha)}
			for _, a := range mainAlgorithms {
				m, err := runWorkload(e, a, users, core.Params{K: DefaultK, Alpha: alpha})
				if err != nil {
					return err
				}
				m.X = alpha
				s.record(m)
				row = append(row, ms(m.Runtime))
			}
			t.AddRow(row...)
		}
		t.Fprint(s.Out)
	}
	return nil
}

// RunFig10 reproduces Fig. 10: the AIS flavors (AIS-BID, AIS⁻, AIS) vs k —
// run-time and pop ratio on both datasets.
func (s *Suite) RunFig10() error {
	for _, name := range bothDatasets {
		e, err := s.Engine(name, DefaultS, false)
		if err != nil {
			return err
		}
		users := QueryUsers(e.Dataset(), s.Scale.NumQueries, s.Seed)
		rt := Table{Title: fmt.Sprintf("Fig 10 run-time(ms) vs k — %s", name), Columns: []string{"k"}}
		pr := Table{Title: fmt.Sprintf("Fig 10 pop ratio vs k — %s", name), Columns: []string{"k"}}
		for _, a := range aisVariants {
			rt.Columns = append(rt.Columns, a.String())
			pr.Columns = append(pr.Columns, a.String())
		}
		for _, k := range KValues {
			rtRow := []string{fmt.Sprintf("%d", k)}
			prRow := []string{fmt.Sprintf("%d", k)}
			for _, a := range aisVariants {
				m, err := runWorkload(e, a, users, core.Params{K: k, Alpha: DefaultAlpha})
				if err != nil {
					return err
				}
				m.X = float64(k)
				s.record(m)
				rtRow = append(rtRow, ms(m.Runtime))
				prRow = append(prRow, ratio(m.PopRatio))
			}
			rt.AddRow(rtRow...)
			pr.AddRow(prRow...)
		}
		rt.Fprint(s.Out)
		pr.Fprint(s.Out)
	}
	return nil
}

// RunFig11 reproduces Fig. 11: AIS vs the §5.4 pre-computation (AIS-Cache)
// as the cached-list length t grows. Lists are materialized offline
// (Precompute) so queries measure lookup + fallback cost only.
func (s *Suite) RunFig11() error {
	for _, name := range bothDatasets {
		e, err := s.Engine(name, DefaultS, false)
		if err != nil {
			return err
		}
		users := QueryUsers(e.Dataset(), s.Scale.NumQueries, s.Seed)
		prm := core.Params{K: DefaultK, Alpha: DefaultAlpha}
		base, err := runWorkload(e, core.AIS, users, prm)
		if err != nil {
			return err
		}
		t := Table{
			Title:   fmt.Sprintf("Fig 11 run-time(ms) vs t — %s (AIS baseline %s ms)", name, ms(base.Runtime)),
			Columns: []string{"t", "AIS", "AIS-Cache"},
		}
		for _, tv := range s.Scale.TValues {
			e.ResetCache(tv)
			e.Precompute(users)
			m, err := runWorkload(e, core.AISCache, users, prm)
			if err != nil {
				return err
			}
			m.X = float64(tv)
			s.record(m)
			t.AddRow(fmt.Sprintf("%d", tv), ms(base.Runtime), ms(m.Runtime))
		}
		t.Fprint(s.Out)
	}
	return nil
}

// RunFig12 reproduces Fig. 12: the effect of grid granularity s on the
// grid-based methods.
func (s *Suite) RunFig12() error {
	algos := []core.Algorithm{core.SPA, core.AISBID, core.AISMinus, core.AIS}
	for _, name := range bothDatasets {
		t := Table{Title: fmt.Sprintf("Fig 12 run-time(ms) vs s — %s", name), Columns: []string{"s"}}
		for _, a := range algos {
			t.Columns = append(t.Columns, a.String())
		}
		for _, gridS := range SValues {
			e, err := s.Engine(name, gridS, false)
			if err != nil {
				return err
			}
			users := QueryUsers(e.Dataset(), s.Scale.NumQueries, s.Seed)
			row := []string{fmt.Sprintf("%d", gridS)}
			for _, a := range algos {
				m, err := runWorkload(e, a, users, core.Params{K: DefaultK, Alpha: DefaultAlpha})
				if err != nil {
					return err
				}
				m.X = float64(gridS)
				s.record(m)
				row = append(row, ms(m.Runtime))
			}
			t.AddRow(row...)
		}
		t.Fprint(s.Out)
	}
	return nil
}

// RunFig13 reproduces Fig. 13: the high-degree Twitter substitute, run-time
// vs k and vs α.
func (s *Suite) RunFig13() error {
	e, err := s.Engine("twitter", DefaultS, false)
	if err != nil {
		return err
	}
	users := QueryUsers(e.Dataset(), s.Scale.NumQueries, s.Seed)

	kt := Table{Title: "Fig 13a run-time(ms) vs k — twitter", Columns: []string{"k"}}
	for _, a := range mainAlgorithms {
		kt.Columns = append(kt.Columns, a.String())
	}
	for _, k := range KValues {
		row := []string{fmt.Sprintf("%d", k)}
		for _, a := range mainAlgorithms {
			m, err := runWorkload(e, a, users, core.Params{K: k, Alpha: DefaultAlpha})
			if err != nil {
				return err
			}
			m.X = float64(k)
			s.record(m)
			row = append(row, ms(m.Runtime))
		}
		kt.AddRow(row...)
	}
	kt.Fprint(s.Out)

	at := Table{Title: "Fig 13b run-time(ms) vs alpha — twitter", Columns: []string{"alpha"}}
	for _, a := range mainAlgorithms {
		at.Columns = append(at.Columns, a.String())
	}
	for _, alpha := range AlphaValues {
		row := []string{fmt.Sprintf("%.1f", alpha)}
		for _, a := range mainAlgorithms {
			m, err := runWorkload(e, a, users, core.Params{K: DefaultK, Alpha: alpha})
			if err != nil {
				return err
			}
			m.X = alpha
			s.record(m)
			row = append(row, ms(m.Runtime))
		}
		at.AddRow(row...)
	}
	at.Fprint(s.Out)
	return nil
}

// RunFig14a reproduces Fig. 14a: performance under positive, independent
// and negative social↔spatial correlation. Locations are re-synthesized
// around each query user exactly as the paper describes, so every query
// builds its own engine; the correlated-query workload is therefore smaller.
func (s *Suite) RunFig14a() error {
	base, err := s.Dataset("foursquare")
	if err != nil {
		return err
	}
	numQ := s.Scale.NumQueries / 4
	if numQ < 3 {
		numQ = 3
	}
	users := QueryUsers(base, numQ, s.Seed+101)
	t := Table{Title: "Fig 14a run-time(ms) vs correlation — foursquare-based", Columns: []string{"correlation"}}
	for _, a := range mainAlgorithms {
		t.Columns = append(t.Columns, a.String())
	}
	for si, sign := range []gen.CorrelationSign{gen.PositiveCorrelation, gen.IndependentCorrelation, gen.NegativeCorrelation} {
		totals := make(map[core.Algorithm]Measurement)
		for qi, q := range users {
			ds, err := gen.CorrelatedDataset(base, q, sign, s.Seed+int64(1000*si+qi))
			if err != nil {
				return err
			}
			e, err := core.NewEngine(ds, EngineOptions(DefaultS, false, 1, s.Seed))
			if err != nil {
				return err
			}
			for _, a := range mainAlgorithms {
				m, err := runWorkload(e, a, []graph.VertexID{q}, core.Params{K: DefaultK, Alpha: DefaultAlpha})
				if err != nil {
					return err
				}
				agg := totals[a]
				agg.Algo = a
				agg.Dataset = ds.Name
				agg.Runtime += m.Runtime
				agg.PopRatio += m.PopRatio
				agg.Queries++
				totals[a] = agg
			}
		}
		row := []string{sign.String()}
		for _, a := range mainAlgorithms {
			agg := totals[a]
			if agg.Queries > 0 {
				agg.Runtime /= time.Duration(agg.Queries)
				agg.PopRatio /= float64(agg.Queries)
			}
			agg.X = float64(si)
			s.record(agg)
			row = append(row, ms(agg.Runtime))
		}
		t.AddRow(row...)
	}
	t.Fprint(s.Out)
	return nil
}

// RunFig14b reproduces Fig. 14b: scalability with data size via Forest-Fire
// sampling of the largest Foursquare substitute.
func (s *Suite) RunFig14b() error {
	sizes := s.Scale.Fig14bSizes
	largest := sizes[len(sizes)-1]
	base, err := gen.FoursquarePreset.Dataset(largest, s.Seed)
	if err != nil {
		return err
	}
	t := Table{Title: "Fig 14b run-time(ms) vs data size — foursquare-based", Columns: []string{"size"}}
	for _, a := range mainAlgorithms {
		t.Columns = append(t.Columns, a.String())
	}
	for _, size := range sizes {
		ds := base
		if size < largest {
			ds, err = gen.SampledDataset(base, size, s.Seed+int64(size))
			if err != nil {
				return err
			}
		}
		e, err := core.NewEngine(ds, EngineOptions(DefaultS, false, 1, s.Seed))
		if err != nil {
			return err
		}
		users := QueryUsers(ds, s.Scale.NumQueries, s.Seed)
		row := []string{fmt.Sprintf("%d", size)}
		for _, a := range mainAlgorithms {
			m, err := runWorkload(e, a, users, core.Params{K: DefaultK, Alpha: DefaultAlpha})
			if err != nil {
				return err
			}
			m.X = float64(size)
			s.record(m)
			row = append(row, ms(m.Runtime))
		}
		t.AddRow(row...)
	}
	t.Fprint(s.Out)
	return nil
}
