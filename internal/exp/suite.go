package exp

import (
	"fmt"
	"io"

	"ssrq/internal/core"
	"ssrq/internal/dataset"
	"ssrq/internal/gen"
)

// Suite owns the datasets and engines for a full evaluation run and exposes
// one Run method per table/figure. Datasets and engines are built lazily and
// cached, so individual figures can run standalone.
type Suite struct {
	Scale Scale
	Seed  int64
	Out   io.Writer
	// Parallel is the worker count for the "throughput" experiment
	// (0 = GOMAXPROCS).
	Parallel int
	// ChurnMovers are the mover-goroutine counts the "churn" experiment
	// sweeps (default 0, 1, 4).
	ChurnMovers []int
	// ChurnRate throttles each churn mover to this many moves/sec
	// (0 = unthrottled).
	ChurnRate float64
	// EdgeRates are the edge-update rates (ops/sec) the "socialchurn"
	// experiment sweeps; 0 = no churner, negative = unthrottled
	// (default 0, 200, 2000).
	EdgeRates []float64
	// ShardCounts are the shard counts the "shard" experiment sweeps
	// (default 1, 2, 4, 8; default 16 with Skew set).
	ShardCounts []int
	// Skew switches the "shard" experiment to the skewed-migration cell:
	// hotspot drift, automatic online rebalance, per-phase latency and
	// imbalance reporting (see RunShardSkew).
	Skew bool
	// Subscribers is the standing-subscription count for the "subscribe"
	// experiment (default 1000, capped by the located population).
	Subscribers int

	datasets map[string]*dataset.Dataset
	engines  map[string]*core.Engine
	// Measurements accumulates every data point the suite produced, for
	// programmatic inspection (EXPERIMENTS.md generation, -json, tests).
	Measurements []Measurement
	// curExp is the experiment currently executing; record stamps it into
	// every measurement so the JSON report can group points by experiment.
	curExp string
}

// NewSuite creates an evaluation suite writing human-readable tables to out.
func NewSuite(scale Scale, seed int64, out io.Writer) *Suite {
	return &Suite{
		Scale:    scale,
		Seed:     seed,
		Out:      out,
		datasets: make(map[string]*dataset.Dataset),
		engines:  make(map[string]*core.Engine),
	}
}

// Dataset returns the named paper-substitute dataset at suite scale.
func (s *Suite) Dataset(name string) (*dataset.Dataset, error) {
	if ds, ok := s.datasets[name]; ok {
		return ds, nil
	}
	var preset gen.Preset
	var n int
	switch name {
	case "gowalla":
		preset, n = gen.GowallaPreset, s.Scale.GowallaN
	case "foursquare":
		preset, n = gen.FoursquarePreset, s.Scale.FoursquareN
	case "twitter":
		preset, n = gen.TwitterPreset, s.Scale.TwitterN
	case "urban":
		// The literature-derived workload presets run at Gowalla scale.
		preset, n = gen.UrbanPreset, s.Scale.GowallaN
	case "homophily":
		preset, n = gen.HomophilyPreset, s.Scale.GowallaN
	default:
		return nil, fmt.Errorf("exp: unknown dataset %q", name)
	}
	ds, err := preset.Dataset(n, s.Seed)
	if err != nil {
		return nil, err
	}
	s.datasets[name] = ds
	return ds, nil
}

// Engine returns a cached engine for the dataset at grid granularity s
// (with or without a contraction hierarchy).
func (s *Suite) Engine(dsName string, gridS int, buildCH bool) (*core.Engine, error) {
	key := fmt.Sprintf("%s/s=%d/ch=%v", dsName, gridS, buildCH)
	if e, ok := s.engines[key]; ok {
		return e, nil
	}
	ds, err := s.Dataset(dsName)
	if err != nil {
		return nil, err
	}
	e, err := core.NewEngine(ds, EngineOptions(gridS, buildCH, maxT(s.Scale.TValues), s.Seed))
	if err != nil {
		return nil, err
	}
	s.engines[key] = e
	return e, nil
}

func maxT(ts []int) int {
	best := 1
	for _, t := range ts {
		if t > best {
			best = t
		}
	}
	return best
}

func (s *Suite) record(ms ...Measurement) {
	for i := range ms {
		if ms[i].Exp == "" {
			ms[i].Exp = s.curExp
		}
	}
	s.Measurements = append(s.Measurements, ms...)
}

// RunAll executes every experiment in paper order.
func (s *Suite) RunAll(withCH bool) error {
	steps := []struct {
		name string
		fn   func() error
	}{
		{"table2", s.RunTable2},
		{"fig7a", s.RunFig7a},
		{"fig7b", s.RunFig7b},
		{"fig8", func() error { return s.RunFig8(withCH) }},
		{"fig9", s.RunFig9},
		{"fig10", s.RunFig10},
		{"fig11", s.RunFig11},
		{"fig12", s.RunFig12},
		{"fig13", s.RunFig13},
		{"fig14a", s.RunFig14a},
		{"fig14b", s.RunFig14b},
	}
	for _, step := range steps {
		s.curExp = step.name
		if err := step.fn(); err != nil {
			return fmt.Errorf("exp: %s: %w", step.name, err)
		}
	}
	return nil
}

// Run executes a single experiment by id ("table2", "fig7a", … "fig14b",
// "throughput", "churn", "all").
func (s *Suite) Run(id string, withCH bool) error {
	s.curExp = id
	switch id {
	case "all":
		return s.RunAll(withCH)
	case "table2":
		return s.RunTable2()
	case "fig7a":
		return s.RunFig7a()
	case "fig7b":
		return s.RunFig7b()
	case "fig8":
		return s.RunFig8(withCH)
	case "fig9":
		return s.RunFig9()
	case "fig10":
		return s.RunFig10()
	case "fig11":
		return s.RunFig11()
	case "fig12":
		return s.RunFig12()
	case "fig13":
		return s.RunFig13()
	case "fig14a":
		return s.RunFig14a()
	case "fig14b":
		return s.RunFig14b()
	case "throughput":
		return s.RunThroughput()
	case "churn":
		return s.RunChurn()
	case "socialchurn":
		return s.RunSocialChurn()
	case "shard":
		if s.Skew {
			return s.RunShardSkew()
		}
		return s.RunShard()
	case "subscribe":
		return s.RunSubscribe()
	case "filter":
		return s.RunFilter()
	case "recover":
		return s.RunRecover()
	case "diag":
		return s.RunDiagnostics()
	default:
		return fmt.Errorf("exp: unknown experiment %q", id)
	}
}
