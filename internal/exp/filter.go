package exp

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"ssrq/internal/core"
)

// RunFilter evaluates attribute-filtered SSRQ on the clustered urban
// workload, where per-city labels align with the spatial clusters and the
// aggregate label masks can prune whole index subtrees. The cell is
// self-checking twice over: every filtered result is compared entry by entry
// against the brute-force oracle under the same filter, and the run fails
// outright if the label index produced zero cell-mask prunes — either
// failure means the filtered query path is broken, not slow.
func (s *Suite) RunFilter() error {
	e, err := s.Engine("urban", DefaultS, false)
	if err != nil {
		return err
	}
	ds, err := s.Dataset("urban")
	if err != nil {
		return err
	}
	if ds.Labels == nil {
		return fmt.Errorf("exp: filter: urban dataset carries no labels")
	}
	users := QueryUsers(ds, s.Scale.NumQueries, s.Seed)
	if len(users) == 0 {
		return fmt.Errorf("exp: filter: no located query users")
	}
	rng := rand.New(rand.NewSource(s.Seed + 77))

	algos := []core.Algorithm{core.AIS, core.TSA, core.SFA}
	type acc struct {
		total                time.Duration
		prunes, skips, fofUp int
		pop                  float64
	}
	cells := make(map[core.Algorithm]*acc, len(algos))
	for _, a := range algos {
		cells[a] = &acc{}
	}
	n := ds.NumUsers()
	checked := 0

	for _, q := range users {
		// Filter on the query user's own city, half the time widened by a
		// second random city — the realistic "places my community frequents"
		// shape: selective, spatially clustered, never empty.
		filter := ds.Labels[q]
		if filter == 0 {
			filter = 1 << uint(rng.Intn(8))
		}
		if rng.Intn(2) == 0 {
			filter |= 1 << uint(rng.Intn(8))
		}
		prm := core.Params{K: DefaultK, Alpha: DefaultAlpha, Filter: filter}
		want, err := e.Query(core.BruteForce, q, prm)
		if err != nil {
			return fmt.Errorf("exp: filter: oracle on user %d: %w", q, err)
		}
		for _, algo := range algos {
			start := time.Now()
			got, err := e.Query(algo, q, prm)
			if err != nil {
				return fmt.Errorf("exp: filter: %v on user %d: %w", algo, q, err)
			}
			c := cells[algo]
			c.total += time.Since(start)
			c.prunes += got.Stats.LabelCellPrunes
			c.skips += got.Stats.LabelSkips
			c.fofUp += got.Stats.FoFTightened
			c.pop += got.Stats.PopRatio(n)
			if len(got.Entries) != len(want.Entries) {
				return fmt.Errorf("exp: filter: %v q=%d filter=%#x: %d entries, oracle has %d",
					algo, q, filter, len(got.Entries), len(want.Entries))
			}
			for i := range got.Entries {
				g, w := got.Entries[i], want.Entries[i]
				if math.Abs(g.F-w.F) > 1e-9 || (g.ID != w.ID && math.Abs(g.F-w.F) > 1e-12) {
					return fmt.Errorf("exp: filter: %v q=%d filter=%#x rank %d: (id=%d f=%v), oracle (id=%d f=%v)",
						algo, q, filter, i, g.ID, g.F, w.ID, w.F)
				}
			}
		}
		checked++
	}

	totalPrunes := 0
	for _, c := range cells {
		totalPrunes += c.prunes
	}
	if totalPrunes == 0 {
		return fmt.Errorf("exp: filter: zero cell-mask prunes across %d clustered queries — the label index is not pruning", checked)
	}

	tbl := &Table{
		Title: fmt.Sprintf("Filtered SSRQ — urban workload, k=%d, α=%.1f, %d queries (oracle-checked)",
			DefaultK, DefaultAlpha, checked),
		Columns: []string{"algo", "avg (ms)", "pop ratio", "cell prunes/q", "label skips/q", "fof tightened/q"},
	}
	nq := float64(checked)
	for _, algo := range algos {
		c := cells[algo]
		tbl.AddRow(fmt.Sprint(algo),
			ms(c.total/time.Duration(checked)), ratio(c.pop/nq),
			f2(float64(c.prunes)/nq), f2(float64(c.skips)/nq), f2(float64(c.fofUp)/nq))
		s.record(Measurement{
			Dataset: ds.Name, Algo: algo,
			Runtime: c.total / time.Duration(checked),
			PopRatio: c.pop / nq, Queries: checked,
			Extra: map[string]float64{
				"label_cell_prunes_per_q": float64(c.prunes) / nq,
				"label_skips_per_q":       float64(c.skips) / nq,
				"fof_tightened_per_q":     float64(c.fofUp) / nq,
				"oracle_checked":          nq,
			},
		})
	}
	tbl.Fprint(s.Out)
	return nil
}
