package exp

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ssrq/internal/core"
	"ssrq/internal/graph"
)

// RunSocialChurn measures query latency under sustained *social* churn: for
// each edge-update rate, a background churner adds/removes/reweights
// friendships through the asynchronous pipeline while a querier runs the AIS
// workload against lock-free snapshots — and, alongside it, the TSA-CH
// workload, whose contraction hierarchy is repaired in place for insertions
// and rebuilt in the background otherwise (stale epochs are counted as
// refusals, not failures). Each cell reports latency percentiles for both
// plus the social maintenance counters (epochs, incremental landmark
// repairs, disabled landmarks, CH refusals). The experiment ends with a
// post-churn correctness audit: AIS *and every CH variant* against an
// independently rebuilt brute-force oracle on the mutated graph — after the
// rebuilds settle the CH variants must serve with zero stale-hierarchy
// refusals — plus sampled landmark-bound admissibility checks
// (LowerBound ≤ true distance ≤ UpperBound).
func (s *Suite) RunSocialChurn() error {
	e, err := s.Engine("gowalla", DefaultS, true)
	if err != nil {
		return err
	}
	ds, err := s.Dataset("gowalla")
	if err != nil {
		return err
	}
	n := ds.NumUsers()
	queryable := QueryUsers(ds, s.Scale.NumQueries*2, s.Seed)
	if len(queryable) == 0 {
		return fmt.Errorf("exp: socialchurn: no located query users")
	}
	queries := s.Scale.NumQueries * 4
	rates := s.EdgeRates
	if len(rates) == 0 {
		rates = []float64{0, 200, 2000}
	}

	// Sample the weight range of the construction graph so churned edges
	// stay in-distribution.
	wLo, wHi := edgeWeightRange(ds.G)

	tbl := &Table{
		Title: fmt.Sprintf("Query latency under social churn — AIS + TSA-CH, k=%d, α=%.1f, %d queries/cell",
			DefaultK, DefaultAlpha, queries),
		Columns: []string{"edge rate/s", "p50 (ms)", "p95 (ms)", "p99 (ms)", "queries/s",
			"CH p50 (ms)", "CH p95 (ms)", "CH p99 (ms)", "CH refused",
			"edge ops", "social epochs", "lm repairs", "lm disabled"},
	}
	for _, rate := range rates {
		cell, err := s.runSocialChurnCell(e, queryable, n, wLo, wHi, queries, rate)
		if err != nil {
			return err
		}
		rateLabel := "off"
		if rate > 0 {
			rateLabel = fmt.Sprintf("%.0f", rate)
		} else if rate < 0 {
			rateLabel = "max"
		}
		tbl.AddRow(rateLabel,
			ms(cell.lat.P50), ms(cell.lat.P95), ms(cell.lat.P99),
			fmt.Sprintf("%.0f", cell.qps),
			ms(cell.latCH.P50), ms(cell.latCH.P95), ms(cell.latCH.P99), fmt.Sprint(cell.chRefusals),
			fmt.Sprint(cell.edgeOps), fmt.Sprint(cell.socialEpochs),
			fmt.Sprint(cell.repairs), fmt.Sprint(cell.disabled))
		s.record(Measurement{
			Dataset: ds.Name, Algo: core.AIS, X: rate,
			Runtime: cell.lat.P95, Queries: cell.lat.N,
		})
		if cell.latCH.N > 0 {
			s.record(Measurement{
				Dataset: ds.Name, Algo: core.TSACH, X: rate,
				Runtime: cell.latCH.P95, Queries: cell.latCH.N,
			})
		}
	}
	tbl.Fprint(s.Out)

	// Post-churn audit. Let the world settle first: Flush drains the update
	// pipeline, then the synchronous rebuilds restore any disabled landmarks
	// and a stale hierarchy (the background loops normally handle both; the
	// sync forms make the audit deterministic). From here on the CH variants
	// must serve with zero stale-hierarchy refusals.
	e.Flush()
	rebuilt := e.RebuildLandmarks()
	chRebuilt := e.RebuildCH()
	sn := e.Snapshot()
	if !sn.HierarchyFresh() {
		return fmt.Errorf("exp: socialchurn: hierarchy still stale after rebuild settle (built %d, social %d)",
			sn.HierarchyEpoch(), sn.SocialEpoch())
	}
	socG := sn.SocialGraph()
	rng := rand.New(rand.NewSource(s.Seed + 99))
	prm := core.Params{K: DefaultK, Alpha: DefaultAlpha}
	chAlgos := []core.Algorithm{core.SFACH, core.SPACH, core.TSACH}
	for probe := 0; probe < 3; probe++ {
		q := queryable[rng.Intn(len(queryable))]
		want, err := e.Query(core.BruteForce, q, prm)
		if err != nil {
			return err
		}
		checked := append([]core.Algorithm{core.AIS}, chAlgos...)
		for _, algo := range checked {
			got, err := e.Query(algo, q, prm)
			if err != nil {
				return fmt.Errorf("exp: socialchurn: %v refused after rebuild settle: %w", algo, err)
			}
			if len(got.Entries) != len(want.Entries) {
				return fmt.Errorf("exp: socialchurn: post-churn %v/brute size mismatch for user %d", algo, q)
			}
			for i := range got.Entries {
				if diff := got.Entries[i].F - want.Entries[i].F; diff > 1e-9 || diff < -1e-9 {
					return fmt.Errorf("exp: socialchurn: post-churn %v/brute rank %d mismatch for user %d", algo, i, q)
				}
			}
		}
		// Independent oracle: exact distances on a graph rebuilt from the
		// snapshot's edges — catches any drift between the overlay's merged
		// view and the true mutated topology.
		dist := rebuildGraph(socG).DistancesFrom(q)
		lm := sn.Landmarks()
		for v := 0; v < n; v += 1 + n/64 {
			lo := lm.LowerBound(q, graph.VertexID(v))
			hi := lm.UpperBound(q, graph.VertexID(v))
			if lo > dist[v]+1e-9 || hi < dist[v]-1e-9 {
				return fmt.Errorf("exp: socialchurn: inadmissible landmark bound for (%d,%d): lo=%v true=%v hi=%v", q, v, lo, dist[v], hi)
			}
		}
	}
	st := e.SocialStats()
	fmt.Fprintf(s.Out, "post-churn brute-force equivalence (AIS + CH variants, zero refusals) + landmark admissibility: ok "+
		"(%d landmarks rebuilt, CH rebuilt=%v, %d in-place CH repairs, %d forced installs, social epoch %d)\n",
		rebuilt, chRebuilt, st.CHRepairs, st.LandmarkForcedInstalls+st.CHForcedInstalls, sn.SocialEpoch())
	return nil
}

// socialChurnCell is one measured edge-rate cell.
type socialChurnCell struct {
	lat          latencySummary
	latCH        latencySummary // TSA-CH latencies over served (fresh) epochs
	chRefusals   int64          // TSA-CH attempts refused on a stale hierarchy
	qps          float64
	edgeOps      int64
	socialEpochs uint64
	repairs      int64
	disabled     int
}

// runSocialChurnCell runs one cell: a churner goroutine mutating edges at
// `rate` ops/sec (0 = none, negative = unthrottled) while one querier
// answers `queries` AIS queries, timed individually, each followed by a
// TSA-CH probe — served and timed when the published hierarchy matches the
// snapshot's social epoch, counted as a refusal while it trails churn.
func (s *Suite) runSocialChurnCell(e *core.Engine, queryable []graph.VertexID,
	n int, wLo, wHi float64, queries int, rate float64) (socialChurnCell, error) {
	startSocial := e.UpdateStats().SocialEpoch
	startRepairs := e.SocialStats().LandmarkRepairs
	var opsDone atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var churnErr atomic.Value

	if rate != 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(s.Seed + 4242))
			var throttle *time.Ticker
			if rate > 0 {
				throttle = time.NewTicker(time.Duration(float64(time.Second) / rate))
				defer throttle.Stop()
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if throttle != nil {
					select {
					case <-stop:
						return
					case <-throttle.C:
					}
				}
				var err error
				if rng.Intn(5) < 3 {
					u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
					if u == v {
						continue
					}
					err = e.AddFriendAsync(u, v, wLo+rng.Float64()*(wHi-wLo))
				} else {
					// Remove a random incident edge from the latest snapshot.
					u := graph.VertexID(rng.Int31n(int32(n)))
					nbrs, _ := e.Snapshot().SocialGraph().Neighbors(u)
					if len(nbrs) == 0 {
						continue
					}
					err = e.RemoveFriendAsync(u, nbrs[rng.Intn(len(nbrs))])
				}
				if err != nil {
					churnErr.Store(err)
					return
				}
				opsDone.Add(1)
			}
		}()
	}

	if rate != 0 {
		// Guarantee real overlap: very short cells (micro scales on few
		// cores) can otherwise finish before the churner is ever scheduled.
		deadline := time.Now().Add(2 * time.Second)
		for opsDone.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(200 * time.Microsecond)
		}
	}
	prm := core.Params{K: DefaultK, Alpha: DefaultAlpha}
	lat := make([]time.Duration, 0, queries)
	latCH := make([]time.Duration, 0, queries)
	var aisTime time.Duration // AIS-only wall time: CH probes must not dilute queries/s
	var chRefusals int64
	qrng := rand.New(rand.NewSource(s.Seed + 17))
	// Run at least `queries` queries, continuing (up to a bound) until the
	// churner has produced a meaningful number of ops mid-flight.
	minOps := int64(queries)
	if rate == 0 {
		minOps = 0
	}
	for i := 0; i < queries || (opsDone.Load() < minOps && i < queries*50); i++ {
		q := queryable[qrng.Intn(len(queryable))]
		start := time.Now()
		_, err := e.Query(core.AIS, q, prm)
		if err != nil {
			close(stop)
			wg.Wait()
			return socialChurnCell{}, fmt.Errorf("exp: socialchurn query: %w", err)
		}
		d := time.Since(start)
		lat = append(lat, d)
		aisTime += d
		// CH probe: a stale-hierarchy refusal is expected behavior mid-churn
		// (the rebuild is racing the churner); anything else is a failure.
		start = time.Now()
		if _, err := e.Query(core.TSACH, q, prm); err != nil {
			if !strings.Contains(err.Error(), "contraction hierarchy") {
				close(stop)
				wg.Wait()
				return socialChurnCell{}, fmt.Errorf("exp: socialchurn CH query: %w", err)
			}
			chRefusals++
		} else {
			latCH = append(latCH, time.Since(start))
		}
	}
	queries = len(lat)
	close(stop)
	wg.Wait()
	if err, ok := churnErr.Load().(error); ok && err != nil {
		return socialChurnCell{}, fmt.Errorf("exp: socialchurn churner: %w", err)
	}
	e.Flush() // drain so the next cell starts quiescent
	st := e.SocialStats()
	return socialChurnCell{
		lat:          summarizeLatencies(lat),
		latCH:        summarizeLatencies(latCH),
		chRefusals:   chRefusals,
		qps:          float64(queries) / aisTime.Seconds(),
		edgeOps:      opsDone.Load(),
		socialEpochs: e.UpdateStats().SocialEpoch - startSocial,
		repairs:      st.LandmarkRepairs - startRepairs,
		disabled:     st.DisabledLandmarks,
	}, nil
}

// edgeWeightRange scans the graph for its min/max edge weight.
func edgeWeightRange(g *graph.Graph) (lo, hi float64) {
	lo, hi = 1, 1
	first := true
	for v := 0; v < g.NumVertices(); v++ {
		_, ws := g.Neighbors(graph.VertexID(v))
		for _, w := range ws {
			if first {
				lo, hi = w, w
				first = false
				continue
			}
			if w < lo {
				lo = w
			}
			if w > hi {
				hi = w
			}
		}
	}
	return lo, hi
}

// rebuildGraph reconstructs an independent CSR graph from a snapshot
// graph's edges — the oracle substrate for post-churn equivalence.
func rebuildGraph(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		nbrs, ws := g.Neighbors(graph.VertexID(v))
		for i, u := range nbrs {
			if u > graph.VertexID(v) {
				_ = b.AddEdge(graph.VertexID(v), u, ws[i])
			}
		}
	}
	return b.MustBuild()
}
