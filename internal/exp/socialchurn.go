package exp

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ssrq/internal/core"
	"ssrq/internal/graph"
)

// RunSocialChurn measures query latency under sustained *social* churn: for
// each edge-update rate, a background churner adds/removes/reweights
// friendships through the asynchronous pipeline while a querier runs the AIS
// workload against lock-free snapshots. Each cell reports latency
// percentiles plus the social maintenance counters (epochs, incremental
// landmark repairs, disabled landmarks). The experiment ends with a
// post-churn correctness audit: AIS against an independently rebuilt
// brute-force oracle on the mutated graph, plus sampled landmark-bound
// admissibility checks (LowerBound ≤ true distance ≤ UpperBound).
func (s *Suite) RunSocialChurn() error {
	e, err := s.Engine("gowalla", DefaultS, false)
	if err != nil {
		return err
	}
	ds, err := s.Dataset("gowalla")
	if err != nil {
		return err
	}
	n := ds.NumUsers()
	queryable := QueryUsers(ds, s.Scale.NumQueries*2, s.Seed)
	if len(queryable) == 0 {
		return fmt.Errorf("exp: socialchurn: no located query users")
	}
	queries := s.Scale.NumQueries * 4
	rates := s.EdgeRates
	if len(rates) == 0 {
		rates = []float64{0, 200, 2000}
	}

	// Sample the weight range of the construction graph so churned edges
	// stay in-distribution.
	wLo, wHi := edgeWeightRange(ds.G)

	tbl := &Table{
		Title: fmt.Sprintf("Query latency under social churn — AIS, k=%d, α=%.1f, %d queries/cell",
			DefaultK, DefaultAlpha, queries),
		Columns: []string{"edge rate/s", "p50 (ms)", "p95 (ms)", "p99 (ms)", "mean (ms)", "queries/s", "edge ops", "social epochs", "lm repairs", "lm disabled"},
	}
	for _, rate := range rates {
		cell, err := s.runSocialChurnCell(e, queryable, n, wLo, wHi, queries, rate)
		if err != nil {
			return err
		}
		rateLabel := "off"
		if rate > 0 {
			rateLabel = fmt.Sprintf("%.0f", rate)
		} else if rate < 0 {
			rateLabel = "max"
		}
		tbl.AddRow(rateLabel,
			ms(cell.lat.P50), ms(cell.lat.P95), ms(cell.lat.P99), ms(cell.lat.Mean),
			fmt.Sprintf("%.0f", cell.qps), fmt.Sprint(cell.edgeOps), fmt.Sprint(cell.socialEpochs),
			fmt.Sprint(cell.repairs), fmt.Sprint(cell.disabled))
		s.record(Measurement{
			Dataset: ds.Name, Algo: core.AIS, X: rate,
			Runtime: cell.lat.P95, Queries: cell.lat.N,
		})
	}
	tbl.Fprint(s.Out)

	// Post-churn audit. Restore any disabled landmarks first so the check
	// also covers freshly rebuilt tables.
	e.Flush()
	rebuilt := e.RebuildLandmarks()
	sn := e.Snapshot()
	socG := sn.SocialGraph()
	rng := rand.New(rand.NewSource(s.Seed + 99))
	prm := core.Params{K: DefaultK, Alpha: DefaultAlpha}
	for probe := 0; probe < 3; probe++ {
		q := queryable[rng.Intn(len(queryable))]
		want, err := e.Query(core.BruteForce, q, prm)
		if err != nil {
			return err
		}
		got, err := e.Query(core.AIS, q, prm)
		if err != nil {
			return err
		}
		if len(got.Entries) != len(want.Entries) {
			return fmt.Errorf("exp: socialchurn: post-churn AIS/brute size mismatch for user %d", q)
		}
		for i := range got.Entries {
			if diff := got.Entries[i].F - want.Entries[i].F; diff > 1e-9 || diff < -1e-9 {
				return fmt.Errorf("exp: socialchurn: post-churn AIS/brute rank %d mismatch for user %d", i, q)
			}
		}
		// Independent oracle: exact distances on a graph rebuilt from the
		// snapshot's edges — catches any drift between the overlay's merged
		// view and the true mutated topology.
		dist := rebuildGraph(socG).DistancesFrom(q)
		lm := sn.Landmarks()
		for v := 0; v < n; v += 1 + n/64 {
			lo := lm.LowerBound(q, graph.VertexID(v))
			hi := lm.UpperBound(q, graph.VertexID(v))
			if lo > dist[v]+1e-9 || hi < dist[v]-1e-9 {
				return fmt.Errorf("exp: socialchurn: inadmissible landmark bound for (%d,%d): lo=%v true=%v hi=%v", q, v, lo, dist[v], hi)
			}
		}
	}
	fmt.Fprintf(s.Out, "post-churn brute-force equivalence + landmark admissibility: ok (%d landmarks rebuilt, social epoch %d)\n",
		rebuilt, sn.SocialEpoch())
	return nil
}

// socialChurnCell is one measured edge-rate cell.
type socialChurnCell struct {
	lat          latencySummary
	qps          float64
	edgeOps      int64
	socialEpochs uint64
	repairs      int64
	disabled     int
}

// runSocialChurnCell runs one cell: a churner goroutine mutating edges at
// `rate` ops/sec (0 = none, negative = unthrottled) while one querier
// answers `queries` AIS queries, timed individually.
func (s *Suite) runSocialChurnCell(e *core.Engine, queryable []graph.VertexID,
	n int, wLo, wHi float64, queries int, rate float64) (socialChurnCell, error) {
	startSocial := e.UpdateStats().SocialEpoch
	startRepairs := e.SocialStats().LandmarkRepairs
	var opsDone atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var churnErr atomic.Value

	if rate != 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(s.Seed + 4242))
			var throttle *time.Ticker
			if rate > 0 {
				throttle = time.NewTicker(time.Duration(float64(time.Second) / rate))
				defer throttle.Stop()
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if throttle != nil {
					select {
					case <-stop:
						return
					case <-throttle.C:
					}
				}
				var err error
				if rng.Intn(5) < 3 {
					u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
					if u == v {
						continue
					}
					err = e.AddFriendAsync(u, v, wLo+rng.Float64()*(wHi-wLo))
				} else {
					// Remove a random incident edge from the latest snapshot.
					u := graph.VertexID(rng.Int31n(int32(n)))
					nbrs, _ := e.Snapshot().SocialGraph().Neighbors(u)
					if len(nbrs) == 0 {
						continue
					}
					err = e.RemoveFriendAsync(u, nbrs[rng.Intn(len(nbrs))])
				}
				if err != nil {
					churnErr.Store(err)
					return
				}
				opsDone.Add(1)
			}
		}()
	}

	if rate != 0 {
		// Guarantee real overlap: very short cells (micro scales on few
		// cores) can otherwise finish before the churner is ever scheduled.
		deadline := time.Now().Add(2 * time.Second)
		for opsDone.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(200 * time.Microsecond)
		}
	}
	prm := core.Params{K: DefaultK, Alpha: DefaultAlpha}
	lat := make([]time.Duration, 0, queries)
	qrng := rand.New(rand.NewSource(s.Seed + 17))
	wall := time.Now()
	// Run at least `queries` queries, continuing (up to a bound) until the
	// churner has produced a meaningful number of ops mid-flight.
	minOps := int64(queries)
	if rate == 0 {
		minOps = 0
	}
	for i := 0; i < queries || (opsDone.Load() < minOps && i < queries*50); i++ {
		q := queryable[qrng.Intn(len(queryable))]
		start := time.Now()
		_, err := e.Query(core.AIS, q, prm)
		if err != nil {
			close(stop)
			wg.Wait()
			return socialChurnCell{}, fmt.Errorf("exp: socialchurn query: %w", err)
		}
		lat = append(lat, time.Since(start))
	}
	elapsed := time.Since(wall)
	queries = len(lat)
	close(stop)
	wg.Wait()
	if err, ok := churnErr.Load().(error); ok && err != nil {
		return socialChurnCell{}, fmt.Errorf("exp: socialchurn churner: %w", err)
	}
	e.Flush() // drain so the next cell starts quiescent
	st := e.SocialStats()
	return socialChurnCell{
		lat:          summarizeLatencies(lat),
		qps:          float64(queries) / elapsed.Seconds(),
		edgeOps:      opsDone.Load(),
		socialEpochs: e.UpdateStats().SocialEpoch - startSocial,
		repairs:      st.LandmarkRepairs - startRepairs,
		disabled:     st.DisabledLandmarks,
	}, nil
}

// edgeWeightRange scans the graph for its min/max edge weight.
func edgeWeightRange(g *graph.Graph) (lo, hi float64) {
	lo, hi = 1, 1
	first := true
	for v := 0; v < g.NumVertices(); v++ {
		_, ws := g.Neighbors(graph.VertexID(v))
		for _, w := range ws {
			if first {
				lo, hi = w, w
				first = false
				continue
			}
			if w < lo {
				lo = w
			}
			if w > hi {
				hi = w
			}
		}
	}
	return lo, hi
}

// rebuildGraph reconstructs an independent CSR graph from a snapshot
// graph's edges — the oracle substrate for post-churn equivalence.
func rebuildGraph(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		nbrs, ws := g.Neighbors(graph.VertexID(v))
		for i, u := range nbrs {
			if u > graph.VertexID(v) {
				_ = b.AddEdge(graph.VertexID(v), u, ws[i])
			}
		}
	}
	return b.MustBuild()
}
