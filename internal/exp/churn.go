package exp

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ssrq/internal/core"
	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// churnMode selects how queries and moves synchronize in one churn cell.
type churnMode int

const (
	// churnSnapshot is the engine's native path: lock-free queries against
	// published epochs, moves batched through the asynchronous updater.
	churnSnapshot churnMode = iota
	// churnRWMutex emulates the pre-epoch design at the workload level: an
	// external RWMutex serializes queries (read side) against synchronous
	// per-move epochs (write side), so every query blocks every move for the
	// query's full duration — the collapse this refactor exists to fix.
	churnRWMutex
)

func (m churnMode) String() string {
	if m == churnSnapshot {
		return "snapshot"
	}
	return "rwmutex"
}

// RunChurn measures query latency under sustained location churn: for each
// mover count, background goroutines relocate users (optionally throttled to
// s.ChurnRate moves/sec each) while a querier runs the AIS workload, and the
// experiment reports the latency percentiles for both the snapshot engine
// and the RWMutex baseline. Every cell ends with a brute-force equivalence
// probe on the post-churn index, so the baseline rows double as a
// correctness check of the concurrent maintenance.
func (s *Suite) RunChurn() error {
	e, err := s.Engine("twitter", DefaultS, false) // all users located
	if err != nil {
		return err
	}
	ds, err := s.Dataset("twitter")
	if err != nil {
		return err
	}
	n := ds.NumUsers()
	// Movers touch only the upper half of the ID space; queries draw from
	// the lower half, so a query user never loses its location mid-cell.
	var queryable, movable []graph.VertexID
	for _, u := range QueryUsers(ds, n, s.Seed) {
		if int(u) < n/2 {
			queryable = append(queryable, u)
		} else {
			movable = append(movable, u)
		}
	}
	if len(queryable) == 0 || len(movable) == 0 {
		return fmt.Errorf("exp: churn: degenerate located split")
	}
	queries := s.Scale.NumQueries * 4
	moverCounts := s.ChurnMovers
	if len(moverCounts) == 0 {
		moverCounts = []int{0, 1, 4}
	}
	rateLabel := "max"
	if s.ChurnRate > 0 {
		rateLabel = fmt.Sprintf("%.0f/s per mover", s.ChurnRate)
	}

	tbl := &Table{
		Title: fmt.Sprintf("Query latency under churn — AIS, k=%d, α=%.1f, %d queries/cell, mover rate %s",
			DefaultK, DefaultAlpha, queries, rateLabel),
		Columns: []string{"engine", "movers", "p50 (ms)", "p95 (ms)", "p99 (ms)", "mean (ms)", "queries/s", "moves applied", "epochs"},
	}
	bounds := ds.Bounds()
	for _, mode := range []churnMode{churnRWMutex, churnSnapshot} {
		for _, movers := range moverCounts {
			cell, err := s.runChurnCell(e, mode, queryable, movable, bounds, queries, movers)
			if err != nil {
				return err
			}
			tbl.AddRow(mode.String(), fmt.Sprint(movers),
				ms(cell.lat.P50), ms(cell.lat.P95), ms(cell.lat.P99), ms(cell.lat.Mean),
				fmt.Sprintf("%.0f", cell.qps), fmt.Sprint(cell.moves), fmt.Sprint(cell.epochs))
			s.record(Measurement{
				Dataset: ds.Name, Algo: core.AIS, X: float64(movers),
				Runtime: cell.lat.P95, Queries: cell.lat.N,
			})
		}
	}
	tbl.Fprint(s.Out)

	// Post-churn integrity: the mutated index must still agree exactly with
	// brute force (the snapshot machinery never corrupted membership or
	// summaries).
	rng := rand.New(rand.NewSource(s.Seed))
	prm := core.Params{K: DefaultK, Alpha: DefaultAlpha}
	for probe := 0; probe < 3; probe++ {
		q := queryable[rng.Intn(len(queryable))]
		want, err := e.Query(core.BruteForce, q, prm)
		if err != nil {
			return err
		}
		got, err := e.Query(core.AIS, q, prm)
		if err != nil {
			return err
		}
		if len(got.Entries) != len(want.Entries) {
			return fmt.Errorf("exp: churn: post-churn AIS/brute size mismatch for user %d", q)
		}
		for i := range got.Entries {
			if diff := got.Entries[i].F - want.Entries[i].F; diff > 1e-9 || diff < -1e-9 {
				return fmt.Errorf("exp: churn: post-churn AIS/brute rank %d mismatch for user %d", i, q)
			}
		}
	}
	fmt.Fprintln(s.Out, "post-churn brute-force equivalence: ok")
	return nil
}

// churnCell is one measured (mode, movers) combination.
type churnCell struct {
	lat    latencySummary
	qps    float64
	moves  int64
	epochs uint64
}

// runChurnCell runs one cell: `movers` goroutines churning locations while
// one querier answers `queries` AIS queries, timed individually.
func (s *Suite) runChurnCell(e *core.Engine, mode churnMode, queryable, movable []graph.VertexID,
	bounds spatial.Rect, queries, movers int) (churnCell, error) {
	var mu sync.RWMutex // used only by churnRWMutex
	startEpoch := e.UpdateStats().Epoch
	var movesDone atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var moveErr atomic.Value

	for m := 0; m < movers; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(s.Seed + int64(100+m)))
			var throttle *time.Ticker
			if s.ChurnRate > 0 {
				throttle = time.NewTicker(time.Duration(float64(time.Second) / s.ChurnRate))
				defer throttle.Stop()
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if throttle != nil {
					select {
					case <-stop:
						return
					case <-throttle.C:
					}
				}
				id := int32(movable[rng.Intn(len(movable))])
				to := spatial.Point{
					X: bounds.MinX + rng.Float64()*bounds.Width(),
					Y: bounds.MinY + rng.Float64()*bounds.Height(),
				}
				var err error
				if mode == churnRWMutex {
					mu.Lock()
					err = e.MoveUser(id, to)
					mu.Unlock()
				} else {
					err = e.MoveUserAsync(id, to)
				}
				if err != nil {
					moveErr.Store(err)
					return
				}
				movesDone.Add(1)
			}
		}(m)
	}

	prm := core.Params{K: DefaultK, Alpha: DefaultAlpha}
	lat := make([]time.Duration, 0, queries)
	qrng := rand.New(rand.NewSource(s.Seed + 7))
	wall := time.Now()
	for i := 0; i < queries; i++ {
		q := queryable[qrng.Intn(len(queryable))]
		start := time.Now()
		if mode == churnRWMutex {
			mu.RLock()
		}
		_, err := e.Query(core.AIS, q, prm)
		if mode == churnRWMutex {
			mu.RUnlock()
		}
		if err != nil {
			close(stop)
			wg.Wait()
			return churnCell{}, fmt.Errorf("exp: churn query: %w", err)
		}
		lat = append(lat, time.Since(start))
	}
	elapsed := time.Since(wall)
	close(stop)
	wg.Wait()
	if err, ok := moveErr.Load().(error); ok && err != nil {
		return churnCell{}, fmt.Errorf("exp: churn mover: %w", err)
	}
	e.Flush() // drain the async pipeline so the next cell starts quiescent
	return churnCell{
		lat:    summarizeLatencies(lat),
		qps:    float64(queries) / elapsed.Seconds(),
		moves:  movesDone.Load(),
		epochs: e.UpdateStats().Epoch - startEpoch,
	}, nil
}
