package exp

import (
	"fmt"
	"io"
	"math"
	"sort"

	"ssrq/internal/dataset"
	"ssrq/internal/graph"
	"ssrq/internal/landmark"
)

// Diagnostics quantify the dataset properties that govern which paper
// effects can reproduce (see EXPERIMENTS.md "calibration gap"): the spread
// of the normalized social-distance distribution and the tightness of the
// landmark lower bounds. The paper's headline AIS-vs-all gap requires
// spread distances *and* tight bounds; synthetic small-world graphs cap the
// product of the two (a bound can never exceed the band width).
type Diagnostics struct {
	Dataset string
	// P10/P50/P90 of normalized social distance from a sample of sources.
	P10, P50, P90 float64
	// Tightness is E[landmark lower bound / true distance] over sampled
	// reachable pairs (1.0 = perfect bounds).
	Tightness float64
	// SpatialP50 is the median normalized spatial distance.
	SpatialP50 float64
	Pairs      int
}

// Diagnose samples the dataset with the engine's landmark configuration.
func Diagnose(ds *dataset.Dataset, lm *landmark.Set, sources []graph.VertexID) (Diagnostics, error) {
	if len(sources) == 0 {
		return Diagnostics{}, fmt.Errorf("exp: no diagnostic sources")
	}
	var ps, dsp []float64
	var tightSum float64
	tightCnt := 0
	for _, q := range sources {
		dist := ds.G.DistancesFrom(q)
		step := ds.NumUsers()/2000 + 1
		for v := 0; v < ds.NumUsers(); v += step {
			if graph.VertexID(v) == q {
				continue
			}
			if p := dist[v]; p != graph.Infinity {
				ps = append(ps, p)
				if p > 0 {
					tightSum += lm.LowerBound(q, graph.VertexID(v)) / p
					tightCnt++
				}
			}
			if d := ds.EuclideanDist(int32(q), int32(v)); !math.IsInf(d, 1) {
				dsp = append(dsp, d)
			}
		}
	}
	if len(ps) == 0 || tightCnt == 0 {
		return Diagnostics{}, fmt.Errorf("exp: diagnostic sample empty")
	}
	sort.Float64s(ps)
	sort.Float64s(dsp)
	pct := func(arr []float64, f float64) float64 {
		if len(arr) == 0 {
			return math.NaN()
		}
		return arr[int(f*float64(len(arr)-1))]
	}
	return Diagnostics{
		Dataset:    ds.Name,
		P10:        pct(ps, 0.1),
		P50:        pct(ps, 0.5),
		P90:        pct(ps, 0.9),
		Tightness:  tightSum / float64(tightCnt),
		SpatialP50: pct(dsp, 0.5),
		Pairs:      tightCnt,
	}, nil
}

// RunDiagnostics prints the calibration diagnostics for every default
// dataset (invoked by ssrq-bench -exp diag).
func (s *Suite) RunDiagnostics() error {
	t := Table{
		Title:   "Calibration diagnostics (see EXPERIMENTS.md)",
		Columns: []string{"dataset", "p10", "p50", "p90", "spread", "lm tightness", "spatial p50"},
	}
	for _, name := range []string{"gowalla", "foursquare", "twitter"} {
		e, err := s.Engine(name, DefaultS, false)
		if err != nil {
			return err
		}
		users := QueryUsers(e.Dataset(), 5, s.Seed)
		d, err := Diagnose(e.Dataset(), e.Landmarks(), users)
		if err != nil {
			return err
		}
		t.AddRow(name, f2(d.P10), f2(d.P50), f2(d.P90),
			f2(d.P90/math.Max(d.P10, 1e-9)), f2(d.Tightness), f2(d.SpatialP50))
	}
	t.Fprint(s.Out)
	return nil
}

// WriteReport renders all collected measurements as a markdown document —
// the raw material for EXPERIMENTS.md.
func (s *Suite) WriteReport(w io.Writer) error {
	if len(s.Measurements) == 0 {
		return fmt.Errorf("exp: no measurements collected; run experiments first")
	}
	fmt.Fprintf(w, "# Measured results (scale=%s, seed=%d, %d queries/point)\n\n",
		s.Scale.Name, s.Seed, s.Scale.NumQueries)
	fmt.Fprintln(w, "| dataset | algorithm | x | runtime (ms) | pop ratio |")
	fmt.Fprintln(w, "|---|---|---|---|---|")
	for _, m := range s.Measurements {
		if m.Queries == 0 {
			continue
		}
		fmt.Fprintf(w, "| %s | %v | %g | %s | %s |\n",
			m.Dataset, m.Algo, m.X, ms(m.Runtime), ratio(m.PopRatio))
	}
	return nil
}
