package exp

import (
	"bufio"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"time"

	"ssrq"
	"ssrq/internal/core"
	"ssrq/internal/gen"
	"ssrq/internal/httpapi"
	"ssrq/internal/spatial"
)

// RunSubscribe measures the continuous-subscription layer under sustained
// movers: N standing (user, k, α) queries are registered, a disjoint mover
// population drifts toward a hotspot (gen.Migration), and each flushed
// round reports the enqueue→all-subscriptions-settled latency. The cell is
// self-checking — it fails, rather than just reports, when the push layer
// regresses:
//
//   - any materialized view (built purely from the emitted deltas) or any
//     subscription result diverges from a from-scratch query at its
//     quiescent point,
//   - the Lemma-2 skip rate under the drift workload is ≤ 50% (the bound
//     test stopped proving "no possible change"),
//   - no evaluations ran at all (the delta stream is dead), or
//   - goroutines leak after Close() with live SSE streams attached.
//
// Runs at S=1 (monolithic) and S=8 (sharded per-shard invalidation).
func (s *Suite) RunSubscribe() error {
	ids, err := s.Dataset("gowalla")
	if err != nil {
		return err
	}
	rds, err := ssrq.Synthesize("gowalla", s.Scale.GowallaN, s.Seed)
	if err != nil {
		return err
	}
	nSubs := s.Subscribers
	if nSubs <= 0 {
		nSubs = 1000
	}
	located := QueryUsers(ids, ids.NumUsers(), s.Seed+5)
	nMovers := len(located) / 8
	if nMovers < 64 {
		nMovers = 64
	}
	if nMovers >= len(located) {
		return fmt.Errorf("exp: subscribe: population too small (%d located)", len(located))
	}
	if nSubs > len(located)-nMovers {
		nSubs = len(located) - nMovers
	}
	// Movers and subscribers are disjoint: a moving subscriber is always
	// dirty by definition, which measures evaluation cost, not the Lemma-2
	// skip test this experiment exists to exercise.
	movers := make([]ssrq.UserID, nMovers)
	for i := range movers {
		movers[i] = ssrq.UserID(located[i])
	}
	subscribers := make([]ssrq.UserID, nSubs)
	for i := range subscribers {
		subscribers[i] = ssrq.UserID(located[nMovers+i])
	}

	const k = 10
	const rounds, chunk = 60, 64
	tbl := &Table{
		Title: fmt.Sprintf("Continuous subscriptions under migration drift — AIS oracle, k=%d, α=%.1f, %d subscribers, %d movers, %d rounds × %d moves",
			k, DefaultAlpha, nSubs, nMovers, rounds, chunk),
		Columns: []string{"shards", "round p50 (ms)", "p95 (ms)", "p99 (ms)",
			"skip rate", "evals", "skips", "deltas"},
	}
	for _, S := range []int{1, 8} {
		if err := s.runSubscribeCell(rds, ids.Bounds(), S, movers, subscribers, k, rounds, chunk, tbl); err != nil {
			return fmt.Errorf("exp: subscribe (S=%d): %w", S, err)
		}
	}
	tbl.Fprint(s.Out)
	fmt.Fprintln(s.Out, "per-round oracle equivalence, final sweep, SSE teardown goroutine settle: ok")
	return nil
}

func (s *Suite) runSubscribeCell(rds *ssrq.Dataset, bounds spatial.Rect, S int, movers, subscribers []ssrq.UserID, k, rounds, chunk int, tbl *Table) error {
	gBefore := runtime.NumGoroutine()
	eng, err := ssrq.NewEngine(rds, &ssrq.Options{
		GridS:        DefaultS,
		GridLevels:   DefaultLevels,
		NumLandmarks: DefaultM,
		Seed:         s.Seed,
		Shards:       S,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	views := make([]*subView, len(subscribers))
	for i, q := range subscribers {
		sb, err := eng.Subscribe(q, k, DefaultAlpha)
		if err != nil {
			return fmt.Errorf("subscribe user %d: %w", q, err)
		}
		views[i] = &subView{sb: sb}
		if err := views[i].drain(); err != nil {
			return fmt.Errorf("initial delta for %d: %v", q, err)
		}
	}
	base := eng.SubscriptionStats()

	// The migration generator works in the normalized unit square; the root
	// engine speaks raw coordinates, so convert on the way in and out.
	norm := rds.Norms().Spatial
	rng := rand.New(rand.NewSource(s.Seed + 77))
	mig, err := gen.NewMigration(bounds, gen.MigrationConfig{Jitter: 0.06}, rng)
	if err != nil {
		return err
	}

	deltas := 0
	lat := make([]time.Duration, 0, rounds)
	for round := 0; round < rounds; round++ {
		start := time.Now()
		for i := 0; i < chunk; i++ {
			id := movers[rng.Intn(len(movers))]
			cur, ok := eng.UserLocation(id)
			if !ok {
				continue
			}
			next := mig.Next(ssrq.Point{X: cur.X / norm, Y: cur.Y / norm})
			if err := eng.MoveUserAsync(id, ssrq.Point{X: next.X * norm, Y: next.Y * norm}); err != nil {
				return fmt.Errorf("round %d: move user %d: %w", round, id, err)
			}
		}
		eng.SyncSubscriptions()
		lat = append(lat, time.Since(start))

		// Fold new deltas into the client-side views, then audit a rotating
		// window of subscribers against a from-scratch query. The audit also
		// covers skip soundness: a wrongly-skipped subscription serves a
		// stale view that cannot match the oracle.
		for i, v := range views {
			if v.sb.Round() != v.seen {
				deltas++
				if err := v.drain(); err != nil {
					return fmt.Errorf("round %d: subscriber %d: %v", round, subscribers[i], err)
				}
			}
		}
		for p := 0; p < 16; p++ {
			v := views[(round*16+p)%len(views)]
			if err := v.check(eng, fmt.Sprintf("round %d", round)); err != nil {
				return err
			}
		}
	}

	// Final full sweep: every materialized view, the engine-held result, and
	// the oracle must agree exactly.
	for i, v := range views {
		if err := v.drain(); err != nil {
			return fmt.Errorf("final drain: subscriber %d: %v", subscribers[i], err)
		}
		if err := v.check(eng, "final sweep"); err != nil {
			return err
		}
		held := v.sb.Result()
		if len(held) != len(v.view) {
			return fmt.Errorf("final sweep: subscriber %d: Result() has %d entries, view %d",
				subscribers[i], len(held), len(v.view))
		}
		for j := range held {
			if held[j] != v.view[j] {
				return fmt.Errorf("final sweep: subscriber %d: Result() diverges from delta view at rank %d",
					subscribers[i], j)
			}
		}
	}

	st := eng.SubscriptionStats()
	evals := st.Evals - base.Evals
	skips := st.Skips - base.Skips
	if evals == 0 {
		return fmt.Errorf("no subscription evaluations ran — the delta pipeline is dead")
	}
	skipRate := float64(skips) / float64(evals+skips)
	if skipRate <= 0.5 {
		return fmt.Errorf("skip rate %.3f ≤ 0.5 under migration drift (%d evals, %d skips): the Lemma-2 bound test stopped pruning",
			skipRate, evals, skips)
	}

	// Teardown: attach live SSE streams, then Close the engine under churn.
	// Every stream must end and the goroutine count must settle.
	if err := s.subscribeTeardownCheck(eng, movers, norm); err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > gBefore+2 {
		if time.Now().After(deadline) {
			return fmt.Errorf("goroutines did not settle after Close: before=%d now=%d",
				gBefore, runtime.NumGoroutine())
		}
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}

	sum := summarizeLatencies(lat)
	tbl.AddRow(fmt.Sprint(S), ms(sum.P50), ms(sum.P95), ms(sum.P99),
		f2(skipRate), fmt.Sprint(evals), fmt.Sprint(skips), fmt.Sprint(deltas))
	s.record(Measurement{
		Dataset: "gowalla",
		Algo:    core.AIS,
		X:       float64(S),
		Runtime: sum.Mean,
		Queries: len(subscribers),
		P50:     sum.P50,
		P95:     sum.P95,
		P99:     sum.P99,
		Extra: map[string]float64{
			"skip_rate":   skipRate,
			"evals":       float64(evals),
			"skips":       float64(skips),
			"deltas":      float64(deltas),
			"subscribers": float64(len(subscribers)),
			"movers":      float64(len(movers)),
		},
	})
	return nil
}

// subscribeTeardownCheck opens live SSE streams against the engine's HTTP
// server, keeps the world churning, then closes the engine — every stream
// must terminate promptly.
func (s *Suite) subscribeTeardownCheck(eng *ssrq.Engine, movers []ssrq.UserID, norm float64) error {
	ts := httptest.NewServer(httpapi.New(eng))
	defer ts.Close()

	streams := make([]*http.Response, 0, 3)
	defer func() {
		for _, resp := range streams {
			resp.Body.Close()
		}
	}()
	for i := 0; i < 3; i++ {
		url := fmt.Sprintf("%s/subscribe?user=%d&k=5&alpha=%g", ts.URL, movers[i], DefaultAlpha)
		resp, err := http.Get(url)
		if err != nil {
			return fmt.Errorf("open SSE stream: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return fmt.Errorf("SSE stream status %d", resp.StatusCode)
		}
		streams = append(streams, resp)
		// Wait for the initial snapshot event so the stream is live before
		// the engine goes down.
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "data: ") {
				break
			}
		}
	}
	for i := 0; i < 32; i++ {
		id := movers[i%len(movers)]
		cur, ok := eng.UserLocation(id)
		if !ok {
			continue
		}
		if err := eng.MoveUserAsync(id, ssrq.Point{X: cur.X + 0.001*norm, Y: cur.Y}); err != nil {
			return err
		}
	}

	eng.Close()

	for i, resp := range streams {
		done := make(chan struct{})
		go func(body *http.Response) {
			sc := bufio.NewScanner(body.Body)
			for sc.Scan() {
			}
			close(done)
		}(resp)
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			return fmt.Errorf("SSE stream %d still open 10s after engine Close", i)
		}
	}
	return nil
}

// subView is one subscriber's client-side state: the view materialized
// purely from its delta stream, exactly as an SSE consumer would hold it.
type subView struct {
	sb   *ssrq.Subscription
	view []ssrq.Entry
	seen uint64
}

// drain folds any new delta into the view (no-op when the result version
// hasn't moved).
func (v *subView) drain() error {
	if v.sb.Round() == v.seen {
		return nil
	}
	d := v.sb.Delta()
	m := make(map[int32]ssrq.Entry, len(v.view)+len(d.Added))
	for _, e := range v.view {
		m[e.ID] = e
	}
	for _, id := range d.Removed {
		if _, ok := m[id]; !ok {
			return fmt.Errorf("delta removes %d which the view never held", id)
		}
		delete(m, id)
	}
	for _, e := range d.Rescored {
		if _, ok := m[e.ID]; !ok {
			return fmt.Errorf("delta rescores %d which the view never held", e.ID)
		}
		m[e.ID] = e
	}
	for _, e := range d.Added {
		if _, ok := m[e.ID]; ok {
			return fmt.Errorf("delta adds %d which the view already holds", e.ID)
		}
		m[e.ID] = e
	}
	v.view = v.view[:0]
	for _, e := range m {
		v.view = append(v.view, e)
	}
	sort.Slice(v.view, func(i, j int) bool {
		if v.view[i].F != v.view[j].F {
			return v.view[i].F < v.view[j].F
		}
		return v.view[i].ID < v.view[j].ID
	})
	v.seen = d.Round
	return nil
}

// check compares the materialized view against a from-scratch query at a
// quiescent point.
func (v *subView) check(eng *ssrq.Engine, label string) error {
	prm := v.sb.Params()
	want, err := eng.TopKWith(ssrq.AIS, v.sb.User(), prm.K, prm.Alpha)
	if err != nil {
		return fmt.Errorf("%s: oracle query for %d: %w", label, v.sb.User(), err)
	}
	if len(v.view) != len(want.Entries) {
		return fmt.Errorf("%s: subscriber %d: view has %d entries, oracle %d",
			label, v.sb.User(), len(v.view), len(want.Entries))
	}
	for i := range v.view {
		if v.view[i].ID != want.Entries[i].ID || math.Abs(v.view[i].F-want.Entries[i].F) > 1e-12 {
			return fmt.Errorf("%s: subscriber %d rank %d: view (id=%d f=%v), oracle (id=%d f=%v)",
				label, v.sb.User(), i, v.view[i].ID, v.view[i].F, want.Entries[i].ID, want.Entries[i].F)
		}
	}
	return nil
}
