package ch

import (
	"fmt"

	"ssrq/internal/graph"
)

// EdgeChange describes one effective base-graph edge mutation, the unit the
// repair path reasons about. HadOld/HasNew distinguish insertion (false/true),
// deletion (true/false) and reweight (true/true).
type EdgeChange struct {
	U, V   graph.VertexID
	OldW   float64
	HadOld bool
	NewW   float64
	HasNew bool
}

// decreaseOnly reports whether the change can only shrink graph distances: an
// insertion, or a reweight downwards. Equal-weight rewrites count too (they
// change nothing).
func (c EdgeChange) decreaseOnly() bool {
	return c.HasNew && (!c.HadOld || c.NewW <= c.OldW)
}

// Dynamic maintains an epoch-tagged contraction hierarchy under social edge
// churn — the CH mirror of landmark.Dynamic. It is writer-side state: all
// methods must be externally serialized (the aggregate index calls them under
// its writer lock); hierarchies handed out by Current are immutable and safe
// for unlimited concurrent queries.
//
// Each hierarchy carries the social epoch of the graph it was built on.
// Readers (via the published aggindex Snapshot) serve CH queries only while
// the snapshot's social epoch equals the hierarchy's build epoch; otherwise
// the variants are refused and a background rebuild (or the bounded in-place
// repair below) restores freshness.
//
// Repair strategy per batch of edge changes:
//
//   - insertions / weight decreases: distances can only shrink, so every
//     witness path that justified omitting a shortcut in the previous build
//     still exists (and only got shorter). The hierarchy is re-derived by
//     replaying the previous contraction order: vertices whose adjacency is
//     untouched replay their recorded shortcuts verbatim (no witness
//     searches), while vertices in the dirty cone — changed endpoints plus
//     every vertex whose row a re-contraction rewrote — are re-contracted
//     with fresh witness searches. The cone is bounded by the repair budget;
//     past it the repair aborts and the caller falls back to a full rebuild.
//     Note the budget bounds only the witness-search work (the part of a
//     build that is super-linear and dominates on dense graphs); every
//     repair additionally pays a linear replay floor — O(n + m + shortcuts)
//     to clone the adjacency and re-apply recorded shortcuts — comparable to
//     one landmark Dijkstra, and it runs under the owner's writer lock.
//     Deployments where even that floor is too much per edge batch should
//     disable repair (budget < 0) and let every churn epoch take the
//     asynchronous rebuild path instead.
//
//   - deletions / weight increases: a removed edge may have been the witness
//     path that justified omitting a shortcut *anywhere* in the graph, and
//     that dependency is not recorded (witness search spaces are ephemeral).
//     Repair therefore always reports failure and the caller schedules the
//     asynchronous full rebuild — exactly the asymmetry of the landmark
//     layer, where increaseRepair is the expensive direction.
type Dynamic struct {
	opts   Options
	budget int // max re-contracted vertices per repair; <= 0 disables repair

	h     *CH
	epoch uint64

	// Counters (writer-side; read via Stats under the owner's lock).
	repairs      int64 // in-place repairs that completed within budget
	recontracted int64 // vertices re-contracted across all repairs
	fallbacks    int64 // repair attempts that deferred to a full rebuild
	installs     int64 // full hierarchies installed (rebuilds + forced)
}

// DefaultRepairBudget caps how many vertices one in-place repair may
// re-contract before deferring to a full rebuild.
const DefaultRepairBudget = 512

// NewDynamic builds the initial hierarchy over g (social epoch 0) and wraps
// it for dynamic maintenance. repairBudget caps the re-contraction cone per
// repair; 0 selects DefaultRepairBudget, negative disables in-place repair
// entirely (every churn epoch defers to the rebuild path).
func NewDynamic(g *graph.Graph, opts Options, repairBudget int) (*Dynamic, error) {
	if opts.WitnessSettleLimit == 0 {
		opts.WitnessSettleLimit = DefaultOptions().WitnessSettleLimit
	}
	if opts.MaxContractDegree == 0 {
		opts.MaxContractDegree = DefaultOptions().MaxContractDegree
	}
	if repairBudget == 0 {
		repairBudget = DefaultRepairBudget
	}
	h, err := Build(g, opts)
	if err != nil {
		return nil, fmt.Errorf("ch: initial build: %w", err)
	}
	return &Dynamic{opts: opts, budget: repairBudget, h: h}, nil
}

// Current returns the latest hierarchy and the social epoch it was built at.
func (d *Dynamic) Current() (*CH, uint64) { return d.h, d.epoch }

// BuildFresh contracts g from scratch with the wrapper's options. It runs
// without any lock (the expensive part of the rebuild pipeline); stop makes
// it abort early with ErrInterrupted during shutdown.
func (d *Dynamic) BuildFresh(g *graph.Graph, stop func() bool) (*CH, error) {
	return BuildInterruptible(g, d.opts, stop)
}

// Install publishes h (freshly built against the graph of social epoch
// `epoch`) as the current hierarchy. The caller must guarantee the match.
func (d *Dynamic) Install(h *CH, epoch uint64) {
	d.h = h
	d.epoch = epoch
	d.installs++
}

// Stats reports the maintenance counters.
func (d *Dynamic) Stats() (repairs, recontracted, fallbacks, installs int64) {
	return d.repairs, d.recontracted, d.fallbacks, d.installs
}

// Repair attempts to advance the current hierarchy to newEpoch in place by
// replaying the previous contraction order on g (the post-change graph),
// re-contracting only the dirty cone. It returns true on success — the
// caller's next publish carries a fresh hierarchy with no refusal window —
// and false when the batch contains a deletion/increase, the cone blows the
// budget, or repair is disabled; the hierarchy is then left untouched at its
// old epoch and the caller schedules a full rebuild.
//
// The caller must pass the complete set of effective changes between the
// hierarchy's build epoch and newEpoch (in practice: repair is attempted only
// when the hierarchy is exactly one epoch behind, with that epoch's batch).
func (d *Dynamic) Repair(g *graph.Graph, changes []EdgeChange, newEpoch uint64) bool {
	if d.budget <= 0 || d.h.rec == nil {
		d.fallbacks++
		return false
	}
	for _, c := range changes {
		if !c.HadOld && !c.HasNew {
			continue
		}
		if !c.decreaseOnly() {
			d.fallbacks++
			return false
		}
	}
	n := g.NumVertices()
	if n != d.h.n {
		d.fallbacks++
		return false
	}
	rec := d.h.rec

	// Replay adjacency, seeded from the post-change graph.
	adj := make([][]edge, n)
	for v := 0; v < n; v++ {
		nbrs, ws := g.Neighbors(graph.VertexID(v))
		row := make([]edge, len(nbrs))
		for i := range nbrs {
			row[i] = edge{nbrs[i], ws[i]}
		}
		adj[v] = row
	}
	dirty := make([]bool, n)
	for _, c := range changes {
		if c.HadOld && c.HasNew && c.NewW == c.OldW {
			continue
		}
		dirty[c.U] = true
		dirty[c.V] = true
	}

	// Replay the old contraction order. Ranks, core membership and the order
	// itself are reused (any fixed order yields a correct hierarchy; the
	// order only tunes performance, and periodic full rebuilds re-optimize
	// it). No priority queue, no deleted-neighbors bookkeeping.
	b := &builder{
		g:          g,
		adj:        adj,
		contracted: make([]bool, n),
		core:       rec.core,
		rank:       d.h.rank,
		settleCap:  d.opts.WitnessSettleLimit,
		degCap:     d.opts.MaxContractDegree,
		wDist:      make([]float64, n),
		wMark:      make([]uint32, n),
		scRec:      make([][]shortcut, n),
		order:      rec.order,
	}
	cone := 0
	for _, v := range rec.order {
		sc := rec.sc[v]
		if dirty[v] {
			cone++
			if cone > d.budget {
				d.fallbacks++
				return false
			}
			sc = b.simulate(v)
			// Any difference against the recorded shortcuts rewrites a
			// higher-ranked vertex's row: that vertex joins the cone before
			// its own turn (shortcut endpoints always outrank the middle).
			markShortcutDiff(dirty, rec.sc[v], sc)
		}
		b.replayContract(v, sc)
		b.scRec[v] = sc
	}
	nh, err := b.finish(d.h.coreRank, d.h.coreSize)
	if err != nil {
		d.fallbacks++
		return false
	}
	d.h = nh
	d.epoch = newEpoch
	d.repairs++
	d.recontracted += int64(cone)
	return true
}

// replayContract marks v contracted and applies a known shortcut set —
// contract without the priority bookkeeping the replay never reads.
func (b *builder) replayContract(v graph.VertexID, sc []shortcut) {
	b.contracted[v] = true
	for _, s := range sc {
		b.addOrImprove(s.u, s.w, s.dist)
		b.addOrImprove(s.w, s.u, s.dist)
		b.shortcuts++
	}
}

// markShortcutDiff marks dirty the endpoints of every shortcut present in
// exactly one of the two sets (or present in both with different weights) —
// the vertices whose adjacency the re-contraction rewrote relative to the
// recorded build. Both lists hold each unordered pair once with u < w, so a
// pair map suffices.
func markShortcutDiff(dirty []bool, old, fresh []shortcut) {
	if len(old) == 0 && len(fresh) == 0 {
		return
	}
	type pair struct{ u, w graph.VertexID }
	om := make(map[pair]float64, len(old))
	for _, s := range old {
		om[pair{s.u, s.w}] = s.dist
	}
	for _, s := range fresh {
		k := pair{s.u, s.w}
		if d, ok := om[k]; ok && d == s.dist {
			delete(om, k)
			continue
		}
		delete(om, k)
		dirty[s.u] = true
		dirty[s.w] = true
	}
	for k := range om {
		dirty[k.u] = true
		dirty[k.w] = true
	}
}
