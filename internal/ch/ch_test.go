package ch

import (
	"math/rand"
	"testing"

	"ssrq/internal/graph"
)

func randomGraph(rng *rand.Rand, n, extra int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		_ = b.AddEdge(graph.VertexID(u), graph.VertexID(v), 0.1+rng.Float64()*9.9)
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			_ = b.AddEdge(graph.VertexID(u), graph.VertexID(v), 0.1+rng.Float64()*9.9)
		}
	}
	return b.MustBuild()
}

func TestBuildValidation(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(1)), 5, 5)
	if _, err := Build(g, Options{WitnessSettleLimit: -1}); err == nil {
		t.Fatal("negative settle limit accepted")
	}
	if _, err := Build(g, Options{MaxContractDegree: -1}); err == nil {
		t.Fatal("negative degree cap accepted")
	}
	// Zero fields take defaults.
	if _, err := Build(g, Options{}); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
}

func TestCoreVariantStaysExact(t *testing.T) {
	// A tiny degree cap forces most vertices into the core; distances must
	// stay exact (the upward search wanders the core plateau).
	rng := rand.New(rand.NewSource(21))
	for _, cap := range []int{2, 4, 8} {
		g := randomGraph(rng, 60, 150)
		c, err := Build(g, Options{WitnessSettleLimit: 60, MaxContractDegree: cap})
		if err != nil {
			t.Fatal(err)
		}
		if cap <= 4 && c.CoreSize() == 0 {
			t.Fatalf("cap %d formed no core on a dense graph", cap)
		}
		for probe := 0; probe < 25; probe++ {
			s := graph.VertexID(rng.Intn(60))
			tgt := graph.VertexID(rng.Intn(60))
			want := g.DijkstraTo(s, tgt)
			got, _ := c.Dist(s, tgt)
			if diff := got - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("cap %d: Dist(%d,%d) = %v, want %v (core %d)", cap, s, tgt, got, want, c.CoreSize())
			}
		}
	}
}

func TestHubGraphBuildsQuickly(t *testing.T) {
	// A star-of-stars with huge hubs: contraction must not blow up.
	b := graph.NewBuilder(2001)
	for h := 0; h < 4; h++ {
		hub := graph.VertexID(h)
		for v := 4 + h; v < 2001; v += 4 {
			_ = b.AddEdge(hub, graph.VertexID(v), 1+float64(v%7))
		}
	}
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 2, 1)
	_ = b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	c, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for probe := 0; probe < 20; probe++ {
		s := graph.VertexID(rng.Intn(2001))
		tgt := graph.VertexID(rng.Intn(2001))
		want := g.DijkstraTo(s, tgt)
		got, _ := c.Dist(s, tgt)
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("Dist(%d,%d) = %v, want %v", s, tgt, got, want)
		}
	}
}

func TestDistMatchesDijkstraSmall(t *testing.T) {
	// Fixed tiny graph: verify all pairs.
	b := graph.NewBuilder(6)
	edges := []struct {
		u, v graph.VertexID
		w    float64
	}{
		{0, 1, 1}, {1, 2, 2}, {2, 3, 1}, {3, 4, 3}, {4, 5, 1}, {0, 5, 10}, {1, 4, 4},
	}
	for _, e := range edges {
		_ = b.AddEdge(e.u, e.v, e.w)
	}
	g := b.MustBuild()
	c, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 6; s++ {
		want := g.DistancesFrom(graph.VertexID(s))
		for v := 0; v < 6; v++ {
			got, _ := c.Dist(graph.VertexID(s), graph.VertexID(v))
			if diff := got - want[v]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("Dist(%d,%d) = %v, want %v", s, v, got, want[v])
			}
		}
	}
}

func TestDistMatchesDijkstraRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 12; trial++ {
		n := 5 + rng.Intn(80)
		g := randomGraph(rng, n, rng.Intn(3*n))
		c, err := Build(g, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 15; probe++ {
			s := graph.VertexID(rng.Intn(n))
			tgt := graph.VertexID(rng.Intn(n))
			want := g.DijkstraTo(s, tgt)
			got, _ := c.Dist(s, tgt)
			if diff := got - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d: Dist(%d,%d) = %v, want %v (shortcuts=%d)",
					trial, s, tgt, got, want, c.Shortcuts())
			}
		}
	}
}

func TestDistUnreachable(t *testing.T) {
	b := graph.NewBuilder(4)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	c, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := c.Dist(0, 3); d != graph.Infinity {
		t.Fatalf("cross-component Dist = %v", d)
	}
	if d, _ := c.Dist(2, 2); d != 0 {
		t.Fatalf("self Dist = %v", d)
	}
}

func TestRanksValid(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(9)), 30, 60)
	c, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Non-core ranks are distinct; core vertices (if any) share the top
	// rank, and exactly CoreSize of them exist.
	seen := map[int32]int{}
	topCount := 0
	for v := 0; v < 30; v++ {
		r := c.Rank(graph.VertexID(v))
		if r < 0 || int(r) > 30 {
			t.Fatalf("rank of %d = %d out of range", v, r)
		}
		seen[r]++
		if seen[r] > 1 {
			topCount = seen[r]
		}
	}
	if c.CoreSize() == 0 && topCount > 1 {
		t.Fatal("duplicate ranks without a core")
	}
}

func TestTinyWitnessLimitStillCorrect(t *testing.T) {
	// A settle limit of 1 forces many redundant shortcuts, but distances
	// must stay exact.
	rng := rand.New(rand.NewSource(12))
	g := randomGraph(rng, 40, 80)
	c, err := Build(g, Options{WitnessSettleLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.Shortcuts() < loose.Shortcuts() {
		t.Fatalf("tight witness limit created fewer shortcuts (%d < %d)", c.Shortcuts(), loose.Shortcuts())
	}
	for probe := 0; probe < 30; probe++ {
		s := graph.VertexID(rng.Intn(40))
		tgt := graph.VertexID(rng.Intn(40))
		want := g.DijkstraTo(s, tgt)
		got, _ := c.Dist(s, tgt)
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("Dist(%d,%d) = %v, want %v", s, tgt, got, want)
		}
	}
}

func TestPopsReported(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(15)), 50, 100)
	c, err := Build(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, pops := c.Dist(0, 49)
	if pops <= 0 {
		t.Fatalf("pops = %d", pops)
	}
}
