package ch

import (
	"math/rand"
	"testing"

	"ssrq/internal/graph"
)

// applyChange mutates an overlay per one EdgeChange and returns the change
// (test helper keeping model and overlay in lock step).
func applyChange(t *testing.T, ov *graph.Overlay, c EdgeChange) {
	t.Helper()
	var err error
	if c.HasNew {
		_, err = ov.SetEdge(c.U, c.V, c.NewW)
	} else {
		_, err = ov.RemoveEdge(c.U, c.V)
	}
	if err != nil {
		t.Fatal(err)
	}
}

// randDecrease draws a random insertion or downward reweight against ov.
func randDecrease(rng *rand.Rand, ov *graph.Overlay, n int) (EdgeChange, bool) {
	u, v := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
	if u == v {
		return EdgeChange{}, false
	}
	old, had := ov.EdgeWeight(u, v)
	c := EdgeChange{U: u, V: v, OldW: old, HadOld: had, HasNew: true}
	if had {
		c.NewW = old * (0.2 + 0.8*rng.Float64()) // strictly not above old
	} else {
		c.NewW = 0.1 + rng.Float64()*9.9
	}
	return c, true
}

// TestRepairMatchesFreshBuild is the incremental-repair exactness property:
// after every repaired batch of insertions/decreases, the repaired hierarchy
// must answer exactly like a from-scratch Build on the mutated graph (both
// are checked against the Dijkstra oracle, so "equals a fresh Build" is
// equality of the distances both must produce).
func TestRepairMatchesFreshBuild(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(3100 + trial)))
		n := 20 + rng.Intn(60)
		g0 := randomGraph(rng, n, rng.Intn(2*n))
		opts := Options{WitnessSettleLimit: 1 + rng.Intn(120), MaxContractDegree: 4 + rng.Intn(48)}
		d, err := NewDynamic(g0, opts, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		ov := graph.NewOverlay(g0)
		epoch := uint64(0)
		for round := 0; round < 5; round++ {
			var batch []EdgeChange
			for len(batch) < 1+rng.Intn(6) {
				c, ok := randDecrease(rng, ov, n)
				if !ok {
					continue
				}
				applyChange(t, ov, c)
				batch = append(batch, c)
			}
			cur := ov.Freeze()
			epoch++
			if !d.Repair(cur, batch, epoch) {
				t.Fatalf("trial %d round %d: decrease-only repair refused", trial, round)
			}
			h, gotEpoch := d.Current()
			if gotEpoch != epoch {
				t.Fatalf("repair left epoch %d, want %d", gotEpoch, epoch)
			}
			fresh, err := Build(cur, opts)
			if err != nil {
				t.Fatal(err)
			}
			for probe := 0; probe < 30; probe++ {
				s := graph.VertexID(rng.Intn(n))
				tgt := graph.VertexID(rng.Intn(n))
				want := cur.DijkstraTo(s, tgt)
				got, _ := h.Dist(s, tgt)
				if diff := got - want; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("trial %d round %d: repaired Dist(%d,%d) = %v, want %v", trial, round, s, tgt, got, want)
				}
				fromFresh, _ := fresh.Dist(s, tgt)
				if diff := fromFresh - want; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("trial %d round %d: fresh Dist(%d,%d) = %v, want %v", trial, round, s, tgt, fromFresh, want)
				}
			}
		}
		repairs, _, fallbacks, _ := d.Stats()
		if repairs != 5 || fallbacks != 0 {
			t.Fatalf("stats: repairs=%d fallbacks=%d, want 5/0", repairs, fallbacks)
		}
	}
}

// TestRepairRefusesRemovalsAndIncreases: deletions and upward reweights can
// break recorded witness omissions non-locally, so the repair path must defer
// them to the rebuild pipeline and leave the hierarchy untouched.
func TestRepairRefusesRemovalsAndIncreases(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := randomGraph(rng, 40, 60)
	d, err := NewDynamic(g, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	before, beforeEpoch := d.Current()
	nbrs, ws := g.Neighbors(0)
	removal := EdgeChange{U: 0, V: nbrs[0], OldW: ws[0], HadOld: true, HasNew: false}
	if d.Repair(g, []EdgeChange{removal}, 1) {
		t.Fatal("removal repaired in place")
	}
	increase := EdgeChange{U: 0, V: nbrs[0], OldW: ws[0], HadOld: true, NewW: ws[0] * 2, HasNew: true}
	if d.Repair(g, []EdgeChange{increase}, 1) {
		t.Fatal("weight increase repaired in place")
	}
	if h, e := d.Current(); h != before || e != beforeEpoch {
		t.Fatal("failed repair mutated the current hierarchy")
	}
	if _, _, fallbacks, _ := d.Stats(); fallbacks != 2 {
		t.Fatalf("fallbacks = %d, want 2", fallbacks)
	}
}

// TestRepairBudgetFallsBack: a tiny cone budget must refuse rather than
// truncate, leaving the old hierarchy intact and correct on the old graph.
func TestRepairBudgetFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	g := randomGraph(rng, 60, 120)
	d, err := NewDynamic(g, Options{}, -1)
	if err != nil {
		t.Fatal(err)
	}
	ov := graph.NewOverlay(g)
	c, _ := randDecrease(rng, ov, 60)
	applyChange(t, ov, c)
	if d.Repair(ov.Freeze(), []EdgeChange{c}, 1) {
		t.Fatal("repair ran with a disabled budget")
	}
	// Old hierarchy still answers the *old* graph exactly (snapshot safety).
	h, _ := d.Current()
	for probe := 0; probe < 20; probe++ {
		s, tgt := graph.VertexID(rng.Intn(60)), graph.VertexID(rng.Intn(60))
		want := g.DijkstraTo(s, tgt)
		got, _ := h.Dist(s, tgt)
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("old hierarchy drifted: Dist(%d,%d)=%v want %v", s, tgt, got, want)
		}
	}
}

// TestRepairedHierarchyStaysRepairable: repairs must chain — each generation
// carries a usable record for the next decrease batch.
func TestRepairedHierarchyStaysRepairable(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	g := randomGraph(rng, 50, 100)
	d, err := NewDynamic(g, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ov := graph.NewOverlay(g)
	for i := 0; i < 12; i++ {
		c, ok := randDecrease(rng, ov, 50)
		if !ok {
			continue
		}
		applyChange(t, ov, c)
		cur := ov.Freeze()
		if !d.Repair(cur, []EdgeChange{c}, uint64(i+1)) {
			t.Fatalf("repair %d refused", i)
		}
		h, _ := d.Current()
		for probe := 0; probe < 10; probe++ {
			s, tgt := graph.VertexID(rng.Intn(50)), graph.VertexID(rng.Intn(50))
			want := cur.DijkstraTo(s, tgt)
			got, _ := h.Dist(s, tgt)
			if diff := got - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("repair %d: Dist(%d,%d)=%v want %v", i, s, tgt, got, want)
			}
		}
	}
}

// TestBuildInterruptible: a stop that fires immediately aborts with
// ErrInterrupted; a nil stop behaves like Build.
func TestBuildInterruptible(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(7)), 30, 40)
	if _, err := BuildInterruptible(g, Options{}, func() bool { return true }); err != ErrInterrupted {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if _, err := BuildInterruptible(g, Options{}, nil); err != nil {
		t.Fatal(err)
	}
}
