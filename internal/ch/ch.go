// Package ch implements Contraction Hierarchies, the pre-computation-based
// point-to-point shortest-path technique the paper benchmarks against in
// Fig. 8 (the SFA-CH / SPA-CH / TSA-CH variants, following [44]).
//
// Preprocessing contracts vertices in ascending importance (edge difference
// + deleted-neighbors heuristic with lazy priority updates), inserting
// shortcut edges whenever no witness path survives the removal. Social
// networks concentrate adjacency in hubs whose contraction is quadratic in
// degree, so — as production CH implementations do for dense cores — hubs
// whose uncontracted degree exceeds MaxContractDegree are left uncontracted
// in a *core*: a top tier of mutually-reachable maximal-rank vertices.
// Queries run an upward bidirectional Dijkstra that may traverse the core
// plateau freely; the standard peak-path argument extends because core
// vertices never need valley replacement.
//
// CH shines on near-planar road networks; on dense small-world social
// graphs the large core and shortcut fill make queries slow — exactly the
// behaviour the paper reports, and the reason the CH variants lose to plain
// incremental Dijkstra in Fig. 8.
package ch

import (
	"errors"
	"fmt"

	"ssrq/internal/graph"
	"ssrq/internal/pqueue"
)

// ErrInterrupted is returned by BuildInterruptible when the stop callback
// fired before preprocessing finished.
var ErrInterrupted = errors.New("ch: build interrupted")

type edge struct {
	to graph.VertexID
	w  float64
}

// Options tune preprocessing.
type Options struct {
	// WitnessSettleLimit caps the vertices a witness search may settle. An
	// inconclusive search adds the shortcut (correct, possibly redundant).
	WitnessSettleLimit int
	// MaxContractDegree keeps vertices whose current uncontracted degree
	// exceeds the cap in the uncontracted core instead of contracting them.
	MaxContractDegree int
}

// DefaultOptions mirror common CH implementations.
func DefaultOptions() Options {
	return Options{WitnessSettleLimit: 120, MaxContractDegree: 48}
}

// CH is a built hierarchy. It is immutable and safe for concurrent queries.
type CH struct {
	n         int
	rank      []int32
	coreRank  int32
	upOff     []int32
	upTgt     []graph.VertexID
	upW       []float64
	shortcuts int
	coreSize  int

	// rec is the repair record Dynamic replays incremental re-contractions
	// against. Its memory cost is one shortcut list mirror (~Shortcuts()
	// entries) plus the contraction order; hierarchies produced by repair or
	// rebuild keep carrying it so every generation stays repairable.
	rec *repairRecord
}

// repairRecord captures what a bounded repair needs to replay the build: the
// contraction order, which vertices stayed in the core, and — per contracted
// vertex — the shortcuts its contraction inserted (the part of the build that
// cannot be reconstructed from the upward CSR, whose rows only keep each
// vertex's *own* contraction-time adjacency).
type repairRecord struct {
	order []graph.VertexID // contracted vertices in ascending rank
	core  []bool
	sc    [][]shortcut // indexed by vertex; nil for core vertices
}

// Build contracts g into a hierarchy. Zero option fields take defaults;
// negative values are rejected.
func Build(g *graph.Graph, opts Options) (*CH, error) {
	return BuildInterruptible(g, opts, nil)
}

// BuildInterruptible is Build with a cooperative cancellation hook: stop is
// polled once per contraction step and a true return aborts preprocessing
// with ErrInterrupted. Background rebuilds use it so an
// index shutdown never has to wait out a full contraction of a large graph.
func BuildInterruptible(g *graph.Graph, opts Options, stop func() bool) (*CH, error) {
	if opts.WitnessSettleLimit == 0 {
		opts.WitnessSettleLimit = DefaultOptions().WitnessSettleLimit
	}
	if opts.MaxContractDegree == 0 {
		opts.MaxContractDegree = DefaultOptions().MaxContractDegree
	}
	if opts.WitnessSettleLimit < 0 {
		return nil, fmt.Errorf("ch: WitnessSettleLimit must be positive, got %d", opts.WitnessSettleLimit)
	}
	if opts.MaxContractDegree < 0 {
		return nil, fmt.Errorf("ch: MaxContractDegree must be positive, got %d", opts.MaxContractDegree)
	}
	n := g.NumVertices()
	adj := make([][]edge, n)
	for v := 0; v < n; v++ {
		nbrs, ws := g.Neighbors(graph.VertexID(v))
		adj[v] = make([]edge, len(nbrs))
		for i := range nbrs {
			adj[v][i] = edge{nbrs[i], ws[i]}
		}
	}

	b := &builder{
		g:          g,
		adj:        adj,
		contracted: make([]bool, n),
		core:       make([]bool, n),
		deleted:    make([]int32, n),
		rank:       make([]int32, n),
		settleCap:  opts.WitnessSettleLimit,
		degCap:     opts.MaxContractDegree,
		wDist:      make([]float64, n),
		wMark:      make([]uint32, n),
		scRec:      make([][]shortcut, n),
	}

	pq := pqueue.NewIndexedHeap(n)
	for v := 0; v < n; v++ {
		pq.PushOrUpdate(graph.VertexID(v), b.quickPriority(graph.VertexID(v)))
	}

	next := int32(0)
	for {
		if stop != nil && stop() {
			return nil, ErrInterrupted
		}
		v, _, ok := pq.PopMin()
		if !ok {
			break
		}
		if b.unDegree(v) > b.degCap {
			b.core[v] = true
			continue
		}
		// Lazy update: re-evaluate; if the node no longer beats the heap
		// head, requeue with the fresh priority.
		sc := b.simulate(v)
		prio := b.priority(v, len(sc))
		if _, headKey, ok := pq.PeekMin(); ok && prio > headKey {
			pq.PushOrUpdate(v, prio)
			continue
		}
		b.contract(v, sc)
		b.order = append(b.order, v)
		b.scRec[v] = sc
		b.rank[v] = next
		next++
	}
	// Core vertices share the maximal rank.
	coreRank := next
	coreSize := 0
	for v := 0; v < n; v++ {
		if b.core[v] {
			b.rank[v] = coreRank
			coreSize++
		}
	}
	return b.finish(coreRank, coreSize)
}

// builder carries contraction state.
type builder struct {
	g          *graph.Graph
	adj        [][]edge
	contracted []bool
	core       []bool
	deleted    []int32 // contracted-neighbors heuristic term
	rank       []int32
	settleCap  int
	degCap     int
	shortcuts  int
	order      []graph.VertexID // contraction order (repair record)
	scRec      [][]shortcut     // per-vertex shortcuts added (repair record)

	// Witness-search scratch: epoch-stamped distance labels + a lazy heap.
	wDist  []float64
	wMark  []uint32
	wEpoch uint32
	wHeap  pqueue.Heap[graph.VertexID]
}

type shortcut struct {
	u, w graph.VertexID
	dist float64
}

func (b *builder) unDegree(v graph.VertexID) int {
	d := 0
	for _, e := range b.adj[v] {
		if !b.contracted[e.to] {
			d++
		}
	}
	return d
}

// quickPriority is the cheap initial ordering: degree + deleted neighbors.
func (b *builder) quickPriority(v graph.VertexID) float64 {
	return float64(b.unDegree(v)) + float64(b.deleted[v])
}

func (b *builder) priority(v graph.VertexID, needed int) float64 {
	return float64(needed-b.unDegree(v)) + float64(b.deleted[v])
}

// simulate computes the shortcuts contraction of v would need.
func (b *builder) simulate(v graph.VertexID) []shortcut {
	var nbrs []edge
	for _, e := range b.adj[v] {
		if !b.contracted[e.to] {
			nbrs = append(nbrs, e)
		}
	}
	if len(nbrs) < 2 {
		return nil
	}
	var out []shortcut
	for i, ue := range nbrs {
		// Distance cap: the longest via-v path from u to any other neighbor.
		limit := 0.0
		for j, we := range nbrs {
			if j == i {
				continue
			}
			if d := ue.w + we.w; d > limit {
				limit = d
			}
		}
		b.witness(ue.to, v, limit)
		for j, we := range nbrs {
			if we.to <= ue.to || j == i {
				continue // each unordered pair once
			}
			via := ue.w + we.w
			if wd, ok := b.witnessDist(we.to); !ok || wd > via {
				out = append(out, shortcut{ue.to, we.to, via})
			}
		}
	}
	return out
}

func (b *builder) witnessDist(v graph.VertexID) (float64, bool) {
	if b.wMark[v] != b.wEpoch {
		return 0, false
	}
	return b.wDist[v], true
}

// witness runs a bounded Dijkstra from src among uncontracted vertices,
// skipping banned; settled distances live in the epoch-stamped scratch.
func (b *builder) witness(src, banned graph.VertexID, limit float64) {
	b.wEpoch++
	if b.wEpoch == 0 {
		for i := range b.wMark {
			b.wMark[i] = 0
		}
		b.wEpoch = 1
	}
	b.wHeap.Reset()
	b.wHeap.Push(0, int64(src), src)
	settles := 0
	for b.wHeap.Len() > 0 && settles < b.settleCap {
		e, _ := b.wHeap.Pop()
		v := e.Value
		if b.wMark[v] == b.wEpoch {
			continue // stale heap entry: already settled this epoch
		}
		if e.Key > limit {
			break
		}
		b.wDist[v] = e.Key
		b.wMark[v] = b.wEpoch // marks are set exclusively on settle
		settles++
		for _, ne := range b.adj[v] {
			if b.contracted[ne.to] || ne.to == banned || b.wMark[ne.to] == b.wEpoch {
				continue
			}
			b.wHeap.Push(e.Key+ne.w, int64(ne.to), ne.to)
		}
	}
}

func (b *builder) contract(v graph.VertexID, sc []shortcut) {
	b.contracted[v] = true
	for _, e := range b.adj[v] {
		if !b.contracted[e.to] {
			b.deleted[e.to]++
		}
	}
	for _, s := range sc {
		b.addOrImprove(s.u, s.w, s.dist)
		b.addOrImprove(s.w, s.u, s.dist)
		b.shortcuts++
	}
}

func (b *builder) addOrImprove(u, v graph.VertexID, w float64) {
	for i := range b.adj[u] {
		if b.adj[u][i].to == v {
			if w < b.adj[u][i].w {
				b.adj[u][i].w = w
			}
			return
		}
	}
	b.adj[u] = append(b.adj[u], edge{v, w})
}

// finish converts the contracted adjacency into the upward CSR. An edge
// (v → u) is upward when rank[u] > rank[v], or when both endpoints sit on
// the core plateau (so queries may traverse the core in both directions).
func (b *builder) finish(coreRank int32, coreSize int) (*CH, error) {
	n := len(b.adj)
	c := &CH{
		n: n, rank: b.rank, coreRank: coreRank, shortcuts: b.shortcuts, coreSize: coreSize,
		rec: &repairRecord{order: b.order, core: b.core, sc: b.scRec},
	}
	isUp := func(v int, e edge) bool {
		return b.rank[e.to] > b.rank[v] || (b.core[v] && b.core[e.to])
	}
	c.upOff = make([]int32, n+1)
	for v := 0; v < n; v++ {
		for _, e := range b.adj[v] {
			if isUp(v, e) {
				c.upOff[v+1]++
			}
		}
	}
	for v := 0; v < n; v++ {
		c.upOff[v+1] += c.upOff[v]
	}
	total := c.upOff[n]
	c.upTgt = make([]graph.VertexID, total)
	c.upW = make([]float64, total)
	fill := make([]int32, n)
	for v := 0; v < n; v++ {
		for _, e := range b.adj[v] {
			if isUp(v, e) {
				idx := c.upOff[v] + fill[v]
				c.upTgt[idx] = e.to
				c.upW[idx] = e.w
				fill[v]++
			}
		}
	}
	return c, nil
}

// Shortcuts reports how many shortcut edges preprocessing added.
func (c *CH) Shortcuts() int { return c.shortcuts }

// CoreSize reports how many vertices stayed uncontracted (the hub core).
func (c *CH) CoreSize() int { return c.coreSize }

// Rank returns the contraction order of v (higher = more important; core
// vertices share the maximal rank).
func (c *CH) Rank(v graph.VertexID) int32 { return c.rank[v] }

// chSearch is one direction of the bidirectional upward query.
type chSearch struct {
	dist map[graph.VertexID]float64 // settled distances
	heap pqueue.Heap[graph.VertexID]
}

func newCHSearch(src graph.VertexID) *chSearch {
	s := &chSearch{dist: make(map[graph.VertexID]float64, 32)}
	s.heap.Push(0, int64(src), src)
	return s
}

func (s *chSearch) headKey() float64 {
	for s.heap.Len() > 0 {
		e := s.heap.Peek()
		if _, done := s.dist[e.Value]; done {
			s.heap.Pop() // stale
			continue
		}
		return e.Key
	}
	return graph.Infinity
}

// Dist returns the exact s-t distance (graph.Infinity when unreachable)
// and the number of vertices settled across both upward searches.
//
// Both directions run Dijkstra over the upward (and core-plateau) graph.
// Unlike meet-in-the-middle bidirectional Dijkstra, CH searches *overlap*
// at the path's peak, so the safe stopping rule is per-direction: a
// direction keeps settling until its own head key reaches the best meeting
// μ (then every peak of a shorter path would already be settled by both
// sides). Early termination matters on social networks, where an exhaustive
// upward exploration would wander the whole hub core on every query.
func (c *CH) Dist(s, t graph.VertexID) (float64, int) {
	if s == t {
		return 0, 0
	}
	fwd, bwd := newCHSearch(s), newCHSearch(t)
	best := graph.Infinity
	pops := 0
	for {
		headF, headB := fwd.headKey(), bwd.headKey()
		activeF, activeB := headF < best, headB < best
		if !activeF && !activeB {
			break
		}
		adv, other := fwd, bwd
		if !activeF || (activeB && headB < headF) {
			adv, other = bwd, fwd
		}
		e, _ := adv.heap.Pop()
		v := e.Value
		if _, done := adv.dist[v]; done {
			continue
		}
		adv.dist[v] = e.Key
		pops++
		if od, ok := other.dist[v]; ok {
			if d := e.Key + od; d < best {
				best = d
			}
		}
		lo, hi := c.upOff[v], c.upOff[v+1]
		for i := lo; i < hi; i++ {
			u := c.upTgt[i]
			nd := e.Key + c.upW[i]
			if _, done := adv.dist[u]; !done {
				adv.heap.Push(nd, int64(u), u)
			}
			// Relaxation-time meeting check (required for the sum-rule
			// stopping condition to be safe).
			if od, ok := other.dist[u]; ok {
				if d := nd + od; d < best {
					best = d
				}
			}
		}
	}
	return best, pops
}
