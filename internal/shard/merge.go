package shard

import (
	"ssrq/internal/core"
	"ssrq/internal/pqueue"
)

// MergeTopK combines per-shard top-k lists — each already sorted ascending
// by (F, ID), the engines' canonical order — into the global top-k with a
// k-way merge heap: one heap entry per list, keyed by the list head's
// (F, ID), popped and refilled until k entries are emitted or every list is
// exhausted. Duplicate user IDs (possible only in the transient window where
// a cross-shard mover is visible in two shards' snapshots) keep their first
// — best-ranked — occurrence.
//
// Because the inputs are sorted by exactly the comparator the per-shard topK
// uses, the merge output equals concatenate-sort-truncate, which the
// FuzzShardMerge target and the differential harness hold it to.
func MergeTopK(k int, lists ...[]core.Entry) []core.Entry {
	if k <= 0 {
		return nil
	}
	h := pqueue.NewHeap[int](len(lists))
	pos := make([]int, len(lists))
	for i, l := range lists {
		if len(l) > 0 {
			h.Push(l[0].F, int64(l[0].ID), i)
		}
	}
	seen := make(map[int32]struct{}, k)
	out := make([]core.Entry, 0, k)
	for len(out) < k && h.Len() > 0 {
		e, _ := h.Pop()
		i := e.Value
		ent := lists[i][pos[i]]
		pos[i]++
		if pos[i] < len(lists[i]) {
			next := lists[i][pos[i]]
			h.Push(next.F, int64(next.ID), i)
		}
		if _, dup := seen[ent.ID]; dup {
			continue
		}
		seen[ent.ID] = struct{}{}
		out = append(out, ent)
	}
	return out
}
