package shard

import (
	"fmt"
	"math"
	"sync"

	"ssrq/internal/aggindex"
	"ssrq/internal/core"
	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// Query answers an SSRQ by parallel fan-out: the query user's home shard is
// searched first (on geo-clustered data it holds most of the answer), its
// kth score becomes the global threshold, and the remaining shards run in
// parallel with that threshold as a seed bound — skipped entirely when their
// best-possible combined Lemma-2 score cannot strictly beat it. A k-way
// merge combines the per-shard lists.
//
// Each shard executes against its own published snapshot, so a fan-out
// observes one consistent epoch per shard (not one global epoch — the
// cross-shard view is only as consistent as independently-published indexes
// can be, and the merge deduplicates the one anomaly that can cause, a
// mid-relocation user visible twice). Once the engine is quiescent (Flush),
// results are exactly the monolithic engine's, ID tiebreaks included: the
// seed bound abandons only strictly-worse candidates, and the merge
// comparator is the engines' own (F, ID) order.
func (se *Engine) Query(algo core.Algorithm, q graph.VertexID, prm core.Params) (*core.Result, error) {
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	if q < 0 || int(q) >= se.ds.NumUsers() {
		return nil, fmt.Errorf("shard: query user %d out of range [0,%d)", q, se.ds.NumUsers())
	}
	se.queries.Add(1)
	home, hsn := se.locateHome(q, true)
	if home < 0 {
		return nil, fmt.Errorf("shard: query user %d has no known location", q)
	}
	qpt := hsn.Grid().Point(q)
	se.shardsQueried.Add(1)
	hres, err := se.shards[home].QueryOn(hsn, algo, q, qpt, math.Inf(1), prm)
	if err != nil {
		return nil, err
	}
	if len(se.shards) == 1 {
		return hres, nil
	}
	se.fanouts.Add(1)

	// The home shard's kth score is the global threshold for the fan-out.
	// With fewer than k home entries there is no threshold yet: every other
	// shard must be searched unbounded.
	bound := math.Inf(1)
	if len(hres.Entries) == prm.K {
		bound = hres.Entries[prm.K-1].F
	}

	results := make([]*core.Result, len(se.shards))
	errs := make([]error, len(se.shards))
	var wg sync.WaitGroup
	for s := range se.shards {
		if s == home {
			continue
		}
		sn := se.shards[s].Snapshot()
		if sn.Grid().NumLocated() == 0 {
			se.shardsEmpty.Add(1)
			continue
		}
		if lb := shardLowerBound(sn, q, qpt, prm.Alpha); lb > bound {
			// No user of this shard can strictly beat the current kth score,
			// and a tie would lose only to an entry already held: skip the
			// whole shard.
			se.shardsPruned.Add(1)
			se.prunedBy[s].Add(1)
			continue
		}
		se.shardsQueried.Add(1)
		wg.Add(1)
		go func(s int, sn *aggindex.Snapshot) {
			defer wg.Done()
			results[s], errs[s] = se.shards[s].QueryOn(sn, algo, q, qpt, bound, prm)
		}(s, sn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	lists := make([][]core.Entry, 0, len(se.shards))
	lists = append(lists, hres.Entries)
	stats := hres.Stats
	for _, r := range results {
		if r != nil {
			lists = append(lists, r.Entries)
			stats.Add(r.Stats)
		}
	}
	return &core.Result{
		Query:   q,
		Params:  prm,
		Entries: MergeTopK(prm.K, lists...),
		Stats:   stats,
	}, nil
}

// locateHome finds the shard whose published snapshot locates q, preferring
// the owner map (the common case) and falling back to a scan for the
// transient window where a routed move has not yet been applied. A
// cross-shard move is a remove on one pipeline and an insert on another, so
// there is a window where *no* snapshot locates a continuously-located
// mover. With flushPending, when the owner map says a shard should hold q
// but its snapshot does not yet, the destination pipeline is drained once
// so a *query* for q never spuriously errors with "no known location" —
// query paths opt into that bounded wait, while plain reads
// (UserLocation) stay non-blocking and may transiently miss a
// mid-relocation user. (Third parties mid-relocation can likewise be
// transiently absent from — or, in the inverse interleaving, duplicated
// across — other users' fan-outs; the merge deduplicates the latter.)
// Returns (-1, nil) when no shard locates the user. q must be in range.
func (se *Engine) locateHome(q graph.VertexID, flushPending bool) (int, *aggindex.Snapshot) {
	if o := se.owner[q].Load(); o >= 0 {
		sn := se.shards[o].Snapshot()
		if sn.Grid().Located(q) {
			return int(o), sn
		}
		if flushPending {
			// Routed but not yet applied: drain the destination pipeline and
			// re-read. Rare (only mid-relocation queriers), bounded.
			se.shards[o].Flush()
			if sn = se.shards[o].Snapshot(); sn.Grid().Located(q) {
				return int(o), sn
			}
		}
	}
	for s := range se.shards {
		sn := se.shards[s].Snapshot()
		if sn.Grid().Located(q) {
			return s, sn
		}
	}
	return -1, nil
}

// shardLowerBound is the shard-level admission test: the minimum over the
// shard's occupied top-level cells of the combined Lemma-2 lower bound
// α·p̲ + (1−α)·d̲ — a lower bound on the f value of *every* user the shard
// locates, computed against the shard's own snapshot (its summaries and
// landmark tables describe exactly its membership). +Inf when the shard is
// empty or provably unreachable.
func shardLowerBound(sn *aggindex.Snapshot, q graph.VertexID, qpt spatial.Point, alpha float64) float64 {
	g := sn.Grid()
	layout := g.Layout()
	qvec := sn.Landmarks().VertexVector(q)
	best := math.Inf(1)
	for idx := int32(0); idx < int32(layout.NumCells(0)); idx++ {
		if g.CountAt(0, idx) == 0 {
			continue
		}
		p := sn.SocialLowerBound(0, idx, qvec)
		d := layout.CellRect(0, idx).MinDist(qpt)
		if f := alpha*p + (1-alpha)*d; f < best {
			best = f
		}
	}
	return best
}

// QueryBatch answers a batch of queries on a pool of workers with exactly
// core.Engine.QueryBatch's contract (one shared implementation —
// core.RunBatch — so the clamping and error semantics cannot drift).
func (se *Engine) QueryBatch(queries []core.BatchQuery, workers int) []core.BatchResult {
	return core.RunBatch(queries, workers, func(bq core.BatchQuery) (*core.Result, error) {
		return se.Query(bq.Algo, bq.Q, bq.Params)
	})
}

// Precompute eagerly builds §5.4 social-distance lists for the given query
// users on every shard (each shard serves AISCache from its own memo).
func (se *Engine) Precompute(users []graph.VertexID) {
	for _, sh := range se.shards {
		sh.Precompute(users)
	}
}

// SpatialKNN returns the k spatially-nearest located users to q across all
// shards (pure one-domain query): per-shard KNN against each published
// snapshot, merged by ascending (distance, ID).
func (se *Engine) SpatialKNN(q int32, k int) ([]spatial.Neighbor, error) {
	if q < 0 || int(q) >= se.ds.NumUsers() {
		return nil, fmt.Errorf("shard: user %d out of range [0,%d)", q, se.ds.NumUsers())
	}
	home, hsn := se.locateHome(q, true)
	if home < 0 {
		return nil, fmt.Errorf("shard: user %d has no known location", q)
	}
	qpt := hsn.Grid().Point(q)
	var all []spatial.Neighbor
	for _, sh := range se.shards {
		g := sh.Snapshot().Grid()
		all = append(all, g.KNN(qpt, k, func(id int32) bool { return id == q })...)
	}
	sortNeighbors(all)
	out := make([]spatial.Neighbor, 0, k)
	seen := make(map[int32]struct{}, k)
	for _, nb := range all {
		if _, dup := seen[nb.ID]; dup {
			continue
		}
		seen[nb.ID] = struct{}{}
		out = append(out, nb)
		if len(out) == k {
			break
		}
	}
	return out, nil
}
