package shard

import (
	"fmt"
	"math"
	"sync"

	"ssrq/internal/aggindex"
	"ssrq/internal/core"
	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// shardOutcome records how a fan-out treated one shard; per-query outcomes
// are accumulated locally and committed to the engine counters only when the
// whole query succeeds, so FanoutStats never over-reports under churn (an
// errored shard visit — e.g. a stale-CH refusal — counts as nothing).
type shardOutcome int8

const (
	outSkipped shardOutcome = iota // not visited (home slot, or error aborted the fan-out)
	outQueried                     // searched successfully
	outPruned                      // skipped by the admission bound (static or live)
	outEmpty                       // skipped as empty
)

// Query answers an SSRQ by parallel fan-out: the query user's home shard is
// searched first (on geo-clustered data it holds most of the answer), and the
// remaining shards run in parallel against a *shared, live* threshold — a
// monotonically-tightening ceiling on the global kth score that every shard's
// search both reads on its termination checks and improves as its own interim
// result fills (core.SharedBound). The home shard seeds it with its kth
// score; from then on the fastest shard tightens the bound for every shard
// still searching. Shards whose best-possible combined Lemma-2 score cannot
// strictly beat the threshold are skipped entirely — checked once before
// launch and re-checked at goroutine start, so a late-launching shard prunes
// against the progress of siblings that already ran without doing any work. A
// k-way merge combines the per-shard lists.
//
// Each shard executes against its own published snapshot, so a fan-out
// observes one consistent epoch per shard (not one global epoch — the
// cross-shard view is only as consistent as independently-published indexes
// can be, and the merge deduplicates the one anomaly that can cause, a
// mid-relocation user visible twice). Once the engine is quiescent (Flush),
// results are exactly the monolithic engine's, ID tiebreaks included: the
// shared threshold only ever holds some shard's fully-evaluated kth score (an
// upper bound on the merged kth), it abandons only strictly-worse candidates,
// and the merge comparator is the engines' own (F, ID) order.
func (se *Engine) Query(algo core.Algorithm, q graph.VertexID, prm core.Params) (*core.Result, error) {
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	if q < 0 || int(q) >= se.ds.NumUsers() {
		return nil, fmt.Errorf("shard: query user %d out of range [0,%d)", q, se.ds.NumUsers())
	}
	home, hsn := se.locateHome(q, true)
	if home < 0 {
		return nil, fmt.Errorf("shard: query user %d has no known location", q)
	}
	qpt := hsn.Grid().Point(q)

	// The live global threshold. The home-shard search publishes its kth
	// score into it as its interim result fills, so by the time the fan-out
	// launches the bound already carries the home answer — and keeps
	// tightening as fan-out shards admit entries.
	sb := core.NewSharedBound(math.Inf(1))
	hres, err := se.shards[home].QueryOn(hsn, algo, q, qpt, sb, prm)
	if err != nil {
		return nil, err
	}
	if len(se.shards) == 1 {
		se.queries.Add(1)
		se.shardsQueried.Add(1)
		return hres, nil
	}

	outcomes := make([]shardOutcome, len(se.shards))
	results := make([]*core.Result, len(se.shards))
	errs := make([]error, len(se.shards))
	var maskPruned int
	var wg sync.WaitGroup
	for s := range se.shards {
		if s == home {
			continue
		}
		sn := se.shards[s].Snapshot()
		if sn.Grid().NumLocated() == 0 {
			outcomes[s] = outEmpty
			continue
		}
		if prm.Filter != 0 && !shardMatchesFilter(sn, prm.Filter) {
			// No located user of this shard carries a requested label: skip it
			// before even computing the Lemma-2 admission bound.
			outcomes[s] = outPruned
			maskPruned++
			continue
		}
		lb := shardLowerBound(sn, q, qpt, prm.Alpha)
		if lb > sb.Load() {
			// No user of this shard can strictly beat the current kth score,
			// and a tie would lose only to an entry already held: skip the
			// whole shard.
			outcomes[s] = outPruned
			continue
		}
		wg.Add(1)
		go func(s int, sn *aggindex.Snapshot, lb float64) {
			defer wg.Done()
			// Siblings that ran while this goroutine waited to be scheduled
			// may have tightened the threshold past this shard's best-possible
			// score: re-check before paying for a search.
			if lb > sb.Load() {
				outcomes[s] = outPruned
				return
			}
			r, err := se.shards[s].QueryOn(sn, algo, q, qpt, sb, prm)
			if err != nil {
				errs[s] = err
				return
			}
			results[s], outcomes[s] = r, outQueried
		}(s, sn, lb)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Success: commit the per-shard outcomes to the engine counters.
	se.queries.Add(1)
	se.fanouts.Add(1)
	se.shardsQueried.Add(1) // home
	for s, o := range outcomes {
		switch o {
		case outQueried:
			se.shardsQueried.Add(1)
		case outPruned:
			se.shardsPruned.Add(1)
			se.prunedBy[s].Add(1)
		case outEmpty:
			se.shardsEmpty.Add(1)
		}
	}

	lists := make([][]core.Entry, 0, len(se.shards))
	lists = append(lists, hres.Entries)
	stats := hres.Stats
	stats.LabelCellPrunes += maskPruned
	for _, r := range results {
		if r != nil {
			lists = append(lists, r.Entries)
			stats.Add(r.Stats)
		}
	}
	return &core.Result{
		Query:   q,
		Params:  prm,
		Entries: MergeTopK(prm.K, lists...),
		Stats:   stats,
	}, nil
}

// locateHome finds the shard whose published snapshot locates q, preferring
// the owner map (the common case) and falling back to a scan for the
// transient window where a routed move has not yet been applied. A
// cross-shard move is a remove on one pipeline and an insert on another, so
// there is a window where *no* snapshot locates a continuously-located
// mover. With flushPending, when the owner map says a shard should hold q
// but its snapshot does not yet, the destination pipeline is drained once
// so a *query* for q never spuriously errors with "no known location" —
// query paths opt into that bounded wait, while plain reads
// (UserLocation) stay non-blocking and may transiently miss a
// mid-relocation user. (Third parties mid-relocation can likewise be
// transiently absent from — or, in the inverse interleaving, duplicated
// across — other users' fan-outs; the merge deduplicates the latter.)
// Returns (-1, nil) when no shard locates the user. q must be in range.
func (se *Engine) locateHome(q graph.VertexID, flushPending bool) (int, *aggindex.Snapshot) {
	if o := se.owner[q].Load(); o >= 0 {
		sn := se.shards[o].Snapshot()
		if sn.Grid().Located(q) {
			return int(o), sn
		}
		if flushPending {
			// Routed but not yet applied: drain the destination pipeline and
			// re-read. Rare (only mid-relocation queriers), bounded.
			se.shards[o].Flush()
			if sn = se.shards[o].Snapshot(); sn.Grid().Located(q) {
				return int(o), sn
			}
		}
	}
	for s := range se.shards {
		sn := se.shards[s].Snapshot()
		if sn.Grid().Located(q) {
			return s, sn
		}
	}
	return -1, nil
}

// shardMatchesFilter reports whether any occupied top-level cell of the
// shard's snapshot carries a label requested by the filter. A false answer is
// exact, not heuristic: each cell mask is the OR of its members' label sets,
// maintained with the same epoch discipline as the min/max summaries, so a
// miss proves no located member of this snapshot can match. An unlabeled
// index (nil masks) holds only unlabeled users, which never match a nonzero
// filter.
func shardMatchesFilter(sn *aggindex.Snapshot, filter uint64) bool {
	masks := sn.LabelMasks(0)
	if masks == nil {
		return false
	}
	g := sn.Grid()
	for idx, m := range masks {
		if m&filter != 0 && g.CountAt(0, int32(idx)) != 0 {
			return true
		}
	}
	return false
}

// shardLowerBound is the shard-level admission test: the minimum over the
// shard's occupied top-level cells of the combined Lemma-2 lower bound
// α·p̲ + (1−α)·d̲ — a lower bound on the f value of *every* user the shard
// locates, computed against the shard's own snapshot (its summaries and
// landmark tables describe exactly its membership). +Inf when the shard is
// empty or provably unreachable.
func shardLowerBound(sn *aggindex.Snapshot, q graph.VertexID, qpt spatial.Point, alpha float64) float64 {
	g := sn.Grid()
	layout := g.Layout()
	qvec := sn.Landmarks().VertexVector(q)
	// One flat batched pass over the level-0 summary arrays instead of a
	// per-cell bound call.
	lows := sn.SocialLowerBoundsInto(0, qvec, nil)
	best := math.Inf(1)
	for idx := int32(0); idx < int32(layout.NumCells(0)); idx++ {
		if g.CountAt(0, idx) == 0 {
			continue
		}
		d := layout.CellRect(0, idx).MinDist(qpt)
		if f := alpha*lows[idx] + (1-alpha)*d; f < best {
			best = f
		}
	}
	return best
}

// QueryBatch answers a batch of queries on a pool of workers with exactly
// core.Engine.QueryBatch's contract (one shared implementation —
// core.RunBatch — so the clamping and error semantics cannot drift).
func (se *Engine) QueryBatch(queries []core.BatchQuery, workers int) []core.BatchResult {
	return core.RunBatch(queries, workers, func(bq core.BatchQuery) (*core.Result, error) {
		return se.Query(bq.Algo, bq.Q, bq.Params)
	})
}

// Precompute eagerly builds §5.4 social-distance lists for the given query
// users on every shard (each shard serves AISCache from its own memo).
func (se *Engine) Precompute(users []graph.VertexID) {
	for _, sh := range se.shards {
		sh.Precompute(users)
	}
}

// SpatialKNN returns the k spatially-nearest located users to q across all
// shards (pure one-domain query): per-shard KNN against each published
// snapshot, merged by ascending (distance, ID).
func (se *Engine) SpatialKNN(q int32, k int) ([]spatial.Neighbor, error) {
	if q < 0 || int(q) >= se.ds.NumUsers() {
		return nil, fmt.Errorf("shard: user %d out of range [0,%d)", q, se.ds.NumUsers())
	}
	home, hsn := se.locateHome(q, true)
	if home < 0 {
		return nil, fmt.Errorf("shard: user %d has no known location", q)
	}
	qpt := hsn.Grid().Point(q)
	var all []spatial.Neighbor
	for _, sh := range se.shards {
		g := sh.Snapshot().Grid()
		all = append(all, g.KNN(qpt, k, func(id int32) bool { return id == q })...)
	}
	sortNeighbors(all)
	out := make([]spatial.Neighbor, 0, k)
	seen := make(map[int32]struct{}, k)
	for _, nb := range all {
		if _, dup := seen[nb.ID]; dup {
			continue
		}
		seen[nb.ID] = struct{}{}
		out = append(out, nb)
		if len(out) == k {
			break
		}
	}
	return out, nil
}
