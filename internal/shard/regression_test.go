package shard

import (
	"math"
	"testing"

	"ssrq/internal/core"
	"ssrq/internal/dataset"
	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// fellBackDataset builds a 5-user star around the query vertex 0 whose
// geometry forces the AISCache list scan to terminate cleanly on the home
// shard while exhausting inconclusively (and falling back to AIS) on the
// remote shard:
//
//	vertex  social dist from 0   location
//	1       1  (list rank 1)     at q's point        -> home shard
//	2       2  (list rank 2)     far corner          -> remote shard
//	3       9  (list rank 3)     at q's point        -> home shard
//	4       20 (beyond t=3)      far corner          -> remote shard
//
// With k=2 and t=3 the home scan admits users 1 and 3 (user 2 is unlocated
// on the home snapshot, so its F is +Inf) and θ-terminates on the last list
// entry. The remote scan sees only user 2 located, never fills k with
// finite scores, and the θ = α·p(3) check ties the shared threshold exactly
// — strict semantics keep it searching — so the list exhausts with user 4
// still unseen: inconclusive, FellBack, AIS fallback. The remote shard's
// admission bound cannot prune it: its cell holds user 2 at social distance
// p(2), so every landmark's Lemma-2 bound is at most p(2) by the triangle
// inequality, far below the home kth score α·p(3).
func fellBackDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	b := graph.NewBuilder(5)
	for _, e := range []struct {
		v graph.VertexID
		w float64
	}{{1, 1}, {2, 2}, {3, 9}, {4, 20}} {
		if err := b.AddEdge(0, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	near := spatial.Point{X: 0.05, Y: 0.05}
	far := spatial.Point{X: 0.95, Y: 0.95}
	pts := []spatial.Point{near, near, far, near, far}
	located := []bool{true, true, true, true, true}
	ds, err := dataset.New("fellback", g, pts, located)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestFanoutFellBackPropagates: when a non-home shard's AISCache falls back
// to AIS, the merged result must report FellBack — Stats.Add used to drop
// the flag of every added execution, so the fan-out reported fell_back=false
// whenever the home shard itself terminated cleanly.
func TestFanoutFellBackPropagates(t *testing.T) {
	ds := fellBackDataset(t)
	opts := core.Options{GridS: 4, GridLevels: 1, NumLandmarks: 3, CacheT: 3, Seed: 7}
	se, err := New(ds, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()

	const q = graph.VertexID(0)
	home := se.ShardOfUser(0)
	remote := se.ShardOfUser(2)
	if home < 0 || remote < 0 || home == remote {
		t.Fatalf("partition did not separate query (shard %d) from remote user (shard %d)", home, remote)
	}
	prm := core.Params{K: 2, Alpha: 0.9}

	// Establish the scenario shard by shard, replaying the fan-out's own
	// sequence: home first (seeding the shared threshold), then the remote
	// shard against it. The regression below is only meaningful while the
	// home scan terminates cleanly and the remote one falls back.
	hsn := se.shards[home].Snapshot()
	qpt := hsn.Grid().Point(0)
	sb := core.NewSharedBound(math.Inf(1))
	hres, err := se.shards[home].QueryOn(hsn, core.AISCache, q, qpt, sb, prm)
	if err != nil {
		t.Fatal(err)
	}
	if hres.Stats.FellBack {
		t.Fatal("home shard fell back; scenario no longer isolates the merge bug")
	}
	rres, err := se.shards[remote].QueryOn(se.shards[remote].Snapshot(), core.AISCache, q, qpt, sb, prm)
	if err != nil {
		t.Fatal(err)
	}
	if !rres.Stats.FellBack {
		t.Fatal("remote shard did not fall back; scenario no longer exercises the merge")
	}

	// The actual regression: the merged stats must carry the remote flag.
	got, err := se.Query(core.AISCache, q, prm)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Stats.FellBack {
		t.Fatal("fan-out merge dropped the remote shard's FellBack flag")
	}
	// And the merged answer is still the exact global one.
	want, err := se.Query(core.BruteForce, q, prm)
	if err != nil {
		t.Fatal(err)
	}
	sameEntries(t, "AIS-Cache with remote fallback", got.Entries, want.Entries)
}

// TestFanoutCountersCountOnlySuccess: FanoutStats counters must move only
// when a query succeeds end-to-end. The fan-out used to bump queries and
// shardsQueried before the home shard could refuse (stale CH under churn),
// and counted an errored fan-out shard as queried.
func TestFanoutCountersCountOnlySuccess(t *testing.T) {
	ds := clusteredDataset(t, 150, 19)
	opts := core.Options{GridS: 3, GridLevels: 2, NumLandmarks: 3, Seed: 19, BuildCH: true}
	se, err := New(ds, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	se.Close() // suppress background CH rebuilds so staleness is deterministic

	users := locatedUsers(ds)
	q := users[0]
	// k exceeds any single shard's located count, so no shard ever fills its
	// interim result, the shared threshold stays +Inf, and every non-empty
	// shard is visited — including the stale ones that will refuse below.
	prm := core.Params{K: 60, Alpha: 0.4}

	diff := func(a, b FanoutStats) FanoutStats {
		return FanoutStats{
			Queries:       b.Queries - a.Queries,
			Fanouts:       b.Fanouts - a.Fanouts,
			ShardsQueried: b.ShardsQueried - a.ShardsQueried,
			ShardsPruned:  b.ShardsPruned - a.ShardsPruned,
			ShardsEmpty:   b.ShardsEmpty - a.ShardsEmpty,
		}
	}

	// Fresh hierarchies: one successful query commits exactly one fan-out
	// visiting all three shards.
	fs0 := se.FanoutStats()
	if _, err := se.Query(core.TSACH, q, prm); err != nil {
		t.Fatal(err)
	}
	fs1 := se.FanoutStats()
	if d := diff(fs0, fs1); d.Queries != 1 || d.Fanouts != 1 || d.ShardsQueried != 3 || d.ShardsPruned != 0 {
		t.Fatalf("successful query committed %+v, want 1 query / 1 fanout / 3 shards queried", d)
	}

	// An edge removal staleness-refuses every shard's hierarchy (removals
	// cannot be repaired in place, and Close suppressed the rebuild).
	nbrs, _ := se.LiveSocialGraph().Neighbors(q)
	if len(nbrs) == 0 {
		t.Fatal("query user has no neighbors to remove")
	}
	if err := se.RemoveFriend(int32(q), nbrs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := se.Query(core.TSACH, q, prm); err == nil {
		t.Fatal("TSA-CH served on stale shard hierarchies")
	}
	if d := diff(fs1, se.FanoutStats()); d != (FanoutStats{}) {
		t.Fatalf("home-shard refusal still committed counters: %+v", d)
	}

	// A second refusal must also commit nothing (repeatability: the stale
	// state is stable until an explicit rebuild, and every errored attempt
	// stays invisible to the counters).
	if _, err := se.Query(core.TSACH, q, prm); err == nil {
		t.Fatal("TSA-CH served again on stale hierarchy")
	}
	if d := diff(fs1, se.FanoutStats()); d != (FanoutStats{}) {
		t.Fatalf("repeated refusal still committed counters: %+v", d)
	}

	// Rebuild the shared hierarchy — one rebuild catches every shard up
	// (staleness is uniform under the shared substrate; there is no
	// per-shard divergence to exercise anymore). A per-shard handle routes
	// to the same substrate, so it must agree there is nothing further.
	if !se.RebuildCH() {
		t.Fatal("RebuildCH found nothing to rebuild")
	}
	home := se.ShardOfUser(int32(q))
	if se.shards[home].RebuildCH() {
		t.Fatal("per-shard RebuildCH rebuilt again after the shared rebuild")
	}
	if _, err := se.Query(core.TSACH, q, prm); err != nil {
		t.Fatal(err)
	}
	if d := diff(fs1, se.FanoutStats()); d.Queries != 1 || d.Fanouts != 1 || d.ShardsQueried != 3 {
		t.Fatalf("recovered query committed %+v, want 1 query / 1 fanout / 3 shards queried", d)
	}
}
