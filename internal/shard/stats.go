package shard

import (
	"sort"

	"ssrq/internal/core"
	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// ShardStat is one shard's live state, the per-shard section of /stats.
type ShardStat struct {
	// Shard is the shard index; Cells how many grid leaf cells it owns.
	Shard int
	Cells int
	// NumLocated is the shard's current located-user count.
	NumLocated int
	// Epoch / SocialEpoch are the shard's published index versions.
	Epoch       uint64
	SocialEpoch uint64
	// PendingUpdates / AppliedBatches describe the shard's updater pipeline.
	PendingUpdates int64
	AppliedBatches int64
	// DisabledLandmarks is the shard's current landmark-maintenance debt.
	DisabledLandmarks int
	// PrunedQueries counts fan-outs that skipped this shard by bound.
	PrunedQueries int64
}

// ShardStats returns a point-in-time view of every shard.
func (se *Engine) ShardStats() []ShardStat {
	out := make([]ShardStat, len(se.shards))
	for s, sh := range se.shards {
		us := sh.UpdateStats()
		out[s] = ShardStat{
			Shard:             s,
			Cells:             se.cellsOf[s],
			NumLocated:        sh.NumLocated(),
			Epoch:             us.Epoch,
			SocialEpoch:       us.SocialEpoch,
			PendingUpdates:    us.PendingUpdates,
			AppliedBatches:    us.AppliedBatches,
			DisabledLandmarks: sh.SocialStats().DisabledLandmarks,
			PrunedQueries:     se.prunedBy[s].Load(),
		}
	}
	return out
}

// FanoutStats counts the fan-out pruning behaviour across all queries. All
// counters commit only when a query succeeds end-to-end: a query aborted by
// any shard error (e.g. a stale-CH refusal under churn) contributes nothing,
// so the counters never over-report shard visits.
type FanoutStats struct {
	// Queries is the successful query count; Fanouts how many ran on more
	// than one shard's engine (always Queries on a multi-shard engine).
	Queries int64
	Fanouts int64
	// ShardsQueried / ShardsPruned / ShardsEmpty partition the per-query
	// shard visits: searched successfully, skipped because their
	// best-possible Lemma-2 score could not beat the live shared threshold
	// (before launch or at goroutine start), or skipped as empty.
	ShardsQueried int64
	ShardsPruned  int64
	ShardsEmpty   int64
}

// FanoutStats returns the accumulated fan-out counters.
func (se *Engine) FanoutStats() FanoutStats {
	return FanoutStats{
		Queries:       se.queries.Load(),
		Fanouts:       se.fanouts.Load(),
		ShardsQueried: se.shardsQueried.Load(),
		ShardsPruned:  se.shardsPruned.Load(),
		ShardsEmpty:   se.shardsEmpty.Load(),
	}
}

// UpdateStats aggregates the shards' pipeline state: epochs and op counters
// sum (each shard publishes independently), the snapshot age is the oldest
// shard's (the staleness bound a reader can observe), and the social epoch
// is the furthest shard's (edge batches broadcast, so shards differ only by
// in-flight batches).
func (se *Engine) UpdateStats() core.UpdateStats {
	var agg core.UpdateStats
	for _, sh := range se.shards {
		us := sh.UpdateStats()
		agg.Epoch += us.Epoch
		if us.SocialEpoch > agg.SocialEpoch {
			agg.SocialEpoch = us.SocialEpoch
		}
		if us.SnapshotAge > agg.SnapshotAge {
			agg.SnapshotAge = us.SnapshotAge
		}
		agg.PendingUpdates += us.PendingUpdates
		agg.AppliedUpdates += us.AppliedUpdates
		agg.AppliedBatches += us.AppliedBatches
		agg.CoalescedUpdates += us.CoalescedUpdates
	}
	return agg
}

// SocialStats reports the social dimension. Graph-shape fields (edge counts,
// overlay size, per-op counters) come from shard 0 — edge ops broadcast, so
// every shard's graph converges to the same shape and per-op counters count
// each logical op once. Maintenance counters (repairs, disables, rebuilds,
// forced installs, CH work) are summed across shards: each shard maintains
// its own landmark tables and hierarchy, and the sum is the real work the
// replication costs.
func (se *Engine) SocialStats() core.SocialStats {
	agg := se.shards[0].SocialStats()
	agg.DisabledLandmarks = 0
	agg.LandmarkRepairs, agg.RepairedVertices, agg.LandmarkDisables, agg.LandmarkRebuilds = 0, 0, 0, 0
	agg.LandmarkForcedInstalls = 0
	agg.CHRepairs, agg.CHRecontracted, agg.CHRepairFallbacks, agg.CHRebuilds, agg.CHForcedInstalls = 0, 0, 0, 0, 0
	// Per-shard epoch counters advance independently (each shard batches the
	// broadcast edge stream its own way), so raw built/social epochs are not
	// comparable ACROSS shards: freshness is a per-shard predicate, and the
	// aggregate encodes "every shard fresh" by aligning CHBuiltEpoch with the
	// aggregate SocialEpoch (callers compare the two for ch_fresh).
	chAllFresh := true
	for s, sh := range se.shards {
		st := sh.SocialStats()
		if st.SocialEpoch > agg.SocialEpoch {
			agg.SocialEpoch = st.SocialEpoch
		}
		if st.CHBuilt && st.CHBuiltEpoch != st.SocialEpoch {
			chAllFresh = false
		}
		if s == 0 || st.CHBuiltEpoch < agg.CHBuiltEpoch {
			agg.CHBuiltEpoch = st.CHBuiltEpoch
		}
		agg.DisabledLandmarks += st.DisabledLandmarks
		agg.LandmarkRepairs += st.LandmarkRepairs
		agg.RepairedVertices += st.RepairedVertices
		agg.LandmarkDisables += st.LandmarkDisables
		agg.LandmarkRebuilds += st.LandmarkRebuilds
		agg.LandmarkForcedInstalls += st.LandmarkForcedInstalls
		agg.CHRepairs += st.CHRepairs
		agg.CHRecontracted += st.CHRecontracted
		agg.CHRepairFallbacks += st.CHRepairFallbacks
		agg.CHRebuilds += st.CHRebuilds
		agg.CHForcedInstalls += st.CHForcedInstalls
	}
	if agg.CHBuilt {
		if chAllFresh {
			agg.CHBuiltEpoch = agg.SocialEpoch
		} else if agg.CHBuiltEpoch == agg.SocialEpoch {
			// A stale shard's raw built epoch may coincide with the aggregate
			// social epoch; force the inequality staleness is reported by. A
			// stale shard implies at least one social batch landed, so the
			// aggregate social epoch is ≥ 1.
			agg.CHBuiltEpoch = agg.SocialEpoch - 1
		}
	}
	return agg
}

// SupportsEdgeChurn reports whether the shards accept edge updates (uniform
// across shards: same landmark configuration everywhere).
func (se *Engine) SupportsEdgeChurn() bool { return se.shards[0].SupportsEdgeChurn() }

// RebuildLandmarks synchronously restores disabled landmarks on every shard;
// returns the total rebuilt.
func (se *Engine) RebuildLandmarks() int {
	total := 0
	for _, sh := range se.shards {
		total += sh.RebuildLandmarks()
	}
	return total
}

// RebuildCH synchronously re-contracts every stale shard hierarchy; reports
// whether any shard rebuilt.
func (se *Engine) RebuildCH() bool {
	any := false
	for _, sh := range se.shards {
		if sh.RebuildCH() {
			any = true
		}
	}
	return any
}

// UserLocation returns a user's current (normalized) coordinates from the
// owning shard's published snapshot; ok is false when unlocated.
func (se *Engine) UserLocation(id int32) (spatial.Point, bool) {
	if id < 0 || int(id) >= se.ds.NumUsers() {
		return spatial.Point{}, false
	}
	home, hsn := se.locateHome(graph.VertexID(id), false)
	if home < 0 {
		return spatial.Point{}, false
	}
	return hsn.Grid().Point(id), true
}

// NumLocated sums the shards' located-user counts.
func (se *Engine) NumLocated() int {
	total := 0
	for _, sh := range se.shards {
		total += sh.NumLocated()
	}
	return total
}

// LiveSocialGraph returns the latest published social graph (shard 0's —
// the graph is replicated and shards differ only by in-flight broadcasts).
func (se *Engine) LiveSocialGraph() *graph.Graph { return se.shards[0].LiveSocialGraph() }

// sortNeighbors orders by ascending (Dist, ID) — the spatial analogue of
// the entries' (F, ID) order.
func sortNeighbors(nbrs []spatial.Neighbor) {
	sort.Slice(nbrs, func(a, b int) bool {
		if nbrs[a].Dist != nbrs[b].Dist {
			return nbrs[a].Dist < nbrs[b].Dist
		}
		return nbrs[a].ID < nbrs[b].ID
	})
}
