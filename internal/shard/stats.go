package shard

import (
	"sort"

	"ssrq/internal/core"
	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// ShardStat is one shard's live state, the per-shard section of /stats.
type ShardStat struct {
	// Shard is the shard index; Cells how many grid leaf cells it owns.
	Shard int
	Cells int
	// NumLocated is the shard's current located-user count.
	NumLocated int
	// Epoch / SocialEpoch are the shard's published index versions.
	Epoch       uint64
	SocialEpoch uint64
	// PendingUpdates / AppliedBatches describe the shard's updater pipeline.
	PendingUpdates int64
	AppliedBatches int64
	// DisabledLandmarks is the shard's current landmark-maintenance debt.
	DisabledLandmarks int
	// PrunedQueries counts fan-outs that skipped this shard by bound.
	PrunedQueries int64
}

// ShardStats returns a point-in-time view of every shard. Cell ownership is
// recounted from the live routing table — it moves under rebalance.
func (se *Engine) ShardStats() []ShardStat {
	cells := make([]int, len(se.shards))
	for c := range se.cellShard {
		cells[se.cellShard[c].Load()]++
	}
	out := make([]ShardStat, len(se.shards))
	for s, sh := range se.shards {
		us := sh.UpdateStats()
		out[s] = ShardStat{
			Shard:             s,
			Cells:             cells[s],
			NumLocated:        sh.NumLocated(),
			Epoch:             us.Epoch,
			SocialEpoch:       us.SocialEpoch,
			PendingUpdates:    us.PendingUpdates,
			AppliedBatches:    us.AppliedBatches,
			DisabledLandmarks: sh.SocialStats().DisabledLandmarks,
			PrunedQueries:     se.prunedBy[s].Load(),
		}
	}
	return out
}

// FanoutStats counts the fan-out pruning behaviour across all queries. All
// counters commit only when a query succeeds end-to-end: a query aborted by
// any shard error (e.g. a stale-CH refusal under churn) contributes nothing,
// so the counters never over-report shard visits.
type FanoutStats struct {
	// Queries is the successful query count; Fanouts how many ran on more
	// than one shard's engine (always Queries on a multi-shard engine).
	Queries int64
	Fanouts int64
	// ShardsQueried / ShardsPruned / ShardsEmpty partition the per-query
	// shard visits: searched successfully, skipped because their
	// best-possible Lemma-2 score could not beat the live shared threshold
	// (before launch or at goroutine start), or skipped as empty.
	ShardsQueried int64
	ShardsPruned  int64
	ShardsEmpty   int64
}

// FanoutStats returns the accumulated fan-out counters.
func (se *Engine) FanoutStats() FanoutStats {
	return FanoutStats{
		Queries:       se.queries.Load(),
		Fanouts:       se.fanouts.Load(),
		ShardsQueried: se.shardsQueried.Load(),
		ShardsPruned:  se.shardsPruned.Load(),
		ShardsEmpty:   se.shardsEmpty.Load(),
	}
}

// UpdateStats aggregates the shards' pipeline state: epochs and op counters
// sum (each shard publishes independently), the snapshot age is the oldest
// shard's (the staleness bound a reader can observe), and the social epoch
// is the furthest shard's (edge batches broadcast, so shards differ only by
// in-flight batches).
func (se *Engine) UpdateStats() core.UpdateStats {
	var agg core.UpdateStats
	for _, sh := range se.shards {
		us := sh.UpdateStats()
		agg.Epoch += us.Epoch
		if us.SocialEpoch > agg.SocialEpoch {
			agg.SocialEpoch = us.SocialEpoch
		}
		if us.SnapshotAge > agg.SnapshotAge {
			agg.SnapshotAge = us.SnapshotAge
		}
		agg.PendingUpdates += us.PendingUpdates
		agg.AppliedUpdates += us.AppliedUpdates
		agg.AppliedBatches += us.AppliedBatches
		agg.CoalescedUpdates += us.CoalescedUpdates
	}
	return agg
}

// SocialStats reports the social dimension straight from the shared
// substrate: one graph, one set of landmark tables, one hierarchy and one
// set of maintenance counters, whatever the shard count. (The replicated
// design this replaced had to sum maintenance work across shards and
// re-align per-shard epochs; the substrate removes the ambiguity along with
// the S× work.)
func (se *Engine) SocialStats() core.SocialStats { return se.sub.Stats() }

// SupportsEdgeChurn reports whether the shared substrate accepts edge
// updates (uniform across shards by construction).
func (se *Engine) SupportsEdgeChurn() bool { return se.sub.SupportsEdgeChurn() }

// RebuildLandmarks synchronously restores disabled landmarks in the shared
// substrate; every shard's next snapshot carries the restored tables.
// Returns how many landmarks were rebuilt.
func (se *Engine) RebuildLandmarks() int { return se.sub.RebuildDisabledLandmarks() }

// RebuildCH synchronously re-contracts the shared hierarchy when stale;
// reports whether a rebuild ran.
func (se *Engine) RebuildCH() bool { return se.sub.RebuildCH() }

// UserLocation returns a user's current (normalized) coordinates from the
// owning shard's published snapshot; ok is false when unlocated.
func (se *Engine) UserLocation(id int32) (spatial.Point, bool) {
	if id < 0 || int(id) >= se.ds.NumUsers() {
		return spatial.Point{}, false
	}
	home, hsn := se.locateHome(graph.VertexID(id), false)
	if home < 0 {
		return spatial.Point{}, false
	}
	return hsn.Grid().Point(id), true
}

// NumLocated sums the shards' located-user counts.
func (se *Engine) NumLocated() int {
	total := 0
	for _, sh := range se.shards {
		total += sh.NumLocated()
	}
	return total
}

// LiveSocialGraph returns the shared substrate's latest published graph.
func (se *Engine) LiveSocialGraph() *graph.Graph { return se.sub.Snapshot().Graph() }

// sortNeighbors orders by ascending (Dist, ID) — the spatial analogue of
// the entries' (F, ID) order.
func sortNeighbors(nbrs []spatial.Neighbor) {
	sort.Slice(nbrs, func(a, b int) bool {
		if nbrs[a].Dist != nbrs[b].Dist {
			return nbrs[a].Dist < nbrs[b].Dist
		}
		return nbrs[a].ID < nbrs[b].ID
	})
}
