package shard

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"

	"ssrq/internal/core"
)

// mergeOracle is sort-and-truncate: concatenate, order by (F, ID), keep the
// first occurrence of each ID, cut at k.
func mergeOracle(k int, lists ...[]core.Entry) []core.Entry {
	var all []core.Entry
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].F != all[b].F {
			return all[a].F < all[b].F
		}
		return all[a].ID < all[b].ID
	})
	seen := make(map[int32]struct{})
	var out []core.Entry
	for _, e := range all {
		if _, dup := seen[e.ID]; dup {
			continue
		}
		seen[e.ID] = struct{}{}
		out = append(out, e)
		if len(out) == k {
			break
		}
	}
	return out
}

func assertMergeEqual(t *testing.T, got, want []core.Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("merged %d entries, want %d\n got:  %+v\n want: %+v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].F != want[i].F {
			t.Fatalf("rank %d: got (id=%d f=%v), want (id=%d f=%v)", i, got[i].ID, got[i].F, want[i].ID, want[i].F)
		}
	}
}

func TestMergeTopKBasics(t *testing.T) {
	a := []core.Entry{{ID: 1, F: 0.1}, {ID: 5, F: 0.5}, {ID: 9, F: 0.9}}
	b := []core.Entry{{ID: 2, F: 0.2}, {ID: 3, F: 0.3}}
	got := MergeTopK(4, a, b)
	assertMergeEqual(t, got, []core.Entry{{ID: 1, F: 0.1}, {ID: 2, F: 0.2}, {ID: 3, F: 0.3}, {ID: 5, F: 0.5}})

	if out := MergeTopK(0, a, b); len(out) != 0 {
		t.Fatalf("k=0 returned %d entries", len(out))
	}
	if out := MergeTopK(10); len(out) != 0 {
		t.Fatalf("no lists returned %d entries", len(out))
	}
	if out := MergeTopK(10, nil, []core.Entry{}); len(out) != 0 {
		t.Fatalf("empty lists returned %d entries", len(out))
	}
	// k beyond the union size returns everything.
	assertMergeEqual(t, MergeTopK(100, a, b), mergeOracle(100, a, b))
}

func TestMergeTopKTiesAndDuplicates(t *testing.T) {
	// Equal F breaks by ID, exactly like the engines' interim results.
	a := []core.Entry{{ID: 7, F: 0.4}, {ID: 8, F: 0.4}}
	b := []core.Entry{{ID: 2, F: 0.4}, {ID: 9, F: 0.4}}
	assertMergeEqual(t, MergeTopK(3, a, b), []core.Entry{{ID: 2, F: 0.4}, {ID: 7, F: 0.4}, {ID: 8, F: 0.4}})

	// A duplicate ID (transient dual-located mover) keeps its better entry.
	a = []core.Entry{{ID: 4, F: 0.2}, {ID: 6, F: 0.6}}
	b = []core.Entry{{ID: 4, F: 0.5}, {ID: 5, F: 0.55}}
	assertMergeEqual(t, MergeTopK(3, a, b), []core.Entry{{ID: 4, F: 0.2}, {ID: 5, F: 0.55}, {ID: 6, F: 0.6}})
}

// FuzzShardMerge: random per-shard result lists (sorted, as the engines
// produce them) merged through the k-way heap must equal sort-and-truncate.
func FuzzShardMerge(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(3), uint8(2))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint8(1), uint8(4))
	f.Add([]byte{255, 1, 9, 255, 1, 9, 3, 7, 0}, uint8(5), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, kRaw, nRaw uint8) {
		k := int(kRaw%40) + 1
		nLists := int(nRaw%9) + 1
		lists := make([][]core.Entry, nLists)
		// Decode 4-byte records: (id byte, pad, f uint16) distributed
		// round-robin — small ID and score spaces force ties and cross-list
		// duplicates.
		for i := 0; i+4 <= len(data); i += 4 {
			id := int32(data[i])
			fval := float64(binary.LittleEndian.Uint16(data[i+2:i+4])%512) / 256
			li := (i / 4) % nLists
			lists[li] = append(lists[li], core.Entry{ID: id, F: fval, P: fval, D: 0})
		}
		for _, l := range lists {
			sort.SliceStable(l, func(a, b int) bool {
				if l[a].F != l[b].F {
					return l[a].F < l[b].F
				}
				return l[a].ID < l[b].ID
			})
			// Per-shard lists never contain duplicate IDs; drop them the way
			// a topK would (keep the best-ranked).
		}
		for li, l := range lists {
			seen := make(map[int32]struct{})
			dedup := l[:0]
			for _, e := range l {
				if _, dup := seen[e.ID]; dup {
					continue
				}
				seen[e.ID] = struct{}{}
				dedup = append(dedup, e)
			}
			lists[li] = dedup
		}

		got := MergeTopK(k, lists...)
		want := mergeOracle(k, lists...)
		if len(got) != len(want) {
			t.Fatalf("merged %d entries, want %d (k=%d lists=%d)", len(got), len(want), k, nLists)
		}
		for i := range got {
			if got[i].ID != want[i].ID || math.Abs(got[i].F-want[i].F) != 0 {
				t.Fatalf("rank %d: got (id=%d f=%v), want (id=%d f=%v)", i, got[i].ID, got[i].F, want[i].ID, want[i].F)
			}
		}
	})
}
