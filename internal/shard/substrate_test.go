package shard

import (
	"fmt"
	"testing"

	"ssrq/internal/core"
)

// TestSharedSubstrateIdentity witnesses the memory claim structurally: every
// shard's published snapshot carries the SAME graph and landmark objects —
// pointer-identical to the substrate's — so the social structures exist once
// regardless of shard count, and an edge op advances every shard to the same
// social epoch.
func TestSharedSubstrateIdentity(t *testing.T) {
	ds := clusteredDataset(t, 300, 71)
	se, err := New(ds, 8, core.Options{GridS: 5, GridLevels: 2, NumLandmarks: 3, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()

	check := func(label string) {
		t.Helper()
		ssn := se.Substrate().Snapshot()
		for s, sh := range se.shards {
			sn := sh.Snapshot()
			if sn.SocialGraph() != ssn.Graph() {
				t.Fatalf("%s: shard %d publishes its own graph copy", label, s)
			}
			if sn.Landmarks() != se.Substrate().Snapshot().Landmarks() && sn.Landmarks() != ssn.Landmarks() {
				t.Fatalf("%s: shard %d publishes its own landmark tables", label, s)
			}
			if sn.SocialEpoch() != ssn.Epoch() {
				t.Fatalf("%s: shard %d at social epoch %d, substrate at %d", label, s, sn.SocialEpoch(), ssn.Epoch())
			}
		}
	}
	check("construction")
	if err := se.AddFriend(1, 2, 0.25); err != nil {
		t.Fatal(err)
	}
	check("after sync edge op")
	if err := se.RemoveFriend(1, 2); err != nil {
		t.Fatal(err)
	}
	check("after sync edge removal")
}

// BenchmarkEdgeOpSharded measures the synchronous edge-op apply path across
// shard counts. With the shared substrate the op applies once and each
// shard's consumer sync is a small constant (snapshot republish; the touched
// leaf recompute lands only on the one shard holding the endpoints), so the
// per-op cost must stay flat in S — the acceptance criterion is S=16 within
// ~1.5x of S=1, where the replicated design paid a full S-fold broadcast.
func BenchmarkEdgeOpSharded(b *testing.B) {
	for _, S := range []int{1, 8, 16} {
		b.Run(fmt.Sprintf("S=%d", S), func(b *testing.B) {
			ds := clusteredDataset(b, 1000, 97)
			se, err := New(ds, S, core.Options{
				GridS: 5, GridLevels: 2, NumLandmarks: 4, Seed: 97,
				RebalanceThreshold: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer se.Close()
			// A rotating pair set keeps every op an effective reweight (never
			// a no-op, never unbounded overlay growth).
			const pairs = 64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := int32(i % pairs)
				v := u + pairs
				// Alternate per full pair cycle, so every op changes the
				// weight it finds (an effective reweight, never a no-op).
				w := 0.25 + float64((i/pairs)&1)*0.5
				if err := se.AddFriend(u, v, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
