package shard

import (
	"ssrq/internal/core"
	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// Durability hooks for the sharded engine. The write-ahead hook sits at the
// ROUTING layer, not at the per-shard aggregate indexes: a cross-shard move
// is routed as remove@old + insert@new onto two independent pipelines, and
// only the routing stripe held while both are enqueued defines the user's
// total op order — the shards may publish the halves in either order. The
// log therefore carries the single logical op and replay re-derives the
// split. Rebalance migrations never reach the hook (they apply through the
// per-shard engines directly): they move shard placement, not world state,
// and replaying their remove halves would delete users.

// SetOpLog installs the write-ahead hook: fn receives every routed update
// (async ops one at a time under their stripe, synchronous batches whole
// under their stripe set) in routing order, which the pipelines preserve
// per user through to application. Single consumer; nil detaches.
func (se *Engine) SetOpLog(fn func(ops []core.Update)) {
	if fn == nil {
		se.oplogFn.Store(nil)
		return
	}
	se.oplogFn.Store(&fn)
}

func (se *Engine) logOps(ops []core.Update) {
	if fp := se.oplogFn.Load(); fp != nil {
		(*fp)(ops)
	}
}

// MutationBarrier cycles every routing stripe. Ops journal under their
// stripe before the pipelines see them (async) or while being applied
// (sync), so any op that had reached the hook when the call began is — on
// return — at least enqueued on its shard pipelines, and a following
// Flush drains it through to publication. The checkpointer relies on the
// barrier+Flush pair to make its export cover every sequence number at or
// below the log position it records.
func (se *Engine) MutationBarrier() {
	for i := range se.locks {
		se.locks[i].Lock()
		se.locks[i].Unlock() //nolint:staticcheck // empty critical section is the point
	}
}

// ExportDiff returns the update batch that carries a freshly built engine
// over the same construction dataset to this engine's current state — the
// checkpoint payload. Location state is read per user from the owning
// shard's published snapshot (the owner map points at the newest residency
// of an in-flight cross-shard move; any user still settling is fixed up by
// the log tail replayed after the checkpoint position). See
// core.Engine.ExportDiff for the flush-first protocol.
func (se *Engine) ExportDiff() []core.Update {
	grids := make([]*spatial.Snapshot, len(se.shards))
	for i, sh := range se.shards {
		grids[i] = sh.Snapshot().Grid()
	}
	locate := func(id int32) (spatial.Point, bool) {
		s := se.owner[id].Load()
		if s < 0 || !grids[s].Located(id) {
			return spatial.Point{}, false
		}
		return grids[s].Point(id), true
	}
	var cur *graph.Graph
	if se.SupportsEdgeChurn() {
		cur = se.sub.Snapshot().Graph()
	}
	return core.StateDiff(se.ds, locate, cur)
}
