package shard

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ssrq/internal/core"
	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// skewStream drifts a growing fraction of the population toward a hotspot
// corner — the distance-dependent migration pattern that unbalances a frozen
// Z-order cut.
func skewStream(t *testing.T, rng *rand.Rand, se *Engine, users []graph.VertexID, n int) {
	t.Helper()
	b := se.Dataset().Bounds()
	for i := 0; i < n; i++ {
		id := int32(users[rng.Intn(len(users))])
		// Near the hotspot corner with small jitter.
		to := spatial.Point{
			X: b.MinX + (0.02+0.08*rng.Float64())*b.Width(),
			Y: b.MinY + (0.02+0.08*rng.Float64())*b.Height(),
		}
		if err := se.MoveUserAsync(id, to); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRebalanceRestoresBalance: concentrating the population into a corner
// must push the occupancy imbalance past any reasonable threshold, and one
// explicit Rebalance must re-cut the curve, move cells and users, and bring
// the imbalance back down — without losing a single located user.
func TestRebalanceRestoresBalance(t *testing.T) {
	ds := clusteredDataset(t, 400, 61)
	opts := core.Options{GridS: 5, GridLevels: 2, NumLandmarks: 3, Seed: 61, RebalanceThreshold: -1}
	se, err := New(ds, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()

	users := locatedUsers(ds)
	before := se.NumLocated()
	rng := rand.New(rand.NewSource(611))
	skewStream(t, rng, se, users, 4*len(users))
	se.Flush()

	imbBefore := se.Imbalance()
	if imbBefore < 1.5 {
		t.Fatalf("hotspot drift produced imbalance %.2f, expected heavy skew", imbBefore)
	}
	moved := se.Rebalance()
	if moved == 0 {
		t.Fatal("rebalance moved no cells despite heavy skew")
	}
	imbAfter := se.Imbalance()
	if imbAfter >= imbBefore {
		t.Fatalf("imbalance did not recover: %.2f -> %.2f", imbBefore, imbAfter)
	}
	if got := se.NumLocated(); got != before {
		t.Fatalf("rebalance lost users: %d located, want %d", got, before)
	}
	rs := se.RebalanceStats()
	if rs.Rebalances != 1 || rs.CellsMoved == 0 || rs.UsersMoved == 0 {
		t.Fatalf("stats did not record the re-cut: %+v", rs)
	}
	if rs.LastImbalance != imbAfter {
		t.Fatalf("LastImbalance %.3f, want the post-re-cut measurement %.3f", rs.LastImbalance, imbAfter)
	}
	// Ownership stayed coherent: every located user's owner shard and
	// routing cell agree.
	for _, u := range users {
		id := int32(u)
		p, ok := se.UserLocation(id)
		if !ok {
			t.Fatalf("user %d lost its location", id)
		}
		if s := se.ShardOfUser(id); s != se.CellShard(se.layout.CellIndex(se.layout.LeafLevel(), p)) {
			t.Fatalf("user %d owned by shard %d but its cell routes to %d", id, s, se.CellShard(se.layout.CellIndex(se.layout.LeafLevel(), p)))
		}
	}
}

// TestElasticDifferentialEquivalence replays one interleaved move+edge
// stream into a monolithic engine and a 4-shard elastic engine, forcing a
// full split/merge re-cut mid-stream; after every Flush the sharded answers
// must agree exactly — IDs included — with the monolith across algorithms.
func TestElasticDifferentialEquivalence(t *testing.T) {
	ds := clusteredDataset(t, 300, 23)
	opts := core.Options{
		GridS: 4, GridLevels: 2, NumLandmarks: 4, CacheT: 20, Seed: 23,
		UpdateMaxBatch: 8, RebalanceThreshold: -1, // explicit re-cut only
	}
	mono, err := core.NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer mono.Close()
	se, err := New(ds, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()

	rng := rand.New(rand.NewSource(233))
	users := locatedUsers(ds)
	b := ds.Bounds()
	n := int32(ds.NumUsers())

	stream := func(ops int, hotspot bool) {
		for i := 0; i < ops; i++ {
			switch rng.Intn(4) {
			case 0: // edge upsert
				u, v := rng.Int31n(n), rng.Int31n(n)
				if u == v {
					continue
				}
				w := 0.05 + rng.Float64()
				if err := mono.AddFriendAsync(u, v, w); err != nil {
					t.Fatal(err)
				}
				if err := se.AddFriendAsync(u, v, w); err != nil {
					t.Fatal(err)
				}
			case 1: // edge removal
				u, v := rng.Int31n(n), rng.Int31n(n)
				if u == v {
					continue
				}
				if err := mono.RemoveFriendAsync(u, v); err != nil {
					t.Fatal(err)
				}
				if err := se.RemoveFriendAsync(u, v); err != nil {
					t.Fatal(err)
				}
			default: // move
				id := int32(users[rng.Intn(len(users))])
				var to spatial.Point
				if hotspot {
					to = spatial.Point{
						X: b.MinX + (0.02+0.08*rng.Float64())*b.Width(),
						Y: b.MinY + (0.02+0.08*rng.Float64())*b.Height(),
					}
				} else {
					to = spatial.Point{X: b.MinX + rng.Float64()*b.Width(), Y: b.MinY + rng.Float64()*b.Height()}
				}
				if err := mono.MoveUserAsync(id, to); err != nil {
					t.Fatal(err)
				}
				if err := se.MoveUserAsync(id, to); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	algos := []core.Algorithm{core.SFA, core.TSA, core.AIS, core.AISCache}
	prm := core.Params{K: 8, Alpha: 0.5}
	check := func(label string) {
		t.Helper()
		mono.Flush()
		se.Flush()
		for qi := 0; qi < 6; qi++ {
			q := users[rng.Intn(len(users))]
			want, err := mono.Query(core.BruteForce, q, prm)
			if err != nil {
				t.Fatal(err)
			}
			for _, algo := range algos {
				got, err := se.Query(algo, q, prm)
				if err != nil {
					t.Fatalf("%s: %s(q=%d): %v", label, algo, q, err)
				}
				sameEntries(t, label+"/"+algo.String(), got.Entries, want.Entries)
			}
		}
	}

	stream(400, true) // drift into the hotspot: builds the skew
	check("pre-rebalance")
	if moved := se.Rebalance(); moved == 0 {
		t.Fatal("mid-stream rebalance moved nothing despite hotspot drift")
	}
	check("post-rebalance")
	stream(400, false) // disperse again: the re-cut must keep routing exact
	check("post-dispersal")
	if moved := se.Rebalance(); moved == 0 {
		t.Log("dispersal needed no second re-cut (already balanced)")
	}
	check("final")
}

// TestRebalanceQueryStress hammers the engine with concurrent queriers while
// hotspot movers force an automatic rebalance: queries must keep serving
// with zero errors throughout the drain (run under -race in CI, which is the
// other half of the point).
func TestRebalanceQueryStress(t *testing.T) {
	ds := clusteredDataset(t, 250, 31)
	opts := core.Options{
		GridS: 5, GridLevels: 2, NumLandmarks: 3, Seed: 31,
		UpdateMaxBatch: 16, RebalanceThreshold: 1.25, RebalanceDrainBatch: 2,
	}
	se, err := New(ds, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()

	users := locatedUsers(ds)
	prm := core.Params{K: 5, Alpha: 0.5}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var qerrs atomic.Int64
	var served atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(3100 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := users[rng.Intn(len(users))]
				if _, err := se.Query(core.AIS, q, prm); err != nil {
					qerrs.Add(1)
					t.Errorf("query during rebalance: %v", err)
					return
				}
				served.Add(1)
			}
		}(w)
	}

	// Drive enough skewed traffic through the async pipeline to trip the
	// automatic trigger, then wait for a re-cut to be recorded.
	rng := rand.New(rand.NewSource(311))
	deadline := time.Now().Add(10 * time.Second)
	for se.RebalanceStats().Rebalances == 0 && time.Now().Before(deadline) {
		skewStream(t, rng, se, users, 2*rebalanceCheckEvery)
		se.Flush()
	}
	if se.RebalanceStats().Rebalances == 0 {
		// The automatic trigger races snapshot publication — and may still be
		// mid-drain right now. Force the same code path (it serializes behind
		// any in-flight re-cut) so the stress below still covers a live
		// drain, then accept either completion.
		if se.Rebalance() == 0 && se.RebalanceStats().Rebalances == 0 {
			t.Fatal("no rebalance occurred and a forced one found nothing to move")
		}
	}
	// Keep the drain and the queriers overlapped a little longer.
	skewStream(t, rng, se, users, 1000)
	se.Flush()
	close(stop)
	wg.Wait()
	if qerrs.Load() > 0 {
		t.Fatalf("%d query errors during rebalance", qerrs.Load())
	}
	if served.Load() == 0 {
		t.Fatal("queriers served nothing; stress proved nothing")
	}

	// Settled correctness: the elastic partition still answers exactly.
	for qi := 0; qi < 4; qi++ {
		q := users[rng.Intn(len(users))]
		want, err := se.Query(core.BruteForce, q, prm)
		if err != nil {
			t.Fatal(err)
		}
		got, err := se.Query(core.AIS, q, prm)
		if err != nil {
			t.Fatal(err)
		}
		sameEntries(t, "post-stress AIS", got.Entries, want.Entries)
	}
}
