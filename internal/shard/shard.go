// Package shard implements the spatially-partitioned SSRQ engine: users are
// split across S spatially-contiguous shards by a space-filling-curve
// assignment of grid leaf cells, and every shard owns an independent spatial
// side — its own grid, AIS aggregate index, updater pipeline and epochs —
// built over a Restrict'ed view of one shared dataset. Queries fan out in
// parallel and are combined by a k-way merge; updates route to the shard
// owning the user's current location.
//
// The decomposition trades the two dimensions differently:
//
//   - The spatial dimension is PARTITIONED: each user's location is indexed
//     by exactly one shard, so grid maintenance, AIS summaries and epoch
//     publication scale out across shards instead of contending on one
//     writer lock. The partition is ELASTIC: occupancy imbalance past a
//     threshold re-cuts the Z-order curve online, draining leaf cells to
//     their new owners through the ordinary update pipelines while queries
//     keep serving lock-free (see rebalance.go).
//   - The social dimension is SHARED: one aggindex.Social substrate owns the
//     friendship graph overlay, the landmark tables, the contraction
//     hierarchy and their maintenance loops, and every shard's aggregate
//     index consumes its epoch-tagged snapshots. Sharing (rather than the
//     per-shard replication of earlier revisions) is what keeps social
//     distances exact at O(1) edge-op cost: shortest paths route through
//     arbitrary vertices, so the graph cannot be partitioned — but it also
//     need not be copied. An edge op applies once, and the substrate
//     synchronously syncs every shard's summaries to the new social epoch
//     before publication, so no shard can pair new membership with stale
//     Lemma-2 bounds.
//
// Urban geo-social graphs are strongly geo-clustered (Herrera-Yagüe et al.,
// "The anatomy of urban social networks"), which is what makes the spatial
// cut effective: most of a user's top-k lives in their own shard, and the
// fan-out prunes remote shards whose best-possible Lemma-2 score cannot beat
// the running kth score (cf. Elsisy et al. on partial friend-locality
// knowledge pruning cross-region work). The same literature's
// distance-dependent migration is what unbalances a frozen partition —
// hence the online re-cut.
//
// Equivalence with the monolithic engine is exact, not approximate: the
// per-shard searches run the unmodified paper algorithms against their own
// snapshots (core.Engine.QueryOn threads the owner shard's query location
// through), the seed bound is applied strictly so ID tiebreaks survive, and
// the metamorphic/differential harness in internal/core asserts
// sharded == unsharded == brute under interleaved churn — including across
// a forced mid-stream rebalance.
package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ssrq/internal/aggindex"
	"ssrq/internal/ch"
	"ssrq/internal/core"
	"ssrq/internal/dataset"
	"ssrq/internal/fof"
	"ssrq/internal/landmark"
	"ssrq/internal/spatial"
)

// MaxShards bounds the shard count; fan-out spawns one goroutine per
// unpruned shard, so the cap keeps a single query's parallelism sane.
const MaxShards = 64

// Engine is the sharded composition. It satisfies the same query/update
// surface as core.Engine (the root ssrq package programs against the shared
// subset), so callers choose between one monolithic index and S partitioned
// ones with a constructor argument.
type Engine struct {
	ds     *dataset.Dataset
	layout *spatial.Layout
	// cellShard maps each leaf cell to its owning shard. Entries move while
	// the engine serves (rebalance re-cuts the curve online), so each is an
	// atomic: routers and queries load the current owner lock-free, and the
	// migration protocol tolerates the transient window where a moving
	// cell's users are visible in two shards (the fan-out merge dedupes).
	cellShard []atomic.Int32
	sub       *aggindex.Social // shared social substrate, owned by this engine
	shards    []*core.Engine
	opts      core.Options

	// owner[id] is the shard whose grid currently locates the user (-1 when
	// unlocated). Routing decisions for one user serialize on a striped lock
	// so a cross-shard move's remove+insert pair is enqueued atomically with
	// the owner update; the per-shard FIFO pipelines then preserve that
	// order through to application.
	owner []atomic.Int32
	locks [64]sync.Mutex
	// closed refuses new async routing; it is set and the shards are closed
	// under all stripes, so an async op is either fully routed before the
	// shards close (and drained — state stays convergent) or refused
	// entirely. No half-delivered multi-shard op can straddle Close.
	closed atomic.Bool

	// oplogFn is the durability layer's write-ahead hook (see durable.go).
	// The sharded engine logs at this routing layer — under the op's
	// stripe, where the per-user order is authoritative — not at the
	// per-shard indexes, whose independent pipelines may publish a
	// cross-shard move's remove/insert halves in either order. Atomic so a
	// promoted follower can attach a log while serving.
	oplogFn atomic.Pointer[func([]core.Update)]

	// Rebalance machinery (see rebalance.go). rebalanceMu serializes
	// re-cuts; bg tracks the auto-kicked goroutine so Close can wait it out.
	rebalanceMu   sync.Mutex
	bg            sync.WaitGroup
	opsSinceCheck atomic.Int64
	rebalances    atomic.Int64
	cellsMoved    atomic.Int64
	usersMoved    atomic.Int64
	lastImbalance atomic.Uint64 // float64 bits

	// Fan-out counters (see FanoutStats).
	queries       atomic.Int64
	fanouts       atomic.Int64
	shardsQueried atomic.Int64
	shardsPruned  atomic.Int64
	shardsEmpty   atomic.Int64
	prunedBy      []atomic.Int64
}

// New partitions the dataset across numShards spatially-contiguous shards:
// one shared social substrate (landmarks selected once, hierarchy built
// once), and one spatial engine per shard over a Restrict'ed view of the
// dataset. The partition assigns grid leaf cells to shards along a Z-order
// (Morton) space-filling curve, cutting the curve into segments of
// approximately equal construction-time occupancy, so shards start balanced
// and stay spatially contiguous along the curve; sustained skew re-cuts it
// online (rebalance.go). Every shard shares the parent dataset's graph,
// coordinates, normalization and bounds (dataset.Restrict), so per-shard
// scores are identical to the monolithic engine's.
func New(ds *dataset.Dataset, numShards int, opts core.Options) (*Engine, error) {
	if ds == nil {
		return nil, fmt.Errorf("shard: nil dataset")
	}
	opts = opts.WithDefaults()
	layout, err := spatial.NewLayout(ds.PaddedBounds(), opts.GridS, opts.GridLevels)
	if err != nil {
		return nil, fmt.Errorf("shard: grid layout: %w", err)
	}
	numCells := layout.NumCells(layout.LeafLevel())
	if numShards < 1 || numShards > MaxShards {
		return nil, fmt.Errorf("shard: %d shards out of [1,%d]", numShards, MaxShards)
	}
	if numShards > numCells {
		return nil, fmt.Errorf("shard: %d shards exceed %d grid leaf cells", numShards, numCells)
	}

	// The social substrate is built once, whatever the shard count: one
	// landmark selection, one overlay, optionally one contraction hierarchy,
	// one set of maintenance loops.
	m := opts.NumLandmarks
	if n := ds.NumUsers(); m > n {
		m = n
	}
	lm, err := landmark.Select(ds.G, m, opts.LandmarkStrategy, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("shard: selecting landmarks: %w", err)
	}
	cfg := aggindex.Config{
		RepairBudget:          opts.LandmarkRepairBudget,
		CompactThreshold:      opts.OverlayCompactThreshold,
		ForcedInstallInterval: opts.ForcedInstallInterval,
		Labels:                ds.Labels,
	}
	if opts.BuildCH {
		chd, err := ch.NewDynamic(ds.G, ch.Options{WitnessSettleLimit: opts.CHWitnessLimit}, opts.CHRepairBudget)
		if err != nil {
			return nil, fmt.Errorf("shard: contraction hierarchy: %w", err)
		}
		cfg.CH = chd
	}
	sub, err := aggindex.NewSocialSubstrate(lm, ds.G, cfg)
	if err != nil {
		return nil, fmt.Errorf("shard: social substrate: %w", err)
	}

	se := &Engine{
		ds:        ds,
		layout:    layout,
		cellShard: make([]atomic.Int32, numCells),
		sub:       sub,
		opts:      opts,
		owner:     make([]atomic.Int32, ds.NumUsers()),
		prunedBy:  make([]atomic.Int64, numShards),
	}
	for c, s := range partition(layout, ds, numShards) {
		se.cellShard[c].Store(s)
	}

	// Per-shard located masks and the initial owner map.
	leaf := layout.LeafLevel()
	keep := make([][]bool, numShards)
	for s := range keep {
		keep[s] = make([]bool, ds.NumUsers())
	}
	for id := 0; id < ds.NumUsers(); id++ {
		if !ds.Located[id] {
			se.owner[id].Store(-1)
			continue
		}
		s := se.cellShard[layout.CellIndex(leaf, ds.Pts[id])].Load()
		keep[s][id] = true
		se.owner[id].Store(s)
	}

	// The per-shard builds are independent (each touches only its own
	// Restrict'ed view) and cheap — grid plus AIS summaries; the expensive
	// social structures already exist in the substrate — but build them in
	// parallel anyway, like the restrictions themselves.
	se.shards = make([]*core.Engine, numShards)
	errs := make([]error, numShards)
	var wg sync.WaitGroup
	for s := 0; s < numShards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			dsS, err := ds.Restrict(keep[s])
			if err != nil {
				errs[s] = fmt.Errorf("shard %d: %w", s, err)
				return
			}
			eng, err := core.NewEngineWithSubstrate(dsS, opts, sub)
			if err != nil {
				errs[s] = fmt.Errorf("shard %d: %w", s, err)
				return
			}
			se.shards[s] = eng
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			// Release the shards that did build before failing out.
			for _, sh := range se.shards {
				if sh != nil {
					sh.Close()
				}
			}
			sub.Close()
			return nil, errs[s]
		}
	}
	return se, nil
}

// partition maps every leaf cell to a shard from construction-time
// occupancy; cutCurve does the actual Z-order cut (shared with the online
// rebalance, which feeds it live occupancy instead).
func partition(layout *spatial.Layout, ds *dataset.Dataset, numShards int) []int32 {
	leaf := layout.LeafLevel()
	occ := make([]int64, layout.NumCells(leaf))
	for id := 0; id < ds.NumUsers(); id++ {
		if ds.Located[id] {
			occ[layout.CellIndex(leaf, ds.Pts[id])]++
		}
	}
	return cutCurve(layout, occ, numShards)
}

// cutCurve orders the leaf cells along the Z-order curve and cuts the curve
// into numShards contiguous segments of approximately equal weight, where a
// cell's weight is dominated by its occupancy with a +1 cell-count term so
// empty regions still split evenly.
func cutCurve(layout *spatial.Layout, occ []int64, numShards int) []int32 {
	numCells := len(occ)
	dim := layout.Dim(layout.LeafLevel())
	order := make([]int32, numCells)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		return mortonOf(order[a], dim) < mortonOf(order[b], dim)
	})

	// Weighted equal-share cuts along the curve. The occupancy term is scaled
	// by the cell count so it dominates whenever any user exists; the +1 term
	// breaks the all-empty degenerate case into equal cell counts.
	var total int64
	for _, c := range order {
		total += occ[c]*int64(numCells) + 1
	}
	cellShard := make([]int32, numCells)
	var acc int64
	s := int32(0)
	for i, c := range order {
		if int(s) < numShards-1 {
			// Advance to the next shard once this one holds its share, or when
			// exactly one cell must be left for each remaining shard.
			if acc*int64(numShards) >= total*int64(s+1) || numCells-i <= numShards-1-int(s) {
				s++
			}
		}
		cellShard[c] = s
		acc += occ[c]*int64(numCells) + 1
	}
	return cellShard
}

// mortonOf interleaves the bits of a leaf cell's (x, y) grid coordinates —
// the Z-order index that makes curve-contiguous cell runs spatially compact.
func mortonOf(idx int32, dim int) uint64 {
	x, y := uint32(int(idx)%dim), uint32(int(idx)/dim)
	return spread(x) | spread(y)<<1
}

// spread inserts a zero bit between each of the low 32 bits of v.
func spread(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// shardOfPoint returns the shard owning the region containing p.
func (se *Engine) shardOfPoint(p spatial.Point) int32 {
	return se.cellShard[se.layout.CellIndex(se.layout.LeafLevel(), p)].Load()
}

// NumShards returns the shard count.
func (se *Engine) NumShards() int { return len(se.shards) }

// Dataset returns the shared parent dataset (construction-time state; live
// locations come from the owning shard's snapshot).
func (se *Engine) Dataset() *dataset.Dataset { return se.ds }

// Options returns the per-shard engine options (defaults resolved).
func (se *Engine) Options() core.Options { return se.opts }

// Substrate returns the shared social substrate all shards consume.
func (se *Engine) Substrate() *aggindex.Social { return se.sub }

// FoFIndex returns the substrate's friends-of-friends bound index (shared by
// every shard; the subscription layer discovers it through this accessor).
func (se *Engine) FoFIndex() *fof.Index { return se.sub.FoF() }

// OnEpoch installs fn as the epoch-delta callback on every shard (single
// consumer; nil detaches everywhere). Shard epochs publish independently,
// so fn must tolerate interleaved deltas: per-shard Moved sets are
// disjoint at any instant (each user has one owning shard), and a
// cross-shard move surfaces as a removal delta on the old owner plus an
// insert delta on the new one — a consumer that unions touched-user IDs
// across callbacks sees a superset of everything that changed. A shared-
// substrate social sync fires once per shard with SocialChanged set.
func (se *Engine) OnEpoch(fn func(aggindex.EpochDelta)) {
	for _, sh := range se.shards {
		sh.AggIndex().SetNotify(fn)
	}
}

// ShardOfUser returns the shard currently locating the user, -1 when the
// user has no indexed location.
func (se *Engine) ShardOfUser(id int32) int {
	if id < 0 || int(id) >= len(se.owner) {
		return -1
	}
	return int(se.owner[id].Load())
}

// CellShard returns the shard currently owning grid leaf cell idx (partition
// introspection for stats and tests; moves under rebalance).
func (se *Engine) CellShard(idx int32) int { return int(se.cellShard[idx].Load()) }

// lockFor returns the routing lock stripe for a user.
func (se *Engine) lockFor(id int32) *sync.Mutex {
	return &se.locks[int(id)&(len(se.locks)-1)]
}

// stripeOf returns the stripe index lockFor would lock.
func stripeOf(id int32) int { return int(id) & 63 }

// stripeOfEdge returns the stripe index lockForEdge would lock.
func stripeOfEdge(u, v int32) int {
	if u > v {
		u, v = v, u
	}
	return int(u^v*31) & 63
}

// lockForEdge returns the routing lock stripe for an unordered user pair —
// concurrent writers of one edge serialize on it so the substrate receives
// their ops in one order.
func (se *Engine) lockForEdge(u, v int32) *sync.Mutex {
	return &se.locks[stripeOfEdge(u, v)]
}
