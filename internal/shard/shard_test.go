package shard

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"ssrq/internal/core"
	"ssrq/internal/dataset"
	"ssrq/internal/gen"
	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// clusteredDataset synthesizes a geo-clustered paper-substitute dataset (the
// workload sharding targets).
func clusteredDataset(t testing.TB, n int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges, pts, located, err := gen.GeoSocial(gen.GeoSocialConfig{
		N: n, M: 4, PLocal: 0.6, Cities: 6, LocatedFrac: 0.8,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildGraph(n, edges, gen.DegreeProductWeights(n, edges))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.New("clustered", g, pts, located)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func locatedUsers(ds *dataset.Dataset) []graph.VertexID {
	var out []graph.VertexID
	for v := 0; v < ds.NumUsers(); v++ {
		if ds.Located[v] {
			out = append(out, graph.VertexID(v))
		}
	}
	return out
}

// sameEntries asserts exact agreement: same IDs in the same order with
// bit-comparable scores (both engines run identical arithmetic).
func sameEntries(t *testing.T, label string, got, want []core.Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d\n got:  %+v\n want: %+v", label, len(got), len(want), got, want)
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.ID != w.ID || math.Abs(g.F-w.F) > 1e-12 {
			t.Fatalf("%s: rank %d got (id=%d f=%v), want (id=%d f=%v)", label, i, g.ID, g.F, w.ID, w.F)
		}
	}
}

// TestShardedMatchesUnshardedStatic: on a quiescent engine every algorithm
// must return exactly the monolithic result for every shard count.
func TestShardedMatchesUnshardedStatic(t *testing.T) {
	ds := clusteredDataset(t, 400, 11)
	opts := core.Options{GridS: 4, GridLevels: 2, NumLandmarks: 4, CacheT: 30, Seed: 11}
	mono, err := core.NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer mono.Close()
	users := locatedUsers(ds)
	algos := []core.Algorithm{core.SFA, core.SPA, core.TSA, core.TSAQC, core.TSANoLandmark,
		core.AISBID, core.AISMinus, core.AIS, core.AISCache, core.BruteForce}
	for _, S := range []int{1, 2, 4, 8} {
		se, err := New(ds, S, opts)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(S)))
		for probe := 0; probe < 6; probe++ {
			q := users[rng.Intn(len(users))]
			prm := core.Params{K: 1 + rng.Intn(15), Alpha: 0.05 + 0.9*rng.Float64()}
			want, err := mono.Query(core.BruteForce, q, prm)
			if err != nil {
				t.Fatal(err)
			}
			for _, algo := range algos {
				got, err := se.Query(algo, q, prm)
				if err != nil {
					t.Fatalf("S=%d %v: %v", S, algo, err)
				}
				sameEntries(t, fmt.Sprintf("S=%d %v q=%d k=%d α=%.3f", S, algo, q, prm.K, prm.Alpha), got.Entries, want.Entries)
			}
		}
		se.Close()
	}
}

// TestShardedCHVariants: the *-CH variants serve through the fan-out when
// every shard's hierarchy is fresh, and match brute exactly.
func TestShardedCHVariants(t *testing.T) {
	ds := clusteredDataset(t, 150, 13)
	opts := core.Options{GridS: 3, GridLevels: 2, NumLandmarks: 3, Seed: 13, BuildCH: true}
	se, err := New(ds, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	users := locatedUsers(ds)
	prm := core.Params{K: 5, Alpha: 0.4}
	want, err := se.Query(core.BruteForce, users[0], prm)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []core.Algorithm{core.SFACH, core.SPACH, core.TSACH} {
		got, err := se.Query(algo, users[0], prm)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		sameEntries(t, algo.String(), got.Entries, want.Entries)
	}
	// An edge removal staleness-refuses the variants until RebuildCH catches
	// every shard up (removals cannot be repaired in place).
	se.Close() // suppress background rebuilds for determinism
	nbrs, _ := se.LiveSocialGraph().Neighbors(users[0])
	if len(nbrs) == 0 {
		t.Fatal("query user has no neighbors to remove")
	}
	if err := se.RemoveFriend(int32(users[0]), nbrs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := se.Query(core.TSACH, users[0], prm); err == nil {
		t.Fatal("TSA-CH served on stale shard hierarchies")
	}
	if !se.RebuildCH() {
		t.Fatal("RebuildCH found nothing to rebuild")
	}
	if _, err := se.Query(core.TSACH, users[0], prm); err != nil {
		t.Fatalf("TSA-CH after RebuildCH: %v", err)
	}
}

// TestCrossShardRouting: moves that cross shard boundaries relocate
// ownership, never duplicate a user, and keep sharded results equal to a
// monolithic engine replaying the same ops.
func TestCrossShardRouting(t *testing.T) {
	ds := clusteredDataset(t, 300, 17)
	opts := core.Options{GridS: 4, GridLevels: 2, NumLandmarks: 4, Seed: 17, UpdateMaxBatch: 8}
	mono, err := core.NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer mono.Close()
	se, err := New(ds, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()

	rng := rand.New(rand.NewSource(23))
	users := locatedUsers(ds)
	b := ds.Bounds()
	for round := 0; round < 5; round++ {
		for i := 0; i < 40; i++ {
			id := int32(users[rng.Intn(len(users))])
			switch rng.Intn(10) {
			case 0:
				if err := se.RemoveUserLocationAsync(id); err != nil {
					t.Fatal(err)
				}
				if err := mono.RemoveUserLocationAsync(id); err != nil {
					t.Fatal(err)
				}
			default:
				to := spatial.Point{
					X: b.MinX + rng.Float64()*b.Width(),
					Y: b.MinY + rng.Float64()*b.Height(),
				}
				if err := se.MoveUserAsync(id, to); err != nil {
					t.Fatal(err)
				}
				if err := mono.MoveUserAsync(id, to); err != nil {
					t.Fatal(err)
				}
			}
		}
		se.Flush()
		mono.Flush()

		if got, want := se.NumLocated(), mono.NumLocated(); got != want {
			t.Fatalf("round %d: sharded locates %d users, monolith %d", round, got, want)
		}
		// Ownership invariant: every user is located in exactly the shard the
		// owner map names, and nowhere else.
		for v := 0; v < ds.NumUsers(); v++ {
			ownerShard := se.ShardOfUser(int32(v))
			locatedIn := -1
			for s, sh := range se.shards {
				if sh.Snapshot().Grid().Located(int32(v)) {
					if locatedIn >= 0 {
						t.Fatalf("round %d: user %d located in shards %d and %d", round, v, locatedIn, s)
					}
					locatedIn = s
				}
			}
			if locatedIn != ownerShard {
				t.Fatalf("round %d: user %d owner=%d but located in %d", round, v, ownerShard, locatedIn)
			}
		}
		for probe := 0; probe < 3; probe++ {
			q := users[rng.Intn(len(users))]
			if _, ok := mono.UserLocation(int32(q)); !ok {
				continue
			}
			prm := core.Params{K: 8, Alpha: 0.3}
			want, err := mono.Query(core.AIS, q, prm)
			if err != nil {
				t.Fatal(err)
			}
			got, err := se.Query(core.AIS, q, prm)
			if err != nil {
				t.Fatal(err)
			}
			sameEntries(t, fmt.Sprintf("round %d q=%d", round, q), got.Entries, want.Entries)
		}
	}
}

// TestShardPruning: on a clustered workload with a spatially-dominant
// ranking, remote shards must be skipped by the Lemma-2 bound.
func TestShardPruning(t *testing.T) {
	ds := clusteredDataset(t, 600, 29)
	se, err := New(ds, 8, core.Options{GridS: 5, GridLevels: 2, NumLandmarks: 4, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	users := locatedUsers(ds)
	for _, q := range users[:40] {
		if _, err := se.Query(core.AIS, q, core.Params{K: 5, Alpha: 0.3}); err != nil {
			t.Fatal(err)
		}
	}
	fs := se.FanoutStats()
	if fs.ShardsPruned == 0 {
		t.Fatalf("no shards pruned on a clustered workload: %+v", fs)
	}
	var perShard int64
	for _, st := range se.ShardStats() {
		perShard += st.PrunedQueries
	}
	if perShard != fs.ShardsPruned {
		t.Fatalf("per-shard pruned sum %d != total %d", perShard, fs.ShardsPruned)
	}
}

// TestShardedQueryBatchClamps: workers <= 0 and workers > len(queries) must
// clamp on the sharded engine exactly like the monolithic one.
func TestShardedQueryBatchClamps(t *testing.T) {
	ds := clusteredDataset(t, 120, 31)
	se, err := New(ds, 2, core.Options{GridS: 3, GridLevels: 1, NumLandmarks: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	users := locatedUsers(ds)
	batch := make([]core.BatchQuery, 3)
	for i := range batch {
		batch[i] = core.BatchQuery{Algo: core.AIS, Q: users[i], Params: core.Params{K: 4, Alpha: 0.5}}
	}
	for _, workers := range []int{-5, 0, 1, 2, 3, 1000} {
		out := se.QueryBatch(batch, workers)
		if len(out) != len(batch) {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, r := range out {
			if r.Err != nil || r.Result == nil {
				t.Fatalf("workers=%d slot %d: %v", workers, i, r.Err)
			}
		}
	}
	if out := se.QueryBatch(nil, 4); len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
}

// TestNewValidation pins the constructor's error surface.
func TestNewValidation(t *testing.T) {
	ds := clusteredDataset(t, 60, 37)
	if _, err := New(nil, 2, core.Options{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := New(ds, 0, core.Options{}); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := New(ds, MaxShards+1, core.Options{}); err == nil {
		t.Fatal("too many shards accepted")
	}
	// More shards than leaf cells (2x2 grid, 1 level = 4 cells).
	if _, err := New(ds, 8, core.Options{GridS: 2, GridLevels: 1}); err == nil {
		t.Fatal("shards > cells accepted")
	}
	se, err := New(ds, 4, core.Options{GridS: 3, GridLevels: 1, NumLandmarks: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	if _, err := se.Query(core.AIS, -1, core.Params{K: 3, Alpha: 0.5}); err == nil {
		t.Fatal("negative query user accepted")
	}
	if _, err := se.Query(core.AIS, graph.VertexID(ds.NumUsers()), core.Params{K: 3, Alpha: 0.5}); err == nil {
		t.Fatal("out-of-range query user accepted")
	}
	if err := se.MoveUser(5, spatial.Point{X: math.NaN(), Y: 0}); err == nil {
		t.Fatal("NaN move accepted")
	}
	if err := se.AddFriend(3, 3, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
}

// TestPartitionCoversAllCells: every leaf cell maps to a valid shard and
// every shard owns at least one cell.
func TestPartitionCoversAllCells(t *testing.T) {
	ds := clusteredDataset(t, 200, 41)
	for _, S := range []int{1, 2, 4, 8, 16} {
		se, err := New(ds, S, core.Options{GridS: 5, GridLevels: 2, NumLandmarks: 2, Seed: 41})
		if err != nil {
			t.Fatal(err)
		}
		owned := make([]int, S)
		for idx := range se.cellShard {
			s := se.CellShard(int32(idx))
			if s < 0 || s >= S {
				t.Fatalf("S=%d: cell %d maps to shard %d", S, idx, s)
			}
			owned[s]++
		}
		for s, c := range owned {
			if c == 0 {
				t.Fatalf("S=%d: shard %d owns no cells", S, s)
			}
		}
		se.Close()
	}
}

// TestConcurrentEdgeBroadcastConvergence: concurrent async writers of
// overlapping edges must leave every shard's replicated graph identical —
// the pair-stripe serialization guarantees all shards receive ops for one
// edge in the same order (this test fails without it, with shards
// disagreeing on last-write-wins).
func TestConcurrentEdgeBroadcastConvergence(t *testing.T) {
	ds := clusteredDataset(t, 100, 47)
	se, err := New(ds, 4, core.Options{GridS: 3, GridLevels: 1, NumLandmarks: 2, Seed: 47, UpdateMaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()

	const writers = 4
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(900 + w)))
			for i := 0; i < 150; i++ {
				// A tiny pair space maximizes same-edge contention.
				u, v := rng.Int31n(8), rng.Int31n(8)
				if u == v {
					continue
				}
				var err error
				if rng.Intn(4) == 0 {
					err = se.RemoveFriendAsync(u, v)
				} else {
					err = se.AddFriendAsync(u, v, 0.05+rng.Float64())
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	se.Flush()

	// Every shard's published graph must agree edge for edge.
	ref := se.shards[0].LiveSocialGraph()
	for s := 1; s < se.NumShards(); s++ {
		g := se.shards[s].LiveSocialGraph()
		if g.NumEdges() != ref.NumEdges() {
			t.Fatalf("shard %d has %d edges, shard 0 has %d", s, g.NumEdges(), ref.NumEdges())
		}
		for u := int32(0); u < 8; u++ {
			for v := u + 1; v < 8; v++ {
				w0, ok0 := ref.EdgeWeight(u, v)
				ws, oks := g.EdgeWeight(u, v)
				if ok0 != oks || (ok0 && w0 != ws) {
					t.Fatalf("shards 0 and %d diverge on edge (%d,%d): (%v,%v) vs (%v,%v)", s, u, v, w0, ok0, ws, oks)
				}
			}
		}
	}
}
