package shard

import (
	"fmt"

	"ssrq/internal/core"
	"ssrq/internal/spatial"
)

// Update routing. Location ops go to the shard owning the target region; a
// move that crosses a shard boundary becomes a removal on the old owner plus
// an insertion on the new one, with the owner map updated under the user's
// routing lock so concurrent movers of the same user cannot interleave into
// a doubly-located state. Edge ops are broadcast to every shard (the social
// graph is replicated — see the package comment).
//
// Ordering is the invariant everything hangs on: for any one user, the
// per-shard application order must match the routing order, or a
// remove+insert pair from a cross-shard move could invert and leave the user
// located twice (or nowhere) permanently. Two mechanisms provide it:
//
//   - Asynchronous ops enqueue onto the owning shards' FIFO pipelines while
//     holding a routing lock — the user's stripe for location ops, the
//     unordered pair's stripe for edge broadcasts — so the pipeline order
//     per shard is the routing order, and concurrent writers of one edge
//     cannot deliver their broadcasts in different orders to different
//     shards (which would diverge the replicated graphs permanently).
//   - Synchronous batches take every routing lock (in index order — no
//     deadlock), flush each shard they are about to write (draining async
//     ops routed earlier), and only then apply directly. Holding all stripes
//     freezes async routing for the duration, so nothing can slip between
//     the flush and the apply.
//
// Cross-shard atomicity is deliberately out of scope for a partitioned
// engine: each shard publishes its own epochs, queries are per-shard
// snapshot-consistent, and the merge deduplicates the transient window where
// a mid-relocation user is visible in two shards at once.

// validate rejects a malformed update before any routing decision is made.
// Shard 0 stands in for all shards: every shard shares the same user range,
// landmark count and churn support.
func (se *Engine) validate(op core.Update) error {
	return se.shards[0].ValidateUpdate(op)
}

// enqueueRouted routes one already-validated op onto the owning shards'
// asynchronous pipelines. The closed re-check under the stripe makes async
// routing atomic with respect to Close: Close sets the flag and closes the
// shards while holding every stripe, so a route either completes before
// the barrier (and Close's drain applies it on every shard) or observes
// closed and touches nothing — a multi-shard op can never half-land.
func (se *Engine) enqueueRouted(op core.Update) error {
	if op.Kind != core.OpLocation {
		// The whole broadcast runs under the pair's stripe: concurrent
		// writers of the same edge serialize here, so every shard's pipeline
		// receives their ops in the same order (last write wins uniformly),
		// and a synchronous batch holding all stripes cannot interleave with
		// a half-delivered broadcast.
		mu := se.lockForEdge(op.U, op.V)
		mu.Lock()
		defer mu.Unlock()
		if se.closed.Load() {
			return fmt.Errorf("shard: engine closed")
		}
		for _, sh := range se.shards {
			var err error
			if op.Kind == core.OpEdgeRemove {
				err = sh.RemoveFriendAsync(op.U, op.V)
			} else {
				err = sh.AddFriendAsync(op.U, op.V, op.W)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	mu := se.lockFor(op.ID)
	mu.Lock()
	defer mu.Unlock()
	if se.closed.Load() {
		return fmt.Errorf("shard: engine closed")
	}
	old := se.owner[op.ID].Load()
	if op.Remove {
		if old < 0 {
			return nil // already unlocated: nothing owns the user
		}
		se.owner[op.ID].Store(-1)
		return se.shards[old].RemoveUserLocationAsync(op.ID)
	}
	dst := se.shardOfPoint(op.To)
	if old >= 0 && old != dst {
		if err := se.shards[old].RemoveUserLocationAsync(op.ID); err != nil {
			return err
		}
	}
	se.owner[op.ID].Store(dst)
	return se.shards[dst].MoveUserAsync(op.ID, op.To)
}

// routeInto routes one already-validated op into per-shard batches, updating
// the owner map. Caller holds every routing lock.
func (se *Engine) routeInto(per [][]core.Update, op core.Update) {
	if op.Kind != core.OpLocation {
		for s := range per {
			per[s] = append(per[s], op)
		}
		return
	}
	old := se.owner[op.ID].Load()
	if op.Remove {
		if old >= 0 {
			per[old] = append(per[old], op)
			se.owner[op.ID].Store(-1)
		}
		return
	}
	dst := se.shardOfPoint(op.To)
	if old >= 0 && old != dst {
		per[old] = append(per[old], core.Update{ID: op.ID, Remove: true})
	}
	per[dst] = append(per[dst], op)
	se.owner[op.ID].Store(dst)
}

// lockAllStripes / unlockAllStripes freeze asynchronous routing for the
// duration of a synchronous batch. Acquisition in index order keeps the
// stripes deadlock-free against single-stripe async routers.
func (se *Engine) lockAllStripes() {
	for i := range se.locks {
		se.locks[i].Lock()
	}
}

func (se *Engine) unlockAllStripes() {
	for i := len(se.locks) - 1; i >= 0; i-- {
		se.locks[i].Unlock()
	}
}

// ApplyUpdates validates the whole batch, routes every op, and applies each
// shard's share as one published epoch per shard before returning
// (read-your-writes). On a validation error nothing is applied. Works after
// Close, like the monolithic engine's synchronous path.
func (se *Engine) ApplyUpdates(ops []core.Update) error {
	for _, op := range ops {
		if err := se.validate(op); err != nil {
			return err
		}
	}
	se.lockAllStripes()
	defer se.unlockAllStripes()
	per := make([][]core.Update, len(se.shards))
	for _, op := range ops {
		se.routeInto(per, op)
	}
	for s, batch := range per {
		if len(batch) == 0 {
			continue
		}
		// Drain async ops routed before this batch so the shard applies its
		// stream in routing order; stripes are held, so nothing new arrives.
		se.shards[s].Flush()
		if err := se.shards[s].ApplyUpdates(batch); err != nil {
			return err
		}
	}
	return nil
}

// MoveUser relocates a user synchronously (normalized coordinates).
func (se *Engine) MoveUser(id int32, to spatial.Point) error {
	return se.ApplyUpdates([]core.Update{{ID: id, To: to}})
}

// RemoveUserLocation drops a user's location synchronously.
func (se *Engine) RemoveUserLocation(id int32) error {
	return se.ApplyUpdates([]core.Update{{ID: id, Remove: true}})
}

// MoveUserAsync enqueues a relocation on the owning shard's pipeline.
func (se *Engine) MoveUserAsync(id int32, to spatial.Point) error {
	op := core.Update{ID: id, To: to}
	if err := se.validate(op); err != nil {
		return err
	}
	return se.enqueueRouted(op)
}

// RemoveUserLocationAsync enqueues a location removal.
func (se *Engine) RemoveUserLocationAsync(id int32) error {
	op := core.Update{ID: id, Remove: true}
	if err := se.validate(op); err != nil {
		return err
	}
	return se.enqueueRouted(op)
}

// AddFriend inserts (or reweights) a friendship on every shard, one
// published epoch per shard, before returning.
func (se *Engine) AddFriend(u, v int32, w float64) error {
	return se.ApplyUpdates([]core.Update{{Kind: core.OpEdgeUpsert, U: u, V: v, W: w}})
}

// RemoveFriend deletes a friendship on every shard.
func (se *Engine) RemoveFriend(u, v int32) error {
	return se.ApplyUpdates([]core.Update{{Kind: core.OpEdgeRemove, U: u, V: v}})
}

// AddFriendAsync enqueues a friendship upsert on every shard's pipeline.
func (se *Engine) AddFriendAsync(u, v int32, w float64) error {
	op := core.Update{Kind: core.OpEdgeUpsert, U: u, V: v, W: w}
	if err := se.validate(op); err != nil {
		return err
	}
	return se.enqueueRouted(op)
}

// RemoveFriendAsync enqueues a friendship removal on every shard's pipeline.
func (se *Engine) RemoveFriendAsync(u, v int32) error {
	op := core.Update{Kind: core.OpEdgeRemove, U: u, V: v}
	if err := se.validate(op); err != nil {
		return err
	}
	return se.enqueueRouted(op)
}

// Flush blocks until every update enqueued before the call has been applied
// and published by its shard — the read-your-writes barrier across the whole
// partitioned engine.
func (se *Engine) Flush() {
	for _, sh := range se.shards {
		sh.Flush()
	}
}

// Close drains and stops every shard's update pipeline and background
// maintenance, holding every routing stripe throughout so in-flight async
// routes finish (and drain on every shard) before the shards shut down and
// later ones are refused whole — see enqueueRouted. Idempotent; queries
// and synchronous mutation keep working afterwards (stale structures then
// stay stale until an explicit RebuildLandmarks/RebuildCH, exactly like
// the monolithic engine).
func (se *Engine) Close() {
	se.lockAllStripes()
	defer se.unlockAllStripes()
	se.closed.Store(true)
	for _, sh := range se.shards {
		sh.Close()
	}
}
