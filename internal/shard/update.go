package shard

import (
	"fmt"
	"math/bits"

	"ssrq/internal/core"
	"ssrq/internal/spatial"
)

// Update routing. Location ops go to the shard owning the target region; a
// move that crosses a shard boundary becomes a removal on the old owner plus
// an insertion on the new one, with the owner map updated under the user's
// routing lock so concurrent movers of the same user cannot interleave into
// a doubly-located state. Edge ops route to shard 0's pipeline only: its
// aggregate index forwards them to the shared social substrate, which
// applies each op ONCE and synchronously syncs every shard's summaries to
// the new social epoch — O(1) in the shard count, where the replicated
// design this replaced broadcast every edge op S times.
//
// Ordering is the invariant everything hangs on: for any one user, the
// per-shard application order must match the routing order, or a
// remove+insert pair from a cross-shard move could invert and leave the user
// located twice (or nowhere) permanently. Two mechanisms provide it:
//
//   - Asynchronous ops enqueue onto the owning shards' FIFO pipelines while
//     holding a routing lock — the user's stripe for location ops, the
//     unordered pair's stripe for edge ops — so the pipeline order per shard
//     is the routing order, and concurrent writers of one edge cannot reach
//     the substrate in different orders (which would diverge last-write-wins
//     outcomes).
//   - Synchronous batches take the routing locks for exactly the stripes the
//     batch touches (in index order — no deadlock against single-stripe
//     async routers or the all-stripe rebalance/Close paths), flush each
//     shard they are about to write (draining async ops routed earlier for
//     those users), and only then apply directly. Holding a user's stripe
//     freezes async routing for that user, so nothing for the batch's users
//     can slip between the flush and the apply; traffic for untouched users
//     proceeds concurrently, which is the point — PR 5's all-stripe
//     acquisition made every sync batch a global writer barrier.
//
// Cross-shard atomicity is deliberately out of scope for a partitioned
// engine: each shard publishes its own epochs, queries are per-shard
// snapshot-consistent, and the merge deduplicates the transient window where
// a mid-relocation user is visible in two shards at once.

// validate rejects a malformed update before any routing decision is made.
// Shard 0 stands in for all shards: every shard shares the same user range,
// landmark count and churn support.
func (se *Engine) validate(op core.Update) error {
	return se.shards[0].ValidateUpdate(op)
}

// enqueueRouted routes one already-validated op onto the owning shard's
// asynchronous pipeline. The closed re-check under the stripe makes async
// routing atomic with respect to Close: Close sets the flag and closes the
// shards while holding every stripe, so a route either completes before
// the barrier (and Close's drain applies it) or observes closed and touches
// nothing — a multi-shard op can never half-land.
func (se *Engine) enqueueRouted(op core.Update) error {
	if op.Kind != core.OpLocation {
		// Concurrent writers of the same edge serialize on the pair's stripe,
		// so shard 0's pipeline — and through it the shared substrate —
		// receives their ops in one order (last write wins deterministically).
		mu := se.lockForEdge(op.U, op.V)
		mu.Lock()
		defer mu.Unlock()
		if se.closed.Load() {
			return fmt.Errorf("shard: engine closed")
		}
		var err error
		if op.Kind == core.OpEdgeRemove {
			err = se.shards[0].RemoveFriendAsync(op.U, op.V)
		} else {
			err = se.shards[0].AddFriendAsync(op.U, op.V, op.W)
		}
		if err == nil {
			// Still under the pair's stripe: the logged order is the
			// pipeline (= application) order for this edge.
			se.logOps([]core.Update{op})
		}
		return err
	}
	mu := se.lockFor(op.ID)
	mu.Lock()
	if se.closed.Load() {
		mu.Unlock()
		return fmt.Errorf("shard: engine closed")
	}
	err := se.routeAsyncLocked(op)
	if err == nil {
		// Log the single logical op under the user's stripe; replay
		// re-derives the cross-shard remove+insert split itself. (The
		// split halves must not be logged: the two shards' pipelines
		// publish independently, so their application order across shards
		// is not the routing order — the stripe-held logical stream is.)
		se.logOps([]core.Update{op})
	}
	mu.Unlock()
	if err == nil {
		se.noteUpdates(1)
	}
	return err
}

// routeAsyncLocked enqueues one location op; caller holds the user's stripe.
func (se *Engine) routeAsyncLocked(op core.Update) error {
	old := se.owner[op.ID].Load()
	if op.Remove {
		if old < 0 {
			return nil // already unlocated: nothing owns the user
		}
		se.owner[op.ID].Store(-1)
		return se.shards[old].RemoveUserLocationAsync(op.ID)
	}
	dst := se.shardOfPoint(op.To)
	if old >= 0 && old != dst {
		if err := se.shards[old].RemoveUserLocationAsync(op.ID); err != nil {
			return err
		}
	}
	se.owner[op.ID].Store(dst)
	return se.shards[dst].MoveUserAsync(op.ID, op.To)
}

// routeInto routes one already-validated op into per-shard batches, updating
// the owner map. Caller holds the routing locks for every op in the batch.
func (se *Engine) routeInto(per [][]core.Update, op core.Update) {
	if op.Kind != core.OpLocation {
		per[0] = append(per[0], op) // shard 0 forwards to the shared substrate
		return
	}
	old := se.owner[op.ID].Load()
	if op.Remove {
		if old >= 0 {
			per[old] = append(per[old], op)
			se.owner[op.ID].Store(-1)
		}
		return
	}
	dst := se.shardOfPoint(op.To)
	if old >= 0 && old != dst {
		per[old] = append(per[old], core.Update{ID: op.ID, Remove: true})
	}
	per[dst] = append(per[dst], op)
	se.owner[op.ID].Store(dst)
}

// stripeMaskOf returns the set of routing stripes a batch touches, as a bit
// per stripe (the stripe count is pinned to 64 by the mask type).
func (se *Engine) stripeMaskOf(ops []core.Update) uint64 {
	var mask uint64
	for _, op := range ops {
		if op.Kind == core.OpLocation {
			mask |= 1 << uint(stripeOf(op.ID))
		} else {
			mask |= 1 << uint(stripeOfEdge(op.U, op.V))
		}
	}
	return mask
}

// lockStripes / unlockStripes acquire exactly the masked stripes, in index
// order (and release in reverse), so partial acquisitions compose with the
// all-stripe holders (rebalance, Close) without deadlock.
func (se *Engine) lockStripes(mask uint64) {
	for m := mask; m != 0; m &= m - 1 {
		se.locks[bits.TrailingZeros64(m)].Lock()
	}
}

func (se *Engine) unlockStripes(mask uint64) {
	for m := mask; m != 0; {
		i := 63 - bits.LeadingZeros64(m)
		se.locks[i].Unlock()
		m &^= 1 << uint(i)
	}
}

// lockAllStripes / unlockAllStripes freeze asynchronous routing entirely —
// the rebalance drain and Close barriers.
func (se *Engine) lockAllStripes() {
	for i := range se.locks {
		se.locks[i].Lock()
	}
}

func (se *Engine) unlockAllStripes() {
	for i := len(se.locks) - 1; i >= 0; i-- {
		se.locks[i].Unlock()
	}
}

// ApplyUpdates validates the whole batch, routes every op, and applies each
// shard's share as one published epoch per shard before returning
// (read-your-writes). Only the routing stripes the batch actually touches
// are held — concurrent async traffic for other users keeps flowing. On a
// validation error nothing is applied. Works after Close, like the
// monolithic engine's synchronous path.
func (se *Engine) ApplyUpdates(ops []core.Update) error {
	for _, op := range ops {
		if err := se.validate(op); err != nil {
			return err
		}
	}
	mask := se.stripeMaskOf(ops)
	se.lockStripes(mask)
	defer se.unlockStripes(mask)
	// Under the batch's stripes async routing for these users is frozen and
	// the per-shard pipelines are about to be flushed, so logging here puts
	// the batch at its true position in every touched user's op order.
	se.logOps(ops)
	per := make([][]core.Update, len(se.shards))
	for _, op := range ops {
		se.routeInto(per, op)
	}
	for s, batch := range per {
		if len(batch) == 0 {
			continue
		}
		// Drain async ops routed before this batch so the shard applies this
		// batch's users in routing order; their stripes are held, so nothing
		// new for them arrives between the flush and the apply.
		se.shards[s].Flush()
		if err := se.shards[s].ApplyUpdates(batch); err != nil {
			return err
		}
	}
	se.noteUpdates(len(ops))
	return nil
}

// MoveUser relocates a user synchronously (normalized coordinates).
func (se *Engine) MoveUser(id int32, to spatial.Point) error {
	return se.ApplyUpdates([]core.Update{{ID: id, To: to}})
}

// RemoveUserLocation drops a user's location synchronously.
func (se *Engine) RemoveUserLocation(id int32) error {
	return se.ApplyUpdates([]core.Update{{ID: id, Remove: true}})
}

// MoveUserAsync enqueues a relocation on the owning shard's pipeline.
func (se *Engine) MoveUserAsync(id int32, to spatial.Point) error {
	op := core.Update{ID: id, To: to}
	if err := se.validate(op); err != nil {
		return err
	}
	return se.enqueueRouted(op)
}

// RemoveUserLocationAsync enqueues a location removal.
func (se *Engine) RemoveUserLocationAsync(id int32) error {
	op := core.Update{ID: id, Remove: true}
	if err := se.validate(op); err != nil {
		return err
	}
	return se.enqueueRouted(op)
}

// AddFriend inserts (or reweights) a friendship in the shared substrate,
// synchronously — every shard's next snapshot carries the new social epoch.
func (se *Engine) AddFriend(u, v int32, w float64) error {
	return se.ApplyUpdates([]core.Update{{Kind: core.OpEdgeUpsert, U: u, V: v, W: w}})
}

// RemoveFriend deletes a friendship from the shared substrate.
func (se *Engine) RemoveFriend(u, v int32) error {
	return se.ApplyUpdates([]core.Update{{Kind: core.OpEdgeRemove, U: u, V: v}})
}

// AddFriendAsync enqueues a friendship upsert (applied once, via shard 0).
func (se *Engine) AddFriendAsync(u, v int32, w float64) error {
	op := core.Update{Kind: core.OpEdgeUpsert, U: u, V: v, W: w}
	if err := se.validate(op); err != nil {
		return err
	}
	return se.enqueueRouted(op)
}

// RemoveFriendAsync enqueues a friendship removal (applied once, via shard 0).
func (se *Engine) RemoveFriendAsync(u, v int32) error {
	op := core.Update{Kind: core.OpEdgeRemove, U: u, V: v}
	if err := se.validate(op); err != nil {
		return err
	}
	return se.enqueueRouted(op)
}

// Flush blocks until every update enqueued before the call has been applied
// and published by its shard — the read-your-writes barrier across the whole
// partitioned engine.
func (se *Engine) Flush() {
	for _, sh := range se.shards {
		sh.Flush()
	}
}

// Close drains and stops every shard's update pipeline, waits out any
// in-flight rebalance, and stops the shared substrate's background
// maintenance. It holds every routing stripe while setting closed and
// closing the shards, so in-flight async routes finish (and drain) before
// shutdown and later ones are refused whole — see enqueueRouted; a running
// rebalance observes closed at its next drain batch and aborts. Idempotent;
// queries and synchronous mutation keep working afterwards (stale structures
// then stay stale until an explicit RebuildLandmarks/RebuildCH, exactly like
// the monolithic engine).
func (se *Engine) Close() {
	se.lockAllStripes()
	se.closed.Store(true)
	for _, sh := range se.shards {
		sh.Close()
	}
	se.unlockAllStripes()
	se.bg.Wait()
	se.sub.Close()
}
