package shard

import (
	"math"

	"ssrq/internal/core"
)

// Online rebalancing. The construction-time Z-order partition equalizes
// occupancy for the initial population, but distance-dependent migration
// (hotspot drift, in the Herrera-Yagüe et al. sense) concentrates users into
// few cells and unbalances the cut: one shard's grid absorbs most of the
// update and query load while the rest idle. The engine therefore watches
// its own occupancy imbalance (max shard population over mean) on the
// update path and, past Options.RebalanceThreshold, re-cuts the curve
// ONLINE: cutCurve runs again over live per-cell occupancy, and every leaf
// cell whose owner changed is drained to its new shard through the ordinary
// synchronous update pipeline.
//
// The migration protocol keeps queries lock-free and exact throughout:
//
//  1. Cells move in small batches (Options.RebalanceDrainBatch) under all
//     routing stripes, so the owner map and the per-cell routing are frozen
//     per batch while async traffic flows freely between batches.
//  2. Per cell, ownership flips first (cellShard.Store), the two pipelines
//     are flushed, and the cell's users are INSERTED into the new shard
//     before being REMOVED from the old one. Between the insert and the
//     remove a user is visible in both shards — harmless, because the
//     fan-out merge dedupes by ID and both shards score the user
//     identically (same coordinates, same shared social snapshot). The
//     reverse order would make users transiently invisible, which is a
//     wrong answer.
//  3. Each drained user goes through Snapshot()-published epochs on both
//     shards, so a query always sees either the old epoch (user in the old
//     shard), the overlap, or the new epoch — never a torn state.
//
// Close composes with an in-flight rebalance by setting closed under all
// stripes: the drain loop re-checks closed at every batch boundary (under
// the stripes) and aborts, and Close waits on the background goroutine
// before stopping the substrate.

// rebalanceCheckEvery is how many routed location ops pass between
// imbalance evaluations on the update path (the check walks every shard's
// snapshot header, so it is kept off the per-op fast path).
const rebalanceCheckEvery = 512

// RebalanceStats is a point-in-time view of the elastic partition.
type RebalanceStats struct {
	// Rebalances counts completed re-cuts that moved at least one cell.
	Rebalances int64
	// CellsMoved / UsersMoved total the migration volume across all re-cuts.
	CellsMoved int64
	UsersMoved int64
	// LastImbalance is the max/mean shard occupancy measured at the end of
	// the most recent re-cut (0 until one has run).
	LastImbalance float64
	// Threshold / DrainBatch echo the engine's rebalance knobs.
	Threshold  float64
	DrainBatch int
}

// RebalanceStats returns the accumulated rebalance counters.
func (se *Engine) RebalanceStats() RebalanceStats {
	return RebalanceStats{
		Rebalances:    se.rebalances.Load(),
		CellsMoved:    se.cellsMoved.Load(),
		UsersMoved:    se.usersMoved.Load(),
		LastImbalance: math.Float64frombits(se.lastImbalance.Load()),
		Threshold:     se.opts.RebalanceThreshold,
		DrainBatch:    se.opts.RebalanceDrainBatch,
	}
}

// RebalanceInFlight reports whether a re-cut (automatic or explicit) is
// currently draining cells. Observational only — the answer can be stale by
// the time the caller acts on it; use Rebalance() to actually serialize
// behind an in-flight drain.
func (se *Engine) RebalanceInFlight() bool {
	if se.rebalanceMu.TryLock() {
		se.rebalanceMu.Unlock()
		return false
	}
	return true
}

// Imbalance returns the current occupancy imbalance: the most populated
// shard's located-user count over the mean (1 for a perfectly balanced or
// empty engine).
func (se *Engine) Imbalance() float64 {
	maxPop, total := 0, 0
	for _, sh := range se.shards {
		n := sh.NumLocated()
		total += n
		if n > maxPop {
			maxPop = n
		}
	}
	if total == 0 {
		return 1
	}
	return float64(maxPop) * float64(len(se.shards)) / float64(total)
}

// noteUpdates ticks the auto-rebalance check after n routed location ops.
// Every rebalanceCheckEvery ops the imbalance is measured; past the
// threshold, one background re-cut is kicked (TryLock keeps it single-
// flight — a second trigger while one runs is simply dropped, the next
// check re-fires if skew persists).
func (se *Engine) noteUpdates(n int) {
	if se.opts.RebalanceThreshold <= 0 || len(se.shards) < 2 {
		return
	}
	c := se.opsSinceCheck.Add(int64(n))
	if c < rebalanceCheckEvery {
		return
	}
	se.opsSinceCheck.Add(-c)
	if se.closed.Load() || se.Imbalance() < se.opts.RebalanceThreshold {
		return
	}
	if !se.rebalanceMu.TryLock() {
		return
	}
	se.bg.Add(1)
	go func() {
		defer se.bg.Done()
		defer se.rebalanceMu.Unlock()
		se.rebalance()
	}()
}

// Rebalance synchronously re-cuts the partition against live occupancy and
// drains every cell whose owner changed; it returns how many cells moved
// (0 when the cut is already optimal). Exported for operational use and
// tests; the engine normally triggers the same path itself from the update
// stream. Serializes with the automatic trigger.
func (se *Engine) Rebalance() int {
	se.rebalanceMu.Lock()
	defer se.rebalanceMu.Unlock()
	return se.rebalance()
}

// rebalance is the re-cut + drain loop. Caller holds rebalanceMu.
func (se *Engine) rebalance() int {
	// Live occupancy per leaf cell, summed over the shards' published
	// snapshots. Cells may keep moving while we look (queries and async
	// routing are not paused); the cut only has to be good, not perfect —
	// residual skew re-triggers the next check.
	leaf := se.layout.LeafLevel()
	numCells := se.layout.NumCells(leaf)
	occ := make([]int64, numCells)
	for _, sh := range se.shards {
		g := sh.Snapshot().Grid()
		for c := int32(0); c < int32(numCells); c++ {
			occ[c] += int64(g.CountAt(leaf, c))
		}
	}
	target := cutCurve(se.layout, occ, len(se.shards))

	var moving []int32
	for c := int32(0); c < int32(numCells); c++ {
		if se.cellShard[c].Load() != target[c] {
			moving = append(moving, c)
		}
	}
	if len(moving) == 0 {
		return 0
	}

	batch := se.opts.RebalanceDrainBatch
	if batch < 1 {
		batch = 1
	}
	moved := 0
	for len(moving) > 0 {
		n := batch
		if n > len(moving) {
			n = len(moving)
		}
		se.lockAllStripes()
		if se.closed.Load() {
			se.unlockAllStripes()
			break
		}
		for _, c := range moving[:n] {
			if se.migrateCellLocked(c, target[c]) {
				moved++
			}
		}
		se.unlockAllStripes()
		moving = moving[n:]
	}
	if moved > 0 {
		se.rebalances.Add(1)
	}
	se.lastImbalance.Store(math.Float64bits(se.Imbalance()))
	return moved
}

// migrateCellLocked re-owns one leaf cell: flip routing, drain both
// pipelines, then insert-before-remove every resident user. Caller holds
// every routing stripe, so the owner map is frozen and the flushed old-shard
// snapshot is the authoritative residency list.
func (se *Engine) migrateCellLocked(c, newS int32) bool {
	oldS := se.cellShard[c].Load()
	if oldS == newS {
		return false
	}
	// New routing first: any async op that enqueues after the stripes drop
	// already targets the new owner.
	se.cellShard[c].Store(newS)
	// Drain ops routed to the old owner before the flip so its snapshot
	// holds the users' settled locations.
	se.shards[oldS].Flush()
	se.shards[newS].Flush()

	g := se.shards[oldS].Snapshot().Grid()
	users := g.CellUsers(c)
	if len(users) == 0 {
		se.cellsMoved.Add(1)
		return true
	}
	inserts := make([]core.Update, 0, len(users))
	removes := make([]core.Update, 0, len(users))
	for _, id := range users {
		inserts = append(inserts, core.Update{ID: id, To: g.Point(id)})
		removes = append(removes, core.Update{ID: id, Remove: true})
	}
	// Insert into the new owner, repoint routing, then remove from the old:
	// a concurrent query sees the users in at least one shard at every
	// instant (both, transiently — MergeTopK dedupes by ID).
	if err := se.shards[newS].ApplyUpdates(inserts); err != nil {
		// Validation cannot fail here (coordinates come from a published
		// snapshot); revert routing defensively if it somehow does.
		se.cellShard[c].Store(oldS)
		return false
	}
	for _, id := range users {
		se.owner[id].Store(newS)
	}
	if err := se.shards[oldS].ApplyUpdates(removes); err != nil {
		return false
	}
	se.cellsMoved.Add(1)
	se.usersMoved.Add(int64(len(users)))
	return true
}
