package follower

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ssrq"
	"ssrq/internal/httpapi"
)

// driveChurn applies n deterministic synchronous mutations to e.
func driveChurn(t *testing.T, e *ssrq.Engine, d *ssrq.Dataset, n int, seed int64) {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	norm := d.Norms().Spatial
	users := d.NumUsers()
	for i := 0; i < n; i++ {
		var err error
		switch r := rnd.Float64(); {
		case r < 0.65:
			err = e.MoveUser(int32(rnd.Intn(users)),
				ssrq.Point{X: rnd.Float64() * norm, Y: rnd.Float64() * norm})
		case r < 0.75:
			err = e.RemoveUserLocation(int32(rnd.Intn(users)))
		case r < 0.9:
			u, v := int32(rnd.Intn(40)), int32(rnd.Intn(40))
			if u == v {
				v = (v + 1) % 40
			}
			err = e.AddFriend(u, v, 0.1+rnd.Float64())
		default:
			u, v := int32(rnd.Intn(40)), int32(rnd.Intn(40))
			if u == v {
				v = (v + 1) % 40
			}
			err = e.RemoveFriend(u, v)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// requireSameState asserts identical user locations and close query results.
func requireSameState(t *testing.T, d *ssrq.Dataset, a, b *ssrq.Engine) {
	t.Helper()
	for id := 0; id < d.NumUsers(); id++ {
		pa, oka := a.UserLocation(int32(id))
		pb, okb := b.UserLocation(int32(id))
		if oka != okb || (oka && pa != pb) {
			t.Fatalf("user %d: (%v,%v) vs (%v,%v)", id, pa, oka, pb, okb)
		}
	}
	var queried int
	for id := 0; id < d.NumUsers() && queried < 5; id++ {
		if _, ok := a.UserLocation(int32(id)); !ok {
			continue
		}
		queried++
		ra, ea := a.TopKWith(ssrq.TSA, int32(id), 10, 0.4)
		rb, eb := b.TopKWith(ssrq.TSA, int32(id), 10, 0.4)
		if ea != nil || eb != nil {
			t.Fatalf("query %d: %v / %v", id, ea, eb)
		}
		if len(ra.Entries) != len(rb.Entries) {
			t.Fatalf("query %d: %d vs %d entries", id, len(ra.Entries), len(rb.Entries))
		}
		for i := range ra.Entries {
			if math.Abs(ra.Entries[i].F-rb.Entries[i].F) > 1e-12 {
				t.Fatalf("query %d rank %d: F %v vs %v", id, i, ra.Entries[i].F, rb.Entries[i].F)
			}
		}
	}
	if queried == 0 {
		t.Fatal("no located users to query")
	}
}

// awaitCaughtUp waits until the follower's applied position reaches seq.
func awaitCaughtUp(t *testing.T, f *Follower, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := f.Stats()
		if st.AppliedSeq >= seq {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at seq %d (leader %d, err %q), want %d",
				st.AppliedSeq, st.LeaderSeq, st.LastError, seq)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestFollowerTailsLeaderLive(t *testing.T) {
	ds, err := ssrq.Synthesize("gowalla", 300, 42)
	if err != nil {
		t.Fatal(err)
	}
	leader, err := ssrq.NewEngine(ds, &ssrq.Options{
		Durability: &ssrq.DurabilityOptions{Dir: t.TempDir(), Fsync: "off", KeepSegments: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	driveChurn(t, leader, ds, 150, 7)

	// The follower bootstraps mid-history and tails concurrently with
	// further leader churn.
	f, err := New(ds, EngineSource{Leader: leader}, &Options{PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	driveChurn(t, leader, ds, 150, 8)

	awaitCaughtUp(t, f, leader.WALLastSeq())
	st := f.Stats()
	if st.LagOps != 0 {
		t.Fatalf("caught-up follower reports lag %d", st.LagOps)
	}
	if st.LastError != "" || st.ResyncRequired {
		t.Fatalf("unhealthy follower: %+v", st)
	}
	requireSameState(t, ds, leader, f.Engine())
}

// TestFollowerPrefixConsistency single-steps replication in small batches
// and checks, at an intermediate position A, that the replica's world is
// exactly the leader's history [1..A] — not a reordered or gappy subset.
func TestFollowerPrefixConsistency(t *testing.T) {
	ds, err := ssrq.Synthesize("gowalla", 300, 43)
	if err != nil {
		t.Fatal(err)
	}
	leader, err := ssrq.NewEngine(ds, &ssrq.Options{
		Durability: &ssrq.DurabilityOptions{Dir: t.TempDir(), Fsync: "off", KeepSegments: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	driveChurn(t, leader, ds, 400, 9)
	last := leader.WALLastSeq()

	f, err := New(ds, EngineSource{Leader: leader}, &Options{Manual: true, BatchMax: 37})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	prev := f.Stats().AppliedSeq
	for i := 0; f.Stats().AppliedSeq < last; i++ {
		n, err := f.Pull()
		if err != nil {
			t.Fatal(err)
		}
		st := f.Stats()
		if st.AppliedSeq != prev+uint64(n) {
			t.Fatalf("pull %d: applied jumped %d → %d over %d records", i, prev, st.AppliedSeq, n)
		}
		prev = st.AppliedSeq
		if st.LagOps != last-st.AppliedSeq {
			t.Fatalf("pull %d: lag %d, want %d", i, st.LagOps, last-st.AppliedSeq)
		}
		// Midway: the replica must equal an engine built from exactly the
		// prefix [1..applied] of the leader's journal.
		if st.AppliedSeq >= last/2 && st.AppliedSeq < last/2+37 {
			recs, _, err := leader.WALRecords(1, int(st.AppliedSeq))
			if err != nil {
				t.Fatal(err)
			}
			twin, err := ssrq.NewEngine(ds, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := twin.ApplyWALRecords(recs); err != nil {
				t.Fatal(err)
			}
			requireSameState(t, ds, twin, f.Engine())
			twin.Close()
		}
	}
	requireSameState(t, ds, leader, f.Engine())
}

// TestFollowerBootstrapsFromCheckpoint verifies a replica starting against
// a pruned leader journal (checkpoint taken, history compacted) converges,
// and that falling behind a compaction is reported as ResyncRequired.
func TestFollowerBootstrapsFromCheckpoint(t *testing.T) {
	ds, err := ssrq.Synthesize("gowalla", 300, 44)
	if err != nil {
		t.Fatal(err)
	}
	leader, err := ssrq.NewEngine(ds, &ssrq.Options{
		Durability: &ssrq.DurabilityOptions{Dir: t.TempDir(), Fsync: "off"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()

	// A follower attached to the empty journal, left behind on purpose.
	stale, err := New(ds, EngineSource{Leader: leader}, &Options{Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()

	driveChurn(t, leader, ds, 300, 11)
	if err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	driveChurn(t, leader, ds, 100, 12)

	// Fresh follower: bootstrap = checkpoint state, then the tail.
	f, err := New(ds, EngineSource{Leader: leader}, &Options{Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Stats().AppliedSeq == 0 {
		t.Fatal("bootstrap ignored the checkpoint")
	}
	for f.Stats().AppliedSeq < leader.WALLastSeq() {
		if _, err := f.Pull(); err != nil {
			t.Fatal(err)
		}
	}
	requireSameState(t, ds, leader, f.Engine())

	// The stale follower's position predates the pruned history.
	if _, err := stale.Pull(); err == nil {
		t.Fatal("stale follower pulled through a compaction")
	}
	if !stale.Stats().ResyncRequired {
		t.Fatal("compacted-away follower not flagged ResyncRequired")
	}
}

func TestFollowerPromoteServesAndAcceptsWrites(t *testing.T) {
	ds, err := ssrq.Synthesize("gowalla", 300, 45)
	if err != nil {
		t.Fatal(err)
	}
	leader, err := ssrq.NewEngine(ds, &ssrq.Options{
		Durability: &ssrq.DurabilityOptions{Dir: t.TempDir(), Fsync: "off", KeepSegments: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	driveChurn(t, leader, ds, 200, 13)
	f, err := New(ds, EngineSource{Leader: leader}, &Options{PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	awaitCaughtUp(t, f, leader.WALLastSeq())
	leader.Close()

	promoted := f.Promote()
	defer promoted.Close()
	f.Close() // no-op after promotion: the engine stays alive

	// The promoted engine serves the replicated state and accepts writes.
	var q int32 = -1
	for id := 0; id < ds.NumUsers(); id++ {
		if _, ok := promoted.UserLocation(int32(id)); ok {
			q = int32(id)
			break
		}
	}
	if q < 0 {
		t.Fatal("no located user on promoted follower")
	}
	if _, err := promoted.TopKWith(ssrq.TSA, q, 10, 0.4); err != nil {
		t.Fatalf("query on promoted follower: %v", err)
	}
	norm := ds.Norms().Spatial
	if err := promoted.MoveUser(q, ssrq.Point{X: 0.5 * norm, Y: 0.5 * norm}); err != nil {
		t.Fatalf("write on promoted follower: %v", err)
	}
	if _, err := promoted.Subscribe(q, 5, 0.4); err != nil {
		t.Fatalf("subscribe on promoted follower: %v", err)
	}
}

// TestFollowerOverHTTP runs the whole replication path over the wire:
// durable leader behind httpapi, HTTPSource follower, follower-mode stats
// and write rejection on the replica's own server.
func TestFollowerOverHTTP(t *testing.T) {
	ds, err := ssrq.Synthesize("gowalla", 300, 46)
	if err != nil {
		t.Fatal(err)
	}
	leader, err := ssrq.NewEngine(ds, &ssrq.Options{
		Durability: &ssrq.DurabilityOptions{Dir: t.TempDir(), Fsync: "off", KeepSegments: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	driveChurn(t, leader, ds, 120, 17)
	srv := httptest.NewServer(httpapi.New(leader))
	defer srv.Close()

	f, err := New(ds, HTTPSource{BaseURL: srv.URL}, &Options{PollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	driveChurn(t, leader, ds, 120, 18)
	awaitCaughtUp(t, f, leader.WALLastSeq())
	requireSameState(t, ds, leader, f.Engine())

	// The leader's /stats carries the durability section.
	var leaderStats map[string]any
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&leaderStats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() // errok
	dur, ok := leaderStats["durability"].(map[string]any)
	if !ok {
		t.Fatalf("leader /stats missing durability section: %v", leaderStats["durability"])
	}
	if dur["last_seq"].(float64) != float64(leader.WALLastSeq()) {
		t.Fatalf("durability.last_seq = %v, leader at %d", dur["last_seq"], leader.WALLastSeq())
	}

	// A server over the replica reports replication position and refuses
	// writes.
	fsrv := httpapi.New(f.Engine())
	fsrv.SetFollower(func() (uint64, uint64) {
		st := f.Stats()
		return st.AppliedSeq, st.LeaderSeq
	})
	frontend := httptest.NewServer(fsrv)
	defer frontend.Close()

	var fstats map[string]any
	resp, err = http.Get(frontend.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&fstats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() // errok
	if fstats["role"] != "follower" {
		t.Fatalf("follower /stats role = %v", fstats["role"])
	}
	lag, ok := fstats["replication_lag_ops"].(float64)
	if !ok {
		t.Fatal("follower /stats missing replication_lag_ops")
	}
	if lag != 0 {
		t.Fatalf("caught-up follower /stats lag = %v", lag)
	}
	if fstats["replication_applied_seq"].(float64) != float64(leader.WALLastSeq()) {
		t.Fatalf("replication_applied_seq = %v, want %d", fstats["replication_applied_seq"], leader.WALLastSeq())
	}

	wresp, err := http.Post(frontend.URL+"/move", "application/json",
		strings.NewReader(`{"id":1,"x":0.5,"y":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close() // errok
	if wresp.StatusCode != http.StatusForbidden {
		t.Fatalf("mutation on follower returned %d, want 403", wresp.StatusCode)
	}
	// Queries still served.
	qresp, err := http.Get(frontend.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	qresp.Body.Close() // errok
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("read on follower returned %d", qresp.StatusCode)
	}
}
