// Package follower runs a read-only replica engine that tails a leader's
// write-ahead log. The leader journals every world mutation as a canonical
// oplog.Record in application order (see internal/oplog, internal/wal), so a
// replica is just: bootstrap from the leader's newest checkpoint, then apply
// the tail through the same internal update path recovery uses, forever.
//
// Replication is PREFIX CONSISTENT: records are applied synchronously in
// sequence order, so every query the replica answers reflects the leader's
// history up to exactly some log position A (the applied sequence), never a
// gappy or reordered subset. Lag is observable (leader seq − applied seq)
// and bounded by the poll interval plus one batch — there is no unbounded
// buffering anywhere on the path.
//
// Three transports implement Source: FileSource tails a WAL directory on
// shared storage, EngineSource tails an in-process leader, and HTTPSource
// tails a remote leader over the /wal/bootstrap + /wal/stream endpoints.
package follower

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ssrq"
	"ssrq/internal/oplog"
	"ssrq/internal/wal"
)

// Source is where a follower pulls the leader's journal from.
type Source interface {
	// Bootstrap returns the record sequence that brings a freshly built
	// engine to the leader's newest checkpoint state, plus the log position
	// that state represents (0 = no checkpoint; start from sequence 1).
	Bootstrap() ([]oplog.Record, uint64, error)
	// Fetch returns up to max contiguous records with sequence ≥ from, plus
	// the newest sequence the leader has journaled. wal.ErrCompacted means
	// from predates the retained history and the follower must re-sync.
	Fetch(from uint64, max int) ([]oplog.Record, uint64, error)
}

// FileSource tails a WAL directory directly — the shared-disk transport.
// Read-only: it never locks or mutates the leader's files.
type FileSource struct{ Dir string }

func (f FileSource) Bootstrap() ([]oplog.Record, uint64, error) {
	rec, err := wal.ScanDir(f.Dir)
	if err != nil {
		return nil, 0, err
	}
	return rec.CheckpointRecords, rec.CheckpointSeq, nil
}

func (f FileSource) Fetch(from uint64, max int) ([]oplog.Record, uint64, error) {
	return wal.ReadDirFrom(f.Dir, from, max)
}

// EngineSource tails an in-process durable leader.
type EngineSource struct{ Leader *ssrq.Engine }

func (e EngineSource) Bootstrap() ([]oplog.Record, uint64, error) {
	return e.Leader.WALBootstrap()
}

func (e EngineSource) Fetch(from uint64, max int) ([]oplog.Record, uint64, error) {
	return e.Leader.WALRecords(from, max)
}

// HTTPSource tails a remote leader over httpapi's /wal/bootstrap and
// /wal/stream endpoints (binary record stream; sequence metadata in
// headers; 410 Gone = compacted past the requested position).
type HTTPSource struct {
	// BaseURL is the leader server root, e.g. "http://leader:8080".
	BaseURL string
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

func (h HTTPSource) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

func (h HTTPSource) get(path string) ([]oplog.Record, uint64, error) {
	resp, err := h.client().Get(h.BaseURL + path)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close() // errok: read-only body
	if resp.StatusCode == http.StatusGone {
		return nil, 0, wal.ErrCompacted
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("follower: leader returned %s for %s", resp.Status, path)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	var recs []oplog.Record
	for len(body) > 0 {
		r, n, err := oplog.Decode(body)
		if err != nil {
			return nil, 0, fmt.Errorf("follower: corrupt record stream from leader: %w", err)
		}
		recs = append(recs, r)
		body = body[n:]
	}
	seq, err := strconv.ParseUint(resp.Header.Get("X-WAL-Seq"), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("follower: leader sent bad X-WAL-Seq: %w", err)
	}
	return recs, seq, nil
}

func (h HTTPSource) Bootstrap() ([]oplog.Record, uint64, error) {
	return h.get("/wal/bootstrap")
}

func (h HTTPSource) Fetch(from uint64, max int) ([]oplog.Record, uint64, error) {
	return h.get("/wal/stream?from=" + url.QueryEscape(strconv.FormatUint(from, 10)) +
		"&max=" + strconv.Itoa(max))
}

// Options tunes a follower.
type Options struct {
	// Engine configures the replica engine build (shard count, landmark
	// count, …). Durability must be nil: the replica consumes a journal, it
	// does not write one.
	Engine *ssrq.Options
	// PollInterval is how long the tail loop sleeps when caught up
	// (default 20ms). Worst-case observable lag is one interval plus one
	// batch apply.
	PollInterval time.Duration
	// BatchMax bounds one Fetch (default 8192 records).
	BatchMax int
	// Manual disables the background tail loop; the caller drives
	// replication by calling Pull. For tests and single-stepped replicas.
	Manual bool
}

// Stats is a follower's replication state.
type Stats struct {
	// AppliedSeq is the log prefix the replica's answers reflect.
	AppliedSeq uint64 `json:"applied_seq"`
	// LeaderSeq is the newest sequence the leader had journaled at the last
	// successful fetch.
	LeaderSeq uint64 `json:"leader_seq"`
	// LagOps = LeaderSeq − AppliedSeq.
	LagOps uint64 `json:"lag_ops"`
	// ResyncRequired: the leader compacted history past our position; the
	// replica must be rebuilt from a fresh bootstrap (run the leader with
	// KeepSegments, or poll faster, to avoid this).
	ResyncRequired bool `json:"resync_required,omitempty"`
	// LastError is the most recent fetch/apply failure ("" when healthy).
	LastError string `json:"last_error,omitempty"`
}

// Follower is a read-only replica tailing a leader's journal.
type Follower struct {
	eng      *ssrq.Engine
	src      Source
	interval time.Duration
	batchMax int

	applied  atomic.Uint64
	leader   atomic.Uint64
	resync   atomic.Bool
	lastErr  atomic.Pointer[string]
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	promoted atomic.Bool
}

// New builds the replica engine over the same construction dataset the
// leader was built from, bootstraps it from the source's newest checkpoint,
// and starts tailing. The dataset MUST be the leader's construction dataset
// (checkpoints are diffs against it).
func New(d *ssrq.Dataset, src Source, opts *Options) (*Follower, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 20 * time.Millisecond
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 8192
	}
	var eo ssrq.Options
	if o.Engine != nil {
		eo = *o.Engine
	}
	if eo.Durability != nil {
		return nil, fmt.Errorf("follower: replica engine must not have Durability set")
	}
	eng, err := ssrq.NewEngine(d, &eo)
	if err != nil {
		return nil, err
	}
	recs, upTo, err := src.Bootstrap()
	if err != nil {
		eng.Close()
		return nil, fmt.Errorf("follower: bootstrap: %w", err)
	}
	if err := eng.ApplyWALRecords(recs); err != nil {
		eng.Close()
		return nil, fmt.Errorf("follower: apply bootstrap: %w", err)
	}
	f := &Follower{
		eng:      eng,
		src:      src,
		interval: o.PollInterval,
		batchMax: o.BatchMax,
		stop:     make(chan struct{}),
	}
	f.applied.Store(upTo)
	f.leader.Store(upTo)
	if !o.Manual {
		f.wg.Add(1)
		go f.tail()
	}
	return f, nil
}

// tail is the replication loop: fetch from applied+1, apply, repeat;
// sleep only when caught up or failing.
func (f *Follower) tail() {
	defer f.wg.Done()
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		n, err := f.Pull()
		if err == nil && n > 0 {
			continue // more may be waiting: fetch again immediately
		}
		select {
		case <-f.stop:
			return
		case <-time.After(f.interval):
		}
	}
}

// Pull performs one fetch+apply round and returns how many records it
// applied, maintaining the replication stats. The Manual-mode driver; must
// not be called concurrently with the background loop.
func (f *Follower) Pull() (int, error) {
	n, err := f.pull()
	if err != nil {
		s := err.Error()
		f.lastErr.Store(&s)
		if errors.Is(err, wal.ErrCompacted) {
			f.resync.Store(true)
		}
		return n, err
	}
	f.lastErr.Store(nil)
	return n, nil
}

func (f *Follower) pull() (int, error) {
	from := f.applied.Load() + 1
	recs, leaderSeq, err := f.src.Fetch(from, f.batchMax)
	if err != nil {
		return 0, err
	}
	if leaderSeq > f.leader.Load() {
		f.leader.Store(leaderSeq)
	}
	if len(recs) == 0 {
		return 0, nil
	}
	if recs[0].Seq != from {
		return 0, fmt.Errorf("follower: wanted seq %d, leader sent %d", from, recs[0].Seq)
	}
	if err := f.eng.ApplyWALRecords(recs); err != nil {
		return 0, fmt.Errorf("follower: apply: %w", err)
	}
	f.applied.Store(recs[len(recs)-1].Seq)
	return len(recs), nil
}

// Engine returns the replica engine for queries and subscriptions. Do not
// mutate it while the follower is tailing (use Promote).
func (f *Follower) Engine() *ssrq.Engine { return f.eng }

// Stats reports the replication state.
func (f *Follower) Stats() Stats {
	st := Stats{
		AppliedSeq:     f.applied.Load(),
		LeaderSeq:      f.leader.Load(),
		ResyncRequired: f.resync.Load(),
	}
	if st.LeaderSeq > st.AppliedSeq {
		st.LagOps = st.LeaderSeq - st.AppliedSeq
	}
	if p := f.lastErr.Load(); p != nil {
		st.LastError = *p
	}
	return st
}

// Promote stops tailing and returns the engine, now a standalone writable
// engine at the replicated state — failover. The caller owns Close from
// here; closing the Follower afterwards is a no-op.
func (f *Follower) Promote() *ssrq.Engine {
	f.halt()
	f.promoted.Store(true)
	return f.eng
}

// Close stops tailing and closes the replica engine (unless promoted —
// the new owner closes it then).
func (f *Follower) Close() {
	f.halt()
	if !f.promoted.Load() {
		f.eng.Close()
	}
}

func (f *Follower) halt() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.wg.Wait()
}
