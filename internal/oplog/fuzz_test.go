package oplog

import (
	"bytes"
	"math"
	"testing"
)

// FuzzWALRecordRoundtrip checks the two safety properties recovery depends
// on: (a) every constructible record survives encode→decode byte-identically,
// and (b) arbitrary mutations of the encoded bytes are either detected
// (ErrCorrupt, via the checksum/shape checks) or classified as a clean
// truncation (ErrTruncated) — never silently decoded into a different record
// and never a panic.
func FuzzWALRecordRoundtrip(f *testing.F) {
	for _, r := range []Record{
		{Seq: 1, Kind: KindMove, ID: 7, X: 0.25, Y: 0.75},
		{Seq: 2, Kind: KindUnlocate, ID: -1},
		{Seq: 3, Kind: KindEdgeUpsert, U: 1, V: 9, W: 0.5},
		{Seq: math.MaxUint64, Kind: KindEdgeRemove, U: 1 << 30, V: -5},
	} {
		f.Add(r.Seq, uint8(r.Kind), r.ID, r.X, r.Y, r.U, r.V, r.W, []byte{}, -1, uint8(0))
	}
	f.Add(uint64(9), uint8(KindMove), int32(3), 0.1, 0.2, int32(0), int32(0), 0.0, []byte{1, 2, 3}, 5, uint8(0xff))

	f.Fuzz(func(t *testing.T, seq uint64, kind uint8, id int32, x, y float64, u, v int32, w float64, extra []byte, flipAt int, flipMask uint8) {
		r := Record{Seq: seq, Kind: Kind(kind), ID: id, X: x, Y: y, U: u, V: v, W: w}
		if _, ok := payloadLen(r.Kind); ok {
			// Normalize fields the kind does not carry, so the roundtrip
			// comparison is well-defined.
			switch r.Kind {
			case KindMove:
				r.U, r.V, r.W = 0, 0, 0
			case KindUnlocate:
				r.X, r.Y, r.U, r.V, r.W = 0, 0, 0, 0, 0
			case KindEdgeUpsert:
				r.ID, r.X, r.Y = 0, 0, 0
			case KindEdgeRemove:
				r.ID, r.X, r.Y, r.W = 0, 0, 0, 0
			}
			enc := r.Append(nil)
			got, n, err := Decode(enc)
			if err != nil {
				t.Fatalf("decode of valid record failed: %v", err)
			}
			if n != len(enc) {
				t.Fatalf("decode consumed %d of %d bytes", n, len(enc))
			}
			// NaN payloads cannot be compared with ==; compare re-encoded
			// bytes instead, which is the property replay depends on.
			if !bytes.Equal(got.Append(nil), enc) {
				t.Fatalf("roundtrip not byte-identical: %+v vs %+v", got, r)
			}

			// Every strict prefix is a clean truncation.
			if _, _, err := Decode(enc[:len(enc)/2]); err != ErrTruncated {
				t.Fatalf("prefix: got %v, want ErrTruncated", err)
			}

			// A flipped bit anywhere must not decode to a different record.
			if flipAt >= 0 && flipAt < len(enc) && flipMask != 0 {
				mut := append([]byte(nil), enc...)
				mut[flipAt] ^= flipMask
				if got2, _, err := Decode(mut); err == nil {
					if !bytes.Equal(got2.Append(nil), enc) {
						t.Fatalf("corruption at byte %d mask %#x silently decoded %+v", flipAt, flipMask, got2)
					}
				}
			}
		}

		// Arbitrary bytes never panic; they decode, truncate, or corrupt.
		if _, _, err := Decode(extra); err != nil && err != ErrTruncated && err != ErrCorrupt {
			t.Fatalf("unexpected decode error class: %v", err)
		}
	})
}
