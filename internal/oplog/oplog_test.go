package oplog

import (
	"bytes"
	"testing"

	"ssrq/internal/aggindex"
	"ssrq/internal/spatial"
)

func sampleRecords() []Record {
	return []Record{
		{Seq: 1, Kind: KindMove, ID: 7, X: 0.25, Y: 0.75},
		{Seq: 2, Kind: KindUnlocate, ID: 7},
		{Seq: 3, Kind: KindEdgeUpsert, U: 1, V: 9, W: 0.5},
		{Seq: 4, Kind: KindEdgeRemove, U: 1, V: 9},
		{Seq: 1<<63 + 5, Kind: KindMove, ID: 1<<31 - 1, X: -1.5, Y: 1e300},
	}
}

func TestRecordRoundtrip(t *testing.T) {
	var buf []byte
	recs := sampleRecords()
	for _, r := range recs {
		if got, want := r.EncodedSize(), len(r.Append(nil)); got != want {
			t.Fatalf("EncodedSize=%d but Append wrote %d", got, want)
		}
		buf = r.Append(buf)
	}
	for i, want := range recs {
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
		// Re-encoding must be byte-identical.
		if !bytes.Equal(got.Append(nil), buf[:n]) {
			t.Fatalf("record %d: re-encode differs", i)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := Record{Seq: 42, Kind: KindMove, ID: 3, X: 0.1, Y: 0.2}.Append(nil)
	for n := 0; n < len(full); n++ {
		if _, _, err := Decode(full[:n]); err != ErrTruncated {
			t.Fatalf("prefix of %d/%d bytes: got %v, want ErrTruncated", n, len(full), err)
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	full := Record{Seq: 42, Kind: KindEdgeUpsert, U: 1, V: 2, W: 0.3}.Append(nil)
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0xff
		r, n, err := Decode(mut)
		if err == nil {
			t.Fatalf("flipped byte %d: decoded %+v (%d bytes) without error", i, r, n)
		}
		if err != ErrCorrupt && err != ErrTruncated {
			t.Fatalf("flipped byte %d: unexpected error %v", i, err)
		}
	}
	// Unknown kind and bad version are corrupt even with a valid checksum.
	if _, _, err := Decode([]byte{Version, 200, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err != ErrCorrupt {
		t.Fatalf("unknown kind: got %v", err)
	}
	if _, _, err := Decode(append([]byte{99}, full[1:]...)); err != ErrCorrupt {
		t.Fatalf("bad version: got %v", err)
	}
}

func TestOpConversion(t *testing.T) {
	ops := []aggindex.Op{
		{ID: 4, To: spatial.Point{X: 0.5, Y: 0.5}},
		{ID: 4, Remove: true},
		{Kind: aggindex.OpEdgeUpsert, U: 2, V: 8, W: 0.9},
		{Kind: aggindex.OpEdgeRemove, U: 2, V: 8},
	}
	recs := FromOps(ops)
	if len(recs) != len(ops) {
		t.Fatalf("FromOps dropped records: %d != %d", len(recs), len(ops))
	}
	back := Ops(recs)
	for i := range ops {
		if back[i] != ops[i] {
			t.Fatalf("op %d: got %+v want %+v", i, back[i], ops[i])
		}
	}
}

func TestDecodeEmptyAndGarbage(t *testing.T) {
	if _, _, err := Decode(nil); err != ErrTruncated {
		t.Fatalf("nil: got %v", err)
	}
	garbage := bytes.Repeat([]byte{0xAB}, 64)
	if _, _, err := Decode(garbage); err != ErrCorrupt {
		t.Fatalf("garbage: got %v", err)
	}
}
