// Package oplog defines the canonical, self-describing record for every
// world mutation the engine can apply: locate/move a user, remove a user's
// location, upsert a weighted friendship edge, remove an edge. All mutation
// paths — synchronous calls, the async updater's coalesced batches, and the
// sharded router's stripe-ordered stream — reduce to sequences of these four
// records, and recovery replays them through the exact same Apply path that
// live traffic uses.
//
// Records hold NORMALIZED values (coordinates in [0,1]², weights already
// divided by dataset.Norms.Social), i.e. the representation every layer
// below the root API speaks. Replay therefore bypasses the root engine's
// raw→normalized conversion.
//
// Rebalance-driven cross-shard migrations are expressed with the same
// canonical op shape internally (insert@new / remove@old batches of
// aggindex.Op), but they are deliberately NOT sequenced into the durable
// log: they change shard placement, not world state, and replaying their
// remove halves would delete users. The write-ahead log records world
// changes only; a recovered engine re-derives its own placement.
//
// Wire format (version 1, little-endian):
//
//	off 0  uint8   version (= 1)
//	off 1  uint8   kind
//	off 2  uint16  payload length (fixed per kind; self-describing so
//	               future kinds can be skipped by old readers)
//	off 4  uint64  sequence number
//	off 12 payload
//	       Move:       id int32, x float64, y float64   (20 bytes)
//	       Unlocate:   id int32                          (4 bytes)
//	       EdgeUpsert: u int32, v int32, w float64      (16 bytes)
//	       EdgeRemove: u int32, v int32                  (8 bytes)
//	tail   uint32  CRC-32 (IEEE) over every preceding byte of the record
//
// Decode distinguishes a record that is merely incomplete (ErrTruncated —
// the torn tail a crash leaves behind; recovery truncates the file there
// and continues) from one whose bytes are wrong (ErrCorrupt — refused).
package oplog

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"

	"ssrq/internal/aggindex"
	"ssrq/internal/spatial"
)

// Kind discriminates the four world mutations.
type Kind uint8

const (
	// KindMove locates user ID at (X, Y), moving it if already located.
	KindMove Kind = 1
	// KindUnlocate removes user ID's location.
	KindUnlocate Kind = 2
	// KindEdgeUpsert sets edge {U, V} to weight W, inserting it if absent.
	KindEdgeUpsert Kind = 3
	// KindEdgeRemove deletes edge {U, V} (no-op if absent).
	KindEdgeRemove Kind = 4
)

// Version is the current wire-format version.
const Version = 1

const headerSize = 12 // version + kind + payloadLen + seq
const crcSize = 4

// MaxEncodedSize bounds the encoded size of any version-1 record.
const MaxEncodedSize = headerSize + 20 + crcSize

var (
	// ErrTruncated reports a buffer that ends mid-record: the prefix that
	// is present is consistent, there just isn't enough of it. A crashed
	// writer's torn tail decodes to this.
	ErrTruncated = errors.New("oplog: truncated record")
	// ErrCorrupt reports bytes that cannot be a record under any
	// continuation: bad version, unknown kind, wrong payload length for
	// the kind, or checksum mismatch.
	ErrCorrupt = errors.New("oplog: corrupt record")
)

// Record is one sequenced world mutation. Only the fields relevant to Kind
// are meaningful (Move/Unlocate use ID/X/Y; edges use U/V/W).
type Record struct {
	Seq  uint64
	Kind Kind
	ID   int32
	X, Y float64
	U, V int32
	W    float64
}

func payloadLen(k Kind) (int, bool) {
	switch k {
	case KindMove:
		return 20, true
	case KindUnlocate:
		return 4, true
	case KindEdgeUpsert:
		return 16, true
	case KindEdgeRemove:
		return 8, true
	}
	return 0, false
}

// EncodedSize returns the wire size of r.
func (r Record) EncodedSize() int {
	n, _ := payloadLen(r.Kind)
	return headerSize + n + crcSize
}

// Append encodes r onto b and returns the extended slice.
func (r Record) Append(b []byte) []byte {
	plen, ok := payloadLen(r.Kind)
	if !ok {
		// Unknown kinds cannot be constructed through the public
		// converters; encode as a zero-payload record of the raw kind so
		// the error surfaces at decode rather than panicking a writer.
		plen = 0
	}
	start := len(b)
	b = append(b, Version, byte(r.Kind))
	b = binary.LittleEndian.AppendUint16(b, uint16(plen))
	b = binary.LittleEndian.AppendUint64(b, r.Seq)
	switch r.Kind {
	case KindMove:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.ID))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.X))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.Y))
	case KindUnlocate:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.ID))
	case KindEdgeUpsert:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.U))
		b = binary.LittleEndian.AppendUint32(b, uint32(r.V))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.W))
	case KindEdgeRemove:
		b = binary.LittleEndian.AppendUint32(b, uint32(r.U))
		b = binary.LittleEndian.AppendUint32(b, uint32(r.V))
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b[start:]))
}

// Decode parses one record from the front of b, returning the record and
// how many bytes it consumed. It returns ErrTruncated when b holds a
// consistent but incomplete prefix and ErrCorrupt when the bytes cannot be
// a valid record.
func Decode(b []byte) (Record, int, error) {
	if len(b) < headerSize {
		return Record{}, 0, ErrTruncated
	}
	if b[0] != Version {
		return Record{}, 0, ErrCorrupt
	}
	k := Kind(b[1])
	want, ok := payloadLen(k)
	if !ok {
		return Record{}, 0, ErrCorrupt
	}
	plen := int(binary.LittleEndian.Uint16(b[2:4]))
	if plen != want {
		return Record{}, 0, ErrCorrupt
	}
	total := headerSize + plen + crcSize
	if len(b) < total {
		return Record{}, 0, ErrTruncated
	}
	if crc32.ChecksumIEEE(b[:total-crcSize]) != binary.LittleEndian.Uint32(b[total-crcSize:total]) {
		return Record{}, 0, ErrCorrupt
	}
	r := Record{
		Seq:  binary.LittleEndian.Uint64(b[4:12]),
		Kind: k,
	}
	p := b[headerSize:]
	switch k {
	case KindMove:
		r.ID = int32(binary.LittleEndian.Uint32(p[0:4]))
		r.X = math.Float64frombits(binary.LittleEndian.Uint64(p[4:12]))
		r.Y = math.Float64frombits(binary.LittleEndian.Uint64(p[12:20]))
	case KindUnlocate:
		r.ID = int32(binary.LittleEndian.Uint32(p[0:4]))
	case KindEdgeUpsert:
		r.U = int32(binary.LittleEndian.Uint32(p[0:4]))
		r.V = int32(binary.LittleEndian.Uint32(p[4:8]))
		r.W = math.Float64frombits(binary.LittleEndian.Uint64(p[8:16]))
	case KindEdgeRemove:
		r.U = int32(binary.LittleEndian.Uint32(p[0:4]))
		r.V = int32(binary.LittleEndian.Uint32(p[4:8]))
	}
	return r, total, nil
}

// FromOp converts one engine op to a record (Seq left zero; the WAL assigns
// it at append time). ok is false for op kinds that have no durable form.
func FromOp(op aggindex.Op) (r Record, ok bool) {
	switch op.Kind {
	case aggindex.OpLocation:
		if op.Remove {
			return Record{Kind: KindUnlocate, ID: op.ID}, true
		}
		return Record{Kind: KindMove, ID: op.ID, X: op.To.X, Y: op.To.Y}, true
	case aggindex.OpEdgeUpsert:
		return Record{Kind: KindEdgeUpsert, U: op.U, V: op.V, W: op.W}, true
	case aggindex.OpEdgeRemove:
		return Record{Kind: KindEdgeRemove, U: op.U, V: op.V}, true
	}
	return Record{}, false
}

// Op converts a record back to the engine op replay feeds to Apply.
func (r Record) Op() aggindex.Op {
	switch r.Kind {
	case KindMove:
		return aggindex.Op{ID: r.ID, To: spatial.Point{X: r.X, Y: r.Y}}
	case KindUnlocate:
		return aggindex.Op{ID: r.ID, Remove: true}
	case KindEdgeUpsert:
		return aggindex.Op{Kind: aggindex.OpEdgeUpsert, U: r.U, V: r.V, W: r.W}
	case KindEdgeRemove:
		return aggindex.Op{Kind: aggindex.OpEdgeRemove, U: r.U, V: r.V}
	}
	return aggindex.Op{}
}

// FromOps converts a batch, skipping ops with no durable form.
func FromOps(ops []aggindex.Op) []Record {
	out := make([]Record, 0, len(ops))
	for _, op := range ops {
		if r, ok := FromOp(op); ok {
			out = append(out, r)
		}
	}
	return out
}

// Ops converts a batch of records to engine ops, preserving order.
func Ops(recs []Record) []aggindex.Op {
	out := make([]aggindex.Op, len(recs))
	for i, r := range recs {
		out[i] = r.Op()
	}
	return out
}
