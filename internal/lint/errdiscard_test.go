// Package lint holds repo-wide source hygiene checks that run as ordinary
// tests, so `go test ./...` enforces them without external tooling.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestNoDiscardedErrors is a hand-written errcheck equivalent: it walks
// every .go file in the repository (tests and examples included), collects
// the names of functions and methods declared here whose last result is
// `error`, and then flags
//
//   - bare expression-statement calls of those functions — the bug class
//     behind the silently-stale examples/moving (a rejected MoveUser left
//     the demo reporting results for a location the user never reached),
//     anywhere in the tree, and
//   - all-blank assignments (`_ = f()`, `_, _ = f()`) of those functions in
//     non-test files — tests may discard deliberately, production and
//     example code must handle or visibly waive.
//
// A line whose trailing comment contains "errok" is waived (with the
// comment doubling as the justification). Names also declared somewhere
// with a different result shape (e.g. the engines' error-less Close) are
// excluded entirely, keeping the check false-positive-free without type
// information. defer/go statements are out of scope: the error there is
// discarded by language design, not by accident.
func TestNoDiscardedErrors(t *testing.T) {
	root, err := repoRoot()
	if err != nil {
		t.Fatal(err)
	}
	files, err := goFiles(root)
	if err != nil {
		t.Fatal(err)
	}

	fset := token.NewFileSet()
	parsed := make(map[string]*ast.File, len(files))
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		parsed[path] = f
	}

	// Pass 1: every function/method name declared in this repo — including
	// named closures (`check := func(...) {...}`) — split into "last result
	// is error" and "declared with any other result shape".
	returnsErr := make(map[string]bool)
	otherShape := make(map[string]bool)
	classify := func(name string, ft *ast.FuncType) {
		if lastResultIsError(ft) {
			returnsErr[name] = true
		} else {
			otherShape[name] = true
		}
	}
	for _, f := range parsed {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				classify(fd.Name.Name, fd.Type)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				fl, ok := rhs.(*ast.FuncLit)
				if !ok {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					classify(id.Name, fl.Type)
				}
			}
			return true
		})
	}
	for name := range otherShape {
		delete(returnsErr, name)
	}

	var violations []string
	for _, path := range files {
		f := parsed[path]
		rel, relErr := filepath.Rel(root, path)
		if relErr != nil {
			rel = path
		}
		isTest := strings.HasSuffix(path, "_test.go")
		waived := waivedLines(fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.AssignStmt:
				if isTest || !allBlank(st.Lhs) || len(st.Rhs) != 1 {
					return true
				}
				call, _ = st.Rhs[0].(*ast.CallExpr)
			default:
				return true
			}
			if call == nil {
				return true
			}
			name := calleeName(call)
			if name == "" || !returnsErr[name] || isTestingReceiver(call) {
				return true
			}
			line := fset.Position(call.Pos()).Line
			if waived[line] {
				return true
			}
			violations = append(violations,
				fmt.Sprintf("%s:%d: result of %s discarded (handle the error or waive with //errok <reason>)",
					rel, line, name))
			return true
		})
	}

	if len(violations) > 0 {
		sort.Strings(violations)
		t.Errorf("%d discarded error(s):\n%s", len(violations), strings.Join(violations, "\n"))
	}
}

// repoRoot walks up from the package directory to the go.mod.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// goFiles lists every .go file in the repo, skipping VCS metadata.
func goFiles(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

// lastResultIsError reports whether the function type's final result is the
// identifier `error`.
func lastResultIsError(ft *ast.FuncType) bool {
	if ft.Results == nil || len(ft.Results.List) == 0 {
		return false
	}
	last := ft.Results.List[len(ft.Results.List)-1]
	id, ok := last.Type.(*ast.Ident)
	return ok && id.Name == "error"
}

// calleeName extracts the called function's bare name (`f()` or `x.f()`).
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// isTestingReceiver reports whether the call is a method on a conventional
// *testing.T/B/F receiver (`t.Run`, `b.Run`, …) — stdlib methods whose
// names may collide with repo declarations but never return errors.
func isTestingReceiver(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && (id.Name == "t" || id.Name == "b" || id.Name == "f")
}

// allBlank reports whether every assignment target is the blank identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// waivedLines collects the line numbers carrying an errok comment.
func waivedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "errok") {
				out[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}
