package gen

import (
	"fmt"
	"math/rand"

	"ssrq/internal/spatial"
)

// GeoSocialConfig drives the integrated geo-social generator used by the
// dataset presets. Real LBSN graphs (the paper's Gowalla/Foursquare) mix
// spatially-local friendships — Scellato et al. [16] report ~30% of new
// links are "place friends" — with long-range hub-mediated ones. Generating
// locations first and biasing edge formation toward spatial neighbors
// reproduces both the heavy-tailed degrees and the moderate social↔spatial
// correlation the index methods exploit.
type GeoSocialConfig struct {
	// N is the number of users.
	N int
	// M is the number of edges each arriving user creates (avg degree≈2M).
	M int
	// PLocal is the probability an edge targets a same-city user instead
	// of a preferential-attachment endpoint (default 0.5).
	PLocal float64
	// Cities is the number of Gaussian population clusters (default 12).
	Cities int
	// Sigma is the cluster spread as a fraction of the unit square
	// (default 0.04).
	Sigma float64
	// LocatedFrac is the fraction of users whose location is known.
	// Latent positions exist for everyone (they shape the graph); only
	// this fraction is exposed in the dataset.
	LocatedFrac float64
	// ObservedCorr is the probability that a user's *observed* location is
	// the latent one that shaped his/her friendships; otherwise a fresh
	// independent clustered position is drawn. Real LBSNs show weak
	// social↔spatial coupling (the paper's Fig. 7b: Jaccard < 0.1 between
	// SSRQ and either single-domain top-k), so presets keep this low.
	// Default 0.3.
	ObservedCorr float64
}

func (c *GeoSocialConfig) setDefaults() {
	if c.PLocal == 0 {
		c.PLocal = 0.5
	}
	if c.Cities == 0 {
		c.Cities = 12
	}
	if c.Sigma == 0 {
		c.Sigma = 0.04
	}
	if c.LocatedFrac == 0 {
		c.LocatedFrac = 1
	}
	if c.ObservedCorr == 0 {
		c.ObservedCorr = 0.3
	}
}

// GeoSocial generates the full dataset raw material: edges, latent points
// and located flags.
func GeoSocial(cfg GeoSocialConfig, rng *rand.Rand) ([]edge, []spatial.Point, []bool, error) {
	cfg.setDefaults()
	if cfg.N < 2 || cfg.M < 1 || cfg.M >= cfg.N {
		return nil, nil, nil, fmt.Errorf("gen: GeoSocial N=%d M=%d invalid", cfg.N, cfg.M)
	}
	if cfg.PLocal < 0 || cfg.PLocal > 1 || cfg.LocatedFrac < 0 || cfg.LocatedFrac > 1 {
		return nil, nil, nil, fmt.Errorf("gen: GeoSocial probabilities out of range")
	}

	// Latent geography shapes friendships; observed geography is what the
	// dataset exposes. Keeping them mostly independent reproduces the
	// paper's weak social↔spatial coupling while the latent structure gives
	// the graph the rich (community/hub-avoiding) metric real SNs have.
	if cfg.ObservedCorr < 0 || cfg.ObservedCorr > 1 {
		return nil, nil, nil, fmt.Errorf("gen: ObservedCorr out of range")
	}
	centers := make([]spatial.Point, cfg.Cities)
	for i := range centers {
		centers[i] = spatial.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	gauss := func(c spatial.Point) spatial.Point {
		return spatial.Point{
			X: clamp01(c.X + rng.NormFloat64()*cfg.Sigma),
			Y: clamp01(c.Y + rng.NormFloat64()*cfg.Sigma),
		}
	}
	city := make([]int, cfg.N)
	pts := make([]spatial.Point, cfg.N)
	located := make([]bool, cfg.N)
	for v := 0; v < cfg.N; v++ {
		city[v] = rng.Intn(cfg.Cities)
		latent := gauss(centers[city[v]])
		if rng.Float64() < cfg.ObservedCorr {
			pts[v] = latent
		} else {
			pts[v] = gauss(centers[rng.Intn(cfg.Cities)])
		}
		located[v] = rng.Float64() < cfg.LocatedFrac
	}

	// Edge formation: seed clique, then each arriving user mixes same-city
	// attachment with degree-preferential attachment.
	es := newEdgeSet(cfg.N * cfg.M)
	endpoints := make([]int32, 0, 2*cfg.N*cfg.M)
	byCity := make([][]int32, cfg.Cities)
	seed := cfg.M + 1
	if seed > cfg.N {
		seed = cfg.N
	}
	for v := 0; v < seed; v++ {
		for u := 0; u < v; u++ {
			if es.add(int32(u), int32(v)) {
				endpoints = append(endpoints, int32(u), int32(v))
			}
		}
		byCity[city[v]] = append(byCity[city[v]], int32(v))
	}
	for v := seed; v < cfg.N; v++ {
		attached := 0
		for guard := 0; attached < cfg.M && guard < 60*cfg.M; guard++ {
			var u int32
			if locals := byCity[city[v]]; len(locals) > 0 && rng.Float64() < cfg.PLocal {
				u = locals[rng.Intn(len(locals))]
			} else {
				u = endpoints[rng.Intn(len(endpoints))]
			}
			if es.add(u, int32(v)) {
				endpoints = append(endpoints, u, int32(v))
				attached++
			}
		}
		for u := int32(0); attached < cfg.M && u < int32(v); u++ {
			if es.add(u, int32(v)) {
				endpoints = append(endpoints, u, int32(v))
				attached++
			}
		}
		byCity[city[v]] = append(byCity[city[v]], int32(v))
	}
	return es.list, pts, located, nil
}
