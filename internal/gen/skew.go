package gen

import (
	"fmt"
	"math"
	"math/rand"

	"ssrq/internal/spatial"
)

// MigrationConfig tunes the skewed-migration workload: a single spatial
// hotspot whose pull on each mover depends on the mover's current distance,
// after the distance-dependent migration kernels observed in real mobility
// traces (Herrera-Yagüe et al.): most relocations are short-range drift, but
// the drift is biased toward the attractor, so mass accumulates there over
// time instead of teleporting in one step.
type MigrationConfig struct {
	// Hotspot is the attractor in normalized [0,1]² world coordinates
	// (scaled into the dataset bounds). Default (0.08, 0.08) — a corner, the
	// worst case for a Z-order cut balanced on the initial distribution.
	Hotspot spatial.Point
	// Pull is the fraction of the remaining distance to the hotspot a
	// migrating user covers per move (default 0.35).
	Pull float64
	// Gravity shapes the distance dependence of the migration probability:
	// P(migrate) = 1/(1+d̂)^Gravity with d̂ the hotspot distance normalized
	// by the world diagonal. Higher gravity concentrates migration among
	// users already near the hotspot; 0 makes every move a biased drift.
	// Default 1.
	Gravity float64
	// Jitter is the local wander amplitude as a fraction of the world
	// extent, applied to every move (default 0.03). Non-migrating users only
	// jitter, so the stream always carries background noise.
	Jitter float64
}

func (c *MigrationConfig) setDefaults() {
	if c.Hotspot == (spatial.Point{}) {
		c.Hotspot = spatial.Point{X: 0.08, Y: 0.08}
	}
	if c.Pull == 0 {
		c.Pull = 0.35
	}
	if c.Gravity == 0 {
		c.Gravity = 1
	}
	if c.Jitter == 0 {
		c.Jitter = 0.03
	}
}

// Migration generates a skewed-migration move stream over a fixed world
// rectangle. It is deterministic given its rng and is safe for a single
// goroutine.
type Migration struct {
	cfg    MigrationConfig
	bounds spatial.Rect
	hot    spatial.Point
	diag   float64
	rng    *rand.Rand
}

// NewMigration builds a generator for the given world bounds.
func NewMigration(bounds spatial.Rect, cfg MigrationConfig, rng *rand.Rand) (*Migration, error) {
	cfg.setDefaults()
	if cfg.Pull <= 0 || cfg.Pull > 1 {
		return nil, fmt.Errorf("gen: migration Pull %v out of (0,1]", cfg.Pull)
	}
	if cfg.Gravity < 0 || cfg.Jitter < 0 {
		return nil, fmt.Errorf("gen: negative migration Gravity or Jitter")
	}
	m := &Migration{
		cfg:    cfg,
		bounds: bounds,
		hot: spatial.Point{
			X: bounds.MinX + cfg.Hotspot.X*bounds.Width(),
			Y: bounds.MinY + cfg.Hotspot.Y*bounds.Height(),
		},
		diag: bounds.Diagonal(),
		rng:  rng,
	}
	if m.diag == 0 {
		m.diag = 1
	}
	return m, nil
}

// Next produces the destination of one move for a user currently at cur:
// with distance-dependent probability the user migrates a Pull-fraction
// toward the hotspot; otherwise (and additionally) it wanders locally.
func (m *Migration) Next(cur spatial.Point) spatial.Point {
	to := cur
	d := math.Hypot(cur.X-m.hot.X, cur.Y-m.hot.Y) / m.diag
	if m.rng.Float64() < 1/math.Pow(1+d, m.cfg.Gravity) {
		to.X += m.cfg.Pull * (m.hot.X - to.X)
		to.Y += m.cfg.Pull * (m.hot.Y - to.Y)
	}
	to.X += (m.rng.Float64() - 0.5) * 2 * m.cfg.Jitter * m.bounds.Width()
	to.Y += (m.rng.Float64() - 0.5) * 2 * m.cfg.Jitter * m.bounds.Height()
	return m.clamp(to)
}

func (m *Migration) clamp(p spatial.Point) spatial.Point {
	p.X = math.Min(math.Max(p.X, m.bounds.MinX), m.bounds.MaxX)
	p.Y = math.Min(math.Max(p.Y, m.bounds.MinY), m.bounds.MaxY)
	return p
}
