package gen

import (
	"fmt"
	"math/rand"

	"ssrq/internal/dataset"
	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// Preset identifies a paper-dataset substitute (Table 2 / Fig. 13) or a
// literature-derived workload profile.
type Preset struct {
	Name string
	// AvgDegreeTarget drives the attachment parameter.
	AvgDegreeTarget float64
	// LocatedFrac matches the paper's located-user percentages.
	LocatedFrac float64
	// FireP blends forest-fire community structure into the graph
	// (fraction of edges grown by forest fire rather than BA).
	FireP float64
	// Model selects the generator: "" = the default GeoSocial mix,
	// "urban" = distance-dependent edge probability (UrbanGeoSocial),
	// "homophily" = hierarchical attribute homophily (HomophilyGeoSocial).
	// The non-default models also attach per-user labels.
	Model string
}

// Paper-dataset presets. Sizes are a parameter: the paper's full scales
// (196K / 1.88M / 124K users) are reachable with the same presets but the
// default experiment harness runs laptop-scale (see DESIGN.md §2).
var (
	// GowallaPreset mirrors Gowalla: avg degree 9.7, 54.4% located users.
	GowallaPreset = Preset{Name: "gowalla", AvgDegreeTarget: 9.7, LocatedFrac: 0.544, FireP: 0.30}
	// FoursquarePreset mirrors Foursquare: avg degree 9.5, 60.3% located.
	FoursquarePreset = Preset{Name: "foursquare", AvgDegreeTarget: 9.5, LocatedFrac: 0.603, FireP: 0.35}
	// TwitterPreset mirrors the Singapore Twitter set: avg degree 57.7,
	// all users geo-tagged.
	TwitterPreset = Preset{Name: "twitter", AvgDegreeTarget: 57.7, LocatedFrac: 1.0, FireP: 0.10}
	// UrbanPreset models a metropolitan LBSN with distance-dependent edge
	// probability (Herrera-Yagüe et al.) and per-city user labels.
	UrbanPreset = Preset{Name: "urban", AvgDegreeTarget: 12, LocatedFrac: 0.85, Model: "urban"}
	// HomophilyPreset models hierarchical attribute homophily (Watts et
	// al.) with per-group user labels laid out on a spatial grid.
	HomophilyPreset = Preset{Name: "homophily", AvgDegreeTarget: 10, LocatedFrac: 0.7, Model: "homophily"}
)

// Dataset synthesizes an n-user dataset matching the preset: a geo-social
// graph (spatially-local edges mixed with preferential attachment, see
// GeoSocial) with the target average degree, the paper's degree-product edge
// weights, Gaussian-city locations, and the preset's located fraction.
// Equivalent to DatasetFrom with rand.NewSource(seed): the same (preset, n,
// seed) triple always reproduces the same dataset, byte for byte (the
// golden-seed regression test pins it).
func (p Preset) Dataset(n int, seed int64) (*dataset.Dataset, error) {
	return p.DatasetFrom(n, rand.NewSource(seed))
}

// DatasetFrom is Dataset with an explicit randomness source — the seam that
// makes every experiment in this repository seed-reproducible: all
// randomness in synthesis flows from src and nowhere else (no global rand,
// no time-based seeding anywhere in gen or exp).
func (p Preset) DatasetFrom(n int, src rand.Source) (*dataset.Dataset, error) {
	if n < 10 {
		return nil, fmt.Errorf("gen: preset dataset needs n ≥ 10, got %d", n)
	}
	rng := rand.New(src)

	m := int(p.AvgDegreeTarget/2 + 0.5)
	if m < 1 {
		m = 1
	}
	cities := 8 + n/2000 // more clusters as the world grows
	if cities > 40 {
		cities = 40
	}
	var (
		edges   []edge
		pts     []spatial.Point
		located []bool
		labels  []uint64
		err     error
	)
	switch p.Model {
	case "urban":
		edges, pts, located, labels, err = UrbanGeoSocial(UrbanConfig{
			N: n, M: m, Cities: cities, LocatedFrac: p.LocatedFrac,
		}, rng)
	case "homophily":
		edges, pts, located, labels, err = HomophilyGeoSocial(HomophilyConfig{
			N: n, M: m, LocatedFrac: p.LocatedFrac,
		}, rng)
	default:
		edges, pts, located, err = GeoSocial(GeoSocialConfig{
			N:           n,
			M:           m,
			PLocal:      0.5,
			Cities:      cities,
			LocatedFrac: p.LocatedFrac,
		}, rng)
	}
	if err != nil {
		return nil, err
	}
	g, err := BuildGraph(n, edges, DegreeProductWeights(n, edges))
	if err != nil {
		return nil, err
	}
	ds, err := dataset.New(p.Name, g, pts, located)
	if err != nil {
		return nil, err
	}
	if labels != nil {
		if err := ds.SetLabels(labels); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// CorrelatedDataset builds the Fig. 14a dataset family: the graph comes from
// the given preset, but locations follow the correlated synthesis around a
// chosen query vertex. Equivalent to CorrelatedDatasetFrom with
// rand.NewSource(seed).
func CorrelatedDataset(base *dataset.Dataset, q graph.VertexID, sign CorrelationSign, seed int64) (*dataset.Dataset, error) {
	return CorrelatedDatasetFrom(base, q, sign, rand.NewSource(seed))
}

// CorrelatedDatasetFrom is CorrelatedDataset with an explicit randomness
// source.
func CorrelatedDatasetFrom(base *dataset.Dataset, q graph.VertexID, sign CorrelationSign, src rand.Source) (*dataset.Dataset, error) {
	rng := rand.New(src)
	pts, located := CorrelatedLocations(base.G, q, sign, rng)
	return dataset.New(
		fmt.Sprintf("%s-%s", base.Name, sign),
		base.G.ScaleWeights(base.Norms.Social), // undo normalization: New re-normalizes
		pts, located,
	)
}

// SampledDataset builds a Fig. 14b scalability point: a forest-fire sample
// of target users from the base dataset, keeping original locations.
// Equivalent to SampledDatasetFrom with rand.NewSource(seed).
func SampledDataset(base *dataset.Dataset, target int, seed int64) (*dataset.Dataset, error) {
	return SampledDatasetFrom(base, target, rand.NewSource(seed))
}

// SampledDatasetFrom is SampledDataset with an explicit randomness source.
func SampledDatasetFrom(base *dataset.Dataset, target int, src rand.Source) (*dataset.Dataset, error) {
	rng := rand.New(src)
	raw := base.G.ScaleWeights(base.Norms.Social)
	sub, oldIDs, err := ForestFireSample(raw, target, 0.4, rng)
	if err != nil {
		return nil, err
	}
	// Recover raw coordinates before re-normalizing in dataset.New.
	rawPts := make([]spatial.Point, len(base.Pts))
	for i, p := range base.Pts {
		rawPts[i] = spatial.Point{X: p.X * base.Norms.Spatial, Y: p.Y * base.Norms.Spatial}
	}
	pts, located := SampleLocations(rawPts, base.Located, oldIDs)
	return dataset.New(fmt.Sprintf("%s-%dk", base.Name, target/1000), sub, pts, located)
}
