package gen

import (
	"fmt"
	"math/rand"

	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// ForestFireSample extracts a structure-preserving sample of target vertices
// from g using the Forest Fire Sampling of Leskovec & Faloutsos [45], the
// technique the paper uses to derive the 0.6M/1.2M/1.8M Foursquare subsets
// of Fig. 14b: repeatedly ignite a random seed and burn outward, each
// neighbor catching fire with probability p; the induced subgraph over
// burned vertices is returned together with a mapping old→new vertex IDs.
func ForestFireSample(g *graph.Graph, target int, p float64, rng *rand.Rand) (*graph.Graph, []graph.VertexID, error) {
	n := g.NumVertices()
	if target < 1 || target > n {
		return nil, nil, fmt.Errorf("gen: sample target %d out of [1,%d]", target, n)
	}
	if p <= 0 || p >= 1 {
		return nil, nil, fmt.Errorf("gen: burn probability %v out of (0,1)", p)
	}
	burned := make([]bool, n)
	var order []graph.VertexID
	var queue []graph.VertexID
	for len(order) < target {
		// Ignite a fresh unburned seed.
		seed := graph.VertexID(rng.Intn(n))
		for burned[seed] {
			seed = graph.VertexID(rng.Intn(n))
		}
		burned[seed] = true
		order = append(order, seed)
		queue = append(queue[:0], seed)
		for len(queue) > 0 && len(order) < target {
			v := queue[0]
			queue = queue[1:]
			nbrs, _ := g.Neighbors(v)
			for _, u := range nbrs {
				if burned[u] || len(order) >= target {
					continue
				}
				if rng.Float64() < p {
					burned[u] = true
					order = append(order, u)
					queue = append(queue, u)
				}
			}
		}
	}

	// Induced subgraph with compacted IDs (sorted by old ID for
	// deterministic numbering).
	newID := make([]int32, n)
	for i := range newID {
		newID[i] = -1
	}
	// order may be in burn order; renumber by ascending old ID.
	cnt := int32(0)
	for v := 0; v < n; v++ {
		if burned[v] {
			newID[v] = cnt
			cnt++
		}
	}
	b := graph.NewBuilder(int(cnt))
	for v := 0; v < n; v++ {
		if newID[v] < 0 {
			continue
		}
		nbrs, ws := g.Neighbors(graph.VertexID(v))
		for i, u := range nbrs {
			if u > graph.VertexID(v) && newID[u] >= 0 {
				if err := b.AddEdge(newID[v], newID[u], ws[i]); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	oldIDs := make([]graph.VertexID, cnt)
	for v := 0; v < n; v++ {
		if newID[v] >= 0 {
			oldIDs[newID[v]] = graph.VertexID(v)
		}
	}
	return sub, oldIDs, nil
}

// SampleLocations projects per-user data (locations, located flags) of the
// original graph onto a sample produced by ForestFireSample.
func SampleLocations(pts []spatial.Point, located []bool, oldIDs []graph.VertexID) ([]spatial.Point, []bool) {
	sp := make([]spatial.Point, len(oldIDs))
	sl := make([]bool, len(oldIDs))
	for i, old := range oldIDs {
		sp[i] = pts[old]
		sl[i] = located[old]
	}
	return sp, sl
}
