package gen

import (
	"fmt"
	"math"
	"math/rand"

	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// LocationConfig controls synthetic location assignment.
type LocationConfig struct {
	// Cities is the number of Gaussian population clusters (default 12).
	Cities int
	// Sigma is the cluster spread as a fraction of the world extent
	// (default 0.04).
	Sigma float64
	// LocatedFrac is the fraction of users with a known location — the
	// paper has 54.4% (Gowalla) and 60.3% (Foursquare).
	LocatedFrac float64
	// Homophily is the probability that a user settles near the centroid
	// of already-placed friends instead of a random city, giving the mild
	// positive social↔spatial correlation real LBSNs show.
	Homophily float64
}

func (c *LocationConfig) setDefaults() {
	if c.Cities == 0 {
		c.Cities = 12
	}
	if c.Sigma == 0 {
		c.Sigma = 0.04
	}
	if c.LocatedFrac == 0 {
		c.LocatedFrac = 1
	}
}

// Locations assigns clustered locations in the unit square to the users of
// g, honoring the located fraction and friend homophily.
func Locations(g *graph.Graph, cfg LocationConfig, rng *rand.Rand) ([]spatial.Point, []bool, error) {
	cfg.setDefaults()
	if cfg.LocatedFrac < 0 || cfg.LocatedFrac > 1 {
		return nil, nil, fmt.Errorf("gen: LocatedFrac %v out of [0,1]", cfg.LocatedFrac)
	}
	if cfg.Homophily < 0 || cfg.Homophily > 1 {
		return nil, nil, fmt.Errorf("gen: Homophily %v out of [0,1]", cfg.Homophily)
	}
	n := g.NumVertices()
	centers := make([]spatial.Point, cfg.Cities)
	for i := range centers {
		centers[i] = spatial.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	pts := make([]spatial.Point, n)
	located := make([]bool, n)
	placed := make([]bool, n)

	gauss := func(c spatial.Point) spatial.Point {
		return spatial.Point{
			X: clamp01(c.X + rng.NormFloat64()*cfg.Sigma),
			Y: clamp01(c.Y + rng.NormFloat64()*cfg.Sigma),
		}
	}

	for v := 0; v < n; v++ {
		if rng.Float64() >= cfg.LocatedFrac {
			continue
		}
		located[v] = true
		anchor := centers[rng.Intn(len(centers))]
		if cfg.Homophily > 0 && rng.Float64() < cfg.Homophily {
			// Centroid of already-placed friends, if any.
			nbrs, _ := g.Neighbors(graph.VertexID(v))
			var cx, cy float64
			cnt := 0
			for _, u := range nbrs {
				if placed[u] {
					cx += pts[u].X
					cy += pts[u].Y
					cnt++
				}
			}
			if cnt > 0 {
				anchor = spatial.Point{X: cx / float64(cnt), Y: cy / float64(cnt)}
			}
		}
		pts[v] = gauss(anchor)
		placed[v] = true
	}
	return pts, located, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// CorrelationSign selects the Fig. 14a dataset family.
type CorrelationSign int

const (
	// PositiveCorrelation places socially-near users spatially near
	// (ρ = +1 in the paper's d̄ = ρ·p + ε formula).
	PositiveCorrelation CorrelationSign = iota
	// NegativeCorrelation places socially-near users spatially far (ρ = −1).
	NegativeCorrelation
	// IndependentCorrelation randomly permutes locations, destroying any
	// social↔spatial relationship.
	IndependentCorrelation
)

func (c CorrelationSign) String() string {
	switch c {
	case PositiveCorrelation:
		return "positive"
	case NegativeCorrelation:
		return "negative"
	case IndependentCorrelation:
		return "independent"
	default:
		return fmt.Sprintf("CorrelationSign(%d)", int(c))
	}
}

// CorrelatedLocations implements the paper's Fig. 14a synthesis for a chosen
// query vertex: every user u is placed on a circle of radius
// d̄ = |ρ·p̂(v_q, u) + ε| around the query's location, where p̂ is the social
// distance normalized to [0,1] and ε ∈ [−0.15, 0.15]. Negative correlation
// uses d̄ = 1 − p̂ + ε so socially-near users land far away. Unreachable
// users get independent uniform positions. The query user sits at the
// center. All users are located.
func CorrelatedLocations(g *graph.Graph, q graph.VertexID, sign CorrelationSign, rng *rand.Rand) ([]spatial.Point, []bool) {
	n := g.NumVertices()
	dist := g.DistancesFrom(q)
	maxD := 0.0
	for _, d := range dist {
		if d != graph.Infinity && d > maxD {
			maxD = d
		}
	}
	if maxD == 0 {
		maxD = 1
	}
	center := spatial.Point{X: 0.5, Y: 0.5}
	pts := make([]spatial.Point, n)
	located := make([]bool, n)
	for v := 0; v < n; v++ {
		located[v] = true
		if graph.VertexID(v) == q {
			pts[v] = center
			continue
		}
		if dist[v] == graph.Infinity || sign == IndependentCorrelation {
			pts[v] = spatial.Point{X: rng.Float64(), Y: rng.Float64()}
			continue
		}
		p := dist[v] / maxD
		eps := (rng.Float64() - 0.5) * 0.3 // ε ∈ [−0.15, 0.15]
		var r float64
		if sign == PositiveCorrelation {
			r = p + eps
		} else {
			r = 1 - p + eps
		}
		if r < 0 {
			r = -r
		}
		if r > 1 {
			r = 1
		}
		// Radius is in [0,1]; scale to at most 0.5 so the circle stays
		// inside the unit square around the center.
		r *= 0.5
		theta := rng.Float64() * 2 * math.Pi
		pts[v] = spatial.Point{
			X: clamp01(center.X + r*math.Cos(theta)),
			Y: clamp01(center.Y + r*math.Sin(theta)),
		}
	}
	return pts, located
}
