package gen

import (
	"math"
	"math/rand"
	"testing"

	"ssrq/internal/spatial"
)

// TestMigrationDriftsTowardHotspot: iterating the generator from the far
// corner must converge near the attractor while never leaving the world
// bounds — the whole point of the skewed workload is that mass accumulates.
func TestMigrationDriftsTowardHotspot(t *testing.T) {
	bounds := spatial.Rect{MinX: 2, MinY: 10, MaxX: 6, MaxY: 18}
	rng := rand.New(rand.NewSource(7))
	m, err := NewMigration(bounds, MigrationConfig{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	hot := spatial.Point{
		X: bounds.MinX + 0.08*bounds.Width(),
		Y: bounds.MinY + 0.08*bounds.Height(),
	}
	cur := spatial.Point{X: bounds.MaxX, Y: bounds.MaxY}
	d0 := math.Hypot(cur.X-hot.X, cur.Y-hot.Y)
	for i := 0; i < 200; i++ {
		cur = m.Next(cur)
		if !bounds.Contains(cur) {
			t.Fatalf("step %d escaped the bounds: %+v", i, cur)
		}
	}
	d := math.Hypot(cur.X-hot.X, cur.Y-hot.Y)
	if d > d0/4 {
		t.Fatalf("no convergence: distance %0.3f after 200 steps, started at %0.3f", d, d0)
	}
}

// TestMigrationValidation rejects nonsense configurations.
func TestMigrationValidation(t *testing.T) {
	bounds := spatial.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	rng := rand.New(rand.NewSource(1))
	if _, err := NewMigration(bounds, MigrationConfig{Pull: 2}, rng); err == nil {
		t.Fatal("Pull > 1 accepted")
	}
	if _, err := NewMigration(bounds, MigrationConfig{Jitter: -1}, rng); err == nil {
		t.Fatal("negative Jitter accepted")
	}
	if _, err := NewMigration(bounds, MigrationConfig{Gravity: -1}, rng); err == nil {
		t.Fatal("negative Gravity accepted")
	}
}
