// Package gen synthesizes the geo-social datasets the paper evaluates on.
// The original Gowalla / Foursquare / Twitter snapshots are not
// redistributable, so the reproduction generates structure-matched
// substitutes (see DESIGN.md §2): social graphs from standard growth models
// (preferential attachment, forest fire, Watts–Strogatz, Erdős–Rényi),
// degree-product edge weights exactly as §6 derives them, clustered
// locations with a controllable located fraction and friend-homophily, the
// Forest-Fire *sampling* of [45] used by the Fig. 14b scalability sweep, and
// the correlated-location synthesis of Fig. 14a.
//
// Every generator is deterministic given its seed.
package gen

import (
	"fmt"
	"math/rand"

	"ssrq/internal/graph"
)

// edge is an undirected edge under construction.
type edge struct {
	u, v int32
}

// edgeSet deduplicates undirected edges during generation.
type edgeSet struct {
	seen map[uint64]bool
	list []edge
}

func newEdgeSet(capacity int) *edgeSet {
	return &edgeSet{seen: make(map[uint64]bool, capacity)}
}

func (s *edgeSet) key(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(uint32(v))
}

// add records the edge; reports false for self-loops and duplicates.
func (s *edgeSet) add(u, v int32) bool {
	if u == v {
		return false
	}
	k := s.key(u, v)
	if s.seen[k] {
		return false
	}
	s.seen[k] = true
	s.list = append(s.list, edge{u, v})
	return true
}

func (s *edgeSet) has(u, v int32) bool { return s.seen[s.key(u, v)] }

// BarabasiAlbert grows an n-vertex preferential-attachment graph where each
// new vertex attaches to m existing vertices with probability proportional
// to degree (average degree ≈ 2m). The classic heavy-tailed social topology.
func BarabasiAlbert(n, m int, rng *rand.Rand) ([]edge, error) {
	if n < 2 || m < 1 || m >= n {
		return nil, fmt.Errorf("gen: BarabasiAlbert(n=%d, m=%d) invalid", n, m)
	}
	es := newEdgeSet(n * m)
	// Repeated-endpoint list: vertex v appears deg(v) times.
	endpoints := make([]int32, 0, 2*n*m)
	seed := m + 1
	if seed > n {
		seed = n
	}
	for v := 1; v < seed; v++ {
		for u := 0; u < v; u++ {
			if es.add(int32(u), int32(v)) {
				endpoints = append(endpoints, int32(u), int32(v))
			}
		}
	}
	for v := seed; v < n; v++ {
		attached := 0
		for guard := 0; attached < m && guard < 50*m; guard++ {
			u := endpoints[rng.Intn(len(endpoints))]
			if es.add(u, int32(v)) {
				endpoints = append(endpoints, u, int32(v))
				attached++
			}
		}
		// Degenerate fallback: attach to arbitrary distinct vertices.
		for u := int32(0); attached < m && u < int32(v); u++ {
			if es.add(u, int32(v)) {
				endpoints = append(endpoints, u, int32(v))
				attached++
			}
		}
	}
	return es.list, nil
}

// ForestFireGrowth grows a graph with Leskovec's forest-fire model: each new
// vertex picks a random ambassador, links to it, and the fire spreads from
// every burned vertex to a Geometric(1−p)-distributed number of unburned
// neighbors (mean p/(1−p)) — subcritical spread that yields communities and
// heavy tails without hub blow-up.
func ForestFireGrowth(n int, p float64, rng *rand.Rand) ([]edge, error) {
	if n < 2 || p < 0 || p >= 1 {
		return nil, fmt.Errorf("gen: ForestFireGrowth(n=%d, p=%v) invalid", n, p)
	}
	es := newEdgeSet(2 * n)
	adj := make([][]int32, n)
	link := func(u, v int32) {
		if es.add(u, v) {
			adj[u] = append(adj[u], v)
			adj[v] = append(adj[v], u)
		}
	}
	link(0, 1)
	visited := make([]int32, n) // epoch marks
	epoch := int32(0)
	for v := 2; v < n; v++ {
		epoch++
		ambassador := int32(rng.Intn(v))
		queue := []int32{ambassador}
		visited[ambassador] = epoch
		burned := 0
		const maxBurn = 64 // hard bound keeps generation linear-ish
		for len(queue) > 0 && burned < maxBurn {
			w := queue[0]
			queue = queue[1:]
			link(int32(v), w)
			burned++
			// Geometric number of fresh neighbors catch fire.
			spread := 0
			for rng.Float64() < p {
				spread++
			}
			for _, nb := range adj[w] {
				if spread == 0 {
					break
				}
				if visited[nb] == epoch {
					continue
				}
				visited[nb] = epoch
				queue = append(queue, nb)
				spread--
			}
		}
	}
	return es.list, nil
}

// WattsStrogatz builds an n-vertex ring lattice with k neighbors per side,
// rewiring each edge with probability beta — small-world, low variance.
func WattsStrogatz(n, k int, beta float64, rng *rand.Rand) ([]edge, error) {
	if n < 4 || k < 1 || 2*k >= n || beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: WattsStrogatz(n=%d, k=%d, beta=%v) invalid", n, k, beta)
	}
	es := newEdgeSet(n * k)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			u := int32(v)
			w := int32((v + j) % n)
			if rng.Float64() < beta {
				// Rewire to a uniform random non-duplicate target.
				for tries := 0; tries < 20; tries++ {
					cand := int32(rng.Intn(n))
					if cand != u && !es.has(u, cand) {
						w = cand
						break
					}
				}
			}
			es.add(u, w)
		}
	}
	return es.list, nil
}

// ErdosRenyi samples each of approximately n·avgDeg/2 uniform random edges.
func ErdosRenyi(n int, avgDeg float64, rng *rand.Rand) ([]edge, error) {
	if n < 2 || avgDeg <= 0 {
		return nil, fmt.Errorf("gen: ErdosRenyi(n=%d, avgDeg=%v) invalid", n, avgDeg)
	}
	target := int(float64(n) * avgDeg / 2)
	es := newEdgeSet(target)
	for guard := 0; len(es.list) < target && guard < 20*target; guard++ {
		es.add(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return es.list, nil
}

// DegreeProductWeights assigns the paper's §6 edge weights:
// w(v_i, v_j) = deg(v_i)·deg(v_j)/maxdeg² — the more friends a user has,
// the looser each connection. Weights are clamped to a small positive floor
// so the graph builder's positivity requirement always holds.
func DegreeProductWeights(n int, edges []edge) []float64 {
	deg := make([]int, n)
	for _, e := range edges {
		deg[e.u]++
		deg[e.v]++
	}
	maxDeg := 1
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	const floor = 1e-9
	ws := make([]float64, len(edges))
	denom := float64(maxDeg) * float64(maxDeg)
	for i, e := range edges {
		w := float64(deg[e.u]) * float64(deg[e.v]) / denom
		if w < floor {
			w = floor
		}
		ws[i] = w
	}
	return ws
}

// UniformWeights assigns every edge a weight drawn uniformly from (lo, hi].
func UniformWeights(edges []edge, lo, hi float64, rng *rand.Rand) []float64 {
	ws := make([]float64, len(edges))
	for i := range ws {
		ws[i] = lo + rng.Float64()*(hi-lo)
	}
	return ws
}

// BuildGraph assembles an immutable graph from generated edges and weights.
func BuildGraph(n int, edges []edge, weights []float64) (*graph.Graph, error) {
	if len(edges) != len(weights) {
		return nil, fmt.Errorf("gen: %d edges but %d weights", len(edges), len(weights))
	}
	b := graph.NewBuilder(n)
	for i, e := range edges {
		if err := b.AddEdge(e.u, e.v, weights[i]); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
