package gen

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"
	"testing"

	"ssrq/internal/dataset"
	"ssrq/internal/graph"
)

// fingerprint hashes everything query-relevant about a dataset — the full
// adjacency structure, every coordinate, the located bitmap and the
// normalization constants — into one FNV-1a value, so any drift in the
// synthesis pipeline shows up as a changed constant. Floats are quantized
// to float32 before hashing: the Go spec permits fused multiply-add on some
// architectures (arm64, ppc64), which shifts last-ulp float64 bits of
// synthesized coordinates between platforms, while any real generator
// regression moves values far beyond float32 resolution.
func fingerprint(ds *dataset.Dataset) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(f float64) { w64(uint64(math.Float32bits(float32(f)))) }
	w64(uint64(ds.NumUsers()))
	for v := 0; v < ds.NumUsers(); v++ {
		nbrs, ws := ds.G.Neighbors(graph.VertexID(v))
		for i, u := range nbrs {
			w64(uint64(uint32(u)))
			wf(ws[i])
		}
	}
	for i, p := range ds.Pts {
		if ds.Located[i] {
			w64(1)
			wf(p.X)
			wf(p.Y)
		} else {
			w64(0)
		}
	}
	wf(ds.Norms.Social)
	wf(ds.Norms.Spatial)
	// Labels participate only when present, so unlabeled presets keep their
	// historical constants.
	if ds.Labels != nil {
		for _, l := range ds.Labels {
			w64(l)
		}
	}
	return h.Sum64()
}

// TestGoldenSeedDataset pins the synthesis pipeline to a golden fingerprint:
// the same (preset, n, seed) must reproduce the same dataset bit for bit,
// across runs and across refactors. If an intentional generator change
// breaks this, regenerate the constant — but know that every seeded
// experiment result in EXPERIMENTS/CI history changes with it.
func TestGoldenSeedDataset(t *testing.T) {
	const goldenGowalla300Seed42 = uint64(0x247139c1b2ed188c)
	ds, err := GowallaPreset.Dataset(300, 42)
	if err != nil {
		t.Fatal(err)
	}
	got := fingerprint(ds)
	if got != goldenGowalla300Seed42 {
		t.Fatalf("gowalla(n=300, seed=42) fingerprint %#x, want %#x — the synthesis pipeline is no longer seed-stable", got, goldenGowalla300Seed42)
	}
}

// TestGoldenSeedWorkloadPresets pins the labeled workload presets (labels are
// part of the fingerprint for these) the same way.
func TestGoldenSeedWorkloadPresets(t *testing.T) {
	golden := map[string]uint64{
		"urban":     0x43661be4f270200b,
		"homophily": 0xee07d63e1caf7f22,
	}
	for _, p := range []Preset{UrbanPreset, HomophilyPreset} {
		ds, err := p.Dataset(300, 42)
		if err != nil {
			t.Fatal(err)
		}
		if ds.Labels == nil {
			t.Fatalf("%s(n=300, seed=42) produced no labels", p.Name)
		}
		if got := fingerprint(ds); got != golden[p.Name] {
			t.Fatalf("%s(n=300, seed=42) fingerprint %#x, want %#x — the synthesis pipeline is no longer seed-stable", p.Name, got, golden[p.Name])
		}
	}
}

// TestSourceThreadingEquivalence: the Source-threaded constructors are the
// same function as the seed-taking wrappers, and repeated calls with equal
// seeds agree for every preset.
func TestSourceThreadingEquivalence(t *testing.T) {
	for _, p := range []Preset{GowallaPreset, FoursquarePreset, TwitterPreset, UrbanPreset, HomophilyPreset} {
		a, err := p.Dataset(120, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.DatasetFrom(120, rand.NewSource(7))
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(a) != fingerprint(b) {
			t.Fatalf("%s: Dataset(seed) != DatasetFrom(NewSource(seed))", p.Name)
		}
		c, err := p.Dataset(120, 8)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(a) == fingerprint(c) {
			t.Fatalf("%s: distinct seeds collided", p.Name)
		}
	}
	// The derived-dataset constructors thread sources the same way.
	base, err := GowallaPreset.Dataset(150, 3)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := SampledDataset(base, 60, 9)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SampledDatasetFrom(base, 60, rand.NewSource(9))
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(s1) != fingerprint(s2) {
		t.Fatal("SampledDataset(seed) != SampledDatasetFrom(NewSource(seed))")
	}
	c1, err := CorrelatedDataset(base, 5, PositiveCorrelation, 11)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CorrelatedDatasetFrom(base, 5, PositiveCorrelation, rand.NewSource(11))
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(c1) != fingerprint(c2) {
		t.Fatal("CorrelatedDataset(seed) != CorrelatedDatasetFrom(NewSource(seed))")
	}
}
