package gen

import (
	"math"
	"math/rand"
	"testing"

	"ssrq/internal/graph"
)

func TestBarabasiAlbertShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	edges, err := BarabasiAlbert(500, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(500, edges, UniformWeights(edges, 0.1, 1, rng))
	if err != nil {
		t.Fatal(err)
	}
	if avg := g.AvgDegree(); avg < 6 || avg > 9 {
		t.Fatalf("BA avg degree %v, want ≈ 8", avg)
	}
	// Heavy tail: max degree far above average.
	if g.MaxDegree() < 3*int(g.AvgDegree()) {
		t.Fatalf("BA max degree %d not heavy-tailed (avg %v)", g.MaxDegree(), g.AvgDegree())
	}
	// BA graphs are connected by construction.
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Fatalf("BA graph has %d components", count)
	}
}

func TestBarabasiAlbertValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := BarabasiAlbert(1, 1, rng); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := BarabasiAlbert(10, 0, rng); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := BarabasiAlbert(10, 10, rng); err == nil {
		t.Fatal("m=n accepted")
	}
}

func TestForestFireGrowthConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	edges, err := ForestFireGrowth(400, 0.35, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(400, edges, UniformWeights(edges, 0.1, 1, rng))
	if err != nil {
		t.Fatal(err)
	}
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Fatalf("forest fire graph has %d components", count)
	}
	if _, err := ForestFireGrowth(400, 1.0, rng); err == nil {
		t.Fatal("p=1 accepted")
	}
}

func TestWattsStrogatz(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	edges, err := WattsStrogatz(200, 3, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(200, edges, UniformWeights(edges, 0.1, 1, rng))
	if err != nil {
		t.Fatal(err)
	}
	if avg := g.AvgDegree(); avg < 4 || avg > 6.5 {
		t.Fatalf("WS avg degree %v, want ≈ 6", avg)
	}
	if _, err := WattsStrogatz(4, 2, 0.1, rng); err == nil {
		t.Fatal("2k>=n accepted")
	}
}

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	edges, err := ErdosRenyi(300, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(300, edges, UniformWeights(edges, 0.1, 1, rng))
	if err != nil {
		t.Fatal(err)
	}
	if avg := g.AvgDegree(); avg < 6.5 || avg > 8.5 {
		t.Fatalf("ER avg degree %v, want ≈ 8", avg)
	}
}

func TestDegreeProductWeights(t *testing.T) {
	// Triangle plus pendant: degrees 3,2,2,1.
	edges := []edge{{0, 1}, {0, 2}, {1, 2}, {0, 3}}
	ws := DegreeProductWeights(4, edges)
	// maxdeg = 3; w(0,1) = 3*2/9, w(1,2) = 2*2/9, w(0,3) = 3*1/9.
	want := []float64{6.0 / 9, 6.0 / 9, 4.0 / 9, 3.0 / 9}
	for i := range ws {
		if math.Abs(ws[i]-want[i]) > 1e-12 {
			t.Fatalf("weight[%d] = %v, want %v", i, ws[i], want[i])
		}
		if ws[i] <= 0 {
			t.Fatalf("non-positive weight %v", ws[i])
		}
	}
	// Hubs get the heaviest (loosest) edges — the paper's intent.
	if ws[0] <= ws[3] {
		t.Fatal("hub edge not looser than pendant edge")
	}
}

func TestLocationsFractionAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	edges, _ := BarabasiAlbert(1000, 3, rng)
	g, _ := BuildGraph(1000, edges, UniformWeights(edges, 0.1, 1, rng))
	pts, located, err := Locations(g, LocationConfig{LocatedFrac: 0.6, Homophily: 0.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cnt := 0
	for i, l := range located {
		if !l {
			continue
		}
		cnt++
		if pts[i].X < 0 || pts[i].X > 1 || pts[i].Y < 0 || pts[i].Y > 1 {
			t.Fatalf("point %d outside unit square: %v", i, pts[i])
		}
	}
	if frac := float64(cnt) / 1000; frac < 0.5 || frac > 0.7 {
		t.Fatalf("located fraction %v, want ≈ 0.6", frac)
	}
	if _, _, err := Locations(g, LocationConfig{LocatedFrac: 2}, rng); err == nil {
		t.Fatal("bad fraction accepted")
	}
	if _, _, err := Locations(g, LocationConfig{Homophily: -1}, rng); err == nil {
		t.Fatal("bad homophily accepted")
	}
}

func TestHomophilyCreatesSpatialCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	edges, _ := BarabasiAlbert(800, 4, rng)
	g, _ := BuildGraph(800, edges, UniformWeights(edges, 0.1, 1, rng))

	avgFriendDist := func(homophily float64, seed int64) float64 {
		r := rand.New(rand.NewSource(seed))
		pts, located, err := Locations(g, LocationConfig{LocatedFrac: 1, Homophily: homophily}, r)
		if err != nil {
			t.Fatal(err)
		}
		sum, cnt := 0.0, 0
		for v := 0; v < 800; v++ {
			nbrs, _ := g.Neighbors(graph.VertexID(v))
			for _, u := range nbrs {
				if u > graph.VertexID(v) && located[v] && located[u] {
					sum += pts[v].Dist(pts[u])
					cnt++
				}
			}
		}
		return sum / float64(cnt)
	}
	with := avgFriendDist(0.8, 100)
	without := avgFriendDist(0, 100)
	if with >= without {
		t.Fatalf("homophily did not reduce friend distance: %v >= %v", with, without)
	}
}

func TestCorrelatedLocations(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	edges, _ := BarabasiAlbert(300, 4, rng)
	g, _ := BuildGraph(300, edges, DegreeProductWeights(300, edges))
	q := graph.VertexID(5)
	dist := g.DistancesFrom(q)
	maxD := 0.0
	for _, d := range dist {
		if d != graph.Infinity && d > maxD {
			maxD = d
		}
	}

	check := func(sign CorrelationSign, wantSign float64) {
		r := rand.New(rand.NewSource(9))
		pts, located := CorrelatedLocations(g, q, sign, r)
		for _, l := range located {
			if !l {
				t.Fatal("correlated synthesis left unlocated users")
			}
		}
		// Pearson correlation between p and spatial distance from q.
		var sp, sd, spp, sdd, spd float64
		n := 0.0
		for v := 0; v < 300; v++ {
			if graph.VertexID(v) == q || dist[v] == graph.Infinity {
				continue
			}
			p := dist[v] / maxD
			d := pts[v].Dist(pts[q])
			sp += p
			sd += d
			spp += p * p
			sdd += d * d
			spd += p * d
			n++
		}
		cov := spd/n - (sp/n)*(sd/n)
		varP := spp/n - (sp/n)*(sp/n)
		varD := sdd/n - (sd/n)*(sd/n)
		r2 := cov / math.Sqrt(varP*varD)
		switch {
		case wantSign > 0 && r2 < 0.5:
			t.Fatalf("%v: correlation %v, want strongly positive", sign, r2)
		case wantSign < 0 && r2 > -0.5:
			t.Fatalf("%v: correlation %v, want strongly negative", sign, r2)
		case wantSign == 0 && math.Abs(r2) > 0.25:
			t.Fatalf("%v: correlation %v, want ≈ 0", sign, r2)
		}
	}
	check(PositiveCorrelation, 1)
	check(NegativeCorrelation, -1)
	check(IndependentCorrelation, 0)
}

func TestForestFireSample(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	edges, _ := BarabasiAlbert(1000, 4, rng)
	g, _ := BuildGraph(1000, edges, DegreeProductWeights(1000, edges))
	sub, oldIDs, err := ForestFireSample(g, 300, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 300 || len(oldIDs) != 300 {
		t.Fatalf("sample size %d", sub.NumVertices())
	}
	// The mapping must be strictly increasing (deterministic renumbering)
	// and reference distinct originals.
	for i := 1; i < len(oldIDs); i++ {
		if oldIDs[i] <= oldIDs[i-1] {
			t.Fatal("oldIDs not strictly increasing")
		}
	}
	// Every sampled edge must exist in the original with the same weight.
	for v := 0; v < 300; v++ {
		nbrs, ws := sub.Neighbors(graph.VertexID(v))
		for i, u := range nbrs {
			w0, ok := g.EdgeWeight(oldIDs[v], oldIDs[u])
			if !ok || math.Abs(w0-ws[i]) > 1e-12 {
				t.Fatalf("sampled edge (%d,%d) missing or reweighted", v, u)
			}
		}
	}
	// Structure preservation (loose): sampled avg degree within 4x of original.
	if sub.AvgDegree() < g.AvgDegree()/4 {
		t.Fatalf("sample too sparse: %v vs %v", sub.AvgDegree(), g.AvgDegree())
	}
	if _, _, err := ForestFireSample(g, 0, 0.4, rng); err == nil {
		t.Fatal("target 0 accepted")
	}
	if _, _, err := ForestFireSample(g, 10, 1.5, rng); err == nil {
		t.Fatal("p>1 accepted")
	}
}

func TestPresets(t *testing.T) {
	for _, preset := range []Preset{GowallaPreset, FoursquarePreset, TwitterPreset} {
		ds, err := preset.Dataset(600, 42)
		if err != nil {
			t.Fatalf("%s: %v", preset.Name, err)
		}
		st := ds.Stats()
		if st.NumVertices != 600 {
			t.Fatalf("%s: %d users", preset.Name, st.NumVertices)
		}
		wantFrac := preset.LocatedFrac
		gotFrac := float64(st.NumLocated) / 600
		if math.Abs(gotFrac-wantFrac) > 0.1 {
			t.Fatalf("%s: located %v, want ≈ %v", preset.Name, gotFrac, wantFrac)
		}
		// Average degree lands in the right regime (merging models adds
		// some edges over the BA target).
		if st.AvgDegree < preset.AvgDegreeTarget/2 || st.AvgDegree > preset.AvgDegreeTarget*2 {
			t.Fatalf("%s: avg degree %v, target %v", preset.Name, st.AvgDegree, preset.AvgDegreeTarget)
		}
	}
	if _, err := GowallaPreset.Dataset(5, 1); err == nil {
		t.Fatal("tiny n accepted")
	}
}

func TestPresetsDeterministic(t *testing.T) {
	a, err := GowallaPreset.Dataset(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GowallaPreset.Dataset(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for v := 0; v < 300; v++ {
		if a.Located[v] != b.Located[v] || (a.Located[v] && a.Pts[v] != b.Pts[v]) {
			t.Fatalf("same seed produced different locations at %d", v)
		}
	}
	c, err := GowallaPreset.Dataset(300, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The edge count is nearly deterministic for the geo-social model, so
	// compare the diameter estimate and a located user's position instead.
	same := a.Norms.Social == c.Norms.Social
	for v := 0; same && v < 300; v++ {
		if a.Located[v] && c.Located[v] {
			same = a.Pts[v] == c.Pts[v]
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical dataset")
	}
}

func TestCorrelatedDataset(t *testing.T) {
	base, err := GowallaPreset.Dataset(300, 11)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := CorrelatedDataset(base, 3, PositiveCorrelation, 12)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumLocated() != 300 {
		t.Fatalf("correlated dataset located %d, want all", ds.NumLocated())
	}
	if ds.G.NumEdges() != base.G.NumEdges() {
		t.Fatal("correlated dataset changed the graph")
	}
}

func TestSampledDataset(t *testing.T) {
	base, err := FoursquarePreset.Dataset(800, 13)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := SampledDataset(base, 200, 14)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers() != 200 {
		t.Fatalf("sampled %d users", ds.NumUsers())
	}
}
