package gen

import (
	"fmt"
	"math"
	"math/rand"

	"ssrq/internal/spatial"
)

// This file holds the literature-derived workload generators behind the
// "urban" and "homophily" presets. Both attach per-user label bitmasks
// (derived from the community that shaped the user's location), so filtered
// queries on these datasets face spatially-clustered labels — the regime
// where the AIS cell-mask pruning actually has subtrees to discard.

// UrbanConfig drives UrbanGeoSocial.
type UrbanConfig struct {
	// N is the number of users, M the edges each arriving user creates.
	N, M int
	// Cities is the number of Gaussian population clusters; Sigma their
	// spread as a fraction of the unit square (default 0.04).
	Cities int
	Sigma  float64
	// DistScale is the characteristic distance d₀ of the attachment kernel
	// (default 0.05 of the unit square); Gamma its decay exponent (default
	// 1, the ~d⁻¹ law reported for urban social networks).
	DistScale float64
	Gamma     float64
	// LocatedFrac is the fraction of users whose location the dataset
	// exposes.
	LocatedFrac float64
}

// UrbanGeoSocial generates a geo-social dataset with distance-dependent edge
// probability: candidate endpoints arrive by preferential attachment but are
// accepted with probability 1/(1+(d/d₀)^γ), the distance-decay law
// Herrera-Yagüe et al. ("The anatomy of urban social networks") measure on
// country-scale communication graphs. Unlike GeoSocial — where the latent
// geography that shapes edges is mostly decorrelated from the observed one —
// the observed location here IS the latent one: distance decay is a statement
// about where people actually are. Returns edges, points, located flags and
// per-user label masks (one bit per home city, so labels are spatially
// clustered by construction).
func UrbanGeoSocial(cfg UrbanConfig, rng *rand.Rand) ([]edge, []spatial.Point, []bool, []uint64, error) {
	if cfg.N < 2 || cfg.M < 1 || cfg.M >= cfg.N {
		return nil, nil, nil, nil, fmt.Errorf("gen: UrbanGeoSocial N=%d M=%d invalid", cfg.N, cfg.M)
	}
	if cfg.Cities < 1 {
		cfg.Cities = 12
	}
	if cfg.Sigma == 0 {
		cfg.Sigma = 0.04
	}
	if cfg.DistScale == 0 {
		cfg.DistScale = 0.05
	}
	if cfg.Gamma == 0 {
		cfg.Gamma = 1
	}
	if cfg.LocatedFrac <= 0 || cfg.LocatedFrac > 1 {
		cfg.LocatedFrac = 1
	}

	centers := make([]spatial.Point, cfg.Cities)
	for i := range centers {
		centers[i] = spatial.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	pts := make([]spatial.Point, cfg.N)
	located := make([]bool, cfg.N)
	labels := make([]uint64, cfg.N)
	city := make([]int, cfg.N)
	for v := 0; v < cfg.N; v++ {
		city[v] = rng.Intn(cfg.Cities)
		c := centers[city[v]]
		pts[v] = spatial.Point{
			X: clamp01(c.X + rng.NormFloat64()*cfg.Sigma),
			Y: clamp01(c.Y + rng.NormFloat64()*cfg.Sigma),
		}
		located[v] = rng.Float64() < cfg.LocatedFrac
		labels[v] = 1 << uint(city[v]%64)
	}

	// Preferential-attachment proposals, distance-decay acceptance.
	es := newEdgeSet(cfg.N * cfg.M)
	endpoints := make([]int32, 0, 2*cfg.N*cfg.M)
	seed := cfg.M + 1
	if seed > cfg.N {
		seed = cfg.N
	}
	for v := 0; v < seed; v++ {
		for u := 0; u < v; u++ {
			if es.add(int32(u), int32(v)) {
				endpoints = append(endpoints, int32(u), int32(v))
			}
		}
	}
	accept := func(a, b int32) bool {
		d := pts[a].Dist(pts[b]) / cfg.DistScale
		return rng.Float64() < 1/(1+math.Pow(d, cfg.Gamma))
	}
	for v := seed; v < cfg.N; v++ {
		attached := 0
		for guard := 0; attached < cfg.M && guard < 120*cfg.M; guard++ {
			u := endpoints[rng.Intn(len(endpoints))]
			if u == int32(v) || es.has(u, int32(v)) || !accept(u, int32(v)) {
				continue
			}
			if es.add(u, int32(v)) {
				endpoints = append(endpoints, u, int32(v))
				attached++
			}
		}
		// Degenerate fallback keeps the degree target under adversarial
		// geometry: attach to arbitrary distinct vertices, no decay test.
		for u := int32(0); attached < cfg.M && u < int32(v); u++ {
			if es.add(u, int32(v)) {
				endpoints = append(endpoints, u, int32(v))
				attached++
			}
		}
	}
	return es.list, pts, located, labels, nil
}

// HomophilyConfig drives HomophilyGeoSocial.
type HomophilyConfig struct {
	N, M int
	// Depth is the depth of the binary identity hierarchy (2^Depth leaf
	// groups, default 4 → 16 groups).
	Depth int
	// Alpha is the homophily strength: the probability of befriending
	// someone at hierarchy distance h decays as exp(−Alpha·h) (default 1).
	Alpha float64
	// Sigma is each leaf group's spatial spread (default 0.04).
	Sigma float64
	// LocatedFrac is the fraction of users whose location is exposed.
	LocatedFrac float64
}

// HomophilyGeoSocial generates a dataset with hierarchical attribute
// homophily after Watts, Dodds and Newman ("Identity and search in social
// networks"): users occupy the leaves of a binary identity hierarchy, and an
// arriving user befriends a target sampled by hierarchy distance h with
// probability ∝ exp(−α·h) — mostly own group, occasionally a sibling group,
// rarely across the top split. Leaf groups are laid out on a spatial grid so
// hierarchically-close groups are also spatially close, and each user's label
// bit is their leaf group: filters aligned with the hierarchy select
// spatially-coherent regions.
func HomophilyGeoSocial(cfg HomophilyConfig, rng *rand.Rand) ([]edge, []spatial.Point, []bool, []uint64, error) {
	if cfg.N < 2 || cfg.M < 1 || cfg.M >= cfg.N {
		return nil, nil, nil, nil, fmt.Errorf("gen: HomophilyGeoSocial N=%d M=%d invalid", cfg.N, cfg.M)
	}
	if cfg.Depth < 1 {
		cfg.Depth = 4
	}
	if cfg.Depth > 6 {
		cfg.Depth = 6 // 64 leaf groups: one label bit each
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 1
	}
	if cfg.Sigma == 0 {
		cfg.Sigma = 0.04
	}
	if cfg.LocatedFrac <= 0 || cfg.LocatedFrac > 1 {
		cfg.LocatedFrac = 1
	}
	groups := 1 << uint(cfg.Depth)

	// Grid layout by bit-deinterleave of the group id: adjacent hierarchy
	// leaves land in adjacent grid cells, so hierarchy distance correlates
	// with spatial distance.
	side := 1
	for side*side < groups {
		side *= 2
	}
	centers := make([]spatial.Point, groups)
	for g := 0; g < groups; g++ {
		var gx, gy int
		for b := 0; b < cfg.Depth; b++ {
			if g&(1<<uint(b)) != 0 {
				if b%2 == 0 {
					gx |= 1 << uint(b/2)
				} else {
					gy |= 1 << uint(b/2)
				}
			}
		}
		centers[g] = spatial.Point{
			X: (float64(gx) + 0.5) / float64(side),
			Y: (float64(gy) + 0.5) / float64(side),
		}
	}

	pts := make([]spatial.Point, cfg.N)
	located := make([]bool, cfg.N)
	labels := make([]uint64, cfg.N)
	group := make([]int, cfg.N)
	byGroup := make([][]int32, groups)
	for v := 0; v < cfg.N; v++ {
		group[v] = rng.Intn(groups)
		c := centers[group[v]]
		pts[v] = spatial.Point{
			X: clamp01(c.X + rng.NormFloat64()*cfg.Sigma),
			Y: clamp01(c.Y + rng.NormFloat64()*cfg.Sigma),
		}
		located[v] = rng.Float64() < cfg.LocatedFrac
		labels[v] = 1 << uint(group[v]%64)
	}

	// Cumulative distribution over hierarchy distances 0..Depth with
	// p(h) ∝ exp(−α·h).
	cum := make([]float64, cfg.Depth+1)
	total := 0.0
	for h := 0; h <= cfg.Depth; h++ {
		total += math.Exp(-cfg.Alpha * float64(h))
		cum[h] = total
	}
	sampleGroup := func(g int) int {
		x := rng.Float64() * total
		h := 0
		for h < cfg.Depth && x > cum[h] {
			h++
		}
		if h == 0 {
			return g
		}
		// Groups at hierarchy distance h share the top Depth−h bits and
		// differ at bit h−1; the h−1 bits below are free.
		t := g ^ (1 << uint(h-1))
		if h > 1 {
			mask := (1 << uint(h-1)) - 1
			t = (t &^ mask) | rng.Intn(1<<uint(h-1))
		}
		return t
	}

	es := newEdgeSet(cfg.N * cfg.M)
	seedN := cfg.M + 1
	if seedN > cfg.N {
		seedN = cfg.N
	}
	for v := 0; v < seedN; v++ {
		for u := 0; u < v; u++ {
			es.add(int32(u), int32(v))
		}
		byGroup[group[v]] = append(byGroup[group[v]], int32(v))
	}
	for v := seedN; v < cfg.N; v++ {
		attached := 0
		for guard := 0; attached < cfg.M && guard < 60*cfg.M; guard++ {
			members := byGroup[sampleGroup(group[v])]
			if len(members) == 0 {
				continue
			}
			if es.add(members[rng.Intn(len(members))], int32(v)) {
				attached++
			}
		}
		for u := int32(0); attached < cfg.M && u < int32(v); u++ {
			if es.add(u, int32(v)) {
				attached++
			}
		}
		byGroup[group[v]] = append(byGroup[group[v]], int32(v))
	}
	return es.list, pts, located, labels, nil
}
