package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"ssrq"
)

// sseClient wraps one open /subscribe stream.
type sseClient struct {
	resp   *http.Response
	sc     *bufio.Scanner
	cancel context.CancelFunc
}

func openSSE(t *testing.T, base string, user, k int, alpha float64) *sseClient {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	url := fmt.Sprintf("%s/subscribe?user=%d&k=%d&alpha=%g", base, user, k, alpha)
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		cancel()
		t.Fatalf("subscribe = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		cancel()
		t.Fatalf("content-type = %q", ct)
	}
	return &sseClient{resp: resp, sc: bufio.NewScanner(resp.Body), cancel: cancel}
}

func (c *sseClient) close() {
	c.cancel()
	c.resp.Body.Close()
}

// next reads one complete SSE event (ok=false at stream end).
func (c *sseClient) next(t *testing.T) (event string, delta sseDelta, ok bool) {
	t.Helper()
	var data string
	for c.sc.Scan() {
		line := c.sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && data != "":
			if err := json.Unmarshal([]byte(data), &delta); err != nil {
				t.Fatalf("bad SSE payload %q: %v", data, err)
			}
			return event, delta, true
		}
	}
	return "", sseDelta{}, false
}

// nextWithin reads one event with a deadline, failing the test on timeout.
func (c *sseClient) nextWithin(t *testing.T, d time.Duration) (sseDelta, bool) {
	t.Helper()
	type out struct {
		delta sseDelta
		ok    bool
	}
	ch := make(chan out, 1)
	go func() {
		_, delta, ok := c.next(t)
		ch <- out{delta, ok}
	}()
	select {
	case o := <-ch:
		return o.delta, o.ok
	case <-time.After(d):
		t.Fatalf("no SSE event within %v", d)
		return sseDelta{}, false
	}
}

func sseEngine(t *testing.T, opts *ssrq.Options) *ssrq.Engine {
	t.Helper()
	ds, err := ssrq.Synthesize("twitter", 400, 9)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ssrq.NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestSSEWireFormat: the initial event carries the full result as "added"
// and matches a direct query; a subsequent move produces a well-formed
// incremental delta.
func TestSSEWireFormat(t *testing.T) {
	eng := sseEngine(t, nil)
	defer eng.Close()
	ts := httptest.NewServer(New(eng))
	defer ts.Close()

	const q, k = 0, 5
	c := openSSE(t, ts.URL, q, k, 0.3)
	defer c.close()

	init, ok := c.nextWithin(t, 5*time.Second)
	if !ok {
		t.Fatal("stream ended before the initial event")
	}
	want, err := eng.TopK(q, k, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(init.Added) != len(want.Entries) || len(init.Removed) != 0 || len(init.Rescored) != 0 {
		t.Fatalf("initial event not a pure snapshot: %+v", init)
	}
	for i, e := range init.Added {
		if e.ID != want.Entries[i].ID {
			t.Fatalf("initial event rank %d = user %d, want %d", i, e.ID, want.Entries[i].ID)
		}
	}

	// Teleport the subscriber across the map: every spatial component
	// changes, so a delta must arrive.
	far, okLoc := eng.UserLocation(want.Entries[len(want.Entries)-1].ID)
	if !okLoc {
		t.Fatal("ranked user unlocated")
	}
	if err := eng.MoveUser(q, ssrq.Point{X: far.X + 1, Y: far.Y + 1}); err != nil {
		t.Fatal(err)
	}
	d, ok := c.nextWithin(t, 5*time.Second)
	if !ok {
		t.Fatal("stream ended before the move delta")
	}
	if d.Round <= init.Round {
		t.Fatalf("delta round %d not after initial round %d", d.Round, init.Round)
	}
	if len(d.Added)+len(d.Rescored)+len(d.Removed) == 0 {
		t.Fatalf("empty delta emitted: %+v", d)
	}
}

// TestSSEClientDisconnect: cancelling the request must tear the
// subscription down server-side.
func TestSSEClientDisconnect(t *testing.T) {
	eng := sseEngine(t, nil)
	defer eng.Close()
	ts := httptest.NewServer(New(eng))
	defer ts.Close()

	c := openSSE(t, ts.URL, 0, 5, 0.3)
	if _, ok := c.nextWithin(t, 5*time.Second); !ok {
		t.Fatal("no initial event")
	}
	if got := eng.SubscriptionStats().Active; got != 1 {
		t.Fatalf("active subscriptions = %d, want 1", got)
	}
	c.close()
	deadline := time.Now().Add(5 * time.Second)
	for eng.SubscriptionStats().Active != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscription not torn down after client disconnect (active=%d)",
				eng.SubscriptionStats().Active)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSSETeardownOnClose: Engine.Close with live SSE clients must
// terminate every stream and leak no goroutines — on both engine flavors.
func TestSSETeardownOnClose(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts *ssrq.Options
	}{
		{"monolithic", nil},
		{"sharded", &ssrq.Options{Shards: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			eng := sseEngine(t, tc.opts)
			ts := httptest.NewServer(New(eng))

			clients := make([]*sseClient, 3)
			for i := range clients {
				clients[i] = openSSE(t, ts.URL, i, 5, 0.3)
				if _, ok := clients[i].nextWithin(t, 5*time.Second); !ok {
					t.Fatal("no initial event")
				}
			}
			// Keep the world moving so Close races active evaluation.
			for i := 0; i < 32; i++ {
				p, ok := eng.UserLocation(ssrq.UserID(i % 100))
				if !ok {
					continue
				}
				if err := eng.MoveUserAsync(ssrq.UserID(i%100), ssrq.Point{X: p.X * 0.99, Y: p.Y * 0.99}); err != nil {
					t.Fatal(err)
				}
			}

			eng.Close()

			// Every stream must end (the handler returns, the server closes
			// the response) within the deadline.
			for i, c := range clients {
				done := make(chan struct{})
				go func(c *sseClient) {
					for {
						if _, _, ok := c.next(t); !ok {
							close(done)
							return
						}
					}
				}(c)
				select {
				case <-done:
				case <-time.After(5 * time.Second):
					t.Fatalf("stream %d still open after engine Close", i)
				}
			}
			for _, c := range clients {
				c.close()
			}
			ts.Close()

			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				runtime.GC()
				if runtime.NumGoroutine() <= before+2 {
					return
				}
				time.Sleep(20 * time.Millisecond)
			}
			t.Fatalf("goroutines did not settle after Close: before=%d now=%d", before, runtime.NumGoroutine())
		})
	}
}

// TestSSEBadRequests: parameter validation surfaces as the same status
// codes the /query endpoint uses — 400 for malformed or out-of-domain
// parameters, 404 for an unknown user — never a half-open stream.
func TestSSEBadRequests(t *testing.T) {
	eng := sseEngine(t, nil)
	defer eng.Close()
	ts := httptest.NewServer(New(eng))
	defer ts.Close()

	for _, c := range []struct {
		path string
		want int
	}{
		{"/subscribe", http.StatusBadRequest},                 // missing user
		{"/subscribe?user=999999", http.StatusNotFound},       // out of range
		{"/subscribe?user=0&alpha=1.5", http.StatusBadRequest},
		{"/subscribe?user=0&alpha=NaN", http.StatusBadRequest},
		{"/subscribe?user=0&k=0", http.StatusBadRequest},
		{"/subscribe?user=0&alpha=notafloat", http.StatusBadRequest},
		{"/subscribe?user=0&labels=64", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + c.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Fatalf("%s = %d, want %d", c.path, resp.StatusCode, c.want)
		}
	}
}

// TestSSEHeartbeat: a subscriber whose result never changes still receives
// periodic ": ping" comment lines, so the stream is distinguishable from a
// dead connection. The world stays frozen after the initial event — without
// the heartbeat this client would read zero bytes forever.
func TestSSEHeartbeat(t *testing.T) {
	eng := sseEngine(t, nil)
	defer eng.Close()
	srv := New(eng)
	srv.SetHeartbeat(50 * time.Millisecond)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := openSSE(t, ts.URL, 0, 5, 0.3)
	defer c.close()
	if _, ok := c.nextWithin(t, 5*time.Second); !ok {
		t.Fatal("no initial event")
	}

	// Read raw lines off the idle stream: a comment line must arrive.
	lines := make(chan string, 16)
	go func() {
		for c.sc.Scan() {
			lines <- c.sc.Text()
		}
		close(lines)
	}()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("stream ended before any heartbeat")
			}
			if strings.HasPrefix(line, ":") {
				return // heartbeat comment observed
			}
			// Blank separators or stray events are fine; keep reading.
		case <-deadline:
			t.Fatal("no heartbeat comment within 5s on an idle stream")
		}
	}
}
