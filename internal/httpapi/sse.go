package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"ssrq"
)

// defaultHeartbeat is the idle-stream heartbeat interval: during long
// stretches where every epoch is skip-proven (no delta events), the handler
// emits an SSE comment line so proxies and clients see a live connection and
// the server notices a broken one. Override with Server.SetHeartbeat.
const defaultHeartbeat = 15 * time.Second

// sseDelta is the wire form of one subscription delta event: the entries
// that entered the top-k (in result order), the ones that remain with a
// changed score, and the IDs that dropped out. The first event of a
// stream carries the full initial result as "added".
type sseDelta struct {
	Round    uint64       `json:"round"`
	Added    []queryEntry `json:"added,omitempty"`
	Rescored []queryEntry `json:"rescored,omitempty"`
	Removed  []int32      `json:"removed,omitempty"`
}

func toSSEDelta(d ssrq.SubscriptionDelta) sseDelta {
	out := sseDelta{Round: d.Round}
	for _, e := range d.Added {
		out.Added = append(out.Added, queryEntry{ID: e.ID, F: e.F, Social: e.P, Spatial: e.D})
	}
	for _, e := range d.Rescored {
		out.Rescored = append(out.Rescored, queryEntry{ID: e.ID, F: e.F, Social: e.P, Spatial: e.D})
	}
	out.Removed = d.Removed
	return out
}

// handleSubscribe streams a standing top-k query as server-sent events:
// one "delta" event per result change (the first carrying the full
// initial result), coalesced per evaluation round. The stream ends when
// the client disconnects or the engine closes; either way the
// subscription is torn down before the handler returns.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	q, prm, code, err := s.queryParams(r, "user")
	if err != nil {
		httpError(w, code, err)
		return
	}

	sb, err := s.eng.SubscribeParams(ssrq.UserID(q), prm)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	defer sb.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	// Initial event: the full current result as an all-added delta.
	if !writeSSEDelta(w, sb.Delta()) {
		return
	}
	flusher.Flush()

	// The heartbeat guards the all-skip steady state: a subscriber whose
	// result never changes would otherwise receive zero bytes indefinitely,
	// which idle-timeout proxies kill and half-open connections survive.
	// Comment lines are invisible to EventSource clients; a failed write is
	// the broken-connection signal.
	hb := s.heartbeat
	if hb <= 0 {
		hb = defaultHeartbeat
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()

	for {
		select {
		case <-r.Context().Done():
			return // client disconnected
		case <-ticker.C:
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return // connection broke during an idle stretch
			}
			flusher.Flush()
		case _, open := <-sb.Notify():
			if !open {
				return // subscription or engine closed
			}
			d := sb.Delta()
			if d.Empty() {
				continue // drained by an earlier wakeup
			}
			if !writeSSEDelta(w, d) {
				return
			}
			flusher.Flush()
		}
	}
}

// writeSSEDelta emits one "delta" event; false when the connection broke.
func writeSSEDelta(w http.ResponseWriter, d ssrq.SubscriptionDelta) bool {
	payload, err := json.Marshal(toSSEDelta(d))
	if err != nil {
		return false
	}
	_, err = fmt.Fprintf(w, "event: delta\ndata: %s\n\n", payload)
	return err == nil
}
