package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"ssrq"
)

// doRaw sends a raw body without JSON round-tripping (fuzz inputs are often
// invalid JSON on purpose). nil body = GET.
func doRaw(s *Server, path string, body []byte) *httptest.ResponseRecorder {
	method := "POST"
	if body == nil {
		method = "GET"
	}
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestEdgesBulkFlush(t *testing.T) {
	s, _, q := mkServer(t)
	body := edgesRequest{
		Edges: []edgeItem{
			{U: int32(q), V: 101, W: 0.001},
			{U: 102, V: 103, W: 0.5},
			{U: 104, V: 105, Remove: true},
		},
		Flush: true,
	}
	rec := do(t, s, "POST", "/edges", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("edges flush = %d: %s", rec.Code, rec.Body)
	}
	var resp edgesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 3 {
		t.Fatalf("accepted = %d", resp.Accepted)
	}
	if resp.SocialEpoch == 0 {
		t.Fatal("flushed edge batch did not advance the social epoch")
	}
	// The super-strong new friendship must show up in the query result.
	qrec := do(t, s, "GET", fmt.Sprintf("/query?q=%d&k=5&alpha=0.9", q), nil)
	if qrec.Code != http.StatusOK {
		t.Fatalf("query = %d: %s", qrec.Code, qrec.Body)
	}
	var qresp queryResponse
	if err := json.Unmarshal(qrec.Body.Bytes(), &qresp); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range qresp.Entries {
		if e.ID == 101 {
			found = true
		}
	}
	if !found {
		t.Fatalf("new friend 101 missing from %v", qresp.Entries)
	}
}

func TestEdgesAsyncAccepted(t *testing.T) {
	s, _, _ := mkServer(t)
	rec := do(t, s, "POST", "/edges", edgesRequest{Edges: []edgeItem{{U: 7, V: 9, W: 1}}})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async edges = %d: %s", rec.Code, rec.Body)
	}
}

func TestEdgesValidation(t *testing.T) {
	s, ds, _ := mkServer(t)
	n := int32(ds.NumUsers())
	cases := []struct {
		name string
		body any
		code int
	}{
		{"empty", edgesRequest{}, http.StatusBadRequest},
		{"out-of-range-u", edgesRequest{Edges: []edgeItem{{U: -1, V: 2, W: 1}}}, http.StatusBadRequest},
		{"out-of-range-v", edgesRequest{Edges: []edgeItem{{U: 0, V: n, W: 1}}}, http.StatusBadRequest},
		{"self-loop", edgesRequest{Edges: []edgeItem{{U: 4, V: 4, W: 1}}}, http.StatusBadRequest},
		{"zero-weight", edgesRequest{Edges: []edgeItem{{U: 0, V: 1}}}, http.StatusBadRequest},
		{"negative-weight", edgesRequest{Edges: []edgeItem{{U: 0, V: 1, W: -3}}}, http.StatusBadRequest},
		{"garbage", "not json", http.StatusBadRequest},
	}
	for _, c := range cases {
		rec := do(t, s, "POST", "/edges", c.body)
		if rec.Code != c.code {
			t.Fatalf("%s: code %d, want %d (%s)", c.name, rec.Code, c.code, rec.Body)
		}
	}
	// Validate-all-then-enqueue: a bad tail item must reject the whole
	// request without applying the good head.
	st0 := statsOf(t, s)
	rec := do(t, s, "POST", "/edges", edgesRequest{
		Edges: []edgeItem{{U: 0, V: 1, W: 1}, {U: 2, V: 2, W: 1}},
		Flush: true,
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("partial batch = %d", rec.Code)
	}
	if st := statsOf(t, s); st.SocialEpoch != st0.SocialEpoch {
		t.Fatal("rejected batch still mutated the graph")
	}
}

func TestEdgesUnsupportedConfigIs501(t *testing.T) {
	ds, err := ssrq.Synthesize("twitter", 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ssrq.NewEngine(ds, &ssrq.Options{NumLandmarks: 70})
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng)
	rec := do(t, s, "POST", "/edges", edgesRequest{Edges: []edgeItem{{U: 0, V: 1, W: 1}}})
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("unsupported edge churn = %d, want 501: %s", rec.Code, rec.Body)
	}
	// Queries keep working on the same engine.
	qrec := do(t, s, "GET", "/query?q=0&k=3", nil)
	if qrec.Code != http.StatusOK {
		t.Fatalf("query on 70-landmark engine = %d", qrec.Code)
	}
}

func TestEdgesHugeWeightRejected(t *testing.T) {
	s, _, _ := mkServer(t)
	// "1e999" decodes to +Inf; the handler must refuse it.
	rec := do(t, s, "POST", "/edges", json.RawMessage(`{"edges":[{"u":0,"v":1,"w":1e999}]}`))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("inf weight = %d: %s", rec.Code, rec.Body)
	}
}

func statsOf(t *testing.T, s *Server) statsResponse {
	t.Helper()
	rec := do(t, s, "GET", "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d", rec.Code)
	}
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStatsReportSocialCounters(t *testing.T) {
	s, _, _ := mkServer(t)
	before := statsOf(t, s)
	rec := do(t, s, "POST", "/edges", edgesRequest{
		Edges: []edgeItem{{U: 11, V: 13, W: 0.2}, {U: 15, V: 17, Remove: true}},
		Flush: true,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("edges = %d: %s", rec.Code, rec.Body)
	}
	after := statsOf(t, s)
	if after.SocialEpoch <= before.SocialEpoch {
		t.Fatalf("social epoch did not advance: %d -> %d", before.SocialEpoch, after.SocialEpoch)
	}
	if after.EdgeAdds == before.EdgeAdds && after.EdgeReweights == before.EdgeReweights {
		t.Fatal("edge counters did not move")
	}
	if after.NumEdges == 0 {
		t.Fatal("stats lost the live edge count")
	}
}

// TestConcurrentEdgesAndQueries drives /edges and /query from concurrent
// clients — the HTTP-level smoke for lock-free social churn.
func TestConcurrentEdgesAndQueries(t *testing.T) {
	s, ds, q := mkServer(t)
	n := int32(ds.NumUsers())
	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 10; i++ {
				u := (int32(g*31+i*7) % n)
				v := (u + 1 + int32(i)%17) % n
				if u == v {
					continue
				}
				rec := do(t, s, "POST", "/edges", edgesRequest{Edges: []edgeItem{{U: u, V: v, W: 0.3}}})
				if rec.Code != http.StatusAccepted {
					done <- fmt.Errorf("edges = %d: %s", rec.Code, rec.Body)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 8; i++ {
				rec := do(t, s, "GET", fmt.Sprintf("/query?q=%d&k=5", q), nil)
				if rec.Code != http.StatusOK {
					done <- fmt.Errorf("query = %d: %s", rec.Code, rec.Body)
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzMovesDecode fuzzes the JSON decode + validation front of the two bulk
// mutation endpoints (/moves and /edges): arbitrary bodies must produce a
// clean HTTP status — 4xx or 2xx — and never a panic or an engine-corrupting
// partial apply (spot-checked by running a query afterwards). One shared
// engine keeps the target fast; accepted inputs genuinely mutate it, which
// is the point.
func FuzzMovesDecode(f *testing.F) {
	f.Add([]byte(`{"moves":[{"id":1,"x":0.5,"y":0.5}]}`))
	f.Add([]byte(`{"moves":[{"id":1,"remove":true}],"flush":true}`))
	f.Add([]byte(`{"edges":[{"u":1,"v":2,"w":0.5}]}`))
	f.Add([]byte(`{"edges":[{"u":1,"v":2,"remove":true}],"flush":true}`))
	f.Add([]byte(`{"moves":[{"id":-1}]}`))
	f.Add([]byte(`{"edges":[{"u":0,"v":0,"w":1e999}]}`))
	f.Add([]byte(`{`))

	ds, err := ssrq.Synthesize("twitter", 120, 3)
	if err != nil {
		f.Fatal(err)
	}
	eng, err := ssrq.NewEngine(ds, nil)
	if err != nil {
		f.Fatal(err)
	}
	s := New(eng)

	f.Fuzz(func(t *testing.T, body []byte) {
		for _, path := range []string{"/moves", "/edges"} {
			rec := doRaw(s, path, body)
			if rec.Code >= 500 {
				t.Fatalf("%s returned %d for %q", path, rec.Code, body)
			}
		}
		qrec := doRaw(s, "/query?q=0&k=3", nil)
		if qrec.Code != http.StatusOK {
			t.Fatalf("query broken after fuzz input %q: %d %s", body, qrec.Code, qrec.Body)
		}
	})
}
