package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ssrq"
)

func mkServer(t *testing.T) (*Server, *ssrq.Dataset, ssrq.UserID) {
	t.Helper()
	ds, err := ssrq.Synthesize("twitter", 400, 9) // all users located
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ssrq.NewEngine(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	return New(eng), ds, 0
}

func do(t *testing.T, s *Server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	s, _, _ := mkServer(t)
	rec := do(t, s, "GET", "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
}

func TestQueryHappyPath(t *testing.T) {
	s, _, q := mkServer(t)
	rec := do(t, s, "GET", fmt.Sprintf("/query?q=%d&k=5&alpha=0.3", q), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d: %s", rec.Code, rec.Body)
	}
	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Entries) != 5 {
		t.Fatalf("entries = %d", len(resp.Entries))
	}
	for i := 1; i < len(resp.Entries); i++ {
		if resp.Entries[i].F < resp.Entries[i-1].F {
			t.Fatal("entries unsorted")
		}
	}
	if resp.Stats.IndexUserPops == 0 {
		t.Fatal("stats missing")
	}
}

func TestQueryAlgoSelection(t *testing.T) {
	s, _, q := mkServer(t)
	for _, algo := range []string{"SFA", "TSA", "AIS", "brute"} {
		rec := do(t, s, "GET", fmt.Sprintf("/query?q=%d&k=3&algo=%s", q, algo), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("algo %s = %d: %s", algo, rec.Code, rec.Body)
		}
	}
	if rec := do(t, s, "GET", fmt.Sprintf("/query?q=%d&algo=QUANTUM", q), nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown algo = %d", rec.Code)
	}
}

func TestQueryValidation(t *testing.T) {
	s, _, _ := mkServer(t)
	cases := []struct {
		path string
		want int
	}{
		{"/query", http.StatusBadRequest},                // missing q
		{"/query?q=abc", http.StatusBadRequest},          // bad q
		{"/query?q=0&k=frog", http.StatusBadRequest},     // bad k
		{"/query?q=0&alpha=nope", http.StatusBadRequest}, // bad alpha
		// Parameter-domain violations are the client's fault: 400, not the
		// engine catch-all 422 they used to fall into.
		{"/query?q=0&k=0", http.StatusBadRequest},
		{"/query?q=0&k=-3", http.StatusBadRequest},
		{"/query?q=0&alpha=1.5", http.StatusBadRequest},
		{"/query?q=0&alpha=0", http.StatusBadRequest},
		{"/query?q=0&alpha=1", http.StatusBadRequest},
		{"/query?q=0&alpha=NaN", http.StatusBadRequest}, // ParseFloat accepts NaN
		{"/query?q=0&labels=frog", http.StatusBadRequest},
		{"/query?q=0&labels=64", http.StatusBadRequest},
		{"/query?q=0&labels=-1", http.StatusBadRequest},
		// An unknown user is a missing resource, not a malformed request.
		{"/query?q=999999", http.StatusNotFound},
		// Valid labels parse fine on an unlabeled dataset (empty result).
		{"/query?q=0&labels=0,3,17", http.StatusOK},
	}
	for _, c := range cases {
		if rec := do(t, s, "GET", c.path, nil); rec.Code != c.want {
			t.Errorf("%s = %d, want %d", c.path, rec.Code, c.want)
		}
	}
}

func TestUserEndpoint(t *testing.T) {
	s, ds, _ := mkServer(t)
	rec := do(t, s, "GET", "/user/3", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("user = %d", rec.Code)
	}
	var resp userResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &resp)
	if !resp.Located || resp.X == nil {
		t.Fatalf("user response %+v", resp)
	}
	want, _ := ds.Location(3)
	if *resp.X != want.X || *resp.Y != want.Y {
		t.Fatal("location mismatch")
	}
	if rec := do(t, s, "GET", "/user/77777", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("bogus user = %d", rec.Code)
	}
	if rec := do(t, s, "GET", "/user/xyz", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("non-numeric user = %d", rec.Code)
	}
}

func TestMoveAndUnlocate(t *testing.T) {
	s, ds, q := mkServer(t)
	target, _ := ds.Location(q)
	// Move user 42 onto the query user.
	rec := do(t, s, "POST", "/move", moveRequest{ID: 42, X: target.X, Y: target.Y})
	if rec.Code != http.StatusNoContent {
		t.Fatalf("move = %d: %s", rec.Code, rec.Body)
	}
	var resp queryResponse
	recQ := do(t, s, "GET", fmt.Sprintf("/query?q=%d&k=1&alpha=0.05", q), nil)
	_ = json.Unmarshal(recQ.Body.Bytes(), &resp)
	// With a heavily spatial alpha the teleported user should rank first
	// unless it is socially unreachable; at minimum the query must succeed.
	if recQ.Code != http.StatusOK {
		t.Fatalf("query after move = %d", recQ.Code)
	}

	rec = do(t, s, "POST", "/unlocate", unlocateRequest{ID: 42})
	if rec.Code != http.StatusNoContent {
		t.Fatalf("unlocate = %d", rec.Code)
	}
	recU := do(t, s, "GET", "/user/42", nil)
	var u userResponse
	_ = json.Unmarshal(recU.Body.Bytes(), &u)
	if u.Located {
		t.Fatal("user still located after unlocate")
	}

	// Validation.
	if rec := do(t, s, "POST", "/move", moveRequest{ID: 999999}); rec.Code != http.StatusNotFound {
		t.Fatalf("move bogus = %d", rec.Code)
	}
	req := httptest.NewRequest("POST", "/move", bytes.NewBufferString("{not json"))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("garbage body = %d", w.Code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, ds, _ := mkServer(t)
	rec := do(t, s, "GET", "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d", rec.Code)
	}
	var st ssrq.DatasetStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.NumVertices != ds.NumUsers() {
		t.Fatalf("stats users = %d", st.NumVertices)
	}
}

func TestConcurrentQueriesAndMoves(t *testing.T) {
	s, ds, q := mkServer(t)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%4 == 0 {
				p, _ := ds.Location(ssrq.UserID(i + 1))
				rec := do(t, s, "POST", "/move", moveRequest{ID: int32(i + 1), X: p.X + 0.01, Y: p.Y})
				if rec.Code != http.StatusNoContent {
					errs <- fmt.Sprintf("move %d: %d", i, rec.Code)
				}
				return
			}
			rec := do(t, s, "GET", fmt.Sprintf("/query?q=%d&k=5", q), nil)
			if rec.Code != http.StatusOK {
				errs <- fmt.Sprintf("query %d: %d", i, rec.Code)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestBatchEndpoint(t *testing.T) {
	s, _, _ := mkServer(t)
	rec := do(t, s, "POST", "/batch", batchRequest{Algo: "AIS", K: 4, Alpha: 0.3, Queries: []int32{0, 1, 2, 3, 4}, Parallel: 2})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch = %d: %s", rec.Code, rec.Body)
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 5 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	for i, r := range resp.Results {
		if r.Error != "" {
			t.Fatalf("slot %d: %s", i, r.Error)
		}
		if r.Query != int32(i) {
			t.Fatalf("slot %d out of order: query %d", i, r.Query)
		}
		if len(r.Entries) != 4 {
			t.Fatalf("slot %d entries = %d", i, len(r.Entries))
		}
	}
	// Batch answers must match the single-query endpoint exactly.
	var single queryResponse
	recQ := do(t, s, "GET", "/query?q=2&k=4&alpha=0.3&algo=AIS", nil)
	if err := json.Unmarshal(recQ.Body.Bytes(), &single); err != nil {
		t.Fatal(err)
	}
	for j, e := range resp.Results[2].Entries {
		if e != single.Entries[j] {
			t.Fatalf("batch/single mismatch at rank %d: %+v vs %+v", j, e, single.Entries[j])
		}
	}
}

func TestBatchEndpointErrorSlots(t *testing.T) {
	s, _, _ := mkServer(t)
	rec := do(t, s, "POST", "/batch", batchRequest{Algo: "AIS", K: 3, Alpha: 0.5, Queries: []int32{0, 999999, 1}})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch = %d: %s", rec.Code, rec.Body)
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Error != "" || resp.Results[2].Error != "" {
		t.Fatalf("valid slots errored: %+v", resp.Results)
	}
	if resp.Results[1].Error == "" || len(resp.Results[1].Entries) != 0 {
		t.Fatalf("invalid slot did not error: %+v", resp.Results[1])
	}
}

func TestBatchEndpointValidation(t *testing.T) {
	s, _, _ := mkServer(t)
	if rec := do(t, s, "POST", "/batch", batchRequest{Algo: "AIS", Queries: nil}); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty batch = %d", rec.Code)
	}
	if rec := do(t, s, "POST", "/batch", batchRequest{Algo: "QUANTUM", Queries: []int32{0}}); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown algo = %d", rec.Code)
	}
	huge := batchRequest{Algo: "AIS", Queries: make([]int32, maxBatch+1)}
	if rec := do(t, s, "POST", "/batch", huge); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch = %d", rec.Code)
	}
	req := httptest.NewRequest("POST", "/batch", bytes.NewBufferString("{broken"))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("garbage body = %d", w.Code)
	}
	// Parameter-domain violations reject the whole batch with 400 — they are
	// malformed requests, not per-slot engine failures.
	domain := []struct {
		name string
		req  batchRequest
	}{
		{"k=0 via negative", batchRequest{Algo: "AIS", K: -1, Queries: []int32{0}}},
		{"alpha=1.5", batchRequest{Algo: "AIS", Alpha: 1.5, Queries: []int32{0}}},
		{"alpha=-0.1", batchRequest{Algo: "AIS", Alpha: -0.1, Queries: []int32{0}}},
		{"label index 64", batchRequest{Algo: "AIS", Labels: []int{64}, Queries: []int32{0}}},
		{"label index -1", batchRequest{Algo: "AIS", Labels: []int{-1}, Queries: []int32{0}}},
	}
	for _, c := range domain {
		if rec := do(t, s, "POST", "/batch", c.req); rec.Code != http.StatusBadRequest {
			t.Errorf("%s = %d, want %d", c.name, rec.Code, http.StatusBadRequest)
		}
	}
	// Valid label indices are accepted (empty slots on an unlabeled dataset).
	if rec := do(t, s, "POST", "/batch", batchRequest{Algo: "AIS", K: 3, Alpha: 0.5, Labels: []int{0, 5}, Queries: []int32{0}}); rec.Code != http.StatusOK {
		t.Errorf("valid labels = %d, want 200", rec.Code)
	}
}

// TestBatchDefaultsApplied checks the documented request defaults (AIS,
// k=10, alpha=0.3) apply when fields are omitted.
func TestBatchDefaultsApplied(t *testing.T) {
	s, _, _ := mkServer(t)
	req := httptest.NewRequest("POST", "/batch", bytes.NewBufferString(`{"queries":[0]}`))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("defaults batch = %d: %s", w.Code, w.Body)
	}
	var resp batchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Algo != "AIS" || resp.K != 10 || resp.Alpha != 0.3 {
		t.Fatalf("defaults = %+v", resp)
	}
	if len(resp.Results[0].Entries) != 10 {
		t.Fatalf("entries = %d", len(resp.Results[0].Entries))
	}
}

// TestMovesBulkEndpoint drives the batching update pipeline through POST
// /moves with a flush barrier and verifies read-your-writes through /user.
func TestMovesBulkEndpoint(t *testing.T) {
	s, ds, q := mkServer(t)
	target, _ := ds.Location(q)
	req := movesRequest{
		Moves: []moveItem{
			{ID: 42, X: target.X, Y: target.Y},
			{ID: 43, X: target.X + 1, Y: target.Y},
			{ID: 44, Remove: true},
		},
		Flush: true,
	}
	rec := do(t, s, "POST", "/moves", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("moves with flush = %d: %s", rec.Code, rec.Body)
	}
	var resp movesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 3 {
		t.Fatalf("accepted = %d", resp.Accepted)
	}
	if resp.Epoch == 0 {
		t.Fatal("flush response missing epoch")
	}
	var u userResponse
	recU := do(t, s, "GET", "/user/42", nil)
	_ = json.Unmarshal(recU.Body.Bytes(), &u)
	if !u.Located || *u.X != target.X {
		t.Fatalf("flushed move invisible: %+v", u)
	}
	recU = do(t, s, "GET", "/user/44", nil)
	_ = json.Unmarshal(recU.Body.Bytes(), &u)
	if u.Located {
		t.Fatal("flushed removal invisible")
	}
}

// TestMovesAsyncAccepted: without flush the endpoint acknowledges with 202.
func TestMovesAsyncAccepted(t *testing.T) {
	s, _, _ := mkServer(t)
	rec := do(t, s, "POST", "/moves", movesRequest{Moves: []moveItem{{ID: 1, X: 1, Y: 2}}})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async moves = %d: %s", rec.Code, rec.Body)
	}
}

// TestMovesValidation: bad items reject the whole batch before anything is
// enqueued.
func TestMovesValidation(t *testing.T) {
	s, _, _ := mkServer(t)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty", `{"moves":[]}`, http.StatusBadRequest},
		{"unknown user", `{"moves":[{"id":999999,"x":1,"y":1}]}`, http.StatusBadRequest},
		{"inf x", `{"moves":[{"id":1,"x":1e999,"y":1}]}`, http.StatusBadRequest},
		{"inf y", `{"moves":[{"id":1,"x":1,"y":-1e999}]}`, http.StatusBadRequest},
		{"valid then bad", `{"moves":[{"id":1,"x":1,"y":1},{"id":2,"x":1e999,"y":0}]}`, http.StatusBadRequest},
		{"garbage", `{broken`, http.StatusBadRequest},
	}
	for _, c := range cases {
		req := httptest.NewRequest("POST", "/moves", bytes.NewBufferString(c.body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != c.want {
			t.Errorf("%s = %d, want %d", c.name, w.Code, c.want)
		}
	}
	// A remove item needs no coordinates, even non-finite ones are ignored.
	rec := do(t, s, "POST", "/moves", movesRequest{Moves: []moveItem{{ID: 3, Remove: true}}, Flush: true})
	if rec.Code != http.StatusOK {
		t.Fatalf("remove item = %d: %s", rec.Code, rec.Body)
	}
}

// TestMoveRejectsNonFinite covers the single-move endpoint (JSON 1e999
// decodes to +Inf, which must not reach the grid).
func TestMoveRejectsNonFinite(t *testing.T) {
	s, _, _ := mkServer(t)
	req := httptest.NewRequest("POST", "/move", bytes.NewBufferString(`{"id":1,"x":1e999,"y":0}`))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("non-finite move = %d: %s", w.Code, w.Body)
	}
}

// TestStatsReportsEpochAndPending: /stats carries the epoch/update pipeline
// fields alongside the dataset statistics.
func TestStatsReportsEpochAndPending(t *testing.T) {
	s, _, _ := mkServer(t)
	if rec := do(t, s, "POST", "/moves", movesRequest{Moves: []moveItem{{ID: 5, X: 1, Y: 1}}, Flush: true}); rec.Code != http.StatusOK {
		t.Fatalf("setup move = %d", rec.Code)
	}
	rec := do(t, s, "GET", "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d", rec.Code)
	}
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.NumVertices == 0 {
		t.Fatal("dataset stats lost from /stats")
	}
	if st.Epoch == 0 || st.AppliedUpdates == 0 || st.AppliedBatches == 0 {
		t.Fatalf("pipeline stats missing: %+v", st)
	}
}

// TestCHVariantsOverHTTP: the Fig. 8 CH variants are routable by name; a
// friendship insertion is repaired in place (no refusal window, ch_fresh
// stays true); after a removal the variants either refuse with 422 (stale
// hierarchy, transiently) or serve — and the background rebuild must restore
// service shortly; /stats reports the CH maintenance counters throughout.
func TestCHVariantsOverHTTP(t *testing.T) {
	ds, err := ssrq.Synthesize("twitter", 300, 11)
	if err != nil {
		t.Fatal(err)
	}
	buildStart := time.Now()
	eng, err := ssrq.NewEngine(ds, &ssrq.Options{BuildCH: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// The background rebuild waited on below redoes roughly the CH work the
	// construction just did, so the construction time calibrates how long
	// that wait may reasonably take on this machine (a loaded single-core
	// runner under -race is easily an order of magnitude slower than the
	// 15s that suffices on idle hardware).
	chPatience := 15 * time.Second
	if scaled := 30 * time.Since(buildStart); scaled > chPatience {
		chPatience = scaled
	}
	s := New(eng)

	for _, algo := range []string{"SFA-CH", "SPA-CH", "TSA-CH", "TSA-NL"} {
		if rec := do(t, s, "GET", "/query?q=0&k=3&algo="+algo, nil); rec.Code != http.StatusOK {
			t.Fatalf("algo %s = %d: %s", algo, rec.Code, rec.Body)
		}
	}

	stats := func() map[string]any {
		rec := do(t, s, "GET", "/stats", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("stats = %d", rec.Code)
		}
		var m map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	if m := stats(); m["ch_built"] != true || m["ch_fresh"] != true {
		t.Fatalf("pre-churn stats: ch_built=%v ch_fresh=%v", m["ch_built"], m["ch_fresh"])
	}

	// Insertion through /edges with flush: repaired in place — by the time
	// the response lands, the published hierarchy is already current.
	rec := do(t, s, "POST", "/edges", edgesRequest{
		Edges: []edgeItem{{U: 1, V: 200, W: 0.5}}, Flush: true,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("edges insert = %d: %s", rec.Code, rec.Body)
	}
	m := stats()
	if m["ch_fresh"] != true || m["ch_repairs"].(float64) < 1 {
		t.Fatalf("post-insert stats: ch_fresh=%v ch_repairs=%v", m["ch_fresh"], m["ch_repairs"])
	}
	if rec := do(t, s, "GET", "/query?q=0&k=3&algo=TSA-CH", nil); rec.Code != http.StatusOK {
		t.Fatalf("TSA-CH after repaired insert = %d: %s", rec.Code, rec.Body)
	}

	// Removal: the hierarchy goes stale until the background rebuild lands.
	// Immediately after, a CH query may refuse (422) or already serve; within
	// a generous window it must serve again.
	rec = do(t, s, "POST", "/edges", edgesRequest{
		Edges: []edgeItem{{U: 1, V: 200, Remove: true}}, Flush: true,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("edges remove = %d: %s", rec.Code, rec.Body)
	}
	deadline := time.Now().Add(chPatience)
	progress := ""
	for {
		rec := do(t, s, "GET", "/query?q=0&k=3&algo=TSA-CH", nil)
		if rec.Code == http.StatusOK {
			break
		}
		if rec.Code != http.StatusUnprocessableEntity ||
			!strings.Contains(rec.Body.String(), "contraction hierarchy") {
			t.Fatalf("TSA-CH mid-rebuild = %d: %s", rec.Code, rec.Body)
		}
		if time.Now().After(deadline) {
			// Declare the rebuild hung only if the maintenance counters have
			// also stopped moving; while they advance, keep waiting.
			m := stats()
			c := fmt.Sprint(m["ch_rebuilds"], m["ch_repairs"], m["ch_forced_installs"], m["social_epoch"])
			if c != progress {
				progress = c
				deadline = time.Now().Add(chPatience)
				continue
			}
			t.Fatalf("background rebuild never restored TSA-CH: %s", rec.Body)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if m := stats(); m["ch_fresh"] != true || m["ch_rebuilds"].(float64) < 1 {
		t.Fatalf("post-rebuild stats: ch_fresh=%v ch_rebuilds=%v", m["ch_fresh"], m["ch_rebuilds"])
	}
}
