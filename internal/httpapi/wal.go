package httpapi

// WAL replication endpoints. A durable engine's journal is served as a
// binary record stream (the oplog wire format — self-delimiting, CRC'd
// records) so a follower's transport is two GETs:
//
//	GET /wal/bootstrap          → checkpoint record sequence; X-WAL-Seq is
//	                              the log position that state represents
//	GET /wal/stream?from=&max=  → contiguous records with sequence ≥ from;
//	                              X-WAL-Seq is the leader's newest sequence
//
// 404 = this engine has no WAL; 410 Gone = the history at `from` was
// compacted away (re-bootstrap). See internal/follower.HTTPSource for the
// consuming side.

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"ssrq/internal/oplog"
	"ssrq/internal/wal"
)

// maxWALFetch bounds one /wal/stream response (records).
const maxWALFetch = 65536

func (s *Server) handleWALBootstrap(w http.ResponseWriter, _ *http.Request) {
	recs, seq, err := s.eng.WALBootstrap()
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeWALRecords(w, recs, seq)
}

func (s *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil || from == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad from: need a sequence ≥ 1"))
		return
	}
	max, err := intParam(r, "max", maxWALFetch)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if max <= 0 || max > maxWALFetch {
		max = maxWALFetch
	}
	recs, last, err := s.eng.WALRecords(from, max)
	switch {
	case errors.Is(err, wal.ErrCompacted):
		httpError(w, http.StatusGone, err)
		return
	case err != nil:
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeWALRecords(w, recs, last)
}

func writeWALRecords(w http.ResponseWriter, recs []oplog.Record, seq uint64) {
	buf := make([]byte, 0, len(recs)*oplog.MaxEncodedSize)
	for _, rec := range recs {
		buf = rec.Append(buf)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-WAL-Seq", strconv.FormatUint(seq, 10))
	w.Header().Set("X-WAL-Records", strconv.Itoa(len(recs)))
	_, _ = w.Write(buf) // errok: client gone mid-response
}

// SetFollower puts the server in read-only replica mode: mutation endpoints
// return 403 (writes belong on the leader) and /stats carries the
// replication position from stats (applied seq, leader seq). Call before
// serving.
func (s *Server) SetFollower(stats func() (applied, leader uint64)) {
	s.followerStats = stats
}

// denyIfFollower rejects mutation requests on a read-only replica.
func (s *Server) denyIfFollower(w http.ResponseWriter) bool {
	if s.followerStats == nil {
		return false
	}
	httpError(w, http.StatusForbidden, fmt.Errorf("read-only follower: send writes to the leader"))
	return true
}
