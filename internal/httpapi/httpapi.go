// Package httpapi serves SSRQ over HTTP — the service layer of the
// reproduction's "company/friend recommendation" motivating applications
// (§1). The engine is internally synchronized through epoch snapshots
// (queries are lock-free against the latest published epoch; updates build
// the next epoch copy-on-write), so handlers call it directly with no
// server-side locking. /batch fans a request out over the engine's
// worker-pool batch path; /moves feeds the engine's batching update
// pipeline; /stats reports the epoch number, pending-update depth and
// snapshot age alongside the dataset statistics.
package httpapi

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ssrq"
)

// Server is an http.Handler exposing one engine.
type Server struct {
	eng *ssrq.Engine
	mux *http.ServeMux
	// parallel is the default worker count for /batch; 0 = GOMAXPROCS.
	parallel int
	// heartbeat is the SSE idle-stream ping interval; 0 = default 15s.
	heartbeat time.Duration
	// followerStats non-nil puts the server in read-only replica mode; it
	// reports (applied seq, leader seq) for /stats. See SetFollower.
	followerStats func() (applied, leader uint64)
}

// maxBatch bounds one /batch request, keeping a single request from pinning
// the worker pool indefinitely.
const maxBatch = 10000

// maxMoves bounds one /moves request.
const maxMoves = 65536

// maxEdges bounds one /edges request.
const maxEdges = 65536

// New builds the handler.
func New(eng *ssrq.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /query", s.handleQuery)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("GET /user/{id}", s.handleUser)
	s.mux.HandleFunc("POST /move", s.handleMove)
	s.mux.HandleFunc("POST /moves", s.handleMoves)
	s.mux.HandleFunc("POST /edges", s.handleEdges)
	s.mux.HandleFunc("POST /unlocate", s.handleUnlocate)
	s.mux.HandleFunc("GET /subscribe", s.handleSubscribe)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /wal/bootstrap", s.handleWALBootstrap)
	s.mux.HandleFunc("GET /wal/stream", s.handleWALStream)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s
}

// SetParallel sets the default /batch worker count (0 = GOMAXPROCS). Call
// before serving.
func (s *Server) SetParallel(n int) { s.parallel = n }

// SetHeartbeat sets the SSE idle-stream ping interval (0 restores the 15s
// default). Call before serving.
func (s *Server) SetHeartbeat(d time.Duration) { s.heartbeat = d }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

var algoByName = map[string]ssrq.Algorithm{
	"SFA": ssrq.SFA, "SPA": ssrq.SPA, "TSA": ssrq.TSA, "TSA-QC": ssrq.TSAQC,
	"TSA-NL":  ssrq.TSANoLandmark,
	"AIS-BID": ssrq.AISBID, "AIS-": ssrq.AISMinus, "AIS": ssrq.AIS,
	"AIS-CACHE": ssrq.AISCache, "BRUTE": ssrq.BruteForce,
	"SFA-CH": ssrq.SFACH, "SPA-CH": ssrq.SPACH, "TSA-CH": ssrq.TSACH,
}

// queryResponse is the wire form of a ranked result.
type queryResponse struct {
	Query   int32        `json:"query"`
	K       int          `json:"k"`
	Alpha   float64      `json:"alpha"`
	Algo    string       `json:"algo"`
	Entries []queryEntry `json:"entries"`
	Stats   queryStats   `json:"stats"`
}

type queryEntry struct {
	ID      int32   `json:"id"`
	F       float64 `json:"f"`
	Social  float64 `json:"social"`
	Spatial float64 `json:"spatial"`
}

type queryStats struct {
	SocialPops      int  `json:"social_pops"`
	SpatialPops     int  `json:"spatial_pops"`
	IndexUserPops   int  `json:"index_user_pops"`
	DistCalls       int  `json:"dist_calls"`
	LabelCellPrunes int  `json:"label_cell_prunes,omitempty"`
	LabelSkips      int  `json:"label_skips,omitempty"`
	FoFTightened    int  `json:"fof_tightened,omitempty"`
	FellBack        bool `json:"fell_back,omitempty"`
}

// queryParams parses and validates the shared (user, k, alpha, labels) query
// surface of /query and /subscribe, pinning the error semantics at the
// handler layer: malformed or domain-violating parameters (k < 1, alpha
// outside (0,1) — including NaN, which ParseFloat accepts — bad label
// indices) are 400s, an out-of-range user is a 404. Engine-level failures
// past this point (e.g. an unlocated query user) remain 422s.
func (s *Server) queryParams(r *http.Request, userParam string) (int, ssrq.Params, int, error) {
	q, err := intParam(r, userParam, -1)
	if err != nil {
		return 0, ssrq.Params{}, http.StatusBadRequest, err
	}
	if q < 0 || q >= s.eng.Dataset().NumUsers() {
		return 0, ssrq.Params{}, http.StatusNotFound, fmt.Errorf("unknown user %d", q)
	}
	k, err := intParam(r, "k", 10)
	if err != nil {
		return 0, ssrq.Params{}, http.StatusBadRequest, err
	}
	alpha := 0.3
	if raw := r.URL.Query().Get("alpha"); raw != "" {
		alpha, err = strconv.ParseFloat(raw, 64)
		if err != nil {
			return 0, ssrq.Params{}, http.StatusBadRequest, fmt.Errorf("bad alpha: %w", err)
		}
	}
	filter, err := parseLabels(r.URL.Query().Get("labels"))
	if err != nil {
		return 0, ssrq.Params{}, http.StatusBadRequest, err
	}
	prm := ssrq.Params{K: k, Alpha: alpha, Filter: filter}
	if err := prm.Validate(); err != nil {
		return 0, ssrq.Params{}, http.StatusBadRequest, err
	}
	return q, prm, http.StatusOK, nil
}

// parseLabels parses the labels= wire format — comma-separated label indices
// in [0,64), e.g. "0,3,17" — into a filter bitmask (0 when absent: no
// filtering). A filtered query reports only users carrying at least one of
// the requested labels.
func parseLabels(raw string) (uint64, error) {
	if raw == "" {
		return 0, nil
	}
	var m uint64
	for _, part := range strings.Split(raw, ",") {
		i, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return 0, fmt.Errorf("bad label index %q", part)
		}
		if i < 0 || i > 63 {
			return 0, fmt.Errorf("label index %d out of [0,64)", i)
		}
		m |= 1 << uint(i)
	}
	return m, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, prm, code, err := s.queryParams(r, "q")
	if err != nil {
		httpError(w, code, err)
		return
	}
	algo := ssrq.AIS
	if raw := r.URL.Query().Get("algo"); raw != "" {
		var ok bool
		algo, ok = algoByName[strings.ToUpper(raw)]
		if !ok {
			httpError(w, http.StatusBadRequest, fmt.Errorf("unknown algorithm %q", raw))
			return
		}
	}

	res, err := s.eng.Query(algo, ssrq.UserID(q), prm)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, toQueryResponse(int32(q), prm.K, prm.Alpha, algo, res))
}

func toQueryResponse(q int32, k int, alpha float64, algo ssrq.Algorithm, res *ssrq.Result) queryResponse {
	resp := queryResponse{
		Query: q, K: k, Alpha: alpha, Algo: fmt.Sprint(algo),
		Entries: make([]queryEntry, len(res.Entries)),
		Stats: queryStats{
			SocialPops:      res.Stats.SocialPops,
			SpatialPops:     res.Stats.SpatialPops,
			IndexUserPops:   res.Stats.IndexUserPops,
			DistCalls:       res.Stats.GraphDistCalls,
			LabelCellPrunes: res.Stats.LabelCellPrunes,
			LabelSkips:      res.Stats.LabelSkips,
			FoFTightened:    res.Stats.FoFTightened,
			FellBack:        res.Stats.FellBack,
		},
	}
	for i, e := range res.Entries {
		resp.Entries[i] = queryEntry{ID: e.ID, F: e.F, Social: e.P, Spatial: e.D}
	}
	return resp
}

// batchRequest asks for the same (algo, k, alpha, labels) over many query
// users. Labels holds label indices in [0,64): when non-empty only users
// carrying at least one of them are reported. Parallel optionally overrides
// the server's worker count for this request.
type batchRequest struct {
	Algo     string  `json:"algo"`
	K        int     `json:"k"`
	Alpha    float64 `json:"alpha"`
	Labels   []int   `json:"labels,omitempty"`
	Queries  []int32 `json:"queries"`
	Parallel int     `json:"parallel,omitempty"`
}

// batchItem is one slot of a batch response: either a ranked result or an
// error, in input order.
type batchItem struct {
	Query   int32        `json:"query"`
	Error   string       `json:"error,omitempty"`
	Entries []queryEntry `json:"entries,omitempty"`
}

type batchResponse struct {
	K       int         `json:"k"`
	Alpha   float64     `json:"alpha"`
	Algo    string      `json:"algo"`
	Results []batchItem `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	req := batchRequest{K: 10, Alpha: 0.3, Algo: "AIS"}
	// Bound the allocation, not just the parsed length: a maxBatch-sized
	// request is well under 1 MiB of JSON.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("empty queries"))
		return
	}
	if len(req.Queries) > maxBatch {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("batch of %d exceeds limit %d", len(req.Queries), maxBatch))
		return
	}
	algo, ok := algoByName[strings.ToUpper(req.Algo)]
	if !ok {
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown algorithm %q", req.Algo))
		return
	}
	var filter uint64
	for _, i := range req.Labels {
		if i < 0 || i > 63 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("label index %d out of [0,64)", i))
			return
		}
		filter |= 1 << uint(i)
	}
	prm := ssrq.Params{K: req.K, Alpha: req.Alpha, Filter: filter}
	if err := prm.Validate(); err != nil {
		// Parameter-domain violations (k < 1, alpha outside (0,1) incl. NaN)
		// are the client's fault: 400, not the engine catch-all 422.
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// A request may lower its own parallelism but never exceed the
	// operator's configured cap (-parallel, GOMAXPROCS when unset).
	limit := s.parallel
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	workers := limit
	if req.Parallel > 0 && req.Parallel < limit {
		workers = req.Parallel
	}
	batch := make([]ssrq.BatchQuery, len(req.Queries))
	for i, q := range req.Queries {
		batch[i] = ssrq.BatchQuery{Algo: algo, Q: q, Params: prm}
	}
	outs := s.eng.QueryBatch(batch, workers)
	resp := batchResponse{
		K: req.K, Alpha: req.Alpha, Algo: fmt.Sprint(algo),
		Results: make([]batchItem, len(outs)),
	}
	for i, out := range outs {
		item := batchItem{Query: req.Queries[i]}
		if out.Err != nil {
			item.Error = out.Err.Error()
		} else {
			item.Entries = make([]queryEntry, len(out.Result.Entries))
			for j, e := range out.Result.Entries {
				item.Entries[j] = queryEntry{ID: e.ID, F: e.F, Social: e.P, Spatial: e.D}
			}
		}
		resp.Results[i] = item
	}
	writeJSON(w, resp)
}

type userResponse struct {
	ID      int32    `json:"id"`
	Located bool     `json:"located"`
	X       *float64 `json:"x,omitempty"`
	Y       *float64 `json:"y,omitempty"`
}

func (s *Server) handleUser(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 || id >= s.eng.Dataset().NumUsers() {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown user %q", r.PathValue("id")))
		return
	}
	resp := userResponse{ID: int32(id)}
	if p, ok := s.eng.UserLocation(ssrq.UserID(id)); ok {
		resp.Located = true
		resp.X, resp.Y = &p.X, &p.Y
	}
	writeJSON(w, resp)
}

type moveRequest struct {
	ID int32   `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

func (s *Server) handleMove(w http.ResponseWriter, r *http.Request) {
	if s.denyIfFollower(w) {
		return
	}
	var req moveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	if req.ID < 0 || int(req.ID) >= s.eng.Dataset().NumUsers() {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown user %d", req.ID))
		return
	}
	// The engine rejects NaN/±Inf coordinates (JSON can't encode them
	// literally, but e.g. "1e999" decodes to +Inf).
	if err := s.eng.MoveUser(req.ID, ssrq.Point{X: req.X, Y: req.Y}); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// movesRequest is a bulk location-update batch. Each item is a move, or a
// location removal when Remove is set. With Flush true the request returns
// only after every update in it is applied and published (read-your-writes);
// otherwise updates are enqueued on the engine's batching pipeline and the
// response is 202 Accepted.
type movesRequest struct {
	Moves []moveItem `json:"moves"`
	Flush bool       `json:"flush,omitempty"`
}

type moveItem struct {
	ID     int32   `json:"id"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Remove bool    `json:"remove,omitempty"`
}

type movesResponse struct {
	Accepted int    `json:"accepted"`
	Epoch    uint64 `json:"epoch,omitempty"`
}

func (s *Server) handleMoves(w http.ResponseWriter, r *http.Request) {
	if s.denyIfFollower(w) {
		return
	}
	var req movesRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	if len(req.Moves) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("empty moves"))
		return
	}
	if len(req.Moves) > maxMoves {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("%d moves exceeds limit %d", len(req.Moves), maxMoves))
		return
	}
	// Validate everything before enqueuing anything, so a bad item rejects
	// the whole request instead of applying a prefix.
	n := s.eng.Dataset().NumUsers()
	for i, m := range req.Moves {
		if m.ID < 0 || int(m.ID) >= n {
			httpError(w, http.StatusBadRequest, fmt.Errorf("move %d: unknown user %d", i, m.ID))
			return
		}
		if !m.Remove && !(ssrq.Point{X: m.X, Y: m.Y}).IsFinite() {
			httpError(w, http.StatusBadRequest, fmt.Errorf("move %d: non-finite coordinates (%v, %v)", i, m.X, m.Y))
			return
		}
	}
	for _, m := range req.Moves {
		var err error
		if m.Remove {
			err = s.eng.RemoveUserLocationAsync(m.ID)
		} else {
			err = s.eng.MoveUserAsync(m.ID, ssrq.Point{X: m.X, Y: m.Y})
		}
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
	}
	resp := movesResponse{Accepted: len(req.Moves)}
	if req.Flush {
		s.eng.Flush()
		resp.Epoch = s.eng.UpdateStats().Epoch
		writeJSON(w, resp)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(resp)
}

// edgesRequest is a bulk social-edge update batch: friendship upserts
// (insert or reweight) and removals. With Flush true the request returns
// only after every update is applied and published (read-your-writes);
// otherwise updates are enqueued on the engine's batching pipeline and the
// response is 202 Accepted.
type edgesRequest struct {
	Edges []edgeItem `json:"edges"`
	Flush bool       `json:"flush,omitempty"`
}

type edgeItem struct {
	U      int32   `json:"u"`
	V      int32   `json:"v"`
	W      float64 `json:"w,omitempty"`
	Remove bool    `json:"remove,omitempty"`
}

type edgesResponse struct {
	Accepted    int    `json:"accepted"`
	Epoch       uint64 `json:"epoch,omitempty"`
	SocialEpoch uint64 `json:"social_epoch,omitempty"`
}

func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	if s.denyIfFollower(w) {
		return
	}
	var req edgesRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	if len(req.Edges) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("empty edges"))
		return
	}
	if len(req.Edges) > maxEdges {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("%d edges exceeds limit %d", len(req.Edges), maxEdges))
		return
	}
	// Edge churn can be permanently unsupported (landmark count beyond the
	// dynamic-maintenance cap): a non-retryable condition, not a 503.
	if !s.eng.SupportsEdgeChurn() {
		httpError(w, http.StatusNotImplemented, fmt.Errorf("edge churn unsupported by this engine's configuration"))
		return
	}
	// Validate everything before enqueuing anything, so a bad item rejects
	// the whole request instead of applying a prefix.
	n := s.eng.Dataset().NumUsers()
	for i, e := range req.Edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			httpError(w, http.StatusBadRequest, fmt.Errorf("edge %d: user out of range (%d,%d)", i, e.U, e.V))
			return
		}
		if e.U == e.V {
			httpError(w, http.StatusBadRequest, fmt.Errorf("edge %d: self-loop on user %d", i, e.U))
			return
		}
		if !e.Remove && (!(e.W > 0) || math.IsInf(e.W, 0) || math.IsNaN(e.W)) {
			httpError(w, http.StatusBadRequest, fmt.Errorf("edge %d: weight %v must be positive and finite", i, e.W))
			return
		}
	}
	for _, e := range req.Edges {
		var err error
		if e.Remove {
			err = s.eng.RemoveFriendAsync(e.U, e.V)
		} else {
			err = s.eng.AddFriendAsync(e.U, e.V, e.W)
		}
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
	}
	resp := edgesResponse{Accepted: len(req.Edges)}
	if req.Flush {
		s.eng.Flush()
		us := s.eng.UpdateStats()
		resp.Epoch, resp.SocialEpoch = us.Epoch, us.SocialEpoch
		writeJSON(w, resp)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(resp)
}

type unlocateRequest struct {
	ID int32 `json:"id"`
}

func (s *Server) handleUnlocate(w http.ResponseWriter, r *http.Request) {
	if s.denyIfFollower(w) {
		return
	}
	var req unlocateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	if req.ID < 0 || int(req.ID) >= s.eng.Dataset().NumUsers() {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown user %d", req.ID))
		return
	}
	if err := s.eng.RemoveUserLocation(req.ID); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// statsResponse extends the dataset statistics with the state of the
// epoch/update pipeline and the dynamic social graph.
type statsResponse struct {
	ssrq.DatasetStats
	Epoch            uint64 `json:"epoch"`
	SnapshotAgeMs    int64  `json:"snapshot_age_ms"`
	PendingUpdates   int64  `json:"pending_updates"`
	AppliedUpdates   int64  `json:"applied_updates"`
	AppliedBatches   int64  `json:"applied_batches"`
	CoalescedUpdates int64  `json:"coalesced_updates"`

	SocialEpoch            uint64 `json:"social_epoch"`
	EdgeAdds               int64  `json:"edge_adds"`
	EdgeRemoves            int64  `json:"edge_removes"`
	EdgeReweights          int64  `json:"edge_reweights"`
	PatchedVertices        int    `json:"patched_vertices"`
	Compactions            int64  `json:"compactions"`
	DisabledLandmarks      int    `json:"disabled_landmarks"`
	LandmarkRepairs        int64  `json:"landmark_repairs"`
	LandmarkRebuilds       int64  `json:"landmark_rebuilds"`
	LandmarkForcedInstalls int64  `json:"landmark_forced_installs"`

	CHBuilt          bool   `json:"ch_built"`
	CHBuiltEpoch     uint64 `json:"ch_built_epoch"`
	CHFresh          bool   `json:"ch_fresh"`
	CHRepairs        int64  `json:"ch_repairs"`
	CHRepairFallback int64  `json:"ch_repair_fallbacks"`
	CHRebuilds       int64  `json:"ch_rebuilds"`
	CHForcedInstalls int64  `json:"ch_forced_installs"`

	// Sharding section (absent on monolithic engines): fan-out pruning
	// counters, elastic-rebalance counters, plus one entry per shard.
	NumShards     int             `json:"num_shards,omitempty"`
	ShardsQueried int64           `json:"shards_queried,omitempty"`
	ShardsPruned  int64           `json:"shards_pruned,omitempty"`
	ShardsEmpty   int64           `json:"shards_empty,omitempty"`
	Rebalances    int64           `json:"rebalances,omitempty"`
	CellsMoved    int64           `json:"rebalance_cells_moved,omitempty"`
	UsersMoved    int64           `json:"rebalance_users_moved,omitempty"`
	Imbalance     float64         `json:"imbalance,omitempty"`
	Shards        []shardStatJSON `json:"shards,omitempty"`

	// Durability section (absent on non-durable engines): WAL positions,
	// fsync policy, checkpoint counters, last-recovery cost.
	Durability *ssrq.DurabilityStats `json:"durability,omitempty"`

	// Replication section (read-only followers only; see SetFollower).
	// Pointers so a fully caught-up follower still reports lag 0.
	Role                  string  `json:"role,omitempty"`
	ReplicationAppliedSeq *uint64 `json:"replication_applied_seq,omitempty"`
	ReplicationLeaderSeq  *uint64 `json:"replication_leader_seq,omitempty"`
	ReplicationLagOps     *uint64 `json:"replication_lag_ops,omitempty"`
}

// shardStatJSON is the wire form of one shard's live state.
type shardStatJSON struct {
	Shard             int    `json:"shard"`
	Cells             int    `json:"cells"`
	NumLocated        int    `json:"num_located"`
	Epoch             uint64 `json:"epoch"`
	SocialEpoch       uint64 `json:"social_epoch"`
	PendingUpdates    int64  `json:"pending_updates"`
	AppliedBatches    int64  `json:"applied_batches"`
	DisabledLandmarks int    `json:"disabled_landmarks"`
	PrunedQueries     int64  `json:"pruned_queries"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	us := s.eng.UpdateStats()
	ss := s.eng.SocialStats()
	resp := statsResponse{
		DatasetStats:     s.eng.DatasetStats(),
		Epoch:            us.Epoch,
		SnapshotAgeMs:    us.SnapshotAge.Milliseconds(),
		PendingUpdates:   us.PendingUpdates,
		AppliedUpdates:   us.AppliedUpdates,
		AppliedBatches:   us.AppliedBatches,
		CoalescedUpdates: us.CoalescedUpdates,

		SocialEpoch:            ss.SocialEpoch,
		EdgeAdds:               ss.EdgeAdds,
		EdgeRemoves:            ss.EdgeRemoves,
		EdgeReweights:          ss.EdgeReweights,
		PatchedVertices:        ss.PatchedVertices,
		Compactions:            ss.Compactions,
		DisabledLandmarks:      ss.DisabledLandmarks,
		LandmarkRepairs:        ss.LandmarkRepairs,
		LandmarkRebuilds:       ss.LandmarkRebuilds,
		LandmarkForcedInstalls: ss.LandmarkForcedInstalls,

		CHBuilt:          ss.CHBuilt,
		CHBuiltEpoch:     ss.CHBuiltEpoch,
		CHFresh:          ss.CHBuilt && ss.CHBuiltEpoch == ss.SocialEpoch,
		CHRepairs:        ss.CHRepairs,
		CHRepairFallback: ss.CHRepairFallbacks,
		CHRebuilds:       ss.CHRebuilds,
		CHForcedInstalls: ss.CHForcedInstalls,
	}
	if shards := s.eng.ShardStats(); shards != nil {
		fs := s.eng.FanoutStats()
		rs := s.eng.RebalanceStats()
		resp.NumShards = s.eng.NumShards()
		resp.ShardsQueried = fs.ShardsQueried
		resp.ShardsPruned = fs.ShardsPruned
		resp.ShardsEmpty = fs.ShardsEmpty
		resp.Rebalances = rs.Rebalances
		resp.CellsMoved = rs.CellsMoved
		resp.UsersMoved = rs.UsersMoved
		resp.Imbalance = s.eng.Imbalance()
		resp.Shards = make([]shardStatJSON, len(shards))
		for i, st := range shards {
			resp.Shards[i] = shardStatJSON{
				Shard:             st.Shard,
				Cells:             st.Cells,
				NumLocated:        st.NumLocated,
				Epoch:             st.Epoch,
				SocialEpoch:       st.SocialEpoch,
				PendingUpdates:    st.PendingUpdates,
				AppliedBatches:    st.AppliedBatches,
				DisabledLandmarks: st.DisabledLandmarks,
				PrunedQueries:     st.PrunedQueries,
			}
		}
	}
	resp.Durability = s.eng.DurabilityStats()
	if s.followerStats != nil {
		applied, leader := s.followerStats()
		var lag uint64
		if leader > applied {
			lag = leader - applied
		}
		resp.Role = "follower"
		resp.ReplicationAppliedSeq = &applied
		resp.ReplicationLeaderSeq = &leader
		resp.ReplicationLagOps = &lag
	}
	writeJSON(w, resp)
}

func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		if def >= 0 {
			return def, nil
		}
		return 0, fmt.Errorf("missing required parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %w", name, err)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
