// Package httpapi serves SSRQ over HTTP — the service layer of the
// reproduction's "company/friend recommendation" motivating applications
// (§1). Queries run concurrently against the shared engine; location
// updates are serialized through a write lock, matching the engine's
// concurrency contract (reads are lock-free, updates exclusive).
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"ssrq"
)

// Server is an http.Handler exposing one engine.
type Server struct {
	eng *ssrq.Engine
	mux *http.ServeMux
	// mu serializes location updates against queries: updates take the
	// write side, queries the read side.
	mu sync.RWMutex
}

// New builds the handler.
func New(eng *ssrq.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /query", s.handleQuery)
	s.mux.HandleFunc("GET /user/{id}", s.handleUser)
	s.mux.HandleFunc("POST /move", s.handleMove)
	s.mux.HandleFunc("POST /unlocate", s.handleUnlocate)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

var algoByName = map[string]ssrq.Algorithm{
	"SFA": ssrq.SFA, "SPA": ssrq.SPA, "TSA": ssrq.TSA, "TSA-QC": ssrq.TSAQC,
	"AIS-BID": ssrq.AISBID, "AIS-": ssrq.AISMinus, "AIS": ssrq.AIS,
	"AIS-CACHE": ssrq.AISCache, "BRUTE": ssrq.BruteForce,
}

// queryResponse is the wire form of a ranked result.
type queryResponse struct {
	Query   int32        `json:"query"`
	K       int          `json:"k"`
	Alpha   float64      `json:"alpha"`
	Algo    string       `json:"algo"`
	Entries []queryEntry `json:"entries"`
	Stats   queryStats   `json:"stats"`
}

type queryEntry struct {
	ID      int32   `json:"id"`
	F       float64 `json:"f"`
	Social  float64 `json:"social"`
	Spatial float64 `json:"spatial"`
}

type queryStats struct {
	SocialPops    int  `json:"social_pops"`
	SpatialPops   int  `json:"spatial_pops"`
	IndexUserPops int  `json:"index_user_pops"`
	DistCalls     int  `json:"dist_calls"`
	FellBack      bool `json:"fell_back,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, err := intParam(r, "q", -1)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	k, err := intParam(r, "k", 10)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	alpha := 0.3
	if raw := r.URL.Query().Get("alpha"); raw != "" {
		alpha, err = strconv.ParseFloat(raw, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad alpha: %w", err))
			return
		}
	}
	algo := ssrq.AIS
	if raw := r.URL.Query().Get("algo"); raw != "" {
		var ok bool
		algo, ok = algoByName[strings.ToUpper(raw)]
		if !ok {
			httpError(w, http.StatusBadRequest, fmt.Errorf("unknown algorithm %q", raw))
			return
		}
	}

	s.mu.RLock()
	res, err := s.eng.TopKWith(algo, ssrq.UserID(q), k, alpha)
	s.mu.RUnlock()
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := queryResponse{
		Query: int32(q), K: k, Alpha: alpha, Algo: fmt.Sprint(algo),
		Entries: make([]queryEntry, len(res.Entries)),
		Stats: queryStats{
			SocialPops:    res.Stats.SocialPops,
			SpatialPops:   res.Stats.SpatialPops,
			IndexUserPops: res.Stats.IndexUserPops,
			DistCalls:     res.Stats.GraphDistCalls,
			FellBack:      res.Stats.FellBack,
		},
	}
	for i, e := range res.Entries {
		resp.Entries[i] = queryEntry{ID: e.ID, F: e.F, Social: e.P, Spatial: e.D}
	}
	writeJSON(w, resp)
}

type userResponse struct {
	ID      int32    `json:"id"`
	Located bool     `json:"located"`
	X       *float64 `json:"x,omitempty"`
	Y       *float64 `json:"y,omitempty"`
}

func (s *Server) handleUser(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 || id >= s.eng.Dataset().NumUsers() {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown user %q", r.PathValue("id")))
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	resp := userResponse{ID: int32(id)}
	if p, ok := s.eng.Dataset().Location(ssrq.UserID(id)); ok {
		resp.Located = true
		resp.X, resp.Y = &p.X, &p.Y
	}
	writeJSON(w, resp)
}

type moveRequest struct {
	ID int32   `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

func (s *Server) handleMove(w http.ResponseWriter, r *http.Request) {
	var req moveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	if req.ID < 0 || int(req.ID) >= s.eng.Dataset().NumUsers() {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown user %d", req.ID))
		return
	}
	s.mu.Lock()
	s.eng.MoveUser(req.ID, ssrq.Point{X: req.X, Y: req.Y})
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

type unlocateRequest struct {
	ID int32 `json:"id"`
}

func (s *Server) handleUnlocate(w http.ResponseWriter, r *http.Request) {
	var req unlocateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	if req.ID < 0 || int(req.ID) >= s.eng.Dataset().NumUsers() {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown user %d", req.ID))
		return
	}
	s.mu.Lock()
	s.eng.RemoveUserLocation(req.ID)
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	st := s.eng.Dataset().Stats()
	s.mu.RUnlock()
	writeJSON(w, st)
}

func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		if def >= 0 {
			return def, nil
		}
		return 0, fmt.Errorf("missing required parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %w", name, err)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
