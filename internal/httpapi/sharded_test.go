package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"ssrq"
)

// mkShardedServer builds a server over a 4-shard engine.
func mkShardedServer(t *testing.T) (*Server, *ssrq.Dataset) {
	t.Helper()
	ds, err := ssrq.Synthesize("gowalla", 500, 21)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ssrq.NewEngine(ds, &ssrq.Options{Shards: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return New(eng), ds
}

// TestShardedServerEndToEnd drives the full HTTP surface against a sharded
// engine — queries, batch, moves crossing shard regions, edges — and checks
// the /stats sharding section reports per-shard state and fan-out counters.
func TestShardedServerEndToEnd(t *testing.T) {
	s, ds := mkShardedServer(t)
	var q ssrq.UserID = -1
	for id := 0; id < ds.NumUsers(); id++ {
		if ds.Located(ssrq.UserID(id)) {
			q = ssrq.UserID(id)
			break
		}
	}
	if q < 0 {
		t.Fatal("no located user")
	}

	// Sharded query results arrive sorted and non-empty.
	rec := do(t, s, "GET", fmt.Sprintf("/query?q=%d&k=8&alpha=0.3", q), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d: %s", rec.Code, rec.Body)
	}
	var qresp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &qresp); err != nil {
		t.Fatal(err)
	}
	if len(qresp.Entries) == 0 {
		t.Fatal("sharded query returned nothing")
	}
	for i := 1; i < len(qresp.Entries); i++ {
		if qresp.Entries[i].F < qresp.Entries[i-1].F {
			t.Fatal("sharded entries unsorted")
		}
	}

	// Batch across the fan-out path.
	rec = do(t, s, "POST", "/batch", batchRequest{Algo: "AIS", K: 5, Alpha: 0.3, Queries: []int32{int32(q)}})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch = %d: %s", rec.Code, rec.Body)
	}

	// Bulk moves route by region; flush makes them visible.
	if p, ok := ds.Location(q); ok {
		rec = do(t, s, "POST", "/moves", movesRequest{
			Moves: []moveItem{{ID: int32(q), X: p.X + 1, Y: p.Y + 1}},
			Flush: true,
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("moves = %d: %s", rec.Code, rec.Body)
		}
	}

	// Edge updates broadcast to every shard.
	rec = do(t, s, "POST", "/edges", edgesRequest{
		Edges: []edgeItem{{U: int32(q), V: int32(q) + 1, W: 50}},
		Flush: true,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("edges = %d: %s", rec.Code, rec.Body)
	}

	// /stats carries the sharding section.
	rec = do(t, s, "GET", "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d", rec.Code)
	}
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.NumShards != 4 || len(st.Shards) != 4 {
		t.Fatalf("stats reports %d shards (%d entries), want 4", st.NumShards, len(st.Shards))
	}
	if st.ShardsQueried == 0 {
		t.Fatal("no shards queried recorded")
	}
	located := 0
	for i, sh := range st.Shards {
		if sh.Shard != i {
			t.Fatalf("shard %d reports index %d", i, sh.Shard)
		}
		if sh.Cells == 0 {
			t.Fatalf("shard %d owns no cells", i)
		}
		located += sh.NumLocated
	}
	if located != st.NumLocated {
		t.Fatalf("per-shard located sums to %d, aggregate says %d", located, st.NumLocated)
	}
	// Every shard saw the broadcast edge epoch.
	for _, sh := range st.Shards {
		if sh.SocialEpoch == 0 {
			t.Fatalf("shard %d missed the edge broadcast: %+v", sh.Shard, sh)
		}
	}
	// The elastic section is live: a balanced engine reports its occupancy
	// imbalance (≥ 1 by construction) even before any re-cut.
	if st.Imbalance < 1 {
		t.Fatalf("sharded /stats imbalance = %v, want ≥ 1", st.Imbalance)
	}
}

// TestMonolithStatsOmitShardSection: the sharding fields must be absent on
// an unsharded engine's /stats.
func TestMonolithStatsOmitShardSection(t *testing.T) {
	s, _, _ := mkServer(t)
	rec := do(t, s, "GET", "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d", rec.Code)
	}
	var raw map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"num_shards", "shards", "shards_queried", "shards_pruned", "rebalances", "imbalance"} {
		if _, present := raw[key]; present {
			t.Fatalf("monolithic /stats leaks %q", key)
		}
	}
}
