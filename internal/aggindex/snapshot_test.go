package aggindex

import (
	"math"
	"math/rand"
	"testing"

	"ssrq/internal/spatial"
)

// verifySnapshotInvariants checks that a published epoch's summaries exactly
// bracket that same epoch's membership at every level — the atomicity
// contract (membership and summaries publish together) that keeps Lemma 2
// sound for lock-free readers.
func verifySnapshotInvariants(t *testing.T, f *fixture, sn *Snapshot) {
	t.Helper()
	g := sn.Grid()
	layout := g.Layout()
	m := f.lm.M()
	leaf := layout.LeafLevel()
	for level := 0; level <= leaf; level++ {
		for idx := int32(0); idx < int32(layout.NumCells(level)); idx++ {
			var members []int32
			var walk func(l int, i int32)
			walk = func(l int, i int32) {
				if l == leaf {
					members = append(members, g.CellUsers(i)...)
					return
				}
				for _, c := range layout.ChildIndices(l, i, nil) {
					walk(l+1, c)
				}
			}
			walk(level, idx)
			for j := 0; j < m; j++ {
				lo, hi := math.Inf(1), math.Inf(-1)
				for _, u := range members {
					d := f.lm.Dist(j, u)
					if d < lo {
						lo = d
					}
					if d > hi {
						hi = d
					}
				}
				if got := sn.MinSummary(level, idx, j); got != lo {
					t.Fatalf("epoch %d level %d cell %d lm %d: min %v, want %v", sn.Epoch(), level, idx, j, got, lo)
				}
				if got := sn.MaxSummary(level, idx, j); got != hi {
					t.Fatalf("epoch %d level %d cell %d lm %d: max %v, want %v", sn.Epoch(), level, idx, j, got, hi)
				}
			}
		}
	}
}

// TestRemoveLocationNarrowsNewEpochOnly: removing the member responsible
// for a summary extreme narrows the new epoch's summaries while the
// previously captured epoch keeps the wide values — narrowing under
// copy-on-write never writes through to published state.
func TestRemoveLocationNarrowsNewEpochOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := mkFixture(t, rng, 120, 2, 4, 2, 0, false)
	layout := f.grid.Layout()
	leafLevel := layout.LeafLevel()
	for idx := int32(0); idx < int32(layout.NumCells(leafLevel)); idx++ {
		users := f.grid.CellUsers(idx)
		if len(users) < 2 {
			continue
		}
		maxU, maxD := int32(-1), math.Inf(-1)
		for _, u := range users {
			if d := f.lm.Dist(0, u); d > maxD {
				maxU, maxD = u, d
			}
		}
		// Need the extreme to be unique so removal must narrow.
		unique := true
		for _, u := range users {
			if u != maxU && f.lm.Dist(0, u) == maxD {
				unique = false
			}
		}
		if !unique {
			continue
		}
		old := f.ix.Snapshot()
		oldMax := old.MaxSummary(leafLevel, idx, 0)
		if oldMax != maxD {
			t.Fatalf("fixture summary %v, want %v", oldMax, maxD)
		}
		f.ix.RemoveLocation(maxU)
		cur := f.ix.Snapshot()
		if cur == old {
			t.Fatal("RemoveLocation did not publish a new epoch")
		}
		if got := cur.MaxSummary(leafLevel, idx, 0); got >= maxD {
			t.Fatalf("new epoch max %v not narrowed below %v", got, maxD)
		}
		if got := old.MaxSummary(leafLevel, idx, 0); got != maxD {
			t.Fatalf("old epoch narrowed in place: %v, want %v", got, maxD)
		}
		if old.Grid().LeafOf(maxU) != idx || cur.Grid().LeafOf(maxU) != -1 {
			t.Fatal("membership epochs inconsistent with removal")
		}
		verifySnapshotInvariants(t, f, cur)
		verifyInvariants(t, f)
		return
	}
	t.Skip("no leaf with a unique max-responsible member")
}

// TestSetLocatedWidensNewEpochOnly: locating a user widens the destination
// leaf's summaries in the new epoch only.
func TestSetLocatedWidensNewEpochOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := mkFixture(t, rng, 100, 2, 4, 1, 0.4, false)
	// Find an unlocated user and a destination cell with members.
	var id int32 = -1
	for u := int32(0); u < 100; u++ {
		if !f.grid.Located(u) {
			id = u
			break
		}
	}
	if id < 0 {
		t.Skip("everyone located")
	}
	layout := f.grid.Layout()
	leafLevel := layout.LeafLevel()
	var dst int32 = -1
	for idx := int32(0); idx < int32(layout.NumCells(leafLevel)); idx++ {
		if len(f.grid.CellUsers(idx)) > 0 {
			dst = idx
			break
		}
	}
	if dst < 0 {
		t.Skip("empty grid")
	}
	r := layout.CellRect(leafLevel, dst)
	target := spatial.Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}

	old := f.ix.Snapshot()
	oldMin := old.MinSummary(leafLevel, dst, 0)
	oldMax := old.MaxSummary(leafLevel, dst, 0)
	f.ix.SetLocated(id, target)
	cur := f.ix.Snapshot()

	d := f.lm.Dist(0, id)
	wantMin, wantMax := math.Min(oldMin, d), math.Max(oldMax, d)
	if cur.MinSummary(leafLevel, dst, 0) != wantMin || cur.MaxSummary(leafLevel, dst, 0) != wantMax {
		t.Fatalf("new epoch summary (%v,%v), want (%v,%v)",
			cur.MinSummary(leafLevel, dst, 0), cur.MaxSummary(leafLevel, dst, 0), wantMin, wantMax)
	}
	if old.MinSummary(leafLevel, dst, 0) != oldMin || old.MaxSummary(leafLevel, dst, 0) != oldMax {
		t.Fatal("old epoch widened in place")
	}
	verifySnapshotInvariants(t, f, cur)
}

// TestBatchedApplyMatchesSequential: one Apply of N ops must end in exactly
// the state N single-op applies produce — deferred propagation and per-batch
// COW are pure amortizations, not semantic changes.
func TestBatchedApplyMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	mkOps := func(rng *rand.Rand, n, steps int) []Op {
		ops := make([]Op, steps)
		for i := range ops {
			switch rng.Intn(4) {
			case 0:
				ops[i] = Op{ID: int32(rng.Intn(n)), Remove: true}
			default:
				ops[i] = Op{ID: int32(rng.Intn(n)), To: spatial.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}}
			}
		}
		return ops
	}
	for trial := 0; trial < 4; trial++ {
		seedA := rand.New(rand.NewSource(int64(300 + trial)))
		fA := mkFixture(t, seedA, 150, 3, 4, 2, 0.2, false)
		seedB := rand.New(rand.NewSource(int64(300 + trial)))
		fB := mkFixture(t, seedB, 150, 3, 4, 2, 0.2, false)
		ops := mkOps(rng, 150, 120)

		fA.ix.Apply(ops) // one epoch
		for _, op := range ops {
			fB.ix.Apply([]Op{op}) // one epoch each
		}
		snA, snB := fA.ix.Snapshot(), fB.ix.Snapshot()
		layout := fA.grid.Layout()
		for level := 0; level < layout.Levels; level++ {
			for idx := int32(0); idx < int32(layout.NumCells(level)); idx++ {
				for j := 0; j < fA.lm.M(); j++ {
					if snA.MinSummary(level, idx, j) != snB.MinSummary(level, idx, j) ||
						snA.MaxSummary(level, idx, j) != snB.MaxSummary(level, idx, j) {
						t.Fatalf("trial %d: batched and sequential summaries diverge at level %d cell %d", trial, level, idx)
					}
				}
			}
		}
		for id := int32(0); id < 150; id++ {
			if snA.Grid().LeafOf(id) != snB.Grid().LeafOf(id) {
				t.Fatalf("trial %d: membership diverges for user %d", trial, id)
			}
		}
		verifySnapshotInvariants(t, fA, snA)
		verifyInvariants(t, fA)
	}
}

// TestSnapshotPairsSummariesWithMembership: an old epoch's Lemma-2 bounds
// stay sound for the old epoch's membership even after heavy churn has
// rewritten the live index.
func TestSnapshotPairsSummariesWithMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	f := mkFixture(t, rng, 150, 3, 4, 2, 0.1, false)
	old := f.ix.Snapshot()
	for step := 0; step < 400; step++ {
		id := int32(rng.Intn(150))
		if rng.Intn(4) == 0 {
			f.ix.RemoveLocation(id)
		} else {
			f.ix.Move(id, spatial.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
		}
	}
	verifySnapshotInvariants(t, f, old)
	verifySnapshotInvariants(t, f, f.ix.Snapshot())
}
