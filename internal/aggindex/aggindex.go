// Package aggindex implements the paper's Aggregate Index (§5.1): a
// multi-level regular grid whose cells carry *social summaries* — for each
// of the M landmarks, the minimum (m̌) and maximum (m̂) shortest-path
// distance between any user in the cell and that landmark. The summaries
// extend the landmark triangle-inequality bound from individual vertices to
// whole groups (Lemma 2), yielding the combined MINF lower bound that drives
// the AIS branch-and-bound search (Theorem 1).
//
// The index wraps the plain spatial grid for membership and occupancy, and
// maintains summaries under location updates exactly as §5.1 prescribes:
// deletion from the old cell (recomputing components the mover was
// responsible for), insertion into the new one (widening m̌/m̂ as needed),
// with changes propagating recursively to upper levels.
//
// Concurrency follows the epoch/snapshot model of the underlying grid, with
// one addition: grid membership and social summaries are published together
// as a single Snapshot through one atomic pointer, so a reader can never
// pair new membership with stale summaries (which would break the Lemma 2
// bounds). Writers apply batches of updates copy-on-write and defer the
// upward summary propagation to the end of the batch, amortizing both the
// array duplication and the propagateUp recomputation across all moves of
// the batch before a single Publish installs the next epoch.
package aggindex

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ssrq/internal/graph"
	"ssrq/internal/landmark"
	"ssrq/internal/spatial"
)

// Op is one location update: a move/locate (Remove false) or a location
// removal (Remove true, To ignored).
type Op struct {
	ID     int32
	To     spatial.Point
	Remove bool
}

// Snapshot is one immutable epoch of the aggregate index: a grid snapshot
// plus the min/max landmark summaries that were current when that grid state
// was published. Readers load it once (no lock) and evaluate membership,
// occupancy and Lemma-2 bounds against a single consistent version.
type Snapshot struct {
	g           *spatial.Snapshot
	minSum      [][]float64 // [level][cell*m + j]
	maxSum      [][]float64
	m           int
	epoch       uint64
	publishedAt time.Time
}

// Grid returns the spatial snapshot this epoch pairs the summaries with.
func (s *Snapshot) Grid() *spatial.Snapshot { return s.g }

// Epoch returns the index epoch (0 at construction, +1 per published batch).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// PublishedAt returns when this epoch was installed.
func (s *Snapshot) PublishedAt() time.Time { return s.publishedAt }

// MinSummary returns m̌[j] for the cell, the minimum graph distance between
// any member user and landmark j (+Inf for an empty cell).
func (s *Snapshot) MinSummary(level int, idx int32, j int) float64 {
	return s.minSum[level][int(idx)*s.m+j]
}

// MaxSummary returns m̂[j] for the cell (−Inf for an empty cell).
func (s *Snapshot) MaxSummary(level int, idx int32, j int) float64 {
	return s.maxSum[level][int(idx)*s.m+j]
}

// SocialLowerBound evaluates Lemma 2: a lower bound on the graph distance
// between the query vertex (whose landmark vector is qvec) and every user in
// the cell. Empty cells return +Inf.
func (s *Snapshot) SocialLowerBound(level int, idx int32, qvec []float64) float64 {
	base := int(idx) * s.m
	mins := s.minSum[level]
	maxs := s.maxSum[level]
	best := 0.0
	for j := 0; j < s.m; j++ {
		mq := qvec[j]
		lo, hi := mins[base+j], maxs[base+j]
		switch {
		case mq < lo:
			if math.IsInf(lo, 1) {
				// Either the cell is empty, or no member is reachable from
				// landmark j while the query is: both prune.
				return graph.Infinity
			}
			if d := lo - mq; d > best {
				best = d
			}
		case mq > hi:
			if math.IsInf(mq, 1) {
				// Query unreachable from landmark j but every member is:
				// different components, infinite distance.
				if !math.IsInf(hi, 1) {
					return graph.Infinity
				}
				continue
			}
			if d := mq - hi; d > best {
				best = d
			}
		}
	}
	return best
}

// Index is the AIS aggregate index. Readers call Snapshot() and work
// lock-free against the returned epoch. Mutations (Apply, or the Move/
// SetLocated/RemoveLocation single-op conveniences) serialize on an internal
// writer mutex, build the next epoch copy-on-write, and publish grid and
// summaries atomically as one Snapshot; they never block readers.
type Index struct {
	grid *spatial.Grid
	lm   *landmark.Set
	m    int

	mu        sync.Mutex // writer side: guards everything below and grid mutation
	published atomic.Pointer[Snapshot]

	// Working summaries for the epoch under construction. A level whose
	// sumStamp differs from epoch is still shared with the published
	// snapshot and must be duplicated before its first write of the batch.
	minSum   [][]float64
	maxSum   [][]float64
	sumStamp []uint64
	epoch    uint64

	// dirtyLeaves collects leaves whose summaries changed during the current
	// batch; upward propagation runs once over them before Publish.
	dirtyLeaves map[int32]struct{}
}

// New builds the aggregate index over an existing grid and landmark set.
// The grid must not be mutated behind the index's back afterwards: the index
// becomes the grid's single writer.
func New(grid *spatial.Grid, lm *landmark.Set) (*Index, error) {
	if grid == nil || lm == nil {
		return nil, fmt.Errorf("aggindex: nil grid or landmark set")
	}
	ix := &Index{
		grid:        grid,
		lm:          lm,
		m:           lm.M(),
		dirtyLeaves: make(map[int32]struct{}),
	}
	layout := grid.Layout()
	ix.sumStamp = make([]uint64, layout.Levels)
	for l := 0; l < layout.Levels; l++ {
		size := layout.NumCells(l) * ix.m
		mins := make([]float64, size)
		maxs := make([]float64, size)
		for i := range mins {
			mins[i] = math.Inf(1)
			maxs[i] = math.Inf(-1)
		}
		ix.minSum = append(ix.minSum, mins)
		ix.maxSum = append(ix.maxSum, maxs)
	}
	// Leaf summaries from members, then parents from children. Construction
	// runs at epoch 0 with all stamps already 0, so writes go in place.
	leafLevel := layout.LeafLevel()
	for idx := int32(0); idx < int32(layout.NumCells(leafLevel)); idx++ {
		ix.recomputeLeaf(idx)
	}
	for l := leafLevel - 1; l >= 0; l-- {
		for idx := int32(0); idx < int32(layout.NumCells(l)); idx++ {
			ix.recomputeFromChildren(l, idx)
		}
	}
	ix.publishLocked()
	return ix, nil
}

// Snapshot returns the most recently published epoch; immutable and safe
// for unlimited concurrent readers.
func (ix *Index) Snapshot() *Snapshot { return ix.published.Load() }

// Grid returns the underlying spatial grid (writer-side handle).
func (ix *Index) Grid() *spatial.Grid { return ix.grid }

// Landmarks returns the landmark set the summaries are built on.
func (ix *Index) Landmarks() *landmark.Set { return ix.lm }

// Layout returns the grid geometry.
func (ix *Index) Layout() *spatial.Layout { return ix.grid.Layout() }

// MinSummary returns the working-state m̌[j] (writer-side view; readers use
// Snapshot().MinSummary).
func (ix *Index) MinSummary(level int, idx int32, j int) float64 {
	return ix.minSum[level][int(idx)*ix.m+j]
}

// MaxSummary returns the working-state m̂[j] (writer-side view).
func (ix *Index) MaxSummary(level int, idx int32, j int) float64 {
	return ix.maxSum[level][int(idx)*ix.m+j]
}

// SocialLowerBound evaluates Lemma 2 against the working state (writer-side
// view; readers use Snapshot().SocialLowerBound).
func (ix *Index) SocialLowerBound(level int, idx int32, qvec []float64) float64 {
	s := Snapshot{minSum: ix.minSum, maxSum: ix.maxSum, m: ix.m}
	return s.SocialLowerBound(level, idx, qvec)
}

// writableSums duplicates one level's summary arrays on first write per
// epoch, so the published snapshot keeps its own copies.
func (ix *Index) writableSums(level int) (mins, maxs []float64) {
	if ix.sumStamp[level] != ix.epoch {
		ix.minSum[level] = append([]float64(nil), ix.minSum[level]...)
		ix.maxSum[level] = append([]float64(nil), ix.maxSum[level]...)
		ix.sumStamp[level] = ix.epoch
	}
	return ix.minSum[level], ix.maxSum[level]
}

// publishLocked installs the working state as the next epoch. Caller holds
// mu (or is the constructor).
func (ix *Index) publishLocked() {
	s := &Snapshot{
		g:           ix.grid.Publish(),
		minSum:      append([][]float64(nil), ix.minSum...),
		maxSum:      append([][]float64(nil), ix.maxSum...),
		m:           ix.m,
		epoch:       ix.epoch,
		publishedAt: time.Now(),
	}
	ix.published.Store(s)
	ix.epoch++
}

// Apply executes a batch of location updates as one epoch: every op mutates
// the working copy (grid membership, coordinates and leaf-level summaries),
// upward summary propagation runs once over the leaves the batch touched,
// and a single Publish makes the whole batch visible atomically. Safe
// concurrently with readers; concurrent Apply calls serialize.
func (ix *Index) Apply(ops []Op) {
	if len(ops) == 0 {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, op := range ops {
		ix.applyOne(op)
	}
	ix.propagateDirty()
	ix.publishLocked()
}

// applyOne performs one op's membership change and leaf-level summary
// maintenance, deferring upward propagation to the end of the batch.
func (ix *Index) applyOne(op Op) {
	if op.Remove {
		leaf := ix.grid.LeafOf(op.ID)
		if leaf < 0 {
			return
		}
		ix.grid.RemoveLocation(op.ID)
		ix.onRemove(leaf, op.ID)
		return
	}
	oldLeaf := ix.grid.LeafOf(op.ID)
	ix.grid.Move(op.ID, op.To)
	newLeaf := ix.grid.LeafOf(op.ID)
	if oldLeaf == newLeaf {
		return // intra-cell move: coordinates updated, summaries unaffected
	}
	if oldLeaf >= 0 {
		ix.onRemove(oldLeaf, op.ID)
	}
	if newLeaf >= 0 {
		ix.onInsert(newLeaf, op.ID)
	}
}

// Move relocates a user, maintaining grid membership and social summaries
// (single-op batch). Safe concurrently with readers.
func (ix *Index) Move(id int32, to spatial.Point) {
	ix.Apply([]Op{{ID: id, To: to}})
}

// SetLocated indexes a previously unlocated user. Safe concurrently with
// readers. (Move on an unlocated user is equivalent.)
func (ix *Index) SetLocated(id int32, p spatial.Point) {
	ix.Apply([]Op{{ID: id, To: p}})
}

// RemoveLocation unindexes a user. Safe concurrently with readers.
func (ix *Index) RemoveLocation(id int32) {
	ix.Apply([]Op{{ID: id, Remove: true}})
}

// recomputeLeaf rebuilds the summary of a leaf cell from its members.
func (ix *Index) recomputeLeaf(idx int32) bool {
	base := int(idx) * ix.m
	leaf := ix.grid.Layout().LeafLevel()
	changed := false
	var mins, maxs []float64
	for j := 0; j < ix.m; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, u := range ix.grid.CellUsers(idx) {
			d := ix.lm.Dist(j, u)
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		if ix.minSum[leaf][base+j] != lo || ix.maxSum[leaf][base+j] != hi {
			if mins == nil {
				mins, maxs = ix.writableSums(leaf)
			}
			mins[base+j] = lo
			maxs[base+j] = hi
			changed = true
		}
	}
	return changed
}

// recomputeFromChildren rebuilds an internal cell's summary as the
// element-wise min/max over its s×s children; reports whether it changed.
func (ix *Index) recomputeFromChildren(level int, idx int32) bool {
	layout := ix.grid.Layout()
	kids := layout.ChildIndices(level, idx, nil)
	base := int(idx) * ix.m
	changed := false
	var mins, maxs []float64
	for j := 0; j < ix.m; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, c := range kids {
			cb := int(c) * ix.m
			if v := ix.minSum[level+1][cb+j]; v < lo {
				lo = v
			}
			if v := ix.maxSum[level+1][cb+j]; v > hi {
				hi = v
			}
		}
		if ix.minSum[level][base+j] != lo || ix.maxSum[level][base+j] != hi {
			if mins == nil {
				mins, maxs = ix.writableSums(level)
			}
			mins[base+j] = lo
			maxs[base+j] = hi
			changed = true
		}
	}
	return changed
}

// propagateDirty recomputes ancestors of every leaf the batch touched,
// level by level with per-cell deduplication, stopping each chain as soon as
// a recomputation reports no change. Running this once per batch instead of
// once per move is what amortizes propagateUp across the batch.
func (ix *Index) propagateDirty() {
	if len(ix.dirtyLeaves) == 0 {
		return
	}
	layout := ix.grid.Layout()
	cur := ix.dirtyLeaves
	for l := layout.LeafLevel(); l > 0 && len(cur) > 0; l-- {
		seen := make(map[int32]bool, len(cur))
		for idx := range cur {
			parent := layout.ParentIndex(l, idx)
			if _, done := seen[parent]; done {
				continue
			}
			seen[parent] = ix.recomputeFromChildren(l-1, parent)
		}
		next := make(map[int32]struct{}, len(seen))
		for parent, changed := range seen {
			if changed {
				next[parent] = struct{}{}
			}
		}
		cur = next
	}
	clear(ix.dirtyLeaves)
}

// onInsert widens summaries for a user that joined a leaf cell. Widening is
// cheap: compare the mover's landmark vector against m̌/m̂ (§5.1).
func (ix *Index) onInsert(leaf int32, id int32) {
	base := int(leaf) * ix.m
	l := ix.grid.Layout().LeafLevel()
	changed := false
	var mins, maxs []float64
	for j := 0; j < ix.m; j++ {
		d := ix.lm.Dist(j, id)
		if d < ix.minSum[l][base+j] {
			if mins == nil {
				mins, maxs = ix.writableSums(l)
			}
			mins[base+j] = d
			changed = true
		}
		if d > ix.maxSum[l][base+j] {
			if mins == nil {
				mins, maxs = ix.writableSums(l)
			}
			maxs[base+j] = d
			changed = true
		}
	}
	if changed {
		ix.dirtyLeaves[leaf] = struct{}{}
	}
}

// onRemove narrows summaries after a user left a leaf cell. Only components
// the mover was responsible for are recomputed over the remaining members.
func (ix *Index) onRemove(leaf int32, id int32) {
	base := int(leaf) * ix.m
	l := ix.grid.Layout().LeafLevel()
	responsible := false
	for j := 0; j < ix.m; j++ {
		d := ix.lm.Dist(j, id)
		if d == ix.minSum[l][base+j] || d == ix.maxSum[l][base+j] {
			responsible = true
			break
		}
	}
	if !responsible {
		return
	}
	if ix.recomputeLeaf(leaf) {
		ix.dirtyLeaves[leaf] = struct{}{}
	}
}
