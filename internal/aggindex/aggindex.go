// Package aggindex implements the paper's Aggregate Index (§5.1): a
// multi-level regular grid whose cells carry *social summaries* — for each
// of the M landmarks, the minimum (m̌) and maximum (m̂) shortest-path
// distance between any user in the cell and that landmark. The summaries
// extend the landmark triangle-inequality bound from individual vertices to
// whole groups (Lemma 2), yielding the combined MINF lower bound that drives
// the AIS branch-and-bound search (Theorem 1).
//
// The index wraps the plain spatial grid for membership and occupancy, and
// maintains summaries under location updates exactly as §5.1 prescribes:
// deletion from the old cell (recomputing components the mover was
// responsible for), insertion into the new one (widening m̌/m̂ as needed),
// with changes propagating recursively to upper levels.
//
// Concurrency follows the epoch/snapshot model of the underlying grid, with
// one addition: grid membership and social summaries are published together
// as a single Snapshot through one atomic pointer, so a reader can never
// pair new membership with stale summaries (which would break the Lemma 2
// bounds). Writers apply batches of updates copy-on-write and defer the
// upward summary propagation to the end of the batch, amortizing both the
// array duplication and the propagateUp recomputation across all moves of
// the batch before a single Publish installs the next epoch.
//
// The social dimension — the mutable edge overlay, the dynamic landmark
// tables and the epoch-tagged contraction hierarchy — lives in a Social
// substrate (see substrate.go) that an Index *consumes* rather than owns.
// NewSocial builds a private substrate for the monolithic case; NewShared
// attaches to an existing one, so a sharded deployment runs S spatial
// indexes over ONE social world: every edge op is applied once, and the
// substrate synchronously pushes each new social epoch into every consumer,
// which re-derives exactly the cell summaries the op invalidated and
// republishes. Every published Snapshot therefore still pairs grid
// membership, graph, landmark tables and summaries of one consistent
// version — the Lemma-2 epoch-coordination invariant survives sharing.
package aggindex

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ssrq/internal/ch"
	"ssrq/internal/graph"
	"ssrq/internal/landmark"
	"ssrq/internal/spatial"
)

// OpKind discriminates location ops from edge ops in one update stream.
type OpKind uint8

const (
	// OpLocation is a move/locate (Remove false) or a location removal
	// (Remove true, To ignored). The zero Kind, so plain location Ops keep
	// their historical literal form.
	OpLocation OpKind = iota
	// OpEdgeUpsert inserts undirected edge (U,V) with weight W, or updates
	// its weight when present.
	OpEdgeUpsert
	// OpEdgeRemove deletes undirected edge (U,V); a no-op when absent.
	OpEdgeRemove
)

// Op is one world update: a location op (Kind OpLocation, using ID/To/
// Remove) or a social edge op (Kind OpEdgeUpsert/OpEdgeRemove, using U/V/W).
type Op struct {
	ID     int32
	To     spatial.Point
	Remove bool

	Kind OpKind
	U, V int32
	W    float64
}

// Snapshot is one immutable epoch of the aggregate index: a grid snapshot,
// the social graph and landmark set current at publication, and the min/max
// landmark summaries computed against exactly those. Readers load it once
// (no lock) and evaluate membership, occupancy, graph traversals and Lemma-2
// bounds against a single consistent version.
type Snapshot struct {
	g           *spatial.Snapshot
	soc         *graph.Graph  // nil for indexes built without a social graph
	lm          *landmark.Set // landmark epoch the summaries were computed on
	hier        *ch.CH        // nil when the substrate owns no hierarchy
	hierEpoch   uint64        // social epoch hier was built at
	minSum      [][]float64   // [level][cell*m + j]
	maxSum      [][]float64
	labelSum    [][]uint64 // [level][cell]: OR of member label masks (nil when unlabeled)
	labels      []uint64   // immutable per-user label bitmasks (nil when unlabeled)
	m           int
	disabledLm  uint64 // landmarks excluded from bounds in this epoch
	epoch       uint64
	socialEpoch uint64
	publishedAt time.Time
}

// Grid returns the spatial snapshot this epoch pairs the summaries with.
func (s *Snapshot) Grid() *spatial.Snapshot { return s.g }

// SocialGraph returns this epoch's social graph (nil when the index was
// built with New rather than NewSocial/NewShared).
func (s *Snapshot) SocialGraph() *graph.Graph { return s.soc }

// Landmarks returns this epoch's landmark set — the tables every summary in
// this snapshot was computed from.
func (s *Snapshot) Landmarks() *landmark.Set { return s.lm }

// Epoch returns the index epoch (0 at construction, +1 per published batch).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// SocialEpoch returns the social graph version (0 at construction, +1 per
// batch that contained edge ops). CH-based variants compare it against their
// build epoch to detect staleness.
func (s *Snapshot) SocialEpoch() uint64 { return s.socialEpoch }

// PublishedAt returns when this epoch was installed.
func (s *Snapshot) PublishedAt() time.Time { return s.publishedAt }

// Hierarchy returns the contraction hierarchy published with this epoch
// (nil when the substrate owns none). It answers exact distances only for
// the graph of HierarchyEpoch — callers must check HierarchyFresh before
// serving CH-backed queries from it.
func (s *Snapshot) Hierarchy() *ch.CH { return s.hier }

// HierarchyEpoch returns the social epoch the published hierarchy was built
// (or last repaired) at.
func (s *Snapshot) HierarchyEpoch() uint64 { return s.hierEpoch }

// HierarchyFresh reports whether the published hierarchy describes exactly
// this snapshot's social graph.
func (s *Snapshot) HierarchyFresh() bool {
	return s.hier != nil && s.hierEpoch == s.socialEpoch
}

// CellLabelMask returns the OR of the label bitmasks of every member of the
// cell (0 for an empty cell or an unlabeled index). A filtered query prunes
// the cell outright when the mask misses its filter — no member can match.
// Masks are maintained beside the min/max summaries and published in the
// same snapshot, so they always describe exactly this epoch's membership.
func (s *Snapshot) CellLabelMask(level int, idx int32) uint64 {
	if s.labelSum == nil {
		return 0
	}
	return s.labelSum[level][idx]
}

// LabelMasks returns one level's cell label masks indexed by cell (nil when
// the index is unlabeled). Read-only.
func (s *Snapshot) LabelMasks(level int) []uint64 {
	if s.labelSum == nil {
		return nil
	}
	return s.labelSum[level]
}

// UserLabels returns user u's label bitmask (0 when the index is unlabeled).
func (s *Snapshot) UserLabels(u int32) uint64 {
	if s.labels == nil {
		return 0
	}
	return s.labels[u]
}

// HasLabels reports whether the index carries per-user labels.
func (s *Snapshot) HasLabels() bool { return s.labels != nil }

// MinSummary returns m̌[j] for the cell, the minimum graph distance between
// any member user and landmark j (+Inf for an empty cell).
func (s *Snapshot) MinSummary(level int, idx int32, j int) float64 {
	return s.minSum[level][int(idx)*s.m+j]
}

// MaxSummary returns m̂[j] for the cell (−Inf for an empty cell).
func (s *Snapshot) MaxSummary(level int, idx int32, j int) float64 {
	return s.maxSum[level][int(idx)*s.m+j]
}

// SocialLowerBound evaluates Lemma 2: a lower bound on the graph distance
// between the query vertex (whose landmark vector is qvec) and every user in
// the cell. Empty cells return +Inf.
func (s *Snapshot) SocialLowerBound(level int, idx int32, qvec []float64) float64 {
	return lemma2(s.minSum[level], s.maxSum[level], int(idx)*s.m, s.m, s.disabledLm, qvec)
}

// SocialLowerBoundsInto evaluates Lemma 2 for every cell of one level in a
// single flat pass over the summary arrays, appending one bound per cell into
// dst (resized to the level's cell count). Equivalent to calling
// SocialLowerBound per cell — the two share the per-cell kernel — but keeps
// the summary rows hot in cache and lets pooled callers (AIS seeding, the
// sharded fan-out's admission bound) evaluate a whole level without any
// per-cell call or allocation.
func (s *Snapshot) SocialLowerBoundsInto(level int, qvec []float64, dst []float64) []float64 {
	mins := s.minSum[level]
	maxs := s.maxSum[level]
	n := len(mins) / s.m
	if cap(dst) < n {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
	}
	for idx := 0; idx < n; idx++ {
		dst[idx] = lemma2(mins, maxs, idx*s.m, s.m, s.disabledLm, qvec)
	}
	return dst
}

// lemma2 is the per-cell Lemma-2 kernel over one cell's summary row
// (mins/maxs[base : base+m]) — shared by the single-cell and batched entry
// points so they cannot diverge.
func lemma2(mins, maxs []float64, base, m int, disabled uint64, qvec []float64) float64 {
	best := 0.0
	for j := 0; j < m; j++ {
		if disabled&(1<<uint(j)) != 0 {
			// Landmark table stale under edge churn: its summaries carry no
			// information until the rebuild re-enables it.
			continue
		}
		mq := qvec[j]
		lo, hi := mins[base+j], maxs[base+j]
		switch {
		case mq < lo:
			if math.IsInf(lo, 1) {
				// Either the cell is empty, or no member is reachable from
				// landmark j while the query is: both prune.
				return graph.Infinity
			}
			if d := lo - mq; d > best {
				best = d
			}
		case mq > hi:
			if math.IsInf(mq, 1) {
				// Query unreachable from landmark j but every member is:
				// different components, infinite distance.
				if !math.IsInf(hi, 1) {
					return graph.Infinity
				}
				continue
			}
			if d := mq - hi; d > best {
				best = d
			}
		}
	}
	return best
}

// Index is the AIS aggregate index over one grid. Readers call Snapshot()
// and work lock-free against the returned epoch. Location mutations
// serialize on the index's writer mutex, build the next epoch copy-on-write,
// and publish grid, social state and summaries atomically as one Snapshot;
// they never block readers. Edge mutations are forwarded to the Social
// substrate, which applies them once and synchronously syncs every attached
// index (this one included) to the new social epoch.
type Index struct {
	grid *spatial.Grid
	lm   *landmark.Set // construction-time set; live tables come from social

	m int

	// Social substrate this index consumes (nil for static indexes built
	// with New). ownsSub marks the NewSocial case, where Close must tear the
	// private substrate down too; NewShared consumers never close it.
	sub     *Social
	ownsSub bool

	mu        sync.Mutex // writer side: guards everything below and grid mutation
	published atomic.Pointer[Snapshot]

	// social caches the substrate epoch this index's summaries are currently
	// computed against. It moves only inside socialSync — i.e. under both
	// the substrate's writer lock and mu — so summaries and social state can
	// never be paired across epochs.
	social *SocialSnapshot

	// Working summaries for the epoch under construction. A level whose
	// sumStamp differs from epoch is still shared with the published
	// snapshot and must be duplicated before its first write of the batch.
	minSum   [][]float64
	maxSum   [][]float64
	sumStamp []uint64
	// labels is the immutable per-user label bitmask slice (nil for an
	// unlabeled dataset); labelSum mirrors minSum/maxSum with one OR'd mask
	// per cell, copy-on-write per level via labelStamp, published in the
	// same snapshot as the min/max summaries so filtered pruning never
	// pairs new membership with stale masks.
	labels     []uint64
	labelSum   [][]uint64
	labelStamp []uint64
	epoch      uint64
	// sumsTouched records whether any summary level was written since the
	// last publish; when false the next snapshot can alias the previous
	// one's (immutable) outer arrays instead of re-copying them — the common
	// case for a consumer syncing a social epoch none of whose dirty
	// vertices live in its grid.
	sumsTouched bool

	// dirtyLeaves collects leaves whose summaries changed during the current
	// batch; upward propagation runs once over them before Publish.
	dirtyLeaves map[int32]struct{}
	// syncSeen is socialSync's reusable leaf-dedup scratch.
	syncSeen map[int32]struct{}

	// notify, when set, is invoked from publishLockedAt after every epoch
	// that changed the world (location ops applied or a social sync).
	// It runs under mu — and, for social syncs, under the substrate writer
	// lock too — so it must be cheap and must never call back into the
	// index. notifyMoved/notifySocial accumulate the batch's touched-user
	// set between publishes; the Moved slice is reused across epochs.
	notify       func(EpochDelta)
	notifyMoved  []int32
	notifySocial bool

	// oplogFn, when set, receives every location batch under mu immediately
	// before it is applied — the write-ahead hook for the durability layer.
	// Batches arrive post-coalesce (this is where the async updater lands),
	// so the logged stream is exactly the applied stream, in application
	// order. Single consumer; must be cheap and must not call back in.
	oplogFn func([]Op)
}

// EpochDelta describes what one published epoch changed: the users whose
// location ops were applied in the batch and whether the social state
// (graph, landmark tables, or hierarchy) moved. Moved is only valid for
// the duration of the callback — the index reuses the backing array.
type EpochDelta struct {
	Epoch         uint64
	SocialChanged bool
	Moved         []int32
	Snapshot      *Snapshot
}

// SetNotify installs the epoch-delta callback (single consumer; replaces
// any previous one). Pass nil to detach. The callback fires only for
// epochs with observable changes — location batches and social syncs —
// not for administrative republishes.
func (ix *Index) SetNotify(fn func(EpochDelta)) {
	ix.mu.Lock()
	ix.notify = fn
	ix.mu.Unlock()
}

// SetOpLog installs the write-ahead hook: fn receives every location batch
// under the writer lock right before it mutates the grid, and — when this
// index fronts a social substrate — every edge batch under the substrate's
// writer lock likewise (single consumer each; nil detaches). Only the
// monolithic engine hooks here; the sharded engine logs at its routing
// layer, where the per-user order is authoritative across shards.
func (ix *Index) SetOpLog(fn func([]Op)) {
	ix.mu.Lock()
	ix.oplogFn = fn
	ix.mu.Unlock()
	if ix.sub != nil {
		ix.sub.SetOpLog(fn)
	}
}

// MutationBarrier returns once every mutation that had already reached the
// op-log hook when the call began has finished applying and publishing.
// Ops are journaled under the same writer locks that apply them (ix.mu for
// location batches, the substrate lock for edge batches), so cycling those
// locks is a complete barrier: any op journaled before the call either
// released its lock — fully published — or holds it and we wait. The
// checkpointer relies on this to make the exported state cover every
// sequence number at or below the position it records.
func (ix *Index) MutationBarrier() {
	ix.mu.Lock()
	ix.mu.Unlock() //nolint:staticcheck // empty critical section is the point
	if ix.sub != nil {
		ix.sub.MutationBarrier()
	}
}

// Config tunes the social substrate built by NewSocial (or handed to
// NewSocialSubstrate directly).
type Config struct {
	// RepairBudget caps per-landmark per-op incremental repair work before
	// the landmark is disabled and rebuilt asynchronously (default 256).
	RepairBudget int
	// CompactThreshold is the overlay delta size (patched vertices) that
	// triggers folding the delta back into a pure CSR (default
	// max(1024, n/8)).
	CompactThreshold int
	// CH hands the substrate ownership of an epoch-tagged contraction
	// hierarchy (built by the caller against the construction graph, social
	// epoch 0). ApplyEdges then repairs it in place for decrease-only edge
	// batches, stale hierarchies are rebuilt asynchronously beside the
	// landmark loop, and every Snapshot publishes the hierarchy tagged with
	// its build epoch.
	CH *ch.Dynamic
	// ForcedInstallInterval rate-limits the install-under-writer-lock
	// fallback that bounds rebuild starvation: at most one forced landmark
	// install event and one forced CH install per interval. 0 selects the 2s
	// default; negative disables forced installs (pure optimistic rebuilds).
	ForcedInstallInterval time.Duration
	// Labels is the per-user attribute bitmask slice (nil = unlabeled).
	// Like the graph topology it is fixed for the substrate's lifetime; the
	// substrate and every attached index read it without copying. Indexes
	// built over a labeled substrate maintain per-cell OR'd label masks for
	// filtered-query pruning.
	Labels []uint64
}

// New builds a static aggregate index over an existing grid and landmark
// set: location updates only, no social churn (Snapshot.SocialGraph is nil).
// The grid must not be mutated behind the index's back afterwards: the index
// becomes the grid's single writer.
func New(grid *spatial.Grid, lm *landmark.Set) (*Index, error) {
	if lm == nil {
		return nil, fmt.Errorf("aggindex: nil grid or landmark set")
	}
	return build(grid, lm, nil, false)
}

// NewSocial builds the full dynamic index with a private social substrate:
// grid, social graph g and landmark tables all mutable through Apply,
// published together per epoch. When the landmark count exceeds what dynamic
// maintenance supports (64), the index still builds but rejects edge ops
// (SupportsEdgeChurn reports false).
func NewSocial(grid *spatial.Grid, lm *landmark.Set, g *graph.Graph, cfg Config) (*Index, error) {
	if g == nil {
		return nil, fmt.Errorf("aggindex: nil social graph")
	}
	if lm == nil {
		return nil, fmt.Errorf("aggindex: nil grid or landmark set")
	}
	sub, err := NewSocialSubstrate(lm, g, cfg)
	if err != nil {
		return nil, err
	}
	return build(grid, lm, sub, true)
}

// NewShared builds an aggregate index that consumes an existing shared
// social substrate: the index owns only its grid and summaries, while graph,
// landmark tables and hierarchy come from (and are maintained by) sub. Any
// number of indexes may share one substrate — the sharded engine attaches S
// of them, so the social dimension is stored and maintained once instead of
// S times. Closing a shared index never closes the substrate.
func NewShared(grid *spatial.Grid, sub *Social) (*Index, error) {
	if sub == nil {
		return nil, fmt.Errorf("aggindex: nil social substrate")
	}
	return build(grid, sub.Landmarks(), sub, false)
}

func build(grid *spatial.Grid, lm *landmark.Set, sub *Social, ownsSub bool) (*Index, error) {
	if grid == nil || lm == nil {
		return nil, fmt.Errorf("aggindex: nil grid or landmark set")
	}
	ix := &Index{
		grid:        grid,
		lm:          lm,
		m:           lm.M(),
		sub:         sub,
		ownsSub:     ownsSub,
		dirtyLeaves: make(map[int32]struct{}),
	}
	if sub != nil {
		ix.labels = sub.labels
	}
	layout := grid.Layout()
	ix.sumStamp = make([]uint64, layout.Levels)
	ix.labelStamp = make([]uint64, layout.Levels)
	for l := 0; l < layout.Levels; l++ {
		size := layout.NumCells(l) * ix.m
		mins := make([]float64, size)
		maxs := make([]float64, size)
		for i := range mins {
			mins[i] = math.Inf(1)
			maxs[i] = math.Inf(-1)
		}
		ix.minSum = append(ix.minSum, mins)
		ix.maxSum = append(ix.maxSum, maxs)
		if ix.labels != nil {
			ix.labelSum = append(ix.labelSum, make([]uint64, layout.NumCells(l)))
		}
	}
	if sub == nil {
		ix.buildSummaries()
		ix.publishLocked()
		return ix, nil
	}
	// Attach under the substrate's writer lock: the summaries are computed
	// against the substrate's current epoch and registration is atomic with
	// that, so no edge batch can slip between the sweep and the first
	// notification this consumer receives.
	sub.mu.Lock()
	ix.social = sub.published.Load()
	ix.buildSummaries()
	ix.publishLocked()
	sub.attach(ix)
	sub.mu.Unlock()
	return ix, nil
}

// buildSummaries computes leaf summaries from members, then parents from
// children. Construction runs at epoch 0 with all stamps already 0, so
// writes go in place.
func (ix *Index) buildSummaries() {
	layout := ix.grid.Layout()
	leafLevel := layout.LeafLevel()
	for idx := int32(0); idx < int32(layout.NumCells(leafLevel)); idx++ {
		ix.recomputeLeaf(idx)
	}
	for l := leafLevel - 1; l >= 0; l-- {
		for idx := int32(0); idx < int32(layout.NumCells(l)); idx++ {
			ix.recomputeFromChildren(l, idx)
		}
	}
}

// Snapshot returns the most recently published epoch; immutable and safe
// for unlimited concurrent readers.
func (ix *Index) Snapshot() *Snapshot { return ix.published.Load() }

// Grid returns the underlying spatial grid (writer-side handle).
func (ix *Index) Grid() *spatial.Grid { return ix.grid }

// Substrate returns the social substrate this index consumes (nil for
// static indexes).
func (ix *Index) Substrate() *Social { return ix.sub }

// Landmarks returns the landmark set the summaries are built on
// (writer-side view; concurrent readers should use Snapshot().Landmarks).
func (ix *Index) Landmarks() *landmark.Set { return ix.lmView() }

// lmView returns the landmark tables the writer must compute against right
// now: the cached social epoch's committed set when a substrate is attached,
// else the static construction set.
func (ix *Index) lmView() *landmark.Set {
	if ix.social != nil {
		return ix.social.lm
	}
	return ix.lm
}

// SupportsEdgeChurn reports whether the index can ingest edge ops (built
// over a substrate whose landmark count the dynamic layer supports).
func (ix *Index) SupportsEdgeChurn() bool { return ix.sub != nil && ix.sub.SupportsEdgeChurn() }

// Layout returns the grid geometry.
func (ix *Index) Layout() *spatial.Layout { return ix.grid.Layout() }

// MinSummary returns the working-state m̌[j] (writer-side view; readers use
// Snapshot().MinSummary).
func (ix *Index) MinSummary(level int, idx int32, j int) float64 {
	return ix.minSum[level][int(idx)*ix.m+j]
}

// MaxSummary returns the working-state m̂[j] (writer-side view).
func (ix *Index) MaxSummary(level int, idx int32, j int) float64 {
	return ix.maxSum[level][int(idx)*ix.m+j]
}

// SocialLowerBound evaluates Lemma 2 against the working state (writer-side
// view; readers use Snapshot().SocialLowerBound).
func (ix *Index) SocialLowerBound(level int, idx int32, qvec []float64) float64 {
	s := Snapshot{minSum: ix.minSum, maxSum: ix.maxSum, m: ix.m, disabledLm: ix.lmView().DisabledMask()}
	return s.SocialLowerBound(level, idx, qvec)
}

// writableSums duplicates one level's summary arrays on first write per
// epoch, so the published snapshot keeps its own copies.
func (ix *Index) writableSums(level int) (mins, maxs []float64) {
	ix.sumsTouched = true
	if ix.sumStamp[level] != ix.epoch {
		ix.minSum[level] = append([]float64(nil), ix.minSum[level]...)
		ix.maxSum[level] = append([]float64(nil), ix.maxSum[level]...)
		ix.sumStamp[level] = ix.epoch
	}
	return ix.minSum[level], ix.maxSum[level]
}

// writableLabels is writableSums for the per-cell label masks: duplicate one
// level's mask array on first write per epoch so the published snapshot
// keeps its own copy. Only called on labeled indexes.
func (ix *Index) writableLabels(level int) []uint64 {
	ix.sumsTouched = true
	if ix.labelStamp[level] != ix.epoch {
		ix.labelSum[level] = append([]uint64(nil), ix.labelSum[level]...)
		ix.labelStamp[level] = ix.epoch
	}
	return ix.labelSum[level]
}

// publishLocked installs the working state as the next epoch. Caller holds
// mu (or is the constructor).
func (ix *Index) publishLocked() { ix.publishLockedAt(time.Now()) }

// publishLockedAt is publishLocked with the timestamp hoisted out: the
// substrate stamps one time.Now() per edge op and hands it to every
// consumer's sync, keeping the per-consumer publish cost flat in S.
func (ix *Index) publishLockedAt(now time.Time) {
	s := &Snapshot{
		g:           ix.grid.Publish(),
		m:           ix.m,
		epoch:       ix.epoch,
		publishedAt: now,
	}
	if prev := ix.published.Load(); prev != nil && !ix.sumsTouched {
		// No summary write since the last publish: the previous snapshot's
		// outer arrays still describe exactly the current rows, and both are
		// immutable, so alias them instead of copying.
		s.minSum, s.maxSum = prev.minSum, prev.maxSum
		s.labelSum = prev.labelSum
	} else {
		s.minSum = append([][]float64(nil), ix.minSum...)
		s.maxSum = append([][]float64(nil), ix.maxSum...)
		if ix.labelSum != nil {
			s.labelSum = append([][]uint64(nil), ix.labelSum...)
		}
	}
	s.labels = ix.labels
	ix.sumsTouched = false
	if soc := ix.social; soc != nil {
		s.soc = soc.g
		s.lm = soc.lm
		s.hier = soc.hier
		s.hierEpoch = soc.hierEpoch
		s.socialEpoch = soc.epoch
	} else {
		s.lm = ix.lm
	}
	s.disabledLm = s.lm.DisabledMask()
	ix.published.Store(s)
	ix.epoch++
	if ix.notify != nil && (len(ix.notifyMoved) > 0 || ix.notifySocial) {
		ix.notify(EpochDelta{
			Epoch:         s.epoch,
			SocialChanged: ix.notifySocial,
			Moved:         ix.notifyMoved,
			Snapshot:      s,
		})
	}
	ix.notifyMoved = ix.notifyMoved[:0]
	ix.notifySocial = false
}

// socialSync is the substrate's notification callback: cache the new social
// epoch, re-derive the summaries it invalidated in this index's grid, and
// republish — all under mu, while the caller still holds the substrate
// writer lock, so the published Snapshot pairs the new graph and tables with
// summaries recomputed against exactly them. dirty lists vertices whose
// landmark distances changed; allLeaves forces a full sweep (whole-table
// installs); neither means a CH-only change, which only needs republishing.
func (ix *Index) socialSync(sn *SocialSnapshot, dirty []graph.VertexID, allLeaves bool, now time.Time) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.notifySocial = true
	ix.social = sn
	switch {
	case allLeaves:
		ix.recomputeAllLeavesLocked()
	case len(dirty) > 0:
		// The vertex list is heavily duplicated (one entry per landmark
		// repair per op) and most vertices live in other consumers' grids,
		// so dedupe to this grid's unique leaves and recompute each once.
		if ix.syncSeen == nil {
			ix.syncSeen = make(map[int32]struct{}, len(dirty))
		}
		for _, v := range dirty {
			leaf := ix.grid.LeafOf(v)
			if leaf < 0 {
				continue
			}
			if _, done := ix.syncSeen[leaf]; done {
				continue
			}
			ix.syncSeen[leaf] = struct{}{}
			if ix.recomputeLeaf(leaf) {
				ix.dirtyLeaves[leaf] = struct{}{}
			}
		}
		clear(ix.syncSeen)
	}
	ix.propagateDirty()
	ix.publishLockedAt(now)
}

// Apply executes a batch of world updates: location ops mutate this index's
// grid membership and summaries and publish as one epoch; edge ops are
// forwarded to the social substrate, which applies them once and syncs every
// consumer (this index included) to the resulting social epoch. Safe
// concurrently with readers; concurrent Apply calls serialize. Edge ops on
// an index without edge-churn support are silently skipped (callers gate on
// SupportsEdgeChurn).
func (ix *Index) Apply(ops []Op) {
	if len(ops) == 0 {
		return
	}
	// Split edge ops from location ops, preserving relative order within
	// each kind. Homogeneous batches — the overwhelmingly common case on the
	// hot update path — pass through without allocating.
	nEdge := 0
	for _, op := range ops {
		if op.Kind != OpLocation {
			nEdge++
		}
	}
	edges, locs := ops, ops
	switch {
	case nEdge == 0:
		edges = nil
	case nEdge == len(ops):
		locs = nil
	default:
		edges = make([]Op, 0, nEdge)
		locs = make([]Op, 0, len(ops)-nEdge)
		for _, op := range ops {
			if op.Kind == OpLocation {
				locs = append(locs, op)
			} else {
				edges = append(edges, op)
			}
		}
	}
	if len(edges) > 0 && ix.sub != nil {
		ix.sub.ApplyEdges(edges)
	}
	if len(locs) == 0 {
		return
	}
	ix.mu.Lock()
	if ix.oplogFn != nil {
		ix.oplogFn(locs)
	}
	for _, op := range locs {
		ix.applyOne(op)
		if ix.notify != nil {
			ix.notifyMoved = append(ix.notifyMoved, op.ID)
		}
	}
	ix.propagateDirty()
	ix.publishLocked()
	ix.mu.Unlock()
}

// applyOne performs one op's membership change and leaf-level summary
// maintenance, deferring upward propagation to the end of the batch.
func (ix *Index) applyOne(op Op) {
	if op.Remove {
		leaf := ix.grid.LeafOf(op.ID)
		if leaf < 0 {
			return
		}
		ix.grid.RemoveLocation(op.ID)
		ix.onRemove(leaf, op.ID)
		return
	}
	oldLeaf := ix.grid.LeafOf(op.ID)
	ix.grid.Move(op.ID, op.To)
	newLeaf := ix.grid.LeafOf(op.ID)
	if oldLeaf == newLeaf {
		return // intra-cell move: coordinates updated, summaries unaffected
	}
	if oldLeaf >= 0 {
		ix.onRemove(oldLeaf, op.ID)
	}
	if newLeaf >= 0 {
		ix.onInsert(newLeaf, op.ID)
	}
}

// Move relocates a user, maintaining grid membership and social summaries
// (single-op batch). Safe concurrently with readers.
func (ix *Index) Move(id int32, to spatial.Point) {
	ix.Apply([]Op{{ID: id, To: to}})
}

// SetLocated indexes a previously unlocated user. Safe concurrently with
// readers. (Move on an unlocated user is equivalent.)
func (ix *Index) SetLocated(id int32, p spatial.Point) {
	ix.Apply([]Op{{ID: id, To: p}})
}

// RemoveLocation unindexes a user. Safe concurrently with readers.
func (ix *Index) RemoveLocation(id int32) {
	ix.Apply([]Op{{ID: id, Remove: true}})
}

// recomputeLeaf rebuilds the summary of a leaf cell from its members,
// against the current landmark tables.
func (ix *Index) recomputeLeaf(idx int32) bool {
	base := int(idx) * ix.m
	leaf := ix.grid.Layout().LeafLevel()
	lm := ix.lmView()
	changed := false
	var mins, maxs []float64
	for j := 0; j < ix.m; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, u := range ix.grid.CellUsers(idx) {
			d := lm.Dist(j, u)
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		if ix.minSum[leaf][base+j] != lo || ix.maxSum[leaf][base+j] != hi {
			if mins == nil {
				mins, maxs = ix.writableSums(leaf)
			}
			mins[base+j] = lo
			maxs[base+j] = hi
			changed = true
		}
	}
	if ix.labels != nil {
		var mask uint64
		for _, u := range ix.grid.CellUsers(idx) {
			mask |= ix.labels[u]
		}
		if ix.labelSum[leaf][idx] != mask {
			ix.writableLabels(leaf)[idx] = mask
			changed = true
		}
	}
	return changed
}

// recomputeFromChildren rebuilds an internal cell's summary as the
// element-wise min/max over its s×s children; reports whether it changed.
func (ix *Index) recomputeFromChildren(level int, idx int32) bool {
	layout := ix.grid.Layout()
	kids := layout.ChildIndices(level, idx, nil)
	base := int(idx) * ix.m
	changed := false
	var mins, maxs []float64
	for j := 0; j < ix.m; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, c := range kids {
			cb := int(c) * ix.m
			if v := ix.minSum[level+1][cb+j]; v < lo {
				lo = v
			}
			if v := ix.maxSum[level+1][cb+j]; v > hi {
				hi = v
			}
		}
		if ix.minSum[level][base+j] != lo || ix.maxSum[level][base+j] != hi {
			if mins == nil {
				mins, maxs = ix.writableSums(level)
			}
			mins[base+j] = lo
			maxs[base+j] = hi
			changed = true
		}
	}
	if ix.labels != nil {
		var mask uint64
		for _, c := range kids {
			mask |= ix.labelSum[level+1][c]
		}
		if ix.labelSum[level][idx] != mask {
			ix.writableLabels(level)[idx] = mask
			changed = true
		}
	}
	return changed
}

// propagateDirty recomputes ancestors of every leaf the batch touched,
// level by level with per-cell deduplication, stopping each chain as soon as
// a recomputation reports no change. Running this once per batch instead of
// once per move is what amortizes propagateUp across the batch.
func (ix *Index) propagateDirty() {
	if len(ix.dirtyLeaves) == 0 {
		return
	}
	layout := ix.grid.Layout()
	cur := ix.dirtyLeaves
	for l := layout.LeafLevel(); l > 0 && len(cur) > 0; l-- {
		seen := make(map[int32]bool, len(cur))
		for idx := range cur {
			parent := layout.ParentIndex(l, idx)
			if _, done := seen[parent]; done {
				continue
			}
			seen[parent] = ix.recomputeFromChildren(l-1, parent)
		}
		next := make(map[int32]struct{}, len(seen))
		for parent, changed := range seen {
			if changed {
				next[parent] = struct{}{}
			}
		}
		cur = next
	}
	clear(ix.dirtyLeaves)
}

// onInsert widens summaries for a user that joined a leaf cell. Widening is
// cheap: compare the mover's landmark vector against m̌/m̂ (§5.1).
func (ix *Index) onInsert(leaf int32, id int32) {
	base := int(leaf) * ix.m
	l := ix.grid.Layout().LeafLevel()
	lm := ix.lmView()
	changed := false
	var mins, maxs []float64
	for j := 0; j < ix.m; j++ {
		d := lm.Dist(j, id)
		if d < ix.minSum[l][base+j] {
			if mins == nil {
				mins, maxs = ix.writableSums(l)
			}
			mins[base+j] = d
			changed = true
		}
		if d > ix.maxSum[l][base+j] {
			if mins == nil {
				mins, maxs = ix.writableSums(l)
			}
			maxs[base+j] = d
			changed = true
		}
	}
	if ix.labels != nil {
		if lbl := ix.labels[id]; lbl != 0 {
			if old := ix.labelSum[l][leaf]; old|lbl != old {
				ix.writableLabels(l)[leaf] = old | lbl
				changed = true
			}
		}
	}
	if changed {
		ix.dirtyLeaves[leaf] = struct{}{}
	}
}

// Close stops the background maintenance of a privately-owned substrate
// (NewSocial). Indexes attached to a shared substrate (NewShared) never
// close it — the substrate's owner does. Idempotent.
func (ix *Index) Close() {
	if ix.ownsSub && ix.sub != nil {
		ix.sub.Close()
	}
}

// RebuildCH synchronously re-contracts the current social graph through the
// substrate; see Social.RebuildCH. False when the index has no substrate or
// hierarchy.
func (ix *Index) RebuildCH() bool {
	if ix.sub == nil {
		return false
	}
	return ix.sub.RebuildCH()
}

// RebuildDisabledLandmarks synchronously restores disabled landmark tables
// through the substrate; see Social.RebuildDisabledLandmarks. Returns how
// many landmarks it restored.
func (ix *Index) RebuildDisabledLandmarks() int {
	if ix.sub == nil {
		return 0
	}
	return ix.sub.RebuildDisabledLandmarks()
}

// recomputeAllLeavesLocked re-derives every leaf summary against the current
// landmark tables (after one or more full-table installs), marking changed
// leaves for upward propagation. Caller holds mu and publishes afterwards.
func (ix *Index) recomputeAllLeavesLocked() {
	layout := ix.grid.Layout()
	leaf := layout.LeafLevel()
	for idx := int32(0); idx < int32(layout.NumCells(leaf)); idx++ {
		if ix.recomputeLeaf(idx) {
			ix.dirtyLeaves[idx] = struct{}{}
		}
	}
}

// SocialStats is a point-in-time view of the social dimension: overlay
// shape, edge-op counters and landmark maintenance health.
type SocialStats struct {
	// SocialEpoch is the social graph version (+1 per batch with edge ops).
	SocialEpoch uint64
	// NumEdges is the current undirected edge count.
	NumEdges int
	// PatchedVertices is the overlay delta size awaiting compaction.
	PatchedVertices int
	// Compactions counts delta folds back into pure CSR.
	Compactions int64
	// EdgeAdds/EdgeRemoves/EdgeReweights/EdgeNoops count effective ops.
	EdgeAdds, EdgeRemoves, EdgeReweights, EdgeNoops int64
	// DisabledLandmarks is how many landmarks currently sit out of bounds
	// awaiting rebuild.
	DisabledLandmarks int
	// LandmarkRepairs counts incremental repairs completed within budget;
	// RepairedVertices the table entries they rewrote; LandmarkDisables
	// budget overruns; LandmarkRebuilds full tables installed.
	LandmarkRepairs, RepairedVertices, LandmarkDisables, LandmarkRebuilds int64
	// LandmarkForcedInstalls counts landmark tables recomputed and installed
	// under the writer lock after the asynchronous rebuild lost the install
	// race 8 times in a row (the rate-limited anti-starvation fallback).
	LandmarkForcedInstalls int64

	// CHBuilt reports whether the substrate owns a contraction hierarchy.
	CHBuilt bool
	// CHBuiltEpoch is the social epoch the current hierarchy was built (or
	// last repaired) at; the *-CH variants serve iff it equals SocialEpoch.
	CHBuiltEpoch uint64
	// CHRepairs counts in-place hierarchy repairs (decrease-only batches
	// within the cone budget); CHRecontracted the vertices they
	// re-contracted; CHRepairFallbacks repair attempts deferred to the
	// rebuild pipeline (removals, increases or budget overruns);
	// CHRebuilds full hierarchies installed (async, sync and forced);
	// CHForcedInstalls the subset installed under the writer lock by the
	// anti-starvation fallback.
	CHRepairs, CHRecontracted, CHRepairFallbacks, CHRebuilds, CHForcedInstalls int64
}

// SocialStats reports the social dimension's counters (zero value for
// static indexes).
func (ix *Index) SocialStats() SocialStats {
	if ix.sub == nil {
		return SocialStats{}
	}
	return ix.sub.Stats()
}

// onRemove narrows summaries after a user left a leaf cell. Only components
// the mover was responsible for are recomputed over the remaining members.
func (ix *Index) onRemove(leaf int32, id int32) {
	base := int(leaf) * ix.m
	l := ix.grid.Layout().LeafLevel()
	lm := ix.lmView()
	// A labeled leaver may have been the only carrier of its label bits in
	// the cell; recomputeLeaf re-derives the mask over the remaining members
	// (narrowing on removal can't be decided locally, same as min/max).
	responsible := ix.labels != nil && ix.labels[id] != 0
	for j := 0; !responsible && j < ix.m; j++ {
		d := lm.Dist(j, id)
		if d == ix.minSum[l][base+j] || d == ix.maxSum[l][base+j] {
			responsible = true
		}
	}
	if !responsible {
		return
	}
	if ix.recomputeLeaf(leaf) {
		ix.dirtyLeaves[leaf] = struct{}{}
	}
}
