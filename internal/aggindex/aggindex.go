// Package aggindex implements the paper's Aggregate Index (§5.1): a
// multi-level regular grid whose cells carry *social summaries* — for each
// of the M landmarks, the minimum (m̌) and maximum (m̂) shortest-path
// distance between any user in the cell and that landmark. The summaries
// extend the landmark triangle-inequality bound from individual vertices to
// whole groups (Lemma 2), yielding the combined MINF lower bound that drives
// the AIS branch-and-bound search (Theorem 1).
//
// The index wraps the plain spatial grid for membership and occupancy, and
// maintains summaries under location updates exactly as §5.1 prescribes:
// deletion from the old cell (recomputing components the mover was
// responsible for), insertion into the new one (widening m̌/m̂ as needed),
// with changes propagating recursively to upper levels.
//
// Concurrency follows the epoch/snapshot model of the underlying grid, with
// one addition: grid membership and social summaries are published together
// as a single Snapshot through one atomic pointer, so a reader can never
// pair new membership with stale summaries (which would break the Lemma 2
// bounds). Writers apply batches of updates copy-on-write and defer the
// upward summary propagation to the end of the batch, amortizing both the
// array duplication and the propagateUp recomputation across all moves of
// the batch before a single Publish installs the next epoch.
//
// With NewSocial the index additionally owns the *social* dimension of the
// world: the mutable edge overlay over the friendship graph and the dynamic
// landmark tables. Edge ops flow through the same Apply batches as location
// ops, and every published Snapshot carries the social graph, the landmark
// set and the summaries of one consistent epoch — queries can never pair a
// mutated graph with landmark tables or cell summaries computed on another
// graph version. Landmark tables are repaired incrementally per edge op
// (bounded re-relaxation, see landmark.Dynamic); a landmark whose repair
// blows the budget is disabled (excluded from all bounds, which only
// loosens pruning) and restored by an asynchronous full rebuild.
//
// When configured with a contraction hierarchy (Config.CH), the index owns
// its churn survival too: every Snapshot publishes the hierarchy tagged with
// the social epoch it was built at, decrease-only edge batches repair it in
// place (ch.Dynamic.Repair), and stale hierarchies are rebuilt by a
// background loop mirroring the landmark one. Both background loops escalate
// to a rate-limited install-under-writer-lock after 8 consecutive lost
// install races, so neither pruning degradation nor *-CH refusal can persist
// unboundedly under sustained churn.
package aggindex

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"ssrq/internal/ch"
	"ssrq/internal/graph"
	"ssrq/internal/landmark"
	"ssrq/internal/spatial"
)

// OpKind discriminates location ops from edge ops in one update stream.
type OpKind uint8

const (
	// OpLocation is a move/locate (Remove false) or a location removal
	// (Remove true, To ignored). The zero Kind, so plain location Ops keep
	// their historical literal form.
	OpLocation OpKind = iota
	// OpEdgeUpsert inserts undirected edge (U,V) with weight W, or updates
	// its weight when present.
	OpEdgeUpsert
	// OpEdgeRemove deletes undirected edge (U,V); a no-op when absent.
	OpEdgeRemove
)

// Op is one world update: a location op (Kind OpLocation, using ID/To/
// Remove) or a social edge op (Kind OpEdgeUpsert/OpEdgeRemove, using U/V/W).
type Op struct {
	ID     int32
	To     spatial.Point
	Remove bool

	Kind OpKind
	U, V int32
	W    float64
}

// Snapshot is one immutable epoch of the aggregate index: a grid snapshot,
// the social graph and landmark set current at publication, and the min/max
// landmark summaries computed against exactly those. Readers load it once
// (no lock) and evaluate membership, occupancy, graph traversals and Lemma-2
// bounds against a single consistent version.
type Snapshot struct {
	g           *spatial.Snapshot
	soc         *graph.Graph  // nil for indexes built without a social graph
	lm          *landmark.Set // landmark epoch the summaries were computed on
	hier        *ch.CH        // nil when the index owns no hierarchy
	hierEpoch   uint64        // social epoch hier was built at
	minSum      [][]float64   // [level][cell*m + j]
	maxSum      [][]float64
	m           int
	disabledLm  uint64 // landmarks excluded from bounds in this epoch
	epoch       uint64
	socialEpoch uint64
	publishedAt time.Time
}

// Grid returns the spatial snapshot this epoch pairs the summaries with.
func (s *Snapshot) Grid() *spatial.Snapshot { return s.g }

// SocialGraph returns this epoch's social graph (nil when the index was
// built with New rather than NewSocial).
func (s *Snapshot) SocialGraph() *graph.Graph { return s.soc }

// Landmarks returns this epoch's landmark set — the tables every summary in
// this snapshot was computed from.
func (s *Snapshot) Landmarks() *landmark.Set { return s.lm }

// Epoch returns the index epoch (0 at construction, +1 per published batch).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// SocialEpoch returns the social graph version (0 at construction, +1 per
// batch that contained edge ops). CH-based variants compare it against their
// build epoch to detect staleness.
func (s *Snapshot) SocialEpoch() uint64 { return s.socialEpoch }

// PublishedAt returns when this epoch was installed.
func (s *Snapshot) PublishedAt() time.Time { return s.publishedAt }

// Hierarchy returns the contraction hierarchy published with this epoch
// (nil when the index owns none). It answers exact distances only for the
// graph of HierarchyEpoch — callers must check HierarchyFresh before serving
// CH-backed queries from it.
func (s *Snapshot) Hierarchy() *ch.CH { return s.hier }

// HierarchyEpoch returns the social epoch the published hierarchy was built
// (or last repaired) at.
func (s *Snapshot) HierarchyEpoch() uint64 { return s.hierEpoch }

// HierarchyFresh reports whether the published hierarchy describes exactly
// this snapshot's social graph.
func (s *Snapshot) HierarchyFresh() bool {
	return s.hier != nil && s.hierEpoch == s.socialEpoch
}

// MinSummary returns m̌[j] for the cell, the minimum graph distance between
// any member user and landmark j (+Inf for an empty cell).
func (s *Snapshot) MinSummary(level int, idx int32, j int) float64 {
	return s.minSum[level][int(idx)*s.m+j]
}

// MaxSummary returns m̂[j] for the cell (−Inf for an empty cell).
func (s *Snapshot) MaxSummary(level int, idx int32, j int) float64 {
	return s.maxSum[level][int(idx)*s.m+j]
}

// SocialLowerBound evaluates Lemma 2: a lower bound on the graph distance
// between the query vertex (whose landmark vector is qvec) and every user in
// the cell. Empty cells return +Inf.
func (s *Snapshot) SocialLowerBound(level int, idx int32, qvec []float64) float64 {
	return lemma2(s.minSum[level], s.maxSum[level], int(idx)*s.m, s.m, s.disabledLm, qvec)
}

// SocialLowerBoundsInto evaluates Lemma 2 for every cell of one level in a
// single flat pass over the summary arrays, appending one bound per cell into
// dst (resized to the level's cell count). Equivalent to calling
// SocialLowerBound per cell — the two share the per-cell kernel — but keeps
// the summary rows hot in cache and lets pooled callers (AIS seeding, the
// sharded fan-out's admission bound) evaluate a whole level without any
// per-cell call or allocation.
func (s *Snapshot) SocialLowerBoundsInto(level int, qvec []float64, dst []float64) []float64 {
	mins := s.minSum[level]
	maxs := s.maxSum[level]
	n := len(mins) / s.m
	if cap(dst) < n {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
	}
	for idx := 0; idx < n; idx++ {
		dst[idx] = lemma2(mins, maxs, idx*s.m, s.m, s.disabledLm, qvec)
	}
	return dst
}

// lemma2 is the per-cell Lemma-2 kernel over one cell's summary row
// (mins/maxs[base : base+m]) — shared by the single-cell and batched entry
// points so they cannot diverge.
func lemma2(mins, maxs []float64, base, m int, disabled uint64, qvec []float64) float64 {
	best := 0.0
	for j := 0; j < m; j++ {
		if disabled&(1<<uint(j)) != 0 {
			// Landmark table stale under edge churn: its summaries carry no
			// information until the rebuild re-enables it.
			continue
		}
		mq := qvec[j]
		lo, hi := mins[base+j], maxs[base+j]
		switch {
		case mq < lo:
			if math.IsInf(lo, 1) {
				// Either the cell is empty, or no member is reachable from
				// landmark j while the query is: both prune.
				return graph.Infinity
			}
			if d := lo - mq; d > best {
				best = d
			}
		case mq > hi:
			if math.IsInf(mq, 1) {
				// Query unreachable from landmark j but every member is:
				// different components, infinite distance.
				if !math.IsInf(hi, 1) {
					return graph.Infinity
				}
				continue
			}
			if d := mq - hi; d > best {
				best = d
			}
		}
	}
	return best
}

// Index is the AIS aggregate index. Readers call Snapshot() and work
// lock-free against the returned epoch. Mutations (Apply, or the Move/
// SetLocated/RemoveLocation single-op conveniences) serialize on an internal
// writer mutex, build the next epoch copy-on-write, and publish grid,
// social state and summaries atomically as one Snapshot; they never block
// readers.
type Index struct {
	grid *spatial.Grid
	lm   *landmark.Set // construction-time set; live tables come from dyn
	m    int

	// Social dimension (nil for static indexes built with New): the mutable
	// edge overlay and the dynamic landmark maintenance layer. g0 is the
	// construction graph, published as-is when the overlay is absent.
	ov  *graph.Overlay
	dyn *landmark.Dynamic
	g0  *graph.Graph

	mu        sync.Mutex // writer side: guards everything below and grid mutation
	published atomic.Pointer[Snapshot]

	// Working summaries for the epoch under construction. A level whose
	// sumStamp differs from epoch is still shared with the published
	// snapshot and must be duplicated before its first write of the batch.
	minSum   [][]float64
	maxSum   [][]float64
	sumStamp []uint64
	epoch    uint64

	socialEpoch uint64 // bumped per batch containing effective edge ops
	compactAt   int    // overlay delta size that triggers compaction

	// Edge-op counters (writer-side; exposed via SocialStats).
	edgeAdds, edgeRemoves, edgeReweights, edgeNoops int64

	// Asynchronous landmark rebuild: at most one loop at a time, re-kicked
	// by Apply while any landmark stays disabled. rebuildPending records a
	// kick that arrived while a loop was already running, so the loop takes
	// another lap instead of stranding a freshly disabled landmark.
	rebuildActive  atomic.Bool
	rebuildPending atomic.Bool

	// Contraction-hierarchy maintenance (nil chDyn = no hierarchy): the same
	// kick/loop/pending protocol as the landmark rebuild, plus the in-place
	// repair attempted inside Apply for decrease-only batches.
	chDyn            *ch.Dynamic
	chRebuildActive  atomic.Bool
	chRebuildPending atomic.Bool

	// Forced-install fallback state: when an async rebuild loses the install
	// race 8 times in a row, the loop installs under the writer lock instead
	// of giving up — at most once per forcedEvery per structure, so sustained
	// churn bounds the degraded window deterministically instead of starving
	// the rebuild forever. Timestamps and counters are mu-guarded.
	forcedEvery      time.Duration
	lmLastForced     time.Time
	chLastForced     time.Time
	lmForcedInstalls int64
	chForcedInstalls int64

	// Background-goroutine lifecycle: closed stops new rebuild loops and
	// aborts running ones at their next cancellation point; bg tracks them so
	// Close can wait. bg.Add happens under mu to serialize against Close.
	closed atomic.Bool
	bg     sync.WaitGroup

	// testBeforeInstall, when non-nil, runs in the rebuild loops after the
	// lock-free recompute and before the install takes the writer lock —
	// tests set it (before any Apply, so no concurrent reader exists) to
	// deterministically make an install attempt lose the epoch race.
	testBeforeInstall func()

	// dirtyLeaves collects leaves whose summaries changed during the current
	// batch; upward propagation runs once over them before Publish.
	dirtyLeaves map[int32]struct{}
}

// Config tunes the social dimension of NewSocial.
type Config struct {
	// RepairBudget caps per-landmark per-op incremental repair work before
	// the landmark is disabled and rebuilt asynchronously (default 256).
	RepairBudget int
	// CompactThreshold is the overlay delta size (patched vertices) that
	// triggers folding the delta back into a pure CSR (default
	// max(1024, n/8)).
	CompactThreshold int
	// CH hands the index ownership of an epoch-tagged contraction hierarchy
	// (built by the caller against the construction graph, social epoch 0).
	// Apply then repairs it in place for decrease-only edge batches, stale
	// hierarchies are rebuilt asynchronously beside the landmark loop, and
	// every Snapshot publishes the hierarchy tagged with its build epoch.
	CH *ch.Dynamic
	// ForcedInstallInterval rate-limits the install-under-writer-lock
	// fallback that bounds rebuild starvation: at most one forced landmark
	// install event and one forced CH install per interval. 0 selects the 2s
	// default; negative disables forced installs (pure optimistic rebuilds).
	ForcedInstallInterval time.Duration
}

// New builds a static aggregate index over an existing grid and landmark
// set: location updates only, no social churn (Snapshot.SocialGraph is nil).
// The grid must not be mutated behind the index's back afterwards: the index
// becomes the grid's single writer.
func New(grid *spatial.Grid, lm *landmark.Set) (*Index, error) {
	return build(grid, lm, nil, Config{})
}

// NewSocial builds the full dynamic index: grid, social graph g and landmark
// tables all mutable through Apply, published together per epoch. When the
// landmark count exceeds what dynamic maintenance supports (64), the index
// still builds but rejects edge ops (SupportsEdgeChurn reports false).
func NewSocial(grid *spatial.Grid, lm *landmark.Set, g *graph.Graph, cfg Config) (*Index, error) {
	if g == nil {
		return nil, fmt.Errorf("aggindex: nil social graph")
	}
	return build(grid, lm, g, cfg)
}

func build(grid *spatial.Grid, lm *landmark.Set, g *graph.Graph, cfg Config) (*Index, error) {
	if grid == nil || lm == nil {
		return nil, fmt.Errorf("aggindex: nil grid or landmark set")
	}
	ix := &Index{
		grid:        grid,
		lm:          lm,
		m:           lm.M(),
		chDyn:       cfg.CH,
		forcedEvery: cfg.ForcedInstallInterval,
		dirtyLeaves: make(map[int32]struct{}),
	}
	if ix.forcedEvery == 0 {
		ix.forcedEvery = 2 * time.Second
	}
	if g != nil {
		ix.g0 = g
		ix.ov = graph.NewOverlay(g)
		dyn, err := landmark.NewDynamic(lm, cfg.RepairBudget)
		if err == nil {
			ix.dyn = dyn
		} else {
			// Too many landmarks for dynamic maintenance: fall back to a
			// static social graph (queries still see it in snapshots, but
			// edge ops are rejected upstream via SupportsEdgeChurn).
			ix.ov = nil
		}
		ix.compactAt = cfg.CompactThreshold
		if ix.compactAt <= 0 {
			ix.compactAt = max(1024, g.NumVertices()/8)
		}
	}
	layout := grid.Layout()
	ix.sumStamp = make([]uint64, layout.Levels)
	for l := 0; l < layout.Levels; l++ {
		size := layout.NumCells(l) * ix.m
		mins := make([]float64, size)
		maxs := make([]float64, size)
		for i := range mins {
			mins[i] = math.Inf(1)
			maxs[i] = math.Inf(-1)
		}
		ix.minSum = append(ix.minSum, mins)
		ix.maxSum = append(ix.maxSum, maxs)
	}
	// Leaf summaries from members, then parents from children. Construction
	// runs at epoch 0 with all stamps already 0, so writes go in place.
	leafLevel := layout.LeafLevel()
	for idx := int32(0); idx < int32(layout.NumCells(leafLevel)); idx++ {
		ix.recomputeLeaf(idx)
	}
	for l := leafLevel - 1; l >= 0; l-- {
		for idx := int32(0); idx < int32(layout.NumCells(l)); idx++ {
			ix.recomputeFromChildren(l, idx)
		}
	}
	ix.publishLocked()
	return ix, nil
}

// Snapshot returns the most recently published epoch; immutable and safe
// for unlimited concurrent readers.
func (ix *Index) Snapshot() *Snapshot { return ix.published.Load() }

// Grid returns the underlying spatial grid (writer-side handle).
func (ix *Index) Grid() *spatial.Grid { return ix.grid }

// Landmarks returns the landmark set the summaries are built on
// (writer-side view; concurrent readers should use Snapshot().Landmarks).
func (ix *Index) Landmarks() *landmark.Set { return ix.lmView() }

// lmView returns the landmark tables the writer must compute against right
// now: the dynamic working/committed set when maintenance is on, else the
// static construction set.
func (ix *Index) lmView() *landmark.Set {
	if ix.dyn != nil {
		return ix.dyn.View()
	}
	return ix.lm
}

// SupportsEdgeChurn reports whether the index can ingest edge ops (built
// with NewSocial and a landmark count the dynamic layer supports).
func (ix *Index) SupportsEdgeChurn() bool { return ix.ov != nil && ix.dyn != nil }

// Layout returns the grid geometry.
func (ix *Index) Layout() *spatial.Layout { return ix.grid.Layout() }

// MinSummary returns the working-state m̌[j] (writer-side view; readers use
// Snapshot().MinSummary).
func (ix *Index) MinSummary(level int, idx int32, j int) float64 {
	return ix.minSum[level][int(idx)*ix.m+j]
}

// MaxSummary returns the working-state m̂[j] (writer-side view).
func (ix *Index) MaxSummary(level int, idx int32, j int) float64 {
	return ix.maxSum[level][int(idx)*ix.m+j]
}

// SocialLowerBound evaluates Lemma 2 against the working state (writer-side
// view; readers use Snapshot().SocialLowerBound).
func (ix *Index) SocialLowerBound(level int, idx int32, qvec []float64) float64 {
	s := Snapshot{minSum: ix.minSum, maxSum: ix.maxSum, m: ix.m, disabledLm: ix.lmView().DisabledMask()}
	return s.SocialLowerBound(level, idx, qvec)
}

// writableSums duplicates one level's summary arrays on first write per
// epoch, so the published snapshot keeps its own copies.
func (ix *Index) writableSums(level int) (mins, maxs []float64) {
	if ix.sumStamp[level] != ix.epoch {
		ix.minSum[level] = append([]float64(nil), ix.minSum[level]...)
		ix.maxSum[level] = append([]float64(nil), ix.maxSum[level]...)
		ix.sumStamp[level] = ix.epoch
	}
	return ix.minSum[level], ix.maxSum[level]
}

// publishLocked installs the working state as the next epoch. Caller holds
// mu (or is the constructor).
func (ix *Index) publishLocked() {
	s := &Snapshot{
		g:           ix.grid.Publish(),
		soc:         ix.g0,
		minSum:      append([][]float64(nil), ix.minSum...),
		maxSum:      append([][]float64(nil), ix.maxSum...),
		m:           ix.m,
		epoch:       ix.epoch,
		socialEpoch: ix.socialEpoch,
		publishedAt: time.Now(),
	}
	if ix.ov != nil {
		s.soc = ix.ov.Freeze()
	}
	if ix.dyn != nil {
		s.lm = ix.dyn.Commit()
	} else {
		s.lm = ix.lm
	}
	if ix.chDyn != nil {
		s.hier, s.hierEpoch = ix.chDyn.Current()
	}
	s.disabledLm = s.lm.DisabledMask()
	ix.published.Store(s)
	ix.epoch++
}

// Apply executes a batch of world updates as one epoch: every op mutates
// the working copy (grid membership and coordinates for location ops; edge
// overlay, landmark tables and leaf-level summaries for edge ops), upward
// summary propagation runs once over the leaves the batch touched, and a
// single Publish makes the whole batch visible atomically. Safe concurrently
// with readers; concurrent Apply calls serialize. Edge ops on an index
// without edge-churn support are silently skipped (callers gate on
// SupportsEdgeChurn).
func (ix *Index) Apply(ops []Op) {
	if len(ops) == 0 {
		return
	}
	ix.mu.Lock()
	var dirtyVerts []graph.VertexID
	var chChanges []ch.EdgeChange
	edgeOps := false
	for _, op := range ops {
		switch op.Kind {
		case OpLocation:
			ix.applyOne(op)
		case OpEdgeUpsert, OpEdgeRemove:
			if !ix.SupportsEdgeChurn() {
				continue
			}
			var change ch.EdgeChange
			var changed bool
			dirtyVerts, change, changed = ix.applyEdge(op, dirtyVerts)
			if changed && ix.chDyn != nil {
				chChanges = append(chChanges, change)
			}
			edgeOps = edgeOps || changed
		}
	}
	if edgeOps {
		prevSocial := ix.socialEpoch
		ix.socialEpoch++
		if ix.chDyn != nil {
			// In-place hierarchy repair: only worth attempting when the
			// hierarchy was current before this batch (a lagging one misses
			// intermediate changes and is already on the rebuild path), and
			// only possible for decrease-only batches within the cone budget
			// — Repair itself enforces both and reports failure otherwise.
			if _, built := ix.chDyn.Current(); built == prevSocial {
				ix.chDyn.Repair(ix.ov.Working(), chChanges, ix.socialEpoch)
			}
		}
		// Landmark-table entries changed for dirtyVerts: the summaries of
		// their cells were computed from the old distances and must be
		// re-derived before this epoch pairs them with the new tables. The
		// vertex list is heavily duplicated (one entry per landmark repair
		// per op), so dedupe to unique leaves and recompute each once, after
		// all of the batch's table updates have landed.
		seen := make(map[int32]struct{}, len(dirtyVerts))
		for _, v := range dirtyVerts {
			leaf := ix.grid.LeafOf(v)
			if leaf < 0 {
				continue
			}
			if _, done := seen[leaf]; done {
				continue
			}
			seen[leaf] = struct{}{}
			if ix.recomputeLeaf(leaf) {
				ix.dirtyLeaves[leaf] = struct{}{}
			}
		}
		if ix.ov.PatchedCount() >= ix.compactAt {
			ix.ov.Compact()
		}
	}
	ix.propagateDirty()
	ix.publishLocked()
	disabled := false
	if ix.dyn != nil {
		disabled = ix.dyn.View().NumDisabled() > 0
	}
	chStale := false
	if ix.chDyn != nil {
		_, built := ix.chDyn.Current()
		chStale = built != ix.socialEpoch
	}
	ix.mu.Unlock()
	if disabled {
		ix.kickRebuild()
	}
	if chStale {
		ix.kickCHRebuild()
	}
}

// applyEdge performs one edge op on the overlay and repairs the landmark
// tables, accumulating the vertices whose landmark distances changed.
// Reports the effective change (for hierarchy repair) and whether the op
// actually changed the graph.
func (ix *Index) applyEdge(op Op, dirty []graph.VertexID) ([]graph.VertexID, ch.EdgeChange, bool) {
	u, v := op.U, op.V
	oldW, had := ix.ov.EdgeWeight(u, v)
	change := ch.EdgeChange{U: u, V: v, OldW: oldW, HadOld: had}
	switch op.Kind {
	case OpEdgeUpsert:
		change.NewW, change.HasNew = op.W, true
		if had && oldW == op.W {
			ix.edgeNoops++
			return dirty, change, false
		}
		if _, err := ix.ov.SetEdge(u, v, op.W); err != nil {
			// Malformed ops are rejected upstream; a failure here means a
			// caller bypassed validation — count and skip.
			ix.edgeNoops++
			return dirty, change, false
		}
		if had {
			ix.edgeReweights++
		} else {
			ix.edgeAdds++
		}
		return append(dirty, ix.dyn.EdgeChanged(ix.ov.Working(), u, v, oldW, had, op.W, true)...), change, true
	case OpEdgeRemove:
		if !had {
			ix.edgeNoops++
			return dirty, change, false
		}
		if _, err := ix.ov.RemoveEdge(u, v); err != nil {
			ix.edgeNoops++
			return dirty, change, false
		}
		ix.edgeRemoves++
		return append(dirty, ix.dyn.EdgeChanged(ix.ov.Working(), u, v, oldW, true, 0, false)...), change, true
	}
	return dirty, change, false
}

// applyOne performs one op's membership change and leaf-level summary
// maintenance, deferring upward propagation to the end of the batch.
func (ix *Index) applyOne(op Op) {
	if op.Remove {
		leaf := ix.grid.LeafOf(op.ID)
		if leaf < 0 {
			return
		}
		ix.grid.RemoveLocation(op.ID)
		ix.onRemove(leaf, op.ID)
		return
	}
	oldLeaf := ix.grid.LeafOf(op.ID)
	ix.grid.Move(op.ID, op.To)
	newLeaf := ix.grid.LeafOf(op.ID)
	if oldLeaf == newLeaf {
		return // intra-cell move: coordinates updated, summaries unaffected
	}
	if oldLeaf >= 0 {
		ix.onRemove(oldLeaf, op.ID)
	}
	if newLeaf >= 0 {
		ix.onInsert(newLeaf, op.ID)
	}
}

// Move relocates a user, maintaining grid membership and social summaries
// (single-op batch). Safe concurrently with readers.
func (ix *Index) Move(id int32, to spatial.Point) {
	ix.Apply([]Op{{ID: id, To: to}})
}

// SetLocated indexes a previously unlocated user. Safe concurrently with
// readers. (Move on an unlocated user is equivalent.)
func (ix *Index) SetLocated(id int32, p spatial.Point) {
	ix.Apply([]Op{{ID: id, To: p}})
}

// RemoveLocation unindexes a user. Safe concurrently with readers.
func (ix *Index) RemoveLocation(id int32) {
	ix.Apply([]Op{{ID: id, Remove: true}})
}

// recomputeLeaf rebuilds the summary of a leaf cell from its members,
// against the current landmark tables.
func (ix *Index) recomputeLeaf(idx int32) bool {
	base := int(idx) * ix.m
	leaf := ix.grid.Layout().LeafLevel()
	lm := ix.lmView()
	changed := false
	var mins, maxs []float64
	for j := 0; j < ix.m; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, u := range ix.grid.CellUsers(idx) {
			d := lm.Dist(j, u)
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		if ix.minSum[leaf][base+j] != lo || ix.maxSum[leaf][base+j] != hi {
			if mins == nil {
				mins, maxs = ix.writableSums(leaf)
			}
			mins[base+j] = lo
			maxs[base+j] = hi
			changed = true
		}
	}
	return changed
}

// recomputeFromChildren rebuilds an internal cell's summary as the
// element-wise min/max over its s×s children; reports whether it changed.
func (ix *Index) recomputeFromChildren(level int, idx int32) bool {
	layout := ix.grid.Layout()
	kids := layout.ChildIndices(level, idx, nil)
	base := int(idx) * ix.m
	changed := false
	var mins, maxs []float64
	for j := 0; j < ix.m; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, c := range kids {
			cb := int(c) * ix.m
			if v := ix.minSum[level+1][cb+j]; v < lo {
				lo = v
			}
			if v := ix.maxSum[level+1][cb+j]; v > hi {
				hi = v
			}
		}
		if ix.minSum[level][base+j] != lo || ix.maxSum[level][base+j] != hi {
			if mins == nil {
				mins, maxs = ix.writableSums(level)
			}
			mins[base+j] = lo
			maxs[base+j] = hi
			changed = true
		}
	}
	return changed
}

// propagateDirty recomputes ancestors of every leaf the batch touched,
// level by level with per-cell deduplication, stopping each chain as soon as
// a recomputation reports no change. Running this once per batch instead of
// once per move is what amortizes propagateUp across the batch.
func (ix *Index) propagateDirty() {
	if len(ix.dirtyLeaves) == 0 {
		return
	}
	layout := ix.grid.Layout()
	cur := ix.dirtyLeaves
	for l := layout.LeafLevel(); l > 0 && len(cur) > 0; l-- {
		seen := make(map[int32]bool, len(cur))
		for idx := range cur {
			parent := layout.ParentIndex(l, idx)
			if _, done := seen[parent]; done {
				continue
			}
			seen[parent] = ix.recomputeFromChildren(l-1, parent)
		}
		next := make(map[int32]struct{}, len(seen))
		for parent, changed := range seen {
			if changed {
				next[parent] = struct{}{}
			}
		}
		cur = next
	}
	clear(ix.dirtyLeaves)
}

// onInsert widens summaries for a user that joined a leaf cell. Widening is
// cheap: compare the mover's landmark vector against m̌/m̂ (§5.1).
func (ix *Index) onInsert(leaf int32, id int32) {
	base := int(leaf) * ix.m
	l := ix.grid.Layout().LeafLevel()
	lm := ix.lmView()
	changed := false
	var mins, maxs []float64
	for j := 0; j < ix.m; j++ {
		d := lm.Dist(j, id)
		if d < ix.minSum[l][base+j] {
			if mins == nil {
				mins, maxs = ix.writableSums(l)
			}
			mins[base+j] = d
			changed = true
		}
		if d > ix.maxSum[l][base+j] {
			if mins == nil {
				mins, maxs = ix.writableSums(l)
			}
			maxs[base+j] = d
			changed = true
		}
	}
	if changed {
		ix.dirtyLeaves[leaf] = struct{}{}
	}
}

// kickRebuild starts the asynchronous landmark rebuild loop, or records the
// kick for the running loop to pick up before it exits.
func (ix *Index) kickRebuild() {
	if ix.dyn == nil {
		return
	}
	if !ix.rebuildActive.CompareAndSwap(false, true) {
		ix.rebuildPending.Store(true)
		return
	}
	if !ix.spawn(ix.rebuildLoop) {
		ix.rebuildActive.Store(false)
	}
}

// spawn launches fn on a Close-tracked goroutine. The bg.Add runs under mu so
// it cannot race a concurrent Close's Wait; after Close it refuses (false).
func (ix *Index) spawn(fn func()) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed.Load() {
		return false
	}
	ix.bg.Add(1)
	go func() {
		defer ix.bg.Done()
		fn()
	}()
	return true
}

// Close stops the index's background maintenance: no further rebuild
// goroutines start, in-flight ones abort at their next cancellation point
// (between install attempts, or mid-contraction for CH builds), and Close
// returns only after every one has exited. Queries and synchronous mutation
// remain valid after Close; stale structures then stay stale until an
// explicit RebuildDisabledLandmarks/RebuildCH. Idempotent.
func (ix *Index) Close() {
	ix.mu.Lock()
	ix.closed.Store(true)
	ix.mu.Unlock()
	ix.bg.Wait()
}

// rebuildLoop restores disabled landmarks one at a time: it computes a fresh
// distance table against the published snapshot's graph *without holding the
// writer lock* (a full Dijkstra — the expensive part), then briefly takes the
// lock to install it, provided no edge batch landed in between (the table
// would describe a stale graph). Under sustained churn the optimistic path
// can lose that race indefinitely; the 8th consecutive stale attempt
// therefore falls back to a forced install — recomputing the disabled tables
// *under the writer lock*, where the epoch cannot move — rate-limited to one
// event per ForcedInstallInterval, so the disabled-landmark window is
// deterministically bounded by 8 recompute laps plus the interval. Disabled
// landmarks merely loosen bounds in the meantime — they never make them
// wrong.
func (ix *Index) rebuildLoop() {
	for {
		for attempts := 0; attempts < 8; {
			if ix.closed.Load() {
				ix.rebuildActive.Store(false)
				return
			}
			sn := ix.Snapshot()
			mask := sn.Landmarks().DisabledMask()
			if mask == 0 {
				break
			}
			j := bits.TrailingZeros64(mask)
			table := sn.SocialGraph().DistancesFrom(sn.Landmarks().Vertices()[j])
			if ix.testBeforeInstall != nil {
				ix.testBeforeInstall()
			}
			ix.mu.Lock()
			if ix.socialEpoch == sn.SocialEpoch() {
				ix.dyn.InstallTable(j, table)
				ix.recomputeAllLeavesLocked()
				ix.propagateDirty()
				ix.publishLocked()
				attempts = 0
			} else {
				attempts++
				if attempts >= 8 {
					ix.forceInstallLandmarksLocked()
				}
			}
			ix.mu.Unlock()
		}
		ix.rebuildActive.Store(false)
		// Close the lost-wakeup window: a kick that arrived while we were
		// flagged active would otherwise be dropped, stranding a freshly
		// disabled landmark if churn stops here. A missed kick implies a new
		// published batch, so a fresh lap sees a new epoch and can make
		// progress; without one, exit and let the next Apply kick anew.
		if !ix.rebuildPending.Swap(false) {
			return
		}
		if ix.Snapshot().Landmarks().DisabledMask() == 0 ||
			!ix.rebuildActive.CompareAndSwap(false, true) {
			return
		}
	}
}

// forceInstallLandmarksLocked recomputes every disabled landmark table on the
// working graph and installs it, all under the writer lock the caller already
// holds — writers are stalled for the duration (one Dijkstra per disabled
// landmark plus a summary sweep), which is exactly the trade: a bounded write
// stall instead of an unbounded pruning-degradation window. Rate-limited to
// one event per forcedEvery; skipped events leave the old give-up behavior
// (the next Apply re-kicks the optimistic loop).
func (ix *Index) forceInstallLandmarksLocked() {
	if ix.forcedEvery < 0 || time.Since(ix.lmLastForced) < ix.forcedEvery {
		return
	}
	mask := ix.dyn.View().DisabledMask()
	if mask == 0 {
		return
	}
	g := ix.ov.Working()
	for mask != 0 {
		j := bits.TrailingZeros64(mask)
		ix.dyn.InstallTable(j, g.DistancesFrom(ix.dyn.View().Vertices()[j]))
		ix.lmForcedInstalls++
		mask &^= 1 << uint(j)
	}
	ix.recomputeAllLeavesLocked()
	ix.propagateDirty()
	ix.publishLocked()
	ix.lmLastForced = time.Now()
}

// kickCHRebuild starts the asynchronous hierarchy rebuild loop, or records
// the kick for the running loop (same protocol as the landmark rebuild).
func (ix *Index) kickCHRebuild() {
	if ix.chDyn == nil {
		return
	}
	if !ix.chRebuildActive.CompareAndSwap(false, true) {
		ix.chRebuildPending.Store(true)
		return
	}
	if !ix.spawn(ix.chRebuildLoop) {
		ix.chRebuildActive.Store(false)
	}
}

// chRebuildLoop restores hierarchy freshness: it contracts the published
// snapshot's graph from scratch without holding the writer lock, then briefly
// takes the lock to install, provided the social epoch still matches the
// graph the build ran on. Like the landmark loop, the 8th consecutive stale
// attempt escalates to a rate-limited forced install under the writer lock
// (the build then runs with writers stalled, so it cannot lose the race),
// bounding how long the *-CH variants stay refused under sustained churn.
func (ix *Index) chRebuildLoop() {
	stop := func() bool { return ix.closed.Load() }
	for {
		for attempts := 0; attempts < 8; {
			if ix.closed.Load() {
				ix.chRebuildActive.Store(false)
				return
			}
			sn := ix.Snapshot()
			if sn.HierarchyFresh() {
				break
			}
			target := sn.SocialEpoch()
			h, err := ix.chDyn.BuildFresh(sn.SocialGraph(), stop)
			if err != nil { // interrupted: index shutting down
				ix.chRebuildActive.Store(false)
				return
			}
			if ix.testBeforeInstall != nil {
				ix.testBeforeInstall()
			}
			ix.mu.Lock()
			if ix.socialEpoch == target {
				ix.chDyn.Install(h, target)
				ix.publishLocked()
				attempts = 0
			} else {
				attempts++
				if attempts >= 8 {
					ix.forceInstallCHLocked()
				}
			}
			ix.mu.Unlock()
		}
		ix.chRebuildActive.Store(false)
		if !ix.chRebuildPending.Swap(false) {
			return
		}
		if ix.Snapshot().HierarchyFresh() ||
			!ix.chRebuildActive.CompareAndSwap(false, true) {
			return
		}
	}
}

// forceInstallCHLocked contracts the current working graph under the writer
// lock the caller already holds and installs the result at the current social
// epoch. Writers stall for one full build — the rate limiter (one event per
// forcedEvery) keeps that bounded-frequency, and shutdown interrupts the
// build mid-contraction.
func (ix *Index) forceInstallCHLocked() {
	if ix.forcedEvery < 0 || time.Since(ix.chLastForced) < ix.forcedEvery {
		return
	}
	if _, built := ix.chDyn.Current(); built == ix.socialEpoch || ix.ov == nil {
		return
	}
	h, err := ix.chDyn.BuildFresh(ix.ov.Freeze(), func() bool { return ix.closed.Load() })
	if err != nil {
		return
	}
	ix.chDyn.Install(h, ix.socialEpoch)
	ix.publishLocked()
	ix.chForcedInstalls++
	ix.chLastForced = time.Now()
}

// RebuildCH synchronously re-contracts the current working graph and installs
// the fresh hierarchy as one published epoch, making the *-CH variants serve
// again immediately (the background loop normally handles this; the
// synchronous form gives tests and operators a determinism knob, like
// RebuildDisabledLandmarks). It blocks concurrent writers for one full build
// but never blocks readers. Reports whether a rebuild was needed and ran.
func (ix *Index) RebuildCH() bool {
	if ix.chDyn == nil {
		return false
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, built := ix.chDyn.Current(); built == ix.socialEpoch {
		return false
	}
	g := ix.g0
	if ix.ov != nil {
		g = ix.ov.Freeze()
	}
	h, err := ix.chDyn.BuildFresh(g, nil)
	if err != nil {
		return false
	}
	ix.chDyn.Install(h, ix.socialEpoch)
	ix.publishLocked()
	return true
}

// RebuildDisabledLandmarks synchronously recomputes every disabled landmark
// against the current working graph and publishes the result as one epoch.
// It blocks concurrent writers for the duration (one full Dijkstra per
// disabled landmark plus a single summary sweep) but never blocks readers.
// Returns how many landmarks it restored.
func (ix *Index) RebuildDisabledLandmarks() int {
	if ix.dyn == nil {
		return 0
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	rebuilt := 0
	g := ix.ov.Working()
	for {
		mask := ix.dyn.View().DisabledMask()
		if mask == 0 {
			break
		}
		j := bits.TrailingZeros64(mask)
		ix.dyn.InstallTable(j, g.DistancesFrom(ix.dyn.View().Vertices()[j]))
		rebuilt++
	}
	if rebuilt > 0 {
		ix.recomputeAllLeavesLocked()
		ix.propagateDirty()
		ix.publishLocked()
	}
	return rebuilt
}

// recomputeAllLeavesLocked re-derives every leaf summary against the current
// landmark tables (after one or more full-table installs), marking changed
// leaves for upward propagation. Caller holds mu and publishes afterwards.
func (ix *Index) recomputeAllLeavesLocked() {
	layout := ix.grid.Layout()
	leaf := layout.LeafLevel()
	for idx := int32(0); idx < int32(layout.NumCells(leaf)); idx++ {
		if ix.recomputeLeaf(idx) {
			ix.dirtyLeaves[idx] = struct{}{}
		}
	}
}

// SocialStats is a point-in-time view of the social dimension: overlay
// shape, edge-op counters and landmark maintenance health.
type SocialStats struct {
	// SocialEpoch is the social graph version (+1 per batch with edge ops).
	SocialEpoch uint64
	// NumEdges is the current undirected edge count.
	NumEdges int
	// PatchedVertices is the overlay delta size awaiting compaction.
	PatchedVertices int
	// Compactions counts delta folds back into pure CSR.
	Compactions int64
	// EdgeAdds/EdgeRemoves/EdgeReweights/EdgeNoops count effective ops.
	EdgeAdds, EdgeRemoves, EdgeReweights, EdgeNoops int64
	// DisabledLandmarks is how many landmarks currently sit out of bounds
	// awaiting rebuild.
	DisabledLandmarks int
	// LandmarkRepairs counts incremental repairs completed within budget;
	// RepairedVertices the table entries they rewrote; LandmarkDisables
	// budget overruns; LandmarkRebuilds full tables installed.
	LandmarkRepairs, RepairedVertices, LandmarkDisables, LandmarkRebuilds int64
	// LandmarkForcedInstalls counts landmark tables recomputed and installed
	// under the writer lock after the asynchronous rebuild lost the install
	// race 8 times in a row (the rate-limited anti-starvation fallback).
	LandmarkForcedInstalls int64

	// CHBuilt reports whether the index owns a contraction hierarchy.
	CHBuilt bool
	// CHBuiltEpoch is the social epoch the current hierarchy was built (or
	// last repaired) at; the *-CH variants serve iff it equals SocialEpoch.
	CHBuiltEpoch uint64
	// CHRepairs counts in-place hierarchy repairs (decrease-only batches
	// within the cone budget); CHRecontracted the vertices they
	// re-contracted; CHRepairFallbacks repair attempts deferred to the
	// rebuild pipeline (removals, increases or budget overruns);
	// CHRebuilds full hierarchies installed (async, sync and forced);
	// CHForcedInstalls the subset installed under the writer lock by the
	// anti-starvation fallback.
	CHRepairs, CHRecontracted, CHRepairFallbacks, CHRebuilds, CHForcedInstalls int64
}

// SocialStats reports the social dimension's counters (zero value for
// static indexes).
func (ix *Index) SocialStats() SocialStats {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	st := SocialStats{SocialEpoch: ix.socialEpoch}
	if ix.ov != nil {
		st.NumEdges = ix.ov.NumEdges()
		st.PatchedVertices = ix.ov.PatchedCount()
		_, _, _, st.Compactions = ix.ov.Stats()
		st.EdgeAdds, st.EdgeRemoves, st.EdgeReweights, st.EdgeNoops = ix.edgeAdds, ix.edgeRemoves, ix.edgeReweights, ix.edgeNoops
	} else if ix.g0 != nil {
		st.NumEdges = ix.g0.NumEdges()
	}
	if ix.dyn != nil {
		st.DisabledLandmarks = ix.dyn.View().NumDisabled()
		st.LandmarkRepairs, st.RepairedVertices, st.LandmarkDisables, st.LandmarkRebuilds = ix.dyn.Stats()
		st.LandmarkForcedInstalls = ix.lmForcedInstalls
	}
	if ix.chDyn != nil {
		st.CHBuilt = true
		_, st.CHBuiltEpoch = ix.chDyn.Current()
		st.CHRepairs, st.CHRecontracted, st.CHRepairFallbacks, st.CHRebuilds = ix.chDyn.Stats()
		st.CHForcedInstalls = ix.chForcedInstalls
	}
	return st
}

// onRemove narrows summaries after a user left a leaf cell. Only components
// the mover was responsible for are recomputed over the remaining members.
func (ix *Index) onRemove(leaf int32, id int32) {
	base := int(leaf) * ix.m
	l := ix.grid.Layout().LeafLevel()
	lm := ix.lmView()
	responsible := false
	for j := 0; j < ix.m; j++ {
		d := lm.Dist(j, id)
		if d == ix.minSum[l][base+j] || d == ix.maxSum[l][base+j] {
			responsible = true
			break
		}
	}
	if !responsible {
		return
	}
	if ix.recomputeLeaf(leaf) {
		ix.dirtyLeaves[leaf] = struct{}{}
	}
}
