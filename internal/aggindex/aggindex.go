// Package aggindex implements the paper's Aggregate Index (§5.1): a
// multi-level regular grid whose cells carry *social summaries* — for each
// of the M landmarks, the minimum (m̌) and maximum (m̂) shortest-path
// distance between any user in the cell and that landmark. The summaries
// extend the landmark triangle-inequality bound from individual vertices to
// whole groups (Lemma 2), yielding the combined MINF lower bound that drives
// the AIS branch-and-bound search (Theorem 1).
//
// The index wraps the plain spatial grid for membership and occupancy, and
// maintains summaries under location updates exactly as §5.1 prescribes:
// deletion from the old cell (recomputing components the mover was
// responsible for), insertion into the new one (widening m̌/m̂ as needed),
// with changes propagating recursively to upper levels.
package aggindex

import (
	"fmt"
	"math"

	"ssrq/internal/graph"
	"ssrq/internal/landmark"
	"ssrq/internal/spatial"
)

// Index is the AIS aggregate index. Move, SetLocated and RemoveLocation are
// safe to call concurrently with readers that hold the grid's read lock:
// each mutation takes the underlying grid's write lock for the whole
// compound update (membership change plus summary maintenance), so readers
// never observe new membership paired with stale summaries. Readers bracket
// a logical operation with Grid().RLock/RUnlock.
type Index struct {
	grid *spatial.Grid
	lm   *landmark.Set
	m    int
	// Summaries, indexed [level][cell*m + j]. Empty cells hold
	// (min=+Inf, max=-Inf), which makes them prune naturally.
	minSum [][]float64
	maxSum [][]float64
}

// New builds the aggregate index over an existing grid and landmark set.
func New(grid *spatial.Grid, lm *landmark.Set) (*Index, error) {
	if grid == nil || lm == nil {
		return nil, fmt.Errorf("aggindex: nil grid or landmark set")
	}
	ix := &Index{grid: grid, lm: lm, m: lm.M()}
	layout := grid.Layout()
	for l := 0; l < layout.Levels; l++ {
		size := layout.NumCells(l) * ix.m
		mins := make([]float64, size)
		maxs := make([]float64, size)
		for i := range mins {
			mins[i] = math.Inf(1)
			maxs[i] = math.Inf(-1)
		}
		ix.minSum = append(ix.minSum, mins)
		ix.maxSum = append(ix.maxSum, maxs)
	}
	// Leaf summaries from members, then parents from children.
	leafLevel := layout.LeafLevel()
	for idx := int32(0); idx < int32(layout.NumCells(leafLevel)); idx++ {
		ix.recomputeLeaf(idx)
	}
	for l := leafLevel - 1; l >= 0; l-- {
		for idx := int32(0); idx < int32(layout.NumCells(l)); idx++ {
			ix.recomputeFromChildren(l, idx)
		}
	}
	return ix, nil
}

// Grid returns the underlying spatial grid.
func (ix *Index) Grid() *spatial.Grid { return ix.grid }

// Landmarks returns the landmark set the summaries are built on.
func (ix *Index) Landmarks() *landmark.Set { return ix.lm }

// Layout returns the grid geometry.
func (ix *Index) Layout() *spatial.Layout { return ix.grid.Layout() }

// MinSummary returns m̌[j] for the cell, the minimum graph distance between
// any member user and landmark j (+Inf for an empty cell).
func (ix *Index) MinSummary(level int, idx int32, j int) float64 {
	return ix.minSum[level][int(idx)*ix.m+j]
}

// MaxSummary returns m̂[j] for the cell (−Inf for an empty cell).
func (ix *Index) MaxSummary(level int, idx int32, j int) float64 {
	return ix.maxSum[level][int(idx)*ix.m+j]
}

// SocialLowerBound evaluates Lemma 2: a lower bound on the graph distance
// between the query vertex (whose landmark vector is qvec) and every user in
// the cell. Empty cells return +Inf.
func (ix *Index) SocialLowerBound(level int, idx int32, qvec []float64) float64 {
	base := int(idx) * ix.m
	mins := ix.minSum[level]
	maxs := ix.maxSum[level]
	best := 0.0
	for j := 0; j < ix.m; j++ {
		mq := qvec[j]
		lo, hi := mins[base+j], maxs[base+j]
		switch {
		case mq < lo:
			if math.IsInf(lo, 1) {
				// Either the cell is empty, or no member is reachable from
				// landmark j while the query is: both prune.
				return graph.Infinity
			}
			if d := lo - mq; d > best {
				best = d
			}
		case mq > hi:
			if math.IsInf(mq, 1) {
				// Query unreachable from landmark j but every member is:
				// different components, infinite distance.
				if !math.IsInf(hi, 1) {
					return graph.Infinity
				}
				continue
			}
			if d := mq - hi; d > best {
				best = d
			}
		}
	}
	return best
}

// recomputeLeaf rebuilds the summary of a leaf cell from its members.
func (ix *Index) recomputeLeaf(idx int32) bool {
	base := int(idx) * ix.m
	leaf := ix.grid.Layout().LeafLevel()
	changed := false
	for j := 0; j < ix.m; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, u := range ix.grid.CellUsers(idx) {
			d := ix.lm.Dist(j, u)
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		if ix.minSum[leaf][base+j] != lo || ix.maxSum[leaf][base+j] != hi {
			ix.minSum[leaf][base+j] = lo
			ix.maxSum[leaf][base+j] = hi
			changed = true
		}
	}
	return changed
}

// recomputeFromChildren rebuilds an internal cell's summary as the
// element-wise min/max over its s×s children; reports whether it changed.
func (ix *Index) recomputeFromChildren(level int, idx int32) bool {
	layout := ix.grid.Layout()
	kids := layout.ChildIndices(level, idx, nil)
	base := int(idx) * ix.m
	changed := false
	for j := 0; j < ix.m; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, c := range kids {
			cb := int(c) * ix.m
			if v := ix.minSum[level+1][cb+j]; v < lo {
				lo = v
			}
			if v := ix.maxSum[level+1][cb+j]; v > hi {
				hi = v
			}
		}
		if ix.minSum[level][base+j] != lo || ix.maxSum[level][base+j] != hi {
			ix.minSum[level][base+j] = lo
			ix.maxSum[level][base+j] = hi
			changed = true
		}
	}
	return changed
}

// propagateUp recomputes ancestors of a leaf until summaries stop changing.
func (ix *Index) propagateUp(leaf int32) {
	layout := ix.grid.Layout()
	idx := leaf
	for l := layout.LeafLevel(); l > 0; l-- {
		parent := layout.ParentIndex(l, idx)
		if !ix.recomputeFromChildren(l-1, parent) {
			return
		}
		idx = parent
	}
}

// onInsert widens summaries for a user that joined a leaf cell. Widening is
// cheap: compare the mover's landmark vector against m̌/m̂ (§5.1).
func (ix *Index) onInsert(leaf int32, id int32) {
	base := int(leaf) * ix.m
	l := ix.grid.Layout().LeafLevel()
	changed := false
	for j := 0; j < ix.m; j++ {
		d := ix.lm.Dist(j, id)
		if d < ix.minSum[l][base+j] {
			ix.minSum[l][base+j] = d
			changed = true
		}
		if d > ix.maxSum[l][base+j] {
			ix.maxSum[l][base+j] = d
			changed = true
		}
	}
	if changed {
		ix.propagateUp(leaf)
	}
}

// onRemove narrows summaries after a user left a leaf cell. Only components
// the mover was responsible for are recomputed over the remaining members.
func (ix *Index) onRemove(leaf int32, id int32) {
	base := int(leaf) * ix.m
	l := ix.grid.Layout().LeafLevel()
	responsible := false
	for j := 0; j < ix.m; j++ {
		d := ix.lm.Dist(j, id)
		if d == ix.minSum[l][base+j] || d == ix.maxSum[l][base+j] {
			responsible = true
			break
		}
	}
	if !responsible {
		return
	}
	if ix.recomputeLeaf(leaf) {
		ix.propagateUp(leaf)
	}
}

// Move relocates a user, maintaining grid membership and social summaries.
// Safe concurrently with readers holding the read lock.
func (ix *Index) Move(id int32, to spatial.Point) {
	ix.grid.Lock()
	defer ix.grid.Unlock()
	oldLeaf := ix.grid.LeafOf(id)
	ix.grid.Move(id, to)
	newLeaf := ix.grid.LeafOf(id)
	if oldLeaf == newLeaf {
		return // intra-cell move: coordinates updated, summaries unaffected
	}
	if oldLeaf >= 0 {
		ix.onRemove(oldLeaf, id)
	}
	if newLeaf >= 0 {
		ix.onInsert(newLeaf, id)
	}
}

// SetLocated indexes a previously unlocated user. Safe concurrently with
// readers holding the read lock.
func (ix *Index) SetLocated(id int32, p spatial.Point) {
	ix.grid.Lock()
	defer ix.grid.Unlock()
	oldLeaf := ix.grid.LeafOf(id)
	ix.grid.SetLocated(id, p)
	newLeaf := ix.grid.LeafOf(id)
	if oldLeaf == newLeaf {
		return
	}
	if oldLeaf >= 0 {
		ix.onRemove(oldLeaf, id)
	}
	ix.onInsert(newLeaf, id)
}

// RemoveLocation unindexes a user. Safe concurrently with readers holding
// the read lock.
func (ix *Index) RemoveLocation(id int32) {
	ix.grid.Lock()
	defer ix.grid.Unlock()
	leaf := ix.grid.LeafOf(id)
	if leaf < 0 {
		return
	}
	ix.grid.RemoveLocation(id)
	ix.onRemove(leaf, id)
}
