// The shared social substrate: one mutable social world — edge overlay,
// dynamic landmark tables, contraction hierarchy — publishing one immutable
// epoch-tagged SocialSnapshot that any number of aggregate indexes consume.
//
// Before the substrate existed every Index owned its own overlay + landmark
// + CH copies, so a spatially-partitioned engine with S shards replicated
// the whole social dimension S times: every edge op was an O(S) broadcast
// (S overlay patches, S landmark repairs, S hierarchy repairs) and resident
// social memory scaled with S. The substrate applies each edge op exactly
// once and then *notifies* every attached Index under its own writer lock,
// so each consumer re-derives only the cell summaries the op invalidated in
// its grid and republishes — pairing the new graph/tables with recomputed
// summaries in one atomic snapshot per consumer (the Lemma-2 epoch-
// coordination invariant: membership and summaries never mix social epochs).
//
// Lock order is Social.mu -> Index.mu, always. The substrate never calls
// into an Index while that Index holds its own lock (notification *takes*
// Index.mu), and no Index path acquires Social.mu while holding Index.mu
// (edge ops are forwarded to the substrate before the Index locks itself).
package aggindex

import (
	"fmt"
	"math/bits"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"ssrq/internal/ch"
	"ssrq/internal/fof"
	"ssrq/internal/graph"
	"ssrq/internal/landmark"
)

// SocialSnapshot is one immutable epoch of the shared social dimension: the
// graph, the landmark tables computed on exactly that graph, and the
// contraction hierarchy tagged with the epoch it was built at. Consumers
// embed it (by reference) into their own Snapshots, so a reader holding an
// Index snapshot sees one consistent social world.
type SocialSnapshot struct {
	g         *graph.Graph
	lm        *landmark.Set
	hier      *ch.CH // nil when the substrate owns no hierarchy
	hierEpoch uint64 // social epoch hier was built/repaired at
	epoch     uint64 // social graph version (+1 per effective edge batch)
}

// Graph returns this epoch's social graph.
func (s *SocialSnapshot) Graph() *graph.Graph { return s.g }

// Landmarks returns this epoch's landmark tables.
func (s *SocialSnapshot) Landmarks() *landmark.Set { return s.lm }

// Epoch returns the social graph version.
func (s *SocialSnapshot) Epoch() uint64 { return s.epoch }

// Social is the shared substrate. One writer mutex serializes edge batches,
// rebuild installs and consumer attachment; readers go through the published
// atomic snapshot and never lock. It is the single owner of the landmark and
// CH rebuild loops — a sharded engine runs ONE of each, not S.
type Social struct {
	lm *landmark.Set // construction-time landmark set

	// Mutable social state (ov/dyn nil when dynamic maintenance is
	// unsupported: the substrate then publishes the static construction
	// graph and rejects edge churn).
	ov    *graph.Overlay
	dyn   *landmark.Dynamic
	g0    *graph.Graph
	chDyn *ch.Dynamic

	// labels is the immutable per-user label bitmask slice (nil when the
	// world is unlabeled); consumers build per-cell masks from it.
	labels []uint64
	// fof carries the friends-of-friends bound's monotone weight floors,
	// lowered on every edge upsert before the epoch publishes (never raised
	// on removal), so its lower bounds stay admissible against every
	// snapshot any consumer can hold.
	fof *fof.Index

	mu        sync.Mutex
	published atomic.Pointer[SocialSnapshot]
	consumers []*Index // attached under mu; notified in attach order

	epoch     uint64 // social epoch under construction
	compactAt int

	// Edge-op counters (mu-guarded; exposed via Stats).
	edgeAdds, edgeRemoves, edgeReweights, edgeNoops int64

	// oplogFn, when set, receives every edge batch under mu before it is
	// applied — the write-ahead hook for the durability layer. Single
	// consumer; installed via Index.SetOpLog on the fronting index.
	oplogFn func([]Op)

	// Asynchronous rebuild machinery, moved wholesale from the per-index
	// implementation: at most one landmark loop and one CH loop at a time,
	// re-kicked by ApplyEdges while debt remains, with the rate-limited
	// forced-install fallback bounding starvation under sustained churn.
	rebuildActive    atomic.Bool
	rebuildPending   atomic.Bool
	chRebuildActive  atomic.Bool
	chRebuildPending atomic.Bool

	forcedEvery      time.Duration
	lmLastForced     time.Time
	chLastForced     time.Time
	lmForcedInstalls int64
	chForcedInstalls int64

	closed atomic.Bool
	bg     sync.WaitGroup

	// testBeforeInstall, when non-nil, runs in the rebuild loops after the
	// lock-free recompute and before the install takes the writer lock —
	// tests set it (before any concurrent use) to deterministically make an
	// install attempt lose the epoch race.
	testBeforeInstall func()
}

// NewSocialSubstrate builds the shared substrate over a friendship graph and
// a landmark set selected on it. When the landmark count exceeds what
// dynamic maintenance supports (64), the substrate still builds but rejects
// edge ops (SupportsEdgeChurn reports false) and publishes the static graph.
func NewSocialSubstrate(lm *landmark.Set, g *graph.Graph, cfg Config) (*Social, error) {
	if lm == nil || g == nil {
		return nil, fmt.Errorf("aggindex: nil landmark set or social graph")
	}
	if cfg.Labels != nil && len(cfg.Labels) != g.NumVertices() {
		return nil, fmt.Errorf("aggindex: %d label masks for %d users", len(cfg.Labels), g.NumVertices())
	}
	s := &Social{
		lm:          lm,
		g0:          g,
		chDyn:       cfg.CH,
		labels:      cfg.Labels,
		fof:         fof.New(g),
		forcedEvery: cfg.ForcedInstallInterval,
	}
	if s.forcedEvery == 0 {
		s.forcedEvery = 2 * time.Second
	}
	s.ov = graph.NewOverlay(g)
	if dyn, err := landmark.NewDynamic(lm, cfg.RepairBudget); err == nil {
		s.dyn = dyn
	} else {
		// Too many landmarks for dynamic maintenance: static fallback.
		s.ov = nil
	}
	s.compactAt = cfg.CompactThreshold
	if s.compactAt <= 0 {
		s.compactAt = max(1024, g.NumVertices()/8)
	}
	s.publishLocked() // construction epoch 0; no consumers yet, no lock needed
	return s, nil
}

// Snapshot returns the latest published social epoch (lock-free).
func (s *Social) Snapshot() *SocialSnapshot { return s.published.Load() }

// SetOpLog installs the write-ahead hook for edge batches (single
// consumer; nil detaches). See Index.SetOpLog.
func (s *Social) SetOpLog(fn func([]Op)) {
	s.mu.Lock()
	s.oplogFn = fn
	s.mu.Unlock()
}

// MutationBarrier waits out any edge batch that is mid-application: edge
// ops journal and publish under s.mu, so cycling it guarantees every batch
// that had reached the op-log hook before the call is published on return.
// See Index.MutationBarrier.
func (s *Social) MutationBarrier() {
	s.mu.Lock()
	s.mu.Unlock() //nolint:staticcheck // empty critical section is the point
}

// Landmarks returns the construction-time landmark set (live tables come
// from Snapshot().Landmarks()).
func (s *Social) Landmarks() *landmark.Set { return s.lm }

// SupportsEdgeChurn reports whether the substrate can ingest edge ops.
func (s *Social) SupportsEdgeChurn() bool { return s.ov != nil && s.dyn != nil }

// Labels returns the per-user label bitmasks (nil when unlabeled). Read-only.
func (s *Social) Labels() []uint64 { return s.labels }

// FoF returns the friends-of-friends bound index maintained by this
// substrate. Its floors are safe to read lock-free after loading any
// snapshot published by a consumer (floor updates happen-before publishes).
func (s *Social) FoF() *fof.Index { return s.fof }

// publishLocked freezes the working social state into the next published
// SocialSnapshot and returns it. Caller holds mu (or is the constructor).
func (s *Social) publishLocked() *SocialSnapshot {
	sn := &SocialSnapshot{g: s.g0, lm: s.lm, epoch: s.epoch}
	if s.ov != nil {
		sn.g = s.ov.Freeze()
	}
	if s.dyn != nil {
		sn.lm = s.dyn.Commit()
	}
	if s.chDyn != nil {
		sn.hier, sn.hierEpoch = s.chDyn.Current()
	}
	s.published.Store(sn)
	return sn
}

// notifyLocked pushes a freshly published social epoch into every attached
// consumer, still under mu — no edge batch can interleave, so each consumer
// recomputes its invalidated summaries against exactly this epoch's tables
// and republishes before the next social mutation can land. dirty lists the
// vertices whose landmark distances changed (each consumer re-derives only
// the leaf cells locating them); allLeaves forces a full summary sweep
// (after whole-table installs); both zero means a CH-only change (consumers
// just republish to attach the new hierarchy).
func (s *Social) notifyLocked(sn *SocialSnapshot, dirty []graph.VertexID, allLeaves bool) {
	now := time.Now()
	for _, ix := range s.consumers {
		ix.socialSync(sn, dirty, allLeaves, now)
	}
}

// attach registers a consumer built against the substrate's current epoch.
// Runs under mu so no edge batch can slip between the consumer's summary
// construction and its registration.
func (s *Social) attach(ix *Index) {
	s.consumers = append(s.consumers, ix)
}

// ApplyEdges applies a batch of edge ops to the shared social world exactly
// once — overlay patch, incremental landmark repair, in-place CH repair —
// then publishes the next social epoch and synchronously notifies every
// attached index so each republishes summaries consistent with it. Location
// ops in the batch are ignored (callers split batches). Safe for concurrent
// use; batches serialize on the substrate writer lock. On a substrate
// without edge-churn support this is a no-op.
func (s *Social) ApplyEdges(ops []Op) {
	if len(ops) == 0 || !s.SupportsEdgeChurn() {
		return
	}
	s.mu.Lock()
	if s.oplogFn != nil {
		// Callers pass edge-only batches (Index.Apply splits kinds); log
		// before applying so the durable order is the application order.
		s.oplogFn(ops)
	}
	var dirty []graph.VertexID
	var chChanges []ch.EdgeChange
	effective := false
	for _, op := range ops {
		if op.Kind != OpEdgeUpsert && op.Kind != OpEdgeRemove {
			continue
		}
		var change ch.EdgeChange
		var changed bool
		dirty, change, changed = s.applyEdge(op, dirty)
		if changed && s.chDyn != nil {
			chChanges = append(chChanges, change)
		}
		effective = effective || changed
	}
	if effective {
		prev := s.epoch
		s.epoch++
		if s.chDyn != nil {
			// In-place hierarchy repair: only worth attempting when the
			// hierarchy was current before this batch (a lagging one misses
			// intermediate changes and is already on the rebuild path), and
			// only possible for decrease-only batches within the cone budget
			// — Repair itself enforces both and reports failure otherwise.
			if _, built := s.chDyn.Current(); built == prev {
				s.chDyn.Repair(s.ov.Working(), chChanges, s.epoch)
			}
		}
		if s.ov.PatchedCount() >= s.compactAt {
			s.ov.Compact()
		}
		sn := s.publishLocked()
		// The repair lists are heavily duplicated (one entry per landmark per
		// op); dedupe once here rather than once per consumer — the consumer
		// scan is the only per-consumer term left on the edge-op path, so its
		// length is what keeps the cost flat in the consumer count.
		if len(dirty) > 1 {
			slices.Sort(dirty)
			w := 1
			for i := 1; i < len(dirty); i++ {
				if dirty[i] != dirty[i-1] {
					dirty[w] = dirty[i]
					w++
				}
			}
			dirty = dirty[:w]
		}
		s.notifyLocked(sn, dirty, false)
	}
	disabled := s.dyn.View().NumDisabled() > 0
	chStale := false
	if s.chDyn != nil {
		_, built := s.chDyn.Current()
		chStale = built != s.epoch
	}
	s.mu.Unlock()
	if disabled {
		s.kickRebuild()
	}
	if chStale {
		s.kickCHRebuild()
	}
}

// applyEdge performs one edge op on the overlay and repairs the landmark
// tables, accumulating the vertices whose landmark distances changed.
// Reports the effective change (for hierarchy repair) and whether the op
// actually changed the graph. Caller holds mu.
func (s *Social) applyEdge(op Op, dirty []graph.VertexID) ([]graph.VertexID, ch.EdgeChange, bool) {
	u, v := op.U, op.V
	oldW, had := s.ov.EdgeWeight(u, v)
	change := ch.EdgeChange{U: u, V: v, OldW: oldW, HadOld: had}
	switch op.Kind {
	case OpEdgeUpsert:
		change.NewW, change.HasNew = op.W, true
		if had && oldW == op.W {
			s.edgeNoops++
			return dirty, change, false
		}
		if _, err := s.ov.SetEdge(u, v, op.W); err != nil {
			// Malformed ops are rejected upstream; a failure here means a
			// caller bypassed validation — count and skip.
			s.edgeNoops++
			return dirty, change, false
		}
		if had {
			s.edgeReweights++
		} else {
			s.edgeAdds++
		}
		// Lower the FoF weight floors before the batch publishes: any
		// snapshot containing this edge is published after this write, so a
		// query on it can never see a floor above the edge's weight.
		s.fof.ObserveUpsert(u, v, op.W)
		return append(dirty, s.dyn.EdgeChanged(s.ov.Working(), u, v, oldW, had, op.W, true)...), change, true
	case OpEdgeRemove:
		if !had {
			s.edgeNoops++
			return dirty, change, false
		}
		if _, err := s.ov.RemoveEdge(u, v); err != nil {
			s.edgeNoops++
			return dirty, change, false
		}
		s.edgeRemoves++
		return append(dirty, s.dyn.EdgeChanged(s.ov.Working(), u, v, oldW, true, 0, false)...), change, true
	}
	return dirty, change, false
}

// kickRebuild starts the asynchronous landmark rebuild loop, or records the
// kick for the running loop to pick up before it exits.
func (s *Social) kickRebuild() {
	if s.dyn == nil {
		return
	}
	if !s.rebuildActive.CompareAndSwap(false, true) {
		s.rebuildPending.Store(true)
		return
	}
	if !s.spawn(s.rebuildLoop) {
		s.rebuildActive.Store(false)
	}
}

// spawn launches fn on a Close-tracked goroutine. The bg.Add runs under mu
// so it cannot race a concurrent Close's Wait; after Close it refuses.
func (s *Social) spawn(fn func()) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return false
	}
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		fn()
	}()
	return true
}

// Close stops the substrate's background maintenance: no further rebuild
// goroutines start, in-flight ones abort at their next cancellation point,
// and Close returns only after every one has exited. Queries and synchronous
// mutation remain valid after Close; stale structures then stay stale until
// an explicit RebuildDisabledLandmarks/RebuildCH. Idempotent.
func (s *Social) Close() {
	s.mu.Lock()
	s.closed.Store(true)
	s.mu.Unlock()
	s.bg.Wait()
}

// rebuildLoop restores disabled landmarks one at a time: it computes a fresh
// distance table against the published snapshot's graph *without holding the
// writer lock* (a full Dijkstra — the expensive part), then briefly takes
// the lock to install it, provided no edge batch landed in between (the
// table would describe a stale graph). Under sustained churn the optimistic
// path can lose that race indefinitely; the 8th consecutive stale attempt
// therefore falls back to a forced install — recomputing the disabled tables
// *under the writer lock*, where the epoch cannot move — rate-limited to one
// event per ForcedInstallInterval, so the disabled-landmark window is
// deterministically bounded by 8 recompute laps plus the interval. Disabled
// landmarks merely loosen bounds in the meantime — they never make them
// wrong.
func (s *Social) rebuildLoop() {
	for {
		for attempts := 0; attempts < 8; {
			if s.closed.Load() {
				s.rebuildActive.Store(false)
				return
			}
			sn := s.Snapshot()
			mask := sn.lm.DisabledMask()
			if mask == 0 {
				break
			}
			j := bits.TrailingZeros64(mask)
			table := sn.g.DistancesFrom(sn.lm.Vertices()[j])
			if s.testBeforeInstall != nil {
				s.testBeforeInstall()
			}
			s.mu.Lock()
			if s.epoch == sn.epoch {
				s.dyn.InstallTable(j, table)
				nsn := s.publishLocked()
				s.notifyLocked(nsn, nil, true)
				attempts = 0
			} else {
				attempts++
				if attempts >= 8 {
					s.forceInstallLandmarksLocked()
				}
			}
			s.mu.Unlock()
		}
		s.rebuildActive.Store(false)
		// Close the lost-wakeup window: a kick that arrived while we were
		// flagged active would otherwise be dropped, stranding a freshly
		// disabled landmark if churn stops here.
		if !s.rebuildPending.Swap(false) {
			return
		}
		if s.Snapshot().lm.DisabledMask() == 0 ||
			!s.rebuildActive.CompareAndSwap(false, true) {
			return
		}
	}
}

// forceInstallLandmarksLocked recomputes every disabled landmark table on
// the working graph and installs it, all under the writer lock the caller
// already holds — writers are stalled for the duration (one Dijkstra per
// disabled landmark plus each consumer's summary sweep), which is exactly
// the trade: a bounded write stall instead of an unbounded pruning-
// degradation window. Rate-limited to one event per forcedEvery.
func (s *Social) forceInstallLandmarksLocked() {
	if s.forcedEvery < 0 || time.Since(s.lmLastForced) < s.forcedEvery {
		return
	}
	mask := s.dyn.View().DisabledMask()
	if mask == 0 {
		return
	}
	g := s.ov.Working()
	for mask != 0 {
		j := bits.TrailingZeros64(mask)
		s.dyn.InstallTable(j, g.DistancesFrom(s.dyn.View().Vertices()[j]))
		s.lmForcedInstalls++
		mask &^= 1 << uint(j)
	}
	sn := s.publishLocked()
	s.notifyLocked(sn, nil, true)
	s.lmLastForced = time.Now()
}

// kickCHRebuild starts the asynchronous hierarchy rebuild loop, or records
// the kick for the running loop (same protocol as the landmark rebuild).
func (s *Social) kickCHRebuild() {
	if s.chDyn == nil {
		return
	}
	if !s.chRebuildActive.CompareAndSwap(false, true) {
		s.chRebuildPending.Store(true)
		return
	}
	if !s.spawn(s.chRebuildLoop) {
		s.chRebuildActive.Store(false)
	}
}

// chRebuildLoop restores hierarchy freshness: it contracts the published
// snapshot's graph from scratch without holding the writer lock, then
// briefly takes the lock to install, provided the social epoch still matches
// the graph the build ran on. Like the landmark loop, the 8th consecutive
// stale attempt escalates to a rate-limited forced install under the writer
// lock, bounding how long the *-CH variants stay refused under sustained
// churn.
func (s *Social) chRebuildLoop() {
	stop := func() bool { return s.closed.Load() }
	for {
		for attempts := 0; attempts < 8; {
			if s.closed.Load() {
				s.chRebuildActive.Store(false)
				return
			}
			sn := s.Snapshot()
			if sn.hier != nil && sn.hierEpoch == sn.epoch {
				break
			}
			target := sn.epoch
			h, err := s.chDyn.BuildFresh(sn.g, stop)
			if err != nil { // interrupted: substrate shutting down
				s.chRebuildActive.Store(false)
				return
			}
			if s.testBeforeInstall != nil {
				s.testBeforeInstall()
			}
			s.mu.Lock()
			if s.epoch == target {
				s.chDyn.Install(h, target)
				nsn := s.publishLocked()
				s.notifyLocked(nsn, nil, false)
				attempts = 0
			} else {
				attempts++
				if attempts >= 8 {
					s.forceInstallCHLocked()
				}
			}
			s.mu.Unlock()
		}
		s.chRebuildActive.Store(false)
		if !s.chRebuildPending.Swap(false) {
			return
		}
		sn := s.Snapshot()
		if (sn.hier != nil && sn.hierEpoch == sn.epoch) ||
			!s.chRebuildActive.CompareAndSwap(false, true) {
			return
		}
	}
}

// forceInstallCHLocked contracts the current working graph under the writer
// lock the caller already holds and installs the result at the current
// social epoch. Writers stall for one full build — the rate limiter keeps
// that bounded-frequency, and shutdown interrupts the build mid-contraction.
func (s *Social) forceInstallCHLocked() {
	if s.forcedEvery < 0 || time.Since(s.chLastForced) < s.forcedEvery {
		return
	}
	if _, built := s.chDyn.Current(); built == s.epoch || s.ov == nil {
		return
	}
	h, err := s.chDyn.BuildFresh(s.ov.Freeze(), func() bool { return s.closed.Load() })
	if err != nil {
		return
	}
	s.chDyn.Install(h, s.epoch)
	sn := s.publishLocked()
	s.notifyLocked(sn, nil, false)
	s.chForcedInstalls++
	s.chLastForced = time.Now()
}

// RebuildCH synchronously re-contracts the current working graph and
// installs the fresh hierarchy (published to every consumer as one social
// epoch), making the *-CH variants serve again immediately. It blocks
// concurrent writers for one full build but never blocks readers. Reports
// whether a rebuild was needed and ran.
func (s *Social) RebuildCH() bool {
	if s.chDyn == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, built := s.chDyn.Current(); built == s.epoch {
		return false
	}
	g := s.g0
	if s.ov != nil {
		g = s.ov.Freeze()
	}
	h, err := s.chDyn.BuildFresh(g, nil)
	if err != nil {
		return false
	}
	s.chDyn.Install(h, s.epoch)
	sn := s.publishLocked()
	s.notifyLocked(sn, nil, false)
	return true
}

// RebuildDisabledLandmarks synchronously recomputes every disabled landmark
// against the current working graph and publishes the result to every
// consumer as one social epoch. It blocks concurrent writers for the
// duration but never blocks readers. Returns how many landmarks it restored.
func (s *Social) RebuildDisabledLandmarks() int {
	if s.dyn == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rebuilt := 0
	g := s.ov.Working()
	for {
		mask := s.dyn.View().DisabledMask()
		if mask == 0 {
			break
		}
		j := bits.TrailingZeros64(mask)
		s.dyn.InstallTable(j, g.DistancesFrom(s.dyn.View().Vertices()[j]))
		rebuilt++
	}
	if rebuilt > 0 {
		sn := s.publishLocked()
		s.notifyLocked(sn, nil, true)
	}
	return rebuilt
}

// Stats reports the substrate's counters (see SocialStats). With a shared
// substrate these are per-world, not per-shard: an edge op counts once no
// matter how many indexes consume the snapshot.
func (s *Social) Stats() SocialStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SocialStats{SocialEpoch: s.epoch}
	if s.ov != nil {
		st.NumEdges = s.ov.NumEdges()
		st.PatchedVertices = s.ov.PatchedCount()
		_, _, _, st.Compactions = s.ov.Stats()
		st.EdgeAdds, st.EdgeRemoves, st.EdgeReweights, st.EdgeNoops = s.edgeAdds, s.edgeRemoves, s.edgeReweights, s.edgeNoops
	} else if s.g0 != nil {
		st.NumEdges = s.g0.NumEdges()
	}
	if s.dyn != nil {
		st.DisabledLandmarks = s.dyn.View().NumDisabled()
		st.LandmarkRepairs, st.RepairedVertices, st.LandmarkDisables, st.LandmarkRebuilds = s.dyn.Stats()
		st.LandmarkForcedInstalls = s.lmForcedInstalls
	}
	if s.chDyn != nil {
		st.CHBuilt = true
		_, st.CHBuiltEpoch = s.chDyn.Current()
		st.CHRepairs, st.CHRecontracted, st.CHRepairFallbacks, st.CHRebuilds = s.chDyn.Stats()
		st.CHForcedInstalls = s.chForcedInstalls
	}
	return st
}
