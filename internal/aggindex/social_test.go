package aggindex

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"ssrq/internal/ch"
	"ssrq/internal/graph"
	"ssrq/internal/landmark"
	"ssrq/internal/spatial"
)

// mkSocialFixture builds a NewSocial index over a random geo-social world.
func mkSocialFixture(t *testing.T, rng *rand.Rand, n, m, s, levels int, cfg Config) *fixture {
	t.Helper()
	f := mkFixture(t, rng, n, m, s, levels, 0.15, false)
	layout, err := spatial.NewLayout(spatial.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, s, levels)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := spatial.NewGrid(layout, f.pts, f.located)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewSocial(grid, f.lm, f.g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.grid = grid
	f.ix = ix
	return f
}

// randomEdgeOps builds a batch of random edge ops over n users.
func randomEdgeOps(rng *rand.Rand, n, count int) []Op {
	ops := make([]Op, 0, count)
	for len(ops) < count {
		u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
		if u == v {
			continue
		}
		if rng.Intn(3) == 0 {
			ops = append(ops, Op{Kind: OpEdgeRemove, U: u, V: v})
		} else {
			ops = append(ops, Op{Kind: OpEdgeUpsert, U: u, V: v, W: 0.1 + rng.Float64()*2})
		}
	}
	return ops
}

// verifySocialInvariants checks every cell summary exactly brackets its
// members against the *published* landmark tables, and that enabled
// landmark tables are exact on the published graph.
func verifySocialInvariants(t *testing.T, f *fixture) {
	t.Helper()
	sn := f.ix.Snapshot()
	lm := sn.Landmarks()
	g := sn.SocialGraph()
	layout := f.grid.Layout()
	leaf := layout.LeafLevel()

	// Enabled landmark tables must be exact shortest-path distances.
	for j, lmv := range lm.Vertices() {
		if !lm.Enabled(j) {
			continue
		}
		want := g.DistancesFrom(lmv)
		for v := 0; v < g.NumVertices(); v++ {
			if got := lm.Dist(j, graph.VertexID(v)); got != want[v] {
				t.Fatalf("landmark %d dist to %d = %v, want %v", j, v, got, want[v])
			}
		}
	}

	// Leaf summaries bracket members under the published tables.
	for idx := int32(0); idx < int32(layout.NumCells(leaf)); idx++ {
		for j := 0; j < lm.M(); j++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, u := range sn.Grid().CellUsers(idx) {
				d := lm.Dist(j, u)
				if d < lo {
					lo = d
				}
				if d > hi {
					hi = d
				}
			}
			if got := sn.MinSummary(leaf, idx, j); got != lo {
				t.Fatalf("leaf %d lm %d: min %v, want %v", idx, j, got, lo)
			}
			if got := sn.MaxSummary(leaf, idx, j); got != hi {
				t.Fatalf("leaf %d lm %d: max %v, want %v", idx, j, got, hi)
			}
		}
	}
}

// TestSocialApplyMaintainsSummaries is the joint-consistency proof: after
// batches mixing edge ops and moves, every published epoch pairs graph,
// landmark tables and summaries that agree with each other exactly.
func TestSocialApplyMaintainsSummaries(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := mkSocialFixture(t, rng, 150, 4, 4, 2, Config{RepairBudget: 1 << 30})
	n := 150
	for round := 0; round < 12; round++ {
		ops := randomEdgeOps(rng, n, 5+rng.Intn(10))
		// Mix in location ops: moves and removals share the batch.
		for i := 0; i < 4; i++ {
			id := rng.Int31n(int32(n))
			if rng.Intn(4) == 0 {
				ops = append(ops, Op{ID: id, Remove: true})
			} else {
				ops = append(ops, Op{ID: id, To: spatial.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}})
			}
		}
		rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
		f.ix.Apply(ops)
		verifySocialInvariants(t, f)
	}
}

// TestSocialSnapshotIsolation pins epoch immutability across the social
// dimension: an old snapshot's graph, landmark tables and summaries must
// stay bit-stable while later batches mutate and rebuild.
func TestSocialSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 120
	f := mkSocialFixture(t, rng, n, 3, 4, 2, Config{RepairBudget: 6})

	f.ix.Apply(randomEdgeOps(rng, n, 10))
	old := f.ix.Snapshot()
	oldEdges := old.SocialGraph().NumEdges()
	oldDist := make([][]float64, old.Landmarks().M())
	for j := range oldDist {
		oldDist[j] = old.Landmarks().Table(j)
	}
	var oldSums []float64
	layout := f.grid.Layout()
	leaf := layout.LeafLevel()
	for idx := int32(0); idx < int32(layout.NumCells(leaf)); idx++ {
		for j := 0; j < old.Landmarks().M(); j++ {
			oldSums = append(oldSums, old.MinSummary(leaf, idx, j), old.MaxSummary(leaf, idx, j))
		}
	}
	oldMask := old.Landmarks().DisabledMask()

	for round := 0; round < 10; round++ {
		f.ix.Apply(randomEdgeOps(rng, n, 20))
	}
	f.ix.RebuildDisabledLandmarks()

	if old.SocialGraph().NumEdges() != oldEdges {
		t.Fatal("old snapshot's edge count changed")
	}
	if old.Landmarks().DisabledMask() != oldMask {
		t.Fatal("old snapshot's disabled mask changed")
	}
	for j := range oldDist {
		for v, want := range oldDist[j] {
			if got := old.Landmarks().Dist(j, graph.VertexID(v)); got != want {
				t.Fatalf("old snapshot landmark %d dist to %d changed: %v -> %v", j, v, want, got)
			}
		}
	}
	i := 0
	for idx := int32(0); idx < int32(layout.NumCells(leaf)); idx++ {
		for j := 0; j < old.Landmarks().M(); j++ {
			if old.MinSummary(leaf, idx, j) != oldSums[i] || old.MaxSummary(leaf, idx, j) != oldSums[i+1] {
				t.Fatalf("old snapshot summary for leaf %d lm %d changed", idx, j)
			}
			i += 2
		}
	}
}

// TestRebuildRestoresDisabledLandmarks drives churn with a tiny budget until
// landmarks disable, then checks the synchronous rebuild restores exactness
// and the re-derived summaries.
func TestRebuildRestoresDisabledLandmarks(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const n = 150
	f := mkSocialFixture(t, rng, n, 4, 4, 2, Config{RepairBudget: 2})
	for round := 0; round < 20 && f.ix.SocialStats().DisabledLandmarks == 0; round++ {
		f.ix.Apply(randomEdgeOps(rng, n, 15))
	}
	if f.ix.SocialStats().DisabledLandmarks == 0 {
		t.Skip("tiny budget never disabled a landmark on this seed")
	}
	rebuilt := f.ix.RebuildDisabledLandmarks()
	if rebuilt == 0 {
		t.Fatal("RebuildDisabledLandmarks rebuilt nothing")
	}
	if got := f.ix.SocialStats().DisabledLandmarks; got != 0 {
		t.Fatalf("%d landmarks still disabled after rebuild", got)
	}
	verifySocialInvariants(t, f)
}

// TestSocialLowerBoundAdmissibleUnderChurn samples the Lemma-2 cell bound
// against true distances on the published epoch, with landmarks disabling
// mid-run.
func TestSocialLowerBoundAdmissibleUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n = 150
	f := mkSocialFixture(t, rng, n, 4, 4, 2, Config{RepairBudget: 10})
	layout := f.grid.Layout()
	leaf := layout.LeafLevel()
	for round := 0; round < 8; round++ {
		f.ix.Apply(randomEdgeOps(rng, n, 12))
		sn := f.ix.Snapshot()
		lm := sn.Landmarks()
		g := sn.SocialGraph()
		q := graph.VertexID(rng.Intn(n))
		dist := g.DistancesFrom(q)
		qvec := lm.VertexVector(q)
		for idx := int32(0); idx < int32(layout.NumCells(leaf)); idx++ {
			bound := sn.SocialLowerBound(leaf, idx, qvec)
			for _, u := range sn.Grid().CellUsers(idx) {
				if bound > dist[u]+1e-9 {
					t.Fatalf("round %d: cell %d bound %v > true %v for member %d (disabled=%d)",
						round, idx, bound, dist[u], u, lm.NumDisabled())
				}
			}
		}
	}
}

// TestEdgeOpCountersAndCompaction checks SocialStats bookkeeping and that
// compaction triggers at the configured threshold without changing the
// published view.
func TestEdgeOpCountersAndCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	const n = 100
	f := mkSocialFixture(t, rng, n, 3, 4, 2, Config{RepairBudget: 1 << 30, CompactThreshold: 8})
	// Pick three pairs guaranteed absent from the generated graph.
	g0 := f.ix.Snapshot().SocialGraph()
	var pairs [][2]int32
	for u := int32(0); len(pairs) < 3 && u < n; u++ {
		for v := u + 1; len(pairs) < 3 && v < n; v++ {
			if _, ok := g0.EdgeWeight(u, v); !ok {
				pairs = append(pairs, [2]int32{u, v})
			}
		}
	}
	f.ix.Apply([]Op{
		{Kind: OpEdgeUpsert, U: pairs[0][0], V: pairs[0][1], W: 1},    // add
		{Kind: OpEdgeUpsert, U: pairs[0][0], V: pairs[0][1], W: 2},    // reweight
		{Kind: OpEdgeRemove, U: pairs[0][0], V: pairs[0][1]},          // remove
		{Kind: OpEdgeRemove, U: pairs[0][0], V: pairs[0][1]},          // no-op
		{Kind: OpEdgeUpsert, U: pairs[1][0], V: pairs[1][1], W: 0.5},  // add
		{Kind: OpEdgeUpsert, U: pairs[2][0], V: pairs[2][1], W: 0.25}, // add
	})
	st := f.ix.SocialStats()
	if st.EdgeAdds != 3 || st.EdgeReweights != 1 || st.EdgeRemoves != 1 || st.EdgeNoops != 1 {
		t.Fatalf("counters: %+v", st)
	}
	if st.SocialEpoch != 1 {
		t.Fatalf("social epoch = %d, want 1", st.SocialEpoch)
	}
	// Push past the compaction threshold.
	for i := 0; i < 6; i++ {
		f.ix.Apply(randomEdgeOps(rng, n, 6))
	}
	st = f.ix.SocialStats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction at threshold 8 (patched=%d)", st.PatchedVertices)
	}
	verifySocialInvariants(t, f)
}

// TestStaticIndexRejectsEdgeOps: a New-built index must skip edge ops
// harmlessly and report no churn support.
func TestStaticIndexRejectsEdgeOps(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := mkFixture(t, rng, 80, 3, 4, 2, 0.1, false)
	if f.ix.SupportsEdgeChurn() {
		t.Fatal("static index claims edge churn support")
	}
	f.ix.Apply([]Op{{Kind: OpEdgeUpsert, U: 0, V: 1, W: 1}})
	if f.ix.SocialStats().SocialEpoch != 0 {
		t.Fatal("static index advanced social epoch")
	}
}

// TestSnapshotCarriesHierarchyEpochs pins the CH publication contract:
// snapshots carry the hierarchy tagged with its build epoch, decrease-only
// batches keep it fresh via in-place repair, removals leave it stale (with
// background rebuilds suppressed by Close), and RebuildCH restores it.
func TestSnapshotCarriesHierarchyEpochs(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	n := 60
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(graph.VertexID(rng.Intn(v)), graph.VertexID(v), 0.1+rng.Float64()*2)
	}
	g := b.MustBuild()
	lm, err := landmark.Select(g, 3, landmark.Farthest, 7)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := spatial.NewLayout(spatial.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]spatial.Point, n)
	located := make([]bool, n)
	for i := range pts {
		pts[i] = spatial.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		located[i] = true
	}
	grid, err := spatial.NewGrid(layout, pts, located)
	if err != nil {
		t.Fatal(err)
	}
	chd, err := ch.NewDynamic(g, ch.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewSocial(grid, lm, g, Config{CH: chd})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	sn := ix.Snapshot()
	if sn.Hierarchy() == nil || !sn.HierarchyFresh() || sn.HierarchyEpoch() != 0 {
		t.Fatalf("construction snapshot: hier=%v fresh=%v epoch=%d", sn.Hierarchy(), sn.HierarchyFresh(), sn.HierarchyEpoch())
	}

	// Insert batch: repaired in place, still fresh, no rebuild needed.
	ix.Apply([]Op{{Kind: OpEdgeUpsert, U: 3, V: 40, W: 0.5}, {Kind: OpEdgeUpsert, U: 7, V: 51, W: 0.9}})
	sn = ix.Snapshot()
	if !sn.HierarchyFresh() || sn.HierarchyEpoch() != 1 {
		t.Fatalf("post-insert: fresh=%v epoch=%d", sn.HierarchyFresh(), sn.HierarchyEpoch())
	}
	if st := ix.SocialStats(); st.CHRepairs != 1 || st.CHBuiltEpoch != 1 {
		t.Fatalf("post-insert stats: %+v", st)
	}
	// The repaired hierarchy answers the mutated graph exactly.
	cur := sn.SocialGraph()
	for probe := 0; probe < 20; probe++ {
		s, tgt := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		want := cur.DijkstraTo(s, tgt)
		got, _ := sn.Hierarchy().Dist(s, tgt)
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("repaired hierarchy Dist(%d,%d)=%v want %v", s, tgt, got, want)
		}
	}

	// Removal with background rebuilds suppressed: deterministically stale.
	ix.Close()
	ix.Apply([]Op{{Kind: OpEdgeRemove, U: 3, V: 40}})
	sn = ix.Snapshot()
	if sn.HierarchyFresh() || sn.HierarchyEpoch() != 1 || sn.SocialEpoch() != 2 {
		t.Fatalf("post-removal: fresh=%v built=%d social=%d", sn.HierarchyFresh(), sn.HierarchyEpoch(), sn.SocialEpoch())
	}

	if !ix.RebuildCH() {
		t.Fatal("RebuildCH declined a stale hierarchy")
	}
	sn = ix.Snapshot()
	if !sn.HierarchyFresh() {
		t.Fatal("hierarchy stale after RebuildCH")
	}
	cur = sn.SocialGraph()
	for probe := 0; probe < 20; probe++ {
		s, tgt := graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n))
		want := cur.DijkstraTo(s, tgt)
		got, _ := sn.Hierarchy().Dist(s, tgt)
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("rebuilt hierarchy Dist(%d,%d)=%v want %v", s, tgt, got, want)
		}
	}
}

// TestForcedInstallBoundsLandmarkStarvation deterministically reproduces the
// install-starvation regime: the testBeforeInstall seam applies one edge op
// between every rebuild recompute and its install attempt, so the optimistic
// path loses the epoch race every single time. After the 8th consecutive
// loss the loop must fall back to the forced install under the writer lock
// (rate limit effectively off), restore every landmark, and count the event
// — the disabled window is bounded instead of starving forever.
func TestForcedInstallBoundsLandmarkStarvation(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	f := mkSocialFixture(t, rng, 80, 3, 4, 2, Config{
		RepairBudget:          1, // effective ops disable landmarks immediately
		ForcedInstallInterval: time.Nanosecond,
	})
	defer f.ix.Close()
	churn := rand.New(rand.NewSource(99))
	f.ix.sub.testBeforeInstall = func() {
		u := churn.Int31n(80)
		v := churn.Int31n(80)
		if u == v {
			v = (v + 1) % 80
		}
		f.ix.Apply([]Op{{Kind: OpEdgeUpsert, U: u, V: v, W: 0.1 + churn.Float64()}})
	}
	// Disable at least one landmark to kick the rebuild loop.
	f.ix.Apply(randomEdgeOps(rng, 80, 6))
	deadline := time.Now().Add(20 * time.Second)
	for f.ix.SocialStats().LandmarkForcedInstalls == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := f.ix.SocialStats()
	if st.LandmarkForcedInstalls == 0 {
		t.Fatal("permanently lost install race never escalated to a forced install")
	}
	// The forced install restored every landmark in one event; with the seam
	// no optimistic install can ever have succeeded.
	if st.LandmarkRebuilds != st.LandmarkForcedInstalls {
		t.Fatalf("optimistic installs slipped through the seam: rebuilds=%d forced=%d",
			st.LandmarkRebuilds, st.LandmarkForcedInstalls)
	}
	verifySocialInvariants(t, f)
}

// TestForcedInstallRateLimited: the first exhaustion may force immediately
// (a starving system should not wait out the interval before its first
// relief), but with a long interval every later exhaustion must give up (old
// behavior) instead of forcing again — the fallback is one event per
// interval.
func TestForcedInstallRateLimited(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	f := mkSocialFixture(t, rng, 60, 3, 4, 2, Config{
		RepairBudget:          1,
		ForcedInstallInterval: time.Hour,
	})
	defer f.ix.Close()
	churn := rand.New(rand.NewSource(77))
	var seamCalls atomic.Int64
	f.ix.sub.testBeforeInstall = func() {
		seamCalls.Add(1)
		u := churn.Int31n(60)
		v := churn.Int31n(60)
		if u == v {
			v = (v + 1) % 60
		}
		f.ix.Apply([]Op{{Kind: OpEdgeUpsert, U: u, V: v, W: 0.1 + churn.Float64()}})
	}
	f.ix.Apply(randomEdgeOps(rng, 60, 6))
	deadline := time.Now().Add(20 * time.Second)
	for f.ix.SocialStats().LandmarkForcedInstalls == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	first := f.ix.SocialStats().LandmarkForcedInstalls
	if first == 0 {
		t.Fatal("first exhaustion never forced an install")
	}
	// Two more exhaustion rounds (the seam loses every race, so 8 calls = one
	// round): the hour-long interval must block any further forced event.
	// External churn keeps disabling landmarks and re-kicking the loop, which
	// would otherwise (correctly) exit after the forced install restored all.
	target := seamCalls.Load() + 16
	for seamCalls.Load() < target && time.Now().Before(deadline) {
		f.ix.Apply(randomEdgeOps(rng, 60, 2))
		time.Sleep(time.Millisecond)
	}
	if seamCalls.Load() < target {
		t.Fatal("rebuild loop stopped attempting")
	}
	f.ix.Close() // drain the loop before reading counters race-free
	if got := f.ix.SocialStats().LandmarkForcedInstalls; got != first {
		t.Fatalf("forced installs grew %d -> %d within the interval", first, got)
	}
	// The window is closed by the synchronous rebuild instead.
	if f.ix.RebuildDisabledLandmarks() == 0 {
		t.Fatal("no landmarks left to rebuild — seam never disabled any")
	}
	if got := f.ix.SocialStats().DisabledLandmarks; got != 0 {
		t.Fatalf("%d landmarks disabled after sync rebuild", got)
	}
}
