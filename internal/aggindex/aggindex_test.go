package aggindex

import (
	"math"
	"math/rand"
	"testing"

	"ssrq/internal/graph"
	"ssrq/internal/landmark"
	"ssrq/internal/spatial"
)

type fixture struct {
	g       *graph.Graph
	lm      *landmark.Set
	grid    *spatial.Grid
	ix      *Index
	pts     []spatial.Point
	located []bool
}

func mkFixture(t *testing.T, rng *rand.Rand, n, m, s, levels int, unlocated float64, disconnect bool) *fixture {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		if disconnect && v == n/2 {
			continue // split into two components
		}
		u := rng.Intn(v)
		if disconnect && (u < n/2) != (v < n/2) {
			u = v - 1 // keep edges within the half
		}
		if u == v {
			continue
		}
		_ = b.AddEdge(graph.VertexID(u), graph.VertexID(v), 0.1+rng.Float64()*4.9)
	}
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if disconnect && (u < n/2) != (v < n/2) {
			continue
		}
		_ = b.AddEdge(graph.VertexID(u), graph.VertexID(v), 0.1+rng.Float64()*4.9)
	}
	g := b.MustBuild()
	lm, err := landmark.Select(g, m, landmark.Farthest, 42)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]spatial.Point, n)
	located := make([]bool, n)
	for i := range pts {
		pts[i] = spatial.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		located[i] = rng.Float64() >= unlocated
	}
	layout, err := spatial.NewLayout(spatial.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, s, levels)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := spatial.NewGrid(layout, pts, located)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := New(grid, lm)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{g: g, lm: lm, grid: grid, ix: ix, pts: pts, located: located}
}

// verifyInvariants checks that every cell's summary exactly brackets its
// members at every level.
func verifyInvariants(t *testing.T, f *fixture) {
	t.Helper()
	layout := f.grid.Layout()
	m := f.lm.M()
	leaf := layout.LeafLevel()
	for level := 0; level <= leaf; level++ {
		for idx := int32(0); idx < int32(layout.NumCells(level)); idx++ {
			// Gather members under this cell by scanning descendant leaves.
			var members []int32
			var walk func(l int, i int32)
			walk = func(l int, i int32) {
				if l == leaf {
					members = append(members, f.grid.CellUsers(i)...)
					return
				}
				for _, c := range layout.ChildIndices(l, i, nil) {
					walk(l+1, c)
				}
			}
			walk(level, idx)
			for j := 0; j < m; j++ {
				lo, hi := math.Inf(1), math.Inf(-1)
				for _, u := range members {
					d := f.lm.Dist(j, u)
					if d < lo {
						lo = d
					}
					if d > hi {
						hi = d
					}
				}
				if got := f.ix.MinSummary(level, idx, j); got != lo {
					t.Fatalf("level %d cell %d lm %d: min %v, want %v", level, idx, j, got, lo)
				}
				if got := f.ix.MaxSummary(level, idx, j); got != hi {
					t.Fatalf("level %d cell %d lm %d: max %v, want %v", level, idx, j, got, hi)
				}
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil arguments accepted")
	}
}

func TestBuildSummariesBracketMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := mkFixture(t, rng, 200, 4, 4, 2, 0.2, false)
	verifyInvariants(t, f)
}

func TestSocialLowerBoundIsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 6; trial++ {
		f := mkFixture(t, rng, 120, 1+rng.Intn(5), 3+rng.Intn(4), 1+rng.Intn(2), 0.1, trial%2 == 1)
		layout := f.grid.Layout()
		leaf := layout.LeafLevel()
		for probe := 0; probe < 10; probe++ {
			q := graph.VertexID(rng.Intn(120))
			qvec := f.lm.VertexVector(q)
			dist := f.g.DistancesFrom(q)
			for idx := int32(0); idx < int32(layout.NumCells(leaf)); idx++ {
				members := f.grid.CellUsers(idx)
				bound := f.ix.SocialLowerBound(leaf, idx, qvec)
				for _, u := range members {
					if bound > dist[u]+1e-9 {
						t.Fatalf("trial %d: bound %v > true %v for user %d in cell %d",
							trial, bound, dist[u], u, idx)
					}
				}
				if len(members) == 0 && bound != graph.Infinity {
					t.Fatalf("empty cell bound = %v, want +Inf", bound)
				}
			}
		}
	}
}

func TestSocialLowerBoundInternalLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := mkFixture(t, rng, 150, 3, 4, 2, 0, false)
	layout := f.grid.Layout()
	q := graph.VertexID(17)
	qvec := f.lm.VertexVector(q)
	dist := f.g.DistancesFrom(q)
	for idx := int32(0); idx < int32(layout.NumCells(0)); idx++ {
		bound := f.ix.SocialLowerBound(0, idx, qvec)
		for _, c := range layout.ChildIndices(0, idx, nil) {
			for _, u := range f.grid.CellUsers(c) {
				if bound > dist[u]+1e-9 {
					t.Fatalf("internal bound %v > true %v for user %d", bound, dist[u], u)
				}
			}
		}
	}
}

func TestPaperExampleFigure4(t *testing.T) {
	// Reconstruction of the paper's Fig. 4 scenario: one landmark, cell with
	// three users at landmark distances 4, 3, 1 → m̂=4, m̌=1. Query at
	// landmark distance 0 (the landmark itself) gives pˇ = m̌ − 0 = 1.
	b := graph.NewBuilder(5)
	// Star-ish graph: landmark is vertex 0; users 1..3 in the cell at
	// distances 4, 3, 1; vertex 4 elsewhere.
	_ = b.AddEdge(0, 1, 4)
	_ = b.AddEdge(0, 2, 3)
	_ = b.AddEdge(0, 3, 1)
	_ = b.AddEdge(0, 4, 2)
	g := b.MustBuild()
	lm, err := landmark.Select(g, 1, landmark.HighestDegree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lm.Vertices()[0] != 0 {
		t.Fatalf("expected hub landmark 0, got %d", lm.Vertices()[0])
	}
	pts := []spatial.Point{{X: 90, Y: 90}, {X: 10, Y: 10}, {X: 12, Y: 12}, {X: 14, Y: 14}, {X: 80, Y: 80}}
	located := []bool{true, true, true, true, true}
	layout, _ := spatial.NewLayout(spatial.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, 4, 1)
	grid, _ := spatial.NewGrid(layout, pts, located)
	ix, err := New(grid, lm)
	if err != nil {
		t.Fatal(err)
	}
	leafIdx := layout.CellIndex(0, pts[1])
	if got := ix.MinSummary(0, leafIdx, 0); got != 1 {
		t.Fatalf("m̌ = %v, want 1", got)
	}
	if got := ix.MaxSummary(0, leafIdx, 0); got != 4 {
		t.Fatalf("m̂ = %v, want 4", got)
	}
	qvec := lm.VertexVector(0)
	if got := ix.SocialLowerBound(0, leafIdx, qvec); got != 1 {
		t.Fatalf("pˇ = %v, want 1", got)
	}
}

func TestMoveMaintainsSummaries(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := mkFixture(t, rng, 150, 4, 4, 2, 0.2, false)
	for step := 0; step < 500; step++ {
		id := int32(rng.Intn(150))
		switch rng.Intn(4) {
		case 0, 1:
			f.ix.Move(id, spatial.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
		case 2:
			f.ix.RemoveLocation(id)
		case 3:
			f.ix.SetLocated(id, spatial.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
		}
	}
	verifyInvariants(t, f)
}

func TestMoveWithinLeafSkipsMaintenance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := mkFixture(t, rng, 100, 2, 4, 1, 0, false)
	layout := f.grid.Layout()
	id := int32(7)
	leaf := f.grid.LeafOf(id)
	r := layout.CellRect(layout.LeafLevel(), leaf)
	center := spatial.Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
	f.ix.Move(id, center)
	if f.grid.LeafOf(id) != leaf {
		t.Fatal("intra-cell move changed leaf")
	}
	if f.grid.Point(id) != center {
		t.Fatal("intra-cell move lost coordinates")
	}
	verifyInvariants(t, f)
}

func TestRemoveResponsibleMemberNarrowsSummary(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := mkFixture(t, rng, 100, 2, 4, 1, 0, false)
	layout := f.grid.Layout()
	leafLevel := layout.LeafLevel()
	// Find a leaf with ≥2 members and identify the max-responsible user for
	// landmark 0.
	for idx := int32(0); idx < int32(layout.NumCells(leafLevel)); idx++ {
		users := f.grid.CellUsers(idx)
		if len(users) < 2 {
			continue
		}
		maxU, maxD := int32(-1), math.Inf(-1)
		for _, u := range users {
			if d := f.lm.Dist(0, u); d > maxD {
				maxU, maxD = u, d
			}
		}
		f.ix.RemoveLocation(maxU)
		verifyInvariants(t, f)
		return
	}
	t.Skip("no multi-member leaf in fixture")
}

func TestUnlocatedUsersAbsentFromSummaries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := mkFixture(t, rng, 120, 3, 4, 2, 0.5, false)
	verifyInvariants(t, f)
	// Unlocate everything: all summaries must become (+Inf, −Inf).
	for id := int32(0); id < 120; id++ {
		f.ix.RemoveLocation(id)
	}
	layout := f.grid.Layout()
	for level := 0; level < layout.Levels; level++ {
		for idx := int32(0); idx < int32(layout.NumCells(level)); idx++ {
			for j := 0; j < f.lm.M(); j++ {
				if !math.IsInf(f.ix.MinSummary(level, idx, j), 1) {
					t.Fatalf("emptied cell has finite min summary")
				}
			}
		}
	}
}
