package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ssrq/internal/oplog"
)

func moveRec(id int32, x float64) oplog.Record {
	return oplog.Record{Kind: oplog.KindMove, ID: id, X: x, Y: 1 - x}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func appendN(t *testing.T, l *Log, start, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, _, err := l.Append([]oplog.Record{moveRec(int32(start+i), 0.25)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, dir, Options{Fsync: FsyncOff})
	if rec.LastSeq != 0 || len(rec.TailRecords) != 0 {
		t.Fatalf("fresh log not empty: %+v", rec)
	}
	first, last, err := l.Append([]oplog.Record{moveRec(1, 0.1), moveRec(2, 0.2)})
	if err != nil || first != 1 || last != 2 {
		t.Fatalf("Append: first=%d last=%d err=%v", first, last, err)
	}
	appendN(t, l, 3, 5)
	if got := l.LastSeq(); got != 7 {
		t.Fatalf("LastSeq=%d, want 7", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := mustOpen(t, dir, Options{Fsync: FsyncOff})
	defer func() {
		if err := l2.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if rec2.LastSeq != 7 || len(rec2.TailRecords) != 7 {
		t.Fatalf("reopen: LastSeq=%d tail=%d", rec2.LastSeq, len(rec2.TailRecords))
	}
	for i, r := range rec2.TailRecords {
		if r.Seq != uint64(i+1) {
			t.Fatalf("tail record %d has seq %d", i, r.Seq)
		}
	}
	// Appends continue the sequence.
	if first, _, err := l2.Append([]oplog.Record{moveRec(9, 0.9)}); err != nil || first != 8 {
		t.Fatalf("continued append: first=%d err=%v", first, err)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncOff})
	appendN(t, l, 1, 10)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the last record mid-way, as a crash would.
	names, err := listSeqNames(dir, "wal-", ".log")
	if err != nil || len(names) != 1 {
		t.Fatalf("segments: %v %v", names, err)
	}
	path := filepath.Join(dir, names[0])
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-7); err != nil {
		t.Fatal(err)
	}

	l2, rec := mustOpen(t, dir, Options{Fsync: FsyncOff})
	if rec.LastSeq != 9 || len(rec.TailRecords) != 9 {
		t.Fatalf("after tear: LastSeq=%d tail=%d", rec.LastSeq, len(rec.TailRecords))
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("TruncatedBytes not reported")
	}
	// The torn bytes are physically gone and the next append reuses seq 10.
	if first, _, err := l2.Append([]oplog.Record{moveRec(42, 0.4)}); err != nil || first != 10 {
		t.Fatalf("append after tear: first=%d err=%v", first, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l3, rec3 := mustOpen(t, dir, Options{Fsync: FsyncOff})
	if rec3.LastSeq != 10 {
		t.Fatalf("after reopen: LastSeq=%d", rec3.LastSeq)
	}
	if rec3.TailRecords[9].ID != 42 {
		t.Fatalf("replacement record lost: %+v", rec3.TailRecords[9])
	}
	if err := l3.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestCorruptTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncOff})
	appendN(t, l, 1, 5)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	names, _ := listSeqNames(dir, "wal-", ".log")
	path := filepath.Join(dir, names[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xff // corrupt inside the last record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, dir, Options{Fsync: FsyncOff})
	defer func() {
		if err := l2.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if rec.LastSeq != 4 || len(rec.TailRecords) != 4 {
		t.Fatalf("after corruption: LastSeq=%d tail=%d", rec.LastSeq, len(rec.TailRecords))
	}
}

func TestRotationAndReadFrom(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncOff, SegmentMaxBytes: 256})
	appendN(t, l, 1, 100)
	defer func() {
		if err := l.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if st := l.Stats(); st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	recs, lastSeq, err := l.ReadFrom(40, 10)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if len(recs) != 10 || recs[0].Seq != 40 || recs[9].Seq != 49 {
		t.Fatalf("ReadFrom window wrong: %d recs, first=%d", len(recs), recs[0].Seq)
	}
	if lastSeq != 100 {
		t.Fatalf("lastSeq=%d, want 100", lastSeq)
	}
	// Reading past the end is empty, not an error.
	recs, _, err = l.ReadFrom(101, 10)
	if err != nil || len(recs) != 0 {
		t.Fatalf("past-end read: %d recs, err=%v", len(recs), err)
	}
}

func TestCheckpointPruneAndRecover(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncOff, SegmentMaxBytes: 256})
	appendN(t, l, 1, 50)
	// Checkpoint claiming seq 50 with a synthetic state diff.
	state := []oplog.Record{moveRec(7, 0.7), {Kind: oplog.KindEdgeUpsert, U: 1, V: 2, W: 0.5}}
	if err := l.WriteCheckpoint(50, state); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	appendN(t, l, 51, 10)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec := mustOpen(t, dir, Options{Fsync: FsyncOff})
	defer func() {
		if err := l2.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if rec.CheckpointSeq != 50 {
		t.Fatalf("CheckpointSeq=%d", rec.CheckpointSeq)
	}
	if len(rec.CheckpointRecords) != 2 || rec.CheckpointRecords[0].ID != 7 {
		t.Fatalf("checkpoint records wrong: %+v", rec.CheckpointRecords)
	}
	if len(rec.TailRecords) != 10 || rec.TailRecords[0].Seq != 51 {
		t.Fatalf("tail wrong: %d recs", len(rec.TailRecords))
	}
	// Pre-checkpoint segments were pruned: seq 1 is gone.
	if _, _, err := l2.ReadFrom(1, 1); !errors.Is(err, ErrCompacted) {
		t.Fatalf("pruned read: err=%v, want ErrCompacted", err)
	}
	if l2.FirstSeq() <= 1 {
		t.Fatalf("FirstSeq=%d after prune", l2.FirstSeq())
	}
}

func TestKeepSegmentsRetainsFullHistory(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncOff, SegmentMaxBytes: 256, KeepSegments: true})
	defer func() {
		if err := l.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	appendN(t, l, 1, 50)
	if err := l.WriteCheckpoint(50, nil); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	appendN(t, l, 51, 5)
	recs, lastSeq, err := l.ReadFrom(1, 1000)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if len(recs) != 55 || lastSeq != 55 {
		t.Fatalf("full history: %d recs, last=%d", len(recs), lastSeq)
	}
}

func TestCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncOff, KeepSegments: true})
	appendN(t, l, 1, 10)
	if err := l.WriteCheckpoint(4, []oplog.Record{moveRec(1, 0.1)}); err != nil {
		t.Fatalf("ckpt1: %v", err)
	}
	if err := l.WriteCheckpoint(8, []oplog.Record{moveRec(2, 0.2)}); err != nil {
		t.Fatalf("ckpt2: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Damage the newest checkpoint; recovery must fall back to seq 4.
	if err := os.Truncate(filepath.Join(dir, ckptName(8)), ckptHeaderSize+3); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, dir, Options{Fsync: FsyncOff})
	defer func() {
		if err := l2.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if rec.CheckpointSeq != 4 {
		t.Fatalf("fallback CheckpointSeq=%d, want 4", rec.CheckpointSeq)
	}
	if len(rec.TailRecords) != 6 || rec.TailRecords[0].Seq != 5 {
		t.Fatalf("fallback tail: %d recs", len(rec.TailRecords))
	}
}

func TestCrashSeamTearsMidRecord(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncOff})
	appendN(t, l, 1, 10)
	// Allow 10 more bytes: the next record tears mid-write.
	l.TestingLimitBytes(10)
	appendN(t, l, 11, 5) // appends "succeed" but vanish
	if !l.Crashed() {
		t.Fatal("seam did not trip")
	}
	// No Close — the process "died". Recovery sees exactly the clean prefix.
	_, rec := mustOpen(t, dir, Options{Fsync: FsyncOff})
	if rec.LastSeq != 10 {
		t.Fatalf("recovered LastSeq=%d, want 10", rec.LastSeq)
	}
	if rec.TruncatedBytes != 10 {
		t.Fatalf("TruncatedBytes=%d, want 10", rec.TruncatedBytes)
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncBatch})
	const G, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, _, err := l.Append([]oplog.Record{moveRec(int32(g*per+i), 0.5)}); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := l.LastSeq(); got != G*per {
		t.Fatalf("LastSeq=%d, want %d", got, G*per)
	}
	if got := l.DurableSeq(); got != G*per {
		t.Fatalf("DurableSeq=%d, want %d (batch policy syncs before return)", got, G*per)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The sequence is contiguous and totally ordered on disk.
	_, rec := mustOpen(t, dir, Options{Fsync: FsyncOff})
	if len(rec.TailRecords) != G*per {
		t.Fatalf("replay %d records, want %d", len(rec.TailRecords), G*per)
	}
}

func TestIntervalFsyncAdvancesDurable(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncInterval, FsyncInterval: 5 * time.Millisecond})
	appendN(t, l, 1, 3)
	deadline := time.Now().Add(2 * time.Second)
	for l.DurableSeq() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("DurableSeq stuck at %d", l.DurableSeq())
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestScanDirReadOnly(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncOff})
	appendN(t, l, 1, 6)
	// Live scan while the writer still owns the log.
	rec, err := ScanDir(dir)
	if err != nil {
		t.Fatalf("ScanDir: %v", err)
	}
	if rec.LastSeq != 6 || len(rec.TailRecords) != 6 {
		t.Fatalf("live scan: LastSeq=%d tail=%d", rec.LastSeq, len(rec.TailRecords))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Fsync: FsyncOff})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, _, err := l.Append([]oplog.Record{moveRec(1, 0.5)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
}
