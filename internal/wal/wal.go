// Package wal is a group-committed write-ahead log of oplog records, plus
// snapshot checkpoints and the crash-recovery scan that stitches the two
// back into an engine.
//
// On-disk layout (all little-endian, all records self-checksummed):
//
//	<dir>/wal-<firstseq>.log          segment: 16-byte header
//	                                  ("SSRQWAL1" + first seq), then
//	                                  back-to-back oplog records with
//	                                  contiguous sequence numbers
//	<dir>/checkpoint-<seq>.ckpt       checkpoint: 24-byte header
//	                                  ("SSRQCKP1" + seq + record count),
//	                                  then that many oplog records that
//	                                  rebuild the state diff vs the
//	                                  construction dataset
//
// Appends are serialized and assign sequence numbers; a batch is one
// buffered write to the OS, so a crashed process (whose page cache
// survives) loses at most the batch being written when it died — always a
// suffix. Fsync policy decides what a power loss can take: per-batch group
// commit (concurrent appenders share one fsync), interval (a background
// syncer), or off. Checkpoints are written tmp→fsync→rename and prune the
// segments they cover; recovery loads the newest valid checkpoint and
// replays the remaining tail, truncating a torn or corrupt final segment
// tail at the last clean record boundary.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ssrq/internal/oplog"
)

// FsyncPolicy selects when appended records are fsynced.
type FsyncPolicy int

const (
	// FsyncBatch fsyncs before an append returns; concurrent appenders
	// share one fsync (group commit).
	FsyncBatch FsyncPolicy = iota
	// FsyncInterval fsyncs on a background timer (Options.FsyncInterval).
	FsyncInterval
	// FsyncOff never fsyncs. Data still reaches the OS per append, so it
	// survives process death (kill -9); only power loss can take it.
	FsyncOff
)

// String names the policy for stats/flags.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncBatch:
		return "batch"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy parses "batch", "interval", or "off".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "batch", "":
		return FsyncBatch, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want batch, interval, or off)", s)
}

// Options configures a Log.
type Options struct {
	Fsync         FsyncPolicy
	FsyncInterval time.Duration // FsyncInterval policy period (default 50ms)
	// SegmentMaxBytes rotates the active segment past this size
	// (default 8 MiB).
	SegmentMaxBytes int64
	// KeepSegments disables segment pruning on checkpoint, keeping the
	// full history replayable from sequence 1 (followers tailing the
	// directory, differential tests).
	KeepSegments bool
	// StartSeq is the first sequence number of a brand-new log
	// (default 1). Ignored when the directory already holds a log.
	StartSeq uint64
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 50 * time.Millisecond
	}
	if o.SegmentMaxBytes <= 0 {
		o.SegmentMaxBytes = 8 << 20
	}
	if o.StartSeq == 0 {
		o.StartSeq = 1
	}
	return o
}

var (
	// ErrClosed reports an operation on a closed log.
	ErrClosed = errors.New("wal: closed")
	// ErrCompacted reports a read below the first retained sequence (the
	// records were pruned by a checkpoint); readers must re-bootstrap.
	ErrCompacted = errors.New("wal: sequence compacted")
)

var segMagic = [8]byte{'S', 'S', 'R', 'Q', 'W', 'A', 'L', '1'}
var ckptMagic = [8]byte{'S', 'S', 'R', 'Q', 'C', 'K', 'P', '1'}

const segHeaderSize = 16
const ckptHeaderSize = 24

func segName(first uint64) string { return fmt.Sprintf("wal-%016x.log", first) }
func ckptName(seq uint64) string  { return fmt.Sprintf("checkpoint-%016x.ckpt", seq) }
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	return v, err == nil
}

// Recovery is what Open (or ScanDir) found on disk: the newest valid
// checkpoint plus the replayable tail after it. Apply CheckpointRecords
// then TailRecords, in order, to rebuild the logged state.
type Recovery struct {
	CheckpointSeq     uint64 // 0 when no checkpoint was found
	CheckpointRecords []oplog.Record
	TailRecords       []oplog.Record
	// FirstSeq/LastSeq bound the records retained in segments
	// (LastSeq == CheckpointSeq when the tail is empty).
	FirstSeq, LastSeq uint64
	// TruncatedBytes counts torn/corrupt tail bytes dropped from the
	// final segment.
	TruncatedBytes int64
}

// Log is an append-only write-ahead log rooted at one directory. One
// writer process per directory; readers (ScanDir, ReadDirFrom, followers)
// are safe concurrently.
type Log struct {
	dir  string
	opts Options

	mu          sync.Mutex
	f           *os.File
	w           *bufio.Writer
	buf         []byte
	activeFirst uint64
	activeBytes int64
	earliest    uint64 // first seq still retained in segments
	nextSeq     uint64
	closed      bool
	crashed     bool // test seam tripped: writes silently vanish

	written atomic.Uint64 // last seq handed to the OS
	synced  atomic.Uint64 // last seq known durable under the policy
	syncMu  sync.Mutex

	ckptSeq      atomic.Uint64
	checkpoints  atomic.Int64
	appendErrors atomic.Int64

	// writeBudget is the crash-test seam: once non-negative, at most that
	// many further bytes reach the file, then the log behaves as if the
	// process died (writes vanish, fsync is refused).
	writeBudget atomic.Int64

	stopSync chan struct{}
	syncDone chan struct{}
}

// Open opens (creating or recovering) the log in dir and reports what a
// restart must replay. The returned Recovery is nil only on error.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	rec, segs, err := scan(dir, true)
	if err != nil {
		return nil, nil, err
	}

	l := &Log{dir: dir, opts: opts}
	l.writeBudget.Store(-1)
	l.ckptSeq.Store(rec.CheckpointSeq)
	l.nextSeq = rec.LastSeq + 1
	if l.nextSeq < opts.StartSeq {
		l.nextSeq = opts.StartSeq
	}
	l.earliest = rec.FirstSeq
	l.written.Store(rec.LastSeq)
	l.synced.Store(rec.LastSeq)

	if n := len(segs); n > 0 {
		last := segs[n-1]
		f, err := os.OpenFile(filepath.Join(dir, segName(last.first)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: reopen segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			closeQuiet(f)
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		l.f, l.w = f, bufio.NewWriter(f)
		l.activeFirst, l.activeBytes = last.first, st.Size()
	} else {
		if err := l.createSegmentLocked(l.nextSeq); err != nil {
			return nil, nil, err
		}
		l.earliest = l.nextSeq
	}

	if opts.Fsync == FsyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, rec, nil
}

func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stopSync:
			return
		case <-t.C:
			if err := l.maybeSync(l.written.Load()); err != nil {
				l.appendErrors.Add(1)
			}
		}
	}
}

// Append assigns sequence numbers to recs (mutating their Seq fields),
// writes them as one buffered batch, and applies the fsync policy. It
// returns the first and last assigned sequence.
func (l *Log) Append(recs []oplog.Record) (first, last uint64, err error) {
	if len(recs) == 0 {
		return 0, 0, nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, 0, ErrClosed
	}
	first = l.nextSeq
	l.buf = l.buf[:0]
	for i := range recs {
		recs[i].Seq = l.nextSeq
		l.nextSeq++
		l.buf = recs[i].Append(l.buf)
	}
	last = l.nextSeq - 1
	if !l.crashed && l.activeBytes >= l.opts.SegmentMaxBytes {
		if rerr := l.rotateLocked(first); rerr != nil {
			l.appendErrors.Add(1)
			l.mu.Unlock()
			return first, last, rerr
		}
	}
	werr := l.writeLocked(l.buf)
	if werr == nil && !l.crashed {
		if werr = l.w.Flush(); werr == nil {
			l.written.Store(last)
		}
	}
	l.mu.Unlock()
	if werr != nil {
		l.appendErrors.Add(1)
		return first, last, werr
	}
	switch l.opts.Fsync {
	case FsyncBatch:
		if serr := l.maybeSync(last); serr != nil {
			l.appendErrors.Add(1)
			return first, last, serr
		}
	case FsyncOff:
		// Process-crash durable only (the batch reached the OS); power
		// loss may take it, which is the policy's contract.
		advance(&l.synced, l.written.Load())
	}
	return first, last, nil
}

// writeLocked writes b through the buffered writer, honoring the crash
// seam: once the budget runs out the tail of b is dropped, the budget trips
// to "crashed", and all later writes silently vanish — exactly the torn
// suffix a dead process leaves in the page cache.
func (l *Log) writeLocked(b []byte) error {
	if l.crashed {
		return nil
	}
	if budget := l.writeBudget.Load(); budget >= 0 {
		n := int64(len(b))
		if n >= budget {
			n = budget
			l.crashed = true
		}
		l.writeBudget.Store(budget - n)
		b = b[:n]
		if len(b) > 0 {
			if _, err := l.w.Write(b); err != nil {
				return err
			}
			if err := l.w.Flush(); err != nil {
				return err
			}
			l.activeBytes += n
		}
		return nil
	}
	n, err := l.w.Write(b)
	l.activeBytes += int64(n)
	return err
}

// maybeSync makes every record up to target durable, sharing fsyncs among
// concurrent callers: if someone else's fsync already covered target, skip.
func (l *Log) maybeSync(target uint64) error {
	if l.synced.Load() >= target {
		return nil
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.synced.Load() >= target {
		return nil
	}
	l.mu.Lock()
	f, w, dead := l.f, l.written.Load(), l.crashed || l.closed
	l.mu.Unlock()
	if dead || f == nil || w < target {
		// Crashed (seam) or the write itself failed; nothing to promise.
		return nil
	}
	if err := f.Sync(); err != nil {
		return err
	}
	advance(&l.synced, w)
	return nil
}

func advance(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (l *Log) createSegmentLocked(first uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(first)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	hdr := make([]byte, 0, segHeaderSize)
	hdr = append(hdr, segMagic[:]...)
	hdr = binary.LittleEndian.AppendUint64(hdr, first)
	if _, err := f.Write(hdr); err != nil {
		closeQuiet(f)
		return fmt.Errorf("wal: segment header: %w", err)
	}
	l.f, l.w = f, bufio.NewWriter(f)
	l.activeFirst, l.activeBytes = first, segHeaderSize
	return nil
}

// rotateLocked seals the active segment (flush+fsync+close) and starts a
// new one whose first record will be seq first.
func (l *Log) rotateLocked(first uint64) error {
	if l.f != nil {
		if err := l.w.Flush(); err != nil {
			return err
		}
		if err := l.f.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f, l.w = nil, nil
	}
	return l.createSegmentLocked(first)
}

// WriteCheckpoint durably writes a checkpoint claiming "applying these
// records to a freshly built engine reaches the logged state as of seq",
// then rotates and (unless KeepSegments) prunes the segments and older
// checkpoints it supersedes. Callers must guarantee every record ≤ seq was
// applied to the state recs describe (flush async pipelines first);
// overlap past seq is harmless because records are absolute writes.
func (l *Log) WriteCheckpoint(seq uint64, recs []oplog.Record) error {
	l.mu.Lock()
	if l.closed || l.crashed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.mu.Unlock()

	buf := make([]byte, 0, ckptHeaderSize+len(recs)*oplog.MaxEncodedSize)
	buf = append(buf, ckptMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(recs)))
	for _, r := range recs {
		r.Seq = 0 // checkpoint records carry state, not log positions
		buf = r.Append(buf)
	}
	tmp := filepath.Join(l.dir, ckptName(seq)+".tmp")
	if err := writeFileSync(tmp, buf); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, ckptName(seq))); err != nil {
		return fmt.Errorf("wal: install checkpoint: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.crashed {
		return ErrClosed
	}
	if seq > l.ckptSeq.Load() {
		l.ckptSeq.Store(seq)
	}
	l.checkpoints.Add(1)
	// Rotate so the whole pre-checkpoint history sits in sealed segments,
	// then drop everything the checkpoint supersedes.
	if l.activeBytes > segHeaderSize {
		if err := l.rotateLocked(l.nextSeq); err != nil {
			return err
		}
	}
	if l.opts.KeepSegments {
		return nil
	}
	return l.pruneLocked(seq)
}

// pruneLocked removes sealed segments fully covered by a checkpoint at seq
// and all but the two newest checkpoints.
func (l *Log) pruneLocked(seq uint64) error {
	segNames, err := listSeqNames(l.dir, "wal-", ".log")
	if err != nil {
		return err
	}
	firsts := make([]uint64, len(segNames))
	for i, name := range segNames {
		firsts[i], _ = parseSeqName(name, "wal-", ".log")
	}
	for i, first := range firsts {
		if first == l.activeFirst {
			break
		}
		if i+1 < len(firsts) && firsts[i+1] <= seq+1 {
			if err := os.Remove(filepath.Join(l.dir, segNames[i])); err != nil {
				return fmt.Errorf("wal: prune: %w", err)
			}
			l.earliest = firsts[i+1]
		} else {
			l.earliest = first
			break
		}
	}
	names, err := listSeqNames(l.dir, "checkpoint-", ".ckpt")
	if err != nil {
		return err
	}
	for i := 0; i+2 < len(names); i++ {
		if err := os.Remove(filepath.Join(l.dir, names[i])); err != nil {
			return fmt.Errorf("wal: prune checkpoint: %w", err)
		}
	}
	return syncDir(l.dir)
}

// Sync forces everything appended so far durable regardless of policy.
func (l *Log) Sync() error {
	return l.maybeSync(l.written.Load())
}

// Close flushes, fsyncs, and closes the log. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	if l.stopSync != nil {
		close(l.stopSync)
	}
	var err error
	if l.f != nil && !l.crashed {
		if ferr := l.w.Flush(); ferr != nil {
			err = ferr
		} else if serr := l.f.Sync(); serr != nil {
			err = serr
		} else {
			advance(&l.synced, l.written.Load())
		}
		if cerr := l.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	} else if l.f != nil {
		closeQuiet(l.f)
	}
	l.f, l.w = nil, nil
	l.closed = true
	l.mu.Unlock()
	if l.syncDone != nil {
		<-l.syncDone
	}
	return err
}

// LastSeq returns the last assigned sequence number (0 when empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// DurableSeq returns the last sequence durable under the fsync policy.
func (l *Log) DurableSeq() uint64 { return l.synced.Load() }

// FirstSeq returns the first sequence still retained in segments.
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.earliest
}

// CheckpointSeq returns the newest installed checkpoint's sequence.
func (l *Log) CheckpointSeq() uint64 { return l.ckptSeq.Load() }

// Stats is a point-in-time durability summary for /stats and experiments.
type Stats struct {
	LastSeq       uint64 `json:"last_seq"`
	DurableSeq    uint64 `json:"durable_seq"`
	FirstSeq      uint64 `json:"first_seq"`
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	Checkpoints   int64  `json:"checkpoints"`
	Segments      int    `json:"segments"`
	SizeBytes     int64  `json:"size_bytes"`
	AppendErrors  int64  `json:"append_errors"`
	Fsync         string `json:"fsync"`
}

// Stats reports the current durability counters.
func (l *Log) Stats() Stats {
	st := Stats{
		LastSeq:       l.LastSeq(),
		DurableSeq:    l.DurableSeq(),
		FirstSeq:      l.FirstSeq(),
		CheckpointSeq: l.CheckpointSeq(),
		Checkpoints:   l.checkpoints.Load(),
		AppendErrors:  l.appendErrors.Load(),
		Fsync:         l.opts.Fsync.String(),
	}
	if entries, err := os.ReadDir(l.dir); err == nil {
		for _, e := range entries {
			if _, ok := parseSeqName(e.Name(), "wal-", ".log"); !ok {
				continue
			}
			st.Segments++
			if info, err := e.Info(); err == nil {
				st.SizeBytes += info.Size()
			}
		}
	}
	return st
}

// ReadFrom returns up to max records with sequence ≥ from, in order, plus
// the last sequence currently readable. It returns ErrCompacted when from
// predates the retained history (the caller must re-bootstrap from a
// checkpoint).
func (l *Log) ReadFrom(from uint64, max int) ([]oplog.Record, uint64, error) {
	// Appends flush to the OS under mu per batch, so a directory read
	// observes record-aligned data (plus possibly a torn in-flight batch,
	// which the reader stops cleanly at).
	return ReadDirFrom(l.dir, from, max)
}

// Bootstrap returns the record sequence a fresh replica must apply to
// reach this log's base state (newest checkpoint records, Seq 0), plus the
// sequence number that state represents. Tail records after it are served
// by ReadFrom.
func (l *Log) Bootstrap() ([]oplog.Record, uint64, error) {
	seq, recs, err := latestCheckpoint(l.dir)
	if err != nil {
		return nil, 0, err
	}
	return recs, seq, nil
}

// TestingLimitBytes arms the crash seam: after n more bytes reach the
// active segment, the log behaves as a killed process — the batch in
// flight is torn mid-record and every later write vanishes.
func (l *Log) TestingLimitBytes(n int64) {
	l.writeBudget.Store(n)
}

// Crashed reports whether the crash seam has tripped.
func (l *Log) Crashed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.crashed
}

// --- directory scanning (shared by Open, ScanDir, ReadDirFrom) ---

type segInfo struct {
	first uint64
	size  int64
}

// ScanDir reads the log in dir without taking ownership: newest valid
// checkpoint plus tail, tolerating (but not repairing) a torn final
// segment. This is how followers bootstrap from a leader's directory.
func ScanDir(dir string) (*Recovery, error) {
	rec, _, err := scan(dir, false)
	return rec, err
}

// scan loads the recovery view of dir. With repair set, a torn or corrupt
// tail in the final segment is physically truncated at the last clean
// record boundary; otherwise it is only skipped.
func scan(dir string, repair bool) (*Recovery, []segInfo, error) {
	segNames, err := listSeqNames(dir, "wal-", ".log")
	if err != nil {
		return nil, nil, err
	}
	ckptSeq, ckptRecs, err := latestCheckpoint(dir)
	if err != nil {
		return nil, nil, err
	}
	rec := &Recovery{CheckpointSeq: ckptSeq, CheckpointRecords: ckptRecs}

	var segs []segInfo
	var expect uint64
	for i, name := range segNames {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		first, ok := parseSeqName(name, "wal-", ".log")
		if !ok || len(data) < segHeaderSize ||
			string(data[:8]) != string(segMagic[:]) ||
			binary.LittleEndian.Uint64(data[8:16]) != first {
			if i == len(segNames)-1 && len(data) < segHeaderSize {
				// A crash can tear the header write of a fresh segment;
				// drop the whole file.
				if repair {
					if err := os.Remove(path); err != nil {
						return nil, nil, fmt.Errorf("wal: drop torn segment: %w", err)
					}
				}
				rec.TruncatedBytes += int64(len(data))
				break
			}
			return nil, nil, fmt.Errorf("wal: segment %s: bad header", name)
		}
		if expect != 0 && first != expect {
			return nil, nil, fmt.Errorf("wal: segment %s: sequence gap (want first=%d)", name, expect)
		}
		off := segHeaderSize
		seq := first
		for off < len(data) {
			r, n, derr := oplog.Decode(data[off:])
			if derr != nil {
				if i != len(segNames)-1 {
					return nil, nil, fmt.Errorf("wal: segment %s: %v at offset %d (mid-history damage)", name, derr, off)
				}
				rec.TruncatedBytes += int64(len(data) - off)
				if repair {
					if err := os.Truncate(path, int64(off)); err != nil {
						return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
					}
				}
				data = data[:off]
				break
			}
			if r.Seq != seq {
				if i != len(segNames)-1 {
					return nil, nil, fmt.Errorf("wal: segment %s: record seq %d, want %d", name, r.Seq, seq)
				}
				rec.TruncatedBytes += int64(len(data) - off)
				if repair {
					if err := os.Truncate(path, int64(off)); err != nil {
						return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
					}
				}
				data = data[:off]
				break
			}
			if r.Seq > ckptSeq {
				rec.TailRecords = append(rec.TailRecords, r)
			}
			seq++
			off += n
		}
		if rec.FirstSeq == 0 {
			rec.FirstSeq = first
		}
		if seq > first {
			rec.LastSeq = seq - 1
		} else if rec.LastSeq < first-1 {
			rec.LastSeq = first - 1
		}
		expect = seq
		segs = append(segs, segInfo{first: first, size: int64(len(data))})
	}
	if rec.LastSeq < ckptSeq {
		rec.LastSeq = ckptSeq
	}
	if rec.FirstSeq == 0 {
		rec.FirstSeq = ckptSeq + 1
	}
	return rec, segs, nil
}

// ReadDirFrom reads up to max records with sequence ≥ from out of the
// segments in dir, plus the last sequence currently present. Readers may
// race an appending writer; a torn in-flight batch terminates the read
// cleanly. Returns ErrCompacted when from predates the retained segments.
func ReadDirFrom(dir string, from uint64, max int) ([]oplog.Record, uint64, error) {
	if from == 0 {
		from = 1
	}
	segNames, err := listSeqNames(dir, "wal-", ".log")
	if err != nil {
		return nil, 0, err
	}
	if len(segNames) == 0 {
		return nil, 0, nil
	}
	firsts := make([]uint64, len(segNames))
	for i, name := range segNames {
		f, ok := parseSeqName(name, "wal-", ".log")
		if !ok {
			return nil, 0, fmt.Errorf("wal: bad segment name %s", name)
		}
		firsts[i] = f
	}
	if from < firsts[0] {
		return nil, 0, ErrCompacted
	}
	// Start at the last segment whose first seq ≤ from.
	start := sort.Search(len(firsts), func(i int) bool { return firsts[i] > from }) - 1
	var out []oplog.Record
	var lastSeq uint64
	for i := start; i < len(segNames); i++ {
		data, err := os.ReadFile(filepath.Join(dir, segNames[i]))
		if err != nil {
			return nil, 0, fmt.Errorf("wal: %w", err)
		}
		if len(data) < segHeaderSize {
			break // freshly created, header still in flight
		}
		off := segHeaderSize
		for off < len(data) {
			r, n, derr := oplog.Decode(data[off:])
			if derr != nil {
				return out, lastSeq, nil // in-flight tail; stop cleanly
			}
			if r.Seq > lastSeq {
				lastSeq = r.Seq
			}
			if r.Seq >= from && len(out) < max {
				out = append(out, r)
			}
			off += n
		}
	}
	return out, lastSeq, nil
}

// latestCheckpoint loads the newest checkpoint in dir that validates
// end-to-end, skipping damaged ones. (0, nil, nil) when none exists.
func latestCheckpoint(dir string) (uint64, []oplog.Record, error) {
	names, err := listSeqNames(dir, "checkpoint-", ".ckpt")
	if err != nil {
		return 0, nil, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		seq, recs, ok := readCheckpointFile(filepath.Join(dir, names[i]))
		if ok {
			return seq, recs, nil
		}
	}
	return 0, nil, nil
}

func readCheckpointFile(path string) (uint64, []oplog.Record, bool) {
	data, err := os.ReadFile(path)
	if err != nil || len(data) < ckptHeaderSize || string(data[:8]) != string(ckptMagic[:]) {
		return 0, nil, false
	}
	seq := binary.LittleEndian.Uint64(data[8:16])
	count := binary.LittleEndian.Uint64(data[16:24])
	if count > uint64(len(data)) { // cheap sanity bound before allocating
		return 0, nil, false
	}
	recs := make([]oplog.Record, 0, count)
	off := ckptHeaderSize
	for uint64(len(recs)) < count {
		r, n, derr := oplog.Decode(data[off:])
		if derr != nil {
			return 0, nil, false
		}
		recs = append(recs, r)
		off += n
	}
	if off != len(data) {
		return 0, nil, false
	}
	return seq, recs, true
}

func listSeqNames(dir, prefix, suffix string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseSeqName(e.Name(), prefix, suffix); ok {
			names = append(names, e.Name())
		}
	}
	sort.Slice(names, func(i, j int) bool {
		a, _ := parseSeqName(names[i], prefix, suffix)
		b, _ := parseSeqName(names[j], prefix, suffix)
		return a < b
	})
	return names, nil
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		closeQuiet(f)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		closeQuiet(f)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("wal: sync dir: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: %w", cerr)
	}
	return nil
}

func closeQuiet(f *os.File) {
	if err := f.Close(); err != nil {
		_ = err // best-effort close on an error path; primary error wins
	}
}
