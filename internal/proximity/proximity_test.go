package proximity

import (
	"math"
	"math/rand"
	"testing"

	"ssrq/internal/graph"
)

// K4 plus a pendant: vertices 0-3 fully connected, 4 attached to 3.
func k4Pendant(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(5)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			_ = b.AddEdge(graph.VertexID(i), graph.VertexID(j), 1)
		}
	}
	_ = b.AddEdge(3, 4, 1)
	return b.MustBuild()
}

func TestCommonNeighbors(t *testing.T) {
	g := k4Pendant(t)
	if got := CommonNeighbors(g, 0, 1); got != 2 { // share 2 and 3
		t.Fatalf("CN(0,1) = %d, want 2", got)
	}
	if got := CommonNeighbors(g, 0, 4); got != 1 { // share 3
		t.Fatalf("CN(0,4) = %d, want 1", got)
	}
	if got := CommonNeighbors(g, 1, 4); got != 1 {
		t.Fatalf("CN(1,4) = %d, want 1", got)
	}
}

func TestCommonNeighborsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := graph.NewBuilder(50)
	for v := 1; v < 50; v++ {
		_ = b.AddEdge(graph.VertexID(rng.Intn(v)), graph.VertexID(v), 1)
	}
	for i := 0; i < 100; i++ {
		u, v := rng.Intn(50), rng.Intn(50)
		if u != v {
			_ = b.AddEdge(graph.VertexID(u), graph.VertexID(v), 1)
		}
	}
	g := b.MustBuild()
	for i := 0; i < 50; i++ {
		u := graph.VertexID(rng.Intn(50))
		v := graph.VertexID(rng.Intn(50))
		if CommonNeighbors(g, u, v) != CommonNeighbors(g, v, u) {
			t.Fatalf("CN not symmetric for (%d,%d)", u, v)
		}
		if math.Abs(AdamicAdar(g, u, v)-AdamicAdar(g, v, u)) > 1e-12 {
			t.Fatalf("AA not symmetric for (%d,%d)", u, v)
		}
	}
}

func TestAdamicAdarWeighting(t *testing.T) {
	// u and v share two neighbors: a hub (degree 5) and a quiet one
	// (degree 2). The quiet one must contribute more.
	b := graph.NewBuilder(8)
	_ = b.AddEdge(0, 2, 1) // hub 2
	_ = b.AddEdge(1, 2, 1)
	_ = b.AddEdge(2, 4, 1)
	_ = b.AddEdge(2, 5, 1)
	_ = b.AddEdge(2, 6, 1)
	_ = b.AddEdge(0, 3, 1) // quiet 3
	_ = b.AddEdge(1, 3, 1)
	g := b.MustBuild()
	aa := AdamicAdar(g, 0, 1)
	want := 1/math.Log(5) + 1/math.Log(2)
	if math.Abs(aa-want) > 1e-12 {
		t.Fatalf("AA = %v, want %v", aa, want)
	}
}

func TestHopDistance(t *testing.T) {
	g := k4Pendant(t)
	cases := []struct {
		u, v graph.VertexID
		want int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 4, 2}, {4, 0, 2},
	}
	for _, c := range cases {
		if got := HopDistance(g, c.u, c.v); got != c.want {
			t.Fatalf("hops(%d,%d) = %d, want %d", c.u, c.v, got, c.want)
		}
	}
	// Disconnected.
	b := graph.NewBuilder(3)
	_ = b.AddEdge(0, 1, 1)
	g2 := b.MustBuild()
	if got := HopDistance(g2, 0, 2); got != -1 {
		t.Fatalf("disconnected hops = %d, want -1", got)
	}
}

func TestTopCommonNeighbors(t *testing.T) {
	// 0's friends: 1, 2. Vertex 3 is friends with both 1 and 2 (2 shared);
	// vertex 4 only with 1 (1 shared). 3 must rank first, and direct
	// friends must be excluded.
	b := graph.NewBuilder(5)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(0, 2, 1)
	_ = b.AddEdge(1, 3, 1)
	_ = b.AddEdge(2, 3, 1)
	_ = b.AddEdge(1, 4, 1)
	g := b.MustBuild()
	top := TopCommonNeighbors(g, 0, 5)
	if len(top) != 2 || top[0].ID != 3 || top[0].Score != 2 || top[1].ID != 4 {
		t.Fatalf("TopCommonNeighbors = %+v", top)
	}
	for _, s := range top {
		if s.ID == 1 || s.ID == 2 || s.ID == 0 {
			t.Fatal("direct friend or self recommended")
		}
	}
	if got := TopCommonNeighbors(g, 0, 1); len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("k=1: %+v", got)
	}
}

func TestHopDistanceMatchesDijkstraOnUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := graph.NewBuilder(60)
	for v := 1; v < 60; v++ {
		_ = b.AddEdge(graph.VertexID(rng.Intn(v)), graph.VertexID(v), 1)
	}
	for i := 0; i < 80; i++ {
		u, v := rng.Intn(60), rng.Intn(60)
		if u != v {
			_ = b.AddEdge(graph.VertexID(u), graph.VertexID(v), 1)
		}
	}
	g := b.MustBuild()
	dist := g.DistancesFrom(0)
	for v := 0; v < 60; v++ {
		hops := HopDistance(g, 0, graph.VertexID(v))
		if math.Abs(float64(hops)-dist[v]) > 1e-9 {
			t.Fatalf("hops(0,%d) = %d but unit-weight dist = %v", v, hops, dist[v])
		}
	}
}
