// Package proximity implements the alternative social-proximity measures
// the paper surveys in §2.1 before settling on weighted shortest-path
// distance: common-neighbor counting [10], Adamic–Adar weighting, and
// unweighted hop distance. They are not used by the SSRQ algorithms (which
// follow the paper's choice), but let downstream users compare ranking
// semantics — e.g. re-scoring an SSRQ result by common friends.
package proximity

import (
	"math"

	"ssrq/internal/graph"
)

// CommonNeighbors returns |N(u) ∩ N(v)|: the number of shared friends —
// the measure of [10] and the link-prediction baseline of [16], [17].
// Adjacency lists are sorted, so this is a linear merge.
func CommonNeighbors(g *graph.Graph, u, v graph.VertexID) int {
	nu, _ := g.Neighbors(u)
	nv, _ := g.Neighbors(v)
	count, i, j := 0, 0, 0
	for i < len(nu) && j < len(nv) {
		switch {
		case nu[i] == nv[j]:
			count++
			i++
			j++
		case nu[i] < nv[j]:
			i++
		default:
			j++
		}
	}
	return count
}

// AdamicAdar returns Σ_{w ∈ N(u)∩N(v)} 1/log(deg(w)): common neighbors
// weighted down when they are promiscuous hubs.
func AdamicAdar(g *graph.Graph, u, v graph.VertexID) float64 {
	nu, _ := g.Neighbors(u)
	nv, _ := g.Neighbors(v)
	sum, i, j := 0.0, 0, 0
	for i < len(nu) && j < len(nv) {
		switch {
		case nu[i] == nv[j]:
			if d := g.Degree(nu[i]); d > 1 {
				sum += 1 / math.Log(float64(d))
			}
			i++
			j++
		case nu[i] < nv[j]:
			i++
		default:
			j++
		}
	}
	return sum
}

// HopDistance returns the unweighted shortest-path hop count between u and
// v via BFS, or -1 when unreachable. This is the "number of hops" notion of
// Fig. 7a.
func HopDistance(g *graph.Graph, u, v graph.VertexID) int {
	if u == v {
		return 0
	}
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[u] = 0
	queue := []graph.VertexID{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		nbrs, _ := g.Neighbors(x)
		for _, y := range nbrs {
			if dist[y] >= 0 {
				continue
			}
			dist[y] = dist[x] + 1
			if y == v {
				return int(dist[y])
			}
			queue = append(queue, y)
		}
	}
	return -1
}

// TopCommonNeighbors returns the k users sharing the most friends with u
// (ties by ascending ID) — a §2.1-style friend recommender for comparison
// with SSRQ. Only 2-hop neighbors can share a friend, so the scan is local.
func TopCommonNeighbors(g *graph.Graph, u graph.VertexID, k int) []Scored {
	counts := make(map[graph.VertexID]int)
	nu, _ := g.Neighbors(u)
	direct := make(map[graph.VertexID]bool, len(nu))
	for _, w := range nu {
		direct[w] = true
	}
	for _, w := range nu {
		nw, _ := g.Neighbors(w)
		for _, x := range nw {
			if x != u && !direct[x] {
				counts[x]++
			}
		}
	}
	best := make([]Scored, 0, len(counts))
	for v, c := range counts {
		best = append(best, Scored{ID: v, Score: float64(c)})
	}
	sortScored(best)
	if len(best) > k {
		best = best[:k]
	}
	return best
}

// Scored is a user with a proximity score (higher = closer).
type Scored struct {
	ID    graph.VertexID
	Score float64
}

// sortScored orders by descending score, ties by ascending ID (insertion
// sort — candidate sets are 2-hop neighborhoods).
func sortScored(s []Scored) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func less(a, b Scored) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}
