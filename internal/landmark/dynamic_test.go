package landmark

import (
	"math"
	"math/rand"
	"testing"

	"ssrq/internal/graph"
)

// churnStep applies one random edge op to the overlay and repairs the
// dynamic tables, returning the post-change graph.
func churnStep(t *testing.T, rng *rand.Rand, o *graph.Overlay, d *Dynamic, n int) *graph.Graph {
	t.Helper()
	for {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		oldW, had := o.EdgeWeight(u, v)
		switch rng.Intn(3) {
		case 0: // insert or reweight
			w := 0.1 + rng.Float64()*2
			if _, err := o.SetEdge(u, v, w); err != nil {
				t.Fatal(err)
			}
			d.EdgeChanged(o.Working(), u, v, oldW, had, w, true)
		case 1: // remove (retry when absent so removals actually happen)
			if !had {
				continue
			}
			if _, err := o.RemoveEdge(u, v); err != nil {
				t.Fatal(err)
			}
			d.EdgeChanged(o.Working(), u, v, oldW, true, 0, false)
		case 2: // reweight strictly up or down
			if !had {
				continue
			}
			w := oldW * (0.4 + rng.Float64()*1.4)
			if w == oldW {
				continue
			}
			if _, err := o.SetEdge(u, v, w); err != nil {
				t.Fatal(err)
			}
			d.EdgeChanged(o.Working(), u, v, oldW, true, w, true)
		}
		return o.Working()
	}
}

// TestIncrementalRepairStaysExact is the core property of the tentpole:
// after arbitrary interleaved inserts/removes/reweights, every *enabled*
// landmark's table must equal a fresh Dijkstra on the mutated graph, bit for
// bit. A huge budget keeps every landmark enabled so the repair paths are
// fully exercised.
func TestIncrementalRepairStaysExact(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		n := 15 + rng.Intn(50)
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			_ = b.AddEdge(graph.VertexID(rng.Intn(v)), graph.VertexID(v), 0.1+rng.Float64()*2)
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				_ = b.AddEdge(graph.VertexID(u), graph.VertexID(v), 0.1+rng.Float64()*2)
			}
		}
		g := b.MustBuild()
		m := 1 + rng.Intn(5)
		s, err := Select(g, m, Strategy(rng.Intn(3)), int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDynamic(s, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		o := graph.NewOverlay(g)

		for step := 0; step < 60; step++ {
			cur := churnStep(t, rng, o, d, n)
			set := d.Commit()
			if set.NumDisabled() != 0 {
				t.Fatalf("trial %d step %d: landmark disabled despite unbounded budget", trial, step)
			}
			for j, lmv := range set.Vertices() {
				want := cur.DistancesFrom(lmv)
				for v := 0; v < n; v++ {
					if got := set.Dist(j, graph.VertexID(v)); got != want[v] {
						t.Fatalf("trial %d step %d: landmark %d dist to %d = %v, want %v",
							trial, step, j, v, got, want[v])
					}
				}
			}
		}
	}
}

// TestRepairBudgetDisablesAndInstallRestores drives churn with a tiny
// budget: landmarks must get disabled (never silently stale), disabled
// landmarks must drop out of every bound, and InstallTable must restore
// exactness.
func TestRepairBudgetDisablesAndInstallRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const n = 80
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(graph.VertexID(rng.Intn(v)), graph.VertexID(v), 0.5+rng.Float64())
	}
	g := b.MustBuild()
	s, err := Select(g, 4, Farthest, 3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(s, 2) // absurdly small: almost everything overruns
	if err != nil {
		t.Fatal(err)
	}
	o := graph.NewOverlay(g)
	for step := 0; step < 40 && d.View().NumDisabled() < 4; step++ {
		churnStep(t, rng, o, d, n)
	}
	set := d.Commit()
	if set.NumDisabled() == 0 {
		t.Fatal("tiny budget never disabled a landmark")
	}

	// Disabled landmarks must contribute nothing: with all disabled, bounds
	// degenerate to the trivial 0/+Inf.
	if set.NumDisabled() == set.M() {
		if lo := set.LowerBound(0, 5); lo != 0 {
			t.Fatalf("all-disabled LowerBound = %v, want 0", lo)
		}
		if hi := set.UpperBound(0, 5); hi != graph.Infinity {
			t.Fatalf("all-disabled UpperBound = %v, want +Inf", hi)
		}
	}

	// Install fresh tables: everything re-enabled and exact again.
	cur := o.Working()
	for j, lmv := range set.Vertices() {
		if !set.Enabled(j) {
			d.InstallTable(j, cur.DistancesFrom(lmv))
		}
	}
	set = d.Commit()
	if set.NumDisabled() != 0 {
		t.Fatalf("%d landmarks still disabled after install", set.NumDisabled())
	}
	for j, lmv := range set.Vertices() {
		want := cur.DistancesFrom(lmv)
		for v := 0; v < n; v++ {
			if got := set.Dist(j, graph.VertexID(v)); got != want[v] {
				t.Fatalf("landmark %d dist to %d = %v, want %v after install", j, v, got, want[v])
			}
		}
	}
}

// TestBoundsAdmissibleUnderChurn samples LowerBound ≤ true ≤ UpperBound on
// mutated graphs with a moderate budget — the admissibility the paper's
// Lemma-2 pruning and the A* heuristic rest on, under the exact conditions
// (partial disables, repairs, reconnections) production would see.
func TestBoundsAdmissibleUnderChurn(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		n := 20 + rng.Intn(40)
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			_ = b.AddEdge(graph.VertexID(rng.Intn(v)), graph.VertexID(v), 0.1+rng.Float64())
		}
		g := b.MustBuild()
		s, err := Select(g, 3, Farthest, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDynamic(s, 8) // small enough to disable sometimes
		if err != nil {
			t.Fatal(err)
		}
		o := graph.NewOverlay(g)
		for step := 0; step < 50; step++ {
			cur := churnStep(t, rng, o, d, n)
			set := d.Commit()
			src := graph.VertexID(rng.Intn(n))
			dist := cur.DistancesFrom(src)
			h := set.HeuristicTo(src)
			for v := 0; v < n; v++ {
				lo := set.LowerBound(src, graph.VertexID(v))
				hi := set.UpperBound(src, graph.VertexID(v))
				if lo > dist[v]+1e-9 {
					t.Fatalf("trial %d step %d: LowerBound(%d,%d) = %v > true %v (disabled=%d)",
						trial, step, src, v, lo, dist[v], set.NumDisabled())
				}
				if hi < dist[v]-1e-9 {
					t.Fatalf("trial %d step %d: UpperBound(%d,%d) = %v < true %v",
						trial, step, src, v, hi, dist[v])
				}
				if hv := h(graph.VertexID(v)); hv > dist[v]+1e-9 {
					t.Fatalf("trial %d step %d: heuristic %v > true %v", trial, step, hv, dist[v])
				}
			}
		}
	}
}

// TestCommittedEpochsAreImmutable freezes a Set mid-churn and verifies its
// every entry and bound stays bit-stable while later epochs mutate.
func TestCommittedEpochsAreImmutable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 50
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(graph.VertexID(rng.Intn(v)), graph.VertexID(v), 0.2+rng.Float64())
	}
	g := b.MustBuild()
	s, err := Select(g, 3, Random, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDynamic(s, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	o := graph.NewOverlay(g)

	churnStep(t, rng, o, d, n)
	frozen := d.Commit()
	var want []float64
	for j := 0; j < frozen.M(); j++ {
		want = append(want, frozen.Table(j)...)
	}
	wantMask := frozen.DisabledMask()

	for step := 0; step < 30; step++ {
		churnStep(t, rng, o, d, n)
		d.Commit()
	}
	var got []float64
	for j := 0; j < frozen.M(); j++ {
		got = append(got, frozen.Table(j)...)
	}
	if frozen.DisabledMask() != wantMask {
		t.Fatal("frozen epoch's disabled mask changed")
	}
	for i := range want {
		if want[i] != got[i] && !(math.IsNaN(want[i]) && math.IsNaN(got[i])) {
			t.Fatalf("frozen epoch entry %d changed: %v -> %v", i, want[i], got[i])
		}
	}
}

// TestNewDynamicRejectsTooManyLandmarks pins the 64-landmark cap of the
// bitmask representation.
func TestNewDynamicRejectsTooManyLandmarks(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := buildChain(70)
	s, err := Select(g, 65, Random, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDynamic(s, 0); err == nil {
		t.Fatal("65 landmarks accepted")
	}
	s2, err := Select(g, 64, Random, rng.Int63())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDynamic(s2, 0); err != nil {
		t.Fatalf("64 landmarks rejected: %v", err)
	}
}

func buildChain(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n-1; v++ {
		_ = b.AddEdge(graph.VertexID(v), graph.VertexID(v+1), 1)
	}
	return b.MustBuild()
}

// TestDisconnectionAndReconnection exercises the +Inf transitions: removing
// a bridge must push the cut-off side to +Inf, re-adding it must restore
// finite exact distances.
func TestDisconnectionAndReconnection(t *testing.T) {
	const n = 10
	g := buildChain(n)
	s, err := Select(g, 1, HighestDegree, 0)
	if err != nil {
		t.Fatal(err)
	}
	lmv := s.Vertices()[0]
	d, err := NewDynamic(s, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	o := graph.NewOverlay(g)

	// Cut the chain between 4 and 5.
	if _, err := o.RemoveEdge(4, 5); err != nil {
		t.Fatal(err)
	}
	d.EdgeChanged(o.Working(), 4, 5, 1, true, 0, false)
	set := d.Commit()
	want := o.Working().DistancesFrom(lmv)
	sawInf := false
	for v := 0; v < n; v++ {
		got := set.Dist(0, graph.VertexID(v))
		if got != want[v] {
			t.Fatalf("post-cut dist to %d = %v, want %v", v, got, want[v])
		}
		if math.IsInf(got, 1) {
			sawInf = true
		}
	}
	if !sawInf {
		t.Fatal("cutting the bridge disconnected nothing")
	}

	// Reconnect with a different weight.
	if _, err := o.SetEdge(4, 5, 0.25); err != nil {
		t.Fatal(err)
	}
	d.EdgeChanged(o.Working(), 4, 5, 0, false, 0.25, true)
	set = d.Commit()
	want = o.Working().DistancesFrom(lmv)
	for v := 0; v < n; v++ {
		if got := set.Dist(0, graph.VertexID(v)); got != want[v] {
			t.Fatalf("post-reconnect dist to %d = %v, want %v", v, got, want[v])
		}
		if math.IsInf(set.Dist(0, graph.VertexID(v)), 1) {
			t.Fatalf("vertex %d still unreachable after reconnect", v)
		}
	}
}
