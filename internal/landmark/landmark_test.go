package landmark

import (
	"math"
	"math/rand"
	"testing"

	"ssrq/internal/graph"
)

func randomGraph(rng *rand.Rand, n, extra int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		_ = b.AddEdge(graph.VertexID(u), graph.VertexID(v), 0.1+rng.Float64()*9.9)
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			_ = b.AddEdge(graph.VertexID(u), graph.VertexID(v), 0.1+rng.Float64()*9.9)
		}
	}
	return b.MustBuild()
}

func TestSelectValidation(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(1)), 10, 10)
	if _, err := Select(g, 0, Farthest, 1); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := Select(g, 11, Farthest, 1); err == nil {
		t.Fatal("m>n accepted")
	}
	if _, err := Select(g, 3, Strategy(99), 1); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestSelectCounts(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(2)), 30, 60)
	for _, strat := range []Strategy{Farthest, HighestDegree, Random} {
		s, err := Select(g, 5, strat, 42)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if s.M() != 5 {
			t.Fatalf("%v: M = %d", strat, s.M())
		}
		seen := map[graph.VertexID]bool{}
		for _, v := range s.Vertices() {
			if seen[v] {
				t.Fatalf("%v: duplicate landmark %d", strat, v)
			}
			seen[v] = true
		}
	}
}

func TestHighestDegreePicksHubs(t *testing.T) {
	// Star graph: vertex 0 is the hub.
	b := graph.NewBuilder(6)
	for v := 1; v < 6; v++ {
		_ = b.AddEdge(0, graph.VertexID(v), 1)
	}
	g := b.MustBuild()
	s, err := Select(g, 1, HighestDegree, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.Vertices()[0] != 0 {
		t.Fatalf("hub landmark = %d, want 0", s.Vertices()[0])
	}
}

func TestTablesMatchDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 40, 80)
	s, err := Select(g, 4, Farthest, 9)
	if err != nil {
		t.Fatal(err)
	}
	for j, lm := range s.Vertices() {
		want := g.DistancesFrom(lm)
		for v := 0; v < g.NumVertices(); v++ {
			if s.Dist(j, graph.VertexID(v)) != want[v] {
				t.Fatalf("table[%d][%d] = %v, want %v", j, v, s.Dist(j, graph.VertexID(v)), want[v])
			}
		}
	}
}

func TestBoundsBracketTrueDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		n := 10 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(2*n))
		s, err := Select(g, 1+rng.Intn(5), Farthest, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		src := graph.VertexID(rng.Intn(n))
		dist := g.DistancesFrom(src)
		for v := 0; v < n; v++ {
			lo := s.LowerBound(src, graph.VertexID(v))
			hi := s.UpperBound(src, graph.VertexID(v))
			d := dist[v]
			if lo > d+1e-9 {
				t.Fatalf("trial %d: lower bound %v > true %v for (%d,%d)", trial, lo, d, src, v)
			}
			if hi < d-1e-9 {
				t.Fatalf("trial %d: upper bound %v < true %v for (%d,%d)", trial, hi, d, src, v)
			}
		}
	}
}

func TestBoundsDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	_ = b.AddEdge(0, 1, 2)
	_ = b.AddEdge(2, 3, 2)
	g := b.MustBuild()
	s, err := Select(g, 2, Random, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Regardless of which landmarks were chosen, bounds must stay sound.
	lo := s.LowerBound(0, 2)
	if lo != graph.Infinity && lo > 0+1e-9 {
		// 0 and 2 are in different components: true distance is +Inf, so
		// any finite bound is sound; +Inf is ideal when detectable.
		t.Logf("cross-component lower bound: %v (finite bounds are allowed)", lo)
	}
	if hi := s.UpperBound(0, 2); hi != graph.Infinity {
		t.Fatalf("cross-component upper bound %v, want +Inf", hi)
	}
	if lo := s.LowerBound(1, 1); lo != 0 {
		t.Fatalf("self lower bound %v", lo)
	}
}

func TestLowerBoundDetectsCrossComponent(t *testing.T) {
	// With one landmark per component, the one-sided-infinity rule must fire.
	b := graph.NewBuilder(4)
	_ = b.AddEdge(0, 1, 2)
	_ = b.AddEdge(2, 3, 2)
	g := b.MustBuild()
	s, err := Select(g, 4, HighestDegree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lo := s.LowerBound(0, 3); lo != graph.Infinity {
		t.Fatalf("lower bound = %v, want +Inf", lo)
	}
}

func TestHeuristicConsistencyAndAdmissibility(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 50, 120)
	s, err := Select(g, 4, Farthest, 11)
	if err != nil {
		t.Fatal(err)
	}
	target := graph.VertexID(33)
	h := s.HeuristicTo(target)
	distT := g.DistancesFrom(target)
	for v := 0; v < 50; v++ {
		hv := h(graph.VertexID(v))
		if hv > distT[v]+1e-9 {
			t.Fatalf("heuristic %v exceeds true remaining %v at %d", hv, distT[v], v)
		}
	}
	// Consistency: h(u) <= w(u,v) + h(v) for every edge.
	for u := 0; u < 50; u++ {
		nbrs, ws := g.Neighbors(graph.VertexID(u))
		for i, v := range nbrs {
			if h(graph.VertexID(u)) > ws[i]+h(v)+1e-9 {
				t.Fatalf("heuristic inconsistent on edge (%d,%d)", u, v)
			}
		}
	}
}

func TestFarthestSpreadsLandmarks(t *testing.T) {
	// On a path graph the farthest strategy must pick the two endpoints
	// first.
	b := graph.NewBuilder(10)
	for v := 0; v < 9; v++ {
		_ = b.AddEdge(graph.VertexID(v), graph.VertexID(v+1), 1)
	}
	g := b.MustBuild()
	s, err := Select(g, 2, Farthest, 123)
	if err != nil {
		t.Fatal(err)
	}
	got := map[graph.VertexID]bool{s.Vertices()[0]: true, s.Vertices()[1]: true}
	if !got[0] || !got[9] {
		t.Fatalf("landmarks %v, want endpoints {0,9}", s.Vertices())
	}
}

func TestVertexVector(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(8)), 20, 30)
	s, err := Select(g, 3, Random, 77)
	if err != nil {
		t.Fatal(err)
	}
	vec := s.VertexVector(5)
	if len(vec) != 3 {
		t.Fatalf("vector length %d", len(vec))
	}
	for j := range vec {
		if vec[j] != s.Dist(j, 5) {
			t.Fatalf("vector[%d] = %v, want %v", j, vec[j], s.Dist(j, 5))
		}
	}
}

func TestUpperBoundViaLandmarkEquality(t *testing.T) {
	// Path graph with landmark at one end: for vertices on the same side the
	// upper bound through the landmark is exact only when the landmark lies
	// on the shortest path; check soundness rather than tightness, plus the
	// exact case u--lm--v.
	b := graph.NewBuilder(3)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 2, 1)
	g := b.MustBuild()
	s := newSet(3, []graph.VertexID{1}, [][]float64{g.DistancesFrom(1)})
	if got := s.UpperBound(0, 2); math.Abs(got-2) > 1e-12 {
		t.Fatalf("UpperBound(0,2) = %v, want 2", got)
	}
}
