package landmark

import (
	"fmt"
	"math"

	"ssrq/internal/graph"
	"ssrq/internal/pqueue"
)

// Dynamic maintains landmark distance tables under edge churn. It is the
// single-writer companion of an immutable Set lineage: BeginBatch opens an
// epoch (a copy-on-write clone of the last committed Set), EdgeChanged
// repairs the affected tables incrementally, and Commit freezes the epoch
// for publication.
//
// Repair strategy per landmark and edge op:
//
//   - weight decrease / insertion: distances can only shrink. The repair is
//     the standard incremental-SSSP decrease propagation — seed the changed
//     endpoints, settle improvements in Dijkstra order. Run to completion it
//     is exact; past the budget the landmark is disabled instead (a partial
//     run would leave a mix of old and new values, unusable for bounds).
//
//   - weight increase / deletion: distances can only grow. Following
//     Ramalingam–Reps, phase 1 identifies the *affected set* — vertices all
//     of whose shortest paths used the changed edge — by walking tight edges
//     in ascending-distance order (a vertex is unaffected iff it keeps a
//     tight neighbor outside the affected set, which is sound because every
//     potential support has a strictly smaller distance and is therefore
//     classified first); phase 2 re-runs Dijkstra restricted to the affected
//     set, seeded from its unaffected boundary. Past the budget the landmark
//     is disabled with its table untouched (phase 1 only reads).
//
// The invariant bounds correctness rests on: at every committed epoch, each
// *enabled* landmark's table holds exact shortest-path distances on that
// epoch's graph. Disabled landmarks contribute nothing to any bound (they
// only loosen pruning, never break it) until InstallTable restores them from
// an asynchronous full rebuild.
type Dynamic struct {
	cur  *Set // last committed epoch (immutable)
	work *Set // epoch under construction; nil between batches

	epoch      uint64
	pageStamp  []uint64 // epoch that last duplicated each page
	outerStamp uint64   // epoch that last duplicated the outer page slice

	budget int
	heap   *pqueue.IndexedHeap // scratch, reused across repairs

	// Counters (writer-side; read via Stats under the owner's lock).
	repairs  int64 // incremental repairs that completed within budget
	repaired int64 // vertices whose distance a repair rewrote
	disables int64 // budget overruns that disabled a landmark
	installs int64 // full tables installed by rebuilds
}

// NewDynamic wraps a freshly built Set for dynamic maintenance. budget caps
// the per-landmark, per-op repair work (vertices touched) before the
// landmark is disabled and handed to the rebuild path; <= 0 selects the
// default of 256.
func NewDynamic(s *Set, budget int) (*Dynamic, error) {
	if s.m > maxDynamic {
		return nil, fmt.Errorf("landmark: dynamic maintenance supports at most %d landmarks, got %d", maxDynamic, s.m)
	}
	if budget <= 0 {
		budget = 256
	}
	return &Dynamic{
		cur:       s,
		pageStamp: make([]uint64, len(s.pages)),
		budget:    budget,
		heap:      pqueue.NewIndexedHeap(s.n),
	}, nil
}

// View returns the current state: the working epoch during a batch,
// otherwise the last committed Set.
func (d *Dynamic) View() *Set {
	if d.work != nil {
		return d.work
	}
	return d.cur
}

// BeginBatch opens an epoch (idempotent within a batch) and returns the
// working Set the batch mutates copy-on-write.
func (d *Dynamic) BeginBatch() *Set {
	if d.work == nil {
		cp := *d.cur
		d.work = &cp
		d.epoch++
	}
	return d.work
}

// Commit freezes the working epoch as the new current Set and returns it.
// Without an open batch it returns the current Set unchanged.
func (d *Dynamic) Commit() *Set {
	if d.work != nil {
		d.cur = d.work
		d.work = nil
	}
	return d.cur
}

// writablePage duplicates page p on its first write of the epoch (and the
// outer slice on the epoch's first write overall) so the committed Set stays
// immutable.
func (d *Dynamic) writablePage(p int) []float64 {
	if d.outerStamp != d.epoch {
		d.work.pages = append([][]float64(nil), d.work.pages...)
		d.outerStamp = d.epoch
	}
	if d.pageStamp[p] != d.epoch {
		d.work.pages[p] = append([]float64(nil), d.work.pages[p]...)
		d.pageStamp[p] = d.epoch
	}
	return d.work.pages[p]
}

// setDist writes one table entry in the working epoch.
func (d *Dynamic) setDist(j int, v graph.VertexID, dist float64) {
	page := d.writablePage(int(v >> pageShift))
	page[int(v&pageMask)*d.work.m+j] = dist
}

// disable excludes landmark j from all bounds in the working epoch.
func (d *Dynamic) disable(j int) {
	d.work.disabled |= 1 << uint(j)
	d.disables++
}

// Stats reports the repair counters and current disabled count.
func (d *Dynamic) Stats() (repairs, repaired, disables, installs int64) {
	return d.repairs, d.repaired, d.disables, d.installs
}

// EdgeChanged repairs every enabled landmark table after one edge mutation
// on g (the post-change graph): an insertion (hadOld false), a deletion
// (hasNew false) or a reweight. It returns the vertices whose distance to
// some landmark changed — the caller recomputes the social summaries of
// their cells. Landmarks whose repair exceeds the budget are disabled and
// reported by View().DisabledMask() for asynchronous rebuild.
func (d *Dynamic) EdgeChanged(g *graph.Graph, u, v graph.VertexID, oldW float64, hadOld bool, newW float64, hasNew bool) []graph.VertexID {
	if !hadOld && !hasNew {
		return nil
	}
	d.BeginBatch()
	var dirty []graph.VertexID
	for j := 0; j < d.work.m; j++ {
		if !d.work.Enabled(j) {
			continue
		}
		switch {
		case !hadOld || (hasNew && newW < oldW):
			dirty = d.decreaseRepair(g, j, u, v, newW, dirty)
		case !hasNew || newW > oldW:
			dirty = d.increaseRepair(g, j, u, v, oldW, dirty)
		default: // newW == oldW: nothing changed
		}
	}
	return dirty
}

// dist reads the working table entry for landmark j.
func (d *Dynamic) dist(j int, v graph.VertexID) float64 { return d.work.vec(v)[j] }

// decreaseRepair propagates the improvement introduced by edge (u,v,w) —
// newly inserted or reweighted downwards — through landmark j's table.
// Exact when it completes; disables j on budget overrun.
func (d *Dynamic) decreaseRepair(g *graph.Graph, j int, u, v graph.VertexID, w float64, dirty []graph.VertexID) []graph.VertexID {
	h := d.heap
	h.Reset()
	if nd := d.dist(j, u) + w; nd < d.dist(j, v) {
		h.PushOrDecrease(v, nd)
	}
	if nd := d.dist(j, v) + w; nd < d.dist(j, u) {
		h.PushOrDecrease(u, nd)
	}
	if h.Len() == 0 {
		return dirty
	}
	settled := 0
	for {
		x, dx, ok := h.PopMin()
		if !ok {
			break
		}
		if dx >= d.dist(j, x) {
			continue
		}
		settled++
		if settled > d.budget {
			// Partial decrease repairs leave the table mixed (some entries
			// already lowered, some stale): unusable for bounds either way,
			// so disable and let the rebuild path restore it.
			d.disable(j)
			return dirty
		}
		d.setDist(j, x, dx)
		d.repaired++
		dirty = append(dirty, x)
		nbrs, ws := g.Neighbors(x)
		for i, y := range nbrs {
			if nd := dx + ws[i]; nd < d.dist(j, y) {
				h.PushOrDecrease(y, nd)
			}
		}
	}
	d.repairs++
	return dirty
}

// increaseRepair handles a deletion or upward reweight of edge (u,v) whose
// old weight was oldW, on the post-change graph g.
func (d *Dynamic) increaseRepair(g *graph.Graph, j int, u, v graph.VertexID, oldW float64, dirty []graph.VertexID) []graph.VertexID {
	du, dv := d.dist(j, u), d.dist(j, v)
	var start graph.VertexID
	switch {
	case !math.IsInf(du, 1) && du+oldW == dv:
		start = v
	case !math.IsInf(dv, 1) && dv+oldW == du:
		start = u
	default:
		// The edge was not tight for landmark j: no shortest path from the
		// landmark used it, so the table is untouched by this op.
		return dirty
	}

	// Phase 1: collect the affected set in ascending-distance order. A
	// candidate keeps its distance iff it still has a tight neighbor outside
	// the affected set; every potential support has strictly smaller
	// distance (edge weights are positive) and is therefore classified
	// before its dependents.
	h := d.heap
	h.Reset()
	h.PushOrDecrease(start, d.dist(j, start))
	affected := make(map[graph.VertexID]bool, 16)
	visited := make(map[graph.VertexID]bool, 16)
	var affectedList []graph.VertexID
	for {
		z, _, ok := h.PopMin()
		if !ok {
			break
		}
		if visited[z] {
			continue
		}
		visited[z] = true
		dz := d.dist(j, z)
		supported := dz == 0 // the landmark itself needs no predecessor
		nbrs, ws := g.Neighbors(z)
		if !supported {
			for i, y := range nbrs {
				if d.dist(j, y)+ws[i] == dz && !affected[y] {
					supported = true
					break
				}
			}
		}
		if supported {
			continue
		}
		affected[z] = true
		affectedList = append(affectedList, z)
		if len(affectedList) > d.budget {
			// Table untouched so far (phase 1 only reads): the old exact
			// distances are still stored but may now under-estimate, so the
			// landmark must sit out of bounds until rebuilt.
			d.disable(j)
			return dirty
		}
		for i, t := range nbrs {
			if dz+ws[i] == d.dist(j, t) && !visited[t] {
				h.PushOrDecrease(t, d.dist(j, t))
			}
		}
	}
	if len(affectedList) == 0 {
		return dirty
	}

	// Phase 2: recompute the affected set by Dijkstra seeded from its
	// unaffected boundary. Unreached vertices stay +Inf (the op disconnected
	// them from the landmark).
	h.Reset()
	for _, x := range affectedList {
		d.setDist(j, x, graph.Infinity)
		d.repaired++
		dirty = append(dirty, x)
	}
	for _, x := range affectedList {
		best := graph.Infinity
		nbrs, ws := g.Neighbors(x)
		for i, y := range nbrs {
			if !affected[y] {
				if cand := d.dist(j, y) + ws[i]; cand < best {
					best = cand
				}
			}
		}
		if !math.IsInf(best, 1) {
			h.PushOrDecrease(x, best)
		}
	}
	for {
		x, dx, ok := h.PopMin()
		if !ok {
			break
		}
		if dx >= d.dist(j, x) {
			continue
		}
		d.setDist(j, x, dx)
		nbrs, ws := g.Neighbors(x)
		for i, t := range nbrs {
			if affected[t] {
				if nd := dx + ws[i]; nd < d.dist(j, t) {
					h.PushOrDecrease(t, nd)
				}
			}
		}
	}
	d.repairs++
	return dirty
}

// InstallTable replaces landmark j's full table (freshly computed by a
// rebuild against the current graph) and re-enables it. The caller must
// guarantee table matches the graph of the epoch being built.
func (d *Dynamic) InstallTable(j int, table []float64) {
	d.BeginBatch()
	for v := 0; v < d.work.n; v++ {
		d.setDist(j, graph.VertexID(v), table[v])
	}
	d.work.disabled &^= 1 << uint(j)
	d.installs++
}
