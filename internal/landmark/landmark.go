// Package landmark implements the landmark (ALT) machinery of the paper:
// selection of M landmark vertices, pre-computed distance tables from every
// landmark to every vertex, and triangle-inequality lower/upper bounds on
// pairwise graph distances (§2.3, §5.1).
//
// The AIS index aggregates these per-vertex tables into per-cell social
// summaries; the TSA landmark variant prunes candidates with the pairwise
// lower bound; GraphDist's reverse A* uses the bound as its heuristic.
//
// Storage is vertex-major and paged: the M-vector of vertex v lives
// contiguously inside a fixed-size page, so the hot bound computations stay
// cache-friendly while the dynamic maintenance layer (dynamic.go) can
// copy-on-write individual pages per epoch instead of whole tables. A Set is
// immutable once published and safe for unlimited concurrent reads; under
// edge churn, landmarks whose tables could not be repaired within budget are
// *disabled* (excluded from every bound via a bitmask) until an asynchronous
// rebuild restores them — bounds from enabled landmarks are always computed
// from exact distances, which is what keeps Lemma-2 pruning admissible.
package landmark

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"ssrq/internal/graph"
)

// Paged vertex-major storage: the vector of vertex v occupies
// pages[v>>pageShift][(v&pageMask)*m : ...+m].
const (
	pageShift = 8
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// maxDynamic is the largest landmark count the dynamic maintenance layer
// supports (the disabled set is a uint64 bitmask). The paper's tuned M is 8.
const maxDynamic = 64

// Strategy selects which vertices become landmarks.
type Strategy int

const (
	// Farthest implements the selection of Goldberg & Harrelson [25]: start
	// from the vertex farthest from a random seed, then repeatedly add the
	// vertex maximizing the minimum distance to the chosen set. This is the
	// strategy the paper uses.
	Farthest Strategy = iota
	// HighestDegree picks the M highest-degree vertices (hub landmarks).
	HighestDegree
	// Random picks M distinct vertices uniformly.
	Random
)

func (s Strategy) String() string {
	switch s {
	case Farthest:
		return "farthest"
	case HighestDegree:
		return "degree"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Set holds M landmarks and their distance tables in paged vertex-major
// form; unreachable vertices hold +Inf. Set is immutable after construction
// and safe for concurrent reads. disabled is the bitmask of landmarks
// excluded from all bounds (stale tables under edge churn, see dynamic.go);
// it is 0 for statically-built sets.
type Set struct {
	vertices []graph.VertexID
	m        int
	n        int
	pages    [][]float64
	disabled uint64
}

// Select chooses m landmarks on g using the given strategy and computes
// their distance tables. seed drives the randomized strategies.
func Select(g *graph.Graph, m int, strategy Strategy, seed int64) (*Set, error) {
	n := g.NumVertices()
	if m <= 0 {
		return nil, fmt.Errorf("landmark: m = %d must be positive", m)
	}
	if m > n {
		return nil, fmt.Errorf("landmark: m = %d exceeds %d vertices", m, n)
	}
	rng := rand.New(rand.NewSource(seed))
	var vertices []graph.VertexID
	var tables [][]float64
	add := func(v graph.VertexID) {
		vertices = append(vertices, v)
		tables = append(tables, g.DistancesFrom(v))
	}
	switch strategy {
	case Random:
		perm := rng.Perm(n)
		for _, v := range perm[:m] {
			add(graph.VertexID(v))
		}
	case HighestDegree:
		type dv struct {
			deg int
			v   graph.VertexID
		}
		best := make([]dv, n)
		for v := 0; v < n; v++ {
			best[v] = dv{g.Degree(graph.VertexID(v)), graph.VertexID(v)}
		}
		// Selection of top-m by degree, ties by lower ID, without a full sort.
		for i := 0; i < m; i++ {
			top := i
			for j := i + 1; j < n; j++ {
				if best[j].deg > best[top].deg || (best[j].deg == best[top].deg && best[j].v < best[top].v) {
					top = j
				}
			}
			best[i], best[top] = best[top], best[i]
			add(best[i].v)
		}
	case Farthest:
		seedV := graph.VertexID(rng.Intn(n))
		first := farthestFrom(g.DistancesFrom(seedV), seedV)
		add(first)
		minDist := append([]float64(nil), tables[0]...)
		for len(vertices) < m {
			next := argmaxDist(minDist, vertices)
			add(next)
			t := tables[len(tables)-1]
			for v := range minDist {
				if t[v] < minDist[v] {
					minDist[v] = t[v]
				}
			}
		}
	default:
		return nil, fmt.Errorf("landmark: unknown strategy %v", strategy)
	}
	return newSet(n, vertices, tables), nil
}

// newSet packs landmark-major tables into the paged vertex-major layout.
func newSet(n int, vertices []graph.VertexID, tables [][]float64) *Set {
	s := &Set{vertices: vertices, m: len(vertices), n: n}
	s.pages = make([][]float64, numPages(n))
	for p := range s.pages {
		lo := p << pageShift
		hi := min(lo+pageSize, n)
		page := make([]float64, (hi-lo)*s.m)
		for v := lo; v < hi; v++ {
			base := (v - lo) * s.m
			for j, t := range tables {
				page[base+j] = t[v]
			}
		}
		s.pages[p] = page
	}
	return s
}

// numPages returns how many pages cover n per-vertex vectors.
func numPages(n int) int { return (n + pageSize - 1) / pageSize }

// vec returns the landmark-distance vector of v (aliases internal storage).
func (s *Set) vec(v graph.VertexID) []float64 {
	base := int(v&pageMask) * s.m
	return s.pages[v>>pageShift][base : base+s.m]
}

// farthestFrom returns the vertex with the largest finite distance in dist,
// falling back to the seed when everything else is unreachable.
func farthestFrom(dist []float64, seed graph.VertexID) graph.VertexID {
	best, bestD := seed, -1.0
	for v, d := range dist {
		if d != graph.Infinity && d > bestD {
			best, bestD = graph.VertexID(v), d
		}
	}
	return best
}

// argmaxDist picks the vertex maximizing minDist, preferring unreachable
// (+Inf) vertices so that each disconnected component eventually receives a
// landmark. Ties break by lower vertex ID; chosen landmarks are skipped.
func argmaxDist(minDist []float64, chosen []graph.VertexID) graph.VertexID {
	isChosen := make(map[graph.VertexID]bool, len(chosen))
	for _, c := range chosen {
		isChosen[c] = true
	}
	best, bestD := graph.VertexID(-1), math.Inf(-1)
	for v, d := range minDist {
		if isChosen[graph.VertexID(v)] {
			continue
		}
		if d > bestD {
			best, bestD = graph.VertexID(v), d
		}
	}
	return best
}

// M returns the number of landmarks.
func (s *Set) M() int { return s.m }

// NumVertices returns the vertex count the tables cover.
func (s *Set) NumVertices() int { return s.n }

// Vertices returns the landmark vertex IDs (do not modify).
func (s *Set) Vertices() []graph.VertexID { return s.vertices }

// Dist returns the distance between the j-th landmark and vertex v
// (the paper's m_vj), +Inf when unreachable. Note: Dist reports the stored
// table value even for disabled landmarks (callers evaluating bounds must
// honor DisabledMask; the bound methods below do).
func (s *Set) Dist(j int, v graph.VertexID) float64 { return s.vec(v)[j] }

// Enabled reports whether landmark j participates in bounds.
func (s *Set) Enabled(j int) bool { return s.disabled&(1<<uint(j)) == 0 }

// DisabledMask returns the bitmask of disabled landmarks (bit j set =
// landmark j excluded from bounds until rebuilt).
func (s *Set) DisabledMask() uint64 { return s.disabled }

// NumDisabled returns how many landmarks are currently disabled.
func (s *Set) NumDisabled() int { return bits.OnesCount64(s.disabled) }

// Table returns the full distance table of the j-th landmark as a fresh
// slice.
func (s *Set) Table(j int) []float64 {
	t := make([]float64, s.n)
	for v := 0; v < s.n; v++ {
		t[v] = s.vec(graph.VertexID(v))[j]
	}
	return t
}

// VertexVector returns the landmark-distance vector of v as a fresh slice.
func (s *Set) VertexVector(v graph.VertexID) []float64 {
	return append([]float64(nil), s.vec(v)...)
}

// AppendVertexVector appends the landmark-distance vector of v to dst and
// returns the extended slice — the allocation-free form of VertexVector for
// pooled query scratch.
func (s *Set) AppendVertexVector(dst []float64, v graph.VertexID) []float64 {
	return append(dst, s.vec(v)...)
}

// LowerBound returns the tightest triangle-inequality lower bound on the
// graph distance p(u, v) over the enabled landmarks: max_j |m_uj − m_vj|.
// When some enabled landmark reaches exactly one of the two vertices they
// provably lie in different components and the bound is +Inf.
func (s *Set) LowerBound(u, v graph.VertexID) float64 {
	if u == v {
		return 0
	}
	return boundVecs(s.vec(u), s.vec(v), s.disabled)
}

// boundVecs computes max over enabled j of |a_j − b_j| with the
// component-mismatch rule.
func boundVecs(a, b []float64, disabled uint64) float64 {
	best := 0.0
	for j := range a {
		if disabled&(1<<uint(j)) != 0 {
			continue
		}
		da, db := a[j], b[j]
		aInf, bInf := math.IsInf(da, 1), math.IsInf(db, 1)
		if aInf || bInf {
			if aInf != bInf {
				return graph.Infinity
			}
			continue // both unreachable from this landmark: no information
		}
		d := da - db
		if d < 0 {
			d = -d
		}
		if d > best {
			best = d
		}
	}
	return best
}

// UpperBound returns min over enabled j of (m_uj + m_vj), an upper bound on
// p(u, v) via the best landmark detour; +Inf when no enabled landmark
// reaches both.
func (s *Set) UpperBound(u, v graph.VertexID) float64 {
	if u == v {
		return 0
	}
	vu, vv := s.vec(u), s.vec(v)
	best := graph.Infinity
	for j := 0; j < s.m; j++ {
		if s.disabled&(1<<uint(j)) != 0 {
			continue
		}
		if d := vu[j] + vv[j]; d < best {
			best = d
		}
	}
	return best
}

// HeuristicTo returns a consistent A* heuristic estimating the distance from
// any vertex to the fixed target (used by GraphDist's reverse search). The
// heuristic captures this Set's epoch: it stays valid for searches over the
// graph this Set was computed against.
func (s *Set) HeuristicTo(target graph.VertexID) graph.Heuristic {
	// Snapshot the target's landmark vector once.
	return s.HeuristicToVector(s.VertexVector(target))
}

// HeuristicToVector is HeuristicTo for callers that already hold the target's
// landmark vector (e.g. in pooled scratch): it avoids the per-target vector
// allocation. tv must have been produced by VertexVector/AppendVertexVector
// against this Set and is retained by the returned heuristic.
func (s *Set) HeuristicToVector(tv []float64) graph.Heuristic {
	disabled := s.disabled
	return func(v graph.VertexID) float64 {
		return boundVecs(s.vec(v), tv, disabled)
	}
}
