// Package landmark implements the landmark (ALT) machinery of the paper:
// selection of M landmark vertices, pre-computed distance tables from every
// landmark to every vertex, and triangle-inequality lower/upper bounds on
// pairwise graph distances (§2.3, §5.1).
//
// The AIS index aggregates these per-vertex tables into per-cell social
// summaries; the TSA landmark variant prunes candidates with the pairwise
// lower bound; GraphDist's reverse A* uses the bound as its heuristic.
package landmark

import (
	"fmt"
	"math"
	"math/rand"

	"ssrq/internal/graph"
)

// Strategy selects which vertices become landmarks.
type Strategy int

const (
	// Farthest implements the selection of Goldberg & Harrelson [25]: start
	// from the vertex farthest from a random seed, then repeatedly add the
	// vertex maximizing the minimum distance to the chosen set. This is the
	// strategy the paper uses.
	Farthest Strategy = iota
	// HighestDegree picks the M highest-degree vertices (hub landmarks).
	HighestDegree
	// Random picks M distinct vertices uniformly.
	Random
)

func (s Strategy) String() string {
	switch s {
	case Farthest:
		return "farthest"
	case HighestDegree:
		return "degree"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Set holds M landmarks and their full distance tables. Tables are indexed
// [landmark][vertex]; unreachable vertices hold +Inf. A vertex-major copy
// (M contiguous floats per vertex) backs the hot-path bound computations —
// LowerBound and the A* heuristics run once per heap operation, so cache
// locality matters. Set is immutable after Select and safe for concurrent
// reads.
type Set struct {
	vertices []graph.VertexID
	tables   [][]float64
	byVertex []float64 // len n*M; vector of vertex v at [v*M : v*M+M]
	m        int
}

// Select chooses m landmarks on g using the given strategy and computes
// their distance tables. seed drives the randomized strategies.
func Select(g *graph.Graph, m int, strategy Strategy, seed int64) (*Set, error) {
	n := g.NumVertices()
	if m <= 0 {
		return nil, fmt.Errorf("landmark: m = %d must be positive", m)
	}
	if m > n {
		return nil, fmt.Errorf("landmark: m = %d exceeds %d vertices", m, n)
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Set{}
	switch strategy {
	case Random:
		perm := rng.Perm(n)
		for _, v := range perm[:m] {
			s.add(g, graph.VertexID(v))
		}
	case HighestDegree:
		type dv struct {
			deg int
			v   graph.VertexID
		}
		best := make([]dv, n)
		for v := 0; v < n; v++ {
			best[v] = dv{g.Degree(graph.VertexID(v)), graph.VertexID(v)}
		}
		// Selection of top-m by degree, ties by lower ID, without a full sort.
		for i := 0; i < m; i++ {
			top := i
			for j := i + 1; j < n; j++ {
				if best[j].deg > best[top].deg || (best[j].deg == best[top].deg && best[j].v < best[top].v) {
					top = j
				}
			}
			best[i], best[top] = best[top], best[i]
			s.add(g, best[i].v)
		}
	case Farthest:
		seedV := graph.VertexID(rng.Intn(n))
		first := farthestFrom(g, g.DistancesFrom(seedV), seedV)
		s.add(g, first)
		minDist := append([]float64(nil), s.tables[0]...)
		for len(s.vertices) < m {
			next := argmaxDist(minDist, s.vertices)
			s.add(g, next)
			t := s.tables[len(s.tables)-1]
			for v := range minDist {
				if t[v] < minDist[v] {
					minDist[v] = t[v]
				}
			}
		}
	default:
		return nil, fmt.Errorf("landmark: unknown strategy %v", strategy)
	}
	s.m = len(s.vertices)
	s.byVertex = make([]float64, n*s.m)
	for v := 0; v < n; v++ {
		for j, t := range s.tables {
			s.byVertex[v*s.m+j] = t[v]
		}
	}
	return s, nil
}

func (s *Set) add(g *graph.Graph, v graph.VertexID) {
	s.vertices = append(s.vertices, v)
	s.tables = append(s.tables, g.DistancesFrom(v))
}

// farthestFrom returns the vertex with the largest finite distance in dist,
// falling back to the seed when everything else is unreachable.
func farthestFrom(g *graph.Graph, dist []float64, seed graph.VertexID) graph.VertexID {
	best, bestD := seed, -1.0
	for v, d := range dist {
		if d != graph.Infinity && d > bestD {
			best, bestD = graph.VertexID(v), d
		}
	}
	return best
}

// argmaxDist picks the vertex maximizing minDist, preferring unreachable
// (+Inf) vertices so that each disconnected component eventually receives a
// landmark. Ties break by lower vertex ID; chosen landmarks are skipped.
func argmaxDist(minDist []float64, chosen []graph.VertexID) graph.VertexID {
	isChosen := make(map[graph.VertexID]bool, len(chosen))
	for _, c := range chosen {
		isChosen[c] = true
	}
	best, bestD := graph.VertexID(-1), math.Inf(-1)
	for v, d := range minDist {
		if isChosen[graph.VertexID(v)] {
			continue
		}
		if d > bestD {
			best, bestD = graph.VertexID(v), d
		}
	}
	return best
}

// M returns the number of landmarks.
func (s *Set) M() int { return len(s.vertices) }

// Vertices returns the landmark vertex IDs (do not modify).
func (s *Set) Vertices() []graph.VertexID { return s.vertices }

// Dist returns the distance between the j-th landmark and vertex v
// (the paper's m_vj), +Inf when unreachable.
func (s *Set) Dist(j int, v graph.VertexID) float64 { return s.tables[j][v] }

// Table returns the full distance table of the j-th landmark (do not modify).
func (s *Set) Table(j int) []float64 { return s.tables[j] }

// VertexVector returns the landmark-distance vector of v as a fresh slice.
func (s *Set) VertexVector(v graph.VertexID) []float64 {
	vec := make([]float64, len(s.tables))
	for j := range s.tables {
		vec[j] = s.tables[j][v]
	}
	return vec
}

// LowerBound returns the tightest triangle-inequality lower bound on the
// graph distance p(u, v): max_j |m_uj − m_vj|. When some landmark reaches
// exactly one of the two vertices they provably lie in different components
// and the bound is +Inf.
func (s *Set) LowerBound(u, v graph.VertexID) float64 {
	if u == v {
		return 0
	}
	return boundVecs(s.byVertex[int(u)*s.m:int(u)*s.m+s.m], s.byVertex[int(v)*s.m:int(v)*s.m+s.m])
}

// boundVecs computes max_j |a_j − b_j| with the component-mismatch rule.
func boundVecs(a, b []float64) float64 {
	best := 0.0
	for j := range a {
		da, db := a[j], b[j]
		aInf, bInf := math.IsInf(da, 1), math.IsInf(db, 1)
		if aInf || bInf {
			if aInf != bInf {
				return graph.Infinity
			}
			continue // both unreachable from this landmark: no information
		}
		d := da - db
		if d < 0 {
			d = -d
		}
		if d > best {
			best = d
		}
	}
	return best
}

// UpperBound returns min_j (m_uj + m_vj), an upper bound on p(u, v) via the
// best landmark detour; +Inf when no landmark reaches both.
func (s *Set) UpperBound(u, v graph.VertexID) float64 {
	if u == v {
		return 0
	}
	best := graph.Infinity
	for _, t := range s.tables {
		if d := t[u] + t[v]; d < best {
			best = d
		}
	}
	return best
}

// HeuristicTo returns a consistent A* heuristic estimating the distance from
// any vertex to the fixed target (used by GraphDist's reverse search).
func (s *Set) HeuristicTo(target graph.VertexID) graph.Heuristic {
	// Snapshot the target's landmark vector once.
	tv := s.VertexVector(target)
	byVertex, m := s.byVertex, s.m
	return func(v graph.VertexID) float64 {
		return boundVecs(byVertex[int(v)*m:int(v)*m+m], tv)
	}
}
