// Package pqueue provides the priority queues used by every search routine
// in the repository: a generic binary min-heap with deterministic tie-breaks
// and a dense indexed heap with decrease-key for Dijkstra-style traversals.
//
// Both heaps order entries by ascending key and break key ties by ascending
// tie value. Deterministic tie-breaking is load-bearing: the SSRQ algorithms
// are cross-validated against each other, which requires that equal-f users
// are reported in the same order by every algorithm.
package pqueue

// Entry is a single element of Heap: a payload with its priority key and a
// deterministic tie-break value.
type Entry[T any] struct {
	Key   float64
	Tie   int64
	Value T
}

// Heap is a binary min-heap over (Key, Tie) pairs. The zero value is ready to
// use. Heap is not safe for concurrent use.
type Heap[T any] struct {
	items []Entry[T]
}

// NewHeap returns a heap with capacity pre-allocated for n entries.
func NewHeap[T any](n int) *Heap[T] {
	return &Heap[T]{items: make([]Entry[T], 0, n)}
}

// Len reports the number of queued entries.
func (h *Heap[T]) Len() int { return len(h.items) }

// Reset discards all entries but keeps the underlying storage.
func (h *Heap[T]) Reset() { h.items = h.items[:0] }

// Push inserts value with the given key and tie-break.
func (h *Heap[T]) Push(key float64, tie int64, value T) {
	h.items = append(h.items, Entry[T]{Key: key, Tie: tie, Value: value})
	h.up(len(h.items) - 1)
}

// Peek returns the minimum entry without removing it. It must not be called
// on an empty heap.
func (h *Heap[T]) Peek() Entry[T] { return h.items[0] }

// PeekKey returns the minimum key, or +Inf semantics are up to the caller;
// ok is false when the heap is empty.
func (h *Heap[T]) PeekKey() (key float64, ok bool) {
	if len(h.items) == 0 {
		return 0, false
	}
	return h.items[0].Key, true
}

// Pop removes and returns the minimum entry. ok is false when empty.
func (h *Heap[T]) Pop() (e Entry[T], ok bool) {
	if len(h.items) == 0 {
		return e, false
	}
	e = h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return e, true
}

func (h *Heap[T]) less(i, j int) bool {
	a, b := &h.items[i], &h.items[j]
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Tie < b.Tie
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
