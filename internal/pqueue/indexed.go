package pqueue

// IndexedHeap is a dense binary min-heap keyed by float64 priorities over
// integer item IDs in [0, n). It supports DecreaseKey in O(log n) via a
// position table, which makes it the right queue for Dijkstra and A* over
// graphs with contiguous vertex IDs.
//
// Ties are broken by ascending item ID so traversal order is deterministic.
// The zero value is not usable; construct with NewIndexedHeap.
type IndexedHeap struct {
	ids  []int32   // heap array of item ids
	keys []float64 // key per item id (indexed by id, not heap slot)
	pos  []int32   // heap slot per item id; -1 when absent
}

// NewIndexedHeap returns an indexed heap for item IDs in [0, n).
func NewIndexedHeap(n int) *IndexedHeap {
	h := &IndexedHeap{
		ids:  make([]int32, 0, 64),
		keys: make([]float64, n),
		pos:  make([]int32, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len reports the number of queued items.
func (h *IndexedHeap) Len() int { return len(h.ids) }

// Reset empties the heap, keeping capacity. It runs in O(queued items).
func (h *IndexedHeap) Reset() {
	for _, id := range h.ids {
		h.pos[id] = -1
	}
	h.ids = h.ids[:0]
}

// Contains reports whether the item is currently queued.
func (h *IndexedHeap) Contains(id int32) bool { return h.pos[id] >= 0 }

// Key returns the current key of a queued item. It must only be called when
// Contains(id) is true.
func (h *IndexedHeap) Key(id int32) float64 { return h.keys[id] }

// PushOrDecrease inserts the item with the given key, or lowers its key if it
// is already queued with a larger one. It reports whether the heap changed.
func (h *IndexedHeap) PushOrDecrease(id int32, key float64) bool {
	if p := h.pos[id]; p >= 0 {
		if key >= h.keys[id] {
			return false
		}
		h.keys[id] = key
		h.up(int(p))
		return true
	}
	h.keys[id] = key
	h.pos[id] = int32(len(h.ids))
	h.ids = append(h.ids, id)
	h.up(len(h.ids) - 1)
	return true
}

// PushOrUpdate inserts the item or sets its key regardless of direction
// (CH's lazy priority re-evaluation needs key increases too).
func (h *IndexedHeap) PushOrUpdate(id int32, key float64) {
	if p := h.pos[id]; p >= 0 {
		old := h.keys[id]
		h.keys[id] = key
		if key < old {
			h.up(int(p))
		} else if key > old {
			h.down(int(p))
		}
		return
	}
	h.keys[id] = key
	h.pos[id] = int32(len(h.ids))
	h.ids = append(h.ids, id)
	h.up(len(h.ids) - 1)
}

// PopMin removes and returns the item with the smallest key. ok is false when
// the heap is empty.
func (h *IndexedHeap) PopMin() (id int32, key float64, ok bool) {
	if len(h.ids) == 0 {
		return 0, 0, false
	}
	id = h.ids[0]
	key = h.keys[id]
	last := len(h.ids) - 1
	h.ids[0] = h.ids[last]
	h.pos[h.ids[0]] = 0
	h.ids = h.ids[:last]
	h.pos[id] = -1
	if last > 0 {
		h.down(0)
	}
	return id, key, true
}

// PeekMin returns the smallest-key item without removing it.
func (h *IndexedHeap) PeekMin() (id int32, key float64, ok bool) {
	if len(h.ids) == 0 {
		return 0, 0, false
	}
	return h.ids[0], h.keys[h.ids[0]], true
}

func (h *IndexedHeap) less(i, j int) bool {
	a, b := h.ids[i], h.ids[j]
	ka, kb := h.keys[a], h.keys[b]
	if ka != kb {
		return ka < kb
	}
	return a < b
}

func (h *IndexedHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.pos[h.ids[i]] = int32(i)
	h.pos[h.ids[j]] = int32(j)
}

func (h *IndexedHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexedHeap) down(i int) {
	n := len(h.ids)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
