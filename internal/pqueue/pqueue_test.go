package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapEmpty(t *testing.T) {
	var h Heap[string]
	if h.Len() != 0 {
		t.Fatalf("zero heap Len = %d, want 0", h.Len())
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty heap reported ok")
	}
	if _, ok := h.PeekKey(); ok {
		t.Fatal("PeekKey on empty heap reported ok")
	}
}

func TestHeapOrdering(t *testing.T) {
	h := NewHeap[int](8)
	keys := []float64{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	for i, k := range keys {
		h.Push(k, int64(i), i)
	}
	prev := -1.0
	for h.Len() > 0 {
		e, ok := h.Pop()
		if !ok {
			t.Fatal("Pop failed with non-empty heap")
		}
		if e.Key < prev {
			t.Fatalf("pop order violated: %v after %v", e.Key, prev)
		}
		prev = e.Key
	}
}

func TestHeapTieBreakByTie(t *testing.T) {
	h := NewHeap[int](8)
	// All same key; ties must come out in ascending Tie order.
	ties := []int64{4, 1, 3, 0, 2}
	for _, tie := range ties {
		h.Push(1.0, tie, int(tie))
	}
	for want := int64(0); want < 5; want++ {
		e, _ := h.Pop()
		if e.Tie != want {
			t.Fatalf("tie order: got %d, want %d", e.Tie, want)
		}
	}
}

func TestHeapPeekMatchesPop(t *testing.T) {
	h := NewHeap[int](4)
	h.Push(2, 0, 20)
	h.Push(1, 1, 10)
	if k, ok := h.PeekKey(); !ok || k != 1 {
		t.Fatalf("PeekKey = %v,%v want 1,true", k, ok)
	}
	if e := h.Peek(); e.Value != 10 {
		t.Fatalf("Peek value = %d, want 10", e.Value)
	}
	e, _ := h.Pop()
	if e.Value != 10 {
		t.Fatalf("Pop value = %d, want 10", e.Value)
	}
}

func TestHeapReset(t *testing.T) {
	h := NewHeap[int](4)
	h.Push(1, 0, 1)
	h.Push(2, 1, 2)
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d", h.Len())
	}
	h.Push(3, 2, 3)
	e, ok := h.Pop()
	if !ok || e.Value != 3 {
		t.Fatalf("heap unusable after Reset: %v %v", e, ok)
	}
}

func TestHeapSortsRandomSequences(t *testing.T) {
	property := func(keys []float64) bool {
		h := NewHeap[int](len(keys))
		for i, k := range keys {
			h.Push(k, int64(i), i)
		}
		sorted := append([]float64(nil), keys...)
		sort.Float64s(sorted)
		for _, want := range sorted {
			e, ok := h.Pop()
			if !ok || e.Key != want {
				return false
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexedHeapBasic(t *testing.T) {
	h := NewIndexedHeap(10)
	if h.Len() != 0 {
		t.Fatalf("new heap Len = %d", h.Len())
	}
	if _, _, ok := h.PopMin(); ok {
		t.Fatal("PopMin on empty heap reported ok")
	}
	h.PushOrDecrease(3, 5.0)
	h.PushOrDecrease(7, 2.0)
	h.PushOrDecrease(1, 9.0)
	if !h.Contains(3) || h.Contains(0) {
		t.Fatal("Contains wrong")
	}
	id, key, ok := h.PopMin()
	if !ok || id != 7 || key != 2.0 {
		t.Fatalf("PopMin = %d,%v want 7,2", id, key)
	}
	if h.Contains(7) {
		t.Fatal("popped item still Contains")
	}
}

func TestIndexedHeapDecreaseKey(t *testing.T) {
	h := NewIndexedHeap(10)
	h.PushOrDecrease(0, 10)
	h.PushOrDecrease(1, 20)
	if changed := h.PushOrDecrease(1, 25); changed {
		t.Fatal("increasing key reported a change")
	}
	if changed := h.PushOrDecrease(1, 5); !changed {
		t.Fatal("decrease not applied")
	}
	id, key, _ := h.PopMin()
	if id != 1 || key != 5 {
		t.Fatalf("after decrease PopMin = %d,%v; want 1,5", id, key)
	}
}

func TestIndexedHeapTieBreakByID(t *testing.T) {
	h := NewIndexedHeap(5)
	for _, id := range []int32{4, 2, 0, 3, 1} {
		h.PushOrDecrease(id, 7.5)
	}
	for want := int32(0); want < 5; want++ {
		id, _, ok := h.PopMin()
		if !ok || id != want {
			t.Fatalf("tie order: got %d, want %d", id, want)
		}
	}
}

func TestIndexedHeapReset(t *testing.T) {
	h := NewIndexedHeap(5)
	h.PushOrDecrease(1, 1)
	h.PushOrDecrease(2, 2)
	h.Reset()
	if h.Len() != 0 || h.Contains(1) || h.Contains(2) {
		t.Fatal("Reset left state behind")
	}
	h.PushOrDecrease(3, 3)
	id, key, ok := h.PopMin()
	if !ok || id != 3 || key != 3 {
		t.Fatalf("heap unusable after Reset: %d %v %v", id, key, ok)
	}
}

func TestIndexedHeapMatchesReferenceSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		h := NewIndexedHeap(n)
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = float64(rng.Intn(20)) // few distinct keys to stress ties
			h.PushOrDecrease(int32(i), keys[i])
		}
		// Random decreases.
		for j := 0; j < n/2; j++ {
			id := int32(rng.Intn(n))
			nk := keys[id] - rng.Float64()*5
			if h.PushOrDecrease(id, nk) {
				keys[id] = nk
			}
		}
		type pair struct {
			id  int32
			key float64
		}
		want := make([]pair, n)
		for i := range want {
			want[i] = pair{int32(i), keys[i]}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].key != want[j].key {
				return want[i].key < want[j].key
			}
			return want[i].id < want[j].id
		})
		for i, w := range want {
			id, key, ok := h.PopMin()
			if !ok || id != w.id || key != w.key {
				t.Fatalf("trial %d pos %d: got (%d,%v), want (%d,%v)", trial, i, id, key, w.id, w.key)
			}
		}
	}
}

func TestIndexedHeapKeyAccessor(t *testing.T) {
	h := NewIndexedHeap(3)
	h.PushOrDecrease(2, 1.25)
	if got := h.Key(2); got != 1.25 {
		t.Fatalf("Key = %v, want 1.25", got)
	}
}
