package core

import (
	"ssrq/internal/aggindex"
	"ssrq/internal/graph"
	"ssrq/internal/pqueue"
	"ssrq/internal/spatial"
)

// aisConfig selects the AIS flavor evaluated in Fig. 10.
type aisConfig struct {
	// sharing enables the §5.2 computation-sharing GraphDist submodule
	// (distance caching + forward-heap caching). Off = AIS-BID, which runs
	// a fresh bidirectional ALT search per evaluation.
	sharing bool
	// delayed enables the §5.3 delayed evaluation strategy (only meaningful
	// with sharing, which provides the β bound).
	delayed bool
}

// aisItem is one entry of the AIS branch-and-bound heap: an index cell
// (level ≥ 0) or a user (level == aisUser).
type aisItem struct {
	level int16
	idx   int32
}

const aisUser = int16(-1)

func aisTie(level int16, idx int32) int64 {
	if level == aisUser {
		return int64(idx)
	}
	return (int64(level)+1)<<40 | int64(idx)
}

// runAIS is the Aggregate Index Search (Algorithm 2): a single best-first
// search over the social-summary grid, driven by the combined lower bound
// MINF (Theorem 1). Cells expand to children, leaves to users keyed by their
// individual landmark bound, and users are evaluated exactly — through the
// shared GraphDist submodule (with optional delayed evaluation) or, for
// AIS-BID, a fresh bidirectional search each time. Membership, occupancy
// and summaries all come from the query's snapshot sn, so the Lemma-2
// bounds are always evaluated against the membership they were built for.
func (e *Engine) runAIS(sn *aggindex.Snapshot, q graph.VertexID, qpt spatial.Point, bound float64, prm Params, st *Stats, cfg aisConfig) []Entry {
	g := sn.Grid()
	soc, lm := sn.SocialGraph(), sn.Landmarks()
	qvec := lm.VertexVector(q)
	layout := g.Layout()
	alpha := prm.Alpha

	pools := e.getPools()
	defer e.putPools(pools)

	var evalDist func(graph.VertexID) float64
	var gd *graphDist
	if cfg.sharing {
		gd = newGraphDist(soc, lm, q, pools.rev, st)
		gd.fwdEvery = e.opts.FwdEvery
		evalDist = gd.dist
	} else {
		fb := &freshBidirectional{
			g: soc, lm: lm, q: q, hToQ: lm.HeuristicTo(q),
			fwdPool: pools.fwd, revPool: pools.rev, st: st,
		}
		evalDist = fb.dist
	}

	r := newTopKBound(prm.K, bound)
	h := pqueue.NewHeap[aisItem](256)
	var childBuf []int32

	pushCell := func(level int, idx int32) {
		if g.CountAt(level, idx) == 0 {
			return
		}
		pLow := sn.SocialLowerBound(level, idx, qvec)
		dLow := layout.CellRect(level, idx).MinDist(qpt)
		if key := combine(alpha, pLow, dLow); finite(key) {
			h.Push(key, aisTie(int16(level), idx), aisItem{int16(level), idx})
		}
	}
	for idx := int32(0); idx < int32(layout.NumCells(0)); idx++ {
		pushCell(0, idx)
	}

	for h.Len() > 0 {
		head := h.Peek()
		if head.Key >= r.Fk() {
			break
		}
		item, _ := h.Pop()
		switch {
		case item.Value.level != aisUser && int(item.Value.level) < layout.LeafLevel():
			st.IndexCellPops++
			childBuf = layout.ChildIndices(int(item.Value.level), item.Value.idx, childBuf[:0])
			for _, c := range childBuf {
				pushCell(int(item.Value.level)+1, c)
			}
		case item.Value.level != aisUser:
			// Leaf cell: enqueue members by their individual landmark bound.
			st.IndexCellPops++
			for _, u := range g.CellUsers(item.Value.idx) {
				if u == q {
					continue
				}
				pLow := lm.LowerBound(q, u)
				d := g.Point(u).Dist(qpt)
				if key := combine(alpha, pLow, d); finite(key) {
					h.Push(key, aisTie(aisUser, u), aisItem{aisUser, u})
				}
			}
		default:
			u := item.Value.idx
			st.IndexUserPops++
			d := g.Point(u).Dist(qpt)
			if cfg.delayed {
				// §5.3: if the shared forward search has advanced past this
				// user's landmark bound, push it back with the tighter
				// β-based key instead of paying an exact evaluation.
				if _, known := gd.known(u); !known {
					if key := combine(alpha, gd.beta(), d); key > item.Key {
						st.Reinserts++
						h.Push(key, aisTie(aisUser, u), aisItem{aisUser, u})
						continue
					}
				}
			}
			p := evalDist(u)
			r.Consider(Entry{ID: u, F: combine(alpha, p, d), P: p, D: d})
		}
	}
	return r.Sorted()
}
