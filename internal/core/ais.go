package core

import (
	"ssrq/internal/aggindex"
	"ssrq/internal/fof"
	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// aisConfig selects the AIS flavor evaluated in Fig. 10.
type aisConfig struct {
	// sharing enables the §5.2 computation-sharing GraphDist submodule
	// (distance caching + forward-heap caching). Off = AIS-BID, which runs
	// a fresh bidirectional ALT search per evaluation.
	sharing bool
	// delayed enables the §5.3 delayed evaluation strategy (only meaningful
	// with sharing, which provides the β bound).
	delayed bool
}

// aisItem is one entry of the AIS branch-and-bound heap: an index cell
// (level ≥ 0) or a user (level == aisUser).
type aisItem struct {
	level int16
	idx   int32
}

const aisUser = int16(-1)

func aisTie(level int16, idx int32) int64 {
	if level == aisUser {
		return int64(idx)
	}
	return (int64(level)+1)<<40 | int64(idx)
}

// runAIS is the Aggregate Index Search (Algorithm 2): a single best-first
// search over the social-summary grid, driven by the combined lower bound
// MINF (Theorem 1). Cells expand to children, leaves to users keyed by their
// individual landmark bound, and users are evaluated exactly — through the
// shared GraphDist submodule (with optional delayed evaluation) or, for
// AIS-BID, a fresh bidirectional search each time. Membership, occupancy
// and summaries all come from the query's snapshot sn, so the Lemma-2
// bounds are always evaluated against the membership they were built for.
func (e *Engine) runAIS(sn *aggindex.Snapshot, q graph.VertexID, qpt spatial.Point, bound *SharedBound, prm Params, st *Stats, p *queryPools, cfg aisConfig) []Entry {
	g := sn.Grid()
	soc, lm := sn.SocialGraph(), sn.Landmarks()
	p.qvec = lm.AppendVertexVector(p.qvec[:0], q)
	qvec := p.qvec
	layout := g.Layout()
	alpha := prm.Alpha

	var gd *graphDist
	var fb *freshBidirectional
	if cfg.sharing {
		gd = &p.gd
		gd.reset(soc, lm, q, &p.soc, p.rev, lm.HeuristicToVector(qvec), st, e.opts.FwdEvery)
	} else {
		fb = &freshBidirectional{
			g: soc, lm: lm, q: q, hToQ: lm.HeuristicToVector(qvec),
			fwdPool: p.fwd, revPool: p.rev, st: st,
		}
	}

	r := p.top.reset(prm.K, bound)
	h := &p.ais
	h.Reset()

	filter := prm.Filter
	labels := e.ds.Labels
	// Friends-of-friends bound: armed once per query, it tightens the
	// per-user landmark bound at leaf expansion (often past the cell bound
	// that admitted the leaf, so fewer users survive to exact evaluation).
	useFoF := e.fof != nil
	if useFoF {
		p.fof.Arm(e.fof, soc, q, fof.DefaultBudget)
	}

	// Seed the search with the top grid level, its Lemma-2 bounds evaluated
	// in one flat batch over the summary arrays.
	p.cellLow = sn.SocialLowerBoundsInto(0, qvec, p.cellLow)
	for idx := int32(0); idx < int32(layout.NumCells(0)); idx++ {
		if g.CountAt(0, idx) == 0 {
			continue
		}
		if filter != 0 && sn.CellLabelMask(0, idx)&filter == 0 {
			// No member of this cell carries a requested label: the whole
			// subtree is disqualified before any bound arithmetic.
			st.LabelCellPrunes++
			continue
		}
		dLow := layout.CellRect(0, idx).MinDist(qpt)
		if key := combine(alpha, p.cellLow[idx], dLow); finite(key) {
			h.Push(key, aisTie(0, idx), aisItem{0, idx})
		}
	}

	for h.Len() > 0 {
		head := h.Peek()
		if head.Key >= r.Fk() {
			break
		}
		item, _ := h.Pop()
		switch {
		case item.Value.level != aisUser && int(item.Value.level) < layout.LeafLevel():
			st.IndexCellPops++
			level := int(item.Value.level)
			p.childBuf = layout.ChildIndices(level, item.Value.idx, p.childBuf[:0])
			for _, c := range p.childBuf {
				if g.CountAt(level+1, c) == 0 {
					continue
				}
				if filter != 0 && sn.CellLabelMask(level+1, c)&filter == 0 {
					st.LabelCellPrunes++
					continue
				}
				pLow := sn.SocialLowerBound(level+1, c, qvec)
				dLow := layout.CellRect(level+1, c).MinDist(qpt)
				if key := combine(alpha, pLow, dLow); finite(key) {
					h.Push(key, aisTie(int16(level+1), c), aisItem{int16(level + 1), c})
				}
			}
		case item.Value.level != aisUser:
			// Leaf cell: enqueue members by their individual landmark bound.
			st.IndexCellPops++
			for _, u := range g.CellUsers(item.Value.idx) {
				if u == q {
					continue
				}
				if filter != 0 {
					var lbl uint64
					if labels != nil {
						lbl = labels[u]
					}
					if lbl&filter == 0 {
						st.LabelSkips++
						continue
					}
				}
				pLow := lm.LowerBound(q, u)
				if useFoF {
					if f := p.fof.LowerBound(u); f > pLow {
						pLow = f
						st.FoFTightened++
					}
				}
				d := g.Point(u).Dist(qpt)
				if key := combine(alpha, pLow, d); finite(key) {
					h.Push(key, aisTie(aisUser, u), aisItem{aisUser, u})
				}
			}
		default:
			u := item.Value.idx
			st.IndexUserPops++
			d := g.Point(u).Dist(qpt)
			if cfg.delayed {
				// §5.3: if the shared forward search has advanced past this
				// user's landmark bound, push it back with the tighter
				// β-based key instead of paying an exact evaluation.
				if _, known := gd.known(u); !known {
					if key := combine(alpha, gd.beta(), d); key > item.Key {
						st.Reinserts++
						h.Push(key, aisTie(aisUser, u), aisItem{aisUser, u})
						continue
					}
				}
			}
			var pd float64
			if gd != nil {
				pd = gd.dist(u)
			} else {
				pd = fb.dist(u)
			}
			r.Consider(Entry{ID: u, F: combine(alpha, pd, d), P: pd, D: d})
		}
	}
	return r.Sorted()
}
