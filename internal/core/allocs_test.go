// Allocation-regression guard for the pooled query hot path. Excluded under
// the race detector: -race instruments every allocation and sync.Pool
// behaves differently there, so the counts are meaningless.
//
//go:build !race

package core

import (
	"math/rand"
	"testing"
)

// allocBudgets is the committed per-query allocation budget of the serving
// path (the CI bench gate enforces the same numbers on the benchmark
// output). The steady-state cost is the Result struct and its entries copy;
// AIS additionally materializes one heuristic closure per query.
var allocBudgets = []struct {
	algo   Algorithm
	budget float64
}{
	{SFA, 2},
	{SPA, 2},
	{TSA, 8},
	{TSAQC, 8},
	{AIS, 8},
	{AISMinus, 8},
}

// TestQueryAllocBudget: a steady-state query must stay within the committed
// allocation budget — the pooled scratch (topK entries, iterators, heaps,
// graph-distance state) covers everything proportional to dataset size, so
// the zero-alloc property cannot silently erode.
func TestQueryAllocBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	ds := mkDataset(t, rng, 600, 0.1, false)
	e := mkEngine(t, ds, Options{Seed: 271})
	defer e.Close()
	users := locatedUsers(ds)
	prm := Params{K: 10, Alpha: 0.5}

	for _, tc := range allocBudgets {
		i := 0
		// AllocsPerRun runs the body once as warm-up, which charges the
		// sync.Pool fills and memoized state to no measured run, and pins
		// GOMAXPROCS to 1 so the pool cannot miss across Ps.
		avg := testing.AllocsPerRun(50, func() {
			q := users[i%len(users)]
			i++
			if _, err := e.Query(tc.algo, q, prm); err != nil {
				t.Fatal(err)
			}
		})
		if avg > tc.budget {
			t.Errorf("%v: %.1f allocs/query exceeds budget %.0f", tc.algo, avg, tc.budget)
		}
	}
}

// TestEdgeOpAllocBudget pins the synchronous edge-op apply path: one overlay
// patch, the incremental landmark repairs, the epoch publish and the consumer
// summary sync. The budget is deliberately loose against per-op variance
// (repair scope depends on the edge) but tight enough to catch a regression
// back to per-op table copies or per-consumer broadcast work.
func TestEdgeOpAllocBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(272))
	ds := mkDataset(t, rng, 600, 0.1, false)
	e := mkEngine(t, ds, Options{Seed: 272})
	defer e.Close()
	if !e.SupportsEdgeChurn() {
		t.Skip("engine built without edge churn support")
	}

	// Warm the apply path's amortized growth (dirty-vertex scratch, overlay
	// delta) before measuring, with the same rotating reweight pattern the
	// measured loop uses: every op finds the opposite weight, so each is an
	// effective update, never a no-op.
	const pairs = 32
	op := func(i int) {
		u := int32(i % pairs)
		v := u + pairs
		w := 0.25 + float64((i/pairs)&1)*0.5
		if err := e.AddFriend(u, v, w); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4*pairs; i++ {
		op(i)
	}
	i := 4 * pairs
	avg := testing.AllocsPerRun(2*pairs, func() {
		op(i)
		i++
	})
	const budget = 40
	if avg > budget {
		t.Errorf("edge op: %.1f allocs/op exceeds budget %d", avg, budget)
	}
}
