// Allocation-regression guard for the pooled query hot path. Excluded under
// the race detector: -race instruments every allocation and sync.Pool
// behaves differently there, so the counts are meaningless.
//
//go:build !race

package core

import (
	"math/rand"
	"testing"
)

// allocBudgets is the committed per-query allocation budget of the serving
// path (the CI bench gate enforces the same numbers on the benchmark
// output). The steady-state cost is the Result struct and its entries copy;
// AIS additionally materializes one heuristic closure per query.
var allocBudgets = []struct {
	algo   Algorithm
	budget float64
}{
	{SFA, 2},
	{SPA, 2},
	{TSA, 8},
	{TSAQC, 8},
	{AIS, 8},
	{AISMinus, 8},
}

// TestQueryAllocBudget: a steady-state query must stay within the committed
// allocation budget — the pooled scratch (topK entries, iterators, heaps,
// graph-distance state) covers everything proportional to dataset size, so
// the zero-alloc property cannot silently erode.
func TestQueryAllocBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	ds := mkDataset(t, rng, 600, 0.1, false)
	e := mkEngine(t, ds, Options{Seed: 271})
	defer e.Close()
	users := locatedUsers(ds)
	prm := Params{K: 10, Alpha: 0.5}

	for _, tc := range allocBudgets {
		i := 0
		// AllocsPerRun runs the body once as warm-up, which charges the
		// sync.Pool fills and memoized state to no measured run, and pins
		// GOMAXPROCS to 1 so the pool cannot miss across Ps.
		avg := testing.AllocsPerRun(50, func() {
			q := users[i%len(users)]
			i++
			if _, err := e.Query(tc.algo, q, prm); err != nil {
				t.Fatal(err)
			}
		})
		if avg > tc.budget {
			t.Errorf("%v: %.1f allocs/query exceeds budget %.0f", tc.algo, avg, tc.budget)
		}
	}
}
