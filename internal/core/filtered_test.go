// Differential equivalence for attribute-filtered queries: one randomized
// interleaved stream of moves and edge ops replays into a monolithic engine,
// a 1-shard engine and an 8-shard engine built over a labeled dataset; after
// every Flush all three must agree — for several filters per probe — with an
// independent brute oracle that applies the filter by definition (skip every
// user whose label set misses the mask), and with each other exactly.
package core_test

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"ssrq/internal/core"
	"ssrq/internal/dataset"
	"ssrq/internal/graph"
	"ssrq/internal/shard"
	"ssrq/internal/spatial"
)

// labeledClusteredDS is clusteredDS plus a fixed per-user label assignment:
// most users carry exactly one of six labels, a slice stays unlabeled (label
// 0 — must never match any nonzero filter).
func labeledClusteredDS(t testing.TB, n int, seed int64) *dataset.Dataset {
	t.Helper()
	ds := clusteredDS(t, n, seed)
	rng := rand.New(rand.NewSource(seed ^ 0x5be1))
	labels := make([]uint64, n)
	for v := range labels {
		if rng.Float64() < 0.15 {
			continue // unlabeled
		}
		labels[v] = 1 << uint(rng.Intn(6))
	}
	if err := ds.SetLabels(labels); err != nil {
		t.Fatal(err)
	}
	return ds
}

// filteredOracleEntries is oracleEntries with the filter applied by
// definition: exact Dijkstra over the model graph, then drop every candidate
// whose labels miss the mask before ranking.
func filteredOracleEntries(n int, model map[edgeKey]float64, locate func(int32) (spatial.Point, bool),
	labels []uint64, q graph.VertexID, prm core.Params) []core.Entry {
	b := graph.NewBuilder(n)
	for k, w := range model {
		_ = b.AddEdge(k[0], k[1], w)
	}
	dist := b.MustBuild().DistancesFrom(q)
	qpt, qok := locate(int32(q))
	var cands []core.Entry
	for v := 0; v < n; v++ {
		if graph.VertexID(v) == q {
			continue
		}
		if prm.Filter != 0 && labels[v]&prm.Filter == 0 {
			continue
		}
		p := dist[v]
		d := math.Inf(1)
		if pt, ok := locate(int32(v)); ok && qok {
			d = pt.Dist(qpt)
		}
		f := prm.Alpha*p + (1-prm.Alpha)*d
		if math.IsInf(f, 1) || math.IsNaN(f) {
			continue
		}
		cands = append(cands, core.Entry{ID: int32(v), F: f, P: p, D: d})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].F != cands[b].F {
			return cands[a].F < cands[b].F
		}
		return cands[a].ID < cands[b].ID
	})
	if len(cands) > prm.K {
		cands = cands[:prm.K]
	}
	return cands
}

// TestFilteredDifferentialEquivalence holds every algorithm and engine flavor
// to exact filtered results under interleaved location + edge churn.
func TestFilteredDifferentialEquivalence(t *testing.T) {
	trials := 3
	if testing.Short() {
		trials = 1
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(9100 + trial)))
			n := 90 + rng.Intn(110)
			ds := labeledClusteredDS(t, n, int64(trial))
			opts := core.Options{
				GridS: 3 + rng.Intn(3), GridLevels: 1 + rng.Intn(2),
				NumLandmarks: 2 + rng.Intn(5), CacheT: 4 + rng.Intn(30),
				Seed: int64(trial), UpdateMaxBatch: 1 + rng.Intn(32),
			}
			mono, err := core.NewEngine(ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer mono.Close()
			s1, err := shard.New(ds, 1, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s1.Close()
			s8, err := shard.New(ds, 8, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s8.Close()
			engines := []queryEngine{mono, s1, s8}
			names := []string{"mono", "shard-1", "shard-8"}

			model := seedEdgeModel(ds)
			users := locatedIDs(ds)
			b := ds.Bounds()

			// Filters per probe: unfiltered, one label, a two-label union,
			// and a mask no user carries (result must be empty).
			filters := []uint64{0, 1 << 2, (1 << 0) | (1 << 4), 1 << 62}

			for round := 0; round < 4; round++ {
				for op := 0; op < 5+rng.Intn(20); op++ {
					switch rng.Intn(6) {
					case 0, 1: // edge upsert
						u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
						if u == v {
							continue
						}
						w := 0.05 + rng.Float64()
						for _, e := range engines {
							if err := e.AddFriendAsync(u, v, w); err != nil {
								t.Fatal(err)
							}
						}
						model[mkKey(u, v)] = w
					case 2: // edge removal
						u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
						if u == v {
							continue
						}
						for _, e := range engines {
							if err := e.RemoveFriendAsync(u, v); err != nil {
								t.Fatal(err)
							}
						}
						delete(model, mkKey(u, v))
					case 3: // location removal
						id := int32(users[rng.Intn(len(users))])
						for _, e := range engines {
							if err := e.RemoveUserLocationAsync(id); err != nil {
								t.Fatal(err)
							}
						}
					default: // move
						id := int32(users[rng.Intn(len(users))])
						to := spatial.Point{X: b.MinX + rng.Float64()*b.Width(), Y: b.MinY + rng.Float64()*b.Height()}
						for _, e := range engines {
							if err := e.MoveUserAsync(id, to); err != nil {
								t.Fatal(err)
							}
						}
					}
				}
				for _, e := range engines {
					e.Flush()
				}

				for probe := 0; probe < 3; probe++ {
					q := users[rng.Intn(len(users))]
					if _, ok := mono.UserLocation(int32(q)); !ok {
						continue
					}
					for _, filter := range filters {
						prm := core.Params{K: 1 + rng.Intn(10), Alpha: 0.05 + 0.9*rng.Float64(), Filter: filter}
						want := filteredOracleEntries(n, model, mono.UserLocation, ds.Labels, q, prm)
						if filter == 1<<62 && len(want) != 0 {
							t.Fatalf("oracle found users carrying the reserved probe label")
						}
						for ei, e := range engines {
							for _, algo := range []core.Algorithm{core.AIS, core.AISCache, core.TSA, core.SFA, core.SPA, core.BruteForce} {
								got, err := e.Query(algo, q, prm)
								if err != nil {
									t.Fatalf("round %d %s %v (q=%d filter=%#x): %v", round, names[ei], algo, q, filter, err)
								}
								assertOracleMatch(t, fmt.Sprintf("round %d %s %v q=%d k=%d α=%.3f filter=%#x",
									round, names[ei], algo, q, prm.K, prm.Alpha, filter), got.Entries, want)
								// A filtered result may never contain a
								// non-matching user, whatever the bound said.
								for _, ent := range got.Entries {
									if filter != 0 && ds.Labels[ent.ID]&filter == 0 {
										t.Fatalf("round %d %s %v: user %d (labels %#x) leaked through filter %#x",
											round, names[ei], algo, ent.ID, ds.Labels[ent.ID], filter)
									}
								}
							}
							if ei > 0 {
								ref, err := engines[0].Query(core.AIS, q, prm)
								if err != nil {
									t.Fatal(err)
								}
								got, err := e.Query(core.AIS, q, prm)
								if err != nil {
									t.Fatal(err)
								}
								assertExactMatch(t, fmt.Sprintf("round %d %s vs mono q=%d filter=%#x", round, names[ei], q, filter), got.Entries, ref.Entries)
							}
						}
					}
				}
			}
		})
	}
}
