package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ssrq/internal/graph"
)

// BatchQuery is one query of a batch: an algorithm, a query user and the
// ranking parameters.
type BatchQuery struct {
	Algo   Algorithm
	Q      graph.VertexID
	Params Params
}

// BatchResult pairs one batch query's result with its error; exactly one of
// the two is set. Elapsed is the wall-clock time of this query alone, so
// batch callers can derive latency percentiles, not just throughput.
type BatchResult struct {
	Result  *Result
	Err     error
	Elapsed time.Duration
}

// QueryBatch answers a batch of queries on a pool of workers and returns the
// outcomes in input order. workers <= 0 selects GOMAXPROCS. Each query runs
// through the ordinary Query path — per-query scratch comes from the
// engine's sync.Pool, and each query loads its own snapshot epoch, so
// location updates published mid-batch become visible to the batch's later
// queries without ever blocking any of them. A failed query records its
// error in its slot without affecting the rest of the batch.
func (e *Engine) QueryBatch(queries []BatchQuery, workers int) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers == 1 {
		for i, bq := range queries {
			start := time.Now()
			out[i].Result, out[i].Err = e.Query(bq.Algo, bq.Q, bq.Params)
			out[i].Elapsed = time.Since(start)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				bq := queries[i]
				start := time.Now()
				out[i].Result, out[i].Err = e.Query(bq.Algo, bq.Q, bq.Params)
				out[i].Elapsed = time.Since(start)
			}
		}()
	}
	wg.Wait()
	return out
}
