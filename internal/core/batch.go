package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ssrq/internal/graph"
)

// BatchQuery is one query of a batch: an algorithm, a query user and the
// ranking parameters.
type BatchQuery struct {
	Algo   Algorithm
	Q      graph.VertexID
	Params Params
}

// BatchResult pairs one batch query's result with its error; exactly one of
// the two is set. Elapsed is the wall-clock time of this query alone, so
// batch callers can derive latency percentiles, not just throughput.
type BatchResult struct {
	Result  *Result
	Err     error
	Elapsed time.Duration
}

// RunBatch answers a batch of queries on a pool of workers and returns the
// outcomes in input order — the one implementation of the batch contract,
// shared by Engine.QueryBatch and the sharded engine (their clamping and
// error semantics must never drift apart; TestQueryBatchClampsBothFlavors
// pins both). workers <= 0 selects GOMAXPROCS; worker counts beyond the
// batch size clamp to it. A failed query records its error in its slot
// without affecting the rest of the batch.
func RunBatch(queries []BatchQuery, workers int, query func(BatchQuery) (*Result, error)) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	run := func(i int) {
		start := time.Now()
		out[i].Result, out[i].Err = query(queries[i])
		out[i].Elapsed = time.Since(start)
	}
	if workers == 1 {
		for i := range queries {
			run(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// QueryBatch answers a batch of queries on a pool of workers and returns the
// outcomes in input order (see RunBatch for the contract). Each query runs
// through the ordinary Query path — per-query scratch comes from the
// engine's sync.Pool, and each query loads its own snapshot epoch, so
// location updates published mid-batch become visible to the batch's later
// queries without ever blocking any of them.
func (e *Engine) QueryBatch(queries []BatchQuery, workers int) []BatchResult {
	return RunBatch(queries, workers, func(bq BatchQuery) (*Result, error) {
		return e.Query(bq.Algo, bq.Q, bq.Params)
	})
}
