package core

import (
	"ssrq/internal/dataset"
	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// SetOpLog installs the durability layer's write-ahead hook: fn receives
// every applied update batch (location batches under the index writer lock,
// edge batches under the substrate writer lock) in application order.
// Because the hook sits at Index.Apply — after the async updater's
// coalescing — the logged stream is exactly what mutated the world. Single
// consumer; nil detaches. Replay must NOT go through a hooked engine's
// async path only; use ApplyUpdates, which funnels into the same Apply.
func (e *Engine) SetOpLog(fn func(ops []Update)) {
	e.agg.SetOpLog(fn)
}

// MutationBarrier returns once every mutation that had reached the op-log
// hook when the call began is applied and published; combined with Flush it
// lets the checkpointer export a state that provably covers every journaled
// sequence number it claims. See aggindex.Index.MutationBarrier.
func (e *Engine) MutationBarrier() {
	e.agg.MutationBarrier()
}

// ExportDiff returns the update batch that transforms a freshly built
// engine over the same construction dataset into this engine's currently
// published state — the checkpoint payload. Callers wanting a consistent
// cut against the op-log should Flush() first (drain the async pipeline)
// after noting the log position; overlap past that position is harmless
// because updates are absolute writes.
func (e *Engine) ExportDiff() []Update {
	sn := e.agg.Snapshot()
	g := sn.Grid()
	locate := func(id int32) (spatial.Point, bool) {
		if !g.Located(id) {
			return spatial.Point{}, false
		}
		return g.Point(id), true
	}
	var cur *graph.Graph
	if e.SupportsEdgeChurn() {
		cur = sn.SocialGraph()
	}
	return StateDiff(e.ds, locate, cur)
}

// StateDiff computes the updates that carry a fresh engine over ds to the
// state described by locate (per-user current position, false = unlocated)
// and cur (current social graph; nil = unchanged from construction):
// moves for users whose position changed or appeared, removals for users
// located at construction but not now, edge upserts for new or reweighted
// edges, and edge removals for construction edges now absent. Shared by
// the monolithic and sharded engines' checkpoint exports.
func StateDiff(ds *dataset.Dataset, locate func(id int32) (spatial.Point, bool), cur *graph.Graph) []Update {
	n := ds.NumUsers()
	var out []Update
	for i := 0; i < n; i++ {
		id := int32(i)
		p, ok := locate(id)
		switch {
		case ok && (!ds.Located[i] || ds.Pts[i] != p):
			out = append(out, Update{ID: id, To: p})
		case !ok && ds.Located[i]:
			out = append(out, Update{ID: id, Remove: true})
		}
	}
	if cur == nil {
		return out
	}
	base := ds.G
	for u := 0; u < n; u++ {
		uid := graph.VertexID(u)
		vs, ws := cur.Neighbors(uid)
		for j, v := range vs {
			if int(v) <= u {
				continue // undirected: visit each edge once, as (u < v)
			}
			if bw, ok := base.EdgeWeight(uid, v); !ok || bw != ws[j] {
				out = append(out, Update{Kind: OpEdgeUpsert, U: int32(u), V: int32(v), W: ws[j]})
			}
		}
		bvs, _ := base.Neighbors(uid)
		for _, v := range bvs {
			if int(v) <= u {
				continue
			}
			if _, ok := cur.EdgeWeight(uid, v); !ok {
				out = append(out, Update{Kind: OpEdgeRemove, U: int32(u), V: int32(v)})
			}
		}
	}
	return out
}
