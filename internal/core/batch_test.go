package core

import (
	"math/rand"
	"testing"

	"ssrq/internal/graph"
)

func TestQueryBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	ds := mkDataset(t, rng, 120, 0.1, false)
	e := mkEngine(t, ds, Options{})
	users := locatedUsers(ds)

	var batch []BatchQuery
	for i, algo := range []Algorithm{AIS, TSA, SFA, SPA, BruteForce, AISMinus} {
		for j := 0; j < 4; j++ {
			batch = append(batch, BatchQuery{
				Algo:   algo,
				Q:      users[(i*7+j*3)%len(users)],
				Params: Params{K: 2 + j, Alpha: 0.2 + 0.15*float64(i%4)},
			})
		}
	}
	want := make([]*Result, len(batch))
	for i, bq := range batch {
		w, err := e.Query(bq.Algo, bq.Q, bq.Params)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	for _, workers := range []int{0, 1, 3, 64} {
		outs := e.QueryBatch(batch, workers)
		if len(outs) != len(batch) {
			t.Fatalf("workers=%d: %d outcomes for %d queries", workers, len(outs), len(batch))
		}
		for i, out := range outs {
			if out.Err != nil {
				t.Fatalf("workers=%d slot %d: %v", workers, i, out.Err)
			}
			sameRanking(t, batch[i].Algo.String(), out.Result, want[i])
		}
	}
}

func TestQueryBatchErrorSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ds := mkDataset(t, rng, 60, 0.3, false)
	e := mkEngine(t, ds, Options{})
	q := locatedUsers(ds)[0]
	var unloc graph.VertexID = -1
	for v := 0; v < ds.NumUsers(); v++ {
		if !ds.Located[v] {
			unloc = graph.VertexID(v)
			break
		}
	}
	batch := []BatchQuery{
		{Algo: AIS, Q: q, Params: Params{K: 3, Alpha: 0.5}},
		{Algo: AIS, Q: 9999, Params: Params{K: 3, Alpha: 0.5}},  // out of range
		{Algo: AIS, Q: q, Params: Params{K: 0, Alpha: 0.5}},     // bad params
		{Algo: AIS, Q: unloc, Params: Params{K: 3, Alpha: 0.5}}, // unlocated
		{Algo: SFACH, Q: q, Params: Params{K: 3, Alpha: 0.5}},   // CH not built
		{Algo: BruteForce, Q: q, Params: Params{K: 3, Alpha: 0.5}},
	}
	outs := e.QueryBatch(batch, 2)
	for _, i := range []int{0, 5} {
		if outs[i].Err != nil || outs[i].Result == nil {
			t.Fatalf("slot %d should succeed: %v", i, outs[i].Err)
		}
	}
	for _, i := range []int{1, 2, 3, 4} {
		if outs[i].Err == nil {
			t.Fatalf("slot %d should fail", i)
		}
		if outs[i].Result != nil {
			t.Fatalf("slot %d has both result and error", i)
		}
	}
}

func TestQueryBatchEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	ds := mkDataset(t, rng, 30, 0, false)
	e := mkEngine(t, ds, Options{})
	if outs := e.QueryBatch(nil, 4); len(outs) != 0 {
		t.Fatalf("empty batch returned %d outcomes", len(outs))
	}
}
