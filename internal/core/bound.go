package core

import (
	"math"
	"sync/atomic"
)

// SharedBound is a monotonically-tightening upper bound on a query's final
// kth ranking value, shared by every search participating in one fan-out. It
// is the live form of the seed bound QueryOn accepts: each shard's interim
// result both reads it (through topK.Fk) and improves it as entries are
// admitted, so a shard that fills its top-k early tightens the termination
// threshold of every shard still searching — and of shards not yet launched.
//
// Soundness: Tighten is only ever called with the kth-best ranking value of k
// actually-evaluated distinct users (a shard's full interim result), which is
// an upper bound on the merged result's kth value — the merged set contains
// those k users. Consumers apply the bound with *strict* semantics (see
// topK.Fk): entries tying the bound are still reported, so ID tiebreaks
// survive and the merged result stays bit-identical to the monolith's.
//
// The zero value is unusable; construct with NewSharedBound. All methods are
// safe for concurrent use: the float is stored as its IEEE-754 bits in an
// atomic word and tightened by compare-and-swap.
type SharedBound struct {
	bits atomic.Uint64
}

// NewSharedBound returns a bound initialized to f (+Inf for "no bound yet").
func NewSharedBound(f float64) *SharedBound {
	b := &SharedBound{}
	if math.IsNaN(f) {
		f = math.Inf(1)
	}
	b.bits.Store(math.Float64bits(f))
	return b
}

// Load returns the current bound.
func (b *SharedBound) Load() float64 {
	return math.Float64frombits(b.bits.Load())
}

// Tighten lowers the bound to f if f is smaller than the current value; the
// bound only ever decreases. NaN is ignored.
func (b *SharedBound) Tighten(f float64) {
	if math.IsNaN(f) {
		return
	}
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= f {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(f)) {
			return
		}
	}
}
