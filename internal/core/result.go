package core

import (
	"math"
	"sort"

	"ssrq/internal/graph"
)

// Entry is one reported user with its ranking value and the two normalized
// proximities it decomposes into.
type Entry struct {
	ID int32
	F  float64 // α·P + (1−α)·D
	P  float64 // normalized social (shortest-path) proximity
	D  float64 // normalized spatial (Euclidean) proximity
}

// Stats instruments one query execution. The paper's pop ratio (Fig. 8c/d,
// 10c/d) is |Vpop| / |V| where |Vpop| counts vertices popped from the
// methods' search heaps; Stats tracks each heap separately.
type Stats struct {
	SocialPops     int // vertices settled by graph searches (Dijkstra/A*, fwd+rev)
	ReversePops    int // subset of SocialPops settled by reverse A* searches
	SpatialPops    int // users reported by the incremental spatial NN stream
	IndexUserPops  int // users popped from the AIS branch-and-bound heap
	IndexCellPops  int // cells popped from the AIS heap
	Reinserts      int // delayed-evaluation push-backs (§5.3)
	GraphDistCalls int // exact social-distance evaluations
	CHQueries      int // contraction-hierarchy point-to-point queries
	CacheHits      int // §5.4 pre-computed list hits
	FellBack       bool
}

// Pops returns the |Vpop| aggregate used for the pop-ratio metric.
func (s Stats) Pops() int { return s.SocialPops + s.SpatialPops + s.IndexUserPops }

// PopRatio returns Pops()/n.
func (s Stats) PopRatio(n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(s.Pops()) / float64(n)
}

// Add accumulates another execution's counters (used by batch aggregation
// and the sharded engine's fan-out, which reports the work of all shards a
// query touched as one Stats).
func (s *Stats) Add(o Stats) {
	s.SocialPops += o.SocialPops
	s.ReversePops += o.ReversePops
	s.SpatialPops += o.SpatialPops
	s.IndexUserPops += o.IndexUserPops
	s.IndexCellPops += o.IndexCellPops
	s.Reinserts += o.Reinserts
	s.GraphDistCalls += o.GraphDistCalls
	s.CHQueries += o.CHQueries
	s.CacheHits += o.CacheHits
}

// Result is a completed SSRQ answer, sorted ascending by (F, ID).
type Result struct {
	Query   graph.VertexID
	Params  Params
	Entries []Entry
	Stats   Stats
}

// IDs returns the reported user IDs in rank order.
func (r *Result) IDs() []int32 {
	ids := make([]int32, len(r.Entries))
	for i, e := range r.Entries {
		ids[i] = e.ID
	}
	return ids
}

// IDSet returns the reported users as a set.
func (r *Result) IDSet() map[int32]bool {
	set := make(map[int32]bool, len(r.Entries))
	for _, e := range r.Entries {
		set[e.ID] = true
	}
	return set
}

// topK is the interim result R of the paper's algorithms: the best-k entries
// seen so far with f_k = the k-th (worst) ranking value. Entries with
// non-finite f never qualify (users at infinite proximity are not
// recommendable). Ties on f break by ascending ID so every algorithm keeps
// an identical interim state. With k ≤ 50 (Table 3) a sorted slice beats a
// heap.
type topK struct {
	k       int
	bound   float64 // external f_k ceiling (+Inf when unseeded)
	entries []Entry // ascending (F, ID)
}

func newTopK(k int) *topK {
	return newTopKBound(k, math.Inf(1))
}

// newTopKBound seeds the interim result with an externally-known kth ranking
// value (the sharded engine's running global threshold). The searches then
// terminate as soon as unseen users provably cannot beat the seed. The seed
// is applied with *strict* semantics — Fk reports the next representable
// float above it — because an entry tying the global kth score exactly could
// still win its ID tiebreak; only entries strictly worse than the seed are
// safe to abandon.
func newTopKBound(k int, bound float64) *topK {
	t := &topK{k: k, bound: math.Inf(1), entries: make([]Entry, 0, k)}
	if !math.IsInf(bound, 1) && !math.IsNaN(bound) {
		t.bound = math.Nextafter(bound, math.Inf(1))
	}
	return t
}

func entryLess(a, b Entry) bool {
	if a.F != b.F {
		return a.F < b.F
	}
	return a.ID < b.ID
}

// Fk returns the current k-th ranking value: +Inf while fewer than k entries
// qualify (so no bound can terminate a search prematurely), capped by the
// external seed bound when one was provided.
func (t *topK) Fk() float64 {
	if len(t.entries) < t.k {
		return t.bound
	}
	return math.Min(t.entries[len(t.entries)-1].F, t.bound)
}

// Consider offers an entry; it is inserted when it beats the current
// interim result. Reports whether the entry was admitted.
func (t *topK) Consider(e Entry) bool {
	if !finite(e.F) {
		return false
	}
	if len(t.entries) == t.k {
		worst := t.entries[len(t.entries)-1]
		if !entryLess(e, worst) {
			return false
		}
		t.entries = t.entries[:len(t.entries)-1]
	}
	pos := sort.Search(len(t.entries), func(i int) bool { return entryLess(e, t.entries[i]) })
	t.entries = append(t.entries, Entry{})
	copy(t.entries[pos+1:], t.entries[pos:])
	t.entries[pos] = e
	return true
}

// Sorted returns the final entries (ascending F, ID). The slice is owned by
// the topK and must not be mutated further.
func (t *topK) Sorted() []Entry { return t.entries }

// Len returns the number of admitted entries.
func (t *topK) Len() int { return len(t.entries) }
