package core

import (
	"math"
	"sort"

	"ssrq/internal/graph"
)

// Entry is one reported user with its ranking value and the two normalized
// proximities it decomposes into.
type Entry struct {
	ID int32
	F  float64 // α·P + (1−α)·D
	P  float64 // normalized social (shortest-path) proximity
	D  float64 // normalized spatial (Euclidean) proximity
}

// Stats instruments one query execution. The paper's pop ratio (Fig. 8c/d,
// 10c/d) is |Vpop| / |V| where |Vpop| counts vertices popped from the
// methods' search heaps; Stats tracks each heap separately.
type Stats struct {
	SocialPops     int // vertices settled by graph searches (Dijkstra/A*, fwd+rev)
	ReversePops    int // subset of SocialPops settled by reverse A* searches
	SpatialPops    int // users reported by the incremental spatial NN stream
	IndexUserPops  int // users popped from the AIS branch-and-bound heap
	IndexCellPops  int // cells popped from the AIS heap
	Reinserts      int // delayed-evaluation push-backs (§5.3)
	GraphDistCalls int // exact social-distance evaluations
	CHQueries      int // contraction-hierarchy point-to-point queries
	CacheHits      int // §5.4 pre-computed list hits
	// LabelCellPrunes counts grid cells a filtered query discarded outright
	// because the cell's OR'd label mask missed the filter; LabelSkips
	// counts individual users rejected at admission by the filter.
	LabelCellPrunes int
	LabelSkips      int
	// FoFTightened counts bound evaluations where the friends-of-friends
	// bound was strictly tighter than the landmark bound.
	FoFTightened int
	FellBack     bool
}

// Pops returns the |Vpop| aggregate used for the pop-ratio metric.
func (s Stats) Pops() int { return s.SocialPops + s.SpatialPops + s.IndexUserPops }

// PopRatio returns Pops()/n.
func (s Stats) PopRatio(n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(s.Pops()) / float64(n)
}

// Add accumulates another execution's counters (used by batch aggregation
// and the sharded engine's fan-out, which reports the work of all shards a
// query touched as one Stats).
func (s *Stats) Add(o Stats) {
	s.SocialPops += o.SocialPops
	s.ReversePops += o.ReversePops
	s.SpatialPops += o.SpatialPops
	s.IndexUserPops += o.IndexUserPops
	s.IndexCellPops += o.IndexCellPops
	s.Reinserts += o.Reinserts
	s.GraphDistCalls += o.GraphDistCalls
	s.CHQueries += o.CHQueries
	s.CacheHits += o.CacheHits
	s.LabelCellPrunes += o.LabelCellPrunes
	s.LabelSkips += o.LabelSkips
	s.FoFTightened += o.FoFTightened
	// FellBack is a property of the whole execution, not a counter: if any
	// contributing engine's AISCache list was exhausted inconclusively, the
	// aggregate fell back.
	s.FellBack = s.FellBack || o.FellBack
}

// Result is a completed SSRQ answer, sorted ascending by (F, ID).
type Result struct {
	Query   graph.VertexID
	Params  Params
	Entries []Entry
	Stats   Stats
}

// IDs returns the reported user IDs in rank order.
func (r *Result) IDs() []int32 {
	ids := make([]int32, len(r.Entries))
	for i, e := range r.Entries {
		ids[i] = e.ID
	}
	return ids
}

// IDSet returns the reported users as a set.
func (r *Result) IDSet() map[int32]bool {
	set := make(map[int32]bool, len(r.Entries))
	for _, e := range r.Entries {
		set[e.ID] = true
	}
	return set
}

// topK is the interim result R of the paper's algorithms: the best-k entries
// seen so far with f_k = the k-th (worst) ranking value. Entries with
// non-finite f never qualify (users at infinite proximity are not
// recommendable). Ties on f break by ascending ID so every algorithm keeps
// an identical interim state. With k ≤ 50 (Table 3) a sorted slice beats a
// heap.
//
// The optional shared bound is the sharded engine's running global
// threshold: a live external f_k ceiling that Fk reads on every call and
// that Consider improves whenever this topK's own kth value tightens, so
// concurrent shard searches prune against each other's progress mid-flight.
// The bound is applied with *strict* semantics — Fk reports the next
// representable float above it — because an entry tying the global kth score
// exactly could still win its ID tiebreak; only entries strictly worse than
// the bound are safe to abandon.
//
// topK structs are pooled (see queryPools): reset re-arms one in place and
// reuses the entries storage, so the serving path allocates nothing here.
type topK struct {
	k       int
	shared  *SharedBound // live external f_k ceiling (nil when unbounded)
	entries []Entry      // ascending (F, ID)
}

func newTopK(k int) *topK {
	return new(topK).reset(k, nil)
}

// reset re-arms the interim result for a fresh query with an optional live
// external threshold, reusing the entry storage.
func (t *topK) reset(k int, shared *SharedBound) *topK {
	t.k = k
	t.shared = shared
	if cap(t.entries) < k {
		t.entries = make([]Entry, 0, k)
	} else {
		t.entries = t.entries[:0]
	}
	return t
}

func entryLess(a, b Entry) bool {
	if a.F != b.F {
		return a.F < b.F
	}
	return a.ID < b.ID
}

// strictify converts an external kth-value bound into the strict-semantics
// ceiling Fk reports: the next representable float above it, so entries
// tying the bound are still admitted and reported.
func strictify(f float64) float64 {
	if math.IsInf(f, 1) || math.IsNaN(f) {
		return math.Inf(1)
	}
	return math.Nextafter(f, math.Inf(1))
}

// Fk returns the current k-th ranking value: +Inf while fewer than k entries
// qualify (so no bound can terminate a search prematurely), capped by the
// live external threshold when one was provided.
func (t *topK) Fk() float64 {
	b := math.Inf(1)
	if t.shared != nil {
		b = strictify(t.shared.Load())
	}
	if len(t.entries) < t.k {
		return b
	}
	if fk := t.entries[len(t.entries)-1].F; fk < b {
		return fk
	}
	return b
}

// Consider offers an entry; it is inserted when it beats the current
// interim result. Reports whether the entry was admitted. Whenever the
// interim result is full its kth value is published to the shared threshold:
// the k entries held are distinct, fully-evaluated users, so their worst F
// upper-bounds the merged kth value of any fan-out this search is part of.
func (t *topK) Consider(e Entry) bool {
	if !finite(e.F) {
		return false
	}
	if len(t.entries) == t.k {
		worst := t.entries[len(t.entries)-1]
		if !entryLess(e, worst) {
			return false
		}
		t.entries = t.entries[:len(t.entries)-1]
	}
	pos := sort.Search(len(t.entries), func(i int) bool { return entryLess(e, t.entries[i]) })
	t.entries = append(t.entries, Entry{})
	copy(t.entries[pos+1:], t.entries[pos:])
	t.entries[pos] = e
	if t.shared != nil && len(t.entries) == t.k {
		t.shared.Tighten(t.entries[t.k-1].F)
	}
	return true
}

// Sorted returns the final entries (ascending F, ID). The slice is owned by
// the topK and must not be mutated further.
func (t *topK) Sorted() []Entry { return t.entries }

// Len returns the number of admitted entries.
func (t *topK) Len() int { return len(t.entries) }
