package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ssrq/internal/dataset"
	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// edgeKey is an unordered user pair.
type edgeKey [2]int32

func mkEdgeKey(u, v int32) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

// seedModel captures a dataset's (normalized) edges as the oracle model.
func seedModel(ds *dataset.Dataset) map[edgeKey]float64 {
	model := make(map[edgeKey]float64)
	for v := 0; v < ds.NumUsers(); v++ {
		nbrs, ws := ds.G.Neighbors(graph.VertexID(v))
		for i, u := range nbrs {
			model[mkEdgeKey(int32(v), u)] = ws[i]
		}
	}
	return model
}

// modelGraph rebuilds an independent CSR graph from the oracle model.
func modelGraph(n int, model map[edgeKey]float64) *graph.Graph {
	b := graph.NewBuilder(n)
	for k, w := range model {
		_ = b.AddEdge(k[0], k[1], w)
	}
	return b.MustBuild()
}

// oracleTopK computes the expected result fully independently of the
// engine: exact Dijkstra on the freshly rebuilt model graph, locations from
// the engine's published grid epoch, same ranking semantics.
func oracleTopK(e *Engine, model map[edgeKey]float64, q graph.VertexID, prm Params) *Result {
	g := e.Snapshot().Grid()
	dist := modelGraph(e.ds.NumUsers(), model).DistancesFrom(q)
	r := newTopK(prm.K)
	for v := 0; v < e.ds.NumUsers(); v++ {
		id := graph.VertexID(v)
		if id == q {
			continue
		}
		p := dist[v]
		d := g.EuclideanDist(q, id)
		r.Consider(Entry{ID: id, F: combine(prm.Alpha, p, d), P: p, D: d})
	}
	return &Result{Query: q, Params: prm, Entries: r.Sorted()}
}

// TestRandomizedSocialChurnEquivalence extends the cross-algorithm
// equivalence property to a mutating world: random interleavings of edge
// churn (add/remove/reweight through both sync and async paths), location
// churn and queries. After every Flush, every algorithm must match a
// brute-force oracle built from scratch on the mutated graph — and the
// engine's own BruteForce must match that external oracle too (the overlay
// never drifts from the true topology). Landmark bounds are additionally
// sampled for admissibility on every probe.
func TestRandomizedSocialChurnEquivalence(t *testing.T) {
	trials := 8
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(9000 + trial)))
			n := 30 + rng.Intn(90)
			ds := mkDataset(t, rng, n, 0.2*rng.Float64(), trial%3 == 2)
			// Small repair budgets on some trials force the disable+rebuild
			// path; huge ones keep every landmark on the incremental path.
			budget := 1 << 30
			if trial%2 == 1 {
				budget = 4
			}
			e := mkEngine(t, ds, Options{
				GridS:                3 + rng.Intn(4),
				GridLevels:           1 + rng.Intn(2),
				NumLandmarks:         2 + rng.Intn(6),
				CacheT:               4 + rng.Intn(40),
				Seed:                 int64(trial),
				LandmarkRepairBudget: budget,
				UpdateMaxBatch:       1 + rng.Intn(64),
			})
			defer e.Close()
			model := seedModel(ds)
			users := locatedUsers(ds)

			for round := 0; round < 6; round++ {
				// A burst of interleaved social + spatial churn.
				for op := 0; op < 3+rng.Intn(20); op++ {
					switch rng.Intn(5) {
					case 0, 1: // edge upsert
						u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
						if u == v {
							continue
						}
						w := 0.05 + rng.Float64()
						var err error
						if rng.Intn(2) == 0 {
							err = e.AddFriendAsync(u, v, w)
						} else {
							err = e.AddFriend(u, v, w)
						}
						if err != nil {
							t.Fatal(err)
						}
						model[mkEdgeKey(u, v)] = w
					case 2: // edge removal
						u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
						if u == v {
							continue
						}
						var err error
						if rng.Intn(2) == 0 {
							err = e.RemoveFriendAsync(u, v)
						} else {
							err = e.RemoveFriend(u, v)
						}
						if err != nil {
							t.Fatal(err)
						}
						delete(model, mkEdgeKey(u, v))
					case 3: // move
						id := int32(users[rng.Intn(len(users))])
						if err := e.MoveUserAsync(id, spatial.Point{X: rng.Float64(), Y: rng.Float64()}); err != nil {
							t.Fatal(err)
						}
					case 4: // mid-churn query: any snapshot is a valid world
						q := users[rng.Intn(len(users))]
						if e.Snapshot().Grid().Located(q) {
							res, err := e.Query(AIS, q, Params{K: 5, Alpha: 0.4})
							if err != nil {
								t.Fatal(err)
							}
							if err := validTopK(res, q, 5, 0.4); err != nil {
								t.Fatal(err)
							}
						}
					}
				}
				e.Flush() // read-your-writes barrier: model and engine now agree

				for probe := 0; probe < 3; probe++ {
					q := users[rng.Intn(len(users))]
					if !e.Snapshot().Grid().Located(q) {
						continue
					}
					prm := Params{K: 1 + rng.Intn(12), Alpha: 0.05 + 0.9*rng.Float64()}
					want := oracleTopK(e, model, q, prm)
					for _, algo := range allNonCHAlgorithms {
						got, err := e.Query(algo, q, prm)
						if err != nil {
							t.Fatalf("round %d %v (q=%d): %v", round, algo, q, err)
						}
						sameRanking(t, fmt.Sprintf("round %d %v (q=%d k=%d α=%.3f)", round, algo, q, prm.K, prm.Alpha), got, want)
					}
					// Sampled landmark admissibility on the published epoch.
					sn := e.Snapshot()
					lm := sn.Landmarks()
					dist := modelGraph(n, model).DistancesFrom(q)
					for v := 0; v < n; v += 1 + n/24 {
						lo := lm.LowerBound(q, graph.VertexID(v))
						hi := lm.UpperBound(q, graph.VertexID(v))
						if lo > dist[v]+1e-9 {
							t.Fatalf("round %d: LowerBound(%d,%d)=%v > true %v (disabled=%d)", round, q, v, lo, dist[v], lm.NumDisabled())
						}
						if hi < dist[v]-1e-9 {
							t.Fatalf("round %d: UpperBound(%d,%d)=%v < true %v", round, q, v, hi, dist[v])
						}
					}
				}
			}
			// Final: restore disabled landmarks and re-verify everything.
			e.RebuildLandmarks()
			if got := e.SocialStats().DisabledLandmarks; got != 0 {
				t.Fatalf("%d landmarks disabled after RebuildLandmarks", got)
			}
			q := users[rng.Intn(len(users))]
			if e.Snapshot().Grid().Located(q) {
				prm := Params{K: 10, Alpha: 0.3}
				want := oracleTopK(e, model, q, prm)
				got, err := e.Query(AIS, q, prm)
				if err != nil {
					t.Fatal(err)
				}
				sameRanking(t, "post-rebuild AIS", got, want)
			}
		})
	}
}

// TestConcurrentSocialAndLocationChurnStress is the -race proof for the
// social dimension: edge churners, movers and queriers hammer the engine
// simultaneously. Every mid-flight query must be a valid top-k over *some*
// published epoch (never a half-applied edge), and every sampled landmark
// bound must be admissible against the exact distances of the same snapshot
// it came from. After the dust settles the index must agree exactly with
// brute force on the mutated graph.
func TestConcurrentSocialAndLocationChurnStress(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	const n = 160
	ds := mkDataset(t, rng, n, 0, false)
	e := mkEngine(t, ds, Options{GridS: 5, GridLevels: 2, CacheT: 20, LandmarkRepairBudget: 16})
	defer e.Close()

	var movable, queryable []graph.VertexID
	for _, u := range locatedUsers(ds) {
		if int(u) >= n/2 {
			movable = append(movable, u)
		} else {
			queryable = append(queryable, u)
		}
	}

	const (
		numQueriers = 3
		numEdgers   = 2
		numMovers   = 1
		queriesEach = 25
		edgeOpsEach = 120
		movesEach   = 80
		numAuditors = 1
		auditsEach  = 10
	)
	algos := []Algorithm{AIS, TSA, SFA, SPA, AISMinus, AISCache}
	var wg sync.WaitGroup
	var queriesDone, edgeOpsDone atomic.Int64
	errCh := make(chan error, numQueriers+numEdgers+numMovers+numAuditors)

	for g := 0; g < numEdgers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			erng := rand.New(rand.NewSource(int64(300 + g)))
			for i := 0; i < edgeOpsEach; i++ {
				u, v := erng.Int31n(n), erng.Int31n(n)
				if u == v {
					continue
				}
				var err error
				if erng.Intn(3) == 0 {
					err = e.RemoveFriendAsync(u, v)
				} else {
					err = e.AddFriendAsync(u, v, 0.05+erng.Float64())
				}
				if err != nil {
					errCh <- err
					return
				}
				edgeOpsDone.Add(1)
			}
		}(g)
	}
	for g := 0; g < numMovers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mrng := rand.New(rand.NewSource(int64(400 + g)))
			for i := 0; i < movesEach; i++ {
				u := movable[mrng.Intn(len(movable))]
				var err error
				if mrng.Intn(5) == 0 {
					err = e.RemoveUserLocationAsync(int32(u))
				} else {
					err = e.MoveUserAsync(int32(u), spatial.Point{X: mrng.Float64(), Y: mrng.Float64()})
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	for g := 0; g < numQueriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(int64(500 + g)))
			for i := 0; i < queriesEach; i++ {
				q := queryable[qrng.Intn(len(queryable))]
				algo := algos[(g+i)%len(algos)]
				k := 1 + qrng.Intn(10)
				alpha := 0.1 + 0.8*qrng.Float64()
				res, err := e.Query(algo, q, Params{K: k, Alpha: alpha})
				if err == nil {
					err = validTopK(res, q, k, alpha)
				}
				if err != nil {
					errCh <- fmt.Errorf("%v on user %d: %w", algo, q, err)
					return
				}
				queriesDone.Add(1)
			}
		}(g)
	}
	// Auditor: loads a snapshot mid-churn and verifies landmark bounds are
	// admissible against exact distances *of that same snapshot* — the
	// "never tighter than the true shortest path" contract.
	for g := 0; g < numAuditors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			arng := rand.New(rand.NewSource(int64(600 + g)))
			for i := 0; i < auditsEach; i++ {
				sn := e.Snapshot()
				lm := sn.Landmarks()
				q := graph.VertexID(arng.Intn(n))
				dist := sn.SocialGraph().DistancesFrom(q)
				for v := 0; v < n; v += 7 {
					lo := lm.LowerBound(q, graph.VertexID(v))
					hi := lm.UpperBound(q, graph.VertexID(v))
					if lo > dist[v]+1e-9 {
						errCh <- fmt.Errorf("mid-churn LowerBound(%d,%d)=%v > true %v", q, v, lo, dist[v])
						return
					}
					if hi < dist[v]-1e-9 {
						errCh <- fmt.Errorf("mid-churn UpperBound(%d,%d)=%v < true %v", q, v, hi, dist[v])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if queriesDone.Load() == 0 || edgeOpsDone.Load() == 0 {
		t.Fatalf("no overlap: %d queries, %d edge ops", queriesDone.Load(), edgeOpsDone.Load())
	}

	// Quiesce and verify exact agreement on the mutated world.
	e.Flush()
	e.RebuildLandmarks()
	prm := Params{K: 10, Alpha: 0.3}
	for probe := 0; probe < 4; probe++ {
		q := queryable[rng.Intn(len(queryable))]
		want, err := e.Query(BruteForce, q, prm)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range allNonCHAlgorithms {
			got, err := e.Query(algo, q, prm)
			if err != nil {
				t.Fatal(err)
			}
			sameRanking(t, "post-stress "+algo.String(), got, want)
		}
	}
}

// TestEdgeUpdateValidation pins the edge-op validation surface.
func TestEdgeUpdateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ds := mkDataset(t, rng, 30, 0, false)
	e := mkEngine(t, ds, Options{})
	defer e.Close()
	if err := e.AddFriend(-1, 2, 1); err == nil {
		t.Fatal("negative user accepted")
	}
	if err := e.AddFriend(0, 30, 1); err == nil {
		t.Fatal("out-of-range user accepted")
	}
	if err := e.AddFriend(3, 3, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	for _, w := range []float64{0, -1} {
		if err := e.AddFriend(0, 1, w); err == nil {
			t.Fatalf("weight %v accepted", w)
		}
	}
	if err := e.AddFriendAsync(2, 2, 1); err == nil {
		t.Fatal("async self-loop accepted")
	}
	if err := e.RemoveFriendAsync(0, 99); err == nil {
		t.Fatal("async out-of-range accepted")
	}
	if err := e.RemoveFriend(0, 1); err != nil {
		t.Fatalf("valid removal rejected: %v", err)
	}
}

// TestEdgeChurnRejectedBeyondLandmarkCap: engines with more than 64
// landmarks still build and answer queries, but refuse edge churn instead of
// silently serving stale landmark tables.
func TestEdgeChurnRejectedBeyondLandmarkCap(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	ds := mkDataset(t, rng, 120, 0, false)
	e := mkEngine(t, ds, Options{NumLandmarks: 70})
	defer e.Close()
	if err := e.AddFriend(0, 1, 0.5); err == nil {
		t.Fatal("edge churn accepted with 70 landmarks")
	}
	q := locatedUsers(ds)[0]
	if _, err := e.Query(AIS, q, Params{K: 5, Alpha: 0.5}); err != nil {
		t.Fatalf("query failed on 70-landmark engine: %v", err)
	}
}

// TestCHVariantsRepairServeAndRefuse pins the CH availability contract under
// churn: an insertion is repaired in place (the variants keep serving, and
// exactly); a removal makes the hierarchy stale — with background rebuilds
// suppressed (Close), the variants deterministically refuse, naming both
// epochs — and a synchronous RebuildCH restores exact service.
func TestCHVariantsRepairServeAndRefuse(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	ds := mkDataset(t, rng, 50, 0, false)
	e := mkEngine(t, ds, Options{BuildCH: true})
	q := locatedUsers(ds)[0]
	prm := Params{K: 3, Alpha: 0.5}
	if _, err := e.Query(SFACH, q, prm); err != nil {
		t.Fatalf("pre-churn SFACH: %v", err)
	}

	// Insertion: the decrease-only repair path keeps the hierarchy current —
	// no refusal window at all.
	if err := e.AddFriend(0, 25, 0.4); err != nil {
		t.Fatal(err)
	}
	sn := e.Snapshot()
	if !sn.HierarchyFresh() {
		t.Fatalf("hierarchy stale after insert: built %d, social %d", sn.HierarchyEpoch(), sn.SocialEpoch())
	}
	if st := e.SocialStats(); st.CHRepairs == 0 {
		t.Fatal("insert did not go through the in-place repair path")
	}
	want, err := e.Query(BruteForce, q, prm)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{SFACH, SPACH, TSACH} {
		got, err := e.Query(algo, q, prm)
		if err != nil {
			t.Fatalf("%v after repaired insert: %v", algo, err)
		}
		sameRanking(t, algo.String()+" post-insert", got, want)
	}

	// Removal: no in-place repair. Close first so the background rebuild
	// cannot race the assertions — the refusal is then deterministic.
	e.Close()
	if err := e.RemoveFriend(0, 25); err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{SFACH, SPACH, TSACH} {
		_, err := e.Query(algo, q, prm)
		if err == nil {
			t.Fatalf("%v served on a stale hierarchy", algo)
		}
		if !strings.Contains(err.Error(), "built at social epoch 1") ||
			!strings.Contains(err.Error(), "social epoch 2") {
			t.Fatalf("%v staleness error does not report both epochs: %v", algo, err)
		}
	}
	// Non-CH algorithms keep serving, and exactly.
	want, err = e.Query(BruteForce, q, prm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Query(AIS, q, prm)
	if err != nil {
		t.Fatal(err)
	}
	sameRanking(t, "AIS post-churn", got, want)

	// Synchronous rebuild restores exact CH service.
	if !e.RebuildCH() {
		t.Fatal("RebuildCH reported nothing to do on a stale hierarchy")
	}
	if e.RebuildCH() {
		t.Fatal("second RebuildCH rebuilt a fresh hierarchy")
	}
	for _, algo := range []Algorithm{SFACH, SPACH, TSACH} {
		got, err := e.Query(algo, q, prm)
		if err != nil {
			t.Fatalf("%v after RebuildCH: %v", algo, err)
		}
		sameRanking(t, algo.String()+" post-rebuild", got, want)
	}
}

// TestAISCacheInvalidatedByEdgeChurn: §5.4 lists memoized on the old graph
// must not leak into results after churn.
func TestAISCacheInvalidatedByEdgeChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	ds := mkDataset(t, rng, 60, 0, false)
	e := mkEngine(t, ds, Options{CacheT: 100000}) // complete lists, no fallback
	defer e.Close()
	q := locatedUsers(ds)[0]
	prm := Params{K: 8, Alpha: 0.6}
	if _, err := e.Query(AISCache, q, prm); err != nil { // populate cache
		t.Fatal(err)
	}
	// Splice a super-strong edge from q to a far user: rankings must change.
	far := int32(59)
	if far == int32(q) {
		far = 58
	}
	if err := e.AddFriend(int32(q), far, 1e-6); err != nil {
		t.Fatal(err)
	}
	want, err := e.Query(BruteForce, q, prm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Query(AISCache, q, prm)
	if err != nil {
		t.Fatal(err)
	}
	sameRanking(t, "AISCache post-churn", got, want)
}

// TestUpdaterCoalescesEdgeOps checks last-write-wins per unordered pair
// through the async pipeline.
func TestUpdaterCoalescesEdgeOps(t *testing.T) {
	ops := []Update{
		{Kind: OpEdgeUpsert, U: 1, V: 2, W: 5},
		{Kind: OpEdgeUpsert, U: 2, V: 1, W: 7}, // same pair, reversed order
		{ID: 1, To: spatial.Point{X: 0.5, Y: 0.5}},
		{Kind: OpEdgeRemove, U: 3, V: 4},
		{Kind: OpEdgeUpsert, U: 3, V: 4, W: 2}, // resurrects the pair
		{ID: 1, To: spatial.Point{X: 0.9, Y: 0.9}},
	}
	out := coalesceUpdates(ops)
	if len(out) != 3 {
		t.Fatalf("coalesced to %d ops, want 3: %+v", len(out), out)
	}
	if out[0].Kind != OpEdgeUpsert || out[0].W != 7 {
		t.Fatalf("pair (1,2) did not keep newest: %+v", out[0])
	}
	if out[1].Kind != OpLocation || out[1].To.X != 0.9 {
		t.Fatalf("location op did not keep newest: %+v", out[1])
	}
	if out[2].Kind != OpEdgeUpsert || out[2].W != 2 {
		t.Fatalf("pair (3,4) did not keep newest: %+v", out[2])
	}
}
