// Package core implements the paper's primary contribution: the Social and
// Spatial Ranking Query (SSRQ) and its complete suite of processing
// algorithms — the one-domain baselines SFA and SPA (§4.1), the Twofold
// Search Approach with round-robin and Quick-Combine probing plus landmark
// pruning (§4.2), the Aggregate Index Search family AIS-BID / AIS⁻ / AIS
// with the shared GraphDist submodule, computation sharing and delayed
// evaluation (§5), the §5.4 pre-computation variant, the CH-backed
// comparison variants of Fig. 8, and a brute-force reference.
package core

import (
	"fmt"
	"math"

	"ssrq/internal/spatial"
)

// Params are the per-query SSRQ parameters (Table 3).
type Params struct {
	// K is the number of users to report.
	K int
	// Alpha weighs social against spatial proximity (Eq. 1). It must lie
	// strictly inside (0, 1): the endpoints would multiply a zero
	// coefficient with the +Inf proximities used for unlocated users and
	// foreign components, which the paper never exercises (it sweeps
	// 0.1–0.9). Callers wanting a single-domain ranking can use the kNN
	// helpers directly.
	Alpha float64
	// Filter restricts the result to users whose label bitmask intersects
	// it (labels[u] & Filter != 0). Zero means unfiltered. On an unlabeled
	// dataset a nonzero filter matches nobody. The query user itself is
	// never part of the result, so its own labels are irrelevant.
	Filter uint64
}

// matches reports whether a user with label mask lbl passes the filter.
func (p Params) matches(lbl uint64) bool {
	return p.Filter == 0 || lbl&p.Filter != 0
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.K < 1 {
		return fmt.Errorf("core: k = %d must be ≥ 1", p.K)
	}
	if !(p.Alpha > 0 && p.Alpha < 1) {
		return fmt.Errorf("core: alpha = %v must lie strictly in (0, 1)", p.Alpha)
	}
	return nil
}

// combine evaluates the ranking function f = α·p + (1−α)·d (Eq. 1) on
// normalized proximities. With α strictly inside (0,1), +Inf in either
// domain propagates to +Inf, which encodes both paper conventions:
// unlocated users and cross-component users can never enter a result.
func combine(alpha, p, d float64) float64 {
	return alpha*p + (1-alpha)*d
}

// finite reports whether f is a real ranking value.
func finite(f float64) bool { return !math.IsInf(f, 1) && !math.IsNaN(f) }

// spatialDist returns the Euclidean distance from the query location qpt to
// user v's position in the snapshot grid, +Inf when v has no location (the
// paper's convention). The query location is threaded explicitly rather than
// read off the grid because in a sharded engine q is located in exactly one
// shard's grid while the fan-out evaluates every shard's users.
func spatialDist(g *spatial.Snapshot, qpt spatial.Point, v int32) float64 {
	if !g.Located(v) {
		return math.Inf(1)
	}
	return g.Point(v).Dist(qpt)
}
