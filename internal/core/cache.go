package core

import (
	"sync"

	"ssrq/internal/aggindex"
	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// socialCache implements §5.4's graph-distance pre-computation: for a query
// user, the t socially-closest users with their exact distances. The paper
// materializes the lists for every user offline (an all-users build is
// available via Precompute); queries not covered yet compute their list on
// first use and memoize it, which yields the same per-query behaviour
// without the multi-hour cold build.
type socialCache struct {
	t  int
	mu sync.RWMutex
	// epoch is the social graph version the lists were computed on; edge
	// churn advances it and invalidates everything (a list built on an
	// older graph would silently serve wrong distances).
	epoch uint64
	// lists[q] holds the t nearest (vertex, distance) pairs ascending,
	// excluding q itself. complete[q] marks lists that exhausted q's
	// component before reaching t entries — such a list covers every
	// finitely-reachable user and never needs the AIS fallback.
	lists    map[graph.VertexID][]cachedNeighbor
	complete map[graph.VertexID]bool
}

type cachedNeighbor struct {
	V graph.VertexID
	P float64
}

func newSocialCache(t int) *socialCache {
	return &socialCache{
		t:        t,
		lists:    make(map[graph.VertexID][]cachedNeighbor),
		complete: make(map[graph.VertexID]bool),
	}
}

// get returns the memoized list for q at the given social epoch, computing
// it on first use and discarding lists from older epochs.
func (c *socialCache) get(g *graph.Graph, epoch uint64, q graph.VertexID) (list []cachedNeighbor, complete bool) {
	c.mu.RLock()
	var ok bool
	if c.epoch == epoch {
		list, ok = c.lists[q]
		complete = c.complete[q]
	}
	c.mu.RUnlock()
	if ok {
		return list, complete
	}
	list, complete = c.build(g, q)
	c.mu.Lock()
	if c.epoch != epoch {
		if c.epoch < epoch {
			// First list of a newer social epoch: drop the stale generation.
			c.lists = make(map[graph.VertexID][]cachedNeighbor)
			c.complete = make(map[graph.VertexID]bool)
			c.epoch = epoch
		} else {
			// A concurrent writer advanced past us: our list describes an
			// older graph — return it for this query (it matches the
			// snapshot the query runs on) but do not pollute the cache.
			c.mu.Unlock()
			return list, complete
		}
	}
	c.lists[q] = list
	c.complete[q] = complete
	c.mu.Unlock()
	return list, complete
}

func (c *socialCache) build(g *graph.Graph, q graph.VertexID) ([]cachedNeighbor, bool) {
	it := graph.NewDijkstraIterator(g, q)
	list := make([]cachedNeighbor, 0, c.t)
	for len(list) < c.t {
		v, p, ok := it.Next()
		if !ok {
			return list, true // component exhausted before t entries
		}
		if v == q {
			continue
		}
		list = append(list, cachedNeighbor{v, p})
	}
	return list, false
}

// Precompute builds the lists for the given query users eagerly (the
// paper's offline materialization, restricted to the users that will
// actually query — see DESIGN.md substitutions). Lists are built on the
// current social epoch; later edge churn invalidates them.
func (e *Engine) Precompute(users []graph.VertexID) {
	sn := e.agg.Snapshot()
	for _, q := range users {
		e.cache.get(sn.SocialGraph(), sn.SocialEpoch(), q)
	}
}

// ResetCache discards the pre-computed lists and changes t — the Fig. 11
// sweep varies t without rebuilding the rest of the engine.
func (e *Engine) ResetCache(t int) {
	if t < 1 {
		t = 1
	}
	e.cache = newSocialCache(t)
}

// runAISCache answers with the pre-computed list exactly like SFA would —
// list entries arrive in ascending social distance, so θ = α·p applies — and
// falls back to full AIS when the list is exhausted inconclusively (§5.4).
// Spatial distances come from the query's snapshot.
func (e *Engine) runAISCache(sn *aggindex.Snapshot, q graph.VertexID, qpt spatial.Point, bound *SharedBound, prm Params, st *Stats, p *queryPools) []Entry {
	g := sn.Grid()
	list, complete := e.cache.get(sn.SocialGraph(), sn.SocialEpoch(), q)
	labels := e.ds.Labels
	r := p.top.reset(prm.K, bound)
	for _, cn := range list {
		st.CacheHits++
		if prm.Filter != 0 {
			var lbl uint64
			if labels != nil {
				lbl = labels[cn.V]
			}
			if !prm.matches(lbl) {
				// The skipped entry still bounds everything after it in the
				// list (ascending social distance), so θ below stays valid.
				st.LabelSkips++
				if theta := prm.Alpha * cn.P; theta >= r.Fk() {
					return r.Sorted()
				}
				continue
			}
		}
		d := spatialDist(g, qpt, cn.V)
		r.Consider(Entry{ID: cn.V, F: combine(prm.Alpha, cn.P, d), P: cn.P, D: d})
		if theta := prm.Alpha * cn.P; theta >= r.Fk() {
			return r.Sorted()
		}
	}
	if complete {
		// The whole component was in the list: the scan above was exact.
		return r.Sorted()
	}
	st.FellBack = true
	// The fallback restarts from scratch (runAIS re-arms p.top itself,
	// discarding the inconclusive scan, exactly as the paper's fallback
	// recomputes the full answer).
	return e.runAIS(sn, q, qpt, bound, prm, st, p, aisConfig{sharing: true, delayed: true})
}
