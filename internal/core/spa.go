package core

import (
	"ssrq/internal/aggindex"
	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// runSPA is the Spatial First Approach (§4.1): stream users by ascending
// Euclidean distance via the snapshot's incremental NN search and evaluate
// each one's social distance, stopping once θ = (1−α)·d(last NN) reaches
// f_k.
//
// The vanilla social-distance module is the shared incremental Dijkstra from
// v_q, expanded just far enough to settle each requested target ("shortest
// paths produced incrementally, all with v_q as source"). SPA-CH replaces it
// with an independent CH query per target (Fig. 8).
func (e *Engine) runSPA(sn *aggindex.Snapshot, q graph.VertexID, qpt spatial.Point, bound *SharedBound, prm Params, st *Stats, p *queryPools, useCH bool) []Entry {
	g := sn.Grid()
	nn := p.nn
	nn.Reset(g, qpt)
	r := p.top.reset(prm.K, bound)

	hier := sn.Hierarchy() // chReady guaranteed it fresh when useCH
	var fwd *graph.DijkstraIterator
	if !useCH {
		fwd = &p.soc
		fwd.Reset(sn.SocialGraph(), q)
	}

	labels := e.ds.Labels
	for {
		u, d, ok := nn.Next()
		if !ok {
			break // every located user has been evaluated
		}
		st.SpatialPops++
		if u == q {
			continue
		}
		if prm.Filter != 0 {
			var lbl uint64
			if labels != nil {
				lbl = labels[u]
			}
			if !prm.matches(lbl) {
				// Skip before paying the social-distance evaluation — the
				// expensive half of each SPA iteration.
				st.LabelSkips++
				continue
			}
		}
		// Social-distance module: an independent CH query per target for
		// SPA-CH, otherwise the shared forward Dijkstra expanded just far
		// enough to settle the target.
		var pd float64
		if useCH {
			st.CHQueries++
			pd, _ = hier.Dist(q, u)
		} else {
			for {
				if sd, settled := fwd.SettledDist(u); settled {
					pd = sd
					break
				}
				if _, _, ok := fwd.Next(); !ok {
					pd = graph.Infinity
					break
				}
				st.SocialPops++
			}
		}
		r.Consider(Entry{ID: u, F: combine(prm.Alpha, pd, d), P: pd, D: d})
		if theta := (1 - prm.Alpha) * d; theta >= r.Fk() {
			break
		}
	}
	return r.Sorted()
}
