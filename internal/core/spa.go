package core

import (
	"ssrq/internal/aggindex"
	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// runSPA is the Spatial First Approach (§4.1): stream users by ascending
// Euclidean distance via the snapshot's incremental NN search and evaluate
// each one's social distance, stopping once θ = (1−α)·d(last NN) reaches
// f_k.
//
// The vanilla social-distance module is the shared incremental Dijkstra from
// v_q, expanded just far enough to settle each requested target ("shortest
// paths produced incrementally, all with v_q as source"). SPA-CH replaces it
// with an independent CH query per target (Fig. 8).
func (e *Engine) runSPA(sn *aggindex.Snapshot, q graph.VertexID, qpt spatial.Point, bound float64, prm Params, st *Stats, useCH bool) []Entry {
	g := sn.Grid()
	nn := g.NewNN(qpt)
	r := newTopKBound(prm.K, bound)

	hier := sn.Hierarchy() // chReady guaranteed it fresh when useCH
	var fwd *graph.DijkstraIterator
	if !useCH {
		fwd = graph.NewDijkstraIterator(sn.SocialGraph(), q)
	}
	socialDist := func(v graph.VertexID) float64 {
		if useCH {
			st.CHQueries++
			d, _ := hier.Dist(q, v)
			return d
		}
		for {
			if d, ok := fwd.SettledDist(v); ok {
				return d
			}
			if _, _, ok := fwd.Next(); !ok {
				return graph.Infinity
			}
			st.SocialPops++
		}
	}

	for {
		u, d, ok := nn.Next()
		if !ok {
			break // every located user has been evaluated
		}
		st.SpatialPops++
		if u == q {
			continue
		}
		p := socialDist(u)
		r.Consider(Entry{ID: u, F: combine(prm.Alpha, p, d), P: p, D: d})
		if theta := (1 - prm.Alpha) * d; theta >= r.Fk() {
			break
		}
	}
	return r.Sorted()
}
